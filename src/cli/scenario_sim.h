// rtcac/cli/scenario_sim.h
//
// Adversarial validation of an admitted scenario: replay the admitted
// connections in the cell simulator under greedy phase-aligned sources
// (FIFO depth = advertised bound + the output-register slot) and compare
// every measured worst-case delay with its analytic bound.  Backs
// `rtcac_admit --simulate`.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "atm/cell.h"
#include "cli/scenario_parser.h"

namespace rtcac {

struct ScenarioSimReport {
  struct Connection {
    std::string name;
    std::uint64_t delivered = 0;
    double max_delay = 0;     ///< measured worst case (cell times)
    double bound = 0;         ///< analytic e2e bound under the final load
    bool within_bound = true;
  };

  std::vector<Connection> connections;  ///< admitted ones, in file order
  std::uint64_t drops = 0;              ///< cells lost anywhere
  /// True iff nothing dropped and every measurement stayed in bounds.
  [[nodiscard]] bool all_within() const {
    if (drops != 0) return false;
    for (const Connection& conn : connections) {
      if (!conn.within_bound) return false;
    }
    return true;
  }
};

/// Simulates `horizon` cell times of worst-case traffic for the admitted
/// subset of `scenario`.  `manager` and `outcomes` must come from
/// run_scenario() on the same scenario (the manager holds the admitted
/// state the bounds are computed from).
[[nodiscard]] ScenarioSimReport simulate_scenario(
    const ScenarioFile& scenario, const ConnectionManager& manager,
    const std::vector<ScenarioOutcome>& outcomes, Tick horizon = 50000);

}  // namespace rtcac
