#include "cli/scenario_sim.h"

#include <memory>
#include <stdexcept>

#include "sim/simulator.h"

namespace rtcac {

ScenarioSimReport simulate_scenario(
    const ScenarioFile& scenario, const ConnectionManager& manager,
    const std::vector<ScenarioOutcome>& outcomes, Tick horizon) {
  if (outcomes.size() != scenario.connections.size()) {
    throw std::invalid_argument(
        "simulate_scenario: outcomes do not match the scenario");
  }

  SimNetwork::Options options;
  options.priorities = scenario.params.priorities;
  options.queue_capacity =
      static_cast<std::size_t>(scenario.params.advertised_bound) + 1;
  SimNetwork sim(manager.topology(), options);

  // Admitted connections appear in the manager in id order, which is
  // admission (= file) order.
  struct Pending {
    std::size_t scenario_index;
    ConnectionId id;
  };
  std::vector<Pending> admitted;
  auto record = manager.connections().begin();
  for (std::size_t k = 0; k < scenario.connections.size(); ++k) {
    if (!outcomes[k].accepted) continue;
    if (record == manager.connections().end()) {
      throw std::invalid_argument(
          "simulate_scenario: manager does not hold the admitted state");
    }
    const auto& conn = scenario.connections[k];
    sim.install(record->first, conn.route, conn.request.priority,
                std::make_unique<GreedySourceScheduler>(conn.request.traffic));
    admitted.push_back(Pending{k, record->first});
    ++record;
  }

  sim.run_until(horizon);

  ScenarioSimReport report;
  report.drops = sim.total_drops();
  for (const Pending& pending : admitted) {
    ScenarioSimReport::Connection conn;
    conn.name = scenario.connections[pending.scenario_index].name;
    conn.delivered = sim.sink(pending.id).delivered();
    conn.max_delay = sim.sink(pending.id).queue_delay().max();
    conn.bound = manager.current_e2e_bound(pending.id).value_or(0);
    conn.within_bound = conn.max_delay <= conn.bound + 1e-9;
    report.connections.push_back(std::move(conn));
  }
  return report;
}

}  // namespace rtcac
