#include "cli/scenario_parser.h"

#include <map>
#include <sstream>

namespace rtcac {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& message) {
  std::ostringstream os;
  os << "scenario line " << line_no << ": " << message;
  throw ScenarioParseError(os.str());
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    if (token.front() == '#') break;
    tokens.push_back(token);
  }
  return tokens;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream is(text);
  while (std::getline(is, part, sep)) parts.push_back(part);
  return parts;
}

double parse_number(std::size_t line_no, const std::string& text,
                    const std::string& what) {
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size()) fail(line_no, "bad " + what + ": " + text);
    return value;
  } catch (const std::exception&) {
    fail(line_no, "bad " + what + ": " + text);
  }
}

// "key=value" -> {key, value}; whole-token key when no '='.
std::pair<std::string, std::string> key_value(const std::string& token) {
  const auto eq = token.find('=');
  if (eq == std::string::npos) return {token, ""};
  return {token.substr(0, eq), token.substr(eq + 1)};
}

}  // namespace

ScenarioFile parse_scenario(std::istream& in) {
  ScenarioFile scenario;
  std::map<std::string, NodeId> nodes;
  std::map<std::string, bool> connection_names;
  bool saw_connect = false;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& keyword = tokens.front();

    const auto need_args = [&](std::size_t n) {
      if (tokens.size() < n + 1) {
        fail(line_no, keyword + " needs " + std::to_string(n) + " argument(s)");
      }
    };
    const auto config_allowed = [&] {
      if (saw_connect) {
        fail(line_no, keyword + " must appear before the first connect");
      }
    };

    if (keyword == "switch" || keyword == "terminal") {
      need_args(1);
      config_allowed();
      if (nodes.contains(tokens[1])) {
        fail(line_no, "duplicate node name " + tokens[1]);
      }
      nodes[tokens[1]] = keyword == "switch"
                             ? scenario.topology.add_switch(tokens[1])
                             : scenario.topology.add_terminal(tokens[1]);
    } else if (keyword == "link") {
      need_args(2);
      config_allowed();
      const auto from = nodes.find(tokens[1]);
      const auto to = nodes.find(tokens[2]);
      if (from == nodes.end()) fail(line_no, "unknown node " + tokens[1]);
      if (to == nodes.end()) fail(line_no, "unknown node " + tokens[2]);
      Tick propagation = 0;
      if (tokens.size() > 3) {
        propagation = static_cast<Tick>(
            parse_number(line_no, tokens[3], "propagation"));
      }
      try {
        scenario.topology.add_link(from->second, to->second, propagation);
      } catch (const std::invalid_argument& e) {
        fail(line_no, e.what());
      }
    } else if (keyword == "priorities") {
      need_args(1);
      config_allowed();
      const double n = parse_number(line_no, tokens[1], "priority count");
      if (n < 1 || n != static_cast<std::size_t>(n)) {
        fail(line_no, "priorities must be a positive integer");
      }
      scenario.params.priorities = static_cast<std::size_t>(n);
    } else if (keyword == "queue") {
      need_args(1);
      config_allowed();
      scenario.params.advertised_bound =
          parse_number(line_no, tokens[1], "queue depth");
      if (!(scenario.params.advertised_bound > 0)) {
        fail(line_no, "queue depth must be positive");
      }
    } else if (keyword == "cdv") {
      need_args(1);
      config_allowed();
      if (tokens[1] == "hard") {
        scenario.params.cdv_policy = CdvPolicy::kHard;
      } else if (tokens[1] == "soft") {
        scenario.params.cdv_policy = CdvPolicy::kSoft;
      } else {
        fail(line_no, "cdv must be hard or soft");
      }
    } else if (keyword == "guarantee") {
      need_args(1);
      config_allowed();
      if (tokens[1] == "computed") {
        scenario.params.guarantee = GuaranteeMode::kComputed;
      } else if (tokens[1] == "advertised") {
        scenario.params.guarantee = GuaranteeMode::kAdvertised;
      } else {
        fail(line_no, "guarantee must be computed or advertised");
      }
    } else if (keyword == "connect") {
      need_args(2);
      saw_connect = true;
      ScenarioConnection conn;
      conn.name = tokens[1];
      if (connection_names[conn.name]) {
        fail(line_no, "duplicate connection name " + conn.name);
      }
      connection_names[conn.name] = true;

      bool have_route = false;
      bool have_traffic = false;
      for (std::size_t k = 2; k < tokens.size(); ++k) {
        const auto [key, value] = key_value(tokens[k]);
        if (key == "route") {
          const auto hops = split(value, '-');
          if (hops.size() < 2) fail(line_no, "route needs >= 2 nodes");
          for (std::size_t h = 0; h + 1 < hops.size(); ++h) {
            const auto from = nodes.find(hops[h]);
            const auto to = nodes.find(hops[h + 1]);
            if (from == nodes.end()) fail(line_no, "unknown node " + hops[h]);
            if (to == nodes.end()) {
              fail(line_no, "unknown node " + hops[h + 1]);
            }
            const auto link =
                scenario.topology.find_link(from->second, to->second);
            if (!link.has_value()) {
              fail(line_no, "no link " + hops[h] + " -> " + hops[h + 1]);
            }
            conn.route.push_back(*link);
          }
          have_route = true;
        } else if (key == "cbr") {
          conn.request.traffic = TrafficDescriptor::cbr(
              parse_number(line_no, value, "cbr rate"));
          have_traffic = true;
        } else if (key == "vbr") {
          const auto parts = split(value, ',');
          if (parts.size() != 3) fail(line_no, "vbr needs pcr,scr,mbs");
          const double mbs = parse_number(line_no, parts[2], "mbs");
          if (mbs < 1 || mbs != static_cast<std::uint32_t>(mbs)) {
            fail(line_no, "mbs must be a positive integer");
          }
          conn.request.traffic = TrafficDescriptor::vbr(
              parse_number(line_no, parts[0], "pcr"),
              parse_number(line_no, parts[1], "scr"),
              static_cast<std::uint32_t>(mbs));
          have_traffic = true;
        } else if (key == "deadline") {
          conn.request.deadline =
              parse_number(line_no, value, "deadline");
        } else if (key == "prio") {
          const double p = parse_number(line_no, value, "priority");
          if (p < 0 || p != static_cast<Priority>(p)) {
            fail(line_no, "prio must be a non-negative integer");
          }
          conn.request.priority = static_cast<Priority>(p);
        } else {
          fail(line_no, "unknown connect option " + key);
        }
      }
      if (!have_route) fail(line_no, "connect needs route=");
      if (!have_traffic) fail(line_no, "connect needs cbr= or vbr=");
      try {
        conn.request.traffic.validate();
      } catch (const std::invalid_argument& e) {
        fail(line_no, e.what());
      }
      if (conn.request.priority >= scenario.params.priorities) {
        fail(line_no, "prio out of range (priorities = " +
                          std::to_string(scenario.params.priorities) + ")");
      }
      scenario.connections.push_back(std::move(conn));
    } else {
      fail(line_no, "unknown keyword " + keyword);
    }
  }
  return scenario;
}

ScenarioFile parse_scenario(const std::string& text) {
  std::istringstream is(text);
  return parse_scenario(is);
}

std::vector<ScenarioOutcome> run_scenario(
    const ScenarioFile& scenario,
    std::unique_ptr<ConnectionManager>* manager_out) {
  auto manager =
      std::make_unique<ConnectionManager>(scenario.topology, scenario.params);
  std::vector<ScenarioOutcome> outcomes;
  outcomes.reserve(scenario.connections.size());
  for (const ScenarioConnection& conn : scenario.connections) {
    ScenarioOutcome outcome;
    outcome.name = conn.name;
    const auto result = manager->setup(conn.request, conn.route);
    outcome.accepted = result.accepted;
    outcome.reason = result.reason;
    outcome.e2e_bound_at_setup = result.e2e_bound_at_setup;
    outcome.e2e_advertised = result.e2e_advertised;
    outcomes.push_back(std::move(outcome));
  }
  if (manager_out != nullptr) {
    *manager_out = std::move(manager);
  }
  return outcomes;
}

}  // namespace rtcac
