// rtcac/cli/scenario_parser.h
//
// Text scenario format for the rtcac_admit command-line tool, so a
// network plan can be admission-checked without writing C++.  The format
// is line-oriented; '#' starts a comment.
//
//   # topology
//   switch   sw0
//   terminal tA
//   link     tA sw0          # unidirectional, optional propagation ticks
//   link     sw0 sw1 3
//
//   # network-wide CAC configuration (before the first connect)
//   priorities 2
//   queue      32            # advertised bound / FIFO depth, cell times
//   cdv        hard          # or: soft
//   guarantee  computed      # or: advertised
//
//   # connection requests, admitted in file order
//   connect c1 route=tA-sw0-sw1 cbr=0.2            deadline=50
//   connect c2 route=tA-sw0-sw1 vbr=0.5,0.1,8      deadline=60 prio=1
//
// Routes name the nodes the connection visits; each consecutive pair must
// be joined by a link (the first matching link is used).

#pragma once

#include <istream>
#include <memory>
#include <string>
#include <vector>

#include "net/connection_manager.h"

namespace rtcac {

/// One `connect` line.
struct ScenarioConnection {
  std::string name;
  QosRequest request;
  Route route;
};

/// A fully parsed scenario file.
struct ScenarioFile {
  Topology topology;
  ConnectionManager::Params params;
  std::vector<ScenarioConnection> connections;
};

/// Thrown on any syntax or semantic error; the message carries the line
/// number and offending text.
class ScenarioParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses a scenario from a stream.  Throws ScenarioParseError.
[[nodiscard]] ScenarioFile parse_scenario(std::istream& in);

/// Convenience overload for in-memory text (tests, tools).
[[nodiscard]] ScenarioFile parse_scenario(const std::string& text);

/// Admission outcome of one scenario connection.
struct ScenarioOutcome {
  std::string name;
  bool accepted = false;
  std::string reason;
  double e2e_bound_at_setup = 0;
  double e2e_advertised = 0;
};

/// Runs every `connect` in file order against a fresh ConnectionManager
/// built from the scenario; returns one outcome per connection.  The
/// manager is exposed through the out-parameter (may be nullptr) so
/// callers can print reports against the final state.
std::vector<ScenarioOutcome> run_scenario(
    const ScenarioFile& scenario, std::unique_ptr<ConnectionManager>* manager_out = nullptr);

}  // namespace rtcac
