// rtcac/net/routing.h
//
// Route selection.  The paper assumes a "preselected route" per connection
// (Section 4.1); we provide minimum-hop routing (Dijkstra on hop count
// with propagation as tie-break) plus helpers for enumerating routes used
// by failover scenarios.

#pragma once

#include <optional>

#include "net/topology.h"

namespace rtcac {

/// Minimum-hop route from `from` to `to`; nullopt when unreachable.
/// Ties are broken toward lower total propagation, then lower link ids, so
/// the result is deterministic.
[[nodiscard]] std::optional<Route> shortest_route(const Topology& topology,
                                                  NodeId from, NodeId to);

/// The components a route computation must steer around — the failed set
/// during mass rerouting (net/reroute.h).  A banned node bans every link
/// touching it: a route may neither transit nor terminate there.
struct RouteAvoidance {
  std::span<const NodeId> nodes;
  std::span<const LinkId> links;
};

/// Minimum-hop route that avoids every link in `excluded` (e.g. a failed
/// cable); nullopt when no such route exists.
[[nodiscard]] std::optional<Route> shortest_route_avoiding(
    const Topology& topology, NodeId from, NodeId to,
    std::span<const LinkId> excluded);

/// Minimum-hop route avoiding a whole failed set — nodes and links in one
/// query.  nullopt when no such route exists, and in particular when
/// `from` or `to` is itself in the avoided set (a connection whose
/// endpoint is down cannot be rehomed).  The search never relaxes into an
/// avoided node, so a candidate route cannot re-enter the avoided set
/// through any intermediate hop either.
[[nodiscard]] std::optional<Route> shortest_route_avoiding(
    const Topology& topology, NodeId from, NodeId to,
    const RouteAvoidance& avoid);

}  // namespace rtcac
