// rtcac/net/routing.h
//
// Route selection.  The paper assumes a "preselected route" per connection
// (Section 4.1); we provide minimum-hop routing (Dijkstra on hop count
// with propagation as tie-break) plus helpers for enumerating routes used
// by failover scenarios.

#pragma once

#include <optional>

#include "net/topology.h"

namespace rtcac {

/// Minimum-hop route from `from` to `to`; nullopt when unreachable.
/// Ties are broken toward lower total propagation, then lower link ids, so
/// the result is deterministic.
[[nodiscard]] std::optional<Route> shortest_route(const Topology& topology,
                                                  NodeId from, NodeId to);

/// Minimum-hop route that avoids every link in `excluded` (e.g. a failed
/// cable); nullopt when no such route exists.
[[nodiscard]] std::optional<Route> shortest_route_avoiding(
    const Topology& topology, NodeId from, NodeId to,
    std::span<const LinkId> excluded);

}  // namespace rtcac
