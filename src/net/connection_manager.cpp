#include "net/connection_manager.h"

#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>

#include "core/stream_ops.h"
#include "util/contract.h"
#include "util/log.h"

namespace rtcac {

namespace {
constexpr std::size_t kNoCac = std::numeric_limits<std::size_t>::max();
}

const char* to_string(TeardownReason reason) noexcept {
  switch (reason) {
    case TeardownReason::kLocal:
      return "local";
    case TeardownReason::kRelease:
      return "release";
    case TeardownReason::kFailure:
      return "failure";
  }
  return "?";
}

ConnectionManager::ConnectionManager(const Topology& topology,
                                     const Params& params)
    : topology_(topology), params_(params) {
  RTCAC_REQUIRE(params_.priorities >= 1,
                "ConnectionManager: priorities must be >= 1");
  cac_index_.assign(topology_.node_count(), kNoCac);
  for (const NodeInfo& n : topology_.nodes()) {
    if (n.kind != NodeKind::kSwitch) continue;
    SwitchCac::Config cfg;
    cfg.in_ports = topology_.in_links(n.id).size() + 1;  // + local port
    cfg.out_ports = topology_.out_links(n.id).size();
    cfg.priorities = params_.priorities;
    cfg.advertised_bound = params_.advertised_bound;
    if (cfg.out_ports == 0) continue;  // sink-only switch: nothing to admit
    cac_index_[n.id] = cacs_.size();
    cacs_.emplace_back(cfg);
  }
}

SwitchCac& ConnectionManager::switch_cac(NodeId node) {
  RTCAC_REQUIRE(node < cac_index_.size() && cac_index_[node] != kNoCac,
                "ConnectionManager: node has no CAC state (terminal or sink)");
  return cacs_[cac_index_[node]];
}

const SwitchCac& ConnectionManager::switch_cac(NodeId node) const {
  RTCAC_REQUIRE(node < cac_index_.size() && cac_index_[node] != kNoCac,
                "ConnectionManager: node has no CAC state (terminal or sink)");
  return cacs_[cac_index_[node]];
}

std::vector<HopRef> ConnectionManager::queueing_points(
    const Route& route) const {
  const std::vector<NodeId> nodes = topology_.route_nodes(route);
  std::vector<HopRef> hops;
  hops.reserve(route.size());
  for (std::size_t k = 0; k < route.size(); ++k) {
    const NodeId from = nodes[k];
    if (topology_.node(from).kind != NodeKind::kSwitch) {
      continue;  // terminals are rate-controlled, not queueing points
    }
    HopRef hop;
    hop.node = from;
    hop.link = route[k];
    hop.out_port = topology_.out_port(route[k]);
    hop.in_port = (k == 0) ? topology_.local_in_port(from)
                           : topology_.in_port(route[k - 1]);
    hops.push_back(hop);
  }
  return hops;
}

BitStream ConnectionManager::arrival_at_hop(const TrafficDescriptor& traffic,
                                            std::span<const HopRef> hops,
                                            std::size_t hop_index,
                                            Priority priority) const {
  RTCAC_REQUIRE(hop_index <= hops.size(),
                "arrival_at_hop: hop index out of range");
  std::vector<double> upstream;
  upstream.reserve(hop_index);
  for (std::size_t h = 0; h < hop_index; ++h) {
    upstream.push_back(
        switch_cac(hops[h].node).advertised(hops[h].out_port, priority));
  }
  const double cdv = accumulate_cdv(params_.cdv_policy, upstream);
  return delay(traffic.to_bitstream(), cdv);
}

ConnectionManager::SetupResult ConnectionManager::setup(
    const QosRequest& request, const Route& route) {
  SetupResult result;
  request.traffic.validate();
  if (request.priority >= params_.priorities) {
    result.reason = "priority out of range";
    return result;
  }

  const std::vector<HopRef> hops = queueing_points(route);
  const ConnectionId id = next_id_;

  // Walk the route as the SETUP message would, committing hop by hop and
  // rolling back on the first rejection.
  std::size_t committed = 0;
  for (std::size_t h = 0; h < hops.size(); ++h) {
    SwitchCac& cac = switch_cac(hops[h].node);
    const BitStream arrival =
        arrival_at_hop(request.traffic, hops, h, request.priority);
    const SwitchCheckResult check =
        cac.check(hops[h].in_port, hops[h].out_port, request.priority,
                  arrival);
    if (!check.admitted) {
      result.rejecting_node = hops[h].node;
      std::ostringstream os;
      os << "rejected at " << topology_.node(hops[h].node).name << ": "
         << check.reason;
      result.reason = os.str();
      break;
    }
    cac.add(id, hops[h].in_port, hops[h].out_port, request.priority, arrival);
    ++committed;
    // check.bound_at_priority always has a value when admitted (an
    // unbounded result is rejected inside check()).
    result.hop_bounds.push_back(check.bound_at_priority.value());
    result.e2e_bound_at_setup += check.bound_at_priority.value();
    result.e2e_advertised +=
        cac.advertised(hops[h].out_port, request.priority);
  }

  // Deadline check under the configured guarantee semantics.
  if (result.reason.empty()) {
    const double promised = params_.guarantee == GuaranteeMode::kAdvertised
                                ? result.e2e_advertised
                                : result.e2e_bound_at_setup;
    if (promised > request.deadline) {
      std::ostringstream os;
      os << "end-to-end bound " << promised << " exceeds deadline "
         << request.deadline;
      result.reason = os.str();
    }
  }

  if (!result.reason.empty()) {
    for (std::size_t h = 0; h < committed; ++h) {
      switch_cac(hops[h].node).remove(id);
    }
    result.hop_bounds.clear();
    result.e2e_bound_at_setup = 0;
    result.e2e_advertised = 0;
    RTCAC_DEBUG << "setup failed: " << result.reason;
    return result;
  }

  result.accepted = true;
  result.id = id;
  next_id_++;
  records_.emplace(id, ConnectionRecord{request, route, hops});
  return result;
}

void ConnectionManager::adopt(ConnectionId id, ConnectionRecord record) {
  RTCAC_REQUIRE(!records_.contains(id),
                "ConnectionManager: duplicate adopted id");
  for (const HopRef& hop : record.hops) {
    RTCAC_ASSERT(switch_cac(hop.node).contains(id),
                 "ConnectionManager: adopted connection " +
                     std::to_string(id) + " holds no reservation at " +
                     topology_.node(hop.node).name);
    // CONNECTED confirmed the route end to end; the reservations stop
    // being provisional and outlive any setup lease.
    switch_cac(hop.node).make_permanent(id);
  }
  records_.emplace(id, std::move(record));
}

bool ConnectionManager::teardown(ConnectionId id) {
  return teardown(id, TeardownReason::kLocal);
}

bool ConnectionManager::teardown(ConnectionId id, TeardownReason reason) {
  const auto it = records_.find(id);
  if (it == records_.end()) return false;
  for (const HopRef& hop : it->second.hops) {
    switch_cac(hop.node).remove(id);
  }
  records_.erase(it);
  ++teardowns_[reason];
  return true;
}

std::size_t ConnectionManager::teardowns(TeardownReason reason) const {
  const auto it = teardowns_.find(reason);
  return it == teardowns_.end() ? 0 : it->second;
}

ConnectionManager::ReclaimResult ConnectionManager::reclaim(double now) {
  ReclaimResult result;
  std::set<ConnectionId> orphans;
  for (SwitchCac& cac : cacs_) {
    for (const ConnectionId id : cac.reclaim(now)) {
      // Adopted connections are permanent; an expired lease can only
      // belong to a setup attempt that never completed.
      RTCAC_ASSERT(!records_.contains(id),
                   "ConnectionManager: reclaimed a reservation of adopted "
                   "connection " + std::to_string(id));
      ++result.reservations_reclaimed;
      orphans.insert(id);
    }
  }
  result.orphans.assign(orphans.begin(), orphans.end());
  orphans_reclaimed_ += result.orphans.size();
  return result;
}

std::optional<double> ConnectionManager::current_e2e_bound(
    ConnectionId id) const {
  const auto it = records_.find(id);
  if (it == records_.end()) return std::nullopt;
  double total = 0;
  for (const HopRef& hop : it->second.hops) {
    const auto bound = switch_cac(hop.node).computed_bound(
        hop.out_port, it->second.request.priority);
    if (!bound.has_value()) return std::nullopt;
    total += *bound;
  }
  return total;
}

}  // namespace rtcac
