#include "net/connection_manager.h"

#include <limits>
#include <set>
#include <stdexcept>
#include <utility>

#include "util/contract.h"
#include "util/log.h"

namespace rtcac {

namespace {
constexpr std::size_t kNoCac = std::numeric_limits<std::size_t>::max();
}

const char* to_string(TeardownReason reason) noexcept {
  switch (reason) {
    case TeardownReason::kLocal:
      return "local";
    case TeardownReason::kRelease:
      return "release";
    case TeardownReason::kFailure:
      return "failure";
    case TeardownReason::kRerouted:
      return "rerouted";
  }
  return "?";
}

ConnectionManager::ConnectionManager(const Topology& topology,
                                     const Params& params)
    : ConnectionManager(topology, params, BitstreamCacPolicy::instance()) {}

ConnectionManager::ConnectionManager(const Topology& topology,
                                     const Params& params,
                                     const CacPolicy& policy)
    : topology_(topology),
      params_(params),
      evaluator_(PathEvaluator::Params{params.priorities, params.cdv_policy,
                                       params.guarantee}),
      policy_name_(policy.name()) {
  RTCAC_REQUIRE(params_.priorities >= 1,
                "ConnectionManager: priorities must be >= 1");
  cac_index_.assign(topology_.node_count(), kNoCac);
  for (const NodeInfo& n : topology_.nodes()) {
    if (n.kind != NodeKind::kSwitch) continue;
    PointConfig cfg;
    cfg.in_ports = topology_.in_links(n.id).size() + 1;  // + local port
    cfg.out_ports = topology_.out_links(n.id).size();
    cfg.priorities = params_.priorities;
    cfg.advertised_bound = params_.advertised_bound;
    cfg.coalesce_budget = params_.coalesce_budget;
    if (cfg.out_ports == 0) continue;  // sink-only switch: nothing to admit
    cac_index_[n.id] = cacs_.size();
    cacs_.push_back(policy.make_point(cfg));
  }
}

PolicyCac& ConnectionManager::policy_point(NodeId node) {
  RTCAC_REQUIRE(node < cac_index_.size() && cac_index_[node] != kNoCac,
                "ConnectionManager: node has no CAC state (terminal or sink)");
  return *cacs_[cac_index_[node]];
}

const PolicyCac& ConnectionManager::policy_point(NodeId node) const {
  RTCAC_REQUIRE(node < cac_index_.size() && cac_index_[node] != kNoCac,
                "ConnectionManager: node has no CAC state (terminal or sink)");
  return *cacs_[cac_index_[node]];
}

SwitchCac& ConnectionManager::switch_cac(NodeId node) {
  SwitchCac* cac = policy_point(node).bitstream();
  RTCAC_REQUIRE(cac != nullptr,
                "ConnectionManager: switch_cac requires the bit-stream "
                "policy");
  return *cac;
}

const SwitchCac& ConnectionManager::switch_cac(NodeId node) const {
  const SwitchCac* cac = policy_point(node).bitstream();
  RTCAC_REQUIRE(cac != nullptr,
                "ConnectionManager: switch_cac requires the bit-stream "
                "policy");
  return *cac;
}

std::vector<HopRef> ConnectionManager::queueing_points(
    const Route& route) const {
  const std::vector<NodeId> nodes = topology_.route_nodes(route);
  std::vector<HopRef> hops;
  hops.reserve(route.size());
  for (std::size_t k = 0; k < route.size(); ++k) {
    const NodeId from = nodes[k];
    if (topology_.node(from).kind != NodeKind::kSwitch) {
      continue;  // terminals are rate-controlled, not queueing points
    }
    HopRef hop;
    hop.node = from;
    hop.link = route[k];
    hop.out_port = topology_.out_port(route[k]);
    hop.in_port = (k == 0) ? topology_.local_in_port(from)
                           : topology_.in_port(route[k - 1]);
    hops.push_back(hop);
  }
  return hops;
}

std::vector<PathEvaluator::Hop> ConnectionManager::eval_hops(
    std::span<const HopRef> hops) const {
  std::vector<PathEvaluator::Hop> views;
  views.reserve(hops.size());
  for (const HopRef& hop : hops) {
    PathEvaluator::Hop view;
    // The evaluator only mutates a hop through commit_hop(); the const
    // driver paths (check, arrival_at_hop) never call it.
    view.cac = const_cast<PolicyCac*>(&policy_point(hop.node));
    view.in_port = hop.in_port;
    view.out_port = hop.out_port;
    view.name = topology_.node(hop.node).name;
    views.push_back(view);
  }
  return views;
}

BitStream ConnectionManager::arrival_at_hop(const TrafficDescriptor& traffic,
                                            std::span<const HopRef> hops,
                                            std::size_t hop_index,
                                            Priority priority) const {
  RTCAC_REQUIRE(hop_index <= hops.size(),
                "arrival_at_hop: hop index out of range");
  const std::vector<PathEvaluator::Hop> views = eval_hops(hops);
  return PathEvaluator::bitstream_arrival(
      traffic, evaluator_.cdv_before(views, hop_index, priority));
}

namespace {

/// Applies a PathEvaluator decision to the engine-facing SetupResult.
void apply_decision(ConnectionManager::SetupResult& result,
                    const PathEvaluator::Decision& decision,
                    std::span<const HopRef> hops) {
  result.reject = decision.reject;
  result.reason = decision.reject.detail;
  if (decision.reject.code == RejectCode::kAdmission &&
      decision.reject.hop < hops.size()) {
    result.rejecting_node = hops[decision.reject.hop].node;
  }
  result.hop_bounds = decision.hop_bounds;
  result.e2e_bound_at_setup = decision.e2e_bound;
  result.e2e_advertised = decision.e2e_advertised;
  result.accepted = decision.admitted;
}

}  // namespace

ConnectionManager::SetupResult ConnectionManager::setup(
    const QosRequest& request, const Route& route) {
  SetupResult result;
  request.traffic.validate();
  // Priority gate first, as the historical walk did: an out-of-range
  // priority rejects even when the route itself is malformed.
  if (!evaluator_.priority_valid(request.priority)) {
    result.reject = PathEvaluator::priority_rejection();
    result.reason = result.reject.detail;
    return result;
  }
  const std::vector<HopRef> hops = queueing_points(route);
  const std::vector<PathEvaluator::Hop> views = eval_hops(hops);

  // Fresh admission is the acquire-only DeltaTransaction: the shared
  // walk evaluates every hop against the current state and only then
  // commits.  Decision-identical to the historical interleaved
  // check/add walk: the hops reserve on distinct switches, so no hop's
  // check could ever see another hop's commit of the same connection.
  PathEvaluator::DeltaTransaction txn;
  txn.acquire = views;
  txn.id = next_id_;
  txn.request = &request;
  txn.lease_expiry = SwitchCac::kPermanentLease;
  const PathEvaluator::Decision decision = evaluator_.execute(txn);
  apply_decision(result, decision, hops);
  if (!result.accepted) {
    RTCAC_DEBUG << "setup failed: " << result.reason;
    return result;
  }

  result.id = next_id_;
  next_id_++;
  records_.emplace(result.id, ConnectionRecord{request, route, hops});
  return result;
}

ConnectionManager::SetupResult ConnectionManager::check(
    const QosRequest& request, const Route& route) const {
  SetupResult result;
  request.traffic.validate();
  if (!evaluator_.priority_valid(request.priority)) {
    result.reject = PathEvaluator::priority_rejection();
    result.reason = result.reject.detail;
    return result;
  }
  const std::vector<HopRef> hops = queueing_points(route);
  const std::vector<PathEvaluator::Hop> views = eval_hops(hops);
  apply_decision(result, evaluator_.evaluate(views, request), hops);
  return result;
}

ConnectionManager::SetupResult ConnectionManager::check_reroute(
    ConnectionId id, const Route& new_route) const {
  const auto it = records_.find(id);
  RTCAC_REQUIRE(it != records_.end(),
                "ConnectionManager: check_reroute of unknown connection");
  // The old reservations are still part of every switch's load, so this
  // plain check is the combined old+new validation.
  return check(it->second.request, new_route);
}

ConnectionManager::SetupResult ConnectionManager::rehome(
    ConnectionId id, const Route& new_route) {
  const auto it = records_.find(id);
  RTCAC_REQUIRE(it != records_.end(),
                "ConnectionManager: rehome of unknown connection");
  const QosRequest& request = it->second.request;

  SetupResult result;
  const std::vector<HopRef> new_hops = queueing_points(new_route);
  const std::vector<PathEvaluator::Hop> new_views = eval_hops(new_hops);
  const std::vector<PathEvaluator::Hop> old_views = eval_hops(it->second.hops);

  // The both-sided DeltaTransaction: admit the replacement while the old
  // path is still reserved, release the old path, rebind the new
  // reservations onto the stable id.  The provisional id keeps shared
  // queueing points collision-free while both incarnations coexist.
  const ConnectionId provisional = next_id_++;
  PathEvaluator::DeltaTransaction txn;
  txn.release = old_views;
  txn.acquire = new_views;
  txn.id = id;
  txn.provisional = provisional;
  txn.request = &request;
  txn.lease_expiry = SwitchCac::kPermanentLease;
  const PathEvaluator::Decision decision = evaluator_.execute(txn);
  apply_decision(result, decision, new_hops);
  if (!result.accepted) {
    RTCAC_DEBUG << "rehome " << id << " failed: " << result.reason;
    return result;
  }

  ++teardowns_[TeardownReason::kRerouted];
  it->second.route = new_route;
  it->second.hops = new_hops;
  result.id = id;
  return result;
}

ConnectionManager::SetupResult ConnectionManager::renegotiate(
    ConnectionId id, const QosRequest& new_request) {
  const auto it = records_.find(id);
  RTCAC_REQUIRE(it != records_.end(),
                "ConnectionManager: renegotiate of unknown connection");
  new_request.traffic.validate();

  SetupResult result;
  const std::vector<PathEvaluator::Hop> views = eval_hops(it->second.hops);

  // Renegotiation is the both-sided DeltaTransaction with release ==
  // acquire: the new descriptor is validated over the same route while
  // the old reservations are still part of every queueing point's load,
  // so the verdict covers the combined old+new state and the old
  // descriptor stays committed until acceptance.
  const ConnectionId provisional = next_id_++;
  PathEvaluator::DeltaTransaction txn;
  txn.release = views;
  txn.acquire = views;
  txn.id = id;
  txn.provisional = provisional;
  txn.request = &new_request;
  txn.lease_expiry = SwitchCac::kPermanentLease;
  const PathEvaluator::Decision decision = evaluator_.execute(txn);
  apply_decision(result, decision, it->second.hops);
  if (!result.accepted) {
    RTCAC_DEBUG << "renegotiate " << id << " failed: " << result.reason;
    return result;
  }

  it->second.request = new_request;
  result.id = id;
  return result;
}

ConnectionManager::SetupResult ConnectionManager::check_renegotiate(
    ConnectionId id, const QosRequest& new_request) const {
  const auto it = records_.find(id);
  RTCAC_REQUIRE(it != records_.end(),
                "ConnectionManager: check_renegotiate of unknown connection");
  new_request.traffic.validate();
  // The old reservations are still part of every switch's load, so this
  // plain check over the current hops is the release-then-readmit-
  // under-combined-load oracle.
  SetupResult result;
  if (!evaluator_.priority_valid(new_request.priority)) {
    result.reject = PathEvaluator::priority_rejection();
    result.reason = result.reject.detail;
    return result;
  }
  const std::vector<PathEvaluator::Hop> views = eval_hops(it->second.hops);
  apply_decision(result, evaluator_.evaluate(views, new_request),
                 it->second.hops);
  return result;
}

void ConnectionManager::adopt(ConnectionId id, ConnectionRecord record) {
  RTCAC_REQUIRE(!records_.contains(id),
                "ConnectionManager: duplicate adopted id");
  for (const HopRef& hop : record.hops) {
    PolicyCac& cac = policy_point(hop.node);
    RTCAC_ASSERT(cac.contains(id),
                 "ConnectionManager: adopted connection " +
                     std::to_string(id) + " holds no reservation at " +
                     topology_.node(hop.node).name);
    // CONNECTED confirmed the route end to end; the reservations stop
    // being provisional and outlive any setup lease.
    cac.make_permanent(id);
  }
  records_.emplace(id, std::move(record));
}

void ConnectionManager::complete_modify(ConnectionId id,
                                        ConnectionId provisional,
                                        const QosRequest& new_request,
                                        std::span<const std::any> arrivals) {
  const auto it = records_.find(id);
  RTCAC_REQUIRE(it != records_.end(),
                "ConnectionManager: complete_modify of unknown connection");
  const std::vector<PathEvaluator::Hop> views = eval_hops(it->second.hops);
  // The acquire side was already committed hop by hop under the
  // provisional id by the MODIFY walk; run the DeltaTransaction epilogue
  // (release old, rebind provisional onto the stable id).
  PathEvaluator::finalize_delta(views, views, id, provisional,
                                new_request.priority, arrivals,
                                SwitchCac::kPermanentLease);
  for (const HopRef& hop : it->second.hops) {
    // MODIFIED confirmed the swap end to end; the rebound reservations
    // stop being provisional, exactly as CONNECTED does for a setup.
    policy_point(hop.node).make_permanent(id);
  }
  it->second.request = new_request;
}

bool ConnectionManager::teardown(ConnectionId id) {
  return teardown(id, TeardownReason::kLocal);
}

bool ConnectionManager::teardown(ConnectionId id, TeardownReason reason) {
  const auto it = records_.find(id);
  if (it == records_.end()) return false;
  // Teardown is the release-only DeltaTransaction.
  const std::vector<PathEvaluator::Hop> views = eval_hops(it->second.hops);
  PathEvaluator::DeltaTransaction txn;
  txn.release = views;
  txn.id = id;
  evaluator_.commit_delta(txn, {});
  records_.erase(it);
  ++teardowns_[reason];
  return true;
}

std::size_t ConnectionManager::teardowns(TeardownReason reason) const {
  const auto it = teardowns_.find(reason);
  return it == teardowns_.end() ? 0 : it->second;
}

ConnectionManager::ReclaimResult ConnectionManager::reclaim(double now) {
  ReclaimResult result;
  std::set<ConnectionId> orphans;
  for (const auto& cac : cacs_) {
    for (const ConnectionId id : cac->reclaim(now)) {
      // Adopted connections are permanent; an expired lease can only
      // belong to a setup attempt that never completed.
      RTCAC_ASSERT(!records_.contains(id),
                   "ConnectionManager: reclaimed a reservation of adopted "
                   "connection " + std::to_string(id));
      ++result.reservations_reclaimed;
      orphans.insert(id);
    }
  }
  result.orphans.assign(orphans.begin(), orphans.end());
  orphans_reclaimed_ += result.orphans.size();
  return result;
}

std::optional<double> ConnectionManager::current_e2e_bound(
    ConnectionId id) const {
  const auto it = records_.find(id);
  if (it == records_.end()) return std::nullopt;
  double total = 0;
  for (const HopRef& hop : it->second.hops) {
    const auto bound = policy_point(hop.node).computed_bound(
        hop.out_port, it->second.request.priority);
    if (!bound.has_value()) return std::nullopt;
    total += *bound;
  }
  return total;
}

}  // namespace rtcac
