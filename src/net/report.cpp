#include "net/report.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace rtcac {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

double NetworkReport::worst_bound() const {
  double worst = 0;
  for (const QueueReport& q : queues) {
    worst = std::max(worst, q.computed_bound);
  }
  return worst;
}

std::size_t NetworkReport::total_recommended_slots() const {
  std::size_t total = 0;
  for (const QueueReport& q : queues) {
    total += q.recommended_slots;
  }
  return total;
}

bool NetworkReport::all_within_advertised() const {
  return std::all_of(queues.begin(), queues.end(), [](const QueueReport& q) {
    return q.computed_bound <= q.advertised_bound;
  });
}

std::string NetworkReport::to_string() const {
  std::ostringstream os;
  os << "network report: " << connections << " connections, "
     << queues.size() << " active queues\n";
  char line[160];
  std::snprintf(line, sizeof(line), "%-10s %-5s %-5s %-6s %-9s %-10s %-10s %-8s %-6s\n",
                "node", "port", "prio", "conns", "load", "bound", "advert",
                "backlog", "slots");
  os << line;
  for (const QueueReport& q : queues) {
    std::snprintf(line, sizeof(line),
                  "%-10s %-5zu %-5u %-6zu %-9.4f %-10.2f %-10.2f %-8.2f %-6zu\n",
                  q.node_name.c_str(), q.out_port, q.priority, q.connections,
                  q.sustained_load, q.computed_bound, q.advertised_bound,
                  q.backlog_cells, q.recommended_slots);
    os << line;
  }
  return os.str();
}

double SignalingReport::connect_ratio() const {
  if (attempts == 0) return 1.0;
  return static_cast<double>(connected) / static_cast<double>(attempts);
}

std::string SignalingReport::to_string() const {
  std::ostringstream os;
  os << "signaling report: " << attempts << " attempts, " << connected
     << " connected (" << connect_ratio() * 100.0 << "%)\n";
  os << "  retransmits " << retransmits << ", timeouts " << timeouts
     << ", stale dropped " << stale_dropped << ", lost to faults "
     << lost_to_faults << "\n";
  os << "  releases sent " << releases_sent << " (" << released_hops
     << " hop reservations), orphans reclaimed " << orphans_reclaimed
     << "\n";
  for (const auto& [reason, count] : rejects_by_reason) {
    if (count > 0) {
      os << "  rejected (" << rtcac::to_string(reason) << "): " << count
         << "\n";
    }
  }
  for (const auto& [reason, count] : teardowns) {
    if (count > 0) {
      os << "  torn down (" << rtcac::to_string(reason) << "): " << count
         << "\n";
    }
  }
  return os.str();
}

SignalingReport summarize_signaling(const SignalingEngine& engine) {
  SignalingReport report;
  report.attempts = engine.outcomes().size();
  for (const auto& entry : engine.outcomes()) {
    if (entry.second.connected) ++report.connected;
  }
  const SignalingEngine::Counters& c = engine.counters();
  report.retransmits = c.retransmits;
  report.timeouts = c.timeouts;
  report.stale_dropped = c.stale_dropped;
  report.releases_sent = c.releases_sent;
  report.released_hops = c.released_hops;
  report.lost_to_faults = c.lost_to_faults;
  report.rejects_by_reason = c.rejects_by_reason;
  const ConnectionManager& manager = engine.manager();
  report.orphans_reclaimed = manager.orphans_reclaimed();
  for (const TeardownReason reason :
       {TeardownReason::kLocal, TeardownReason::kRelease,
        TeardownReason::kFailure, TeardownReason::kRerouted}) {
    report.teardowns[reason] = manager.teardowns(reason);
  }
  return report;
}

std::string RerouteReport::to_string() const {
  std::ostringstream os;
  os << "reroute report: " << episodes << " episodes ("
     << failure_events << " failures, " << recovery_events
     << " recoveries observed)\n";
  os << "  rehomed " << rehomed << ", kept original " << kept_original
     << ", degraded " << degraded << " (" << attempts << " admission attempts)\n";
  if (rehomed + kept_original > 0) {
    os << "  rescue latency: mean " << mean_rescue_latency << ", max "
       << max_rescue_latency << " ticks\n";
  }
  for (const auto& [reason, count] : degraded_by_reason) {
    if (count > 0) {
      os << "  degraded (" << rtcac::to_string(reason) << "): " << count
         << "\n";
    }
  }
  return os.str();
}

RerouteReport summarize_reroute(const RerouteCoordinator& coordinator) {
  RerouteReport report;
  const RerouteCoordinator::Stats& s = coordinator.stats();
  report.failure_events = s.failure_events;
  report.recovery_events = s.recovery_events;
  report.episodes = s.episodes;
  report.rehomed = s.rehomed;
  report.kept_original = s.kept_original;
  report.degraded = s.degraded;
  report.attempts = s.attempts;
  report.max_rescue_latency = s.max_rescue_latency;
  const std::size_t rescued = s.rehomed + s.kept_original;
  report.mean_rescue_latency =
      rescued == 0 ? 0.0
                   : static_cast<double>(s.total_rescue_latency) /
                         static_cast<double>(rescued);
  for (const DegradationEntry& entry : coordinator.degradation().entries) {
    ++report.degraded_by_reason[entry.reason.code];
  }
  return report;
}

NetworkReport summarize(const ConnectionManager& manager) {
  NetworkReport report;
  report.connections = manager.connection_count();
  const Topology& topo = manager.topology();
  for (const NodeInfo& node : topo.nodes()) {
    if (node.kind != NodeKind::kSwitch || topo.out_links(node.id).empty()) {
      continue;
    }
    const SwitchCac& cac = manager.switch_cac(node.id);
    for (std::size_t port = 0; port < cac.out_ports(); ++port) {
      for (Priority prio = 0; prio < cac.priorities(); ++prio) {
        const std::size_t conns = cac.connection_count(port, prio);
        if (conns == 0) continue;
        QueueReport q;
        q.node = node.id;
        q.node_name = node.name;
        q.out_port = port;
        q.priority = prio;
        q.connections = conns;
        q.sustained_load = cac.sustained_load(port, prio);
        q.computed_bound = cac.computed_bound(port, prio).value_or(kInf);
        q.advertised_bound = cac.advertised(port, prio);
        q.backlog_cells = cac.buffer_requirement(port, prio).value_or(kInf);
        q.recommended_slots =
            std::isfinite(q.backlog_cells)
                ? static_cast<std::size_t>(std::ceil(q.backlog_cells - 1e-9)) +
                      1
                : 0;
        report.queues.push_back(std::move(q));
      }
    }
  }
  return report;
}

}  // namespace rtcac
