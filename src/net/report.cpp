#include "net/report.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace rtcac {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

double NetworkReport::worst_bound() const {
  double worst = 0;
  for (const QueueReport& q : queues) {
    worst = std::max(worst, q.computed_bound);
  }
  return worst;
}

std::size_t NetworkReport::total_recommended_slots() const {
  std::size_t total = 0;
  for (const QueueReport& q : queues) {
    total += q.recommended_slots;
  }
  return total;
}

bool NetworkReport::all_within_advertised() const {
  return std::all_of(queues.begin(), queues.end(), [](const QueueReport& q) {
    return q.computed_bound <= q.advertised_bound;
  });
}

std::string NetworkReport::to_string() const {
  std::ostringstream os;
  os << "network report: " << connections << " connections, "
     << queues.size() << " active queues\n";
  char line[160];
  std::snprintf(line, sizeof(line), "%-10s %-5s %-5s %-6s %-9s %-10s %-10s %-8s %-6s\n",
                "node", "port", "prio", "conns", "load", "bound", "advert",
                "backlog", "slots");
  os << line;
  for (const QueueReport& q : queues) {
    std::snprintf(line, sizeof(line),
                  "%-10s %-5zu %-5u %-6zu %-9.4f %-10.2f %-10.2f %-8.2f %-6zu\n",
                  q.node_name.c_str(), q.out_port, q.priority, q.connections,
                  q.sustained_load, q.computed_bound, q.advertised_bound,
                  q.backlog_cells, q.recommended_slots);
    os << line;
  }
  return os.str();
}

NetworkReport summarize(const ConnectionManager& manager) {
  NetworkReport report;
  report.connections = manager.connection_count();
  const Topology& topo = manager.topology();
  for (const NodeInfo& node : topo.nodes()) {
    if (node.kind != NodeKind::kSwitch || topo.out_links(node.id).empty()) {
      continue;
    }
    const SwitchCac& cac = manager.switch_cac(node.id);
    for (std::size_t port = 0; port < cac.out_ports(); ++port) {
      for (Priority prio = 0; prio < cac.priorities(); ++prio) {
        const std::size_t conns = cac.connection_count(port, prio);
        if (conns == 0) continue;
        QueueReport q;
        q.node = node.id;
        q.node_name = node.name;
        q.out_port = port;
        q.priority = prio;
        q.connections = conns;
        q.sustained_load = cac.sustained_load(port, prio);
        q.computed_bound = cac.computed_bound(port, prio).value_or(kInf);
        q.advertised_bound = cac.advertised(port, prio);
        q.backlog_cells = cac.buffer_requirement(port, prio).value_or(kInf);
        q.recommended_slots =
            std::isfinite(q.backlog_cells)
                ? static_cast<std::size_t>(std::ceil(q.backlog_cells - 1e-9)) +
                      1
                : 0;
        report.queues.push_back(std::move(q));
      }
    }
  }
  return report;
}

}  // namespace rtcac
