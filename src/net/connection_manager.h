// rtcac/net/connection_manager.h
//
// Network-level connection admission control (Section 4.3), in the
// "central connection admission control server" deployment the paper
// describes for RTnet: one ConnectionManager owns the CAC state of every
// switch and walks a connection's route hop by hop, exactly as the
// distributed SETUP procedure would (signaling.h drives the same state
// machine message-by-message).
//
// The walk itself — per-hop arrival construction under accumulated CDV,
// the admission query, and the GuaranteeMode deadline split — is the
// shared core/path_eval.h PathEvaluator; this class is a thin serial
// driver that owns one PolicyCac per switch and feeds the evaluator.
// The admission policy is pluggable (CacPolicy): the default is the
// paper's bit-stream check (SwitchCac); baseline/policies.h provides
// `peak` and `max_rate` for comparison workloads.
//
// End-to-end deadline semantics are selectable:
//   * GuaranteeMode::kAdvertised — sum of advertised hop bounds must meet
//     the deadline.  Load-independent: the promise can never be invalidated
//     by later admissions.  What an online switched-VC service should use.
//   * GuaranteeMode::kComputed — sum of the worst-case bounds computed at
//     setup time must meet the deadline.  Tighter, but a later admission
//     can grow another connection's computed bound (never past the
//     advertised cap).  This matches the paper's off-line RTnet evaluation
//     (Figures 10-13), where the full connection set is known.

#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/cdv.h"
#include "core/connection.h"
#include "core/path_eval.h"
#include "core/switch_cac.h"
#include "net/topology.h"

namespace rtcac {

/// Why a connection's reservations were released (diagnostics counters).
enum class TeardownReason {
  kLocal,     ///< ordinary user-requested teardown
  kRelease,   ///< signaling RELEASE tearing down a failed/timed-out setup
  kFailure,   ///< component failure forced the release
  kRerouted,  ///< old path released after a make-before-break rehome
};

[[nodiscard]] const char* to_string(TeardownReason reason) noexcept;

/// One queueing point a route crosses: switch `node` transmitting onto
/// `link` from its output queue `out_port`, fed from input `in_port`.
struct HopRef {
  NodeId node = 0;
  LinkId link = 0;
  std::size_t in_port = 0;
  std::size_t out_port = 0;
};

class ConnectionManager {
 public:
  struct Params {
    std::size_t priorities = 1;
    /// Default advertised per-queue bound Dmax, in cell times (== FIFO
    /// depth in cells).
    double advertised_bound = 32;
    CdvPolicy cdv_policy = CdvPolicy::kHard;
    GuaranteeMode guarantee = GuaranteeMode::kComputed;
    /// Per-aggregate segment cap forwarded to every queueing point
    /// (PointConfig::coalesce_budget; 0 = exact).  Policies with
    /// per-cell aggregates trade admit-side conservatism for
    /// population-independent admission cost; a coalesced engine may
    /// reject a connection the exact engine admits, never the reverse.
    std::size_t coalesce_budget = 0;
  };

  struct SetupResult {
    bool accepted = false;
    ConnectionId id = kInvalidConnection;
    std::string reason;                   ///< empty when accepted
    /// Canonical machine-readable rejection (core/path_eval.h); reason
    /// always equals reject.detail.
    RejectReason reject;
    std::optional<NodeId> rejecting_node; ///< switch that said no, if any
    /// Computed worst-case bound at each queueing point, at setup time.
    std::vector<double> hop_bounds;
    double e2e_bound_at_setup = 0;  ///< sum of hop_bounds
    double e2e_advertised = 0;      ///< sum of advertised hop bounds
  };

  /// Bit-stream (paper Alg. 4.1) policy.
  ConnectionManager(const Topology& topology, const Params& params);
  /// Explicit admission policy; `policy` is only used during
  /// construction (it is a stateless factory).
  ConnectionManager(const Topology& topology, const Params& params,
                    const CacPolicy& policy);

  ConnectionManager(const ConnectionManager&) = delete;
  ConnectionManager& operator=(const ConnectionManager&) = delete;

  /// Admits (or rejects) a connection over `route`.  On success the state
  /// of every switch on the route is updated; on failure nothing is
  /// committed and `reason`/`reject` explain the rejection.
  SetupResult setup(const QosRequest& request, const Route& route);

  /// The same decision setup() would make right now, committing nothing
  /// (result.id stays kInvalidConnection).  The serial oracle the
  /// equivalence suite and the parallel benchmark gate replay against.
  [[nodiscard]] SetupResult check(const QosRequest& request,
                                  const Route& route) const;

  /// Delta admission for an established connection: could `id` be carried
  /// over `new_route` *in addition to* the current load (its old
  /// reservations still held — the make-before-break combined check)?
  /// Commits nothing.  Throws (RTCAC_REQUIRE) on an unknown id.
  [[nodiscard]] SetupResult check_reroute(ConnectionId id,
                                          const Route& new_route) const;

  /// Make-before-break rehome (docs/FAULT_TOLERANCE.md, "Survivability"):
  /// admits `new_route` as a delta against the combined old+new load,
  /// commits it under a provisional id, releases the old path (counted as
  /// TeardownReason::kRerouted), and rebinds the new reservations onto
  /// the connection's stable id.  The connection keeps its id and its
  /// record follows the new route; at no instant does it hold zero
  /// reserved paths.  On rejection nothing changes — the old path stays
  /// reserved — and the result carries the canonical RejectReason.
  SetupResult rehome(ConnectionId id, const Route& new_route);

  /// In-place renegotiation (MODIFY): swap an established connection's
  /// descriptor for `new_request` over its existing route, re-validating
  /// the paper's Alg. 3.1 walk against the combined old+new load (the
  /// old reservations stay committed until the full-path verdict — the
  /// same make-before-break DeltaTransaction that drives rehome, with
  /// release == acquire).  On acceptance the record's request is
  /// updated; on rejection nothing changes and the old descriptor stays
  /// reserved.  Throws (RTCAC_REQUIRE) on an unknown id.
  SetupResult renegotiate(ConnectionId id, const QosRequest& new_request);

  /// The decision renegotiate() would make right now, committing
  /// nothing: the new descriptor checked over the connection's current
  /// hops while the old reservations are still held — exactly the
  /// release-then-readmit-under-combined-load oracle.  Throws on an
  /// unknown id.
  [[nodiscard]] SetupResult check_renegotiate(
      ConnectionId id, const QosRequest& new_request) const;

  /// Releases a connection, restoring every switch's state.  Returns
  /// false for an unknown id.  The reason-tagged variant feeds the
  /// teardowns() diagnostics counters (the plain form counts as kLocal).
  bool teardown(ConnectionId id);
  bool teardown(ConnectionId id, TeardownReason reason);

  /// Teardowns performed so far for `reason`.
  [[nodiscard]] std::size_t teardowns(TeardownReason reason) const;

  /// Orphan-reservation reclamation sweep: removes, from every switch,
  /// reservations whose lease expired at or before `now`.  Adopted
  /// connections are permanent and never reclaimed.  Returns the distinct
  /// orphaned connection ids and the number of hop reservations returned.
  struct ReclaimResult {
    std::vector<ConnectionId> orphans;     ///< distinct ids, ascending
    std::size_t reservations_reclaimed = 0;  ///< hop entries removed
  };
  ReclaimResult reclaim(double now);

  /// Cumulative count of distinct orphaned connections reclaimed.
  [[nodiscard]] std::size_t orphans_reclaimed() const noexcept {
    return orphans_reclaimed_;
  }

  /// Queueing points of a route (links transmitted by switches).  Throws
  /// std::invalid_argument on a malformed route.
  [[nodiscard]] std::vector<HopRef> queueing_points(const Route& route) const;

  /// Worst-case arrival stream the connection presents at queueing point
  /// `hop_index` of `hops` (CDV-distorted per the configured policy,
  /// bit-stream representation regardless of the admission policy).
  [[nodiscard]] BitStream arrival_at_hop(const TrafficDescriptor& traffic,
                                         std::span<const HopRef> hops,
                                         std::size_t hop_index,
                                         Priority priority) const;

  /// End-to-end worst-case bound of an established connection under the
  /// *current* total load (off-line evaluation, Figures 10-13); nullopt if
  /// any hop is unbounded or the id is unknown.
  [[nodiscard]] std::optional<double> current_e2e_bound(ConnectionId id) const;

  /// Per-switch CAC state (advertised-bound tuning, diagnostics).  Throws
  /// std::invalid_argument for a terminal node, and (via RTCAC_REQUIRE)
  /// when the configured policy is not the bit-stream one.
  [[nodiscard]] SwitchCac& switch_cac(NodeId node);
  [[nodiscard]] const SwitchCac& switch_cac(NodeId node) const;

  /// Policy-agnostic per-switch admission state.
  [[nodiscard]] PolicyCac& policy_point(NodeId node);
  [[nodiscard]] const PolicyCac& policy_point(NodeId node) const;

  /// The shared hop-walk evaluator (used by SignalingEngine to evaluate
  /// SETUP hops with identical semantics).
  [[nodiscard]] const PathEvaluator& evaluator() const noexcept {
    return evaluator_;
  }

  [[nodiscard]] const std::string& policy_name() const noexcept {
    return policy_name_;
  }

  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] const Params& params() const noexcept { return params_; }
  [[nodiscard]] std::size_t connection_count() const noexcept {
    return records_.size();
  }

  struct ConnectionRecord {
    QosRequest request;
    Route route;
    std::vector<HopRef> hops;
  };
  [[nodiscard]] const std::map<ConnectionId, ConnectionRecord>& connections()
      const noexcept {
    return records_;
  }

  /// Signaling support: reserves a fresh network-unique connection id for
  /// a hop-by-hop (distributed) setup.
  [[nodiscard]] ConnectionId allocate_id() noexcept { return next_id_++; }

  /// Signaling support: registers a connection whose per-switch state was
  /// committed externally (by SignalingEngine), making it visible to
  /// teardown() and current_e2e_bound().  Throws on duplicate id.  Verifies
  /// (under RTCAC_ASSERT) that every hop of the record actually holds a
  /// reservation for `id`, then makes those reservations permanent — the
  /// lease refresh the CONNECTED confirmation implies.
  void adopt(ConnectionId id, ConnectionRecord record);

  /// Signaling support: completes a distributed MODIFY whose new
  /// reservations were already committed hop by hop under `provisional`
  /// (the kModify walk).  Runs the DeltaTransaction epilogue — release
  /// the old descriptor, rebind `provisional` onto the stable id — then
  /// makes the reservations permanent and swings the record's request.
  /// `arrivals` are the per-hop prepared arrivals of the new descriptor,
  /// in record-hop order.  Throws on an unknown id.
  void complete_modify(ConnectionId id, ConnectionId provisional,
                       const QosRequest& new_request,
                       std::span<const std::any> arrivals);

  /// PathEvaluator views of a route's queueing points (hop names point
  /// into the topology and stay valid for its lifetime).
  [[nodiscard]] std::vector<PathEvaluator::Hop> eval_hops(
      std::span<const HopRef> hops) const;

 private:
  const Topology& topology_;
  Params params_;
  PathEvaluator evaluator_;
  std::string policy_name_;
  /// Index into cacs_ per node; npos for terminals.
  std::vector<std::size_t> cac_index_;
  std::vector<std::unique_ptr<PolicyCac>> cacs_;
  std::map<ConnectionId, ConnectionRecord> records_;
  std::map<TeardownReason, std::size_t> teardowns_;
  std::size_t orphans_reclaimed_ = 0;
  ConnectionId next_id_ = 1;
};

}  // namespace rtcac
