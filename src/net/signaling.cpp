#include "net/signaling.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/log.h"

namespace rtcac {

const char* to_string(SignalingMessageType type) noexcept {
  switch (type) {
    case SignalingMessageType::kSetup:
      return "SETUP";
    case SignalingMessageType::kReject:
      return "REJECT";
    case SignalingMessageType::kConnected:
      return "CONNECTED";
    case SignalingMessageType::kRelease:
      return "RELEASE";
    case SignalingMessageType::kModify:
      return "MODIFY";
    case SignalingMessageType::kModifyReject:
      return "MODIFY-REJECT";
    case SignalingMessageType::kModified:
      return "MODIFIED";
  }
  return "?";
}

std::string to_string(const SignalingMessage& m) {
  std::ostringstream os;
  os << to_string(m.type) << " conn=" << m.id << " at=" << m.at
     << " hop=" << m.hop_index;
  if (m.attempt > 0) os << " attempt=" << m.attempt;
  if (!m.reject.detail.empty()) os << " (" << m.reject.detail << ")";
  return os.str();
}

SignalingEngine::SignalingEngine(ConnectionManager& manager)
    : SignalingEngine(manager, Timers{}, nullptr) {}

SignalingEngine::SignalingEngine(ConnectionManager& manager, Timers timers,
                                 FaultInjector* faults)
    : manager_(manager), timers_(timers), faults_(faults) {
  RTCAC_REQUIRE(timers_.hop_latency >= 1 && timers_.setup_rto >= 1 &&
                    timers_.backoff >= 1 && timers_.lease >= 1,
                "SignalingEngine: timer parameters must be >= 1");
}

ConnectionId SignalingEngine::initiate(const QosRequest& request,
                                       const Route& route) {
  // Validate the complete request before allocating a connection id: a
  // malformed route or out-of-range priority must burn no id and leave no
  // in-flight residue.
  request.traffic.validate();
  RTCAC_REQUIRE(request.priority < manager_.params().priorities,
                "SignalingEngine: request priority out of range");
  const std::vector<NodeId> nodes = manager_.topology().route_nodes(route);

  InFlight flight;
  flight.request = request;
  flight.route = route;
  flight.hops = manager_.queueing_points(route);
  flight.eval_hops = manager_.eval_hops(flight.hops);
  flight.hop_states.assign(flight.hops.size(), HopState{});
  flight.rto = timers_.setup_rto;
  flight.source = nodes.front();
  flight.destination = nodes.back();

  const ConnectionId id = manager_.allocate_id();
  const auto [it, inserted] = in_flight_.emplace(id, std::move(flight));
  RTCAC_ASSERT(inserted, "SignalingEngine: in-flight id collision");
  send_setup(id, it->second);
  arm_setup_timer(id, it->second);
  return id;
}

void SignalingEngine::send_setup(ConnectionId id, const InFlight& flight) {
  SignalingMessage m;
  m.type = SignalingMessageType::kSetup;
  m.id = id;
  m.at = flight.source;
  m.hop_index = 0;
  m.attempt = flight.attempt;
  m.via = flight.route.front();
  send(std::move(m), timers_.hop_latency);
}

void SignalingEngine::arm_setup_timer(ConnectionId id,
                                      const InFlight& flight) {
  events_.schedule(now() + flight.rto, EventPhase::kTimer,
                   [this, id, attempt = flight.attempt] {
                     on_setup_timer(id, attempt);
                   });
}

void SignalingEngine::send(SignalingMessage m, Tick transit) {
  Tick extra = 0;
  if (faults_ != nullptr) {
    const FaultVerdict v = faults_->verdict(m);
    if (v.drop) {
      ++counters_.lost_to_faults;
      return;
    }
    if (v.duplicate) enqueue(m, now() + transit + v.duplicate_delay);
    extra = v.extra_delay;
  }
  enqueue(std::move(m), now() + transit + extra);
}

void SignalingEngine::enqueue(SignalingMessage m, Tick at) {
  ++pending_messages_;
  events_.schedule(at, EventPhase::kArrival, [this, msg = std::move(m)] {
    --pending_messages_;
    deliver(msg);
  });
}

void SignalingEngine::deliver(const SignalingMessage& m) {
  if (faults_ != nullptr && !faults_->deliverable(m, now())) {
    ++counters_.lost_to_faults;  // destroyed in transit, never processed
    return;
  }
  trace_.push_back(m);
  RTCAC_DEBUG << "signaling: " << to_string(m);
  processed_message_ = true;
  switch (m.type) {
    case SignalingMessageType::kSetup:
      process_setup(m);
      break;
    case SignalingMessageType::kReject:
      process_reject(m);
      break;
    case SignalingMessageType::kConnected:
      process_connected(m);
      break;
    case SignalingMessageType::kRelease:
      process_release(m);
      break;
    case SignalingMessageType::kModify:
      process_modify(m);
      break;
    case SignalingMessageType::kModifyReject:
      process_modify_reject(m);
      break;
    case SignalingMessageType::kModified:
      process_modified(m);
      break;
  }
}

bool SignalingEngine::step() {
  // Absorb non-message events (expired timers, in-transit losses) until a
  // signaling message is actually handled, preserving the historical
  // "one message per step" observability contract.
  while (!events_.empty()) {
    processed_message_ = false;
    events_.run_next();
    if (processed_message_) return true;
  }
  return false;
}

void SignalingEngine::run() {
  while (step()) {
  }
}

void SignalingEngine::process_setup(const SignalingMessage& m) {
  const auto it = in_flight_.find(m.id);
  if (it == in_flight_.end() || m.attempt != it->second.attempt) {
    ++counters_.stale_dropped;  // finished or superseded attempt
    return;
  }
  InFlight& flight = it->second;

  if (m.hop_index >= flight.hops.size()) {
    // SETUP reached the destination: check the end-to-end deadline, then
    // confirm back to the source.
    double bound_sum = 0;
    double advertised_sum = 0;
    for (const HopState& hs : flight.hop_states) {
      bound_sum += hs.bound;
      advertised_sum += hs.advertised;
    }
    // The shared deadline split (core/path_eval.h) under the manager's
    // GuaranteeMode — identical comparison and reason text to the serial
    // walk.
    RejectReason deadline = manager_.evaluator().deadline_rejection(
        flight.hops.size(), bound_sum, advertised_sum,
        flight.request.deadline);
    if (deadline.rejected()) {
      SignalingMessage reject;
      reject.type = SignalingMessageType::kReject;
      reject.id = m.id;
      reject.at = flight.destination;
      reject.hop_index = flight.hops.size();
      reject.attempt = m.attempt;
      reject.origin = flight.destination;
      reject.reject = std::move(deadline);
      if (!flight.route.empty()) reject.via = flight.route.back();
      send(std::move(reject), timers_.hop_latency);
      return;
    }
    SignalingMessage connected;
    connected.type = SignalingMessageType::kConnected;
    connected.id = m.id;
    connected.at = flight.source;
    connected.hop_index = flight.hops.size();
    connected.attempt = m.attempt;
    if (!flight.route.empty()) connected.via = flight.route.front();
    // The confirmation crosses the whole route on its way back.
    send(std::move(connected),
         timers_.hop_latency * static_cast<Tick>(flight.route.size()));
    return;
  }

  const HopRef& hop = flight.hops[m.hop_index];
  PolicyCac& cac = manager_.policy_point(hop.node);
  HopState& state = flight.hop_states[m.hop_index];
  const double lease_until = static_cast<double>(now() + timers_.lease);

  if (cac.contains(m.id)) {
    // A duplicate or retransmitted SETUP must not double-commit: renew
    // the lease and re-own the reservation for the current attempt.
    cac.renew_lease(m.id, lease_until);
    state.committed = true;
  } else {
    // The shared per-hop trial (arrival under accumulated CDV + policy
    // check); commit reuses the prepared arrival.
    const PathEvaluator& evaluator = manager_.evaluator();
    PathEvaluator::HopEvaluation eval =
        evaluator.evaluate_hop(flight.eval_hops, m.hop_index, flight.request);
    if (!eval.verdict.admitted) {
      SignalingMessage reject;
      reject.type = SignalingMessageType::kReject;
      reject.id = m.id;
      reject.at = hop.node;
      reject.hop_index = m.hop_index;
      reject.attempt = m.attempt;
      reject.origin = hop.node;
      reject.reject = PathEvaluator::hop_rejection(
          m.hop_index, manager_.topology().node(hop.node).name,
          eval.verdict.detail);
      if (m.hop_index > 0) {
        reject.via = flight.hops[m.hop_index - 1].link;
      } else if (!flight.route.empty()) {
        reject.via = flight.route.front();
      }
      send(std::move(reject), timers_.hop_latency);
      return;
    }
    evaluator.commit_hop(flight.eval_hops[m.hop_index], m.id,
                         flight.request.priority, eval.arrival, lease_until);
    state.committed = true;
    state.bound = eval.verdict.bound;
    state.advertised = eval.verdict.advertised;
  }

  SignalingMessage forward = m;
  forward.hop_index = m.hop_index + 1;
  forward.at = manager_.topology().link(hop.link).to;
  forward.via = hop.link;
  send(std::move(forward), timers_.hop_latency);
}

void SignalingEngine::process_reject(const SignalingMessage& m) {
  const auto it = in_flight_.find(m.id);
  if (it == in_flight_.end() || m.attempt != it->second.attempt) {
    // A reject of a finished or superseded attempt must not release state
    // the live attempt owns; whatever its epoch committed dies with the
    // hop leases instead.
    ++counters_.stale_dropped;
    return;
  }
  InFlight& flight = it->second;
  if (m.hop_index > 0) {
    // Release the most recent reservation and keep walking upstream.
    const std::size_t k = m.hop_index - 1;
    HopState& state = flight.hop_states[k];
    if (state.committed) {
      // remove() may find nothing if the lease was already reclaimed.
      manager_.policy_point(flight.hops[k].node).remove(m.id);
      state = HopState{};
    }
    SignalingMessage upstream = m;
    upstream.hop_index = k;
    upstream.at = flight.hops[k].node;
    if (k > 0) {
      upstream.via = flight.hops[k - 1].link;
    } else if (!flight.route.empty()) {
      upstream.via = flight.route.front();
    }
    send(std::move(upstream), timers_.hop_latency);
    return;
  }
  SignalingOutcome outcome;
  outcome.connected = false;
  outcome.reject = m.reject;
  if (outcome.reject.code == RejectCode::kNone) {
    outcome.reject.code = RejectCode::kAdmission;  // bare REJECT default
  }
  outcome.reason =
      m.reject.detail.empty() ? "rejected" : m.reject.detail;
  outcome.rejecting_node = m.origin.has_value() ? *m.origin : m.at;
  const RejectCode category = outcome.reject.code;
  process_failure(m.id, flight, std::move(outcome), category);
}

void SignalingEngine::process_connected(const SignalingMessage& m) {
  const auto it = in_flight_.find(m.id);
  if (it == in_flight_.end() || m.attempt != it->second.attempt) {
    ++counters_.stale_dropped;
    return;
  }
  InFlight& flight = it->second;
  // Adopt only if the reservation chain is intact end to end: a crossing
  // duplicate-attempt reject or an aggressive reclaim may have punched a
  // hole.  If so, ignore this confirmation — the retransmission timer
  // drives another round (or times the attempt out).
  for (std::size_t k = 0; k < flight.hops.size(); ++k) {
    if (!flight.hop_states[k].committed ||
        !manager_.policy_point(flight.hops[k].node).contains(m.id)) {
      ++counters_.stale_dropped;
      return;
    }
  }
  SignalingOutcome outcome;
  outcome.connected = true;
  for (const HopState& hs : flight.hop_states) {
    outcome.e2e_bound_at_setup += hs.bound;
    outcome.e2e_advertised += hs.advertised;
  }
  manager_.adopt(m.id, ConnectionManager::ConnectionRecord{
                           flight.request, flight.route, flight.hops});
  outcomes_.emplace(m.id, std::move(outcome));
  in_flight_.erase(it);
}

void SignalingEngine::process_release(const SignalingMessage& m) {
  const auto it = releasing_.find(m.id);
  if (it == releasing_.end()) {
    ++counters_.stale_dropped;
    return;
  }
  const std::vector<HopRef>& hops = it->second;
  if (m.hop_index < hops.size()) {
    const HopRef& hop = hops[m.hop_index];
    // The lease may have beaten us to it; remove() tolerates that.
    if (manager_.policy_point(hop.node).remove(m.id)) {
      ++counters_.released_hops;
    }
    if (m.hop_index + 1 < hops.size()) {
      SignalingMessage forward = m;
      forward.hop_index = m.hop_index + 1;
      forward.at = hops[m.hop_index + 1].node;
      forward.via = hop.link;
      send(std::move(forward), timers_.hop_latency);
      return;
    }
  }
  // Walk complete.  An adopted record (application-initiated release)
  // retires through the reason-tagged teardown.
  manager_.teardown(m.id, TeardownReason::kRelease);
  releasing_.erase(it);
}

void SignalingEngine::process_failure(ConnectionId id, InFlight& flight,
                                      SignalingOutcome outcome,
                                      RejectCode category) {
  ++counters_.rejects_by_reason[category];
  const bool residue =
      std::any_of(flight.hop_states.begin(), flight.hop_states.end(),
                  [](const HopState& hs) { return hs.committed; });
  if (residue && !releasing_.contains(id)) {
    // Tear down whatever part of the route is still committed.  If the
    // RELEASE walk is itself lost, the hop leases are the backstop.
    releasing_.emplace(id, flight.hops);
    ++counters_.releases_sent;
    SignalingMessage release;
    release.type = SignalingMessageType::kRelease;
    release.id = id;
    release.at = flight.hops.front().node;
    release.hop_index = 0;
    release.attempt = flight.attempt;
    if (!flight.route.empty()) release.via = flight.route.front();
    send(std::move(release), timers_.hop_latency);
  }
  outcomes_.emplace(id, std::move(outcome));
  in_flight_.erase(id);
}

void SignalingEngine::on_setup_timer(ConnectionId id, std::uint32_t attempt) {
  const auto it = in_flight_.find(id);
  if (it == in_flight_.end() || it->second.attempt != attempt) {
    return;  // attempt resolved or already superseded; timer is stale
  }
  InFlight& flight = it->second;
  if (flight.retries >= timers_.max_retries) {
    ++counters_.timeouts;
    SignalingOutcome outcome;
    outcome.connected = false;
    std::ostringstream os;
    os << "setup timed out after " << flight.retries << " retransmissions";
    outcome.reason = os.str();
    outcome.reject.code = RejectCode::kTimeout;
    outcome.reject.detail = outcome.reason;
    process_failure(id, flight, std::move(outcome), RejectCode::kTimeout);
    return;
  }
  // New attempt epoch: anything still in flight from the old round is
  // stale from here on, so the retry cannot double-commit or be answered
  // by a rejection it already superseded.
  ++flight.retries;
  ++flight.attempt;
  flight.rto *= timers_.backoff;
  ++counters_.retransmits;
  send_setup(id, flight);
  arm_setup_timer(id, flight);
}

// --- in-place renegotiation (MODIFY/MODIFY-REJECT/MODIFIED) -----------------

bool SignalingEngine::modify(ConnectionId id, const QosRequest& new_request) {
  // Validate before allocating the provisional id, exactly as initiate()
  // validates before allocating the connection id.
  new_request.traffic.validate();
  RTCAC_REQUIRE(new_request.priority < manager_.params().priorities,
                "SignalingEngine: modify priority out of range");
  const auto& connections = manager_.connections();
  const auto it = connections.find(id);
  if (it == connections.end() || modifying_.contains(id) ||
      releasing_.contains(id)) {
    return false;
  }
  const std::vector<NodeId> nodes =
      manager_.topology().route_nodes(it->second.route);

  ModifyFlight flight;
  flight.request = new_request;
  flight.provisional = manager_.allocate_id();
  flight.route = it->second.route;
  flight.hops = it->second.hops;
  flight.eval_hops = manager_.eval_hops(flight.hops);
  flight.hop_states.assign(flight.hops.size(), HopState{});
  flight.arrivals.assign(flight.hops.size(), std::any{});
  flight.rto = timers_.setup_rto;
  flight.source = nodes.front();
  flight.destination = nodes.back();

  const auto [mit, inserted] = modifying_.emplace(id, std::move(flight));
  RTCAC_ASSERT(inserted, "SignalingEngine: duplicate in-flight modify");
  ++counters_.modifies_sent;
  send_modify(id, mit->second);
  arm_modify_timer(id, mit->second);
  return true;
}

void SignalingEngine::send_modify(ConnectionId id, const ModifyFlight& flight) {
  SignalingMessage m;
  m.type = SignalingMessageType::kModify;
  m.id = id;
  m.at = flight.source;
  m.hop_index = 0;
  m.attempt = flight.attempt;
  if (!flight.route.empty()) m.via = flight.route.front();
  send(std::move(m), timers_.hop_latency);
}

void SignalingEngine::arm_modify_timer(ConnectionId id,
                                       const ModifyFlight& flight) {
  events_.schedule(now() + flight.rto, EventPhase::kTimer,
                   [this, id, attempt = flight.attempt] {
                     on_modify_timer(id, attempt);
                   });
}

void SignalingEngine::process_modify(const SignalingMessage& m) {
  const auto it = modifying_.find(m.id);
  if (it == modifying_.end() || m.attempt != it->second.attempt) {
    ++counters_.stale_dropped;  // finished or superseded modify
    return;
  }
  ModifyFlight& flight = it->second;

  if (m.hop_index >= flight.hops.size()) {
    // MODIFY reached the destination: the per-hop verdicts covered the
    // combined old+new load; re-run the shared deadline split over the
    // new descriptor's bounds before confirming the swap.
    double bound_sum = 0;
    double advertised_sum = 0;
    for (const HopState& hs : flight.hop_states) {
      bound_sum += hs.bound;
      advertised_sum += hs.advertised;
    }
    RejectReason deadline = manager_.evaluator().deadline_rejection(
        flight.hops.size(), bound_sum, advertised_sum,
        flight.request.deadline);
    if (deadline.rejected()) {
      SignalingMessage reject;
      reject.type = SignalingMessageType::kModifyReject;
      reject.id = m.id;
      reject.at = flight.destination;
      reject.hop_index = flight.hops.size();
      reject.attempt = m.attempt;
      reject.origin = flight.destination;
      reject.reject = std::move(deadline);
      if (!flight.route.empty()) reject.via = flight.route.back();
      send(std::move(reject), timers_.hop_latency);
      return;
    }
    SignalingMessage modified;
    modified.type = SignalingMessageType::kModified;
    modified.id = m.id;
    modified.at = flight.source;
    modified.hop_index = flight.hops.size();
    modified.attempt = m.attempt;
    if (!flight.route.empty()) modified.via = flight.route.front();
    send(std::move(modified),
         timers_.hop_latency * static_cast<Tick>(flight.route.size()));
    return;
  }

  const HopRef& hop = flight.hops[m.hop_index];
  PolicyCac& cac = manager_.policy_point(hop.node);
  HopState& state = flight.hop_states[m.hop_index];
  const double lease_until = static_cast<double>(now() + timers_.lease);

  if (cac.contains(flight.provisional)) {
    // Duplicate or retransmitted MODIFY: renew instead of
    // double-committing, exactly as SETUP does.
    cac.renew_lease(flight.provisional, lease_until);
    state.committed = true;
  } else {
    // The shared per-hop trial of the NEW descriptor.  The connection's
    // old reservation is still part of this point's load, so the verdict
    // covers the combined old+new state (the DeltaTransaction's
    // conservative make-before-break check).
    const PathEvaluator& evaluator = manager_.evaluator();
    PathEvaluator::HopEvaluation eval =
        evaluator.evaluate_hop(flight.eval_hops, m.hop_index, flight.request);
    if (!eval.verdict.admitted) {
      SignalingMessage reject;
      reject.type = SignalingMessageType::kModifyReject;
      reject.id = m.id;
      reject.at = hop.node;
      reject.hop_index = m.hop_index;
      reject.attempt = m.attempt;
      reject.origin = hop.node;
      reject.reject = PathEvaluator::hop_rejection(
          m.hop_index, manager_.topology().node(hop.node).name,
          eval.verdict.detail);
      if (m.hop_index > 0) {
        reject.via = flight.hops[m.hop_index - 1].link;
      } else if (!flight.route.empty()) {
        reject.via = flight.route.front();
      }
      send(std::move(reject), timers_.hop_latency);
      return;
    }
    evaluator.commit_hop(flight.eval_hops[m.hop_index], flight.provisional,
                         flight.request.priority, eval.arrival, lease_until);
    state.committed = true;
    state.bound = eval.verdict.bound;
    state.advertised = eval.verdict.advertised;
    flight.arrivals[m.hop_index] = std::move(eval.arrival);
  }

  SignalingMessage forward = m;
  forward.hop_index = m.hop_index + 1;
  forward.at = manager_.topology().link(hop.link).to;
  forward.via = hop.link;
  send(std::move(forward), timers_.hop_latency);
}

void SignalingEngine::process_modify_reject(const SignalingMessage& m) {
  const auto it = modifying_.find(m.id);
  if (it == modifying_.end() || m.attempt != it->second.attempt) {
    ++counters_.stale_dropped;
    return;
  }
  ModifyFlight& flight = it->second;
  if (m.hop_index > 0) {
    // Release the most recent provisional commit and keep walking
    // upstream.  The old descriptor's reservation is untouched.
    const std::size_t k = m.hop_index - 1;
    HopState& state = flight.hop_states[k];
    if (state.committed) {
      manager_.policy_point(flight.hops[k].node).remove(flight.provisional);
      state = HopState{};
    }
    SignalingMessage upstream = m;
    upstream.hop_index = k;
    upstream.at = flight.hops[k].node;
    if (k > 0) {
      upstream.via = flight.hops[k - 1].link;
    } else if (!flight.route.empty()) {
      upstream.via = flight.route.front();
    }
    send(std::move(upstream), timers_.hop_latency);
    return;
  }
  SignalingOutcome outcome;
  outcome.connected = false;
  outcome.reject = m.reject;
  if (outcome.reject.code == RejectCode::kNone) {
    outcome.reject.code = RejectCode::kAdmission;
  }
  outcome.reason = m.reject.detail.empty() ? "rejected" : m.reject.detail;
  outcome.rejecting_node = m.origin.has_value() ? *m.origin : m.at;
  const RejectCode category = outcome.reject.code;
  process_modify_failure(m.id, flight, std::move(outcome), category);
}

void SignalingEngine::process_modified(const SignalingMessage& m) {
  const auto it = modifying_.find(m.id);
  if (it == modifying_.end() || m.attempt != it->second.attempt) {
    ++counters_.stale_dropped;
    return;
  }
  ModifyFlight& flight = it->second;
  // Swap only if the provisional chain is intact end to end; a hole
  // (crossing stale reject, aggressive reclaim) means this confirmation
  // is unsafe — the retransmission timer drives another round.
  for (std::size_t k = 0; k < flight.hops.size(); ++k) {
    if (!flight.hop_states[k].committed ||
        !manager_.policy_point(flight.hops[k].node)
             .contains(flight.provisional)) {
      ++counters_.stale_dropped;
      return;
    }
  }
  // The base connection must still exist on the same route: a crossing
  // RELEASE (or a rehome) invalidates the swap — roll the provisional
  // commits back instead of leaving mixed reservations.
  const auto& connections = manager_.connections();
  const auto conn = connections.find(m.id);
  const bool route_intact =
      conn != connections.end() && conn->second.route == flight.route;
  if (!route_intact) {
    SignalingOutcome outcome;
    outcome.connected = false;
    outcome.reject.code = RejectCode::kAdmission;
    outcome.reject.detail = "connection changed during modify";
    outcome.reason = outcome.reject.detail;
    process_modify_failure(m.id, flight, std::move(outcome),
                           RejectCode::kAdmission);
    return;
  }
  SignalingOutcome outcome;
  outcome.connected = true;
  for (const HopState& hs : flight.hop_states) {
    outcome.e2e_bound_at_setup += hs.bound;
    outcome.e2e_advertised += hs.advertised;
  }
  // The atomic swap: release the old descriptor, rebind the provisional
  // reservations onto the stable id (the DeltaTransaction epilogue).
  manager_.complete_modify(m.id, flight.provisional, flight.request,
                           flight.arrivals);
  ++counters_.modifies_completed;
  modify_outcomes_.insert_or_assign(m.id, std::move(outcome));
  modifying_.erase(it);
}

void SignalingEngine::process_modify_failure(ConnectionId id,
                                             ModifyFlight& flight,
                                             SignalingOutcome outcome,
                                             RejectCode category) {
  ++counters_.modify_rejects_by_reason[category];
  const bool residue =
      std::any_of(flight.hop_states.begin(), flight.hop_states.end(),
                  [](const HopState& hs) { return hs.committed; });
  if (residue && !releasing_.contains(flight.provisional)) {
    // Roll back the provisional commits with a RELEASE walk keyed by the
    // provisional id; the old descriptor's reservations are untouched.
    // If the walk is itself lost, the provisional leases are the
    // backstop — either way no connection ends with mixed descriptors.
    releasing_.emplace(flight.provisional, flight.hops);
    ++counters_.releases_sent;
    SignalingMessage release;
    release.type = SignalingMessageType::kRelease;
    release.id = flight.provisional;
    release.at = flight.hops.front().node;
    release.hop_index = 0;
    release.attempt = flight.attempt;
    if (!flight.route.empty()) release.via = flight.route.front();
    send(std::move(release), timers_.hop_latency);
  }
  modify_outcomes_.insert_or_assign(id, std::move(outcome));
  modifying_.erase(id);
}

void SignalingEngine::on_modify_timer(ConnectionId id, std::uint32_t attempt) {
  const auto it = modifying_.find(id);
  if (it == modifying_.end() || it->second.attempt != attempt) {
    return;  // modify resolved or superseded; timer is stale
  }
  ModifyFlight& flight = it->second;
  if (flight.retries >= timers_.max_retries) {
    ++counters_.timeouts;
    SignalingOutcome outcome;
    outcome.connected = false;
    std::ostringstream os;
    os << "modify timed out after " << flight.retries << " retransmissions";
    outcome.reason = os.str();
    outcome.reject.code = RejectCode::kTimeout;
    outcome.reject.detail = outcome.reason;
    process_modify_failure(id, flight, std::move(outcome),
                           RejectCode::kTimeout);
    return;
  }
  ++flight.retries;
  ++flight.attempt;
  flight.rto *= timers_.backoff;
  ++counters_.modify_retransmits;
  send_modify(id, flight);
  arm_modify_timer(id, flight);
}

std::optional<SignalingOutcome> SignalingEngine::modify_outcome(
    ConnectionId id) const {
  const auto it = modify_outcomes_.find(id);
  if (it == modify_outcomes_.end()) return std::nullopt;
  return it->second;
}

bool SignalingEngine::release(ConnectionId id) {
  const auto& connections = manager_.connections();
  const auto it = connections.find(id);
  if (it == connections.end() || releasing_.contains(id)) return false;
  releasing_.emplace(id, it->second.hops);
  ++counters_.releases_sent;
  SignalingMessage release;
  release.type = SignalingMessageType::kRelease;
  release.id = id;
  release.hop_index = 0;
  if (!it->second.hops.empty()) {
    release.at = it->second.hops.front().node;
  }
  if (!it->second.route.empty()) release.via = it->second.route.front();
  send(std::move(release), timers_.hop_latency);
  return true;
}

std::optional<SignalingOutcome> SignalingEngine::outcome(
    ConnectionId id) const {
  const auto it = outcomes_.find(id);
  if (it == outcomes_.end()) return std::nullopt;
  return it->second;
}

}  // namespace rtcac
