#include "net/signaling.h"

#include <sstream>
#include <stdexcept>

#include "util/log.h"

namespace rtcac {

std::string to_string(const SignalingMessage& m) {
  std::ostringstream os;
  switch (m.type) {
    case SignalingMessageType::kSetup:
      os << "SETUP";
      break;
    case SignalingMessageType::kReject:
      os << "REJECT";
      break;
    case SignalingMessageType::kConnected:
      os << "CONNECTED";
      break;
  }
  os << " conn=" << m.id << " at=" << m.at << " hop=" << m.hop_index;
  if (!m.reason.empty()) os << " (" << m.reason << ")";
  return os.str();
}

ConnectionId SignalingEngine::initiate(const QosRequest& request,
                                       const Route& route) {
  request.traffic.validate();
  const std::vector<NodeId> nodes = manager_.topology().route_nodes(route);

  InFlight flight;
  flight.request = request;
  flight.route = route;
  flight.hops = manager_.queueing_points(route);
  flight.source = nodes.front();
  flight.destination = nodes.back();

  const ConnectionId id = manager_.allocate_id();
  in_flight_.emplace(id, std::move(flight));

  SignalingMessage m;
  m.type = SignalingMessageType::kSetup;
  m.id = id;
  m.at = nodes.front();
  m.hop_index = 0;
  queue_.push_back(m);
  return id;
}

bool SignalingEngine::step() {
  if (queue_.empty()) return false;
  const SignalingMessage m = queue_.front();
  queue_.pop_front();
  trace_.push_back(m);
  RTCAC_DEBUG << "signaling: " << to_string(m);
  switch (m.type) {
    case SignalingMessageType::kSetup:
      process_setup(m);
      break;
    case SignalingMessageType::kReject:
      process_reject(m);
      break;
    case SignalingMessageType::kConnected:
      process_connected(m);
      break;
  }
  return true;
}

void SignalingEngine::run() {
  while (step()) {
  }
}

void SignalingEngine::process_setup(const SignalingMessage& m) {
  InFlight& flight = in_flight_.at(m.id);

  if (m.hop_index >= flight.hops.size()) {
    // SETUP reached the destination: check the end-to-end deadline, then
    // confirm back to the source.
    const double promised =
        manager_.params().guarantee == GuaranteeMode::kAdvertised
            ? flight.e2e_advertised
            : flight.e2e_bound_at_setup;
    if (promised > flight.request.deadline) {
      SignalingMessage reject;
      reject.type = SignalingMessageType::kReject;
      reject.id = m.id;
      reject.at = flight.destination;
      reject.hop_index = flight.committed;
      std::ostringstream os;
      os << "end-to-end bound " << promised << " exceeds deadline "
         << flight.request.deadline;
      reject.reason = os.str();
      queue_.push_back(reject);
      return;
    }
    SignalingMessage connected;
    connected.type = SignalingMessageType::kConnected;
    connected.id = m.id;
    connected.at = flight.source;
    connected.hop_index = flight.hops.size();
    queue_.push_back(connected);
    return;
  }

  const HopRef& hop = flight.hops[m.hop_index];
  SwitchCac& cac = manager_.switch_cac(hop.node);
  const BitStream arrival = manager_.arrival_at_hop(
      flight.request.traffic, flight.hops, m.hop_index,
      flight.request.priority);
  const SwitchCheckResult check = cac.check(
      hop.in_port, hop.out_port, flight.request.priority, arrival);
  if (!check.admitted) {
    SignalingMessage reject;
    reject.type = SignalingMessageType::kReject;
    reject.id = m.id;
    reject.at = hop.node;
    reject.hop_index = flight.committed;
    reject.reason = check.reason;
    queue_.push_back(reject);
    return;
  }

  cac.add(m.id, hop.in_port, hop.out_port, flight.request.priority, arrival);
  ++flight.committed;
  flight.e2e_bound_at_setup += check.bound_at_priority.value();
  flight.e2e_advertised +=
      cac.advertised(hop.out_port, flight.request.priority);

  SignalingMessage forward = m;
  forward.hop_index = m.hop_index + 1;
  forward.at = manager_.topology().link(hop.link).to;
  queue_.push_back(forward);
}

void SignalingEngine::process_reject(const SignalingMessage& m) {
  InFlight& flight = in_flight_.at(m.id);
  if (m.hop_index > 0) {
    // Release the most recent reservation and keep walking upstream.
    const HopRef& hop = flight.hops[m.hop_index - 1];
    manager_.switch_cac(hop.node).remove(m.id);
    SignalingMessage upstream = m;
    upstream.hop_index = m.hop_index - 1;
    upstream.at = hop.node;
    queue_.push_back(upstream);
    return;
  }
  SignalingOutcome outcome;
  outcome.connected = false;
  outcome.reason = m.reason.empty() ? "rejected" : m.reason;
  outcome.rejecting_node = m.at;
  outcomes_.emplace(m.id, outcome);
  in_flight_.erase(m.id);
}

void SignalingEngine::process_connected(const SignalingMessage& m) {
  InFlight& flight = in_flight_.at(m.id);
  SignalingOutcome outcome;
  outcome.connected = true;
  outcome.e2e_bound_at_setup = flight.e2e_bound_at_setup;
  outcome.e2e_advertised = flight.e2e_advertised;
  outcomes_.emplace(m.id, outcome);
  manager_.adopt(m.id, ConnectionManager::ConnectionRecord{
                           flight.request, flight.route, flight.hops});
  in_flight_.erase(m.id);
}

std::optional<SignalingOutcome> SignalingEngine::outcome(
    ConnectionId id) const {
  const auto it = outcomes_.find(id);
  if (it == outcomes_.end()) return std::nullopt;
  return it->second;
}

}  // namespace rtcac
