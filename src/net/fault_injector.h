// rtcac/net/fault_injector.h
//
// Deterministic, seeded fault model for the signaling plane.  The paper's
// setup procedure (Section 4.1) assumes lossless in-order delivery and
// non-failing components; this injector supplies the adversary the
// fault-tolerant engine is tested against:
//
//   * per-message faults — drop, duplicate, delay, reorder — drawn from a
//     seeded xoshiro stream, so a failure trace is reproducible from its
//     seed alone;
//   * scripted faults — "drop the 2nd REJECT" — for the targeted cascade
//     regressions (a lost REJECT, a lost CONNECTED, a duplicate SETUP
//     arriving after the reject);
//   * component failures — links and switches taken down either manually
//     or over scheduled tick windows.  A message is lost when, at its
//     delivery instant, the node it addresses or the link carrying it is
//     down.
//
// The injector only *classifies*; the SignalingEngine applies verdicts to
// its timed queue.  All state, including the RNG, lives here so two
// engines with equal seeds and schedules replay identical fault traces.

#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "net/signaling_message.h"
#include "util/xorshift.h"

namespace rtcac {

/// Probabilities are per message; draws are independent.
struct FaultProfile {
  double drop_probability = 0;
  double duplicate_probability = 0;
  double delay_probability = 0;
  /// Extra transit ticks a delayed message suffers, uniform in
  /// [1, max_delay].
  Tick max_delay = 8;
  double reorder_probability = 0;
  /// Forward jitter of a reordered message, uniform in [1, max_jitter] —
  /// enough to swap it past its neighbors in the timed queue.
  Tick max_jitter = 2;
};

/// Fate of one message at send time.
struct FaultVerdict {
  bool drop = false;
  bool duplicate = false;
  Tick extra_delay = 0;      ///< added to the original copy's transit
  Tick duplicate_delay = 0;  ///< extra transit of the duplicate copy
};

struct FaultCounters {
  std::size_t messages_seen = 0;
  std::size_t dropped = 0;
  std::size_t duplicated = 0;
  std::size_t delayed = 0;
  std::size_t reordered = 0;
  /// Messages lost because their node or link was down at delivery.
  std::size_t failed_component_losses = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed, FaultProfile profile = {});

  /// Classifies a message about to be sent; updates counters.  Scripted
  /// faults take precedence over probabilistic draws (a scripted drop
  /// wins over a scripted duplicate).
  [[nodiscard]] FaultVerdict verdict(const SignalingMessage& m);

  /// Scripts the nth (1-based) message of `type` to be dropped or
  /// duplicated, counting from the injector's construction.
  void drop_nth(SignalingMessageType type, std::size_t nth);
  void duplicate_nth(SignalingMessageType type, std::size_t nth);

  /// Manual component state; failures persist until recovered.
  void fail_node(NodeId node);
  void recover_node(NodeId node);
  void fail_link(LinkId link);
  void recover_link(LinkId link);

  /// Scheduled outage over the half-open tick window [from, to).
  void schedule_node_outage(NodeId node, Tick from, Tick to);
  void schedule_link_outage(LinkId link, Tick from, Tick to);

  [[nodiscard]] bool node_up(NodeId node, Tick now) const;
  [[nodiscard]] bool link_up(LinkId link, Tick now) const;

  /// True iff `m` can be delivered at `now`: the addressed node and the
  /// carrying link (if any) are up.  Counts a component loss when not.
  [[nodiscard]] bool deliverable(const SignalingMessage& m, Tick now);

  [[nodiscard]] const FaultCounters& counters() const noexcept {
    return counters_;
  }

 private:
  struct Outage {
    Tick from = 0;
    Tick to = 0;
  };
  [[nodiscard]] static bool in_outage(const std::vector<Outage>& outages,
                                      Tick now) noexcept;

  Xorshift rng_;
  FaultProfile profile_;
  std::map<SignalingMessageType, std::set<std::size_t>> scripted_drops_;
  std::map<SignalingMessageType, std::set<std::size_t>> scripted_dups_;
  std::map<SignalingMessageType, std::size_t> seen_;
  std::set<NodeId> down_nodes_;
  std::set<LinkId> down_links_;
  std::map<NodeId, std::vector<Outage>> node_outages_;
  std::map<LinkId, std::vector<Outage>> link_outages_;
  FaultCounters counters_;
};

}  // namespace rtcac
