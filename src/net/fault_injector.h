// rtcac/net/fault_injector.h
//
// Deterministic, seeded fault model for the signaling plane.  The paper's
// setup procedure (Section 4.1) assumes lossless in-order delivery and
// non-failing components; this injector supplies the adversary the
// fault-tolerant engine is tested against:
//
//   * per-message faults — drop, duplicate, delay, reorder — drawn from a
//     seeded xoshiro stream, so a failure trace is reproducible from its
//     seed alone;
//   * scripted faults — "drop the 2nd REJECT" — for the targeted cascade
//     regressions (a lost REJECT, a lost CONNECTED, a duplicate SETUP
//     arriving after the reject);
//   * component failures — links and switches taken down either manually
//     or over scheduled tick windows.  A message is lost when, at its
//     delivery instant, the node it addresses or the link carrying it is
//     down.
//
// The injector only *classifies*; the SignalingEngine applies verdicts to
// its timed queue.  All state, including the RNG, lives here so two
// engines with equal seeds and schedules replay identical fault traces.
//
// Component-state *observers* (docs/FAULT_TOLERANCE.md, "Survivability"):
// subscribers receive a ComponentEvent whenever a node or link changes
// effective up/down state — immediately for manual fail_*/recover_*
// calls, and at the boundary ticks of scheduled [from, to) outage
// windows when the owner drives advance_to(now).  Events report
// *effective* transitions: overlapping windows and manual failures are
// OR-ed together, so a component already down fires nothing when a
// second cause appears and recovers only when the last cause clears.
// Delivery order is deterministic: ascending (tick, kind, id), and
// within one transition subscribers fire in subscription order — the
// RerouteCoordinator (net/reroute.h) relies on this for replayable
// mass-rerouting decisions.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <tuple>
#include <vector>

#include "net/signaling_message.h"
#include "util/xorshift.h"

namespace rtcac {

/// Probabilities are per message; draws are independent.
struct FaultProfile {
  double drop_probability = 0;
  double duplicate_probability = 0;
  double delay_probability = 0;
  /// Extra transit ticks a delayed message suffers, uniform in
  /// [1, max_delay].
  Tick max_delay = 8;
  double reorder_probability = 0;
  /// Forward jitter of a reordered message, uniform in [1, max_jitter] —
  /// enough to swap it past its neighbors in the timed queue.
  Tick max_jitter = 2;
};

/// Fate of one message at send time.
struct FaultVerdict {
  bool drop = false;
  bool duplicate = false;
  Tick extra_delay = 0;      ///< added to the original copy's transit
  Tick duplicate_delay = 0;  ///< extra transit of the duplicate copy
};

struct FaultCounters {
  std::size_t messages_seen = 0;
  std::size_t dropped = 0;
  std::size_t duplicated = 0;
  std::size_t delayed = 0;
  std::size_t reordered = 0;
  /// Messages lost because their node or link was down at delivery.
  std::size_t failed_component_losses = 0;
};

/// Which kind of component a ComponentEvent is about.
enum class ComponentKind { kNode, kLink };

[[nodiscard]] const char* to_string(ComponentKind kind) noexcept;

/// One effective up/down transition of a node or link, as delivered to
/// component observers.
struct ComponentEvent {
  ComponentKind kind = ComponentKind::kNode;
  /// NodeId or LinkId, per `kind`.
  std::uint32_t component = 0;
  /// New effective state: false = just failed, true = just recovered.
  bool up = false;
  /// Tick of the transition: the boundary tick for scheduled outages,
  /// the injector's advance cursor for manual calls.
  Tick at = 0;
};

/// Observer callback; invoked synchronously from fail_*/recover_*/
/// advance_to.  Observers may mutate admission state (that is the point)
/// but must not re-enter the injector's mutators.
using ComponentObserver = std::function<void(const ComponentEvent&)>;

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed, FaultProfile profile = {});

  /// Classifies a message about to be sent; updates counters.  Scripted
  /// faults take precedence over probabilistic draws (a scripted drop
  /// wins over a scripted duplicate).
  [[nodiscard]] FaultVerdict verdict(const SignalingMessage& m);

  /// Scripts the nth (1-based) message of `type` to be dropped or
  /// duplicated, counting from the injector's construction.
  void drop_nth(SignalingMessageType type, std::size_t nth);
  void duplicate_nth(SignalingMessageType type, std::size_t nth);

  /// Manual component state; failures persist until recovered.  Fires
  /// observers immediately when the effective state changes.
  void fail_node(NodeId node);
  void recover_node(NodeId node);
  void fail_link(LinkId link);
  void recover_link(LinkId link);

  /// Scheduled outage over the half-open tick window [from, to).
  /// Observers learn about its boundaries when advance_to crosses them.
  void schedule_node_outage(NodeId node, Tick from, Tick to);
  void schedule_link_outage(LinkId link, Tick from, Tick to);

  /// Registers an observer for effective component transitions; returns a
  /// token for unsubscribe().  Observers fire in subscription order.
  std::size_t subscribe(ComponentObserver observer);
  void unsubscribe(std::size_t token);

  /// Moves the observer cursor forward to `now` (monotone), firing, in
  /// ascending (tick, kind, id) order, one event per effective up/down
  /// transition a pending scheduled outage boundary at or before `now`
  /// causes.  Half-open windows mean a component is down *at* `from` and
  /// up again *at* `to`.  A window scheduled behind the cursor takes
  /// effect at the cursor, never retroactively.  Without observers this
  /// is a cheap cursor bump.
  void advance_to(Tick now);

  /// Earliest unprocessed scheduled boundary, if any — what the next
  /// advance_to would act on.  Drivers (RerouteCoordinator) use it to
  /// interleave outage boundaries with their own timers in tick order.
  [[nodiscard]] std::optional<Tick> next_scheduled_change() const;

  /// The observer cursor: everything scheduled up to here has fired.
  [[nodiscard]] Tick cursor() const noexcept { return cursor_; }

  [[nodiscard]] bool node_up(NodeId node, Tick now) const;
  [[nodiscard]] bool link_up(LinkId link, Tick now) const;

  /// True iff `m` can be delivered at `now`: the addressed node and the
  /// carrying link (if any) are up.  Counts a component loss when not.
  [[nodiscard]] bool deliverable(const SignalingMessage& m, Tick now);

  [[nodiscard]] const FaultCounters& counters() const noexcept {
    return counters_;
  }

 private:
  struct Outage {
    Tick from = 0;
    Tick to = 0;
  };
  [[nodiscard]] static bool in_outage(const std::vector<Outage>& outages,
                                      Tick now) noexcept;

  /// Recomputes the component's effective state at `at` and notifies
  /// observers iff it differs from the last state they saw.
  void notify(ComponentKind kind, std::uint32_t component, Tick at);

  Xorshift rng_;
  FaultProfile profile_;
  std::map<SignalingMessageType, std::set<std::size_t>> scripted_drops_;
  std::map<SignalingMessageType, std::set<std::size_t>> scripted_dups_;
  std::map<SignalingMessageType, std::size_t> seen_;
  std::set<NodeId> down_nodes_;
  std::set<LinkId> down_links_;
  std::map<NodeId, std::vector<Outage>> node_outages_;
  std::map<LinkId, std::vector<Outage>> link_outages_;
  FaultCounters counters_;

  // Observer plumbing: scheduled boundaries not yet swept by advance_to
  // (each outage contributes its `from` and `to` ticks; a set both
  // dedupes shared boundaries and yields the canonical sweep order) and
  // the last effective state each component was announced with.
  std::vector<std::pair<std::size_t, ComponentObserver>> observers_;
  std::size_t next_observer_token_ = 1;
  std::set<std::tuple<Tick, ComponentKind, std::uint32_t>> boundaries_;
  std::map<std::pair<ComponentKind, std::uint32_t>, bool> announced_;
  Tick cursor_ = 0;
};

}  // namespace rtcac
