// rtcac/net/label_manager.h
//
// Network-wide VPI/VCI management: what the signaling plane does, hop by
// hop, when it carries a SETUP — each switch allocates the label the
// connection will use on its *incoming* link and installs the translation
// to the label the next switch handed back.  The result is a LabelPath:
// the label the source stamps on its cells, one rewrite per switch, and
// the label the destination finally sees.
//
// Labels are link-local, so two connections may legitimately carry the
// same (VPI, VCI) on different links; the allocator scopes them per
// (switch, in-port).

#pragma once

#include <map>
#include <vector>

#include "net/label_table.h"
#include "net/topology.h"

namespace rtcac {

/// One switch's translation for a connection.
struct LabelBinding {
  NodeId node = 0;
  std::size_t in_port = 0;
  VcLabel in_label;
  std::size_t out_port = 0;
  VcLabel out_label;
};

/// The full label chain of an established connection.
struct LabelPath {
  /// Label the source stamps on every cell (valid on the first link).
  VcLabel initial;
  /// Per-switch translations, in route order.
  std::vector<LabelBinding> bindings;
  /// Label cells carry on the final link (what the destination binds to
  /// the connection).
  VcLabel egress;
};

class LabelManager {
 public:
  explicit LabelManager(const Topology& topology);

  LabelManager(const LabelManager&) = delete;
  LabelManager& operator=(const LabelManager&) = delete;

  /// Allocates labels and installs translations for `route`.  Throws
  /// std::invalid_argument on malformed routes or duplicate ids and
  /// std::runtime_error on label exhaustion (releasing any partial
  /// state first).
  LabelPath establish(ConnectionId id, const Route& route);

  /// Removes the connection's bindings everywhere; false if unknown.
  bool release(ConnectionId id);

  /// The forwarding table of a switch (the data path consults this).
  [[nodiscard]] const LabelSwitchingTable& table(NodeId node) const;

  [[nodiscard]] std::size_t connection_count() const noexcept {
    return paths_.size();
  }
  [[nodiscard]] bool contains(ConnectionId id) const noexcept {
    return paths_.contains(id);
  }
  [[nodiscard]] const LabelPath& path(ConnectionId id) const {
    return paths_.at(id).path;
  }

 private:
  struct NodeLabels {
    LabelAllocator allocator;
    LabelSwitchingTable table;
  };
  /// Which (node, in-port) each link label was allocated at, so release()
  /// can return everything, including the egress label the final node
  /// holds (it has no binding entry).
  struct Allocation {
    NodeId node;
    std::size_t port;
    VcLabel label;
  };
  struct Established {
    LabelPath path;
    std::vector<Allocation> allocations;
  };

  const Topology& topology_;
  std::map<NodeId, NodeLabels> nodes_;  // every node with incoming links
  std::map<ConnectionId, Established> paths_;
};

}  // namespace rtcac
