// rtcac/net/report.h
//
// Network-wide summaries of the CAC state — the "outcomes of the CAC
// check" the paper says RTnet's designers used to set ring-node buffer
// sizes and priority-level counts (Section 5).
//
// summarize() walks every switch queue carrying traffic and reports, per
// (node, out-port, priority): the connection count, the sustained load,
// the computed worst-case delay bound versus the advertised one, the
// worst-case backlog, and the recommended physical FIFO depth (backlog
// rounded up, plus the output-register slot a slotted switch needs —
// DESIGN.md decision 6).

#pragma once

#include <string>
#include <vector>

#include "net/connection_manager.h"
#include "net/reroute.h"
#include "net/signaling.h"

namespace rtcac {

/// One switch output queue with at least one connection.
struct QueueReport {
  NodeId node = 0;
  std::string node_name;
  std::size_t out_port = 0;
  Priority priority = 0;
  std::size_t connections = 0;
  /// Long-run offered load, normalized to the link rate.
  double sustained_load = 0;
  /// Computed worst-case queueing delay (cell times); infinity when
  /// unbounded (should never happen for an admitted state).
  double computed_bound = 0;
  double advertised_bound = 0;
  /// Worst-case backlog in cells (fluid).
  double backlog_cells = 0;
  /// Recommended physical FIFO depth: ceil(backlog) + 1 register slot.
  std::size_t recommended_slots = 0;
};

struct NetworkReport {
  std::vector<QueueReport> queues;  ///< non-empty queues, node-major order
  std::size_t connections = 0;     ///< network-wide connection count

  /// Largest computed bound across all queues (0 when idle).
  [[nodiscard]] double worst_bound() const;
  /// Sum of recommended FIFO slots — total real-time buffer memory.
  [[nodiscard]] std::size_t total_recommended_slots() const;
  /// True iff every computed bound is within its advertised bound.
  [[nodiscard]] bool all_within_advertised() const;

  /// Fixed-width human-readable table.
  [[nodiscard]] std::string to_string() const;
};

/// Snapshot of the manager's current admitted state.
[[nodiscard]] NetworkReport summarize(const ConnectionManager& manager);

/// Control-plane health summary of a SignalingEngine run: how many setup
/// attempts resolved and how, what the fault layer cost (retransmissions,
/// timeouts, messages lost), and how much state the recovery machinery
/// returned (RELEASE walks, reclaimed orphans).  See
/// docs/FAULT_TOLERANCE.md for the underlying mechanisms.
struct SignalingReport {
  std::size_t attempts = 0;   ///< setup attempts with a final outcome
  std::size_t connected = 0;  ///< ... of which established end to end
  std::size_t retransmits = 0;
  std::size_t timeouts = 0;
  std::size_t stale_dropped = 0;
  std::size_t releases_sent = 0;
  std::size_t released_hops = 0;
  std::size_t lost_to_faults = 0;
  std::size_t orphans_reclaimed = 0;
  std::map<RejectCode, std::size_t> rejects_by_reason;
  std::map<TeardownReason, std::size_t> teardowns;

  /// Fraction of resolved attempts that connected (1 when none resolved).
  [[nodiscard]] double connect_ratio() const;

  /// Human-readable multi-line summary.
  [[nodiscard]] std::string to_string() const;
};

/// Snapshot of an engine's (and its manager's) signaling counters.
[[nodiscard]] SignalingReport summarize_signaling(
    const SignalingEngine& engine);

/// Survivability summary of a RerouteCoordinator run (net/reroute.h): how
/// many connections lost their path, how they fared (rehomed onto an
/// alternate route / kept the recovered original / degraded), and the
/// re-admission latency the make-before-break machinery achieved.
struct RerouteReport {
  std::size_t failure_events = 0;
  std::size_t recovery_events = 0;
  std::size_t episodes = 0;
  std::size_t rehomed = 0;
  std::size_t kept_original = 0;
  std::size_t degraded = 0;
  std::size_t attempts = 0;
  Tick max_rescue_latency = 0;
  double mean_rescue_latency = 0;  ///< over rehomed + kept-original rescues
  /// Final-attempt rejection codes of the degraded connections.
  std::map<RejectCode, std::size_t> degraded_by_reason;

  /// Human-readable multi-line summary.
  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] RerouteReport summarize_reroute(
    const RerouteCoordinator& coordinator);

}  // namespace rtcac
