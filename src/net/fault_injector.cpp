#include "net/fault_injector.h"

#include <algorithm>

#include "util/contract.h"

namespace rtcac {

FaultInjector::FaultInjector(std::uint64_t seed, FaultProfile profile)
    : rng_(seed), profile_(profile) {
  const auto is_probability = [](double p) { return p >= 0.0 && p <= 1.0; };
  RTCAC_REQUIRE(is_probability(profile_.drop_probability) &&
                    is_probability(profile_.duplicate_probability) &&
                    is_probability(profile_.delay_probability) &&
                    is_probability(profile_.reorder_probability),
                "FaultInjector: probabilities must be in [0, 1]");
  RTCAC_REQUIRE(profile_.max_delay >= 1 && profile_.max_jitter >= 1,
                "FaultInjector: max_delay and max_jitter must be >= 1");
}

FaultVerdict FaultInjector::verdict(const SignalingMessage& m) {
  ++counters_.messages_seen;
  const std::size_t ordinal = ++seen_[m.type];

  FaultVerdict v;
  if (const auto it = scripted_drops_.find(m.type);
      it != scripted_drops_.end() && it->second.contains(ordinal)) {
    v.drop = true;
    ++counters_.dropped;
    return v;
  }
  if (const auto it = scripted_dups_.find(m.type);
      it != scripted_dups_.end() && it->second.contains(ordinal)) {
    v.duplicate = true;
    v.duplicate_delay = 1;
    ++counters_.duplicated;
    return v;
  }

  if (rng_.chance(profile_.drop_probability)) {
    v.drop = true;
    ++counters_.dropped;
    return v;  // a dropped message spawns no duplicate and needs no delay
  }
  if (rng_.chance(profile_.duplicate_probability)) {
    v.duplicate = true;
    v.duplicate_delay = static_cast<Tick>(
        1 + rng_.below(static_cast<std::uint64_t>(profile_.max_delay)));
    ++counters_.duplicated;
  }
  if (rng_.chance(profile_.delay_probability)) {
    v.extra_delay = static_cast<Tick>(
        1 + rng_.below(static_cast<std::uint64_t>(profile_.max_delay)));
    ++counters_.delayed;
  } else if (rng_.chance(profile_.reorder_probability)) {
    v.extra_delay = static_cast<Tick>(
        1 + rng_.below(static_cast<std::uint64_t>(profile_.max_jitter)));
    ++counters_.reordered;
  }
  return v;
}

void FaultInjector::drop_nth(SignalingMessageType type, std::size_t nth) {
  RTCAC_REQUIRE(nth >= 1, "FaultInjector: scripted ordinals are 1-based");
  scripted_drops_[type].insert(nth);
}

void FaultInjector::duplicate_nth(SignalingMessageType type,
                                  std::size_t nth) {
  RTCAC_REQUIRE(nth >= 1, "FaultInjector: scripted ordinals are 1-based");
  scripted_dups_[type].insert(nth);
}

void FaultInjector::fail_node(NodeId node) { down_nodes_.insert(node); }
void FaultInjector::recover_node(NodeId node) { down_nodes_.erase(node); }
void FaultInjector::fail_link(LinkId link) { down_links_.insert(link); }
void FaultInjector::recover_link(LinkId link) { down_links_.erase(link); }

void FaultInjector::schedule_node_outage(NodeId node, Tick from, Tick to) {
  RTCAC_REQUIRE(from < to, "FaultInjector: empty outage window");
  node_outages_[node].push_back(Outage{from, to});
}

void FaultInjector::schedule_link_outage(LinkId link, Tick from, Tick to) {
  RTCAC_REQUIRE(from < to, "FaultInjector: empty outage window");
  link_outages_[link].push_back(Outage{from, to});
}

bool FaultInjector::in_outage(const std::vector<Outage>& outages,
                              Tick now) noexcept {
  return std::any_of(outages.begin(), outages.end(), [now](const Outage& o) {
    return o.from <= now && now < o.to;
  });
}

bool FaultInjector::node_up(NodeId node, Tick now) const {
  if (down_nodes_.contains(node)) return false;
  const auto it = node_outages_.find(node);
  return it == node_outages_.end() || !in_outage(it->second, now);
}

bool FaultInjector::link_up(LinkId link, Tick now) const {
  if (down_links_.contains(link)) return false;
  const auto it = link_outages_.find(link);
  return it == link_outages_.end() || !in_outage(it->second, now);
}

bool FaultInjector::deliverable(const SignalingMessage& m, Tick now) {
  const bool ok = node_up(m.at, now) &&
                  (!m.via.has_value() || link_up(*m.via, now));
  if (!ok) ++counters_.failed_component_losses;
  return ok;
}

}  // namespace rtcac
