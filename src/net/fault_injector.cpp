#include "net/fault_injector.h"

#include <algorithm>

#include "util/contract.h"

namespace rtcac {

const char* to_string(ComponentKind kind) noexcept {
  switch (kind) {
    case ComponentKind::kNode:
      return "node";
    case ComponentKind::kLink:
      return "link";
  }
  return "?";
}

FaultInjector::FaultInjector(std::uint64_t seed, FaultProfile profile)
    : rng_(seed), profile_(profile) {
  const auto is_probability = [](double p) { return p >= 0.0 && p <= 1.0; };
  RTCAC_REQUIRE(is_probability(profile_.drop_probability) &&
                    is_probability(profile_.duplicate_probability) &&
                    is_probability(profile_.delay_probability) &&
                    is_probability(profile_.reorder_probability),
                "FaultInjector: probabilities must be in [0, 1]");
  RTCAC_REQUIRE(profile_.max_delay >= 1 && profile_.max_jitter >= 1,
                "FaultInjector: max_delay and max_jitter must be >= 1");
}

FaultVerdict FaultInjector::verdict(const SignalingMessage& m) {
  ++counters_.messages_seen;
  const std::size_t ordinal = ++seen_[m.type];

  FaultVerdict v;
  if (const auto it = scripted_drops_.find(m.type);
      it != scripted_drops_.end() && it->second.contains(ordinal)) {
    v.drop = true;
    ++counters_.dropped;
    return v;
  }
  if (const auto it = scripted_dups_.find(m.type);
      it != scripted_dups_.end() && it->second.contains(ordinal)) {
    v.duplicate = true;
    v.duplicate_delay = 1;
    ++counters_.duplicated;
    return v;
  }

  if (rng_.chance(profile_.drop_probability)) {
    v.drop = true;
    ++counters_.dropped;
    return v;  // a dropped message spawns no duplicate and needs no delay
  }
  if (rng_.chance(profile_.duplicate_probability)) {
    v.duplicate = true;
    v.duplicate_delay = static_cast<Tick>(
        1 + rng_.below(static_cast<std::uint64_t>(profile_.max_delay)));
    ++counters_.duplicated;
  }
  if (rng_.chance(profile_.delay_probability)) {
    v.extra_delay = static_cast<Tick>(
        1 + rng_.below(static_cast<std::uint64_t>(profile_.max_delay)));
    ++counters_.delayed;
  } else if (rng_.chance(profile_.reorder_probability)) {
    v.extra_delay = static_cast<Tick>(
        1 + rng_.below(static_cast<std::uint64_t>(profile_.max_jitter)));
    ++counters_.reordered;
  }
  return v;
}

void FaultInjector::drop_nth(SignalingMessageType type, std::size_t nth) {
  RTCAC_REQUIRE(nth >= 1, "FaultInjector: scripted ordinals are 1-based");
  scripted_drops_[type].insert(nth);
}

void FaultInjector::duplicate_nth(SignalingMessageType type,
                                  std::size_t nth) {
  RTCAC_REQUIRE(nth >= 1, "FaultInjector: scripted ordinals are 1-based");
  scripted_dups_[type].insert(nth);
}

void FaultInjector::fail_node(NodeId node) {
  down_nodes_.insert(node);
  notify(ComponentKind::kNode, node, cursor_);
}

void FaultInjector::recover_node(NodeId node) {
  down_nodes_.erase(node);
  notify(ComponentKind::kNode, node, cursor_);
}

void FaultInjector::fail_link(LinkId link) {
  down_links_.insert(link);
  notify(ComponentKind::kLink, link, cursor_);
}

void FaultInjector::recover_link(LinkId link) {
  down_links_.erase(link);
  notify(ComponentKind::kLink, link, cursor_);
}

void FaultInjector::schedule_node_outage(NodeId node, Tick from, Tick to) {
  RTCAC_REQUIRE(from < to, "FaultInjector: empty outage window");
  node_outages_[node].push_back(Outage{from, to});
  boundaries_.emplace(from, ComponentKind::kNode, node);
  boundaries_.emplace(to, ComponentKind::kNode, node);
}

void FaultInjector::schedule_link_outage(LinkId link, Tick from, Tick to) {
  RTCAC_REQUIRE(from < to, "FaultInjector: empty outage window");
  link_outages_[link].push_back(Outage{from, to});
  boundaries_.emplace(from, ComponentKind::kLink, link);
  boundaries_.emplace(to, ComponentKind::kLink, link);
}

std::size_t FaultInjector::subscribe(ComponentObserver observer) {
  RTCAC_REQUIRE(observer != nullptr, "FaultInjector: null observer");
  const std::size_t token = next_observer_token_++;
  observers_.emplace_back(token, std::move(observer));
  return token;
}

void FaultInjector::unsubscribe(std::size_t token) {
  std::erase_if(observers_,
                [token](const auto& entry) { return entry.first == token; });
}

void FaultInjector::notify(ComponentKind kind, std::uint32_t component,
                           Tick at) {
  const bool up = kind == ComponentKind::kNode
                      ? node_up(component, at)
                      : link_up(component, at);
  const auto key = std::make_pair(kind, component);
  const auto it = announced_.find(key);
  const bool last_up = it == announced_.end() ? true : it->second;
  if (up == last_up) return;  // no effective transition
  announced_[key] = up;
  ComponentEvent event;
  event.kind = kind;
  event.component = component;
  event.up = up;
  event.at = at;
  for (const auto& [token, observer] : observers_) {
    (void)token;
    observer(event);
  }
}

void FaultInjector::advance_to(Tick now) {
  RTCAC_REQUIRE(now >= cursor_,
                "FaultInjector: advance_to must be monotone");
  // Sweep every pending boundary up to `now` in canonical
  // (tick, kind, id) order; notify() re-derives the effective state, so
  // overlapping windows collapse to single transitions.  A boundary
  // scheduled in the cursor's past (late scheduling) takes effect at the
  // cursor, never retroactively.
  auto it = boundaries_.begin();
  while (it != boundaries_.end() && std::get<0>(*it) <= now) {
    const auto [tick, kind, component] = *it;
    it = boundaries_.erase(it);
    notify(kind, component, std::max(tick, cursor_));
  }
  cursor_ = now;
}

std::optional<Tick> FaultInjector::next_scheduled_change() const {
  if (boundaries_.empty()) return std::nullopt;
  // A boundary scheduled behind the cursor takes effect at the cursor.
  return std::max(std::get<0>(*boundaries_.begin()), cursor_);
}

bool FaultInjector::in_outage(const std::vector<Outage>& outages,
                              Tick now) noexcept {
  return std::any_of(outages.begin(), outages.end(), [now](const Outage& o) {
    return o.from <= now && now < o.to;
  });
}

bool FaultInjector::node_up(NodeId node, Tick now) const {
  if (down_nodes_.contains(node)) return false;
  const auto it = node_outages_.find(node);
  return it == node_outages_.end() || !in_outage(it->second, now);
}

bool FaultInjector::link_up(LinkId link, Tick now) const {
  if (down_links_.contains(link)) return false;
  const auto it = link_outages_.find(link);
  return it == link_outages_.end() || !in_outage(it->second, now);
}

bool FaultInjector::deliverable(const SignalingMessage& m, Tick now) {
  const bool ok = node_up(m.at, now) &&
                  (!m.via.has_value() || link_up(*m.via, now));
  if (!ok) ++counters_.failed_component_losses;
  return ok;
}

}  // namespace rtcac
