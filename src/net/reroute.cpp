// rtcac/net/reroute.cpp

#include "net/reroute.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "net/routing.h"
#include "util/contract.h"
#include "util/log.h"

namespace rtcac {

const char* to_string(RerouteDecision::Outcome outcome) noexcept {
  switch (outcome) {
    case RerouteDecision::Outcome::kRehomed:
      return "rehomed";
    case RerouteDecision::Outcome::kKeptOriginal:
      return "kept-original";
    case RerouteDecision::Outcome::kRetryScheduled:
      return "retry-scheduled";
    case RerouteDecision::Outcome::kDegraded:
      return "degraded";
  }
  return "?";
}

std::string DegradationReport::to_string() const {
  std::ostringstream out;
  out << "degraded connections: " << entries.size() << "\n";
  for (const DegradationEntry& e : entries) {
    out << "  connection " << e.id << " (priority " << e.priority
        << "): failed at tick " << e.failed_at << ", gave up at tick "
        << e.gave_up_at << " after " << e.attempts << " attempt"
        << (e.attempts == 1 ? "" : "s") << " [" << rtcac::to_string(e.reason.code)
        << "] " << e.reason.detail << "\n";
  }
  return out.str();
}

RerouteCoordinator::RerouteCoordinator(ConnectionManager& manager,
                                       FaultInjector& faults)
    : RerouteCoordinator(manager, faults, Params{}) {}

RerouteCoordinator::RerouteCoordinator(ConnectionManager& manager,
                                       FaultInjector& faults, Params params,
                                       LabelManager* labels)
    : manager_(manager), faults_(faults), params_(params), labels_(labels) {
  RTCAC_REQUIRE(params_.max_attempts >= 1,
                "RerouteCoordinator: max_attempts must be >= 1");
  RTCAC_REQUIRE(params_.retry_backoff >= 1,
                "RerouteCoordinator: retry_backoff must be >= 1");
  RTCAC_REQUIRE(params_.backoff_multiplier >= 1,
                "RerouteCoordinator: backoff_multiplier must be >= 1");
  observer_token_ = faults_.subscribe(
      [this](const ComponentEvent& event) { on_component_event(event); });
}

RerouteCoordinator::~RerouteCoordinator() {
  faults_.unsubscribe(observer_token_);
}

void RerouteCoordinator::on_component_event(const ComponentEvent& event) {
  if (event.kind == ComponentKind::kNode) {
    if (event.up) {
      down_nodes_.erase(event.component);
    } else {
      down_nodes_.insert(event.component);
    }
  } else {
    if (event.up) {
      down_links_.erase(event.component);
    } else {
      down_links_.insert(event.component);
    }
  }
  if (event.up) {
    ++stats_.recovery_events;
    on_recovery(event);
  } else {
    ++stats_.failure_events;
    on_failure(event);
  }
}

void RerouteCoordinator::on_failure(const ComponentEvent& event) {
  // Index the live connections against the new down set and open an
  // episode for every stranded one.  A connection already pending keeps
  // its episode (its budget and failure tick describe the ongoing
  // outage, however many components it has grown to span).
  for (const auto& [id, record] : manager_.connections()) {
    if (pending_.contains(id) || !route_broken(record.route)) continue;
    Episode episode;
    episode.priority = record.request.priority;
    episode.failed_at = event.at;
    episode.due = event.at;
    pending_.emplace(id, episode);
    ++stats_.episodes;
  }
  attempt_due(event.at);
}

void RerouteCoordinator::on_recovery(const ComponentEvent& event) {
  // The topology just changed in the pending connections' favor: re-arm
  // every backoff immediately.  The attempt budget is unchanged.
  for (auto& [id, episode] : pending_) {
    episode.due = std::min(episode.due, event.at);
  }
  attempt_due(event.at);
}

void RerouteCoordinator::attempt_due(Tick now) {
  // Priority-ordered requeueing: highest priority (lowest value) first,
  // ids as the deterministic tie-break.  Attempts never reduce another
  // episode's due tick, and a failed attempt backs off to a tick strictly
  // beyond `now` (retry_backoff >= 1), so one pass drains everything due.
  std::vector<std::pair<Priority, ConnectionId>> due;
  for (const auto& [id, episode] : pending_) {
    if (episode.due <= now) due.emplace_back(episode.priority, id);
  }
  std::sort(due.begin(), due.end());
  for (const auto& [priority, id] : due) {
    const auto it = pending_.find(id);
    if (it != pending_.end()) attempt_reroute(it, now);
  }
}

void RerouteCoordinator::attempt_reroute(
    std::map<ConnectionId, Episode>::iterator it, Tick now) {
  const ConnectionId id = it->first;
  Episode& episode = it->second;

  const auto& records = manager_.connections();
  const auto record = records.find(id);
  if (record == records.end()) {
    // Torn down externally while queued; nothing left to rescue.
    pending_.erase(it);
    return;
  }

  // The original path may have become whole again (outage window closed
  // before the next attempt came due): the reservations were never
  // released, so the connection simply keeps them.
  if (!route_broken(record->second.route)) {
    decisions_.push_back({now, id, RerouteDecision::Outcome::kKeptOriginal,
                          record->second.route, {}});
    ++stats_.kept_original;
    const Tick latency = now - episode.failed_at;
    stats_.max_rescue_latency = std::max(stats_.max_rescue_latency, latency);
    stats_.total_rescue_latency += latency;
    pending_.erase(it);
    return;
  }

  ++episode.attempts;
  ++stats_.attempts;

  // Alternate path around *everything* currently down, endpoints included.
  const Topology& topology = manager_.topology();
  const std::vector<NodeId> nodes = topology.route_nodes(record->second.route);
  const std::vector<NodeId> avoid_nodes(down_nodes_.begin(), down_nodes_.end());
  const std::vector<LinkId> avoid_links(down_links_.begin(), down_links_.end());
  const std::optional<Route> alternate = shortest_route_avoiding(
      topology, nodes.front(), nodes.back(),
      RouteAvoidance{avoid_nodes, avoid_links});

  RejectReason reason;
  if (alternate.has_value()) {
    // Make-before-break: the old reservations stay in place until the
    // replacement is admitted against the combined load.
    const ConnectionManager::SetupResult result =
        manager_.rehome(id, *alternate);
    if (result.accepted) {
      if (labels_ != nullptr && labels_->contains(id)) {
        labels_->release(id);
        labels_->establish(id, *alternate);
      }
      decisions_.push_back(
          {now, id, RerouteDecision::Outcome::kRehomed, *alternate, {}});
      ++stats_.rehomed;
      const Tick latency = now - episode.failed_at;
      stats_.max_rescue_latency = std::max(stats_.max_rescue_latency, latency);
      stats_.total_rescue_latency += latency;
      pending_.erase(it);
      return;
    }
    reason = result.reject;
  } else {
    reason = PathEvaluator::no_route_rejection();
  }

  if (episode.attempts >= params_.max_attempts) {
    // Budget exhausted: degrade.  The network ended the connection, so
    // the teardown counts as kFailure, and the report keeps it from
    // disappearing silently.
    RTCAC_DEBUG << "degrading connection " << id << ": " << reason.detail;
    decisions_.push_back(
        {now, id, RerouteDecision::Outcome::kDegraded, {}, reason});
    degraded_.entries.push_back({id, episode.priority, reason,
                                 episode.attempts, episode.failed_at, now});
    if (labels_ != nullptr && labels_->contains(id)) labels_->release(id);
    manager_.teardown(id, TeardownReason::kFailure);
    ++stats_.degraded;
    pending_.erase(it);
    return;
  }

  // Exponential backoff: retry_backoff * multiplier^(attempts-1).
  Tick backoff = params_.retry_backoff;
  for (std::uint32_t a = 1; a < episode.attempts; ++a) {
    backoff *= params_.backoff_multiplier;
  }
  episode.due = now + backoff;
  decisions_.push_back(
      {now, id, RerouteDecision::Outcome::kRetryScheduled, {}, reason});
}

bool RerouteCoordinator::route_broken(const Route& route) const {
  for (const LinkId link : route) {
    if (down_links_.contains(link)) return true;
  }
  if (down_nodes_.empty()) return false;
  for (const NodeId node : manager_.topology().route_nodes(route)) {
    if (down_nodes_.contains(node)) return true;
  }
  return false;
}

std::optional<Tick> RerouteCoordinator::next_retry_due() const {
  std::optional<Tick> due;
  for (const auto& [id, episode] : pending_) {
    if (!due.has_value() || episode.due < *due) due = episode.due;
  }
  return due;
}

std::optional<Tick> RerouteCoordinator::next_wakeup() const {
  const std::optional<Tick> boundary = faults_.next_scheduled_change();
  const std::optional<Tick> retry = next_retry_due();
  if (!boundary.has_value()) return retry;
  if (!retry.has_value()) return boundary;
  return std::min(*boundary, *retry);
}

void RerouteCoordinator::advance_to(Tick now) {
  // Interleave scheduled fault boundaries with due retries in tick order,
  // boundaries first on a tie, so an attempt at tick t always sees the
  // component state of tick t.  Each step either consumes a boundary or
  // pushes every drained retry strictly past its tick, so the loop makes
  // progress.
  for (;;) {
    const std::optional<Tick> boundary = faults_.next_scheduled_change();
    const std::optional<Tick> retry = next_retry_due();
    const bool boundary_due = boundary.has_value() && *boundary <= now;
    const bool retry_due = retry.has_value() && *retry <= now;
    if (boundary_due && (!retry_due || *boundary <= *retry)) {
      faults_.advance_to(*boundary);
    } else if (retry_due) {
      attempt_due(*retry);
    } else {
      break;
    }
  }
  faults_.advance_to(now);
}

void RerouteCoordinator::quiesce() {
  // Run the retry queue dry without advancing past it: every episode has
  // a bounded attempt budget, so this terminates.  Scheduled outages
  // beyond the last retry are left for the driver.
  while (const std::optional<Tick> due = next_retry_due()) {
    advance_to(std::max(*due, faults_.cursor()));
  }
}

}  // namespace rtcac
