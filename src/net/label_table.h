// rtcac/net/label_table.h
//
// The per-switch VPI/VCI machinery: an allocator handing out unused
// labels per incoming port (labels are link-local in ATM), and the label
// switching table mapping (in_port, in_label) to (out_port, out_label,
// priority) — the data structure the cell data path consults on every
// cell.

#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "atm/vpi_vci.h"
#include "core/connection.h"

namespace rtcac {

/// Hands out link-local labels for one switch's incoming ports.
class LabelAllocator {
 public:
  explicit LabelAllocator(std::size_t in_ports);

  /// Next unused label on `in_port`; freed labels are reused first.
  /// Throws std::runtime_error when the 28-bit space is exhausted and
  /// std::invalid_argument on a bad port.
  VcLabel allocate(std::size_t in_port);

  /// Returns a label to the pool.  False if it was not allocated.
  bool release(std::size_t in_port, VcLabel label);

  [[nodiscard]] std::size_t allocated(std::size_t in_port) const;

 private:
  struct PortState {
    VcLabel next{0, kFirstUserVci};
    std::vector<VcLabel> free_list;
    std::size_t live = 0;
  };
  std::vector<PortState> ports_;
};

/// The forwarding table: (in_port, in_label) -> (out_port, out_label,
/// priority).  One instance per switch.
class LabelSwitchingTable {
 public:
  struct Entry {
    std::size_t out_port = 0;
    VcLabel out_label;
    Priority priority = 0;
    ConnectionId connection = kInvalidConnection;
  };

  /// Installs a translation; returns false when (in_port, in_label) is
  /// already bound (label collision — caller must allocate properly).
  bool install(std::size_t in_port, VcLabel in_label, const Entry& entry);

  /// nullopt == unknown label: a real switch drops such cells.
  [[nodiscard]] std::optional<Entry> lookup(std::size_t in_port,
                                            VcLabel in_label) const;

  bool remove(std::size_t in_port, VcLabel in_label);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  struct Key {
    std::size_t in_port;
    VcLabel label;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept {
      return key.in_port * 0x9E3779B9u ^ std::hash<VcLabel>{}(key.label);
    }
  };
  std::unordered_map<Key, Entry, KeyHash> entries_;
};

}  // namespace rtcac
