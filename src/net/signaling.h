// rtcac/net/signaling.h
//
// The distributed connection setup procedure of Section 4.1:
//
//   * the source end system sends a SETUP message carrying
//     (PCR, SCR, MBS, D) along the preselected route;
//   * each switch runs the CAC check; on success it commits the
//     reservation and forwards SETUP downstream, on failure it sends
//     REJECT back upstream (releasing the reservations already made);
//   * when SETUP reaches the destination, CONNECTED travels back to the
//     source, which may then start sending cells.
//
// The engine shares switch state with a ConnectionManager, so centrally
// and distributedly established connections coexist; completed setups are
// adopted into the manager (teardown, bound queries).  Messages are
// processed from a FIFO queue one at a time — step() — so tests and
// examples can interleave and observe the protocol, including rejection
// cascades.  Processing order is deterministic.

#pragma once

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/connection_manager.h"

namespace rtcac {

enum class SignalingMessageType { kSetup, kReject, kConnected };

struct SignalingMessage {
  SignalingMessageType type = SignalingMessageType::kSetup;
  ConnectionId id = kInvalidConnection;
  /// Node about to process the message.
  NodeId at = 0;
  /// For SETUP: index of the next queueing point to check.
  /// For REJECT: index of the next committed queueing point to release
  /// (walking backwards).
  std::size_t hop_index = 0;
  std::string reason;  ///< REJECT diagnostics
};

[[nodiscard]] std::string to_string(const SignalingMessage& m);

/// Final fate of a signaling attempt.
struct SignalingOutcome {
  bool connected = false;
  std::string reason;  ///< empty when connected
  std::optional<NodeId> rejecting_node;
  double e2e_bound_at_setup = 0;
  double e2e_advertised = 0;
};

class SignalingEngine {
 public:
  explicit SignalingEngine(ConnectionManager& manager) : manager_(manager) {}

  SignalingEngine(const SignalingEngine&) = delete;
  SignalingEngine& operator=(const SignalingEngine&) = delete;

  /// Queues a SETUP for `request` over `route`; returns the provisional
  /// connection id.  Throws std::invalid_argument on a malformed route.
  ConnectionId initiate(const QosRequest& request, const Route& route);

  /// Processes the next queued message; returns false when idle.
  bool step();

  /// Runs until no messages remain.
  void run();

  /// Outcome of a finished attempt; nullopt while still in flight.
  [[nodiscard]] std::optional<SignalingOutcome> outcome(
      ConnectionId id) const;

  /// Every message processed so far, in order (protocol trace).
  [[nodiscard]] const std::vector<SignalingMessage>& trace() const noexcept {
    return trace_;
  }

  [[nodiscard]] std::size_t pending_messages() const noexcept {
    return queue_.size();
  }

 private:
  struct InFlight {
    QosRequest request;
    Route route;
    std::vector<HopRef> hops;
    std::size_t committed = 0;  ///< queueing points reserved so far
    double e2e_bound_at_setup = 0;
    double e2e_advertised = 0;
    NodeId source = 0;
    NodeId destination = 0;
  };

  void process_setup(const SignalingMessage& m);
  void process_reject(const SignalingMessage& m);
  void process_connected(const SignalingMessage& m);

  ConnectionManager& manager_;
  std::deque<SignalingMessage> queue_;
  std::map<ConnectionId, InFlight> in_flight_;
  std::map<ConnectionId, SignalingOutcome> outcomes_;
  std::vector<SignalingMessage> trace_;
};

}  // namespace rtcac
