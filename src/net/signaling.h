// rtcac/net/signaling.h
//
// The distributed connection setup procedure of Section 4.1, hardened for
// lossy, failure-prone control planes:
//
//   * the source end system sends a SETUP message carrying
//     (PCR, SCR, MBS, D) along the preselected route;
//   * each switch runs the CAC check; on success it commits the
//     reservation — under a *lease* that expires unless refreshed — and
//     forwards SETUP downstream; on failure it sends REJECT back upstream
//     (releasing the reservations already made);
//   * when SETUP reaches the destination, CONNECTED travels back to the
//     source, which adopts the connection into the ConnectionManager
//     (making the hop reservations permanent) and may start sending cells.
//
// Fault tolerance (docs/FAULT_TOLERANCE.md):
//
//   * messages move on a virtual clock (the simulator's EventQueue; one
//     tick per hop) instead of an unlosable FIFO, so an attached
//     FaultInjector can drop, duplicate, delay and reorder them, and fail
//     links or switches mid-protocol;
//   * the source arms a retransmission timer per SETUP; on expiry the
//     attempt epoch is bumped and SETUP is resent with exponentially
//     backed-off timeouts, up to Timers::max_retries times;
//   * processing is idempotent: a hop that already holds the reservation
//     renews its lease instead of double-committing, and any message from
//     a finished or superseded attempt epoch is discarded as stale;
//   * when the retry budget is exhausted the source gives up, reports a
//     timeout outcome, and sends RELEASE down the route to tear down
//     whatever was committed; reservations a lost RELEASE leaves behind
//     die with their leases (ConnectionManager::reclaim).
//
// In-place renegotiation (MODIFY/MODIFY-REJECT/MODIFIED) reuses the same
// machinery over an established connection's route: MODIFY commits the
// *new* descriptor hop by hop under a fresh provisional id while the old
// reservations stay untouched (make-before-break — the DeltaTransaction
// of core/path_eval.h with release == acquire), MODIFIED triggers the
// atomic swap at the source (ConnectionManager::complete_modify), and
// MODIFY-REJECT or an exhausted retry budget rolls back only the
// provisional commits — a lost MODIFY can never leave mixed old/new
// reservations, because the old descriptor is released only after the
// full-path verdict, and provisional residue dies with its leases.
//
// Messages are processed one at a time — step() — in virtual-time order,
// so tests and examples can interleave and observe the protocol, including
// rejection cascades.  Processing is deterministic; under a seeded
// FaultInjector the complete failure trace replays from the seed.

#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/connection_manager.h"
#include "net/fault_injector.h"
#include "net/signaling_message.h"
#include "sim/event_queue.h"

namespace rtcac {

/// Final fate of a signaling attempt.
struct SignalingOutcome {
  bool connected = false;
  std::string reason;  ///< empty when connected; equals reject.detail
  /// Canonical machine-readable rejection (core/path_eval.h).
  RejectReason reject;
  std::optional<NodeId> rejecting_node;
  double e2e_bound_at_setup = 0;
  double e2e_advertised = 0;
};

class SignalingEngine {
 public:
  /// Virtual-clock protocol parameters (all times in ticks = cell times).
  struct Timers {
    Tick hop_latency = 1;  ///< control-message transit per hop
    Tick setup_rto = 32;   ///< initial SETUP retransmission timeout
    std::uint32_t backoff = 2;      ///< RTO multiplier per retransmission
    std::uint32_t max_retries = 4;  ///< retransmissions before giving up
    Tick lease = 256;  ///< lifetime of an unconfirmed hop reservation
  };

  struct Counters {
    std::size_t retransmits = 0;    ///< SETUPs re-sent after a lost round
    std::size_t timeouts = 0;       ///< attempts abandoned (budget spent)
    std::size_t stale_dropped = 0;  ///< finished/superseded-epoch messages
    std::size_t releases_sent = 0;  ///< RELEASE teardowns initiated
    std::size_t released_hops = 0;  ///< hop reservations RELEASE returned
    std::size_t lost_to_faults = 0; ///< messages the fault layer destroyed
    std::map<RejectCode, std::size_t> rejects_by_reason;
    std::size_t modifies_sent = 0;       ///< MODIFY walks initiated
    std::size_t modifies_completed = 0;  ///< descriptor swaps confirmed
    std::size_t modify_retransmits = 0;  ///< MODIFYs re-sent after a loss
    std::map<RejectCode, std::size_t> modify_rejects_by_reason;
  };

  explicit SignalingEngine(ConnectionManager& manager);
  /// `faults`, when given, must outlive the engine.
  SignalingEngine(ConnectionManager& manager, Timers timers,
                  FaultInjector* faults = nullptr);

  SignalingEngine(const SignalingEngine&) = delete;
  SignalingEngine& operator=(const SignalingEngine&) = delete;

  /// Queues a SETUP for `request` over `route` and arms its
  /// retransmission timer; returns the provisional connection id.  Throws
  /// std::invalid_argument on a malformed route or an out-of-range
  /// priority — validation happens *before* an id is allocated, so a bad
  /// request burns no id and leaves no in-flight residue.
  ConnectionId initiate(const QosRequest& request, const Route& route);

  /// Processes queued events in virtual-time order until one signaling
  /// message has been handled; returns false once the queue is drained.
  /// Expired timers and messages destroyed in transit are absorbed
  /// silently along the way.
  bool step();

  /// Runs until no events remain.  Every initiated setup is guaranteed an
  /// outcome by then: at worst its retransmission budget expires.
  void run();

  /// Starts an asynchronous RELEASE walk tearing down an *established*
  /// (adopted) connection hop by hop on the virtual clock; the manager
  /// records the completed teardown with TeardownReason::kRelease.
  /// Returns false for an unknown id or a release already in progress.
  bool release(ConnectionId id);

  /// Queues a MODIFY walk renegotiating established connection `id` to
  /// `new_request` over its current route and arms its retransmission
  /// timer.  The new descriptor is committed hop by hop under a fresh
  /// provisional id while the old reservations stay in place; only the
  /// MODIFIED confirmation at the source performs the swap.  Returns
  /// false for an unknown id, or one that is already being modified or
  /// released.  Throws std::invalid_argument on a malformed descriptor
  /// or an out-of-range priority — validation happens before the
  /// provisional id is allocated.
  bool modify(ConnectionId id, const QosRequest& new_request);

  /// Outcome of the most recent finished MODIFY of `id` (connected ==
  /// swap confirmed); nullopt while in flight or never modified.
  [[nodiscard]] std::optional<SignalingOutcome> modify_outcome(
      ConnectionId id) const;

  /// Latest finished MODIFY outcome per connection id.
  [[nodiscard]] const std::map<ConnectionId, SignalingOutcome>&
  modify_outcomes() const noexcept {
    return modify_outcomes_;
  }

  /// Outcome of a finished attempt; nullopt while still in flight.
  [[nodiscard]] std::optional<SignalingOutcome> outcome(
      ConnectionId id) const;

  /// All finished attempts so far, by connection id.
  [[nodiscard]] const std::map<ConnectionId, SignalingOutcome>& outcomes()
      const noexcept {
    return outcomes_;
  }

  /// Every message processed so far, in order (protocol trace).  Messages
  /// lost in transit never reach the trace.
  [[nodiscard]] const std::vector<SignalingMessage>& trace() const noexcept {
    return trace_;
  }

  /// Control messages currently in transit (timer events excluded).
  [[nodiscard]] std::size_t pending_messages() const noexcept {
    return pending_messages_;
  }

  /// Virtual time of the most recently processed event.
  [[nodiscard]] Tick now() const noexcept { return events_.last_popped(); }

  [[nodiscard]] const Counters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const Timers& timers() const noexcept { return timers_; }
  [[nodiscard]] const ConnectionManager& manager() const noexcept {
    return manager_;
  }

 private:
  /// Per-hop commit state of one setup attempt.  Kept per hop (not as a
  /// single high-water mark) because retransmitted walks skip hops that
  /// are still committed, and stale rejects may punch holes.
  struct HopState {
    bool committed = false;
    double bound = 0;       ///< computed bound frozen at commit time
    double advertised = 0;  ///< advertised bound at commit time
  };

  struct InFlight {
    QosRequest request;
    Route route;
    std::vector<HopRef> hops;
    /// PathEvaluator views of `hops` (pointers into the manager's
    /// per-switch policy state), built once at initiate().
    std::vector<PathEvaluator::Hop> eval_hops;
    std::vector<HopState> hop_states;
    std::uint32_t attempt = 0;  ///< current epoch; older messages are stale
    std::uint32_t retries = 0;
    Tick rto = 0;  ///< timeout of the current attempt
    NodeId source = 0;
    NodeId destination = 0;
  };

  /// One in-flight MODIFY of an established connection, keyed by the
  /// connection's *stable* id.  The new descriptor's reservations ride
  /// under `provisional` until MODIFIED confirms the full path; the
  /// prepared arrivals are kept per hop so the final rebind reuses
  /// exactly what was committed.
  struct ModifyFlight {
    QosRequest request;  ///< the NEW descriptor being negotiated
    ConnectionId provisional = kInvalidConnection;
    Route route;
    std::vector<HopRef> hops;
    std::vector<PathEvaluator::Hop> eval_hops;
    std::vector<HopState> hop_states;
    std::vector<std::any> arrivals;  ///< per hop, set at commit time
    std::uint32_t attempt = 0;
    std::uint32_t retries = 0;
    Tick rto = 0;
    NodeId source = 0;
    NodeId destination = 0;
  };

  void send(SignalingMessage m, Tick transit);
  void enqueue(SignalingMessage m, Tick at);
  void deliver(const SignalingMessage& m);

  void process_setup(const SignalingMessage& m);
  void process_reject(const SignalingMessage& m);
  void process_connected(const SignalingMessage& m);
  void process_release(const SignalingMessage& m);
  /// Finalizes a failed attempt: records the outcome, counts the reject
  /// category, and starts a RELEASE sweep over any committed residue.
  void process_failure(ConnectionId id, InFlight& flight,
                       SignalingOutcome outcome, RejectCode category);
  void on_setup_timer(ConnectionId id, std::uint32_t attempt);
  void arm_setup_timer(ConnectionId id, const InFlight& flight);
  void send_setup(ConnectionId id, const InFlight& flight);

  void process_modify(const SignalingMessage& m);
  void process_modify_reject(const SignalingMessage& m);
  void process_modified(const SignalingMessage& m);
  /// Finalizes a failed MODIFY: records the outcome, counts the reject
  /// category, and rolls back any provisional residue via a RELEASE walk
  /// keyed by the provisional id (the old reservations are untouched —
  /// the rollback guarantee).
  void process_modify_failure(ConnectionId id, ModifyFlight& flight,
                              SignalingOutcome outcome, RejectCode category);
  void on_modify_timer(ConnectionId id, std::uint32_t attempt);
  void arm_modify_timer(ConnectionId id, const ModifyFlight& flight);
  void send_modify(ConnectionId id, const ModifyFlight& flight);

  ConnectionManager& manager_;
  Timers timers_;
  FaultInjector* faults_;
  EventQueue events_;
  std::size_t pending_messages_ = 0;
  bool processed_message_ = false;  ///< set by deliver(), read by step()
  std::map<ConnectionId, InFlight> in_flight_;
  /// In-flight MODIFYs by stable connection id (at most one each).
  std::map<ConnectionId, ModifyFlight> modifying_;
  /// Routes of teardowns in progress: RELEASE walks outlive their
  /// (already finalized) in-flight record.  MODIFY rollbacks enter here
  /// keyed by their *provisional* id.
  std::map<ConnectionId, std::vector<HopRef>> releasing_;
  std::map<ConnectionId, SignalingOutcome> outcomes_;
  /// Latest finished MODIFY outcome per stable connection id.
  std::map<ConnectionId, SignalingOutcome> modify_outcomes_;
  std::vector<SignalingMessage> trace_;
  Counters counters_;
};

}  // namespace rtcac
