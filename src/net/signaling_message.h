// rtcac/net/signaling_message.h
//
// Wire vocabulary of the distributed connection setup procedure
// (Section 4.1), split out of signaling.h so the fault-injection layer can
// classify messages without depending on the engine itself.
//
// Beyond the paper's SETUP/REJECT/CONNECTED, the fault-tolerant engine
// adds RELEASE — sent by the source after a retransmission budget is
// exhausted (or a failure is detected) to tear down whatever part of the
// route was committed — and the in-place renegotiation triple
// MODIFY/MODIFY-REJECT/MODIFIED: MODIFY walks an established
// connection's route committing the *new* descriptor under a fresh
// provisional id (the old reservations stay untouched until the
// full-path verdict), MODIFY-REJECT walks back upstream releasing only
// the provisional commits, and MODIFIED confirms the swap to the source,
// which atomically releases the old descriptor and rebinds the new one
// onto the stable id (the DeltaTransaction epilogue).  Every message
// additionally carries the *attempt epoch* of the setup or modify it
// belongs to: retransmissions bump the epoch, so a stale message from an
// abandoned attempt can be recognized and dropped instead of
// double-committing or double-releasing (see docs/FAULT_TOLERANCE.md).
//
// REJECT carries the canonical RejectReason of core/path_eval.h — the
// same machine-readable record every admission engine produces — so the
// source's outcome is bit-identical to what the serial walk would have
// reported.

#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/connection.h"
#include "core/path_eval.h"
#include "net/topology.h"

namespace rtcac {

enum class SignalingMessageType {
  kSetup,
  kReject,
  kConnected,
  kRelease,
  kModify,        ///< renegotiation walk committing the new descriptor
  kModifyReject,  ///< upstream walk releasing only the provisional commits
  kModified,      ///< full-path confirmation of the descriptor swap
};

[[nodiscard]] const char* to_string(SignalingMessageType type) noexcept;

struct SignalingMessage {
  SignalingMessageType type = SignalingMessageType::kSetup;
  ConnectionId id = kInvalidConnection;
  /// Node about to process the message.
  NodeId at = 0;
  /// For SETUP/RELEASE: index of the next queueing point to check/release
  /// (walking forward).  For REJECT: index of the next committed queueing
  /// point to release (walking backwards).
  std::size_t hop_index = 0;
  /// Attempt epoch of the setup this message belongs to (0 = first try).
  std::uint32_t attempt = 0;
  /// Forward-direction link whose cable carries this message (control
  /// traffic shares the cable in both directions, so a failed link loses
  /// both the downstream SETUP and the upstream REJECT).  Unset for
  /// messages that do not traverse a modeled link.
  std::optional<LinkId> via;
  /// For REJECT: the node that originated the rejection (`at` mutates as
  /// the message walks upstream).
  std::optional<NodeId> origin;
  /// For REJECT: canonical rejection (hop, code, detail).
  RejectReason reject;
};

[[nodiscard]] std::string to_string(const SignalingMessage& m);

}  // namespace rtcac
