#include "net/label_manager.h"

#include <stdexcept>

#include "util/contract.h"

namespace rtcac {

LabelManager::LabelManager(const Topology& topology) : topology_(topology) {
  // Every node that can receive cells owns the label space of its
  // incoming links; switches get one extra slot for locally originated
  // traffic.
  for (const NodeInfo& node : topology_.nodes()) {
    const std::size_t in_links = topology_.in_links(node.id).size();
    const std::size_t ports =
        in_links + (node.kind == NodeKind::kSwitch ? 1 : 0);
    if (ports == 0) continue;
    nodes_.emplace(node.id,
                   NodeLabels{LabelAllocator(ports), LabelSwitchingTable{}});
  }
}

LabelPath LabelManager::establish(ConnectionId id, const Route& route) {
  const std::vector<NodeId> path_nodes = topology_.route_nodes(route);
  RTCAC_REQUIRE(!paths_.contains(id),
                "LabelManager: duplicate connection id");

  // Allocate the label each link will carry: the receiving node owns it.
  std::vector<VcLabel> link_labels(route.size());
  std::vector<Allocation> allocations;
  allocations.reserve(route.size());
  std::vector<LabelBinding> installed;
  try {
    for (std::size_t k = 0; k < route.size(); ++k) {
      const LinkInfo& link = topology_.link(route[k]);
      const std::size_t port = topology_.in_port(route[k]);
      NodeLabels& receiver = nodes_.at(link.to);
      link_labels[k] = receiver.allocator.allocate(port);
      allocations.push_back(Allocation{link.to, port, link_labels[k]});
    }
    // Install the translation at every intermediate switch.
    for (std::size_t k = 1; k < route.size(); ++k) {
      const NodeId node = path_nodes[k];
      RTCAC_REQUIRE(topology_.node(node).kind == NodeKind::kSwitch,
                    "LabelManager: route transits a terminal");
      LabelBinding binding;
      binding.node = node;
      binding.in_port = topology_.in_port(route[k - 1]);
      binding.in_label = link_labels[k - 1];
      binding.out_port = topology_.out_port(route[k]);
      binding.out_label = link_labels[k];
      LabelSwitchingTable::Entry entry;
      entry.out_port = binding.out_port;
      entry.out_label = binding.out_label;
      entry.connection = id;
      if (!nodes_.at(node).table.install(binding.in_port, binding.in_label,
                                         entry)) {
        throw std::runtime_error("LabelManager: label collision");
      }
      installed.push_back(binding);
    }
  } catch (...) {
    // Roll back partial state so a failed setup leaves no residue.
    for (const LabelBinding& binding : installed) {
      nodes_.at(binding.node).table.remove(binding.in_port,
                                           binding.in_label);
    }
    for (const Allocation& alloc : allocations) {
      nodes_.at(alloc.node).allocator.release(alloc.port, alloc.label);
    }
    throw;
  }

  Established established;
  established.path.initial = link_labels.front();
  established.path.bindings = std::move(installed);
  established.path.egress = link_labels.back();
  established.allocations = std::move(allocations);
  const LabelPath result = established.path;
  paths_.emplace(id, std::move(established));
  return result;
}

bool LabelManager::release(ConnectionId id) {
  const auto it = paths_.find(id);
  if (it == paths_.end()) return false;
  for (const LabelBinding& binding : it->second.path.bindings) {
    nodes_.at(binding.node).table.remove(binding.in_port, binding.in_label);
  }
  for (const Allocation& alloc : it->second.allocations) {
    nodes_.at(alloc.node).allocator.release(alloc.port, alloc.label);
  }
  paths_.erase(it);
  return true;
}

const LabelSwitchingTable& LabelManager::table(NodeId node) const {
  const auto it = nodes_.find(node);
  RTCAC_REQUIRE(it != nodes_.end(),
                "LabelManager: node has no label state");
  return it->second.table;
}

}  // namespace rtcac
