// rtcac/net/reroute.h
//
// Survivability layer: mass rerouting with make-before-break failover.
//
// The paper's CAC gives a connection a hard end-to-end guarantee for as
// long as its path exists.  When a switch or link dies, every connection
// crossing it loses that path at once; the question this layer answers is
// what the network *does* about it.  The RerouteCoordinator subscribes to
// FaultInjector component events, indexes live connections by the links
// and switches they traverse, and drives recovery:
//
//   * Alternate-path selection via shortest_route_avoiding over the set
//     of all currently-down components (routing.h RouteAvoidance).
//   * Make-before-break re-admission through ConnectionManager::rehome —
//     the replacement path is checked and reserved while the old
//     reservation is still held, then the record is swung and the old
//     path released.  A surviving connection never has a window with
//     zero reserved paths, and the combined old+new load is exactly what
//     admission re-validated.
//   * Priority-ordered requeueing: when a failure strands many
//     connections at once, rehoming attempts run highest priority first
//     (lowest Priority value; ties broken by ConnectionId for
//     determinism).
//   * Bounded retry with exponential backoff: a connection that cannot
//     be rehomed right now (no route, admission rejection) retries at
//     failed_at + backoff, 2*backoff, ... up to Params::max_attempts
//     admission attempts.  A component recovery re-arms every pending
//     retry immediately (the topology just changed in its favor).
//   * Degradation reporting: a connection whose retry budget is
//     exhausted is torn down (TeardownReason::kFailure — the network,
//     not the user, ended it) and recorded in the DegradationReport with
//     the canonical RejectReason of its final attempt.  Nothing is
//     dropped silently.
//
// Every decision is journalled (decisions()) so soak tests can replay a
// seeded failure storm twice and require bit-identical outcomes.
//
// Time is driven explicitly: advance_to(now) interleaves scheduled fault
// boundaries (FaultInjector::next_scheduled_change) with due retries in
// tick order, fault boundaries first on ties, so a retry at tick t always
// sees the component state of tick t.  quiesce() runs the retry queue dry
// without advancing past it.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "net/connection_manager.h"
#include "net/fault_injector.h"
#include "net/label_manager.h"

namespace rtcac {

/// One connection the survivability layer gave up on.
struct DegradationEntry {
  ConnectionId id = kInvalidConnection;
  Priority priority = 0;
  /// Canonical rejection of the final admission attempt (kNoRoute when
  /// no alternate path existed, kAdmission/kDeadline when one did but
  /// the combined load could not carry it).
  RejectReason reason;
  std::size_t attempts = 0;  ///< admission attempts spent
  Tick failed_at = 0;        ///< when its path first broke
  Tick gave_up_at = 0;       ///< when the budget ran out
};

/// Connections that could not be rehomed, and why.
struct DegradationReport {
  std::vector<DegradationEntry> entries;

  [[nodiscard]] bool empty() const noexcept { return entries.empty(); }
  [[nodiscard]] std::string to_string() const;
};

/// One journalled reroute decision (the replay-determinism record).
struct RerouteDecision {
  enum class Outcome {
    kRehomed,         ///< make-before-break rehome onto `route` succeeded
    kKeptOriginal,    ///< original path became whole again before rehoming
    kRetryScheduled,  ///< attempt failed, retry pending
    kDegraded,        ///< retry budget exhausted; connection torn down
  };

  Tick at = 0;
  ConnectionId id = kInvalidConnection;
  Outcome outcome = Outcome::kRetryScheduled;
  Route route;          ///< the path kept/adopted (empty on failure outcomes)
  RejectReason reason;  ///< why the attempt failed (default on success)

  friend bool operator==(const RerouteDecision&,
                         const RerouteDecision&) = default;
};

[[nodiscard]] const char* to_string(RerouteDecision::Outcome outcome) noexcept;

class RerouteCoordinator {
 public:
  struct Params {
    /// Admission attempts per reroute episode before degrading.
    std::uint32_t max_attempts = 4;
    /// Backoff after the first failed attempt, in ticks (>= 1).
    Tick retry_backoff = 16;
    /// Backoff growth per further attempt (>= 1; 2 = exponential).
    Tick backoff_multiplier = 2;
  };

  struct Stats {
    std::size_t failure_events = 0;   ///< component-down events observed
    std::size_t recovery_events = 0;  ///< component-up events observed
    std::size_t episodes = 0;         ///< connections that lost their path
    std::size_t rehomed = 0;          ///< rehomed onto an alternate path
    std::size_t kept_original = 0;    ///< original path recovered in time
    std::size_t degraded = 0;         ///< torn down, budget exhausted
    std::size_t attempts = 0;         ///< admission attempts made
    /// Re-admission latency (rehome tick - failure tick) across rescued
    /// connections, for the bounded-latency soak assertions.
    Tick max_rescue_latency = 0;
    Tick total_rescue_latency = 0;
  };

  /// Subscribes to `faults` for the lifetime of the coordinator.  The
  /// label manager is optional; when given, a successful rehome rebinds
  /// the connection's VPI/VCI chain onto the new route and a degradation
  /// releases its labels.
  RerouteCoordinator(ConnectionManager& manager, FaultInjector& faults);
  RerouteCoordinator(ConnectionManager& manager, FaultInjector& faults,
                     Params params, LabelManager* labels = nullptr);
  ~RerouteCoordinator();

  RerouteCoordinator(const RerouteCoordinator&) = delete;
  RerouteCoordinator& operator=(const RerouteCoordinator&) = delete;

  /// Drives time forward to `now`: processes every scheduled fault
  /// boundary and every due retry in tick order (boundary first on a
  /// tie), then leaves the fault clock at `now`.  Manual fail_*/recover_*
  /// calls on the injector are handled synchronously as they happen.
  void advance_to(Tick now);

  /// Runs the pending retry queue dry: advances exactly to each due
  /// retry (processing any fault boundary at or before it) until no
  /// retries remain.  Scheduled outages beyond the last retry are left
  /// untouched.
  void quiesce();

  /// Connections currently waiting for a rehome attempt.
  [[nodiscard]] std::size_t pending_reroutes() const noexcept {
    return pending_.size();
  }
  /// Earliest tick at which advance_to would act (due retry or scheduled
  /// fault boundary), if any.
  [[nodiscard]] std::optional<Tick> next_wakeup() const;

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const DegradationReport& degradation() const noexcept {
    return degraded_;
  }
  [[nodiscard]] const std::vector<RerouteDecision>& decisions() const noexcept {
    return decisions_;
  }
  [[nodiscard]] const std::set<NodeId>& down_nodes() const noexcept {
    return down_nodes_;
  }
  [[nodiscard]] const std::set<LinkId>& down_links() const noexcept {
    return down_links_;
  }
  [[nodiscard]] const Params& params() const noexcept { return params_; }

 private:
  /// A reroute episode: one connection whose current path is (or was)
  /// broken, waiting for its next admission attempt.
  struct Episode {
    Priority priority = 0;
    std::uint32_t attempts = 0;  ///< admission attempts already spent
    Tick failed_at = 0;          ///< when the path first broke
    Tick due = 0;                ///< next attempt tick
  };

  void on_component_event(const ComponentEvent& event);
  void on_failure(const ComponentEvent& event);
  void on_recovery(const ComponentEvent& event);
  /// Runs every episode with due <= now, highest priority first.
  void attempt_due(Tick now);
  /// One admission attempt for one episode.  `it` is erased on any
  /// terminal outcome.
  void attempt_reroute(std::map<ConnectionId, Episode>::iterator it, Tick now);

  [[nodiscard]] bool route_broken(const Route& route) const;
  [[nodiscard]] std::optional<Tick> next_retry_due() const;

  ConnectionManager& manager_;
  FaultInjector& faults_;
  Params params_;
  LabelManager* labels_;
  std::size_t observer_token_ = 0;

  /// Effective component state, mirrored from the event stream (the
  /// avoidance set handed to the router).
  std::set<NodeId> down_nodes_;
  std::set<LinkId> down_links_;
  std::map<ConnectionId, Episode> pending_;
  DegradationReport degraded_;
  std::vector<RerouteDecision> decisions_;
  Stats stats_;
};

}  // namespace rtcac
