// rtcac/net/admission_engine.h
//
// Parallel network-level admission control: the thread-safe counterpart
// of ConnectionManager (docs/PERFORMANCE.md, "Parallel admission").
//
// AdmissionEngine shards the network's CAC state per switch inside a
// ConcurrentCac and exposes the same setup/teardown/reclaim vocabulary
// ConnectionManager does, with the same decision semantics:
//
//   * setup() runs a speculative check of every queueing point first —
//     lock-free against the shards' published snapshots for policies
//     that export them, under shared shard locks otherwise, optionally
//     fanned out across a ThreadPool so a multi-hop path's per-switch
//     checks run in parallel ("pipeline mode") — and only then commits
//     through ConcurrentCac::admit_path, which validates every hop
//     under exclusive locks taken in canonical (ascending shard id)
//     order.  Each speculative check carries a version stamp
//     (ConcurrentCac::CheckStamp); a hop whose point saw no commit in
//     between reuses its speculative verdict, every other hop is
//     re-checked, so a stale speculative check can never over-admit;
//     the worst a race can do is reject a connection that a different
//     interleaving would have admitted, exactly as two racing SETUP
//     messages would in the distributed protocol.
//
//   * check() is the commit-free variant: the full admission decision
//     (hop bounds + end-to-end deadline) with no state change.
//
//   * teardown_deferred()/drain() batch teardown commits: the record is
//     retired immediately but the per-switch removals queue up and one
//     drain applies each shard's backlog as a single batched
//     remove_many (PR 3's rebuild-once machinery).
//
//   * the admission policy is pluggable (core/path_eval.h CacPolicy):
//     the same sharded two-phase machinery runs the paper's bit-stream
//     check, peak allocation, or the max-rate baseline, because hop
//     arrivals are policy-erased (prepare() once per hop, reused by the
//     speculative check and the exclusive-lock re-check + commit).
//
//   * replay() executes a recorded operation trace on N threads with
//     decisions *identical* to a serial replay: per-shard ticket
//     counters hold every operation back until exactly the trace-order
//     prefix of conflicting operations has finished — reads on a shard
//     wait for all earlier writes to that shard, writes additionally
//     wait for all earlier reads — so checks against the same switch
//     still run concurrently, but every decision is made against the
//     exact state the serial execution would have seen.  This is the
//     oracle gate bench/parallel_admission_bench.cpp enforces.
//
// Reason strings, rejection points and deadline semantics mirror
// ConnectionManager::setup exactly (same messages, same first-rejecting
// hop), so a serial ConnectionManager replay of the same trace is a
// bit-for-bit decision oracle.  Connection *ids* are the one permitted
// difference: the engine burns an id on a rejected setup where the
// serial manager does not; no decision depends on id values.
//
// The record map is guarded by an annotated Mutex
// (util/thread_annotations.h) and the whole locking surface is
// machine-checked by clang's -Wthread-safety under the `tsa` preset
// (docs/STATIC_ANALYSIS.md).
//
// Concurrency primitives are confined to this module, to
// util/thread_annotations.h, core/concurrent_cac.* and
// util/thread_pool.h by the `concurrency-state` lint rule
// (tools/rtcac_lint.py).

#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/concurrent_cac.h"
#include "net/connection_manager.h"
#include "net/topology.h"
#include "util/thread_pool.h"

namespace rtcac {

class AdmissionEngine {
 public:
  using Params = ConnectionManager::Params;
  using SetupResult = ConnectionManager::SetupResult;
  using ConnectionRecord = ConnectionManager::ConnectionRecord;
  using ReclaimResult = ConnectionManager::ReclaimResult;

  /// Engine tuning (construction-time, immutable afterwards).
  struct Options {
    /// Workers fanning one setup's per-hop checks out in parallel; 0
    /// checks hops sequentially on the calling thread.  The engine is
    /// thread-safe either way — any number of caller threads may
    /// invoke setup/check/teardown concurrently.
    std::size_t pipeline_threads = 0;
    /// Snapshot republication window of the sharded core
    /// (ConcurrentCac::Options::publish_window): commits per shard
    /// between snapshot exports.  1 (default) publishes eagerly; N > 1
    /// batches a setup burst behind one export — flush explicitly with
    /// publish_snapshots().
    std::size_t publish_window = 1;
  };

  /// `pipeline_threads` workers fan one setup's per-hop checks out in
  /// parallel; 0 checks hops sequentially on the calling thread.  The
  /// engine is thread-safe either way — any number of caller threads
  /// may invoke setup/check/teardown concurrently.
  AdmissionEngine(const Topology& topology, const Params& params,
                  std::size_t pipeline_threads = 0);
  /// Explicit admission policy (stateless factory, used only during
  /// construction).
  AdmissionEngine(const Topology& topology, const Params& params,
                  const CacPolicy& policy, std::size_t pipeline_threads = 0);
  /// Full tuning surface.
  AdmissionEngine(const Topology& topology, const Params& params,
                  const CacPolicy& policy, const Options& options);

  AdmissionEngine(const AdmissionEngine&) = delete;
  AdmissionEngine& operator=(const AdmissionEngine&) = delete;

  /// Admits (or rejects) a connection over `route`; decision semantics,
  /// reasons and rollback behavior match ConnectionManager::setup.
  /// `lease_expiry` marks the reservations provisional until then
  /// (default: permanent, like the serial manager).
  SetupResult setup(const QosRequest& request, const Route& route,
                    double lease_expiry = SwitchCac::kPermanentLease);

  /// The full admission decision without committing anything.
  [[nodiscard]] SetupResult check(const QosRequest& request,
                                  const Route& route) const;

  /// In-place renegotiation (MODIFY) of established connection `id` to
  /// `new_request` over its current route: speculative checks of the
  /// new descriptor against the combined old+new load (the old
  /// reservations stay committed), then
  /// ConcurrentCac::renegotiate_path validates the stamps over the
  /// union of the old and new invalidation cones and performs the
  /// DeltaTransaction swap under the exclusive lock set.  Decision
  /// semantics match ConnectionManager::renegotiate; an unknown id is
  /// reported as a rejection (not a throw — records may be retired by
  /// concurrent teardowns).  On success the record keeps its id and
  /// carries the new descriptor.
  SetupResult renegotiate(ConnectionId id, const QosRequest& new_request,
                          double lease_expiry = SwitchCac::kPermanentLease);

  /// Immediate release of every hop reservation.  False for unknown ids.
  bool teardown(ConnectionId id);

  /// Retires the connection record now but defers the per-switch
  /// removals into the shards' pending queues; false for unknown ids.
  bool teardown_deferred(ConnectionId id);

  /// Applies all deferred removals, one batched remove_many per shard;
  /// returns the number of hop reservations released.
  std::size_t drain();

  /// Flushes snapshot publications deferred by Options::publish_window
  /// (no-op under the default eager window); returns the number of
  /// out-port slots republished.
  std::size_t publish_snapshots() { return cac_.publish_snapshots(); }

  [[nodiscard]] std::size_t pending_removals() const {
    return cac_.pending_removals();
  }

  /// Lease sweep across every shard; reclaimed ids lose their record.
  ReclaimResult reclaim(double now);

  [[nodiscard]] std::size_t connection_count() const;

  /// Queueing points / per-hop arrival stream — identical to the
  /// ConnectionManager definitions (advertised bounds are fixed, so
  /// these never depend on admission state).
  [[nodiscard]] std::vector<HopRef> queueing_points(const Route& route) const;
  [[nodiscard]] BitStream arrival_at_hop(const TrafficDescriptor& traffic,
                                         std::span<const HopRef> hops,
                                         std::size_t hop_index,
                                         Priority priority) const;

  /// Shard id of a switch node; throws for nodes without CAC state.
  [[nodiscard]] std::size_t shard_of(NodeId node) const;

  /// The sharded core (diagnostics sweeps, tests).
  [[nodiscard]] const ConcurrentCac& core() const noexcept { return cac_; }

  [[nodiscard]] bool state_consistent() const {
    return cac_.state_consistent();
  }
  [[nodiscard]] bool bandwidth_conserved() const {
    return cac_.bandwidth_conserved();
  }
  [[nodiscard]] bool cache_coherent() const { return cac_.cache_coherent(); }

  // --- deterministic parallel trace replay ------------------------------

  struct TraceOp {
    enum class Kind {
      kCheck,             ///< commit-free admission decision
      kSetup,             ///< admit + commit
      kTeardown,          ///< immediate release of an earlier setup
      kTeardownDeferred,  ///< retire record, queue removals
      kDrain,             ///< apply all deferred removals
      kModify,            ///< in-place renegotiation of an earlier setup
    };
    static constexpr std::size_t kNoTarget = static_cast<std::size_t>(-1);

    Kind kind = Kind::kCheck;
    QosRequest request;  ///< kCheck/kSetup; kModify: the NEW descriptor
    /// kCheck/kSetup: the route to admit.  kTeardown/kTeardownDeferred/
    /// kModify with an explicit `id`: the route of that established
    /// connection (needed to schedule the op onto its shards).
    Route route;
    /// kTeardown/kTeardownDeferred/kModify: index of the kSetup op
    /// whose connection to release or renegotiate (its route is taken
    /// from that op).
    std::size_t target = kNoTarget;
    /// Alternative to `target`: an id established before the trace ran.
    ConnectionId id = kInvalidConnection;
  };

  struct OpOutcome {
    bool accepted = false;
    std::string reason;  ///< setup reasons; empty otherwise
    RejectReason reject;  ///< canonical rejection for check/setup ops
  };

  /// Executes `trace` on `threads` workers (0 or 1 = serial) with the
  /// per-shard ticket schedule described above.  Returns one outcome
  /// per op, identical to what a serial execution would produce.
  std::vector<OpOutcome> replay(std::span<const TraceOp> trace,
                                std::size_t threads);

 private:
  struct PathPlan {
    std::vector<HopRef> hops;
    std::vector<ConcurrentCac::HopSpec> specs;
    double e2e_advertised = 0;
  };

  [[nodiscard]] PathPlan plan_path(const QosRequest& request,
                                   const Route& route) const;

  /// Speculative per-hop checks — against the shards' published
  /// snapshots when the policy exports them (lock-free), under shared
  /// locks otherwise; fans out across the pool when one exists.
  /// Returns the index of the first rejecting hop (kNoTarget when all
  /// admit) and fills `results`; when `stamps` is non-null it receives
  /// the per-hop version witnesses admit_path validates at commit time
  /// (validate-on-commit: unchanged hops reuse their verdicts).
  std::size_t speculative_checks(
      const std::vector<ConcurrentCac::HopSpec>& specs,
      std::vector<HopVerdict>& results,
      std::vector<ConcurrentCac::CheckStamp>* stamps = nullptr) const;

  SetupResult do_setup(const QosRequest& request, const Route& route,
                       double lease_expiry);
  [[nodiscard]] OpOutcome run_trace_op(std::size_t index,
                                       std::span<const TraceOp> trace,
                                       std::span<ConnectionId> ids_by_op);

  // topology_/params_/evaluator_/shard_index_ are immutable after
  // construction; cac_ and pool_ are internally synchronized (their own
  // annotated locks); next_id_ is atomic.  The guarded-by lint rule
  // requires each non-annotated member of a mutex-owning class to state
  // why, hence the inline allows.
  const Topology& topology_;  // rtcac-lint: allow(guarded-by)
  Params params_;  // rtcac-lint: allow(guarded-by)
  PathEvaluator evaluator_;  // rtcac-lint: allow(guarded-by)
  /// Per node; npos for terminals.
  std::vector<std::size_t> shard_index_;  // rtcac-lint: allow(guarded-by)
  ConcurrentCac cac_;  // rtcac-lint: allow(guarded-by)
  /// Pipeline mode; may be null.
  mutable std::unique_ptr<ThreadPool> pool_;  // rtcac-lint: allow(guarded-by)

  mutable Mutex records_mutex_;
  std::map<ConnectionId, ConnectionRecord> records_
      RTCAC_GUARDED_BY(records_mutex_);
  std::atomic<ConnectionId> next_id_{1};
};

}  // namespace rtcac
