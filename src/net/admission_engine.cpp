// rtcac/net/admission_engine.cpp — see admission_engine.h for the design.

#include "net/admission_engine.h"

#include <algorithm>
#include <limits>
#include <set>
#include <thread>
#include <utility>

#include "util/contract.h"

namespace rtcac {

namespace {

constexpr std::size_t kNoShard = std::numeric_limits<std::size_t>::max();
constexpr std::size_t kNoHop = ConcurrentCac::PathResult::npos;

/// Same per-switch configs, in the same order, as the ConnectionManager
/// constructor builds — shard ids must line up with the serial oracle.
std::vector<PointConfig> shard_configs(const Topology& topology,
                                       const ConnectionManager::Params& params,
                                       std::vector<std::size_t>& index_out) {
  index_out.assign(topology.node_count(), kNoShard);
  std::vector<PointConfig> configs;
  for (const NodeInfo& n : topology.nodes()) {
    if (n.kind != NodeKind::kSwitch) continue;
    PointConfig cfg;
    cfg.in_ports = topology.in_links(n.id).size() + 1;  // + local port
    cfg.out_ports = topology.out_links(n.id).size();
    cfg.priorities = params.priorities;
    cfg.advertised_bound = params.advertised_bound;
    cfg.coalesce_budget = params.coalesce_budget;
    if (cfg.out_ports == 0) continue;  // sink-only switch: nothing to admit
    index_out[n.id] = configs.size();
    configs.push_back(cfg);
  }
  return configs;
}

/// admit_path acceptance hook implementing the end-to-end deadline
/// check over the authoritative (exclusive-lock) hop bounds.
struct DeadlineCtx {
  const PathEvaluator* evaluator;
  double e2e_advertised;
  double deadline;
};

bool deadline_accept(const std::vector<HopVerdict>& hops, void* raw) {
  const auto* ctx = static_cast<const DeadlineCtx*>(raw);
  double computed = 0;
  for (const HopVerdict& hop : hops) computed += hop.bound;
  return ctx->evaluator->deadline_met(computed, ctx->e2e_advertised,
                                      ctx->deadline);
}

/// Installs a canonical rejection into a SetupResult, mirroring the
/// serial manager's handling (reason text = detail; rejecting_node only
/// for per-hop CAC rejections).
void apply_reject(ConnectionManager::SetupResult& result, RejectReason reject,
                  std::span<const HopRef> hops) {
  if (reject.code == RejectCode::kAdmission && reject.hop < hops.size()) {
    result.rejecting_node = hops[reject.hop].node;
  }
  result.reason = reject.detail;
  result.reject = std::move(reject);
}

}  // namespace

AdmissionEngine::AdmissionEngine(const Topology& topology,
                                 const Params& params,
                                 std::size_t pipeline_threads)
    : AdmissionEngine(topology, params, BitstreamCacPolicy::instance(),
                      pipeline_threads) {}

AdmissionEngine::AdmissionEngine(const Topology& topology,
                                 const Params& params, const CacPolicy& policy,
                                 std::size_t pipeline_threads)
    : AdmissionEngine(topology, params, policy,
                      Options{pipeline_threads, 1}) {}

AdmissionEngine::AdmissionEngine(const Topology& topology,
                                 const Params& params, const CacPolicy& policy,
                                 const Options& options)
    : topology_(topology),
      params_(params),
      evaluator_(PathEvaluator::Params{params.priorities, params.cdv_policy,
                                       params.guarantee}),
      cac_(policy, shard_configs(topology, params, shard_index_),
           ConcurrentCac::Options{options.publish_window}),
      pool_(options.pipeline_threads > 0
                ? std::make_unique<ThreadPool>(options.pipeline_threads)
                : nullptr) {
  RTCAC_REQUIRE(params_.priorities >= 1,
                "AdmissionEngine: priorities must be >= 1");
}

std::size_t AdmissionEngine::shard_of(NodeId node) const {
  RTCAC_REQUIRE(node < shard_index_.size() && shard_index_[node] != kNoShard,
                "AdmissionEngine: node has no CAC state (terminal or sink)");
  return shard_index_[node];
}

std::vector<HopRef> AdmissionEngine::queueing_points(const Route& route) const {
  const std::vector<NodeId> nodes = topology_.route_nodes(route);
  std::vector<HopRef> hops;
  hops.reserve(route.size());
  for (std::size_t k = 0; k < route.size(); ++k) {
    const NodeId from = nodes[k];
    if (topology_.node(from).kind != NodeKind::kSwitch) {
      continue;  // terminals are rate-controlled, not queueing points
    }
    HopRef hop;
    hop.node = from;
    hop.link = route[k];
    hop.out_port = topology_.out_port(route[k]);
    hop.in_port = (k == 0) ? topology_.local_in_port(from)
                           : topology_.in_port(route[k - 1]);
    hops.push_back(hop);
  }
  return hops;
}

BitStream AdmissionEngine::arrival_at_hop(const TrafficDescriptor& traffic,
                                          std::span<const HopRef> hops,
                                          std::size_t hop_index,
                                          Priority priority) const {
  RTCAC_REQUIRE(hop_index <= hops.size(),
                "arrival_at_hop: hop index out of range");
  std::vector<double> upstream;
  upstream.reserve(hop_index);
  for (std::size_t h = 0; h < hop_index; ++h) {
    upstream.push_back(
        cac_.advertised(shard_of(hops[h].node), hops[h].out_port, priority));
  }
  return PathEvaluator::bitstream_arrival(traffic,
                                          evaluator_.accumulated_cdv(upstream));
}

AdmissionEngine::PathPlan AdmissionEngine::plan_path(const QosRequest& request,
                                                     const Route& route) const {
  PathPlan plan;
  plan.hops = queueing_points(route);
  plan.specs.reserve(plan.hops.size());
  std::vector<double> upstream;
  upstream.reserve(plan.hops.size());
  for (const HopRef& hop : plan.hops) {
    ConcurrentCac::HopSpec spec;
    spec.shard = shard_of(hop.node);
    spec.in_port = hop.in_port;
    spec.out_port = hop.out_port;
    spec.priority = request.priority;
    // The upstream advertised bounds are fixed, so the prepared arrival
    // (policy-specific Alg. 3.1 distortion) is built once per hop and
    // reused by both admission phases.
    spec.arrival = cac_.prepare(spec.shard, request.traffic,
                                evaluator_.accumulated_cdv(upstream));
    const double adv =
        cac_.advertised(spec.shard, spec.out_port, request.priority);
    plan.e2e_advertised += adv;
    upstream.push_back(adv);
    plan.specs.push_back(std::move(spec));
  }
  return plan;
}

std::size_t AdmissionEngine::speculative_checks(
    const std::vector<ConcurrentCac::HopSpec>& specs,
    std::vector<HopVerdict>& results,
    std::vector<ConcurrentCac::CheckStamp>* stamps) const {
  results.resize(specs.size());
  if (stamps != nullptr) stamps->resize(specs.size());
  if (pool_ != nullptr && pool_->size() > 0 && specs.size() > 1) {
    // Pipeline mode: the path's per-switch checks run concurrently,
    // each against its shard's published snapshot (or shared lock).
    std::atomic<std::size_t> remaining{specs.size()};
    for (std::size_t h = 0; h < specs.size(); ++h) {
      pool_->submit([this, &specs, &results, &remaining, stamps, h] {
        results[h] = cac_.check_hop(
            specs[h], stamps != nullptr ? &(*stamps)[h] : nullptr);
        remaining.fetch_sub(1, std::memory_order_release);
      });
    }
    while (remaining.load(std::memory_order_acquire) != 0) {
      std::this_thread::yield();
    }
  } else {
    for (std::size_t h = 0; h < specs.size(); ++h) {
      results[h] = cac_.check_hop(
          specs[h], stamps != nullptr ? &(*stamps)[h] : nullptr);
    }
  }
  for (std::size_t h = 0; h < specs.size(); ++h) {
    if (!results[h].admitted) return h;
  }
  return kNoHop;
}

AdmissionEngine::SetupResult AdmissionEngine::do_setup(
    const QosRequest& request, const Route& route, double lease_expiry) {
  SetupResult result;
  request.traffic.validate();
  if (!evaluator_.priority_valid(request.priority)) {
    apply_reject(result, PathEvaluator::priority_rejection(), {});
    return result;
  }

  const PathPlan plan = plan_path(request, route);

  // Phase one: speculative checks — lock-free against the published
  // snapshots (or under shared locks), parallel across shards in
  // pipeline mode.  A rejection here commits nothing.
  std::vector<HopVerdict> speculative;
  std::vector<ConcurrentCac::CheckStamp> stamps;
  const std::size_t rejecting =
      speculative_checks(plan.specs, speculative, &stamps);
  if (rejecting != kNoHop) {
    apply_reject(result,
                 PathEvaluator::hop_rejection(
                     rejecting, topology_.node(plan.hops[rejecting].node).name,
                     speculative[rejecting].detail),
                 plan.hops);
    return result;
  }

  if (plan.specs.empty()) {
    // Routes without queueing points carry a vacuous zero bound, like
    // the serial manager's empty hop walk.
    RejectReason deadline =
        evaluator_.deadline_rejection(0, 0.0, 0.0, request.deadline);
    if (deadline.rejected()) {
      apply_reject(result, std::move(deadline), plan.hops);
      return result;
    }
    const ConnectionId id = next_id_.fetch_add(1, std::memory_order_relaxed);
    result.accepted = true;
    result.id = id;
    const MutexLock lock(records_mutex_);
    records_.emplace(id, ConnectionRecord{request, route, plan.hops});
    return result;
  }

  // Phase two: validate-on-commit under exclusive locks in canonical
  // shard order — hops whose version stamps still match reuse their
  // speculative verdicts, the rest are re-checked.  The id is burned
  // if the validation rejects.
  const ConnectionId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  DeadlineCtx ctx{&evaluator_, plan.e2e_advertised, request.deadline};
  std::vector<ConcurrentCac::SpeculativeHop> witnesses(plan.specs.size());
  for (std::size_t h = 0; h < plan.specs.size(); ++h) {
    witnesses[h] =
        ConcurrentCac::SpeculativeHop{speculative[h], std::move(stamps[h])};
  }
  const ConcurrentCac::PathResult path = cac_.admit_path(
      plan.specs, id, lease_expiry, &deadline_accept, &ctx, witnesses);

  if (!path.admitted) {
    if (path.rejecting_hop != kNoHop) {
      apply_reject(
          result,
          PathEvaluator::hop_rejection(
              path.rejecting_hop,
              topology_.node(plan.hops[path.rejecting_hop].node).name,
              path.hops[path.rejecting_hop].detail),
          plan.hops);
    } else {
      // Every hop admitted; the deadline predicate said no.
      double computed = 0;
      for (const HopVerdict& hop : path.hops) computed += hop.bound;
      apply_reject(result,
                   evaluator_.deadline_rejection(plan.hops.size(), computed,
                                                 plan.e2e_advertised,
                                                 request.deadline),
                   plan.hops);
    }
    return result;
  }

  for (const HopVerdict& hop : path.hops) {
    result.hop_bounds.push_back(hop.bound);
    result.e2e_bound_at_setup += hop.bound;
  }
  result.e2e_advertised = plan.e2e_advertised;
  result.accepted = true;
  result.id = id;
  {
    const MutexLock lock(records_mutex_);
    records_.emplace(id, ConnectionRecord{request, route, plan.hops});
  }
  return result;
}

AdmissionEngine::SetupResult AdmissionEngine::setup(const QosRequest& request,
                                                    const Route& route,
                                                    double lease_expiry) {
  return do_setup(request, route, lease_expiry);
}

AdmissionEngine::SetupResult AdmissionEngine::check(const QosRequest& request,
                                                    const Route& route) const {
  SetupResult result;
  request.traffic.validate();
  if (!evaluator_.priority_valid(request.priority)) {
    apply_reject(result, PathEvaluator::priority_rejection(), {});
    return result;
  }

  const PathPlan plan = plan_path(request, route);
  std::vector<HopVerdict> speculative;
  const std::size_t rejecting = speculative_checks(plan.specs, speculative);
  if (rejecting != kNoHop) {
    apply_reject(result,
                 PathEvaluator::hop_rejection(
                     rejecting, topology_.node(plan.hops[rejecting].node).name,
                     speculative[rejecting].detail),
                 plan.hops);
    return result;
  }

  for (const HopVerdict& hop : speculative) {
    result.hop_bounds.push_back(hop.bound);
    result.e2e_bound_at_setup += hop.bound;
  }
  result.e2e_advertised = plan.e2e_advertised;
  RejectReason deadline = evaluator_.deadline_rejection(
      plan.hops.size(), result.e2e_bound_at_setup, plan.e2e_advertised,
      request.deadline);
  if (deadline.rejected()) {
    result.hop_bounds.clear();
    result.e2e_bound_at_setup = 0;
    result.e2e_advertised = 0;
    apply_reject(result, std::move(deadline), plan.hops);
    return result;
  }
  result.accepted = true;
  return result;
}

AdmissionEngine::SetupResult AdmissionEngine::renegotiate(
    ConnectionId id, const QosRequest& new_request, double lease_expiry) {
  SetupResult result;
  new_request.traffic.validate();
  if (!evaluator_.priority_valid(new_request.priority)) {
    apply_reject(result, PathEvaluator::priority_rejection(), {});
    return result;
  }

  QosRequest old_request;
  Route route;
  {
    const MutexLock lock(records_mutex_);
    const auto it = records_.find(id);
    if (it == records_.end()) {
      RejectReason reject;
      reject.code = RejectCode::kNoRoute;
      reject.detail = "renegotiate: unknown connection id";
      apply_reject(result, std::move(reject), {});
      return result;
    }
    old_request = it->second.request;
    route = it->second.route;
  }

  // The new descriptor is planned over the connection's *existing*
  // route; every speculative check runs against the live state, which
  // still carries the old reservations — exactly the combined-load
  // (make-before-break) check the serial renegotiate walk performs.
  const PathPlan plan = plan_path(new_request, route);
  std::vector<HopVerdict> speculative;
  std::vector<ConcurrentCac::CheckStamp> stamps;
  const std::size_t rejecting =
      speculative_checks(plan.specs, speculative, &stamps);
  if (rejecting != kNoHop) {
    apply_reject(result,
                 PathEvaluator::hop_rejection(
                     rejecting, topology_.node(plan.hops[rejecting].node).name,
                     speculative[rejecting].detail),
                 plan.hops);
    return result;
  }

  if (plan.specs.empty()) {
    RejectReason deadline =
        evaluator_.deadline_rejection(0, 0.0, 0.0, new_request.deadline);
    if (deadline.rejected()) {
      apply_reject(result, std::move(deadline), plan.hops);
      return result;
    }
    result.accepted = true;
    result.id = id;
    const MutexLock lock(records_mutex_);
    const auto it = records_.find(id);
    if (it != records_.end()) it->second.request = new_request;
    return result;
  }

  // Validate-on-commit with the *union* cone: the provisional id is
  // burned even when the locked validation rejects (ids are the one
  // permitted cross-engine difference).
  const ConnectionId provisional =
      next_id_.fetch_add(1, std::memory_order_relaxed);
  DeadlineCtx ctx{&evaluator_, plan.e2e_advertised, new_request.deadline};
  std::vector<ConcurrentCac::SpeculativeHop> witnesses(plan.specs.size());
  for (std::size_t h = 0; h < plan.specs.size(); ++h) {
    witnesses[h] =
        ConcurrentCac::SpeculativeHop{speculative[h], std::move(stamps[h])};
  }
  const ConcurrentCac::PathResult path = cac_.renegotiate_path(
      plan.specs, id, provisional, old_request.priority, lease_expiry,
      &deadline_accept, &ctx, witnesses);

  if (!path.admitted) {
    if (path.rejecting_hop != kNoHop) {
      apply_reject(
          result,
          PathEvaluator::hop_rejection(
              path.rejecting_hop,
              topology_.node(plan.hops[path.rejecting_hop].node).name,
              path.hops[path.rejecting_hop].detail),
          plan.hops);
    } else {
      double computed = 0;
      for (const HopVerdict& hop : path.hops) computed += hop.bound;
      apply_reject(result,
                   evaluator_.deadline_rejection(plan.hops.size(), computed,
                                                 plan.e2e_advertised,
                                                 new_request.deadline),
                   plan.hops);
    }
    return result;
  }

  for (const HopVerdict& hop : path.hops) {
    result.hop_bounds.push_back(hop.bound);
    result.e2e_bound_at_setup += hop.bound;
  }
  result.e2e_advertised = plan.e2e_advertised;
  result.accepted = true;
  result.id = id;
  {
    const MutexLock lock(records_mutex_);
    const auto it = records_.find(id);
    if (it != records_.end()) it->second.request = new_request;
  }
  return result;
}

bool AdmissionEngine::teardown(ConnectionId id) {
  ConnectionRecord record;
  {
    const MutexLock lock(records_mutex_);
    const auto it = records_.find(id);
    if (it == records_.end()) return false;
    record = std::move(it->second);
    records_.erase(it);
  }
  for (const HopRef& hop : record.hops) {
    cac_.remove(shard_of(hop.node), id);
  }
  return true;
}

bool AdmissionEngine::teardown_deferred(ConnectionId id) {
  ConnectionRecord record;
  {
    const MutexLock lock(records_mutex_);
    const auto it = records_.find(id);
    if (it == records_.end()) return false;
    record = std::move(it->second);
    records_.erase(it);
  }
  for (const HopRef& hop : record.hops) {
    cac_.queue_remove(shard_of(hop.node), id);
  }
  return true;
}

std::size_t AdmissionEngine::drain() { return cac_.drain_removals(); }

AdmissionEngine::ReclaimResult AdmissionEngine::reclaim(double now) {
  ReclaimResult result;
  std::set<ConnectionId> orphans;
  for (std::size_t shard = 0; shard < cac_.shard_count(); ++shard) {
    for (const ConnectionId id : cac_.reclaim(shard, now)) {
      ++result.reservations_reclaimed;
      orphans.insert(id);
    }
  }
  result.orphans.assign(orphans.begin(), orphans.end());
  if (!result.orphans.empty()) {
    const MutexLock lock(records_mutex_);
    for (const ConnectionId id : result.orphans) records_.erase(id);
  }
  return result;
}

std::size_t AdmissionEngine::connection_count() const {
  const MutexLock lock(records_mutex_);
  return records_.size();
}

// --- deterministic parallel trace replay --------------------------------

namespace {

ConnectionId resolve_trace_id(const AdmissionEngine::TraceOp& op,
                              std::span<const ConnectionId> ids_by_op) {
  if (op.target != AdmissionEngine::TraceOp::kNoTarget) {
    return ids_by_op[op.target];
  }
  return op.id;
}

}  // namespace

AdmissionEngine::OpOutcome AdmissionEngine::run_trace_op(
    std::size_t index, std::span<const TraceOp> trace,
    std::span<ConnectionId> ids_by_op) {
  const TraceOp& op = trace[index];
  OpOutcome outcome;
  switch (op.kind) {
    case TraceOp::Kind::kCheck: {
      SetupResult r = check(op.request, op.route);
      outcome.accepted = r.accepted;
      outcome.reason = std::move(r.reason);
      outcome.reject = std::move(r.reject);
      break;
    }
    case TraceOp::Kind::kSetup: {
      SetupResult r = do_setup(op.request, op.route,
                               SwitchCac::kPermanentLease);
      ids_by_op[index] = r.accepted ? r.id : kInvalidConnection;
      outcome.accepted = r.accepted;
      outcome.reason = std::move(r.reason);
      outcome.reject = std::move(r.reject);
      break;
    }
    case TraceOp::Kind::kTeardown: {
      const ConnectionId id = resolve_trace_id(op, ids_by_op);
      outcome.accepted = id != kInvalidConnection && teardown(id);
      break;
    }
    case TraceOp::Kind::kTeardownDeferred: {
      const ConnectionId id = resolve_trace_id(op, ids_by_op);
      outcome.accepted = id != kInvalidConnection && teardown_deferred(id);
      break;
    }
    case TraceOp::Kind::kDrain: {
      drain();
      outcome.accepted = true;
      break;
    }
    case TraceOp::Kind::kModify: {
      const ConnectionId id = resolve_trace_id(op, ids_by_op);
      if (id == kInvalidConnection) break;  // rejected setup: no-op
      SetupResult r = renegotiate(id, op.request);
      outcome.accepted = r.accepted;
      outcome.reason = std::move(r.reason);
      outcome.reject = std::move(r.reject);
      break;
    }
  }
  return outcome;
}

// GCC 12's -Wfree-nonheap-object misfires here: after inlining the
// worker lambda it flags the destructor of a plainly heap-backed vector
// because of the span arithmetic over ids_by_op.  Scoped suppression;
// clang and newer GCCs are clean.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wfree-nonheap-object"
#endif

std::vector<AdmissionEngine::OpOutcome> AdmissionEngine::replay(
    std::span<const TraceOp> trace, std::size_t threads) {
  const std::size_t n = trace.size();
  std::vector<OpOutcome> outcomes(n);
  if (n == 0) return outcomes;

  const std::size_t shard_count = cac_.shard_count();

  // Schedule: which shards each op conflicts on, and whether it writes.
  std::vector<std::vector<std::size_t>> touched(n);
  std::vector<char> is_write(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const TraceOp& op = trace[i];
    const Route* route = &op.route;
    switch (op.kind) {
      case TraceOp::Kind::kCheck:
        break;
      case TraceOp::Kind::kSetup:
      case TraceOp::Kind::kTeardownDeferred:
      case TraceOp::Kind::kTeardown:
      case TraceOp::Kind::kModify:
        is_write[i] = 1;
        if (op.target != TraceOp::kNoTarget) route = &trace[op.target].route;
        break;
      case TraceOp::Kind::kDrain:
        is_write[i] = 1;
        touched[i].resize(shard_count);
        for (std::size_t s = 0; s < shard_count; ++s) touched[i][s] = s;
        break;
    }
    if (op.kind != TraceOp::Kind::kDrain) {
      for (const HopRef& hop : queueing_points(*route)) {
        touched[i].push_back(shard_of(hop.node));
      }
      std::sort(touched[i].begin(), touched[i].end());
      touched[i].erase(std::unique(touched[i].begin(), touched[i].end()),
                       touched[i].end());
    }
  }

  // Per-(op, shard) ticket preconditions: how many earlier writes /
  // reads of that shard must have finished before the op may run.
  std::vector<std::vector<std::size_t>> w_before(n);
  std::vector<std::vector<std::size_t>> r_before(n);
  {
    std::vector<std::size_t> wcount(shard_count, 0);
    std::vector<std::size_t> rcount(shard_count, 0);
    for (std::size_t i = 0; i < n; ++i) {
      w_before[i].reserve(touched[i].size());
      r_before[i].reserve(touched[i].size());
      for (const std::size_t s : touched[i]) {
        w_before[i].push_back(wcount[s]);
        r_before[i].push_back(rcount[s]);
      }
      for (const std::size_t s : touched[i]) {
        if (is_write[i] != 0) {
          ++wcount[s];
        } else {
          ++rcount[s];
        }
      }
    }
  }

  std::vector<std::atomic<std::size_t>> wdone(shard_count);
  std::vector<std::atomic<std::size_t>> rdone(shard_count);
  std::vector<ConnectionId> ids_by_op(n, kInvalidConnection);
  std::atomic<std::size_t> next_op{0};

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next_op.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      // Wait for the trace-order prefix of conflicting ops: reads wait
      // out earlier writes; writes also wait out earlier reads.
      for (std::size_t k = 0; k < touched[i].size(); ++k) {
        const std::size_t s = touched[i][k];
        while (wdone[s].load(std::memory_order_acquire) != w_before[i][k]) {
          std::this_thread::yield();
        }
        if (is_write[i] != 0) {
          while (rdone[s].load(std::memory_order_acquire) != r_before[i][k]) {
            std::this_thread::yield();
          }
        }
      }
      outcomes[i] = run_trace_op(i, trace, ids_by_op);
      for (const std::size_t s : touched[i]) {
        if (is_write[i] != 0) {
          wdone[s].fetch_add(1, std::memory_order_release);
        } else {
          rdone[s].fetch_add(1, std::memory_order_release);
        }
      }
    }
  };

  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  return outcomes;
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace rtcac
