#include "net/routing.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <tuple>
#include <vector>

namespace rtcac {

namespace {

struct Label {
  std::size_t hops = std::numeric_limits<std::size_t>::max();
  Tick propagation = 0;
  LinkId via = 0;
  bool reached = false;
};

}  // namespace

std::optional<Route> shortest_route_avoiding(
    const Topology& topology, NodeId from, NodeId to,
    const RouteAvoidance& avoid) {
  if (from >= topology.node_count() || to >= topology.node_count()) {
    return std::nullopt;
  }

  std::vector<bool> banned_node(topology.node_count(), false);
  for (const NodeId n : avoid.nodes) {
    if (n < banned_node.size()) banned_node[n] = true;
  }
  // A down endpoint ends the search before it starts: no route can avoid
  // its own source or destination.
  if (banned_node[from] || banned_node[to]) return std::nullopt;
  if (from == to) return Route{};

  std::vector<bool> banned(topology.link_count(), false);
  for (const LinkId l : avoid.links) {
    if (l < banned.size()) banned[l] = true;
  }
  // Every link touching a banned node is unusable; folding that into the
  // link mask keeps the relaxation loop a single test.
  for (const LinkInfo& l : topology.links()) {
    if (banned_node[l.from] || banned_node[l.to]) banned[l.id] = true;
  }

  // Dijkstra over (hops, propagation); the graph is small and static.
  using Entry = std::tuple<std::size_t, Tick, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> frontier;
  std::vector<Label> labels(topology.node_count());
  labels[from].hops = 0;
  labels[from].reached = true;
  frontier.emplace(0, 0, from);

  while (!frontier.empty()) {
    const auto [hops, prop, node] = frontier.top();
    frontier.pop();
    if (hops > labels[node].hops ||
        (hops == labels[node].hops && prop > labels[node].propagation)) {
      continue;  // stale
    }
    if (node == to) break;
    for (const LinkId lid : topology.out_links(node)) {
      if (banned[lid]) continue;
      const LinkInfo& l = topology.link(lid);
      // Terminals only originate traffic; transit through one is not a
      // path (their single access link makes this moot, but be explicit).
      if (node != from &&
          topology.node(node).kind == NodeKind::kTerminal) {
        continue;
      }
      const std::size_t nh = hops + 1;
      const Tick np = prop + l.propagation;
      Label& lbl = labels[l.to];
      if (!lbl.reached || nh < lbl.hops ||
          (nh == lbl.hops && np < lbl.propagation)) {
        lbl.reached = true;
        lbl.hops = nh;
        lbl.propagation = np;
        lbl.via = lid;
        frontier.emplace(nh, np, l.to);
      }
    }
  }

  if (!labels[to].reached) return std::nullopt;
  Route route;
  for (NodeId n = to; n != from;) {
    const LinkId via = labels[n].via;
    route.push_back(via);
    n = topology.link(via).from;
  }
  std::reverse(route.begin(), route.end());
  return route;
}

std::optional<Route> shortest_route_avoiding(
    const Topology& topology, NodeId from, NodeId to,
    std::span<const LinkId> excluded) {
  RouteAvoidance avoid;
  avoid.links = excluded;
  return shortest_route_avoiding(topology, from, to, avoid);
}

std::optional<Route> shortest_route(const Topology& topology, NodeId from,
                                    NodeId to) {
  return shortest_route_avoiding(topology, from, to,
                                 std::span<const LinkId>{});
}

}  // namespace rtcac
