#include "net/topology.h"

#include <algorithm>
#include <stdexcept>

#include "util/contract.h"

namespace rtcac {

NodeId Topology::add_node(NodeKind kind, std::string name) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  if (name.empty()) {
    name = (kind == NodeKind::kSwitch ? "sw" : "term") + std::to_string(id);
  }
  nodes_.push_back(NodeInfo{id, kind, std::move(name)});
  out_links_.emplace_back();
  in_links_.emplace_back();
  return id;
}

NodeId Topology::add_switch(std::string name) {
  return add_node(NodeKind::kSwitch, std::move(name));
}

NodeId Topology::add_terminal(std::string name) {
  return add_node(NodeKind::kTerminal, std::move(name));
}

LinkId Topology::add_link(NodeId from, NodeId to, Tick propagation) {
  RTCAC_REQUIRE(from < nodes_.size() && to < nodes_.size(),
                "Topology: unknown link endpoint");
  RTCAC_REQUIRE(from != to, "Topology: self-loop link");
  RTCAC_REQUIRE(propagation >= 0, "Topology: negative propagation");
  RTCAC_REQUIRE(
      !(nodes_[from].kind == NodeKind::kTerminal && !out_links_[from].empty()),
      "Topology: terminal already has an access link");
  const LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(LinkInfo{id, from, to, propagation});
  out_links_[from].push_back(id);
  in_links_[to].push_back(id);
  return id;
}

const NodeInfo& Topology::node(NodeId id) const {
  RTCAC_REQUIRE(id < nodes_.size(), "Topology: bad node id");
  return nodes_[id];
}

const LinkInfo& Topology::link(LinkId id) const {
  RTCAC_REQUIRE(id < links_.size(), "Topology: bad link id");
  return links_[id];
}

std::span<const LinkId> Topology::out_links(NodeId id) const {
  RTCAC_REQUIRE(id < nodes_.size(), "Topology: bad node id");
  return out_links_[id];
}

std::span<const LinkId> Topology::in_links(NodeId id) const {
  RTCAC_REQUIRE(id < nodes_.size(), "Topology: bad node id");
  return in_links_[id];
}

std::size_t Topology::out_port(LinkId link_id) const {
  const LinkInfo& l = link(link_id);
  const auto& outs = out_links_[l.from];
  const auto it = std::find(outs.begin(), outs.end(), link_id);
  return static_cast<std::size_t>(it - outs.begin());
}

std::size_t Topology::in_port(LinkId link_id) const {
  const LinkInfo& l = link(link_id);
  const auto& ins = in_links_[l.to];
  const auto it = std::find(ins.begin(), ins.end(), link_id);
  return static_cast<std::size_t>(it - ins.begin());
}

std::size_t Topology::local_in_port(NodeId id) const {
  return in_links(id).size();
}

std::optional<LinkId> Topology::find_link(NodeId from, NodeId to) const {
  if (from >= nodes_.size()) return std::nullopt;
  for (const LinkId l : out_links_[from]) {
    if (links_[l].to == to) return l;
  }
  return std::nullopt;
}

std::vector<NodeId> Topology::route_nodes(const Route& route) const {
  RTCAC_REQUIRE(!route.empty(), "Topology: empty route");
  std::vector<NodeId> nodes;
  nodes.reserve(route.size() + 1);
  nodes.push_back(link(route.front()).from);
  for (std::size_t k = 0; k < route.size(); ++k) {
    const LinkInfo& l = link(route[k]);
    RTCAC_REQUIRE(l.from == nodes.back(), "Topology: disconnected route");
    nodes.push_back(l.to);
  }
  return nodes;
}

}  // namespace rtcac
