#include "net/label_table.h"

#include <stdexcept>

#include "util/contract.h"

namespace rtcac {

LabelAllocator::LabelAllocator(std::size_t in_ports) : ports_(in_ports) {
  RTCAC_REQUIRE(in_ports >= 1, "LabelAllocator: need at least one port");
}

VcLabel LabelAllocator::allocate(std::size_t in_port) {
  RTCAC_REQUIRE(in_port < ports_.size(), "LabelAllocator: bad in port");
  PortState& port = ports_[in_port];
  if (!port.free_list.empty()) {
    const VcLabel label = port.free_list.back();
    port.free_list.pop_back();
    ++port.live;
    return label;
  }
  if (port.next.vpi > kMaxVpi) {
    throw std::runtime_error("LabelAllocator: label space exhausted");
  }
  const VcLabel label = port.next;
  if (port.next.vci == 0xFFFF) {
    port.next.vci = kFirstUserVci;
    ++port.next.vpi;
  } else {
    ++port.next.vci;
  }
  ++port.live;
  return label;
}

bool LabelAllocator::release(std::size_t in_port, VcLabel label) {
  RTCAC_REQUIRE(in_port < ports_.size(), "LabelAllocator: bad in port");
  PortState& port = ports_[in_port];
  if (port.live == 0) return false;
  // The allocator does not track the full live set (the switching table
  // is the source of truth); it only guards against double release via
  // the live counter and never hands a freed label out twice.
  --port.live;
  port.free_list.push_back(label);
  return true;
}

std::size_t LabelAllocator::allocated(std::size_t in_port) const {
  RTCAC_REQUIRE(in_port < ports_.size(), "LabelAllocator: bad in port");
  return ports_[in_port].live;
}

bool LabelSwitchingTable::install(std::size_t in_port, VcLabel in_label,
                                  const Entry& entry) {
  return entries_.emplace(Key{in_port, in_label}, entry).second;
}

std::optional<LabelSwitchingTable::Entry> LabelSwitchingTable::lookup(
    std::size_t in_port, VcLabel in_label) const {
  const auto it = entries_.find(Key{in_port, in_label});
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

bool LabelSwitchingTable::remove(std::size_t in_port, VcLabel in_label) {
  return entries_.erase(Key{in_port, in_label}) > 0;
}

}  // namespace rtcac
