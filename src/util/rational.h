// rtcac/util/rational.h
//
// Exact rational arithmetic on 64-bit numerator/denominator.
//
// The bit-stream algebra (src/core) is templated on its scalar type so the
// same worst-case analysis can run either in floating point (fast, the
// production default) or exactly (Rational).  Exact arithmetic matters for
// admission control: a delay bound that is equal to the advertised bound
// must admit, and floating-point noise around that boundary would make the
// decision configuration-dependent.  Tests also use Rational to cross-check
// the double instantiation.
//
// Representation invariant: den > 0, gcd(|num|, den) == 1, and 0/1 is the
// unique zero.  All operations keep intermediates in rtcac_int128 and throw
// RationalOverflow if a reduced result does not fit in int64.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

// 128-bit intermediates keep reduce() overflow-free; the __extension__
// spelling silences -Wpedantic on GCC/Clang.
__extension__ typedef __int128 rtcac_int128;

namespace rtcac {

/// Thrown when a reduced rational result exceeds the int64 range.
class RationalOverflow : public std::overflow_error {
 public:
  explicit RationalOverflow(const std::string& what)
      : std::overflow_error(what) {}
};

/// Exact rational number with int64 numerator and denominator.
///
/// Models a totally ordered field subset; supports the operations the
/// bit-stream algebra needs (+, -, *, /, comparisons) plus conversions.
class Rational {
 public:
  /// Zero.
  constexpr Rational() noexcept : num_(0), den_(1) {}

  /// Integer value.
  constexpr Rational(std::int64_t value) noexcept  // NOLINT(google-explicit-constructor)
      : num_(value), den_(1) {}

  /// num/den, reduced.  Throws std::invalid_argument if den == 0.
  Rational(std::int64_t num, std::int64_t den);

  [[nodiscard]] std::int64_t num() const noexcept { return num_; }
  [[nodiscard]] std::int64_t den() const noexcept { return den_; }

  /// Closest double; exact when representable.
  [[nodiscard]] double to_double() const noexcept;

  /// True iff the value is an integer.
  [[nodiscard]] bool is_integer() const noexcept { return den_ == 1; }

  [[nodiscard]] std::string to_string() const;

  Rational operator-() const;
  Rational& operator+=(const Rational& rhs);
  Rational& operator-=(const Rational& rhs);
  Rational& operator*=(const Rational& rhs);
  /// Throws std::domain_error on division by zero.
  Rational& operator/=(const Rational& rhs);

  friend Rational operator+(Rational lhs, const Rational& rhs) {
    lhs += rhs;
    return lhs;
  }
  friend Rational operator-(Rational lhs, const Rational& rhs) {
    lhs -= rhs;
    return lhs;
  }
  friend Rational operator*(Rational lhs, const Rational& rhs) {
    lhs *= rhs;
    return lhs;
  }
  friend Rational operator/(Rational lhs, const Rational& rhs) {
    lhs /= rhs;
    return lhs;
  }

  friend bool operator==(const Rational& a, const Rational& b) noexcept {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend bool operator!=(const Rational& a, const Rational& b) noexcept {
    return !(a == b);
  }
  friend bool operator<(const Rational& a, const Rational& b) noexcept;
  friend bool operator>(const Rational& a, const Rational& b) noexcept {
    return b < a;
  }
  friend bool operator<=(const Rational& a, const Rational& b) noexcept {
    return !(b < a);
  }
  friend bool operator>=(const Rational& a, const Rational& b) noexcept {
    return !(a < b);
  }

 private:
  // Reduces an rtcac_int128 fraction and range-checks into *this.
  static Rational reduce(rtcac_int128 num, rtcac_int128 den);

  std::int64_t num_;
  std::int64_t den_;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

/// abs for the stream algebra's generic code.
[[nodiscard]] Rational abs(const Rational& r);

}  // namespace rtcac
