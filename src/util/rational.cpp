#include "util/rational.h"

#include <limits>
#include <numeric>
#include <ostream>

namespace rtcac {

namespace {

rtcac_int128 gcd128(rtcac_int128 a, rtcac_int128 b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    const rtcac_int128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace

Rational Rational::reduce(rtcac_int128 num, rtcac_int128 den) {
  if (den == 0) {
    throw std::invalid_argument("Rational: zero denominator");
  }
  if (den < 0) {
    num = -num;
    den = -den;
  }
  if (num == 0) {
    den = 1;
  } else {
    const rtcac_int128 g = gcd128(num, den);
    num /= g;
    den /= g;
  }
  constexpr rtcac_int128 kMin = std::numeric_limits<std::int64_t>::min();
  constexpr rtcac_int128 kMax = std::numeric_limits<std::int64_t>::max();
  if (num < kMin || num > kMax || den > kMax) {
    throw RationalOverflow("Rational: reduced value exceeds int64 range");
  }
  Rational r;
  r.num_ = static_cast<std::int64_t>(num);
  r.den_ = static_cast<std::int64_t>(den);
  return r;
}

Rational::Rational(std::int64_t num, std::int64_t den) : num_(0), den_(1) {
  *this = reduce(num, den);
}

double Rational::to_double() const noexcept {
  return static_cast<double>(num_) / static_cast<double>(den_);
}

std::string Rational::to_string() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

Rational Rational::operator-() const {
  return reduce(-static_cast<rtcac_int128>(num_), den_);
}

Rational& Rational::operator+=(const Rational& rhs) {
  const rtcac_int128 num = static_cast<rtcac_int128>(num_) * rhs.den_ +
                       static_cast<rtcac_int128>(rhs.num_) * den_;
  const rtcac_int128 den = static_cast<rtcac_int128>(den_) * rhs.den_;
  *this = reduce(num, den);
  return *this;
}

Rational& Rational::operator-=(const Rational& rhs) {
  const rtcac_int128 num = static_cast<rtcac_int128>(num_) * rhs.den_ -
                       static_cast<rtcac_int128>(rhs.num_) * den_;
  const rtcac_int128 den = static_cast<rtcac_int128>(den_) * rhs.den_;
  *this = reduce(num, den);
  return *this;
}

Rational& Rational::operator*=(const Rational& rhs) {
  const rtcac_int128 num = static_cast<rtcac_int128>(num_) * rhs.num_;
  const rtcac_int128 den = static_cast<rtcac_int128>(den_) * rhs.den_;
  *this = reduce(num, den);
  return *this;
}

Rational& Rational::operator/=(const Rational& rhs) {
  if (rhs.num_ == 0) {
    throw std::domain_error("Rational: division by zero");
  }
  const rtcac_int128 num = static_cast<rtcac_int128>(num_) * rhs.den_;
  const rtcac_int128 den = static_cast<rtcac_int128>(den_) * rhs.num_;
  *this = reduce(num, den);
  return *this;
}

bool operator<(const Rational& a, const Rational& b) noexcept {
  return static_cast<rtcac_int128>(a.num_) * b.den_ <
         static_cast<rtcac_int128>(b.num_) * a.den_;
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.to_string();
}

Rational abs(const Rational& r) {
  return r.num() < 0 ? -r : r;
}

}  // namespace rtcac
