#include "util/contract.h"

#include <cstdio>
#include <sstream>

namespace rtcac {

ContractViolation::ContractViolation(const char* kind, const char* expression,
                                     const char* file, int line,
                                     const std::string& message)
    : std::invalid_argument(
          detail::format_violation(kind, expression, file, line, message)),
      kind_(kind),
      expression_(expression),
      file_(file),
      line_(line) {}

bool audits_enabled() noexcept { return RTCAC_AUDIT_ENABLED != 0; }

int library_contract_mode() noexcept { return RTCAC_CONTRACT_MODE; }

namespace detail {

std::string format_violation(const char* kind, const char* expr,
                             const char* file, int line,
                             const std::string& message) {
  std::ostringstream os;
  os << message << " [" << kind << " `" << expr << "` violated at " << file
     << ":" << line << "]";
  return os.str();
}

void contract_throw(const char* kind, const char* expr, const char* file,
                    int line, const std::string& message) {
  throw ContractViolation(kind, expr, file, line, message);
}

void contract_trap(const char* kind, const char* expr, const char* file,
                   int line, const std::string& message) noexcept {
  const std::string what =
      format_violation(kind, expr, file, line, message);
  std::fprintf(stderr, "rtcac: %s\n", what.c_str());
  std::fflush(stderr);
  __builtin_trap();
}

}  // namespace detail
}  // namespace rtcac
