// rtcac/util/thread_pool.h
//
// Minimal fixed-size worker pool for the parallel admission engine
// (net/admission_engine.h): submit() enqueues a task, wait_idle() blocks
// until every submitted task has finished.  Nothing fancier on purpose —
// no futures, no stealing — because the engine's unit of work (one
// per-switch admission check) is large enough (tens of microseconds)
// that a mutex-guarded queue is nowhere near the bottleneck.
//
// A pool constructed with zero threads degrades to inline execution:
// submit() runs the task on the calling thread.  That keeps single-
// threaded baselines and tests on the exact same code path with no
// scheduling noise.
//
// The queue state is guarded by an annotated Mutex
// (util/thread_annotations.h) so clang's -Wthread-safety analysis can
// verify every access (docs/STATIC_ANALYSIS.md).  The condition
// variables are std::condition_variable_any because they wait on the
// annotated MutexLock guard rather than a raw std::unique_lock — the
// pool's hand-offs are tens-of-microseconds-scale, so _any's small
// generality cost is irrelevant here.
//
// Concurrency primitives are confined to this header, to
// util/thread_annotations.h, core/concurrent_cac.* and
// net/admission_engine.* by the `concurrency-state` lint rule
// (tools/rtcac_lint.py).

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

namespace rtcac {

class ThreadPool {
 public:
  /// Starts `threads` workers; 0 means "run tasks inline in submit()".
  explicit ThreadPool(std::size_t threads) {
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      const MutexLock lock(mutex_);
      stopping_ = true;
    }
    wake_workers_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task (runs it inline when the pool has no workers).
  void submit(std::function<void()> task) {
    if (workers_.empty()) {
      task();
      return;
    }
    {
      const MutexLock lock(mutex_);
      queue_.push_back(std::move(task));
      ++pending_;
    }
    wake_workers_.notify_one();
  }

  /// Blocks until every task submitted so far has completed.
  void wait_idle() {
    MutexLock lock(mutex_);
    while (pending_ != 0) idle_.wait(lock);
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(mutex_);
        while (!stopping_ && queue_.empty()) wake_workers_.wait(lock);
        if (queue_.empty()) return;  // stopping_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
      {
        const MutexLock lock(mutex_);
        --pending_;
        if (pending_ == 0) idle_.notify_all();
      }
    }
  }

  Mutex mutex_;
  std::condition_variable_any wake_workers_;
  std::condition_variable_any idle_;
  std::deque<std::function<void()>> queue_ RTCAC_GUARDED_BY(mutex_);
  std::size_t pending_ RTCAC_GUARDED_BY(mutex_) = 0;
  bool stopping_ RTCAC_GUARDED_BY(mutex_) = false;
  // Written only by the constructor and joined by the destructor;
  // immutable while any other thread can see the pool.
  std::vector<std::thread> workers_;  // rtcac-lint: allow(guarded-by)
};

}  // namespace rtcac
