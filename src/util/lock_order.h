// rtcac/util/lock_order.h
//
// Runtime lock-order audit for the sharded admission engine.
//
// ConcurrentCac's deadlock-freedom argument is "shard locks are always
// acquired in ascending shard-id order" (concurrent_cac.h).  The static
// side of that discipline is enforced by clang thread-safety
// annotations (util/thread_annotations.h) plus the `lock-order` lint
// rule — but shard ids are runtime values, so the *order* itself is
// beyond any static analysis.  LockOrderAudit closes that gap
// dynamically: a thread-local stack of currently held shard ids, with
// every acquisition asserting strict ascent over the stack top and
// every release asserting LIFO discipline.
//
// The audit is armed only under RTCAC_CONTRACT_AUDIT (Debug builds, or
// -DRTCAC_AUDIT=ON; see util/contract.h) — Release builds compile it to
// nothing, keeping the admission hot path untouched.  A violation fires
// RTCAC_ASSERT, i.e. throws ContractViolation (or traps) before the
// would-be deadlock can form.
//
// Only *shard* (SharedMutex state) locks participate: the small leaf
// mutexes (Shard::pending_mutex, AdmissionEngine::records_mutex_) are
// never held while acquiring a shard lock, which the annotations prove
// statically, so they stay off the stack.  The one deliberate
// exception is ConcurrentCac's per-out-port OutSlot::refresh_mutex: a
// *reader* holds it while acquiring the same shard's *shared* lock
// (snapshot self-refresh).  That edge is one-way — writers never take
// a refresh mutex, no code path acquires a refresh mutex while holding
// any shard lock, and no two refresh mutexes are ever held together —
// so it cannot close a cycle with the ascending-shard order and stays
// off the stack as well (concurrent_cac.h, "Lock order").

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/contract.h"

namespace rtcac {

#if RTCAC_AUDIT_ENABLED

class LockOrderAudit {
 public:
  /// Record acquisition of `shard`'s lock; asserts the canonical
  /// discipline (strictly ascending over every shard lock already held
  /// by this thread — which also rules out recursive acquisition).
  static void push(std::size_t shard) {
    std::vector<std::size_t>& held = stack();
    RTCAC_ASSERT(held.empty() || held.back() < shard,
                 "lock-order: shard " + std::to_string(shard) +
                     " acquired while holding shard " +
                     std::to_string(held.back()) +
                     "; shard locks must be taken in ascending id order");
    held.push_back(shard);
  }

  /// Record release of `shard`'s lock; asserts LIFO release order.
  static void pop(std::size_t shard) {
    std::vector<std::size_t>& held = stack();
    RTCAC_ASSERT(!held.empty() && held.back() == shard,
                 "lock-order: shard " + std::to_string(shard) +
                     " released out of LIFO order");
    held.pop_back();
  }

  /// Number of shard locks the calling thread currently holds.
  [[nodiscard]] static std::size_t depth() { return stack().size(); }

  /// RAII form for the single-shard acquire paths: push on entry, pop on
  /// exit.  Declare it just before the lock guard, so the recorded span
  /// covers the lock's lifetime.
  class Scope {
   public:
    explicit Scope(std::size_t shard) : shard_(shard) { push(shard_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { pop(shard_); }

   private:
    std::size_t shard_;
  };

 private:
  static std::vector<std::size_t>& stack() {
    thread_local std::vector<std::size_t> held;
    return held;
  }
};

#else  // !RTCAC_AUDIT_ENABLED

/// Release shell: every member compiles to nothing.
class LockOrderAudit {
 public:
  static void push(std::size_t) {}
  static void pop(std::size_t) {}
  [[nodiscard]] static std::size_t depth() { return 0; }

  class Scope {
   public:
    explicit Scope(std::size_t) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
  };
};

#endif  // RTCAC_AUDIT_ENABLED

}  // namespace rtcac
