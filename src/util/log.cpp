#include "util/log.h"

#include <iostream>

namespace rtcac {

LogLevel Log::level_ = LogLevel::kWarn;

namespace {

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "[debug] ";
    case LogLevel::kInfo:
      return "[info ] ";
    case LogLevel::kWarn:
      return "[warn ] ";
    case LogLevel::kError:
      return "[error] ";
    case LogLevel::kOff:
      break;
  }
  return "[?    ] ";
}

}  // namespace

void Log::write(LogLevel level, const std::string& message) {
  if (!enabled(level)) return;
  std::cerr << prefix(level) << message << '\n';
}

}  // namespace rtcac
