// rtcac/util/contract.h
//
// Contract framework for the admission-control library.
//
// A hard real-time CAC is only as trustworthy as its worst-case analysis
// code: one silently violated precondition (a negative rate, an
// out-of-order breakpoint) turns a "guaranteed" delay bound into a wrong
// admission decision.  This header centralizes how such violations are
// detected and what happens when one fires, replacing the ad-hoc
// `throw std::invalid_argument` calls that used to be scattered through
// src/core, src/sim and src/net.
//
// Three macro families:
//
//   RTCAC_REQUIRE(cond, msg)          precondition on a public API;
//   RTCAC_ASSERT(cond, msg)           internal consistency assertion;
//   RTCAC_INVARIANT_AUDIT(cond, msg)  O(n) re-verification of a class
//                                     invariant (stream monotonicity, CAC
//                                     state conservation, event-queue
//                                     ordering).  Compiled in only when
//                                     RTCAC_CONTRACT_AUDIT is defined
//                                     (Debug builds do this by default,
//                                     see the top-level CMakeLists.txt);
//                                     Release builds pay nothing.
//
// The failure response is selected per translation unit at compile time
// with -DRTCAC_CONTRACT_MODE=<n>:
//
//   0 (RTCAC_CONTRACT_OFF)    checks compile to nothing — for measuring
//                             contract overhead, never for production CAC;
//   1 (RTCAC_CONTRACT_THROW)  throw rtcac::ContractViolation (the
//                             default).  ContractViolation derives from
//                             std::invalid_argument so callers written
//                             against the historical throw-based API keep
//                             working unchanged;
//   2 (RTCAC_CONTRACT_TRAP)   print the violation to stderr and
//                             __builtin_trap() — for embedded/fuzzing
//                             builds where unwinding is unavailable or
//                             unwanted.
//
// The message argument is evaluated lazily: it is only constructed when
// the check fails, so `RTCAC_REQUIRE(ok, "id " + std::to_string(id))`
// costs nothing on the fast path beyond the condition itself.
//
// ODR note: every macro expands inline at the call site, so mixing modes
// across translation units of one binary is an ODR violation for inline
// (template/header) code.  The build applies one mode globally
// (RTCAC_CONTRACT_MODE cache variable); the per-mode unit tests compile
// their own self-contained helpers rather than re-instantiating library
// templates.

#pragma once

#include <stdexcept>
#include <string>

#define RTCAC_CONTRACT_OFF 0
#define RTCAC_CONTRACT_THROW 1
#define RTCAC_CONTRACT_TRAP 2

#ifndef RTCAC_CONTRACT_MODE
#define RTCAC_CONTRACT_MODE RTCAC_CONTRACT_THROW
#endif

#if RTCAC_CONTRACT_MODE != RTCAC_CONTRACT_OFF &&   \
    RTCAC_CONTRACT_MODE != RTCAC_CONTRACT_THROW && \
    RTCAC_CONTRACT_MODE != RTCAC_CONTRACT_TRAP
#error "RTCAC_CONTRACT_MODE must be 0 (off), 1 (throw) or 2 (trap)"
#endif

namespace rtcac {

/// Thrown (in RTCAC_CONTRACT_THROW mode) when a contract check fails.
/// Derives from std::invalid_argument: a contract violation is a caller
/// bug, and the pre-framework API reported exactly that type.
class ContractViolation : public std::invalid_argument {
 public:
  ContractViolation(const char* kind, const char* expression,
                    const char* file, int line, const std::string& message);

  /// "precondition", "assertion" or "invariant".
  [[nodiscard]] const char* kind() const noexcept { return kind_; }
  /// The stringized failing condition.
  [[nodiscard]] const char* expression() const noexcept { return expression_; }
  [[nodiscard]] const char* file() const noexcept { return file_; }
  [[nodiscard]] int line() const noexcept { return line_; }

 private:
  const char* kind_;
  const char* expression_;
  const char* file_;
  int line_;
};

/// True iff the rtcac libraries were compiled with invariant audits
/// (RTCAC_CONTRACT_AUDIT).  Tests use this to skip corruption tests when
/// the library under test compiled its audits out.
[[nodiscard]] bool audits_enabled() noexcept;

/// Contract mode the rtcac libraries were compiled with (0/1/2).  The
/// macros in *this* translation unit follow RTCAC_CONTRACT_MODE instead;
/// the two agree in any sane build.
[[nodiscard]] int library_contract_mode() noexcept;

namespace detail {

/// Formats "kind violation: msg (expr) at file:line".
[[nodiscard]] std::string format_violation(const char* kind, const char* expr,
                                           const char* file, int line,
                                           const std::string& message);

[[noreturn]] void contract_throw(const char* kind, const char* expr,
                                 const char* file, int line,
                                 const std::string& message);

/// Writes the violation to stderr and traps; never unwinds, so it is safe
/// in noexcept contexts and signal-free fuzzing harnesses.
[[noreturn]] void contract_trap(const char* kind, const char* expr,
                                const char* file, int line,
                                const std::string& message) noexcept;

}  // namespace detail
}  // namespace rtcac

#if RTCAC_CONTRACT_MODE == RTCAC_CONTRACT_OFF
#define RTCAC_CONTRACT_CHECK_(kind, cond, msg) static_cast<void>(0)
#elif RTCAC_CONTRACT_MODE == RTCAC_CONTRACT_THROW
#define RTCAC_CONTRACT_CHECK_(kind, cond, msg)                       \
  ((cond) ? static_cast<void>(0)                                     \
          : ::rtcac::detail::contract_throw(kind, #cond, __FILE__,   \
                                            __LINE__, (msg)))
#else  // RTCAC_CONTRACT_TRAP
#define RTCAC_CONTRACT_CHECK_(kind, cond, msg)                       \
  ((cond) ? static_cast<void>(0)                                     \
          : ::rtcac::detail::contract_trap(kind, #cond, __FILE__,    \
                                           __LINE__, (msg)))
#endif

/// Precondition on a public entry point.  `msg` may be any expression
/// convertible to std::string; it is evaluated only on failure.
#define RTCAC_REQUIRE(cond, msg) RTCAC_CONTRACT_CHECK_("precondition", cond, msg)

/// Internal consistency assertion (a failure is a bug in rtcac itself,
/// not in the caller's arguments).
#define RTCAC_ASSERT(cond, msg) RTCAC_CONTRACT_CHECK_("assertion", cond, msg)

// Invariant audits: expensive whole-state re-verification, compiled in
// only for audit builds (Debug by default).
#if defined(RTCAC_CONTRACT_AUDIT) && RTCAC_CONTRACT_MODE != RTCAC_CONTRACT_OFF
#define RTCAC_AUDIT_ENABLED 1
#define RTCAC_INVARIANT_AUDIT(cond, msg) \
  RTCAC_CONTRACT_CHECK_("invariant", cond, msg)
#else
#define RTCAC_AUDIT_ENABLED 0
#define RTCAC_INVARIANT_AUDIT(cond, msg) static_cast<void>(0)
#endif
