// rtcac/util/log.h
//
// Minimal leveled logger.  The library itself logs nothing by default
// (Level::kWarn); examples and benches raise the level for narration.
// Not thread-safe by design: the simulator and CAC engine are
// single-threaded (a DES has one logical clock), and keeping the logger
// lock-free keeps it out of benchmark profiles.

#pragma once

#include <sstream>
#include <string>

namespace rtcac {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide log configuration.
class Log {
 public:
  static void set_level(LogLevel level) noexcept { level_ = level; }
  static LogLevel level() noexcept { return level_; }
  static bool enabled(LogLevel level) noexcept { return level >= level_; }

  /// Writes one formatted line to stderr with a level prefix.
  static void write(LogLevel level, const std::string& message);

 private:
  static LogLevel level_;
};

namespace log_detail {

/// Accumulates one log line and emits it on destruction.
class LineBuilder {
 public:
  explicit LineBuilder(LogLevel level) : level_(level) {}
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;
  ~LineBuilder() { Log::write(level_, os_.str()); }

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace log_detail

}  // namespace rtcac

#define RTCAC_LOG(level)                       \
  if (!::rtcac::Log::enabled(level)) {         \
  } else                                       \
    ::rtcac::log_detail::LineBuilder(level)

#define RTCAC_DEBUG RTCAC_LOG(::rtcac::LogLevel::kDebug)
#define RTCAC_INFO RTCAC_LOG(::rtcac::LogLevel::kInfo)
#define RTCAC_WARN RTCAC_LOG(::rtcac::LogLevel::kWarn)
#define RTCAC_ERROR RTCAC_LOG(::rtcac::LogLevel::kError)
