// rtcac/util/stats.h
//
// Small statistics helpers used by the simulator and the bench harnesses:
// a streaming summary (count/min/max/mean/variance via Welford) and a
// fixed-bucket histogram for delay distributions.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rtcac {

/// Streaming summary statistics (Welford's online algorithm).
///
/// Numerically stable for long simulation runs; O(1) per sample.
class SummaryStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  /// Minimum of added samples; +inf when empty.
  [[nodiscard]] double min() const noexcept { return min_; }
  /// Maximum of added samples; -inf when empty.
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Mean of added samples; 0 when empty.
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

  /// Merges another summary into this one (parallel-run aggregation).
  void merge(const SummaryStats& other) noexcept;

  [[nodiscard]] std::string to_string() const;

 private:
  std::size_t count_ = 0;
  double min_ = 0;
  double max_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

/// Fixed-width bucket histogram over [0, bucket_width * num_buckets),
/// with an overflow bucket for larger samples.
class Histogram {
 public:
  /// Throws std::invalid_argument unless bucket_width > 0 and
  /// num_buckets > 0.
  Histogram(double bucket_width, std::size_t num_buckets);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return buckets_.size();
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_.at(i);
  }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] double bucket_width() const noexcept { return width_; }

  /// Smallest x such that at least `quantile` (in [0,1]) of the mass lies
  /// at or below x's bucket upper edge.  Returns +inf if the quantile falls
  /// in the overflow bucket.
  [[nodiscard]] double quantile_upper_bound(double quantile) const;

  [[nodiscard]] std::string to_string() const;

 private:
  double width_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace rtcac
