// rtcac/util/thread_annotations.h
//
// Compile-time lock discipline for the parallel admission engine.
//
// Clang's -Wthread-safety analysis turns the locking invariants that
// concurrent_cac.h states in prose (priming under exclusive locks,
// canonical ascending shard order, guarded shard state) into
// machine-checked facts: every mutex-guarded member is declared
// RTCAC_GUARDED_BY its mutex, every lock-transition function carries
// RTCAC_ACQUIRE/RTCAC_RELEASE, and an unguarded access is a compile
// error under the `tsa` preset (-Wthread-safety -Wthread-safety-beta
// -Werror, clang only; see docs/STATIC_ANALYSIS.md).  Under GCC and
// other compilers every macro expands to nothing, so the annotated tree
// is byte-identical to the unannotated one everywhere else.
//
// The std:: primitives carry no annotations in libstdc++, so this
// header also provides the thin annotated wrappers the analysis needs:
//
//   Mutex / SharedMutex      RTCAC_CAPABILITY wrappers over std::mutex /
//                            std::shared_mutex with annotated
//                            lock/unlock transitions.
//   MutexLock                scoped exclusive guard over Mutex.  Also
//                            BasicLockable, so it can sit under a
//                            std::condition_variable_any wait loop
//                            (util/thread_pool.h) without giving up the
//                            scoped-capability annotation.
//   ExclusiveLock/SharedLock scoped exclusive / shared guards over
//                            SharedMutex — the per-shard lock vocabulary
//                            of core/concurrent_cac.h.
//
// Multi-mutex acquisition over a *dynamic* set of shard locks is beyond
// what the static analysis can express; that path is confined to the
// ConcurrentCac::ShardLockSet scoped capability, whose ascending-order
// acquisition is asserted at runtime by util/lock_order.h instead.
// RTCAC_NO_THREAD_SAFETY_ANALYSIS exists for exactly those per-site,
// comment-justified escapes — the `tsa` acceptance bar allows no others.
//
// Concurrency primitives are confined to this header, to
// util/thread_pool.h, core/concurrent_cac.* and net/admission_engine.*
// by the `concurrency-state` lint rule (tools/rtcac_lint.py); the
// companion `guarded-by` rule requires every mutable member of a
// mutex-owning class to carry one of these annotations.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

#include "util/contract.h"

// Attribute spelling: clang implements the analysis; everything else
// sees empty macros.  (GCC would warn -Wattributes on the unknown
// spellings, so the no-op branch must expand to nothing, not to an
// ignored attribute.)
#if defined(__clang__)
#define RTCAC_TSA_ATTR_(x) __attribute__((x))
#else
#define RTCAC_TSA_ATTR_(x)
#endif

/// Declares a type to be a lockable capability ("mutex", "shard lock").
#define RTCAC_CAPABILITY(x) RTCAC_TSA_ATTR_(capability(x))

/// Declares an RAII type that acquires in its constructor and releases
/// in its destructor.
#define RTCAC_SCOPED_CAPABILITY RTCAC_TSA_ATTR_(scoped_lockable)

/// Member may be read/written only while holding `x` (exclusive for
/// writes, at least shared for reads).
#define RTCAC_GUARDED_BY(x) RTCAC_TSA_ATTR_(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x` (the pointer itself
/// is set once at construction).
#define RTCAC_PT_GUARDED_BY(x) RTCAC_TSA_ATTR_(pt_guarded_by(x))

/// Function requires the capability held exclusively on entry (and does
/// not release it).
#define RTCAC_REQUIRES(...) RTCAC_TSA_ATTR_(requires_capability(__VA_ARGS__))

/// Function requires at least shared ownership on entry.
#define RTCAC_REQUIRES_SHARED(...) \
  RTCAC_TSA_ATTR_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability exclusively / shared.
#define RTCAC_ACQUIRE(...) RTCAC_TSA_ATTR_(acquire_capability(__VA_ARGS__))
#define RTCAC_ACQUIRE_SHARED(...) \
  RTCAC_TSA_ATTR_(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (exclusive / shared / whichever is
/// held — "generic" is what a scoped guard's destructor wants when it
/// may hold either mode).
#define RTCAC_RELEASE(...) RTCAC_TSA_ATTR_(release_capability(__VA_ARGS__))
#define RTCAC_RELEASE_SHARED(...) \
  RTCAC_TSA_ATTR_(release_shared_capability(__VA_ARGS__))
#define RTCAC_RELEASE_GENERIC(...) \
  RTCAC_TSA_ATTR_(release_generic_capability(__VA_ARGS__))

/// Function acquires the capability only when returning `ret`.
#define RTCAC_TRY_ACQUIRE(...) \
  RTCAC_TSA_ATTR_(try_acquire_capability(__VA_ARGS__))
#define RTCAC_TRY_ACQUIRE_SHARED(...) \
  RTCAC_TSA_ATTR_(try_acquire_shared_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (non-reentrant
/// entry points that acquire it themselves).
#define RTCAC_EXCLUDES(...) RTCAC_TSA_ATTR_(locks_excluded(__VA_ARGS__))

/// Runtime assertion to the analysis that the capability is held.
#define RTCAC_ASSERT_CAPABILITY(x) RTCAC_TSA_ATTR_(assert_capability(x))

/// Function returns a reference to the given capability.
#define RTCAC_RETURN_CAPABILITY(x) RTCAC_TSA_ATTR_(lock_returned(x))

/// Per-site escape hatch.  Every use must carry a comment justifying why
/// the access pattern is beyond the static analysis (dynamic lock sets,
/// quiesced test-only inspection) and what covers it instead
/// (util/lock_order.h audit, TSan `concurrency` label).
#define RTCAC_NO_THREAD_SAFETY_ANALYSIS \
  RTCAC_TSA_ATTR_(no_thread_safety_analysis)

namespace rtcac {

/// Audit-build (RTCAC_AUDIT_ENABLED) process-wide counters of
/// SharedMutex acquisitions.  The snapshot read path of
/// core/concurrent_cac.h promises *zero* shared_mutex traffic per
/// check; tests and the parallel bench assert that promise as a
/// shared-acquisition delta of zero across a burst of checks.  Release
/// builds compile the counting hooks to nothing and enabled() reports
/// false, so the hot path is untouched outside audit builds.
class LockStats {
 public:
  [[nodiscard]] static constexpr bool enabled() noexcept {
    return RTCAC_AUDIT_ENABLED != 0;
  }

#if RTCAC_AUDIT_ENABLED
  [[nodiscard]] static std::uint64_t exclusive_acquisitions() noexcept {
    return exclusive_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] static std::uint64_t shared_acquisitions() noexcept {
    return shared_.load(std::memory_order_relaxed);
  }
  static void count_exclusive() noexcept {
    exclusive_.fetch_add(1, std::memory_order_relaxed);
  }
  static void count_shared() noexcept {
    shared_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  static inline std::atomic<std::uint64_t> exclusive_{0};
  static inline std::atomic<std::uint64_t> shared_{0};
#else
  [[nodiscard]] static std::uint64_t exclusive_acquisitions() noexcept {
    return 0;
  }
  [[nodiscard]] static std::uint64_t shared_acquisitions() noexcept {
    return 0;
  }
  static void count_exclusive() noexcept {}
  static void count_shared() noexcept {}
#endif
};

/// std::mutex with annotated lock transitions.
class RTCAC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RTCAC_ACQUIRE() { m_.lock(); }
  bool try_lock() RTCAC_TRY_ACQUIRE(true) { return m_.try_lock(); }
  void unlock() RTCAC_RELEASE() { m_.unlock(); }

 private:
  std::mutex m_;
};

/// std::shared_mutex with annotated lock transitions; one of these
/// guards every ConcurrentCac shard.
class RTCAC_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() RTCAC_ACQUIRE() {
    LockStats::count_exclusive();
    m_.lock();
  }
  bool try_lock() RTCAC_TRY_ACQUIRE(true) {
    const bool held = m_.try_lock();
    if (held) LockStats::count_exclusive();
    return held;
  }
  void unlock() RTCAC_RELEASE() { m_.unlock(); }

  void lock_shared() RTCAC_ACQUIRE_SHARED() {
    LockStats::count_shared();
    m_.lock_shared();
  }
  bool try_lock_shared() RTCAC_TRY_ACQUIRE_SHARED(true) {
    const bool held = m_.try_lock_shared();
    if (held) LockStats::count_shared();
    return held;
  }
  void unlock_shared() RTCAC_RELEASE_SHARED() { m_.unlock_shared(); }

 private:
  std::shared_mutex m_;
};

/// Scoped exclusive guard over Mutex.  Doubles as a BasicLockable so a
/// std::condition_variable_any can release/reacquire it inside wait();
/// the relock transitions stay visible to the analysis.
class RTCAC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) RTCAC_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() RTCAC_RELEASE() { mutex_.unlock(); }

  // BasicLockable surface for condition_variable_any::wait.
  void lock() RTCAC_ACQUIRE() { mutex_.lock(); }
  void unlock() RTCAC_RELEASE() { mutex_.unlock(); }

 private:
  Mutex& mutex_;
};

/// Scoped exclusive guard over SharedMutex (one shard, write side).
class RTCAC_SCOPED_CAPABILITY ExclusiveLock {
 public:
  explicit ExclusiveLock(SharedMutex& mutex) RTCAC_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock();
  }
  ExclusiveLock(const ExclusiveLock&) = delete;
  ExclusiveLock& operator=(const ExclusiveLock&) = delete;
  ~ExclusiveLock() RTCAC_RELEASE() { mutex_.unlock(); }

 private:
  SharedMutex& mutex_;
};

/// Scoped shared guard over SharedMutex (one shard, read side).
class RTCAC_SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& mutex) RTCAC_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared();
  }
  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;
  ~SharedLock() RTCAC_RELEASE() { mutex_.unlock_shared(); }

 private:
  SharedMutex& mutex_;
};

}  // namespace rtcac
