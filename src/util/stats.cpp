#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace rtcac {

void SummaryStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double SummaryStats::variance() const noexcept {
  if (count_ < 2) return 0;
  return m2_ / static_cast<double>(count_ - 1);
}

double SummaryStats::stddev() const noexcept {
  return std::sqrt(variance());
}

void SummaryStats::merge(const SummaryStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::string SummaryStats::to_string() const {
  std::ostringstream os;
  os << "n=" << count_;
  if (count_ > 0) {
    os << " min=" << min_ << " mean=" << mean_ << " max=" << max_
       << " sd=" << stddev();
  }
  return os.str();
}

Histogram::Histogram(double bucket_width, std::size_t num_buckets)
    : width_(bucket_width), buckets_(num_buckets, 0) {
  if (!(bucket_width > 0)) {
    throw std::invalid_argument("Histogram: bucket_width must be > 0");
  }
  if (num_buckets == 0) {
    throw std::invalid_argument("Histogram: num_buckets must be > 0");
  }
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < 0) x = 0;
  const double idx = std::floor(x / width_);
  if (idx >= static_cast<double>(buckets_.size())) {
    ++overflow_;
  } else {
    ++buckets_[static_cast<std::size_t>(idx)];
  }
}

double Histogram::quantile_upper_bound(double quantile) const {
  if (total_ == 0) return 0;
  quantile = std::clamp(quantile, 0.0, 1.0);
  const double target = quantile * static_cast<double>(total_);
  double cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += static_cast<double>(buckets_[i]);
    if (cum >= target) {
      return width_ * static_cast<double>(i + 1);
    }
  }
  return std::numeric_limits<double>::infinity();
}

std::string Histogram::to_string() const {
  std::ostringstream os;
  os << "total=" << total_;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    os << " [" << width_ * static_cast<double>(i) << ","
       << width_ * static_cast<double>(i + 1) << ")=" << buckets_[i];
  }
  if (overflow_ > 0) os << " overflow=" << overflow_;
  return os.str();
}

}  // namespace rtcac
