// rtcac/util/xorshift.h
//
// Deterministic, seedable PRNG (xoshiro256**) used by the simulator's
// randomized traffic sources and the property-based tests.  We use our own
// generator rather than std::mt19937 so simulation traces are reproducible
// across standard-library implementations — distribution code in libstdc++
// and libc++ is not bit-compatible.

#pragma once

#include <cstdint>

namespace rtcac {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
class Xorshift {
 public:
  using result_type = std::uint64_t;

  explicit Xorshift(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    // splitmix64 to spread a possibly low-entropy seed across the state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t below(std::uint64_t n) noexcept {
    // Lemire's multiply-shift rejection-free variant is overkill here;
    // modulo bias is negligible for the ranges the tests use, but we still
    // reject to keep property tests exactly uniform.
    const std::uint64_t threshold = (~n + 1) % n;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// True with probability p.
  bool chance(double p) noexcept { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace rtcac
