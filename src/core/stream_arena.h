// rtcac/core/stream_arena.h
//
// Pooled segment-buffer allocation for the mergeable stream algebra.
//
// Every merge-tree node (core/merge_tree.h) owns a std::vector of
// segments that is rebuilt whenever a leaf on its path changes.  Under
// connection churn at production populations (100k+ connections) those
// rebuilds would hammer the heap: each path re-merge frees and
// reallocates O(log n) buffers.  The arena keeps released buffers —
// capacity intact — in a pool sorted by capacity and hands them back on
// the next acquire, so steady-state churn performs no heap allocation at
// all once buffer capacities have reached their high-water marks.
//
// Ownership/lifetime rules (see docs/PERFORMANCE.md, "Mergeable
// aggregates"):
//   * The arena is owned by the structure that owns the trees (one per
//     BasicSwitchCac) and must outlive every buffer acquired from it —
//     trees never store a back-pointer; the owner passes the arena into
//     each mutating call, which keeps tree/arena values freely copyable.
//   * Buffers are plain std::vector<Segment>: acquiring transfers
//     ownership out of the pool, releasing transfers it back.  Dropping
//     a buffer without releasing it is safe (the vector frees itself);
//     it merely forfeits the reuse.
//   * Concurrency: none.  The arena is mutated only on paths that
//     already hold the owning structure's exclusive lock (ConcurrentCac
//     mutators); shared-lock readers never touch it.

#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "core/bitstream.h"

namespace rtcac {

/// Capacity-recycling pool of segment buffers for one family of merge
/// trees.  Not thread-safe; see the header comment for the locking rule.
template <typename Num>
class BasicStreamArena {
 public:
  using Segment = BasicSegment<Num>;
  using Buffer = std::vector<Segment>;

  /// Takes a buffer with capacity >= `capacity_hint` from the pool, or a
  /// freshly reserved one when the pool has none big enough.  The
  /// returned buffer is empty (size 0).
  [[nodiscard]] Buffer acquire(std::size_t capacity_hint) {
    ++acquires_;
    const auto it = std::lower_bound(
        pool_.begin(), pool_.end(), capacity_hint,
        [](const Buffer& b, std::size_t want) { return b.capacity() < want; });
    if (it != pool_.end()) {
      Buffer buf = std::move(*it);
      pool_.erase(it);
      pooled_bytes_ -= buf.capacity() * sizeof(Segment);
      buf.clear();
      ++reuses_;
      return buf;
    }
    Buffer buf;
    buf.reserve(capacity_hint);
    return buf;
  }

  /// Returns a buffer's storage to the pool for reuse.  Zero-capacity
  /// buffers are dropped (nothing to recycle).
  void release(Buffer&& buf) {
    if (buf.capacity() == 0) return;
    buf.clear();
    pooled_bytes_ += buf.capacity() * sizeof(Segment);
    const auto it = std::lower_bound(
        pool_.begin(), pool_.end(), buf.capacity(),
        [](const Buffer& b, std::size_t cap) { return b.capacity() < cap; });
    pool_.insert(it, std::move(buf));
  }

  /// Bytes of segment storage currently parked in the pool.
  [[nodiscard]] std::size_t pooled_bytes() const noexcept {
    return pooled_bytes_;
  }
  /// Buffers currently parked in the pool.
  [[nodiscard]] std::size_t pooled_buffers() const noexcept {
    return pool_.size();
  }
  /// Total acquire calls, and how many were served from the pool instead
  /// of the heap — the bench reports these to show steady-state churn
  /// allocates nothing.
  [[nodiscard]] std::size_t acquires() const noexcept { return acquires_; }
  [[nodiscard]] std::size_t reuses() const noexcept { return reuses_; }

 private:
  std::vector<Buffer> pool_;  // sorted ascending by capacity
  std::size_t pooled_bytes_ = 0;
  std::size_t acquires_ = 0;
  std::size_t reuses_ = 0;
};

using StreamArena = BasicStreamArena<double>;
using ExactStreamArena = BasicStreamArena<Rational>;

}  // namespace rtcac
