// rtcac/core/stream_ops.h
//
// The bit-stream manipulation algebra of Section 3 of the paper:
//
//   * multiplex    (Algorithm 3.2) — pointwise rate sum of two streams;
//   * multiplex_all — k-way merge form of the same sum, used by the CAC
//     hot path to aggregate whole cells in one O(S log k) sweep;
//   * demultiplex  (Algorithm 3.3) — pointwise rate difference, used to
//     remove a component from an aggregate it was previously added to;
//   * filter       (Algorithm 3.4) — the smoothing a transmission link of
//     unit rate applies to a stream whose rate exceeds the link bandwidth;
//   * delay        (Algorithm 3.1) — worst-case clumping distortion a
//     stream suffers after crossing queueing points with accumulated cell
//     delay variation CDV.
//
// `delay` is implemented as prefix-collapse + `filter`: delaying by CDV in
// the worst case turns the first CDV of traffic into an instantaneous
// backlog released at link rate, i.e. the delayed cumulative function is
// A'(t) = min(t, A(t + CDV)).  That is exactly `filter` applied to the
// stream shifted left by CDV with an initial backlog of A(CDV).  The paper
// presents the two algorithms separately; sharing the drain computation
// removes a whole class of off-by-one-segment bugs.
//
// All operations preserve the BitStream invariant (step-wise,
// non-increasing) and are pure: they return new streams.

#pragma once

#include <functional>
#include <optional>
#include <queue>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/bitstream.h"
#include "util/contract.h"

namespace rtcac {

namespace detail {

/// The two-way union sweep at the heart of `multiplex` (Algorithm 3.2):
/// appends to `out` one segment per breakpoint in the union of `a` and
/// `b`, whose rate is the sum of the rates in force.  Output is raw —
/// adjacent equal-rate segments are NOT coalesced; callers canonicalize
/// (the BitStream constructor, or BitStream::canonicalize_segments for
/// buffer-reusing callers like the merge tree).  Shared so every 2-way
/// aggregate in the system — fold, k-way verify, merge-tree node — sums
/// rates through the one definition and stays bitwise comparable.
template <typename Num>
void multiplex_union(std::span<const BasicSegment<Num>> a,
                     std::span<const BasicSegment<Num>> b,
                     std::vector<BasicSegment<Num>>& out) {
  using Seg = BasicSegment<Num>;
  std::size_t i = 0;
  std::size_t j = 0;
  // Sweep the union of breakpoints; at each, the aggregate rate is the sum
  // of the rates currently in force.
  while (i < a.size() || j < b.size()) {
    Num t{};
    if (j >= b.size() || (i < a.size() && a[i].start < b[j].start)) {
      t = a[i].start;
      ++i;
    } else if (i >= a.size() || b[j].start < a[i].start) {
      t = b[j].start;
      ++j;
    } else {
      t = a[i].start;
      ++i;
      ++j;
    }
    const Num rate = (i > 0 ? a[i - 1].rate : Num(0)) +
                     (j > 0 ? b[j - 1].rate : Num(0));
    out.push_back(Seg{rate, t});
  }
}

}  // namespace detail

/// Multiplexes two streams (Algorithm 3.2): the worst-case aggregate of two
/// connections sharing a queueing point has, at every instant, the sum of
/// the component rates.
template <typename Num>
BasicBitStream<Num> multiplex(const BasicBitStream<Num>& s1,
                              const BasicBitStream<Num>& s2) {
  std::vector<BasicSegment<Num>> out;
  out.reserve(s1.size() + s2.size());
  detail::multiplex_union(s1.segments(), s2.segments(), out);
  BasicBitStream<Num> result(std::move(out));
  RTCAC_INVARIANT_AUDIT(result.invariants_hold(),
                        "multiplex: output violates the stream invariant");
  return result;
}

/// K-way multiplex: the aggregate of an arbitrary set of streams in one
/// merge sweep.  Equivalent to left-folding `multiplex` over the set, and
/// deliberately sums the in-force rates left-to-right at every union
/// breakpoint so the result matches the fold *bitwise* whenever no
/// tolerance coalescing fires in the fold's intermediates (always, for
/// exact scalars) — remove/rebuild must restore aggregates bit for bit.
/// Unlike the fold it allocates the output exactly once and never
/// materializes the O(k) intermediate partial aggregates.  Null and zero
/// entries contribute nothing; an empty set yields the zero stream.
template <typename Num>
BasicBitStream<Num> multiplex_all(
    std::span<const BasicBitStream<Num>* const> streams) {
  using Seg = BasicSegment<Num>;
  std::vector<std::span<const Seg>> active;
  active.reserve(streams.size());
  std::size_t total = 0;
  const BasicBitStream<Num>* only = nullptr;
  for (const BasicBitStream<Num>* s : streams) {
    if (s == nullptr || s->is_zero()) continue;
    only = s;
    active.push_back(s->segments());
    total += s->size();
  }
  if (active.empty()) return BasicBitStream<Num>{};
  if (active.size() == 1) return *only;

  // Min-heap over (next breakpoint, stream index); all entries sharing a
  // breakpoint are popped together so each union breakpoint emits exactly
  // one output segment.
  using Entry = std::pair<Num, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  std::vector<std::size_t> pos(active.size(), 0);
  for (std::size_t s = 0; s < active.size(); ++s) {
    heap.emplace(active[s].front().start, s);
  }
  std::vector<Seg> out;
  out.reserve(total);
  while (!heap.empty()) {
    const Num t = heap.top().first;
    while (!heap.empty() && heap.top().first == t) {
      const std::size_t s = heap.top().second;
      heap.pop();
      const std::size_t k = pos[s]++;
      if (k + 1 < active[s].size()) {
        heap.emplace(active[s][k + 1].start, s);
      }
    }
    // Left-nested sum in input order: identical association to the fold's
    // partial aggregates, so the rates agree bitwise (see above).  Each
    // term is non-increasing in t and fp rounding is monotone, so the sum
    // stays non-increasing too.
    Num rate_sum{0};
    for (std::size_t s = 0; s < active.size(); ++s) {
      rate_sum += pos[s] > 0 ? active[s][pos[s] - 1].rate : Num(0);
    }
    out.push_back(Seg{rate_sum, t});
  }
  BasicBitStream<Num> result(std::move(out));
  RTCAC_INVARIANT_AUDIT(result.invariants_hold(),
                        "multiplex_all: output violates the stream invariant");
  return result;
}

/// Convenience overload over a materialized pointer container.
template <typename Num>
BasicBitStream<Num> multiplex_all(
    const std::vector<const BasicBitStream<Num>*>& streams) {
  return multiplex_all(
      std::span<const BasicBitStream<Num>* const>(streams));
}

/// Convenience overload over streams by value (tests, small call sites).
template <typename Num>
BasicBitStream<Num> multiplex_all(
    std::span<const BasicBitStream<Num>> streams) {
  std::vector<const BasicBitStream<Num>*> ptrs;
  ptrs.reserve(streams.size());
  for (const auto& s : streams) ptrs.push_back(&s);
  return multiplex_all(std::span<const BasicBitStream<Num>* const>(ptrs));
}

/// Thrown by demultiplex when the subtrahend is not contained in the
/// aggregate (the difference would be negative beyond numeric noise).
/// Indicates a bookkeeping bug in the caller, not bad input traffic.
class StreamContainmentError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Demultiplexes (Algorithm 3.3): removes component s2 from aggregate s1,
/// requiring that s2 was previously multiplexed into s1 (rates never go
/// negative).  Throws StreamContainmentError otherwise.
template <typename Num>
BasicBitStream<Num> demultiplex(const BasicBitStream<Num>& s1,
                                const BasicBitStream<Num>& s2) {
  using Seg = BasicSegment<Num>;
  std::vector<Seg> out;
  out.reserve(s1.size() + s2.size());
  const auto a = s1.segments();
  const auto b = s2.segments();
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() || j < b.size()) {
    Num t{};
    if (j >= b.size() || (i < a.size() && a[i].start < b[j].start)) {
      t = a[i].start;
      ++i;
    } else if (i >= a.size() || b[j].start < a[i].start) {
      t = b[j].start;
      ++j;
    } else {
      t = a[i].start;
      ++i;
      ++j;
    }
    Num rate = (i > 0 ? a[i - 1].rate : Num(0)) -
               (j > 0 ? b[j - 1].rate : Num(0));
    rate = NumTraits<Num>::snap_nonnegative(rate);
    if (rate < Num(0)) {
      throw StreamContainmentError(
          "demultiplex: component stream is not contained in the aggregate");
    }
    out.push_back(Seg{rate, t});
  }
  // The difference of two non-increasing step functions need not be
  // monotone in general, but it is whenever s2 was a multiplexed component
  // of s1 (the remainder is itself a sum of non-increasing streams).  The
  // BitStream constructor re-validates, turning any misuse into a loud
  // error instead of a silently wrong admission decision.
  try {
    BasicBitStream<Num> result(std::move(out));
    RTCAC_INVARIANT_AUDIT(
        result.invariants_hold(),
        "demultiplex: output violates the stream invariant");
    return result;
  } catch (const std::invalid_argument&) {
    throw StreamContainmentError(
        "demultiplex: result is not a valid worst-case stream; the "
        "component was not part of this aggregate");
  }
}

/// Filters a stream through a unit-bandwidth transmission link
/// (Algorithm 3.4), optionally with `initial_backlog` bits already queued
/// at time 0.  While backlog remains, the output runs at link rate 1; once
/// the queue drains the input passes through unchanged.  Because input
/// rates are non-increasing, the queue has a single busy period.
///
/// If the queue never drains (tail input rate >= 1 with backlog, or > 1),
/// the output is a permanent full-rate stream {(1, 0)}.
template <typename Num>
BasicBitStream<Num> filter(const BasicBitStream<Num>& s,
                           const Num& initial_backlog = Num(0)) {
  using Seg = BasicSegment<Num>;
  RTCAC_REQUIRE(!(initial_backlog < Num(0)),
                "filter: negative initial backlog");
  const auto segs = s.segments();
  // Fast path: nothing to smooth.
  if (initial_backlog == Num(0) && segs.front().rate <= Num(1)) {
    return s;
  }

  // Walk segments tracking queue occupancy Q(t); Q' = rate - 1.
  // Q is concave (rate non-increasing), so the first time Q hits zero the
  // busy period is over for good.
  Num queue = initial_backlog;
  std::optional<Num> drain_time;
  std::size_t drain_seg = 0;
  for (std::size_t k = 0; k < segs.size(); ++k) {
    const Num rate = segs[k].rate;
    if (rate < Num(1)) {
      const Num slope = Num(1) - rate;  // drain speed
      if (k + 1 < segs.size()) {
        const Num len = segs[k + 1].start - segs[k].start;
        if (queue <= slope * len) {
          drain_time = segs[k].start + queue / slope;
          drain_seg = k;
          break;
        }
        queue -= slope * len;
      } else {
        drain_time = segs[k].start + queue / slope;
        drain_seg = k;
        break;
      }
    } else if (rate > Num(1)) {
      if (k + 1 == segs.size()) break;  // grows forever
      queue += (rate - Num(1)) * (segs[k + 1].start - segs[k].start);
    } else {
      // rate == 1: queue constant through this segment.
      if (k + 1 == segs.size()) break;
    }
  }

  if (!drain_time.has_value()) {
    // Link saturated forever.
    return BasicBitStream<Num>::constant(Num(1));
  }

  std::vector<Seg> out;
  out.reserve(segs.size() - drain_seg + 1);
  if (*drain_time == Num(0)) {
    // Degenerate: zero backlog and first rate exactly 1 was handled by the
    // fast path only for rate <= 1; an initial_backlog of 0 with rate > 1
    // cannot drain at t = 0.  Reaching here means initial_backlog == 0 and
    // the stream is already link-feasible.
    return s;
  }
  out.push_back(Seg{Num(1), Num(0)});
  // After the drain instant the output follows the input.  The input rate
  // at drain_time is segs[drain_seg].rate (< 1, or the drain would not
  // have completed inside this segment) — unless the queue emptied exactly
  // at the segment's end, in which case the next segment takes over
  // immediately and emitting the drained one would duplicate its start.
  std::size_t resume = drain_seg;
  if (resume + 1 < segs.size() && !(segs[resume + 1].start > *drain_time)) {
    ++resume;
  }
  out.push_back(Seg{segs[resume].rate, *drain_time});
  for (std::size_t k = resume + 1; k < segs.size(); ++k) {
    out.push_back(segs[k]);
  }
  BasicBitStream<Num> result(std::move(out));
  RTCAC_INVARIANT_AUDIT(
      result.invariants_hold() &&
          NumTraits<Num>::nearly_leq(result.peak_rate(), Num(1)),
      "filter: output must be a link-feasible (rate <= 1) stream");
  return result;
}

/// Shifts a stream left by `shift` time units: result rate r'(t) =
/// r(t + shift).  Bits produced before `shift` are dropped (the caller
/// accounts for them, e.g. as the initial backlog of `delay`).
template <typename Num>
BasicBitStream<Num> shift_left(const BasicBitStream<Num>& s,
                               const Num& shift) {
  using Seg = BasicSegment<Num>;
  RTCAC_REQUIRE(!(shift < Num(0)), "shift_left: negative shift");
  if (shift == Num(0)) return s;
  const auto segs = s.segments();
  std::vector<Seg> out;
  out.reserve(segs.size());
  for (const auto& seg : segs) {
    const Num start =
        seg.start <= shift ? Num(0) : Num(seg.start - shift);
    if (!out.empty() && out.back().start == start) {
      out.back().rate = seg.rate;  // later segment at same (clamped) start wins
    } else {
      out.push_back(Seg{seg.rate, start});
    }
  }
  BasicBitStream<Num> result(std::move(out));
  RTCAC_INVARIANT_AUDIT(result.invariants_hold(),
                        "shift_left: output violates the stream invariant");
  return result;
}

/// Worst-case delay distortion (Algorithm 3.1): the stream after crossing
/// queueing points with accumulated cell delay variation `cdv`.
///
/// In the worst case every bit generated in [0, cdv] is held until time
/// cdv and then released back-to-back at link rate, while later bits pass
/// undelayed.  Rebasing time at the first released bit gives
/// A'(t) = min(t, A(t + cdv)): the original cumulative curve shifted left
/// by cdv, clipped by the link rate.
template <typename Num>
BasicBitStream<Num> delay(const BasicBitStream<Num>& s, const Num& cdv) {
  RTCAC_REQUIRE(!(cdv < Num(0)), "delay: negative CDV");
  if (cdv == Num(0) || s.is_zero()) return s;
  const Num accumulated = s.bits_before(cdv);
  BasicBitStream<Num> result = filter(shift_left(s, cdv), accumulated);
  RTCAC_INVARIANT_AUDIT(result.invariants_hold(),
                        "delay: output violates the stream invariant");
  return result;
}

}  // namespace rtcac
