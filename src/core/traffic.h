// rtcac/core/traffic.h
//
// CBR/VBR traffic descriptors (Section 2 of the paper) and their
// conversion to worst-case bit streams (Algorithm 2.1).
//
// A VBR connection is characterized by (PCR, SCR, MBS): peak cell rate,
// sustainable cell rate (both normalized to link bandwidth) and maximum
// burst size in cells.  The source may emit up to MBS cells back-to-back
// at PCR provided its long-run rate stays within SCR — the token-bucket
// rule of Eq. (1).  A CBR connection is the special case SCR == PCR,
// MBS == 1.
//
// The worst-case generation pattern (most bits in every prefix [0, t]) is:
// one cell at full link rate, the remaining MBS-1 burst cells at PCR, then
// a steady SCR tail — giving the three-segment stream of Algorithm 2.1:
//     S = {(1, 0), (PCR, 1), (SCR, 1 + (MBS-1)/PCR)}.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/bitstream.h"

namespace rtcac {

/// Traffic contract of a CBR/VBR connection.  Rates are normalized to the
/// link bandwidth; MBS is in cells.
struct TrafficDescriptor {
  double pcr = 0;       ///< peak cell rate, in (0, 1]
  double scr = 0;       ///< sustainable cell rate, in (0, pcr]
  std::uint32_t mbs = 1;  ///< maximum burst size, >= 1 cell

  /// CBR contract: a single rate, burst of one cell.
  static TrafficDescriptor cbr(double pcr) {
    return TrafficDescriptor{pcr, pcr, 1};
  }

  /// VBR contract.
  static TrafficDescriptor vbr(double pcr, double scr, std::uint32_t mbs) {
    return TrafficDescriptor{pcr, scr, mbs};
  }

  [[nodiscard]] bool is_cbr() const noexcept {
    return mbs == 1 && scr == pcr;
  }

  /// Validates the contract; throws std::invalid_argument with a
  /// diagnostic if any parameter is out of range.
  void validate() const;

  /// Worst-case bit-stream envelope (Algorithm 2.1).  Calls validate().
  [[nodiscard]] BitStream to_bitstream() const;

  /// Same envelope in exact arithmetic.  `scale` is the common denominator
  /// used to express the rates as rationals (rates must be exact multiples
  /// of 1/scale).  Throws std::invalid_argument if they are not.
  [[nodiscard]] ExactBitStream to_exact_bitstream(std::int64_t scale) const;

  /// Average long-run bandwidth consumed (== SCR).
  [[nodiscard]] double average_rate() const noexcept { return scr; }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const TrafficDescriptor&,
                         const TrafficDescriptor&) = default;
};

/// Generates the first `count` worst-case (greedy) cell emission times, in
/// cell times, of a source obeying this contract — the discrete pattern of
/// Fig. 1 whose envelope Algorithm 2.1 bounds.  Used by the simulator's
/// adversarial sources and by the tests that check the envelope dominates
/// the discrete cell stream.
///
/// Cell k is emitted at the earliest instant the dual GCRA allows
/// (GCRA(1/PCR, 0) + GCRA(1/SCR, (MBS-1)(1/SCR - 1/PCR))), which permits
/// exactly MBS back-to-back cells at PCR.  Note: the paper's Eq. (1)
/// token recurrence, read literally, would allow longer peak bursts than
/// its own Algorithm 2.1 envelope when SCR approaches PCR; the GCRA
/// semantics adopted here are consistent with the envelope (DESIGN.md).
[[nodiscard]] std::vector<double> greedy_cell_times(
    const TrafficDescriptor& td, std::size_t count);

/// True iff the cell emission times satisfy the (PCR, SCR, MBS) contract
/// under the dual-GCRA semantics above.
[[nodiscard]] bool conforms(const TrafficDescriptor& td,
                            const std::vector<double>& cell_times);

}  // namespace rtcac
