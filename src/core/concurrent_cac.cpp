// rtcac/core/concurrent_cac.cpp — see concurrent_cac.h for the design.

#include "core/concurrent_cac.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/contract.h"

namespace rtcac {

ConcurrentCac::ConcurrentCac(const CacPolicy& policy,
                             const std::vector<PointConfig>& configs) {
  shards_.reserve(configs.size());
  for (const PointConfig& config : configs) {
    shards_.push_back(std::make_unique<Shard>(policy.make_point(config)));
    shards_.back()->cac->prime();
  }
}

namespace {
std::vector<PointConfig> to_point_configs(
    const std::vector<SwitchCac::Config>& configs) {
  std::vector<PointConfig> points;
  points.reserve(configs.size());
  for (const SwitchCac::Config& config : configs) {
    points.push_back(PointConfig{config.in_ports, config.out_ports,
                                 config.priorities, config.advertised_bound});
  }
  return points;
}
}  // namespace

ConcurrentCac::ConcurrentCac(const std::vector<SwitchCac::Config>& configs)
    : ConcurrentCac(BitstreamCacPolicy::instance(),
                    to_point_configs(configs)) {}

ConcurrentCac::Shard& ConcurrentCac::shard_at(std::size_t shard) const {
  if (shard >= shards_.size()) {
    throw std::out_of_range("ConcurrentCac: shard out of range");
  }
  return *shards_[shard];
}

SwitchCac& ConcurrentCac::bitstream_at(Shard& s) const {
  SwitchCac* cac = s.cac->bitstream();
  RTCAC_REQUIRE(cac != nullptr,
                "ConcurrentCac: Stream-typed API requires the bit-stream "
                "policy");
  return *cac;
}

double ConcurrentCac::advertised(std::size_t shard, std::size_t out_port,
                                 Priority priority) const {
  Shard& s = shard_at(shard);
  const std::shared_lock lock(s.mutex);
  return s.cac->advertised(out_port, priority);
}

std::any ConcurrentCac::prepare(std::size_t shard,
                                const TrafficDescriptor& traffic,
                                double cdv) const {
  Shard& s = shard_at(shard);
  const std::shared_lock lock(s.mutex);
  return s.cac->prepare(traffic, cdv);
}

HopVerdict ConcurrentCac::check_hop(const HopSpec& hop) const {
  Shard& s = shard_at(hop.shard);
  const std::shared_lock lock(s.mutex);
  return s.cac->check(hop.in_port, hop.out_port, hop.priority, hop.arrival);
}

ConcurrentCac::CheckResult ConcurrentCac::check(std::size_t shard,
                                                std::size_t in_port,
                                                std::size_t out_port,
                                                Priority priority,
                                                const Stream& arrival) const {
  Shard& s = shard_at(shard);
  const std::shared_lock lock(s.mutex);
  return bitstream_at(s).check(in_port, out_port, priority, arrival);
}

ConcurrentCac::CheckResult ConcurrentCac::admit(
    std::size_t shard, ConnectionId id, std::size_t in_port,
    std::size_t out_port, Priority priority, const Stream& arrival,
    double lease_expiry) {
  Shard& s = shard_at(shard);
  const std::unique_lock lock(s.mutex);
  SwitchCac& cac = bitstream_at(s);
  // Authoritative re-validation: any speculative check the caller ran
  // under the shared lock may be stale by now.
  CheckResult result = cac.check(in_port, out_port, priority, arrival);
  if (result.admitted) {
    cac.add(id, in_port, out_port, priority, arrival, lease_expiry);
    s.cac->prime();
  }
  return result;
}

ConcurrentCac::PathResult ConcurrentCac::admit_path(
    std::span<const HopSpec> hops, ConnectionId id, double lease_expiry,
    PathAcceptance accept, void* accept_ctx) {
  PathResult result;
  if (hops.empty()) return result;

  // Canonical lock order: ascending shard id, each shard locked once
  // even if the path crosses it twice.
  std::vector<std::size_t> order;
  order.reserve(hops.size());
  for (const HopSpec& hop : hops) order.push_back(hop.shard);
  std::sort(order.begin(), order.end());
  order.erase(std::unique(order.begin(), order.end()), order.end());

  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(order.size());
  for (const std::size_t shard : order) {
    locks.emplace_back(shard_at(shard).mutex);
  }

  // Check-all-then-commit-all.  With every involved shard exclusively
  // locked this is decision-identical to the serial hop-by-hop walk:
  // the hops reserve on distinct switches, so no hop's check can see
  // another hop's commit of the same connection.
  result.hops.reserve(hops.size());
  for (std::size_t h = 0; h < hops.size(); ++h) {
    const HopSpec& hop = hops[h];
    result.hops.push_back(shard_at(hop.shard).cac->check(
        hop.in_port, hop.out_port, hop.priority, hop.arrival));
    if (!result.hops.back().admitted) {
      result.rejecting_hop = h;
      return result;
    }
  }
  if (accept != nullptr && !accept(result.hops, accept_ctx)) {
    return result;
  }
  for (const HopSpec& hop : hops) {
    shard_at(hop.shard).cac->add(id, hop.in_port, hop.out_port, hop.priority,
                                 hop.arrival, lease_expiry);
  }
  for (const std::size_t shard : order) {
    shard_at(shard).cac->prime();
  }
  result.admitted = true;
  return result;
}

bool ConcurrentCac::remove(std::size_t shard, ConnectionId id) {
  Shard& s = shard_at(shard);
  const std::unique_lock lock(s.mutex);
  const bool removed = s.cac->remove(id);
  if (removed) s.cac->prime();
  return removed;
}

void ConcurrentCac::queue_remove(std::size_t shard, ConnectionId id) {
  Shard& s = shard_at(shard);
  const std::scoped_lock lock(s.pending_mutex);
  s.pending_removals.push_back(id);
}

std::size_t ConcurrentCac::drain_removals() {
  std::size_t removed = 0;
  for (const auto& shard : shards_) {
    std::vector<ConnectionId> batch;
    {
      const std::scoped_lock lock(shard->pending_mutex);
      batch.swap(shard->pending_removals);
    }
    if (batch.empty()) continue;
    const std::unique_lock lock(shard->mutex);
    removed += shard->cac->remove_many(batch);
    shard->cac->prime();
  }
  return removed;
}

std::size_t ConcurrentCac::pending_removals() const {
  std::size_t pending = 0;
  for (const auto& shard : shards_) {
    const std::scoped_lock lock(shard->pending_mutex);
    pending += shard->pending_removals.size();
  }
  return pending;
}

std::vector<ConnectionId> ConcurrentCac::reclaim(std::size_t shard,
                                                 double now) {
  Shard& s = shard_at(shard);
  const std::unique_lock lock(s.mutex);
  std::vector<ConnectionId> reclaimed = s.cac->reclaim(now);
  if (!reclaimed.empty()) s.cac->prime();
  return reclaimed;
}

std::vector<ConnectionId> ConcurrentCac::reclaim_all(double now) {
  std::vector<ConnectionId> reclaimed;
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    std::vector<ConnectionId> part = reclaim(shard, now);
    reclaimed.insert(reclaimed.end(), part.begin(), part.end());
  }
  return reclaimed;
}

bool ConcurrentCac::renew_lease(std::size_t shard, ConnectionId id,
                                double lease_expiry) {
  Shard& s = shard_at(shard);
  const std::unique_lock lock(s.mutex);
  return s.cac->renew_lease(id, lease_expiry);
}

bool ConcurrentCac::make_permanent(std::size_t shard, ConnectionId id) {
  Shard& s = shard_at(shard);
  const std::unique_lock lock(s.mutex);
  return s.cac->make_permanent(id);
}

bool ConcurrentCac::contains(std::size_t shard, ConnectionId id) const {
  Shard& s = shard_at(shard);
  const std::shared_lock lock(s.mutex);
  return s.cac->contains(id);
}

std::size_t ConcurrentCac::connection_count() const {
  std::size_t count = 0;
  for (const auto& shard : shards_) {
    const std::shared_lock lock(shard->mutex);
    count += shard->cac->connection_count();
  }
  return count;
}

bool ConcurrentCac::state_consistent() const {
  for (const auto& shard : shards_) {
    const std::shared_lock lock(shard->mutex);
    if (!shard->cac->state_consistent()) return false;
  }
  return true;
}

bool ConcurrentCac::bandwidth_conserved() const {
  for (const auto& shard : shards_) {
    const std::shared_lock lock(shard->mutex);
    if (!shard->cac->bandwidth_conserved()) return false;
  }
  return true;
}

bool ConcurrentCac::cache_coherent() const {
  for (const auto& shard : shards_) {
    const std::shared_lock lock(shard->mutex);
    if (!shard->cac->cache_coherent()) return false;
  }
  return true;
}

std::optional<double> ConcurrentCac::computed_bound(std::size_t shard,
                                                    std::size_t out_port,
                                                    Priority priority) const {
  Shard& s = shard_at(shard);
  const std::shared_lock lock(s.mutex);
  return s.cac->computed_bound(out_port, priority);
}

const SwitchCac& ConcurrentCac::shard_state(std::size_t shard) const {
  Shard& s = shard_at(shard);
  const SwitchCac* cac = s.cac->bitstream();
  RTCAC_REQUIRE(cac != nullptr,
                "ConcurrentCac::shard_state requires the bit-stream policy");
  return *cac;
}

const PolicyCac& ConcurrentCac::shard_point(std::size_t shard) const {
  return *shard_at(shard).cac;
}

}  // namespace rtcac
