// rtcac/core/concurrent_cac.cpp — see concurrent_cac.h for the design.
//
// Lock discipline (machine-checked, docs/STATIC_ANALYSIS.md): every
// single-shard entry point pairs a LockOrderAudit::Scope with a
// SharedLock/ExclusiveLock RAII guard on that shard's mutex; the only
// multi-shard paths are admit_path and renegotiate_path, which go
// through the ShardLockSet scoped capability.  The snapshot fast path
// takes no shard lock at all
// — it synchronizes through each slot's atomic shared_ptr and validates
// version stamps — and reader-side refresh nests the slot's
// refresh_mutex *outside* the shard's shared lock (writers never take a
// refresh mutex, so the edge is one-way).  The
// RTCAC_NO_THREAD_SAFETY_ANALYSIS escapes in this file (ShardLockSet's
// constructor/destructor/point/both stamp_current overloads/
// publish_epoch) plus the two
// quiesced test accessors at the bottom and point_const in the header
// are the complete list the `tsa` preset tolerates — each is justified
// at its site.

#include "core/concurrent_cac.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/contract.h"
#include "util/lock_order.h"

namespace rtcac {

ConcurrentCac::ConcurrentCac(const CacPolicy& policy,
                             const std::vector<PointConfig>& configs)
    : ConcurrentCac(policy, configs, Options{}) {}

ConcurrentCac::ConcurrentCac(const CacPolicy& policy,
                             const std::vector<PointConfig>& configs,
                             const Options& options)
    : publish_window_(options.publish_window == 0 ? 1
                                                  : options.publish_window) {
  shards_.reserve(configs.size());
  for (const PointConfig& config : configs) {
    // Prime before the point is published into a Shard: afterwards the
    // derived caches may only be touched under the shard's lock.
    std::unique_ptr<PolicyCac> point = policy.make_point(config);
    point->prime();
    // Probe once whether this policy exports snapshots; the answer is
    // frozen into the shard (its slots exist only when it does).
    bool snapshots = false;
    if (config.out_ports > 0 && config.priorities > 0) {
      std::vector<std::size_t> all(config.priorities);
      for (std::size_t p = 0; p < config.priorities; ++p) all[p] = p;
      snapshots = point->export_point_snapshot(0, nullptr, all) != nullptr;
    }
    shards_.push_back(std::make_unique<Shard>(
        std::move(point), config.out_ports, config.priorities, snapshots));
  }
  // Publish every point's initial snapshot so the very first checks
  // already run lock-free.  No other thread can reference the shards
  // yet; the locks are uncontended and keep the annotated discipline
  // uniform.
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    Shard& s = *shards_[shard];
    if (!s.snapshots_enabled) continue;
    const LockOrderAudit::Scope audit(shard);
    const ExclusiveLock lock(s.mutex);
    for (std::size_t out = 0; out < s.out_ports; ++out) {
      rebuild_published_locked(s, out);
    }
  }
}

namespace {
std::vector<PointConfig> to_point_configs(
    const std::vector<SwitchCac::Config>& configs) {
  std::vector<PointConfig> points;
  points.reserve(configs.size());
  for (const SwitchCac::Config& config : configs) {
    points.push_back(PointConfig{config.in_ports, config.out_ports,
                                 config.priorities, config.advertised_bound,
                                 config.coalesce_budget});
  }
  return points;
}
}  // namespace

ConcurrentCac::ConcurrentCac(const std::vector<SwitchCac::Config>& configs)
    : ConcurrentCac(configs, Options{}) {}

ConcurrentCac::ConcurrentCac(const std::vector<SwitchCac::Config>& configs,
                             const Options& options)
    : ConcurrentCac(BitstreamCacPolicy::instance(), to_point_configs(configs),
                    options) {}

ConcurrentCac::Shard& ConcurrentCac::shard_at(std::size_t shard) const {
  if (shard >= shards_.size()) {
    throw std::out_of_range("ConcurrentCac: shard out of range");
  }
  return *shards_[shard];
}

const SwitchCac& ConcurrentCac::bitstream_at(const Shard& s) const {
  const SwitchCac* cac = s.cac->bitstream();
  RTCAC_REQUIRE(cac != nullptr,
                "ConcurrentCac: Stream-typed API requires the bit-stream "
                "policy");
  return *cac;
}

SwitchCac& ConcurrentCac::bitstream_mut(Shard& s) {
  SwitchCac* cac = s.cac->bitstream();
  RTCAC_REQUIRE(cac != nullptr,
                "ConcurrentCac: Stream-typed API requires the bit-stream "
                "policy");
  return *cac;
}

// --- snapshot machinery -----------------------------------------------------

bool ConcurrentCac::snapshot_current(const Shard& s, const Published& pub,
                                     std::size_t out_port,
                                     Priority priority) {
  if (pub.versions.size() != s.priorities) return false;
  // The verdict at `priority` depends only on queues [priority, P) of
  // this out-port: a mutation at priority r invalidates every queue
  // q >= r (the policy's dirty-queue contract), so a mutation at r <
  // priority that changed anything the check reads also moved these
  // stamps.
  for (std::size_t q = priority; q < s.priorities; ++q) {
    if (pub.versions[q] !=
        s.point_versions[out_port * s.priorities + q].load(
            std::memory_order_acquire)) {
      return false;
    }
  }
  return true;
}

bool ConcurrentCac::stamp_matches(const Shard& s, const CheckStamp& stamp) {
  return stamp_matches(s, stamp, stamp.priority);
}

bool ConcurrentCac::stamp_matches(const Shard& s, const CheckStamp& stamp,
                                  Priority floor) {
  if (stamp.versions.size() != s.priorities || stamp.out_port >= s.out_ports ||
      stamp.priority >= s.priorities) {
    return false;  // null or malformed stamp never validates
  }
  // The stamp holds every priority's counter, so a cone wider than the
  // one the check itself needed (floor < stamp.priority — the
  // renegotiation union cone) is validatable from the same witness.
  for (std::size_t q = std::min<std::size_t>(floor, stamp.priority);
       q < s.priorities; ++q) {
    if (stamp.versions[q] !=
        s.point_versions[stamp.out_port * s.priorities + q].load(
            std::memory_order_acquire)) {
      return false;
    }
  }
  return true;
}

void ConcurrentCac::rebuild_published_locked(const Shard& s,
                                             std::size_t out_port) const {
  OutSlot& slot = s.slots[out_port];
  const std::shared_ptr<const Published> prev =
      slot.snap.load();
  // The lock (shared suffices) freezes the version counters — writers
  // advance them only under the exclusive lock — so this publication's
  // embedded stamps exactly describe the state being exported.
  std::vector<std::uint64_t> versions(s.priorities);
  std::vector<std::size_t> stale;
  for (std::size_t p = 0; p < s.priorities; ++p) {
    versions[p] = s.point_versions[out_port * s.priorities + p].load(
        std::memory_order_acquire);
    if (prev == nullptr || prev->versions.size() != s.priorities ||
        prev->versions[p] != versions[p]) {
      stale.push_back(p);
    }
  }
  if (prev != nullptr && stale.empty()) return;  // already current
  std::shared_ptr<const PointSnapshot> state = s.cac->export_point_snapshot(
      out_port, prev != nullptr ? prev->state.get() : nullptr, stale);
  if (state == nullptr) return;  // policy declined (snapshots disabled)
  slot.snap.store(std::make_shared<const Published>(
      Published{std::move(versions), std::move(state)}));
}

void ConcurrentCac::refresh_snapshot(std::size_t shard, Shard& s,
                                     std::size_t out_port) const {
  OutSlot& slot = s.slots[out_port];
  // refresh_mutex serializes concurrent refreshers of one slot; the
  // shared lock excludes writers for the duration of the rebuild.  A
  // writer publication racing ahead of this one is harmless: the store
  // below happens under the shared lock, which no writer can interleave
  // with, so a fresher publication is never overwritten by a staler
  // one.
  const MutexLock refresh(slot.refresh_mutex);
  const LockOrderAudit::Scope audit(shard);
  const SharedLock lock(s.mutex);
  rebuild_published_locked(s, out_port);
}

void ConcurrentCac::commit_epoch_locked(Shard& s) {
  // Dirty set first: prime() rebuilds the derived caches and clears the
  // policy's dirty bookkeeping in the same stroke.
  const std::optional<std::vector<std::size_t>> dirty = s.cac->dirty_queues();
  s.cac->prime();
  const std::size_t queues = s.out_ports * s.priorities;
  if (queues == 0) return;
  bool any = false;
  if (dirty.has_value()) {
    for (const std::size_t key : *dirty) {
      RTCAC_ASSERT(key < queues,
                   "ConcurrentCac: dirty queue key out of range");
      s.point_versions[key].fetch_add(1, std::memory_order_release);
      if (s.snapshots_enabled) s.stale_outs[key / s.priorities] = 1;
      any = true;
    }
  } else {
    // Policy cannot attribute the mutations: advance every queue.
    for (std::size_t key = 0; key < queues; ++key) {
      s.point_versions[key].fetch_add(1, std::memory_order_release);
    }
    if (s.snapshots_enabled) {
      std::fill(s.stale_outs.begin(), s.stale_outs.end(), 1);
    }
    any = true;
  }
  if (!any || !s.snapshots_enabled) return;
  if (++s.commits_since_publish < publish_window_) return;  // batch
  publish_stale_locked(s);
}

std::size_t ConcurrentCac::publish_stale_locked(Shard& s) {
  std::size_t published = 0;
  for (std::size_t out = 0; out < s.out_ports; ++out) {
    if (s.stale_outs[out] == 0) continue;
    rebuild_published_locked(s, out);
    s.stale_outs[out] = 0;
    ++published;
  }
  s.commits_since_publish = 0;
  return published;
}

std::size_t ConcurrentCac::publish_snapshots() {
  std::size_t published = 0;
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    Shard& s = *shards_[shard];
    if (!s.snapshots_enabled) continue;
    const LockOrderAudit::Scope audit(shard);
    const ExclusiveLock lock(s.mutex);
    published += publish_stale_locked(s);
  }
  return published;
}

// --- ShardLockSet: the canonical multi-shard acquisition --------------------

ConcurrentCac::ShardLockSet::ShardLockSet(ConcurrentCac& owner,
                                          std::span<const HopSpec> hops)
    // Justified escape: the locked set is a runtime value, so the
    // static analysis cannot name the capabilities being acquired.  The
    // discipline is enforced dynamically instead — the loop below
    // iterates the sorted distinct shard ids, and LockOrderAudit::push
    // asserts per-thread ascent *before* each blocking acquisition (so
    // an ordering bug fires as a ContractViolation, not a deadlock);
    // TSan's `concurrency` label covers the result.
    RTCAC_NO_THREAD_SAFETY_ANALYSIS
    : owner_(owner) {
  shards_.reserve(hops.size());
  for (const HopSpec& hop : hops) shards_.push_back(hop.shard);
  std::sort(shards_.begin(), shards_.end());
  shards_.erase(std::unique(shards_.begin(), shards_.end()), shards_.end());
  for (const std::size_t shard : shards_) {
    LockOrderAudit::push(shard);
    owner_.shard_at(shard).mutex.lock();
  }
}

ConcurrentCac::ShardLockSet::~ShardLockSet()
    // Justified escape: releases the same dynamic set, in LIFO order
    // (LockOrderAudit::pop asserts it).
    RTCAC_NO_THREAD_SAFETY_ANALYSIS {
  for (auto it = shards_.rbegin(); it != shards_.rend(); ++it) {
    owner_.shard_at(*it).mutex.unlock();
    LockOrderAudit::pop(*it);
  }
}

PolicyCac& ConcurrentCac::ShardLockSet::point(std::size_t shard) const
    // Justified escape: guarded access on behalf of the dynamic lock
    // set.  Membership is asserted, so a shard id outside the locked
    // set cannot slip past the exclusion the set provides.
    RTCAC_NO_THREAD_SAFETY_ANALYSIS {
  RTCAC_ASSERT(std::binary_search(shards_.begin(), shards_.end(), shard),
               "ShardLockSet: shard not locked by this set");
  return *owner_.shard_at(shard).cac;
}

bool ConcurrentCac::ShardLockSet::stamp_current(const CheckStamp& stamp) const
    // Justified escape: compares atomic version counters on behalf of
    // the dynamic lock set.  Membership is asserted, so the exclusive
    // lock the set holds freezes the counters being compared — a match
    // proves the stamped point saw no commit since the stamp was taken.
    RTCAC_NO_THREAD_SAFETY_ANALYSIS {
  RTCAC_ASSERT(
      std::binary_search(shards_.begin(), shards_.end(), stamp.shard),
      "ShardLockSet: stamped shard not locked by this set");
  return stamp_matches(owner_.shard_at(stamp.shard), stamp);
}

bool ConcurrentCac::ShardLockSet::stamp_current(const CheckStamp& stamp,
                                                Priority floor) const
    // Justified escape: same argument as the plain overload, over the
    // widened cone [min(floor, stamp.priority), P) — a renegotiation
    // verdict also depends on the old descriptor's queues staying
    // unchanged, and the exclusive lock freezes those counters too.
    RTCAC_NO_THREAD_SAFETY_ANALYSIS {
  RTCAC_ASSERT(
      std::binary_search(shards_.begin(), shards_.end(), stamp.shard),
      "ShardLockSet: stamped shard not locked by this set");
  return stamp_matches(owner_.shard_at(stamp.shard), stamp, floor);
}

void ConcurrentCac::ShardLockSet::publish_epoch(std::size_t shard) const
    // Justified escape: commit epilogue on behalf of the dynamic lock
    // set; membership is asserted (same exclusion argument as point()).
    RTCAC_NO_THREAD_SAFETY_ANALYSIS {
  RTCAC_ASSERT(std::binary_search(shards_.begin(), shards_.end(), shard),
               "ShardLockSet: shard not locked by this set");
  owner_.commit_epoch_locked(owner_.shard_at(shard));
}

// --- single-shard operations ------------------------------------------------

bool ConcurrentCac::snapshots_enabled(std::size_t shard) const {
  return shard_at(shard).snapshots_enabled;
}

std::uint64_t ConcurrentCac::point_version(std::size_t shard,
                                           std::size_t out_port,
                                           Priority priority) const {
  const Shard& s = shard_at(shard);
  RTCAC_REQUIRE(out_port < s.out_ports && priority < s.priorities,
                "ConcurrentCac: queue out of range");
  return s.point_versions[out_port * s.priorities + priority].load(
      std::memory_order_acquire);
}

double ConcurrentCac::advertised(std::size_t shard, std::size_t out_port,
                                 Priority priority) const {
  return point_const(shard_at(shard)).advertised(out_port, priority);
}

std::any ConcurrentCac::prepare(std::size_t shard,
                                const TrafficDescriptor& traffic,
                                double cdv) const {
  return point_const(shard_at(shard)).prepare(traffic, cdv);
}

HopVerdict ConcurrentCac::check_hop(const HopSpec& hop,
                                    CheckStamp* stamp) const {
  Shard& s = shard_at(hop.shard);
  if (s.snapshots_enabled && hop.out_port < s.out_ports &&
      hop.priority < s.priorities) {
    OutSlot& slot = s.slots[hop.out_port];
    // Bounded optimism: a stale slot is self-refreshed once; if the
    // state is still moving after that, the shared lock settles it.
    for (int attempt = 0; attempt < 2; ++attempt) {
      const std::shared_ptr<const Published> pub =
          slot.snap.load();
      if (pub != nullptr &&
          snapshot_current(s, *pub, hop.out_port, hop.priority)) {
        if (stamp != nullptr) {
          *stamp = CheckStamp{hop.shard, hop.out_port, hop.priority,
                              pub->versions};
        }
        // Zero lock traffic: the pinned snapshot is immutable, and its
        // validated stamps prove it equals the live state.
        return pub->state->check(hop.in_port, hop.priority, hop.arrival);
      }
      refresh_snapshot(hop.shard, s, hop.out_port);
    }
  }
  const LockOrderAudit::Scope audit(hop.shard);
  const SharedLock lock(s.mutex);
  if (stamp != nullptr && hop.out_port < s.out_ports &&
      hop.priority < s.priorities) {
    // The shared lock freezes the counters, so this stamp is as exact
    // as a snapshot's embedded one.
    std::vector<std::uint64_t> versions(s.priorities);
    for (std::size_t p = 0; p < s.priorities; ++p) {
      versions[p] = s.point_versions[hop.out_port * s.priorities + p].load(
          std::memory_order_acquire);
    }
    *stamp = CheckStamp{hop.shard, hop.out_port, hop.priority,
                        std::move(versions)};
  }
  return s.cac->check(hop.in_port, hop.out_port, hop.priority, hop.arrival);
}

ConcurrentCac::CheckResult ConcurrentCac::check(std::size_t shard,
                                                std::size_t in_port,
                                                std::size_t out_port,
                                                Priority priority,
                                                const Stream& arrival) const {
  Shard& s = shard_at(shard);
  const LockOrderAudit::Scope audit(shard);
  const SharedLock lock(s.mutex);
  return bitstream_at(s).check(in_port, out_port, priority, arrival);
}

ConcurrentCac::CheckResult ConcurrentCac::admit(
    std::size_t shard, ConnectionId id, std::size_t in_port,
    std::size_t out_port, Priority priority, const Stream& arrival,
    double lease_expiry) {
  Shard& s = shard_at(shard);
  const LockOrderAudit::Scope audit(shard);
  const ExclusiveLock lock(s.mutex);
  SwitchCac& cac = bitstream_mut(s);
  // Authoritative re-validation: any speculative check the caller ran
  // may be stale by now.
  CheckResult result = cac.check(in_port, out_port, priority, arrival);
  if (result.admitted) {
    cac.add(id, in_port, out_port, priority, arrival, lease_expiry);
    commit_epoch_locked(s);
  }
  return result;
}

ConcurrentCac::PathResult ConcurrentCac::admit_path(
    std::span<const HopSpec> hops, ConnectionId id, double lease_expiry,
    PathAcceptance accept, void* accept_ctx,
    std::span<const SpeculativeHop> speculative) {
  PathResult result;
  if (hops.empty()) return result;

  // Canonical multi-shard acquisition: ascending shard id, each shard
  // locked once even if the path crosses it twice.
  const ShardLockSet locks(*this, hops);

  // Check-all-then-commit-all, with validate-on-commit: a hop whose
  // speculative stamp still matches the live version counters (frozen
  // by the exclusive locks) reuses its optimistic verdict — the point
  // provably saw no commit since the check.  Every other hop is
  // re-checked against the locked state, so the outcome is identical
  // to re-checking all of them, and a stale speculative check can
  // never over-admit.  With every involved shard exclusively locked
  // this is decision-identical to the serial hop-by-hop walk: the hops
  // reserve on distinct switches, so no hop's check can see another
  // hop's commit of the same connection.
  result.hops.reserve(hops.size());
  for (std::size_t h = 0; h < hops.size(); ++h) {
    const HopSpec& hop = hops[h];
    const SpeculativeHop* spec =
        h < speculative.size() ? &speculative[h] : nullptr;
    if (spec != nullptr && spec->stamp.shard == hop.shard &&
        spec->stamp.out_port == hop.out_port &&
        spec->stamp.priority == hop.priority &&
        locks.stamp_current(spec->stamp)) {
      result.hops.push_back(spec->verdict);
      ++result.hops_reused;
    } else {
      result.hops.push_back(locks.point(hop.shard).check(
          hop.in_port, hop.out_port, hop.priority, hop.arrival));
      ++result.hops_revalidated;
    }
    if (!result.hops.back().admitted) {
      result.rejecting_hop = h;
      return result;
    }
  }
  if (accept != nullptr && !accept(result.hops, accept_ctx)) {
    return result;
  }
  for (const HopSpec& hop : hops) {
    locks.point(hop.shard).add(id, hop.in_port, hop.out_port, hop.priority,
                               hop.arrival, lease_expiry);
  }
  for (const std::size_t shard : locks.shards()) {
    locks.publish_epoch(shard);
  }
  result.admitted = true;
  return result;
}

ConcurrentCac::PathResult ConcurrentCac::renegotiate_path(
    std::span<const HopSpec> hops, ConnectionId id, ConnectionId provisional,
    Priority old_priority, double lease_expiry, PathAcceptance accept,
    void* accept_ctx, std::span<const SpeculativeHop> speculative) {
  PathResult result;
  if (hops.empty()) return result;
  RTCAC_REQUIRE(provisional != kInvalidConnection && provisional != id,
                "renegotiate_path: provisional id must be fresh and distinct");

  const ShardLockSet locks(*this, hops);

  // Check-all against the *combined* old+new load: the old descriptor's
  // reservations stay committed while every new-descriptor hop is
  // validated, so each check is exactly the make-before-break combined
  // check the serial renegotiate walk performs.  Stamp reuse validates
  // the union cone [min(old_priority, new priority), P): committing the
  // swap releases the old reservation, whose queues (>= old_priority)
  // the verdict therefore also depends on staying unchanged.
  result.hops.reserve(hops.size());
  for (std::size_t h = 0; h < hops.size(); ++h) {
    const HopSpec& hop = hops[h];
    const SpeculativeHop* spec =
        h < speculative.size() ? &speculative[h] : nullptr;
    if (spec != nullptr && spec->stamp.shard == hop.shard &&
        spec->stamp.out_port == hop.out_port &&
        spec->stamp.priority == hop.priority &&
        locks.stamp_current(spec->stamp, old_priority)) {
      result.hops.push_back(spec->verdict);
      ++result.hops_reused;
    } else {
      result.hops.push_back(locks.point(hop.shard).check(
          hop.in_port, hop.out_port, hop.priority, hop.arrival));
      ++result.hops_revalidated;
    }
    if (!result.hops.back().admitted) {
      result.rejecting_hop = h;
      return result;
    }
  }
  if (accept != nullptr && !accept(result.hops, accept_ctx)) {
    return result;
  }

  // DeltaTransaction commit with release == acquire, driven through the
  // single path_eval core over the locked points: commit the new
  // descriptor under `provisional`, release the old reservations, rebind
  // `provisional` onto `id`.  The whole sequence runs inside the
  // exclusive lock set, so no concurrent check ever observes a mixed
  // old/new path, and the per-cell mutation order matches the serial
  // walk's exactly.
  const Priority priority = hops.front().priority;
  std::vector<PathEvaluator::Hop> views;
  std::vector<std::any> arrivals;
  views.reserve(hops.size());
  arrivals.reserve(hops.size());
  for (const HopSpec& hop : hops) {
    RTCAC_ASSERT(hop.priority == priority,
                 "renegotiate_path: hops must share the request's priority");
    PathEvaluator::Hop view;
    view.cac = &locks.point(hop.shard);
    view.in_port = hop.in_port;
    view.out_port = hop.out_port;
    views.push_back(view);
    arrivals.push_back(hop.arrival);
  }
  PathEvaluator::commit_delta_hops(views, views, id, provisional, priority,
                                   arrivals, lease_expiry);
  for (const std::size_t shard : locks.shards()) {
    locks.publish_epoch(shard);
  }
  result.admitted = true;
  return result;
}

bool ConcurrentCac::remove(std::size_t shard, ConnectionId id) {
  Shard& s = shard_at(shard);
  const LockOrderAudit::Scope audit(shard);
  const ExclusiveLock lock(s.mutex);
  const bool removed = s.cac->remove(id);
  if (removed) commit_epoch_locked(s);
  return removed;
}

void ConcurrentCac::queue_remove(std::size_t shard, ConnectionId id) {
  Shard& s = shard_at(shard);
  const MutexLock lock(s.pending_mutex);
  s.pending_removals.push_back(id);
}

std::size_t ConcurrentCac::drain_removals() {
  std::size_t removed = 0;
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    Shard& s = *shards_[shard];
    std::vector<ConnectionId> batch;
    {
      const MutexLock lock(s.pending_mutex);
      batch.swap(s.pending_removals);
    }
    if (batch.empty()) continue;
    const LockOrderAudit::Scope audit(shard);
    const ExclusiveLock lock(s.mutex);
    removed += s.cac->remove_many(batch);
    commit_epoch_locked(s);
  }
  return removed;
}

std::size_t ConcurrentCac::pending_removals() const {
  std::size_t pending = 0;
  for (const auto& shard : shards_) {
    Shard& s = *shard;
    const MutexLock lock(s.pending_mutex);
    pending += s.pending_removals.size();
  }
  return pending;
}

std::vector<ConnectionId> ConcurrentCac::reclaim(std::size_t shard,
                                                 double now) {
  Shard& s = shard_at(shard);
  const LockOrderAudit::Scope audit(shard);
  const ExclusiveLock lock(s.mutex);
  std::vector<ConnectionId> reclaimed = s.cac->reclaim(now);
  if (!reclaimed.empty()) commit_epoch_locked(s);
  return reclaimed;
}

std::vector<ConnectionId> ConcurrentCac::reclaim_all(double now) {
  std::vector<ConnectionId> reclaimed;
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    std::vector<ConnectionId> part = reclaim(shard, now);
    reclaimed.insert(reclaimed.end(), part.begin(), part.end());
  }
  return reclaimed;
}

bool ConcurrentCac::renew_lease(std::size_t shard, ConnectionId id,
                                double lease_expiry) {
  Shard& s = shard_at(shard);
  const LockOrderAudit::Scope audit(shard);
  const ExclusiveLock lock(s.mutex);
  // No epoch: lease metadata feeds no admission aggregate, so the
  // published snapshots stay exact.
  return s.cac->renew_lease(id, lease_expiry);
}

bool ConcurrentCac::make_permanent(std::size_t shard, ConnectionId id) {
  Shard& s = shard_at(shard);
  const LockOrderAudit::Scope audit(shard);
  const ExclusiveLock lock(s.mutex);
  return s.cac->make_permanent(id);
}

bool ConcurrentCac::contains(std::size_t shard, ConnectionId id) const {
  Shard& s = shard_at(shard);
  const LockOrderAudit::Scope audit(shard);
  const SharedLock lock(s.mutex);
  return s.cac->contains(id);
}

std::size_t ConcurrentCac::connection_count() const {
  std::size_t count = 0;
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    Shard& s = *shards_[shard];
    const LockOrderAudit::Scope audit(shard);
    const SharedLock lock(s.mutex);
    count += s.cac->connection_count();
  }
  return count;
}

bool ConcurrentCac::state_consistent() const {
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    Shard& s = *shards_[shard];
    const LockOrderAudit::Scope audit(shard);
    const SharedLock lock(s.mutex);
    if (!s.cac->state_consistent()) return false;
  }
  return true;
}

bool ConcurrentCac::bandwidth_conserved() const {
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    Shard& s = *shards_[shard];
    const LockOrderAudit::Scope audit(shard);
    const SharedLock lock(s.mutex);
    if (!s.cac->bandwidth_conserved()) return false;
  }
  return true;
}

bool ConcurrentCac::cache_coherent() const {
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    Shard& s = *shards_[shard];
    const LockOrderAudit::Scope audit(shard);
    const SharedLock lock(s.mutex);
    if (!s.cac->cache_coherent()) return false;
  }
  return true;
}

std::optional<double> ConcurrentCac::computed_bound(std::size_t shard,
                                                    std::size_t out_port,
                                                    Priority priority) const {
  Shard& s = shard_at(shard);
  const LockOrderAudit::Scope audit(shard);
  const SharedLock lock(s.mutex);
  return s.cac->computed_bound(out_port, priority);
}

const SwitchCac& ConcurrentCac::shard_state(std::size_t shard) const
    // Justified escape: documented quiesced-inspection API (tests,
    // benchmarks) — the caller guarantees no concurrent writers, which
    // no lock acquisition here could express or improve on.
    RTCAC_NO_THREAD_SAFETY_ANALYSIS {
  Shard& s = shard_at(shard);
  const SwitchCac* cac = s.cac->bitstream();
  RTCAC_REQUIRE(cac != nullptr,
                "ConcurrentCac::shard_state requires the bit-stream policy");
  return *cac;
}

const PolicyCac& ConcurrentCac::shard_point(std::size_t shard) const
    // Justified escape: same quiesced-inspection contract as
    // shard_state above.
    RTCAC_NO_THREAD_SAFETY_ANALYSIS {
  return *shard_at(shard).cac;
}

}  // namespace rtcac
