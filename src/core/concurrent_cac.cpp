// rtcac/core/concurrent_cac.cpp — see concurrent_cac.h for the design.
//
// Lock discipline (machine-checked, docs/STATIC_ANALYSIS.md): every
// single-shard entry point pairs a LockOrderAudit::Scope with a
// SharedLock/ExclusiveLock RAII guard on that shard's mutex; the only
// multi-shard path is admit_path, which goes through the ShardLockSet
// scoped capability.  The three RTCAC_NO_THREAD_SAFETY_ANALYSIS escapes
// in this file (ShardLockSet's constructor/destructor/point accessor)
// plus the two quiesced test accessors at the bottom are the complete
// list the `tsa` preset tolerates — each is justified at its site.

#include "core/concurrent_cac.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/contract.h"
#include "util/lock_order.h"

namespace rtcac {

ConcurrentCac::ConcurrentCac(const CacPolicy& policy,
                             const std::vector<PointConfig>& configs) {
  shards_.reserve(configs.size());
  for (const PointConfig& config : configs) {
    // Prime before the point is published into a Shard: afterwards the
    // derived caches may only be touched under the shard's lock.
    std::unique_ptr<PolicyCac> point = policy.make_point(config);
    point->prime();
    shards_.push_back(std::make_unique<Shard>(std::move(point)));
  }
}

namespace {
std::vector<PointConfig> to_point_configs(
    const std::vector<SwitchCac::Config>& configs) {
  std::vector<PointConfig> points;
  points.reserve(configs.size());
  for (const SwitchCac::Config& config : configs) {
    points.push_back(PointConfig{config.in_ports, config.out_ports,
                                 config.priorities, config.advertised_bound,
                                 config.coalesce_budget});
  }
  return points;
}
}  // namespace

ConcurrentCac::ConcurrentCac(const std::vector<SwitchCac::Config>& configs)
    : ConcurrentCac(BitstreamCacPolicy::instance(),
                    to_point_configs(configs)) {}

ConcurrentCac::Shard& ConcurrentCac::shard_at(std::size_t shard) const {
  if (shard >= shards_.size()) {
    throw std::out_of_range("ConcurrentCac: shard out of range");
  }
  return *shards_[shard];
}

const SwitchCac& ConcurrentCac::bitstream_at(const Shard& s) const {
  const SwitchCac* cac = s.cac->bitstream();
  RTCAC_REQUIRE(cac != nullptr,
                "ConcurrentCac: Stream-typed API requires the bit-stream "
                "policy");
  return *cac;
}

SwitchCac& ConcurrentCac::bitstream_mut(Shard& s) {
  SwitchCac* cac = s.cac->bitstream();
  RTCAC_REQUIRE(cac != nullptr,
                "ConcurrentCac: Stream-typed API requires the bit-stream "
                "policy");
  return *cac;
}

// --- ShardLockSet: the canonical multi-shard acquisition --------------------

ConcurrentCac::ShardLockSet::ShardLockSet(ConcurrentCac& owner,
                                          std::span<const HopSpec> hops)
    // Justified escape: the locked set is a runtime value, so the
    // static analysis cannot name the capabilities being acquired.  The
    // discipline is enforced dynamically instead — the loop below
    // iterates the sorted distinct shard ids, and LockOrderAudit::push
    // asserts per-thread ascent *before* each blocking acquisition (so
    // an ordering bug fires as a ContractViolation, not a deadlock);
    // TSan's `concurrency` label covers the result.
    RTCAC_NO_THREAD_SAFETY_ANALYSIS
    : owner_(owner) {
  shards_.reserve(hops.size());
  for (const HopSpec& hop : hops) shards_.push_back(hop.shard);
  std::sort(shards_.begin(), shards_.end());
  shards_.erase(std::unique(shards_.begin(), shards_.end()), shards_.end());
  for (const std::size_t shard : shards_) {
    LockOrderAudit::push(shard);
    owner_.shard_at(shard).mutex.lock();
  }
}

ConcurrentCac::ShardLockSet::~ShardLockSet()
    // Justified escape: releases the same dynamic set, in LIFO order
    // (LockOrderAudit::pop asserts it).
    RTCAC_NO_THREAD_SAFETY_ANALYSIS {
  for (auto it = shards_.rbegin(); it != shards_.rend(); ++it) {
    owner_.shard_at(*it).mutex.unlock();
    LockOrderAudit::pop(*it);
  }
}

PolicyCac& ConcurrentCac::ShardLockSet::point(std::size_t shard) const
    // Justified escape: guarded access on behalf of the dynamic lock
    // set.  Membership is asserted, so a shard id outside the locked
    // set cannot slip past the exclusion the set provides.
    RTCAC_NO_THREAD_SAFETY_ANALYSIS {
  RTCAC_ASSERT(std::binary_search(shards_.begin(), shards_.end(), shard),
               "ShardLockSet: shard not locked by this set");
  return *owner_.shard_at(shard).cac;
}

// --- single-shard operations ------------------------------------------------

double ConcurrentCac::advertised(std::size_t shard, std::size_t out_port,
                                 Priority priority) const {
  Shard& s = shard_at(shard);
  const LockOrderAudit::Scope audit(shard);
  const SharedLock lock(s.mutex);
  return s.cac->advertised(out_port, priority);
}

std::any ConcurrentCac::prepare(std::size_t shard,
                                const TrafficDescriptor& traffic,
                                double cdv) const {
  Shard& s = shard_at(shard);
  const LockOrderAudit::Scope audit(shard);
  const SharedLock lock(s.mutex);
  return s.cac->prepare(traffic, cdv);
}

HopVerdict ConcurrentCac::check_hop(const HopSpec& hop) const {
  Shard& s = shard_at(hop.shard);
  const LockOrderAudit::Scope audit(hop.shard);
  const SharedLock lock(s.mutex);
  return s.cac->check(hop.in_port, hop.out_port, hop.priority, hop.arrival);
}

ConcurrentCac::CheckResult ConcurrentCac::check(std::size_t shard,
                                                std::size_t in_port,
                                                std::size_t out_port,
                                                Priority priority,
                                                const Stream& arrival) const {
  Shard& s = shard_at(shard);
  const LockOrderAudit::Scope audit(shard);
  const SharedLock lock(s.mutex);
  return bitstream_at(s).check(in_port, out_port, priority, arrival);
}

ConcurrentCac::CheckResult ConcurrentCac::admit(
    std::size_t shard, ConnectionId id, std::size_t in_port,
    std::size_t out_port, Priority priority, const Stream& arrival,
    double lease_expiry) {
  Shard& s = shard_at(shard);
  const LockOrderAudit::Scope audit(shard);
  const ExclusiveLock lock(s.mutex);
  SwitchCac& cac = bitstream_mut(s);
  // Authoritative re-validation: any speculative check the caller ran
  // under the shared lock may be stale by now.
  CheckResult result = cac.check(in_port, out_port, priority, arrival);
  if (result.admitted) {
    cac.add(id, in_port, out_port, priority, arrival, lease_expiry);
    s.cac->prime();
  }
  return result;
}

ConcurrentCac::PathResult ConcurrentCac::admit_path(
    std::span<const HopSpec> hops, ConnectionId id, double lease_expiry,
    PathAcceptance accept, void* accept_ctx) {
  PathResult result;
  if (hops.empty()) return result;

  // Canonical multi-shard acquisition: ascending shard id, each shard
  // locked once even if the path crosses it twice.
  const ShardLockSet locks(*this, hops);

  // Check-all-then-commit-all.  With every involved shard exclusively
  // locked this is decision-identical to the serial hop-by-hop walk:
  // the hops reserve on distinct switches, so no hop's check can see
  // another hop's commit of the same connection.
  result.hops.reserve(hops.size());
  for (std::size_t h = 0; h < hops.size(); ++h) {
    const HopSpec& hop = hops[h];
    result.hops.push_back(locks.point(hop.shard).check(
        hop.in_port, hop.out_port, hop.priority, hop.arrival));
    if (!result.hops.back().admitted) {
      result.rejecting_hop = h;
      return result;
    }
  }
  if (accept != nullptr && !accept(result.hops, accept_ctx)) {
    return result;
  }
  for (const HopSpec& hop : hops) {
    locks.point(hop.shard).add(id, hop.in_port, hop.out_port, hop.priority,
                               hop.arrival, lease_expiry);
  }
  for (const std::size_t shard : locks.shards()) {
    locks.point(shard).prime();
  }
  result.admitted = true;
  return result;
}

bool ConcurrentCac::remove(std::size_t shard, ConnectionId id) {
  Shard& s = shard_at(shard);
  const LockOrderAudit::Scope audit(shard);
  const ExclusiveLock lock(s.mutex);
  const bool removed = s.cac->remove(id);
  if (removed) s.cac->prime();
  return removed;
}

void ConcurrentCac::queue_remove(std::size_t shard, ConnectionId id) {
  Shard& s = shard_at(shard);
  const MutexLock lock(s.pending_mutex);
  s.pending_removals.push_back(id);
}

std::size_t ConcurrentCac::drain_removals() {
  std::size_t removed = 0;
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    Shard& s = *shards_[shard];
    std::vector<ConnectionId> batch;
    {
      const MutexLock lock(s.pending_mutex);
      batch.swap(s.pending_removals);
    }
    if (batch.empty()) continue;
    const LockOrderAudit::Scope audit(shard);
    const ExclusiveLock lock(s.mutex);
    removed += s.cac->remove_many(batch);
    s.cac->prime();
  }
  return removed;
}

std::size_t ConcurrentCac::pending_removals() const {
  std::size_t pending = 0;
  for (const auto& shard : shards_) {
    Shard& s = *shard;
    const MutexLock lock(s.pending_mutex);
    pending += s.pending_removals.size();
  }
  return pending;
}

std::vector<ConnectionId> ConcurrentCac::reclaim(std::size_t shard,
                                                 double now) {
  Shard& s = shard_at(shard);
  const LockOrderAudit::Scope audit(shard);
  const ExclusiveLock lock(s.mutex);
  std::vector<ConnectionId> reclaimed = s.cac->reclaim(now);
  if (!reclaimed.empty()) s.cac->prime();
  return reclaimed;
}

std::vector<ConnectionId> ConcurrentCac::reclaim_all(double now) {
  std::vector<ConnectionId> reclaimed;
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    std::vector<ConnectionId> part = reclaim(shard, now);
    reclaimed.insert(reclaimed.end(), part.begin(), part.end());
  }
  return reclaimed;
}

bool ConcurrentCac::renew_lease(std::size_t shard, ConnectionId id,
                                double lease_expiry) {
  Shard& s = shard_at(shard);
  const LockOrderAudit::Scope audit(shard);
  const ExclusiveLock lock(s.mutex);
  return s.cac->renew_lease(id, lease_expiry);
}

bool ConcurrentCac::make_permanent(std::size_t shard, ConnectionId id) {
  Shard& s = shard_at(shard);
  const LockOrderAudit::Scope audit(shard);
  const ExclusiveLock lock(s.mutex);
  return s.cac->make_permanent(id);
}

bool ConcurrentCac::contains(std::size_t shard, ConnectionId id) const {
  Shard& s = shard_at(shard);
  const LockOrderAudit::Scope audit(shard);
  const SharedLock lock(s.mutex);
  return s.cac->contains(id);
}

std::size_t ConcurrentCac::connection_count() const {
  std::size_t count = 0;
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    Shard& s = *shards_[shard];
    const LockOrderAudit::Scope audit(shard);
    const SharedLock lock(s.mutex);
    count += s.cac->connection_count();
  }
  return count;
}

bool ConcurrentCac::state_consistent() const {
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    Shard& s = *shards_[shard];
    const LockOrderAudit::Scope audit(shard);
    const SharedLock lock(s.mutex);
    if (!s.cac->state_consistent()) return false;
  }
  return true;
}

bool ConcurrentCac::bandwidth_conserved() const {
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    Shard& s = *shards_[shard];
    const LockOrderAudit::Scope audit(shard);
    const SharedLock lock(s.mutex);
    if (!s.cac->bandwidth_conserved()) return false;
  }
  return true;
}

bool ConcurrentCac::cache_coherent() const {
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    Shard& s = *shards_[shard];
    const LockOrderAudit::Scope audit(shard);
    const SharedLock lock(s.mutex);
    if (!s.cac->cache_coherent()) return false;
  }
  return true;
}

std::optional<double> ConcurrentCac::computed_bound(std::size_t shard,
                                                    std::size_t out_port,
                                                    Priority priority) const {
  Shard& s = shard_at(shard);
  const LockOrderAudit::Scope audit(shard);
  const SharedLock lock(s.mutex);
  return s.cac->computed_bound(out_port, priority);
}

const SwitchCac& ConcurrentCac::shard_state(std::size_t shard) const
    // Justified escape: documented quiesced-inspection API (tests,
    // benchmarks) — the caller guarantees no concurrent writers, which
    // no lock acquisition here could express or improve on.
    RTCAC_NO_THREAD_SAFETY_ANALYSIS {
  Shard& s = shard_at(shard);
  const SwitchCac* cac = s.cac->bitstream();
  RTCAC_REQUIRE(cac != nullptr,
                "ConcurrentCac::shard_state requires the bit-stream policy");
  return *cac;
}

const PolicyCac& ConcurrentCac::shard_point(std::size_t shard) const
    // Justified escape: same quiesced-inspection contract as
    // shard_state above.
    RTCAC_NO_THREAD_SAFETY_ANALYSIS {
  return *shard_at(shard).cac;
}

}  // namespace rtcac
