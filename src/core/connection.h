// rtcac/core/connection.h
//
// Connection-level vocabulary shared by the CAC engine, the signaling
// layer and the simulator: connection identifiers, QoS requests and the
// per-connection record a switch keeps (Section 4.3 of the paper).

#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "core/traffic.h"

namespace rtcac {

/// Network-unique connection identifier (assigned by the connection
/// manager / signaling layer; a stand-in for the ATM VPI/VCI pair).
using ConnectionId = std::uint64_t;

inline constexpr ConnectionId kInvalidConnection =
    std::numeric_limits<ConnectionId>::max();

/// Static transmission priority at a switch.  0 is the *highest* priority;
/// larger values are served only when all smaller levels are empty.
using Priority = std::uint32_t;

/// What a source end system asks the network for in a SETUP message:
/// a traffic contract plus an end-to-end queueing delay bound D
/// (cell times).  Successful establishment means the network guarantees
/// cells conforming to `traffic` are queued for at most `deadline` in
/// total across all hops.
struct QosRequest {
  TrafficDescriptor traffic;
  double deadline = std::numeric_limits<double>::infinity();
  Priority priority = 0;

  [[nodiscard]] std::string to_string() const {
    return traffic.to_string() + " D=" + std::to_string(deadline) +
           " prio=" + std::to_string(priority);
  }
};

}  // namespace rtcac
