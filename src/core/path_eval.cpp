// rtcac/core/path_eval.cpp

#include "core/path_eval.h"

#include <sstream>

#include "core/stream_ops.h"
#include "util/contract.h"

namespace rtcac {

const char* to_string(RejectCode code) noexcept {
  switch (code) {
    case RejectCode::kNone:
      return "none";
    case RejectCode::kPriority:
      return "priority";
    case RejectCode::kAdmission:
      return "admission";
    case RejectCode::kDeadline:
      return "deadline";
    case RejectCode::kTimeout:
      return "timeout";
    case RejectCode::kNoRoute:
      return "no-route";
  }
  return "?";
}

namespace {

/// The one SwitchCheckResult -> HopVerdict conversion, shared by the
/// live BitstreamPoint::check and the snapshot check so the two paths
/// cannot drift (same bound selection, same detail string move).
HopVerdict to_bitstream_verdict(SwitchCheckResult result, double advertised) {
  HopVerdict verdict;
  verdict.admitted = result.admitted;
  verdict.bound = result.admitted ? result.bound_at_priority.value() : 0.0;
  verdict.advertised = advertised;
  verdict.detail = std::move(result.reason);
  return verdict;
}

/// Immutable snapshot of one SwitchCac out-port: the exported sections
/// plus the shared per-point check algorithm (core/point_snapshot.h) —
/// decision- and string-identical to the live check by construction.
class BitstreamPointSnapshot final : public PointSnapshot {
 public:
  explicit BitstreamPointSnapshot(
      std::shared_ptr<const BasicPointSections<double>> sections)
      : sections_(std::move(sections)) {}

  [[nodiscard]] HopVerdict check(std::size_t in_port, Priority priority,
                                 const std::any& arrival) const override {
    RTCAC_REQUIRE(in_port < sections_->in_ports &&
                      priority < sections_->sections.size(),
                  "SwitchCac: port or priority out of range");
    const auto& stream = std::any_cast<const BitStream&>(arrival);
    SwitchCheckResult result = check_point_view<double>(
        sections_->view(), sections_->in_ports, sections_->sections.size(),
        sections_->out_port, in_port, priority, stream);
    return to_bitstream_verdict(std::move(result),
                                sections_->sections[priority]->advertised);
  }

  [[nodiscard]] const BasicPointSections<double>& sections() const noexcept {
    return *sections_;
  }

 private:
  std::shared_ptr<const BasicPointSections<double>> sections_;
};

/// PolicyCac adapter over the paper's SwitchCac check (Alg. 4.1).
class BitstreamPoint final : public PolicyCac {
 public:
  explicit BitstreamPoint(const PointConfig& config)
      : cac_(SwitchCac::Config{config.in_ports, config.out_ports,
                               config.priorities, config.advertised_bound,
                               config.coalesce_budget}) {}

  [[nodiscard]] double advertised(std::size_t out_port,
                                  Priority priority) const override {
    return cac_.advertised(out_port, priority);
  }

  [[nodiscard]] std::any prepare(const TrafficDescriptor& traffic,
                                 double cdv) const override {
    return std::any(PathEvaluator::bitstream_arrival(traffic, cdv));
  }

  [[nodiscard]] HopVerdict check(std::size_t in_port, std::size_t out_port,
                                 Priority priority,
                                 const std::any& arrival) const override {
    const auto& stream = std::any_cast<const BitStream&>(arrival);
    SwitchCheckResult result = cac_.check(in_port, out_port, priority, stream);
    return to_bitstream_verdict(std::move(result),
                                cac_.advertised(out_port, priority));
  }

  [[nodiscard]] std::shared_ptr<const PointSnapshot> export_point_snapshot(
      std::size_t out_port, const PointSnapshot* previous,
      std::span<const std::size_t> stale_priorities) const override {
    // The contract guarantees `previous` came from this point's own
    // export (same policy, same out-port), so the downcast is safe.
    const auto* prev = static_cast<const BitstreamPointSnapshot*>(previous);
    return std::make_shared<BitstreamPointSnapshot>(cac_.export_point_sections(
        out_port, prev != nullptr ? &prev->sections() : nullptr,
        stale_priorities));
  }

  [[nodiscard]] std::optional<std::vector<std::size_t>> dirty_queues()
      const override {
    return cac_.dirty_queue_keys();
  }

  void add(ConnectionId id, std::size_t in_port, std::size_t out_port,
           Priority priority, const std::any& arrival,
           double lease_expiry) override {
    cac_.add(id, in_port, out_port, priority,
             std::any_cast<const BitStream&>(arrival), lease_expiry);
  }

  bool remove(ConnectionId id) override { return cac_.remove(id); }
  std::size_t remove_many(std::span<const ConnectionId> ids) override {
    return cac_.remove_many(ids);
  }
  [[nodiscard]] bool contains(ConnectionId id) const override {
    return cac_.contains(id);
  }
  bool renew_lease(ConnectionId id, double lease_expiry) override {
    return cac_.renew_lease(id, lease_expiry);
  }
  bool make_permanent(ConnectionId id) override {
    return cac_.make_permanent(id);
  }
  std::vector<ConnectionId> reclaim(double now) override {
    return cac_.reclaim(now);
  }
  [[nodiscard]] std::optional<double> computed_bound(
      std::size_t out_port, Priority priority) const override {
    return cac_.computed_bound(out_port, priority);
  }
  [[nodiscard]] std::size_t connection_count() const override {
    return cac_.connection_count();
  }
  void prime() const override { cac_.prime_caches(); }
  [[nodiscard]] bool state_consistent() const override {
    return cac_.state_consistent();
  }
  [[nodiscard]] bool bandwidth_conserved() const override {
    return cac_.bandwidth_conserved();
  }
  [[nodiscard]] bool cache_coherent() const override {
    return cac_.cache_coherent();
  }
  [[nodiscard]] const SwitchCac* bitstream() const noexcept override {
    return &cac_;
  }

 private:
  SwitchCac cac_;
};

}  // namespace

std::unique_ptr<PolicyCac> BitstreamCacPolicy::make_point(
    const PointConfig& config) const {
  return std::make_unique<BitstreamPoint>(config);
}

const BitstreamCacPolicy& BitstreamCacPolicy::instance() noexcept {
  static const BitstreamCacPolicy policy;
  return policy;
}

double PathEvaluator::accumulated_cdv(
    std::span<const double> upstream_bounds) const {
  return accumulate_cdv(params_.cdv_policy, upstream_bounds);
}

double PathEvaluator::cdv_before(std::span<const Hop> hops,
                                 std::size_t hop_index,
                                 Priority priority) const {
  RTCAC_REQUIRE(hop_index <= hops.size(),
                "PathEvaluator::cdv_before: hop index out of range");
  std::vector<double> upstream;
  upstream.reserve(hop_index);
  for (std::size_t h = 0; h < hop_index; ++h) {
    upstream.push_back(hops[h].cac->advertised(hops[h].out_port, priority));
  }
  return accumulated_cdv(upstream);
}

BitStream PathEvaluator::bitstream_arrival(const TrafficDescriptor& traffic,
                                           double cdv) {
  return delay(traffic.to_bitstream(), cdv);
}

PathEvaluator::HopEvaluation PathEvaluator::evaluate_hop(
    std::span<const Hop> hops, std::size_t hop_index,
    const QosRequest& request) const {
  RTCAC_REQUIRE(hop_index < hops.size(),
                "PathEvaluator::evaluate_hop: hop index out of range");
  const Hop& hop = hops[hop_index];
  RTCAC_REQUIRE(hop.cac != nullptr, "PathEvaluator: hop has no policy state");
  const double cdv = cdv_before(hops, hop_index, request.priority);
  HopEvaluation eval;
  eval.arrival = hop.cac->prepare(request.traffic, cdv);
  eval.verdict =
      hop.cac->check(hop.in_port, hop.out_port, request.priority, eval.arrival);
  return eval;
}

void PathEvaluator::commit_hop(const Hop& hop, ConnectionId id,
                               Priority priority, const std::any& arrival,
                               double lease_expiry) {
  RTCAC_REQUIRE(hop.cac != nullptr, "PathEvaluator: hop has no policy state");
  hop.cac->add(id, hop.in_port, hop.out_port, priority, arrival, lease_expiry);
}

double PathEvaluator::promised(double e2e_bound, double e2e_advertised) const {
  return params_.guarantee == GuaranteeMode::kAdvertised ? e2e_advertised
                                                         : e2e_bound;
}

bool PathEvaluator::deadline_met(double e2e_bound, double e2e_advertised,
                                 double deadline) const {
  return !(promised(e2e_bound, e2e_advertised) > deadline);
}

RejectReason PathEvaluator::priority_rejection() {
  RejectReason reason;
  reason.code = RejectCode::kPriority;
  reason.detail = "priority out of range";
  return reason;
}

RejectReason PathEvaluator::no_route_rejection() {
  RejectReason reason;
  reason.code = RejectCode::kNoRoute;
  reason.detail = "no route avoiding the failed set";
  return reason;
}

RejectReason PathEvaluator::hop_rejection(std::size_t hop,
                                          std::string_view point_name,
                                          std::string_view detail) {
  RejectReason reason;
  reason.hop = hop;
  reason.code = RejectCode::kAdmission;
  std::ostringstream text;
  text << "rejected at " << point_name << ": " << detail;
  reason.detail = text.str();
  return reason;
}

RejectReason PathEvaluator::deadline_rejection(std::size_t hop_count,
                                               double e2e_bound,
                                               double e2e_advertised,
                                               double deadline) const {
  if (deadline_met(e2e_bound, e2e_advertised, deadline)) {
    return {};
  }
  RejectReason reason;
  reason.hop = hop_count;
  reason.code = RejectCode::kDeadline;
  std::ostringstream text;
  text << "end-to-end bound " << promised(e2e_bound, e2e_advertised)
       << " exceeds deadline " << deadline;
  reason.detail = text.str();
  return reason;
}

PathEvaluator::Decision PathEvaluator::evaluate(
    std::span<const Hop> hops, const QosRequest& request) const {
  Decision decision;
  if (!priority_valid(request.priority)) {
    decision.reject = priority_rejection();
    return decision;
  }
  decision.hop_bounds.reserve(hops.size());
  decision.arrivals.reserve(hops.size());
  for (std::size_t h = 0; h < hops.size(); ++h) {
    HopEvaluation eval = evaluate_hop(hops, h, request);
    if (!eval.verdict.admitted) {
      Decision rejected;
      rejected.reject = hop_rejection(h, hops[h].name, eval.verdict.detail);
      return rejected;
    }
    decision.hop_bounds.push_back(eval.verdict.bound);
    decision.e2e_bound += eval.verdict.bound;
    decision.e2e_advertised += eval.verdict.advertised;
    decision.arrivals.push_back(std::move(eval.arrival));
  }
  decision.reject =
      deadline_rejection(hops.size(), decision.e2e_bound,
                         decision.e2e_advertised, request.deadline);
  if (decision.reject.rejected()) {
    Decision rejected;
    rejected.reject = std::move(decision.reject);
    return rejected;
  }
  decision.admitted = true;
  return decision;
}

void PathEvaluator::commit(std::span<const Hop> hops, ConnectionId id,
                           const QosRequest& request,
                           std::span<const std::any> arrivals,
                           double lease_expiry) const {
  RTCAC_REQUIRE(arrivals.size() == hops.size(),
                "PathEvaluator::commit: arrival/hop count mismatch");
  for (std::size_t h = 0; h < hops.size(); ++h) {
    commit_hop(hops[h], id, request.priority, arrivals[h], lease_expiry);
  }
}

// --- DeltaTransaction --------------------------------------------------

PathEvaluator::Decision PathEvaluator::evaluate_delta(
    const DeltaTransaction& txn) const {
  if (txn.acquire.empty()) {
    // Pure release: nothing to validate — dropping load cannot violate
    // any bound already promised.
    Decision decision;
    decision.admitted = true;
    return decision;
  }
  RTCAC_REQUIRE(txn.request != nullptr,
                "DeltaTransaction: acquire side needs a descriptor");
  // The ordinary walk *is* the delta check: the release side's
  // reservations are still part of every queueing point's load, so the
  // verdict covers the combined old+new state.
  return evaluate(txn.acquire, *txn.request);
}

void PathEvaluator::commit_delta(const DeltaTransaction& txn,
                                 std::span<const std::any> arrivals) const {
  if (txn.acquire.empty()) {
    release_path(txn.release, txn.id);
    return;
  }
  RTCAC_REQUIRE(txn.request != nullptr,
                "DeltaTransaction: acquire side needs a descriptor");
  if (txn.release.empty()) {
    commit(txn.acquire, txn.id, *txn.request, arrivals, txn.lease_expiry);
    return;
  }
  RTCAC_REQUIRE(
      txn.provisional != kInvalidConnection && txn.provisional != txn.id,
      "DeltaTransaction: both-sided transaction needs a fresh provisional id");
  commit_delta_hops(txn.release, txn.acquire, txn.id, txn.provisional,
                    txn.request->priority, arrivals, txn.lease_expiry);
}

PathEvaluator::Decision PathEvaluator::execute(
    const DeltaTransaction& txn) const {
  Decision decision = evaluate_delta(txn);
  if (decision.admitted) {
    commit_delta(txn, decision.arrivals);
  }
  return decision;
}

void PathEvaluator::commit_delta_hops(std::span<const Hop> release,
                                      std::span<const Hop> acquire,
                                      ConnectionId id,
                                      ConnectionId provisional,
                                      Priority priority,
                                      std::span<const std::any> arrivals,
                                      double lease_expiry) {
  RTCAC_REQUIRE(arrivals.size() == acquire.size(),
                "DeltaTransaction: arrival/hop count mismatch");
  // Make before break: the acquire side goes in first, under the
  // provisional id, while the release side is still committed.
  for (std::size_t h = 0; h < acquire.size(); ++h) {
    commit_hop(acquire[h], provisional, priority, arrivals[h], lease_expiry);
  }
  finalize_delta(release, acquire, id, provisional, priority, arrivals,
                 lease_expiry);
}

void PathEvaluator::finalize_delta(std::span<const Hop> release,
                                   std::span<const Hop> acquire,
                                   ConnectionId id, ConnectionId provisional,
                                   Priority priority,
                                   std::span<const std::any> arrivals,
                                   double lease_expiry) {
  // Break: the provisional reservations already protect the connection,
  // so there is no zero-reservation window.
  release_path(release, id);
  rebind_hops(acquire, provisional, id, priority, arrivals, lease_expiry);
}

std::size_t PathEvaluator::release_path(std::span<const Hop> hops,
                                        ConnectionId id) {
  std::size_t released = 0;
  for (const Hop& hop : hops) {
    RTCAC_REQUIRE(hop.cac != nullptr, "PathEvaluator: hop has no policy state");
    if (hop.cac->remove(id)) ++released;
  }
  return released;
}

PathEvaluator::Decision PathEvaluator::admit_delta(
    std::span<const Hop> hops, ConnectionId provisional_id,
    const QosRequest& request, double lease_expiry) const {
  DeltaTransaction txn;
  txn.acquire = hops;
  txn.id = provisional_id;
  txn.request = &request;
  txn.lease_expiry = lease_expiry;
  return execute(txn);
}

void PathEvaluator::rebind(std::span<const Hop> hops,
                           ConnectionId provisional_id, ConnectionId final_id,
                           const QosRequest& request,
                           std::span<const std::any> arrivals,
                           double lease_expiry) const {
  rebind_hops(hops, provisional_id, final_id, request.priority, arrivals,
              lease_expiry);
}

void PathEvaluator::rebind_hops(std::span<const Hop> hops,
                                ConnectionId provisional_id,
                                ConnectionId final_id, Priority priority,
                                std::span<const std::any> arrivals,
                                double lease_expiry) {
  RTCAC_REQUIRE(arrivals.size() == hops.size(),
                "PathEvaluator::rebind: arrival/hop count mismatch");
  for (std::size_t h = 0; h < hops.size(); ++h) {
    RTCAC_ASSERT(
        hops[h].cac != nullptr && hops[h].cac->contains(provisional_id),
        "PathEvaluator::rebind: provisional reservation missing");
    hops[h].cac->remove(provisional_id);
    commit_hop(hops[h], final_id, priority, arrivals[h], lease_expiry);
  }
}

}  // namespace rtcac
