// rtcac/core/point_snapshot.h
//
// The paper's per-queueing-point admission check (Section 4.3, Alg. 4.1)
// expressed once, over an abstract *view* of one out-port's derived
// streams — so the exact same arithmetic (and the exact same rejection
// strings) runs against two different backings:
//
//   * the live, dirty-tracked caches inside BasicSwitchCac (the serial /
//     exclusive-lock path), and
//   * an immutable, heap-shared export of those caches (BasicQueueSection
//     / BasicPointSections below) — the RCU-style snapshot the
//     concurrency layer (core/concurrent_cac.h) publishes per queueing
//     point so readers can run the check with zero shared_mutex traffic.
//
// A View provides, for one fixed out-port j:
//
//   cell(i, q)         S_ia(i,j,q)   — raw aggregate arrival of a cell
//   filtered(i, q)     S_if(i,j,q)   = filter(S_ia)
//   hp_cell(i, q)      filter(mux_{r<q} S_ia(i,j,r))
//   offered(q)         S_oa(j,q)     = mux_i S_if(i,j,q)
//   hp_filtered(q)     S_of(j,q)
//   bound(q)           D'(j,q) over the committed set
//   advertised(q)      Dmax(j,q)
//
// check_point_view() composes the candidate's trial aggregates from those
// accessors exactly the way the pre-snapshot BasicSwitchCac::check did
// (the candidate's own cell is the only stream re-filtered; every other
// input is consumed as-is), so a snapshot whose sections equal the live
// caches yields a bitwise-identical CheckResult — the property the
// version-stamp protocol in concurrent_cac.h relies on.
//
// This header holds plain data plus shared_ptr section handles only — no
// atomics, no locks; publication and reclamation of snapshots live
// entirely in core/concurrent_cac.* (lint rule `concurrency-state`).
// Reclamation is shared_ptr reference counting: a reader that pinned a
// snapshot keeps every section alive for the duration of its check, no
// matter how many newer snapshots are published meanwhile.

#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/bitstream.h"
#include "core/connection.h"
#include "core/delay_bound.h"
#include "core/stream_ops.h"

namespace rtcac {

/// Admission verdict for one switch, with the computed worst-case bounds
/// that justify it.  nullopt bounds mean "unbounded" (always a
/// rejection).
template <typename Num>
struct BasicSwitchCheckResult {
  bool admitted = false;
  /// Computed worst-case queueing delay D'(j,p) at the connection's own
  /// priority, including the candidate connection (cell times).
  std::optional<Num> bound_at_priority;
  /// Computed bounds D'(j,q) for every priority q at the outgoing port,
  /// including the candidate (index = priority).  Entries at q < the
  /// candidate's priority are informational only (they never gate the
  /// verdict) and, on the optimistic snapshot path, may reflect an older
  /// epoch than the verdict-relevant window [priority, priorities).
  std::vector<std::optional<Num>> bounds;
  /// Human-readable rejection reason; empty when admitted.
  std::string reason;
};

/// Immutable export of one queue's (out-port × priority) derived streams,
/// section-shared across snapshot generations: a republication after a
/// mutation at priority r rebuilds only the sections r and below it feeds
/// and re-links the untouched ones, so snapshot cost tracks the dirty
/// set, not the switch size.
template <typename Num>
struct BasicQueueSection {
  using Stream = BasicBitStream<Num>;
  std::vector<Stream> cells;     ///< S_ia per in-port
  std::vector<Stream> filtered;  ///< S_if per in-port
  std::vector<Stream> hp_cells;  ///< higher-priority union per in-port
  Stream offered;                ///< S_oa
  Stream hp_filtered;            ///< S_of
  std::optional<Num> bound;      ///< D' over the committed set
  Num advertised = Num(0);       ///< Dmax
};

/// Immutable snapshot of one out-port: one shared section per priority.
template <typename Num>
struct BasicPointSections {
  std::size_t out_port = 0;  ///< for the canonical rejection string
  std::size_t in_ports = 0;
  std::vector<std::shared_ptr<const BasicQueueSection<Num>>> sections;

  /// View adapter over the sections, satisfying check_point_view's
  /// concept.
  class View {
   public:
    explicit View(const BasicPointSections& owner) : owner_(owner) {}
    [[nodiscard]] const BasicBitStream<Num>& cell(std::size_t in,
                                                  Priority q) const {
      return owner_.sections[q]->cells[in];
    }
    [[nodiscard]] const BasicBitStream<Num>& filtered(std::size_t in,
                                                      Priority q) const {
      return owner_.sections[q]->filtered[in];
    }
    [[nodiscard]] const BasicBitStream<Num>& hp_cell(std::size_t in,
                                                     Priority q) const {
      return owner_.sections[q]->hp_cells[in];
    }
    [[nodiscard]] const BasicBitStream<Num>& offered(Priority q) const {
      return owner_.sections[q]->offered;
    }
    [[nodiscard]] const BasicBitStream<Num>& hp_filtered(Priority q) const {
      return owner_.sections[q]->hp_filtered;
    }
    [[nodiscard]] const std::optional<Num>& bound(Priority q) const {
      return owner_.sections[q]->bound;
    }
    [[nodiscard]] Num advertised(Priority q) const {
      return owner_.sections[q]->advertised;
    }

   private:
    const BasicPointSections& owner_;
  };

  [[nodiscard]] View view() const { return View(*this); }
};

/// The paper's CAC check for one candidate at one out-port, over any
/// View (live caches or immutable sections).  Steps 1-4 for the
/// candidate's own priority, Step 5 for every lower level; levels above
/// the candidate cannot be affected and keep their previously verified
/// bounds.
template <typename Num, typename View>
[[nodiscard]] BasicSwitchCheckResult<Num> check_point_view(
    const View& view, std::size_t in_ports, std::size_t priorities,
    std::size_t out_port, std::size_t in_port, Priority priority,
    const BasicBitStream<Num>& arrival) {
  using Stream = BasicBitStream<Num>;
  BasicSwitchCheckResult<Num> result;
  result.bounds.assign(priorities, std::nullopt);

  for (Priority q = 0; q < priorities; ++q) {
    std::optional<Num> bound;
    if (q < priority) {
      bound = view.bound(q);
    } else if (q == priority) {
      // Candidate raises the offered load of its own queue; the traffic
      // above it is unchanged.  It joins cell (in_port, q) *before* the
      // in-link filter; every other in-port contributes its filtered
      // stream untouched.
      const Stream trial = filter(multiplex(view.cell(in_port, q), arrival));
      std::vector<const Stream*> parts;
      parts.reserve(in_ports);
      for (std::size_t i = 0; i < in_ports; ++i) {
        parts.push_back(i == in_port ? &trial : &view.filtered(i, q));
      }
      const Stream offered = multiplex_all(parts);
      bound = delay_bound(offered, view.hp_filtered(q));
    } else {
      // Candidate is higher-priority traffic for queue q; q's own
      // offered aggregate is unchanged.  Only in_port's higher-priority
      // union changes: rebuild it with the candidate multiplexed into
      // its own cell and reuse the unions of every other in-port.
      const Stream trial_cell = multiplex(view.cell(in_port, priority),
                                          arrival);
      std::vector<const Stream*> hp_parts;
      hp_parts.reserve(q);
      for (Priority r = 0; r < q; ++r) {
        hp_parts.push_back(r == priority ? &trial_cell
                                         : &view.cell(in_port, r));
      }
      const Stream trial_hp = filter(multiplex_all(hp_parts));
      std::vector<const Stream*> parts;
      parts.reserve(in_ports);
      for (std::size_t i = 0; i < in_ports; ++i) {
        parts.push_back(i == in_port ? &trial_hp : &view.hp_cell(i, q));
      }
      const Stream hp = filter(multiplex_all(parts));
      bound = delay_bound(view.offered(q), hp);
    }
    result.bounds[q] = bound;
    if (q == priority) {
      result.bound_at_priority = bound;
    }
    if (q >= priority) {
      const Num dmax = view.advertised(q);
      if (!bound.has_value() || *bound > dmax) {
        std::ostringstream os;
        os << "delay bound at out-port " << out_port << " priority " << q
           << " would be ";
        if (bound.has_value()) {
          os << *bound;
        } else {
          os << "unbounded";
        }
        os << " > advertised " << dmax;
        result.admitted = false;
        result.reason = os.str();
        return result;
      }
    }
  }
  result.admitted = true;
  return result;
}

}  // namespace rtcac
