#include "core/traffic.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/contract.h"

namespace rtcac {

void TrafficDescriptor::validate() const {
  RTCAC_REQUIRE(pcr > 0 && !(pcr > 1.0),
                "TrafficDescriptor: PCR must be in (0, 1], got " +
                    std::to_string(pcr));
  RTCAC_REQUIRE(scr > 0 && !(scr > pcr),
                "TrafficDescriptor: SCR must be in (0, PCR], got " +
                    std::to_string(scr));
  RTCAC_REQUIRE(mbs >= 1, "TrafficDescriptor: MBS must be >= 1");
}

BitStream TrafficDescriptor::to_bitstream() const {
  validate();
  // Algorithm 2.1: one cell at link rate, the rest of the burst at PCR,
  // then the SCR tail.  Segments whose span would be empty are skipped so
  // the start times stay strictly increasing; the BitStream constructor
  // coalesces equal-rate neighbours (e.g. CBR, where SCR == PCR).
  std::vector<Segment> segs;
  segs.push_back(Segment{1.0, 0.0});
  const double burst_end = 1.0 + static_cast<double>(mbs - 1) / pcr;
  if (mbs > 1 && pcr < 1.0) {
    segs.push_back(Segment{pcr, 1.0});
  }
  if (scr < (mbs > 1 ? pcr : 1.0)) {
    segs.push_back(Segment{scr, burst_end});
  }
  return BitStream(std::move(segs));
}

ExactBitStream TrafficDescriptor::to_exact_bitstream(std::int64_t scale) const {
  validate();
  RTCAC_REQUIRE(scale > 0, "to_exact_bitstream: scale must be positive");
  const auto as_rational = [scale](double rate, const char* name) {
    const double scaled = rate * static_cast<double>(scale);
    const double rounded = std::round(scaled);
    RTCAC_REQUIRE(!(std::abs(scaled - rounded) > 1e-6),
                  std::string("to_exact_bitstream: ") + name +
                      " is not an exact multiple of 1/scale");
    return Rational(static_cast<std::int64_t>(rounded), scale);
  };
  const Rational rp = as_rational(pcr, "PCR");
  const Rational rs = as_rational(scr, "SCR");

  std::vector<ExactSegment> segs;
  segs.push_back(ExactSegment{Rational(1), Rational(0)});
  const Rational burst_end =
      Rational(1) + Rational(static_cast<std::int64_t>(mbs) - 1) / rp;
  if (mbs > 1 && rp < Rational(1)) {
    segs.push_back(ExactSegment{rp, Rational(1)});
  }
  if (rs < (mbs > 1 ? rp : Rational(1))) {
    segs.push_back(ExactSegment{rs, burst_end});
  }
  return ExactBitStream(std::move(segs));
}

std::string TrafficDescriptor::to_string() const {
  std::ostringstream os;
  if (is_cbr()) {
    os << "CBR(PCR=" << pcr << ")";
  } else {
    os << "VBR(PCR=" << pcr << ", SCR=" << scr << ", MBS=" << mbs << ")";
  }
  return os.str();
}

// The source contract is the ATM-Forum dual GCRA: GCRA(1/PCR, 0) for peak
// spacing and GCRA(1/SCR, (MBS-1)(1/SCR - 1/PCR)) for the sustainable rate
// with burst tolerance.  This reading allows exactly MBS back-to-back
// cells at PCR and therefore matches the Algorithm 2.1 envelope bit for
// bit at cell boundaries.  The paper's Eq. (1) token recurrence, read
// literally (bucket of MBS whole tokens refilled at SCR), would admit
// 1 + (MBS-1)/(1 - SCR/PCR) cells at peak spacing — *more* than its own
// envelope covers whenever SCR is close to PCR — so we adopt the GCRA
// semantics (see DESIGN.md, "semantics decisions").

namespace {

struct DualGcraState {
  double tat_peak = 0;
  double tat_sustain = 0;
  double tau_sustain = 0;

  explicit DualGcraState(const TrafficDescriptor& td)
      : tau_sustain(static_cast<double>(td.mbs - 1) *
                    (1.0 / td.scr - 1.0 / td.pcr)) {}

  [[nodiscard]] double earliest() const {
    return std::max(tat_peak, tat_sustain - tau_sustain);
  }
  [[nodiscard]] bool conforming(double t) const {
    constexpr double kSlack = 1e-9;
    return t >= tat_peak - kSlack && t >= tat_sustain - tau_sustain - kSlack;
  }
  void commit(const TrafficDescriptor& td, double t) {
    tat_peak = std::max(t, tat_peak) + 1.0 / td.pcr;
    tat_sustain = std::max(t, tat_sustain) + 1.0 / td.scr;
  }
};

}  // namespace

std::vector<double> greedy_cell_times(const TrafficDescriptor& td,
                                      std::size_t count) {
  td.validate();
  std::vector<double> times;
  times.reserve(count);
  DualGcraState gcra(td);
  for (std::size_t k = 0; k < count; ++k) {
    const double t = gcra.earliest();
    gcra.commit(td, t);
    times.push_back(t);
  }
  return times;
}

bool conforms(const TrafficDescriptor& td,
              const std::vector<double>& cell_times) {
  td.validate();
  if (!std::is_sorted(cell_times.begin(), cell_times.end())) return false;
  DualGcraState gcra(td);
  for (const double t : cell_times) {
    if (!gcra.conforming(t)) return false;
    gcra.commit(td, t);
  }
  return true;
}

}  // namespace rtcac
