// rtcac/core/concurrent_cac.h
//
// Sharded, thread-safe admission engine core (docs/PERFORMANCE.md,
// "Parallel admission").  The paper's CAC is evaluated per switch along a
// path (§4.1, §4.3): one switch's decision depends only on that switch's
// own bookkeeping, which makes the network-level admission problem
// naturally shardable.  ConcurrentCac holds one PolicyCac (the pluggable
// per-queueing-point admission state of core/path_eval.h; the default is
// the paper's SwitchCac behind BitstreamCacPolicy) per shard, each
// guarded by its own annotated SharedMutex (util/thread_annotations.h).
//
// Two read paths, one write path:
//
//   * Optimistic snapshot checks (the default for policies that export
//     PointSnapshots): every queueing point — one (out-port, priority)
//     queue group per out-port — publishes an *immutable* snapshot of
//     its admission state through an atomic shared_ptr, stamped with the
//     per-queue version counters it was built from.  check_hop() loads
//     the snapshot with an acquire, validates the stamps of the queues
//     the verdict depends on (priorities [p, P) of the hop's out-port —
//     any state mutation at priority r invalidates every queue q >= r,
//     so these stamps cover the whole dependency cone), and evaluates
//     the candidate against the frozen state with ZERO shared_mutex
//     traffic.  Decision and reason-string identity with the live check
//     is by construction: both run the same check algorithm
//     (core/point_snapshot.h) over the same aggregates.  Reclamation is
//     shared_ptr reference counting — a reader that pinned a snapshot
//     keeps it alive across any number of newer publications.
//
//   * Locked fallback: when the stamps are stale, the reader first
//     self-refreshes the slot (publishing a fresh snapshot under the
//     slot's refresh mutex + the shard's *shared* lock — writers are
//     excluded, so the versions it freezes are exact), and only if the
//     state keeps moving falls back to a classic shared-lock check.
//     Policies that export no snapshots always take this path, which is
//     exactly the pre-snapshot behaviour.
//
//   * admit()/remove()/reclaim()/drain_removals() take the lock
//     *exclusive*; each commit epilogue (commit_epoch) reads the
//     policy's dirty-queue set, re-primes the caches, advances the
//     per-queue version counters, and republishes the affected
//     out-ports' snapshots.  Options::publish_window batches the
//     republication: within a window only versions advance (readers
//     self-refresh or fall back), and one publication amortizes the
//     whole window's exports.
//
// admit() remains the commit half of a two-phase check-then-commit, now
// with validate-on-commit: a speculative check returns a CheckStamp, and
// admit_path() re-checks only hops whose stamps went stale — a hop whose
// point did not change since the speculative check reuses that verdict
// under the exclusive lock.  A stale stamp can never over-admit: stamps
// are validated against the live version counters while the shard is
// exclusively locked, so any interleaved mutation forces the full
// re-check against the exact state the connection commits into.
//
//   * admit_path() commits one connection across several shards (the
//     hops of a route).  Locks are acquired in ascending shard order —
//     the canonical order that makes concurrent multi-hop commits
//     deadlock-free — and the hop checks run check-all-then-commit-all
//     inside the locked region.  Because distinct hops live on distinct
//     switches, this is decision-identical to the serial hop-by-hop
//     walk ConnectionManager::setup performs.
//
//   * queue_remove()/drain_removals() defer teardown commits so
//     churn-heavy workloads can batch them: one drain removes a shard's
//     whole backlog via PolicyCac::remove_many, which (for the paper's
//     policy) rebuilds every touched S_ia cell once (the PR-3 batched-
//     reclaim machinery) instead of once per connection.
//
// Per-hop arrivals are policy-erased (std::any, built by prepare() and
// reused across the speculative check and the exclusive-lock re-check +
// commit), so the generic path pays the arrival construction exactly
// once per hop.  prepare() and advertised() are lock-free: both touch
// only policy state that is immutable after construction.
//
// Memory visibility: all state written under a shard's exclusive lock
// (including the mutable caches filled by priming) happens-before any
// subsequent shared acquisition of the same lock, so locked readers
// always see fully-built streams.  Snapshot readers synchronize through
// the publication cell's spin bit (acquire in, release out on both the
// read and write paths — see PublishedCell for why
// std::atomic<std::shared_ptr> is not used) and never touch the
// mutable state at all.  Different shards share no mutable state.
//
// Lock order: the only lock ever held while acquiring a shard lock is
// an OutSlot::refresh_mutex, taken by *readers* (self-refresh) before
// the shard's shared lock; writers never touch a refresh mutex, so the
// refresh-mutex -> shard-lock edge is one-way and cycle-free
// (util/lock_order.h).  Multi-shard acquisition is confined to the
// ShardLockSet scoped capability (ascending shard ids, audited).
//
// The lock discipline above is machine-checked (docs/STATIC_ANALYSIS.md):
// shard state carries clang thread-safety annotations
// (util/thread_annotations.h) verified by the `tsa` preset, the
// `lock-order` lint rule confines multi-shard acquisition to the
// ShardLockSet scoped capability below, and util/lock_order.h asserts
// the ascending-shard runtime order in audit builds.
//
// Concurrency primitives are confined to this module, to
// util/thread_annotations.h, util/thread_pool.h and
// net/admission_engine.* by the `concurrency-state` lint rule
// (tools/rtcac_lint.py).

#pragma once

#include <any>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/path_eval.h"
#include "core/switch_cac.h"
#include "util/thread_annotations.h"

namespace rtcac {

class ConcurrentCac {
 public:
  using Stream = SwitchCac::Stream;
  using CheckResult = SwitchCac::CheckResult;

  /// Publication tuning.
  struct Options {
    /// Commits per shard between snapshot republications.  1 (the
    /// default) publishes eagerly after every commit; a window of N
    /// advances version stamps on every commit but exports snapshots
    /// only on every Nth, so a setup burst pays one export.  Readers
    /// in between self-refresh (or fall back to the shared lock), so
    /// correctness is unaffected — this trades read-path lock traffic
    /// against export amortization.  0 behaves as 1.
    std::size_t publish_window = 1;
  };

  /// One queueing point of a multi-shard path: which shard (switch) the
  /// hop crosses and how the connection is routed through it.  The
  /// arrival is policy-erased (PolicyCac::prepare / prepare()).
  struct HopSpec {
    std::size_t shard = 0;
    std::size_t in_port = 0;
    std::size_t out_port = 0;
    Priority priority = 0;
    std::any arrival;
  };

  /// Version witness of one optimistic check: the per-priority version
  /// stamps of the checked point at evaluation time (for a snapshot
  /// check, the snapshot's embedded build versions; for a locked check,
  /// the live counters frozen under the shared lock).  admit_path()
  /// compares the stamps against the live counters under the exclusive
  /// lock and reuses the speculative verdict on a match.  An empty
  /// `versions` vector is the null stamp and never validates.
  struct CheckStamp {
    std::size_t shard = 0;
    std::size_t out_port = 0;
    Priority priority = 0;
    std::vector<std::uint64_t> versions;
  };

  /// A speculative hop verdict plus the stamp that can prove it is
  /// still current at commit time.
  struct SpeculativeHop {
    HopVerdict verdict;
    CheckStamp stamp;
  };

  /// Verdict of admit_path(): per-hop verdicts up to (and including) the
  /// first rejecting hop.  `rejecting_hop` is the index into the hop
  /// span, or npos when every hop admitted (admission can then still
  /// fail the caller's acceptance predicate — `admitted` alone is
  /// authoritative).  hops_reused / hops_revalidated split the hops by
  /// whether a speculative verdict's stamp held at commit time.
  struct PathResult {
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
    bool admitted = false;
    std::size_t rejecting_hop = npos;
    std::vector<HopVerdict> hops;
    std::size_t hops_reused = 0;
    std::size_t hops_revalidated = 0;
  };

  /// Caller-supplied acceptance predicate evaluated after every hop
  /// check passed but before anything is committed (e.g. the end-to-end
  /// deadline test).  Returning false rejects without mutating state.
  using PathAcceptance = bool (*)(const std::vector<HopVerdict>&, void*);

  /// Scoped capability over the exclusive locks of every distinct shard
  /// a path crosses — the *only* way more than one shard lock may be
  /// held at once (lint rule `lock-order`).  Acquisition runs in the
  /// canonical ascending shard-id order that makes concurrent multi-hop
  /// commits deadlock-free, with LockOrderAudit (util/lock_order.h)
  /// asserting the discipline per thread in audit builds.  Because the
  /// locked set is dynamic, the clang analysis cannot name the
  /// individual capabilities; all guarded state reached while the set
  /// is held therefore goes through point()/publish_epoch(), which
  /// confines the per-site RTCAC_NO_THREAD_SAFETY_ANALYSIS escapes to
  /// this class.
  class RTCAC_SCOPED_CAPABILITY ShardLockSet {
   public:
    /// Exclusively locks the distinct shards of `hops`, ascending.
    ShardLockSet(ConcurrentCac& owner, std::span<const HopSpec> hops)
        RTCAC_ACQUIRE();
    ShardLockSet(const ShardLockSet&) = delete;
    ShardLockSet& operator=(const ShardLockSet&) = delete;
    ~ShardLockSet() RTCAC_RELEASE();

    /// The locked shard ids, ascending and distinct.
    [[nodiscard]] std::span<const std::size_t> shards() const noexcept {
      return shards_;
    }

    /// Exclusive access to a locked shard's policy state; asserts that
    /// `shard` is a member of the set.
    [[nodiscard]] PolicyCac& point(std::size_t shard) const;

    /// Validates `stamp` against the locked shard's live version
    /// counters: true iff no verdict-relevant queue of the stamped
    /// point changed since the stamp was taken.  Asserts membership.
    [[nodiscard]] bool stamp_current(const CheckStamp& stamp) const;

    /// The same validation over a *widened* invalidation cone:
    /// priorities [min(floor, stamp.priority), P) of the stamped
    /// out-port must be unchanged.  renegotiate_path() uses this with
    /// floor = the connection's old priority, so the stamps witness the
    /// union of the old and the new descriptor's dependency cones.
    [[nodiscard]] bool stamp_current(const CheckStamp& stamp,
                                     Priority floor) const;

    /// Commit epilogue for a locked shard that was mutated: advance the
    /// dirty queues' version stamps, re-prime, and (publish window
    /// permitting) republish the affected snapshots.  Asserts
    /// membership.
    void publish_epoch(std::size_t shard) const;

   private:
    ConcurrentCac& owner_;
    std::vector<std::size_t> shards_;
  };

  /// One queueing point per config entry, built by `policy`; shard ids
  /// are indices into `configs`.  Every shard starts fully primed, with
  /// all snapshots published (when the policy exports them).
  ConcurrentCac(const CacPolicy& policy,
                const std::vector<PointConfig>& configs);
  ConcurrentCac(const CacPolicy& policy,
                const std::vector<PointConfig>& configs,
                const Options& options);

  /// Bit-stream-policy convenience: one SwitchCac shard per config.
  explicit ConcurrentCac(const std::vector<SwitchCac::Config>& configs);
  ConcurrentCac(const std::vector<SwitchCac::Config>& configs,
                const Options& options);

  ConcurrentCac(const ConcurrentCac&) = delete;
  ConcurrentCac& operator=(const ConcurrentCac&) = delete;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// Whether `shard`'s policy exports snapshots (the optimistic read
  /// path is active for it).
  [[nodiscard]] bool snapshots_enabled(std::size_t shard) const;

  /// Live version counter of queue (out_port, priority) on `shard`
  /// (atomic read, no lock).  Advances on every commit that invalidates
  /// the queue; diagnostics and tests use it to observe epochs.
  [[nodiscard]] std::uint64_t point_version(std::size_t shard,
                                            std::size_t out_port,
                                            Priority priority) const;

  /// Advertised bound of queue (out_port, priority) on `shard`.
  /// Lock-free: advertised bounds are fixed at construction.
  [[nodiscard]] double advertised(std::size_t shard, std::size_t out_port,
                                  Priority priority) const;

  /// Policy-specific worst-case arrival of `traffic` on `shard` at
  /// accumulated CDV `cdv`.  Lock-free: prepare() is pure and touches
  /// only construction-time policy configuration.
  [[nodiscard]] std::any prepare(std::size_t shard,
                                 const TrafficDescriptor& traffic,
                                 double cdv) const;

  /// Trial admission.  Snapshot-publishing policies evaluate against
  /// the point's published snapshot with zero lock traffic (validating
  /// its version stamps, self-refreshing on staleness); other policies
  /// check under the shard's shared lock.  When `stamp` is non-null it
  /// receives the version witness admit_path() can later validate.
  [[nodiscard]] HopVerdict check_hop(const HopSpec& hop,
                                     CheckStamp* stamp = nullptr) const;

  /// Stream-typed trial admission (bit-stream policy only; always
  /// evaluates under the shared lock).
  [[nodiscard]] CheckResult check(std::size_t shard, std::size_t in_port,
                                  std::size_t out_port, Priority priority,
                                  const Stream& arrival) const;

  /// Two-phase commit (bit-stream policy only): re-validates the check
  /// under the shard's exclusive lock and commits only when it (still)
  /// passes.
  CheckResult admit(std::size_t shard, ConnectionId id, std::size_t in_port,
                    std::size_t out_port, Priority priority,
                    const Stream& arrival,
                    double lease_expiry = SwitchCac::kPermanentLease);

  /// Multi-hop two-phase commit: exclusive locks in ascending shard
  /// order, every hop validated, then (optionally) `accept` consulted,
  /// then all hops committed — or nothing at all.  When `speculative`
  /// is non-empty it carries the optimistic per-hop verdicts (parallel
  /// to `hops`): a hop whose stamp still matches the live version
  /// counters reuses its verdict, every other hop is re-checked against
  /// the locked state, so the outcome is identical to re-checking all.
  PathResult admit_path(std::span<const HopSpec> hops, ConnectionId id,
                        double lease_expiry = SwitchCac::kPermanentLease,
                        PathAcceptance accept = nullptr,
                        void* accept_ctx = nullptr,
                        std::span<const SpeculativeHop> speculative = {});

  /// In-place renegotiation (MODIFY) of established connection `id`
  /// over its existing path: the same two-phase shape as admit_path(),
  /// but the commit is the DeltaTransaction of core/path_eval.h with
  /// release == acquire.  Every hop of `hops` carries the *new*
  /// descriptor's arrival; checks run against the combined old+new load
  /// (the old reservations stay committed throughout — make before
  /// break), speculative stamps are validated over the *union* of the
  /// old and new invalidation cones ([min(old_priority, new priority),
  /// P) per out-port), and on acceptance the new reservations commit
  /// under `provisional`, the old ones are released, and `provisional`
  /// is rebound onto `id` — all inside the exclusive lock set, so no
  /// concurrent check ever observes a mixed old/new path.  On rejection
  /// nothing changes.  Decision-identical to the serial
  /// ConnectionManager::renegotiate walk (distinct hops live on
  /// distinct shards).
  PathResult renegotiate_path(std::span<const HopSpec> hops,
                              ConnectionId id, ConnectionId provisional,
                              Priority old_priority,
                              double lease_expiry = SwitchCac::kPermanentLease,
                              PathAcceptance accept = nullptr,
                              void* accept_ctx = nullptr,
                              std::span<const SpeculativeHop> speculative = {});

  /// Immediate removal under the shard's exclusive lock.
  bool remove(std::size_t shard, ConnectionId id);

  /// Defers a removal into the shard's pending queue (cheap, does not
  /// take the shard's state lock); drain_removals() commits backlogs in
  /// one batched remove_many per shard.
  void queue_remove(std::size_t shard, ConnectionId id);
  std::size_t drain_removals();
  [[nodiscard]] std::size_t pending_removals() const;

  /// Publishes every shard's deferred snapshots now (exclusive lock per
  /// shard with a stale slot).  Use after a batch of commits under a
  /// publish_window > 1 to restore the lock-free read path at once;
  /// returns the number of out-port slots republished.
  std::size_t publish_snapshots();

  /// Lease sweep of one shard / all shards (exclusive lock per shard).
  std::vector<ConnectionId> reclaim(std::size_t shard, double now);
  std::vector<ConnectionId> reclaim_all(double now);

  bool renew_lease(std::size_t shard, ConnectionId id, double lease_expiry);
  bool make_permanent(std::size_t shard, ConnectionId id);
  [[nodiscard]] bool contains(std::size_t shard, ConnectionId id) const;

  /// Total committed connections across shards (hop reservations, not
  /// distinct network connections).
  [[nodiscard]] std::size_t connection_count() const;

  /// Diagnostics sweeps (shared lock per shard, consistent per shard but
  /// not across shards — quiesce for a global snapshot).
  [[nodiscard]] bool state_consistent() const;
  [[nodiscard]] bool bandwidth_conserved() const;
  [[nodiscard]] bool cache_coherent() const;

  /// Computed bound of one queue (shared lock; primed, so read-only).
  [[nodiscard]] std::optional<double> computed_bound(std::size_t shard,
                                                     std::size_t out_port,
                                                     Priority priority) const;

  /// Direct shard access for quiesced inspection (tests, benchmarks);
  /// bit-stream policy only.  NOT synchronized: the caller must
  /// guarantee no concurrent writers.
  [[nodiscard]] const SwitchCac& shard_state(std::size_t shard) const;

  /// Direct policy-state access, same quiescence caveat.
  [[nodiscard]] const PolicyCac& shard_point(std::size_t shard) const;

 private:
  /// One epoch's publication for one out-port: the immutable snapshot
  /// plus the per-priority version counters it was built from.  Readers
  /// pin it via shared_ptr; it is reclaimed when the last pin drops.
  struct Published {
    std::vector<std::uint64_t> versions;
    std::shared_ptr<const PointSnapshot> state;
  };

  /// Atomic publication cell for the current `Published` value.  A
  /// hand-rolled spin bit replaces `std::atomic<std::shared_ptr<..>>`
  /// deliberately: libstdc++'s `_Sp_atomic` releases its reader-side
  /// spinlock with a *relaxed* RMW, so there is no release edge from a
  /// reader's pointer read to the next writer's pointer write — a
  /// formal data race the C++ memory model does not excuse and that
  /// ThreadSanitizer reports.  Here both paths leave the critical
  /// section with a release store, so writer acquisition of the spin
  /// bit synchronizes with every prior reader.  The section is a
  /// refcount bump + pointer copy (a few ns); the displaced
  /// publication is released outside it.
  class PublishedCell {
   public:
    [[nodiscard]] std::shared_ptr<const Published> load() const {
      spin_acquire();
      std::shared_ptr<const Published> copy = value_;
      busy_.store(0, std::memory_order_release);
      return copy;
    }

    void store(std::shared_ptr<const Published> next) {
      spin_acquire();
      value_.swap(next);
      busy_.store(0, std::memory_order_release);
    }

   private:
    void spin_acquire() const {
      while (busy_.exchange(1, std::memory_order_acquire) != 0) {
      }
    }

    mutable std::atomic<std::uint8_t> busy_{0};
    std::shared_ptr<const Published> value_;  // guarded by busy_
  };

  /// Per-out-port publication slot.  `snap` is the atomically swapped
  /// current publication; `refresh_mutex` serializes reader-side
  /// self-refresh (held while acquiring the shard's *shared* lock —
  /// writers never take it, so the edge cannot cycle with the shard
  /// lock order; see util/lock_order.h).
  struct OutSlot {
    Mutex refresh_mutex;
    // rtcac-lint: allow(guarded-by) — PublishedCell is itself the
    // synchronization primitive (internal spin bit); refresh_mutex
    // only serializes refreshers, it does not guard the cell.
    PublishedCell snap;
  };

  struct Shard {
    Shard(std::unique_ptr<PolicyCac> point, std::size_t out_ports_,
          std::size_t priorities_, bool snapshots)
        : cac(std::move(point)),
          out_ports(out_ports_),
          priorities(priorities_),
          snapshots_enabled(snapshots),
          point_versions(std::make_unique<std::atomic<std::uint64_t>[]>(
              out_ports_ * priorities_)),
          slots(snapshots ? out_ports_ : 0),
          stale_outs(out_ports_, 0) {}
    mutable SharedMutex mutex;
    // The pointer is set once at construction; the *pointee* (the
    // shard's whole admission state) is what the lock guards.
    std::unique_ptr<PolicyCac> cac RTCAC_PT_GUARDED_BY(mutex);
    // Deferred teardowns; guarded by its own small mutex so producers
    // never contend with in-flight checks on the state lock.  Never
    // held while acquiring `mutex`, so it stays outside the shard
    // lock-order audit.
    Mutex pending_mutex;
    std::vector<ConnectionId> pending_removals
        RTCAC_GUARDED_BY(pending_mutex);
    // Point geometry, frozen at construction; every queue of the shard
    // has key out_port * priorities + priority.
    // rtcac-lint: allow(guarded-by) — immutable after construction.
    const std::size_t out_ports;
    // rtcac-lint: allow(guarded-by) — immutable after construction.
    const std::size_t priorities;
    // rtcac-lint: allow(guarded-by) — immutable after construction.
    const bool snapshots_enabled;
    // Per-queue version counters (lock-free reads; advanced only under
    // the exclusive lock).  A queue's counter moves exactly when a
    // commit invalidated its derived state.
    const std::unique_ptr<std::atomic<std::uint64_t>[]> point_versions;
    // One publication slot per out-port (empty when the policy exports
    // no snapshots).  Readers synchronize through each slot's atomic
    // shared_ptr and refresh mutex, never through the shard lock.
    // rtcac-lint: allow(guarded-by) — element synchronization is the
    // slot's own atomic + refresh mutex; the vector itself is sized at
    // construction and never reallocated.
    mutable std::vector<OutSlot> slots;
    // Publication batching bookkeeping (Options::publish_window).
    std::size_t commits_since_publish RTCAC_GUARDED_BY(mutex) = 0;
    std::vector<char> stale_outs RTCAC_GUARDED_BY(mutex);
  };

  [[nodiscard]] Shard& shard_at(std::size_t shard) const;
  /// The shard's SwitchCac; throws unless it runs the bit-stream
  /// policy.  Read form for the shared-lock check path, mutable form
  /// for the exclusive-lock commit path (admit).
  [[nodiscard]] const SwitchCac& bitstream_at(const Shard& s) const
      RTCAC_REQUIRES_SHARED(s.mutex);
  [[nodiscard]] SwitchCac& bitstream_mut(Shard& s) RTCAC_REQUIRES(s.mutex);

  /// Unsynchronized access to policy surface that is immutable after
  /// construction — advertised() reads bounds fixed by the point's
  /// config, prepare() is pure (path_eval.h contract).  Justified
  /// escape: no lock could add anything; the members involved are
  /// never written after the shard is built, and the mutable caches
  /// stay untouched on these virtuals for every policy.
  [[nodiscard]] static const PolicyCac& point_const(const Shard& s)
      RTCAC_NO_THREAD_SAFETY_ANALYSIS {
    return *s.cac;
  }

  /// True iff `pub`'s stamps match the live counters for every queue
  /// the verdict at `priority` depends on (priorities [priority, P) of
  /// the out-port — a mutation at priority r invalidates all q >= r,
  /// so these stamps witness the whole dependency cone).
  [[nodiscard]] static bool snapshot_current(const Shard& s,
                                             const Published& pub,
                                             std::size_t out_port,
                                             Priority priority);

  /// stamp_current over a caller-provided stamp vector (same
  /// dependency-cone rule); used for validate-on-commit.  The floor
  /// form widens the cone to [min(floor, stamp.priority), P) —
  /// renegotiation must witness the old descriptor's cone too.
  [[nodiscard]] static bool stamp_matches(const Shard& s,
                                          const CheckStamp& stamp);
  [[nodiscard]] static bool stamp_matches(const Shard& s,
                                          const CheckStamp& stamp,
                                          Priority floor);

  /// Rebuilds and publishes out-port `out_port`'s snapshot from the
  /// current (primed) state, structurally sharing every priority whose
  /// version did not move.  Requires at least the shared lock, which
  /// freezes the version counters (writers advance them exclusively),
  /// so the stamps embedded in the publication are exact.  No-op when
  /// the previous publication is already current.
  void rebuild_published_locked(const Shard& s, std::size_t out_port) const
      RTCAC_REQUIRES_SHARED(s.mutex);

  /// Reader-side self-refresh of one slot: refresh_mutex (serializes
  /// concurrent refreshers) then the shard's shared lock (excludes
  /// writers), then rebuild_published_locked.
  void refresh_snapshot(std::size_t shard, Shard& s,
                        std::size_t out_port) const;

  /// Commit epilogue, under the exclusive lock: read the policy's
  /// dirty-queue set (before prime() — priming clears it), re-prime,
  /// advance the dirty queues' version counters, and republish the
  /// affected out-ports' snapshots (or defer within publish_window).
  void commit_epoch_locked(Shard& s) RTCAC_REQUIRES(s.mutex);

  /// Republishes every stale out-port slot of `s`; returns how many.
  std::size_t publish_stale_locked(Shard& s) RTCAC_REQUIRES(s.mutex);

  // unique_ptr: shared_mutex is neither movable nor copyable, and shard
  // addresses must stay stable while locks are held.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t publish_window_ = 1;
};

}  // namespace rtcac
