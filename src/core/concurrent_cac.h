// rtcac/core/concurrent_cac.h
//
// Sharded, thread-safe admission engine core (docs/PERFORMANCE.md,
// "Parallel admission").  The paper's CAC is evaluated per switch along a
// path (§4.1, §4.3): one switch's decision depends only on that switch's
// own bookkeeping, which makes the network-level admission problem
// naturally shardable.  ConcurrentCac holds one PolicyCac (the pluggable
// per-queueing-point admission state of core/path_eval.h; the default is
// the paper's SwitchCac behind BitstreamCacPolicy) per shard, each
// guarded by its own annotated SharedMutex (util/thread_annotations.h):
//
//   * check()/check_hop() take the shard's lock *shared*: any number of
//     threads may evaluate trial admissions against one switch
//     concurrently.  This is race-free because of the priming invariant
//     — every mutator fills all of the point's lazy derived caches
//     (PolicyCac::prime) before releasing its exclusive lock, so a
//     reader's check composes the candidate from *clean* caches and
//     never writes the mutable cache members.  The same rule covers the
//     bitstream policy's merge trees and stream arena: mutators flush
//     every dirty tree path and recycle buffers through the arena before
//     unlocking, and readers only consume the materialized aggregates.
//
//   * admit()/remove()/reclaim()/drain_removals() take the lock
//     *exclusive* and re-prime before unlocking.  admit() is the commit
//     half of a two-phase check-then-commit: callers typically check
//     speculatively first (shared lock, in parallel), and the commit
//     re-validates under the exclusive lock, so a stale speculative
//     check can never over-admit — whatever interleaving happens, every
//     committed connection passed the full bounds check against the
//     exact state it was committed into.
//
//   * admit_path() commits one connection across several shards (the
//     hops of a route).  Locks are acquired in ascending shard order —
//     the canonical order that makes concurrent multi-hop commits
//     deadlock-free — and the hop checks run check-all-then-commit-all
//     inside the locked region.  Because distinct hops live on distinct
//     switches, this is decision-identical to the serial hop-by-hop
//     walk ConnectionManager::setup performs.
//
//   * queue_remove()/drain_removals() defer teardown commits so
//     churn-heavy workloads can batch them: one drain removes a shard's
//     whole backlog via PolicyCac::remove_many, which (for the paper's
//     policy) rebuilds every touched S_ia cell once (the PR-3 batched-
//     reclaim machinery) instead of once per connection.
//
// Per-hop arrivals are policy-erased (std::any, built by prepare() under
// a shared lock and reused across the speculative check and the
// exclusive-lock re-check + commit), so the generic path pays the
// arrival construction exactly once per hop — the same economy the
// Stream-typed fast path always had.  The Stream-typed legacy API
// remains for bit-stream-policy callers and asserts that policy.
//
// Memory visibility: all state written under a shard's exclusive lock
// (including the mutable caches filled by priming) happens-before any
// subsequent shared acquisition of the same lock, so readers always see
// fully-built streams.  Different shards share no mutable state.
//
// The lock discipline above is machine-checked (docs/STATIC_ANALYSIS.md):
// shard state carries clang thread-safety annotations
// (util/thread_annotations.h) verified by the `tsa` preset, the
// `lock-order` lint rule confines multi-shard acquisition to the
// ShardLockSet scoped capability below, and util/lock_order.h asserts
// the ascending-shard runtime order in audit builds.
//
// Concurrency primitives are confined to this module, to
// util/thread_annotations.h, util/thread_pool.h and
// net/admission_engine.* by the `concurrency-state` lint rule
// (tools/rtcac_lint.py).

#pragma once

#include <any>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/path_eval.h"
#include "core/switch_cac.h"
#include "util/thread_annotations.h"

namespace rtcac {

class ConcurrentCac {
 public:
  using Stream = SwitchCac::Stream;
  using CheckResult = SwitchCac::CheckResult;

  /// One queueing point of a multi-shard path: which shard (switch) the
  /// hop crosses and how the connection is routed through it.  The
  /// arrival is policy-erased (PolicyCac::prepare / prepare()).
  struct HopSpec {
    std::size_t shard = 0;
    std::size_t in_port = 0;
    std::size_t out_port = 0;
    Priority priority = 0;
    std::any arrival;
  };

  /// Verdict of admit_path(): per-hop verdicts up to (and including) the
  /// first rejecting hop.  `rejecting_hop` is the index into the hop
  /// span, or npos when every hop admitted (admission can then still
  /// fail the caller's acceptance predicate — `admitted` alone is
  /// authoritative).
  struct PathResult {
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
    bool admitted = false;
    std::size_t rejecting_hop = npos;
    std::vector<HopVerdict> hops;
  };

  /// Caller-supplied acceptance predicate evaluated after every hop
  /// check passed but before anything is committed (e.g. the end-to-end
  /// deadline test).  Returning false rejects without mutating state.
  using PathAcceptance = bool (*)(const std::vector<HopVerdict>&, void*);

  /// Scoped capability over the exclusive locks of every distinct shard
  /// a path crosses — the *only* way more than one shard lock may be
  /// held at once (lint rule `lock-order`).  Acquisition runs in the
  /// canonical ascending shard-id order that makes concurrent multi-hop
  /// commits deadlock-free, with LockOrderAudit (util/lock_order.h)
  /// asserting the discipline per thread in audit builds.  Because the
  /// locked set is dynamic, the clang analysis cannot name the
  /// individual capabilities; all guarded state reached while the set
  /// is held therefore goes through point(), which confines the
  /// per-site RTCAC_NO_THREAD_SAFETY_ANALYSIS escapes to this class.
  class RTCAC_SCOPED_CAPABILITY ShardLockSet {
   public:
    /// Exclusively locks the distinct shards of `hops`, ascending.
    ShardLockSet(ConcurrentCac& owner, std::span<const HopSpec> hops)
        RTCAC_ACQUIRE();
    ShardLockSet(const ShardLockSet&) = delete;
    ShardLockSet& operator=(const ShardLockSet&) = delete;
    ~ShardLockSet() RTCAC_RELEASE();

    /// The locked shard ids, ascending and distinct.
    [[nodiscard]] std::span<const std::size_t> shards() const noexcept {
      return shards_;
    }

    /// Exclusive access to a locked shard's policy state; asserts that
    /// `shard` is a member of the set.
    [[nodiscard]] PolicyCac& point(std::size_t shard) const;

   private:
    ConcurrentCac& owner_;
    std::vector<std::size_t> shards_;
  };

  /// One queueing point per config entry, built by `policy`; shard ids
  /// are indices into `configs`.  Every shard starts fully primed.
  ConcurrentCac(const CacPolicy& policy,
                const std::vector<PointConfig>& configs);

  /// Bit-stream-policy convenience: one SwitchCac shard per config.
  explicit ConcurrentCac(const std::vector<SwitchCac::Config>& configs);

  ConcurrentCac(const ConcurrentCac&) = delete;
  ConcurrentCac& operator=(const ConcurrentCac&) = delete;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// Advertised bound of queue (out_port, priority) on `shard`.
  [[nodiscard]] double advertised(std::size_t shard, std::size_t out_port,
                                  Priority priority) const;

  /// Policy-specific worst-case arrival of `traffic` on `shard` at
  /// accumulated CDV `cdv` (shared lock; prepare() is pure).
  [[nodiscard]] std::any prepare(std::size_t shard,
                                 const TrafficDescriptor& traffic,
                                 double cdv) const;

  /// Trial admission under the shard's shared lock.  Concurrent with
  /// other checks; serialized against commits on the same shard only.
  [[nodiscard]] HopVerdict check_hop(const HopSpec& hop) const;

  /// Stream-typed trial admission (bit-stream policy only).
  [[nodiscard]] CheckResult check(std::size_t shard, std::size_t in_port,
                                  std::size_t out_port, Priority priority,
                                  const Stream& arrival) const;

  /// Two-phase commit (bit-stream policy only): re-validates the check
  /// under the shard's exclusive lock and commits only when it (still)
  /// passes.
  CheckResult admit(std::size_t shard, ConnectionId id, std::size_t in_port,
                    std::size_t out_port, Priority priority,
                    const Stream& arrival,
                    double lease_expiry = SwitchCac::kPermanentLease);

  /// Multi-hop two-phase commit: exclusive locks in ascending shard
  /// order, all hop checks re-validated, then (optionally) `accept`
  /// consulted, then all hops committed — or nothing at all.
  PathResult admit_path(std::span<const HopSpec> hops, ConnectionId id,
                        double lease_expiry = SwitchCac::kPermanentLease,
                        PathAcceptance accept = nullptr,
                        void* accept_ctx = nullptr);

  /// Immediate removal under the shard's exclusive lock.
  bool remove(std::size_t shard, ConnectionId id);

  /// Defers a removal into the shard's pending queue (cheap, does not
  /// take the shard's state lock); drain_removals() commits backlogs in
  /// one batched remove_many per shard.
  void queue_remove(std::size_t shard, ConnectionId id);
  std::size_t drain_removals();
  [[nodiscard]] std::size_t pending_removals() const;

  /// Lease sweep of one shard / all shards (exclusive lock per shard).
  std::vector<ConnectionId> reclaim(std::size_t shard, double now);
  std::vector<ConnectionId> reclaim_all(double now);

  bool renew_lease(std::size_t shard, ConnectionId id, double lease_expiry);
  bool make_permanent(std::size_t shard, ConnectionId id);
  [[nodiscard]] bool contains(std::size_t shard, ConnectionId id) const;

  /// Total committed connections across shards (hop reservations, not
  /// distinct network connections).
  [[nodiscard]] std::size_t connection_count() const;

  /// Diagnostics sweeps (shared lock per shard, consistent per shard but
  /// not across shards — quiesce for a global snapshot).
  [[nodiscard]] bool state_consistent() const;
  [[nodiscard]] bool bandwidth_conserved() const;
  [[nodiscard]] bool cache_coherent() const;

  /// Computed bound of one queue (shared lock; primed, so read-only).
  [[nodiscard]] std::optional<double> computed_bound(std::size_t shard,
                                                     std::size_t out_port,
                                                     Priority priority) const;

  /// Direct shard access for quiesced inspection (tests, benchmarks);
  /// bit-stream policy only.  NOT synchronized: the caller must
  /// guarantee no concurrent writers.
  [[nodiscard]] const SwitchCac& shard_state(std::size_t shard) const;

  /// Direct policy-state access, same quiescence caveat.
  [[nodiscard]] const PolicyCac& shard_point(std::size_t shard) const;

 private:
  struct Shard {
    explicit Shard(std::unique_ptr<PolicyCac> point)
        : cac(std::move(point)) {}
    mutable SharedMutex mutex;
    // The pointer is set once at construction; the *pointee* (the
    // shard's whole admission state) is what the lock guards.
    std::unique_ptr<PolicyCac> cac RTCAC_PT_GUARDED_BY(mutex);
    // Deferred teardowns; guarded by its own small mutex so producers
    // never contend with in-flight checks on the state lock.  Never
    // held while acquiring `mutex`, so it stays outside the shard
    // lock-order audit.
    Mutex pending_mutex;
    std::vector<ConnectionId> pending_removals
        RTCAC_GUARDED_BY(pending_mutex);
  };

  [[nodiscard]] Shard& shard_at(std::size_t shard) const;
  /// The shard's SwitchCac; throws unless it runs the bit-stream
  /// policy.  Read form for the shared-lock check path, mutable form
  /// for the exclusive-lock commit path (admit).
  [[nodiscard]] const SwitchCac& bitstream_at(const Shard& s) const
      RTCAC_REQUIRES_SHARED(s.mutex);
  [[nodiscard]] SwitchCac& bitstream_mut(Shard& s) RTCAC_REQUIRES(s.mutex);

  // unique_ptr: shared_mutex is neither movable nor copyable, and shard
  // addresses must stay stable while locks are held.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace rtcac
