// rtcac/core/cdv.h
//
// Cell-delay-variation accumulation policies (Section 4.3, discussion 1).
//
// A connection's worst-case arrival stream at hop h is its source envelope
// distorted by the CDV it may have accumulated over hops 1..h-1.  For hard
// real-time connections the CDV is the plain sum of the upstream per-hop
// delay bounds — every cell could hit the worst case everywhere.  For soft
// real-time connections the paper suggests a less conservative square-root
// accumulation (the chance of hitting the worst case at every hop is
// vanishingly small); we implement it as sqrt(sum of squared bounds),
// which is exact for independent zero-mean jitter and is the standard
// reading of "square-root summation".

#pragma once

#include <span>
#include <string>

namespace rtcac {

enum class CdvPolicy {
  kHard,  ///< linear sum of upstream delay bounds (guaranteed worst case)
  kSoft,  ///< sqrt of sum of squares (statistical, for soft real-time)
};

/// Accumulated CDV over the given upstream per-hop delay bounds (cell
/// times) under the chosen policy.  An empty span yields 0 (first hop).
[[nodiscard]] double accumulate_cdv(CdvPolicy policy,
                                    std::span<const double> upstream_bounds);

[[nodiscard]] std::string to_string(CdvPolicy policy);

}  // namespace rtcac
