#include "core/cdv.h"

#include <cmath>
#include <stdexcept>

#include "util/contract.h"

namespace rtcac {

double accumulate_cdv(CdvPolicy policy,
                      std::span<const double> upstream_bounds) {
  double sum = 0;
  switch (policy) {
    case CdvPolicy::kHard:
      for (const double d : upstream_bounds) {
        RTCAC_REQUIRE(!(d < 0), "accumulate_cdv: negative bound");
        sum += d;
      }
      return sum;
    case CdvPolicy::kSoft:
      for (const double d : upstream_bounds) {
        RTCAC_REQUIRE(!(d < 0), "accumulate_cdv: negative bound");
        sum += d * d;
      }
      return std::sqrt(sum);
  }
  throw std::logic_error("accumulate_cdv: unknown policy");
}

std::string to_string(CdvPolicy policy) {
  switch (policy) {
    case CdvPolicy::kHard:
      return "hard";
    case CdvPolicy::kSoft:
      return "soft";
  }
  return "?";
}

}  // namespace rtcac
