// rtcac/core/path_eval.h
//
// The single source of truth for the paper's network-level admission walk
// (Sections 4.1 and 4.3): walk the route hop by hop, distort the source
// stream by the CDV accumulated over the upstream hops' *advertised*
// bounds (fixed, so no iteration is ever needed — the paper's key
// simplification), ask each queueing point's admission policy, and split
// the end-to-end deadline at the destination under the configured
// GuaranteeMode.
//
// Three engines drive this walk — ConnectionManager (serial),
// SignalingEngine (distributed SETUP/REJECT), AdmissionEngine (parallel
// sharded) — and they must produce bit-identical decision streams.  Every
// piece of admission arithmetic they share therefore lives here, exactly
// once:
//
//   * accumulated CDV under CdvPolicy (hard sum / soft sqrt-of-squares),
//   * per-hop worst-case arrival construction (Alg. 3.1 distortion),
//   * the per-hop admission query,
//   * the promised-bound-vs-deadline comparison (GuaranteeMode), and
//   * the canonical rejection reasons, machine-readable as
//     RejectReason{hop, code, detail} and human-readable as the exact
//     strings the engines have always emitted.
//
// The per-hop admission policy is pluggable: CacPolicy is a factory for
// per-queueing-point PolicyCac state.  The built-in `bitstream` policy
// wraps SwitchCac (the paper's Alg. 4.1 check); `peak` and `max_rate`
// baselines adapt src/baseline/ behind the same contract (see
// baseline/policies.h), so every engine can run every policy and be
// compared on identical semantics.
//
// PolicyCac's arrival type is erased behind std::any: prepare() builds
// the policy-specific worst-case arrival for a hop once (outside any
// lock), and check()/add() reuse it — the two-phase engines never pay
// the Alg. 3.1 distortion twice (docs/PERFORMANCE.md).
//
// The admission-walk lint rule (tools/rtcac_lint.py) keeps it this way:
// accumulate_cdv calls and deadline-split comparisons outside this layer
// are build failures.

#pragma once

#include <any>
#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/cdv.h"
#include "core/connection.h"
#include "core/switch_cac.h"

namespace rtcac {

/// What bound the network promises against the requested deadline D
/// (Section 4.3): the sum of the *advertised* per-queue bounds Dmax (what
/// CDV accumulation already charged for), or the tighter sum of the
/// *computed* bounds D' at setup time.
enum class GuaranteeMode {
  kAdvertised,
  kComputed,
};

/// Machine-readable classification of an admission failure.  The values
/// are shared by every engine: equal traces produce equal codes whether
/// the walk ran serially, sharded, or over the signaling plane.
enum class RejectCode {
  kNone,       ///< not rejected
  kPriority,   ///< requested priority outside the configured range
  kAdmission,  ///< a queueing point's CAC said no
  kDeadline,   ///< all hops admitted, but the promised bound exceeds D
  kTimeout,    ///< signaling retransmission budget exhausted
  kNoRoute,    ///< no route exists around the failed set (rerouting)
};

[[nodiscard]] const char* to_string(RejectCode code) noexcept;

/// Canonical admission-failure record: where the walk stopped, why, and
/// the exact human-readable detail the engines have always reported.
struct RejectReason {
  /// hop value when the failure is not attributable to a hop (e.g. a
  /// priority rejection before the walk starts, or a timeout).
  static constexpr std::size_t kNoHop = static_cast<std::size_t>(-1);

  std::size_t hop = kNoHop;  ///< rejecting hop; hop_count for kDeadline
  RejectCode code = RejectCode::kNone;
  std::string detail;  ///< canonical reason text; empty iff kNone

  [[nodiscard]] bool rejected() const noexcept {
    return code != RejectCode::kNone;
  }

  /// Bit-identical equality — what the equivalence and replay-determinism
  /// suites compare across engines and runs.
  friend bool operator==(const RejectReason&, const RejectReason&) = default;
};

/// Verdict of one queueing point's policy check for one candidate.
struct HopVerdict {
  bool admitted = false;
  /// Computed worst-case bound at this hop including the candidate (cell
  /// times); policies that compute no bound report 0.
  double bound = 0;
  /// Advertised (fixed) bound of this hop's outgoing queue.
  double advertised = 0;
  /// Policy-phrased rejection detail; empty when admitted.
  std::string detail;
};

/// Shape of one queueing point, policy-independent.
struct PointConfig {
  std::size_t in_ports = 0;
  std::size_t out_ports = 0;
  std::size_t priorities = 1;
  double advertised_bound = 32;
  /// Per-aggregate segment cap (0 = exact).  Policies that keep
  /// per-cell aggregates (the bitstream policy's merge trees) bound
  /// every aggregate to this many segments, trading admit-side
  /// conservatism for population-independent admission cost; policies
  /// without aggregates ignore it.
  std::size_t coalesce_budget = 0;
};

/// Immutable, policy-erased snapshot of ONE out-port's admission state,
/// exported by PolicyCac::export_point_snapshot and published by the
/// concurrency layer (core/concurrent_cac.h) for lock-free optimistic
/// checks.  The contract: check() against a snapshot must be decision-
/// and string-identical to PolicyCac::check against the exact state the
/// snapshot was exported from.  Implementations hold plain immutable
/// data; thread safety is by immutability, reclamation is shared_ptr
/// reference counting (a pinned snapshot outlives any number of newer
/// publications).
class PointSnapshot {
 public:
  PointSnapshot() = default;
  PointSnapshot(const PointSnapshot&) = delete;
  PointSnapshot& operator=(const PointSnapshot&) = delete;
  virtual ~PointSnapshot() = default;

  /// Trial admission against the frozen state; same verdict the live
  /// check would have produced at export time.
  [[nodiscard]] virtual HopVerdict check(std::size_t in_port,
                                         Priority priority,
                                         const std::any& arrival) const = 0;
};

/// Admission state of ONE queueing point under some policy.  Not
/// thread-safe; callers (ConcurrentCac shards) provide locking.
///
/// The arrival argument threaded through check()/add() is whatever
/// prepare() returned for this point — policies define their own
/// representation (BitStream for the paper's check, BurstyEnvelope for
/// max_rate, a peak rate for peak allocation).
class PolicyCac {
 public:
  PolicyCac() = default;
  PolicyCac(const PolicyCac&) = delete;
  PolicyCac& operator=(const PolicyCac&) = delete;
  virtual ~PolicyCac() = default;

  /// Advertised (fixed) bound of outgoing queue (out_port, priority).
  [[nodiscard]] virtual double advertised(std::size_t out_port,
                                          Priority priority) const = 0;

  /// Policy-specific worst-case arrival of `traffic` at a hop reached
  /// with accumulated CDV `cdv`.  Pure; safe to call without the point
  /// lock, and the result is reusable across check()/add().
  [[nodiscard]] virtual std::any prepare(const TrafficDescriptor& traffic,
                                         double cdv) const = 0;

  /// Trial admission; does not mutate state.
  [[nodiscard]] virtual HopVerdict check(std::size_t in_port,
                                         std::size_t out_port,
                                         Priority priority,
                                         const std::any& arrival) const = 0;

  /// Commit a previously checked candidate.  Throws on duplicate id.
  virtual void add(ConnectionId id, std::size_t in_port, std::size_t out_port,
                   Priority priority, const std::any& arrival,
                   double lease_expiry) = 0;

  /// Release a committed connection; false when unknown.
  virtual bool remove(ConnectionId id) = 0;
  /// Release a batch; returns how many were present.
  virtual std::size_t remove_many(std::span<const ConnectionId> ids) = 0;

  [[nodiscard]] virtual bool contains(ConnectionId id) const = 0;
  virtual bool renew_lease(ConnectionId id, double lease_expiry) = 0;
  virtual bool make_permanent(ConnectionId id) = 0;
  /// Remove every reservation whose lease expired at or before `now`;
  /// returns the reclaimed ids.
  virtual std::vector<ConnectionId> reclaim(double now) = 0;

  /// Computed worst-case bound of queue (out_port, priority) for the
  /// current load; nullopt means unbounded.
  [[nodiscard]] virtual std::optional<double> computed_bound(
      std::size_t out_port, Priority priority) const = 0;

  [[nodiscard]] virtual std::size_t connection_count() const = 0;

  /// Rebuild whatever derived caches the policy keeps, so later const
  /// reads are cheap and race-free (the ConcurrentCac priming invariant).
  virtual void prime() const {}

  /// Immutable export of out-port `out_port`'s state for the optimistic
  /// snapshot read path.  `previous` must be a prior export of the SAME
  /// point and out-port (or nullptr); `stale_priorities` lists the
  /// priorities whose state changed since it — everything else may be
  /// structurally shared.  Requires primed caches, so on primed state
  /// the export is a pure read (safe under a shared lock).  The default
  /// returns nullptr: the concurrency layer then keeps every check for
  /// this policy under the shared lock.
  [[nodiscard]] virtual std::shared_ptr<const PointSnapshot>
  export_point_snapshot(std::size_t /*out_port*/,
                        const PointSnapshot* /*previous*/,
                        std::span<const std::size_t> /*stale_priorities*/)
      const {
    return nullptr;
  }

  /// Queue keys (out_port * priorities + priority) invalidated by the
  /// mutations since the last prime() — the snapshot versions the
  /// concurrency layer must advance.  Must be read *before* prime()
  /// (priming may clear the bookkeeping).  nullopt means "unknown":
  /// the caller then advances every version of the touched shard.
  [[nodiscard]] virtual std::optional<std::vector<std::size_t>>
  dirty_queues() const {
    return std::nullopt;
  }

  // Invariant audits (RTCAC_CONTRACT_AUDIT); policies without derived
  // state report vacuous truth.
  [[nodiscard]] virtual bool state_consistent() const { return true; }
  [[nodiscard]] virtual bool bandwidth_conserved() const { return true; }
  [[nodiscard]] virtual bool cache_coherent() const { return true; }

  /// The underlying SwitchCac when this point runs the bit-stream policy;
  /// nullptr otherwise.  Lets diagnostics and tests keep the full
  /// SwitchCac vocabulary without downcasting.
  [[nodiscard]] virtual const SwitchCac* bitstream() const noexcept {
    return nullptr;
  }
  [[nodiscard]] SwitchCac* bitstream() noexcept {
    return const_cast<SwitchCac*>(std::as_const(*this).bitstream());
  }
};

/// Factory for per-queueing-point admission state.  Stateless; the
/// built-in policies are process-wide singletons.
class CacPolicy {
 public:
  CacPolicy() = default;
  CacPolicy(const CacPolicy&) = delete;
  CacPolicy& operator=(const CacPolicy&) = delete;
  virtual ~CacPolicy() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual std::unique_ptr<PolicyCac> make_point(
      const PointConfig& config) const = 0;
};

/// The paper's admission check (Alg. 4.1 over bit streams), wrapping
/// SwitchCac.  This is the default policy of every engine.
class BitstreamCacPolicy final : public CacPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "bitstream";
  }
  [[nodiscard]] std::unique_ptr<PolicyCac> make_point(
      const PointConfig& config) const override;

  [[nodiscard]] static const BitstreamCacPolicy& instance() noexcept;
};

/// The shared hop walk.  Engines describe their route as a span of Hop
/// views (non-owning pointers into their own per-point state) and get
/// back a Decision whose admitted flag, bounds, and RejectReason are
/// identical across engines for identical traces.
class PathEvaluator {
 public:
  struct Params {
    std::size_t priorities = 1;
    CdvPolicy cdv_policy = CdvPolicy::kHard;
    GuaranteeMode guarantee = GuaranteeMode::kComputed;
  };

  /// One queueing point of a route, as seen by the evaluator.
  struct Hop {
    PolicyCac* cac = nullptr;
    std::size_t in_port = 0;
    std::size_t out_port = 0;
    /// Queueing-point name used in the canonical "rejected at <name>"
    /// reason; must outlive the evaluation.
    std::string_view name;
  };

  /// Per-hop trial result: the verdict plus the prepared arrival, which
  /// commit_hop() reuses so the distortion is computed exactly once.
  struct HopEvaluation {
    HopVerdict verdict;
    std::any arrival;
  };

  /// Outcome of a full walk.  On rejection the bounds and sums are reset
  /// (matching what the engines always reported for failed setups).
  struct Decision {
    bool admitted = false;
    RejectReason reject;
    std::vector<double> hop_bounds;
    std::vector<std::any> arrivals;  ///< per hop; reusable by commit()
    double e2e_bound = 0;
    double e2e_advertised = 0;
  };

  explicit PathEvaluator(const Params& params) : params_(params) {}

  [[nodiscard]] const Params& params() const noexcept { return params_; }

  [[nodiscard]] bool priority_valid(Priority priority) const noexcept {
    return priority < params_.priorities;
  }

  /// CDV accumulated over the given upstream advertised bounds under the
  /// configured policy.  The only accumulate_cdv call site in src/.
  [[nodiscard]] double accumulated_cdv(
      std::span<const double> upstream_bounds) const;

  /// CDV accumulated before hops[hop_index] along this route.
  [[nodiscard]] double cdv_before(std::span<const Hop> hops,
                                  std::size_t hop_index,
                                  Priority priority) const;

  /// Worst-case arrival of `traffic` under the bit-stream model at a hop
  /// reached with accumulated CDV `cdv` (Alg. 3.1 distortion).  Shared by
  /// the bitstream policy and the engines' arrival_at_hop diagnostics.
  [[nodiscard]] static BitStream bitstream_arrival(
      const TrafficDescriptor& traffic, double cdv);

  /// Trial of one hop: builds the arrival for the accumulated CDV and
  /// asks the point's policy.  Does not mutate the point.
  [[nodiscard]] HopEvaluation evaluate_hop(std::span<const Hop> hops,
                                           std::size_t hop_index,
                                           const QosRequest& request) const;

  /// Commit a previously evaluated hop, reusing its prepared arrival.
  /// Static (needs no Params): the concurrency layer drives the same
  /// commit over its locked shard points.
  static void commit_hop(const Hop& hop, ConnectionId id, Priority priority,
                         const std::any& arrival, double lease_expiry);

  /// The deadline split (Section 4.3): does the promised bound under the
  /// configured GuaranteeMode meet the requested deadline?  The only
  /// deadline comparison in src/.
  [[nodiscard]] bool deadline_met(double e2e_bound, double e2e_advertised,
                                  double deadline) const;

  // Canonical rejection reasons.  The detail strings are byte-identical
  // to what the engines historically emitted; docs/ARCHITECTURE.md maps
  // the old strings to the codes.
  [[nodiscard]] static RejectReason priority_rejection();
  /// No path around the avoided/failed set (mass rerouting,
  /// net/reroute.h); not attributable to a hop.
  [[nodiscard]] static RejectReason no_route_rejection();
  [[nodiscard]] static RejectReason hop_rejection(std::size_t hop,
                                                  std::string_view point_name,
                                                  std::string_view detail);
  /// kNone when the deadline is met; otherwise the canonical kDeadline
  /// rejection attributed to the destination position `hop_count`.
  [[nodiscard]] RejectReason deadline_rejection(std::size_t hop_count,
                                                double e2e_bound,
                                                double e2e_advertised,
                                                double deadline) const;

  /// Full walk: priority gate, per-hop trial, deadline split.  Commits
  /// nothing; pair with commit() on acceptance.
  [[nodiscard]] Decision evaluate(std::span<const Hop> hops,
                                  const QosRequest& request) const;

  /// Commit an accepted Decision's hops, reusing its prepared arrivals.
  void commit(std::span<const Hop> hops, ConnectionId id,
              const QosRequest& request, std::span<const std::any> arrivals,
              double lease_expiry) const;

  // --- DeltaTransaction: the one reservation-mutation primitive --------
  //
  // Every way reservations change is one transaction: the hops to
  // *release* (the connection's old reservations — held until commit, so
  // make-before-break holds by construction) and the hops to *acquire*
  // under the (possibly new) descriptor.  The familiar operations are
  // instances:
  //
  //   fresh admission   release = {},        acquire = route
  //   teardown          release = route,     acquire = {}
  //   reroute (rehome)  release = old route, acquire = new route
  //   renegotiate       release = route,     acquire = same route,
  //                                          new QosRequest
  //
  // Validation is the ordinary walk over the acquire side while the
  // release side stays committed, so the verdict always covers the
  // *combined* old+new load — conservative by construction: there is
  // never a window with zero reservation, and any double-booking on
  // queueing points the two sides share is exactly what the admission
  // check re-validated.  After the release side is dropped the true
  // load only shrinks, so every bound promised here still holds.  See
  // docs/ARCHITECTURE.md §2 and docs/FAULT_TOLERANCE.md.
  //
  // The admission-walk lint rule keeps the release/acquire interleaving
  // confined to this layer: a function elsewhere in src/ that both
  // releases and acquires reservations is a build failure.

  struct DeltaTransaction {
    /// Hops currently holding reservations of `id` (may be empty).
    std::span<const Hop> release;
    /// Hops to reserve for `*request` (empty for a pure teardown).
    std::span<const Hop> acquire;
    /// The connection's stable id: what the release side holds and what
    /// the acquire side ends up keyed under.
    ConnectionId id = kInvalidConnection;
    /// Fresh network-unique id for the make-before-break window; read
    /// only when both sides are non-empty (queueing points the sides
    /// share then hold old and new reservations side by side until the
    /// swap).
    ConnectionId provisional = kInvalidConnection;
    /// Acquire-side descriptor; must be non-null iff acquire is
    /// non-empty.
    const QosRequest* request = nullptr;
    double lease_expiry = 0;
  };

  /// Validates the transaction: the full walk over the acquire side
  /// against the current state.  The release side's reservations are
  /// still part of every queueing point's load, so the verdict covers
  /// the combined old+new state.  A pure release trivially admits.
  /// Commits nothing.
  [[nodiscard]] Decision evaluate_delta(const DeltaTransaction& txn) const;

  /// Commits an accepted transaction, reusing the evaluated arrivals.
  /// Infallible — no admission decision is re-opened:
  ///   * acquire only: commit the hops under `id` (fresh admission);
  ///   * release only: release `id` at every hop (teardown);
  ///   * both sides:   commit the acquire side under `provisional`,
  ///                   release `id`, rebind `provisional` onto `id`
  ///                   (reroute / renegotiate).
  void commit_delta(const DeltaTransaction& txn,
                    std::span<const std::any> arrivals) const;

  /// evaluate_delta + commit_delta on acceptance.
  [[nodiscard]] Decision execute(const DeltaTransaction& txn) const;

  /// Static commit core of a both-sided transaction over explicit hop
  /// views — needs no Params, so ConcurrentCac::renegotiate_path drives
  /// it over its locked shard points: commit the acquire side under
  /// `provisional`, then finalize_delta.
  static void commit_delta_hops(std::span<const Hop> release,
                                std::span<const Hop> acquire, ConnectionId id,
                                ConnectionId provisional, Priority priority,
                                std::span<const std::any> arrivals,
                                double lease_expiry);

  /// The break-then-rebind epilogue of a both-sided transaction, for
  /// drivers whose acquire-side commits already happened hop by hop
  /// under `provisional` (the signaling MODIFY walk): releases `id`
  /// from the release hops, then rebinds `provisional` onto `id` over
  /// the acquire hops.
  static void finalize_delta(std::span<const Hop> release,
                             std::span<const Hop> acquire, ConnectionId id,
                             ConnectionId provisional, Priority priority,
                             std::span<const std::any> arrivals,
                             double lease_expiry);

  /// Release `id` at every hop (tolerant of hops that no longer hold
  /// it); returns how many reservations were actually released.
  static std::size_t release_path(std::span<const Hop> hops, ConnectionId id);

  /// A transaction with an empty release side, pre-packaged for the
  /// reroute window: evaluates the replacement route against the
  /// current (combined) state and, on acceptance, commits it under
  /// `provisional_id`.  Rejection commits nothing.
  [[nodiscard]] Decision admit_delta(std::span<const Hop> hops,
                                     ConnectionId provisional_id,
                                     const QosRequest& request,
                                     double lease_expiry) const;

  /// The rebind half of finalize_delta, kept callable on its own: after
  /// the old path is released, re-keys the reservations committed under
  /// `provisional_id` onto the connection's stable `final_id` at every
  /// hop.  Deterministic and infallible — each hop swap is
  /// remove-then-add of an arrival that was already committed, so no
  /// admission decision is re-opened.
  void rebind(std::span<const Hop> hops, ConnectionId provisional_id,
              ConnectionId final_id, const QosRequest& request,
              std::span<const std::any> arrivals, double lease_expiry) const;

 private:
  [[nodiscard]] double promised(double e2e_bound, double e2e_advertised) const;

  static void rebind_hops(std::span<const Hop> hops,
                          ConnectionId provisional_id, ConnectionId final_id,
                          Priority priority,
                          std::span<const std::any> arrivals,
                          double lease_expiry);

  Params params_;
};

}  // namespace rtcac
