#include "core/switch_cac.h"

#include <algorithm>
#include <stdexcept>

namespace rtcac {

template <typename Num>
BasicSwitchCac<Num>::BasicSwitchCac(const Config& config) : config_(config) {
  RTCAC_REQUIRE(config_.in_ports > 0 && config_.out_ports > 0 &&
                    config_.priorities > 0,
                "SwitchCac: ports and priorities must be positive");
  RTCAC_REQUIRE(config_.advertised_bound > Num(0),
                "SwitchCac: advertised bound must be > 0");
  RTCAC_REQUIRE(config_.coalesce_budget == 0 || config_.coalesce_budget >= 2,
                "SwitchCac: non-zero coalescing budget must be >= 2");
  advertised_.assign(config_.out_ports * config_.priorities,
                     config_.advertised_bound);
  const std::size_t cells =
      config_.in_ports * config_.out_ports * config_.priorities;
  const std::size_t queues = config_.out_ports * config_.priorities;
  arrival_aggr_.assign(cells, Stream{});
  cell_trees_.assign(cells,
                     BasicStreamMergeTree<Num>(config_.coalesce_budget));
  cell_counts_.assign(cells, 0);
  cell_members_.assign(cells, {});
  filtered_cell_.assign(cells, Stream{});
  hp_cell_filtered_.assign(cells, Stream{});
  offered_cache_.assign(queues, Stream{});
  hp_filtered_cache_.assign(queues, Stream{});
  bound_cache_.assign(queues, std::nullopt);
  // Everything starts dirty; the ensure_* accessors fill entries on first
  // use, so a fresh switch never pays for caches it does not read.
  filtered_cell_dirty_.assign(cells, 1);
  hp_cell_dirty_.assign(cells, 1);
  offered_dirty_.assign(queues, 1);
  hp_filtered_dirty_.assign(queues, 1);
  bound_dirty_.assign(queues, 1);
}

template <typename Num>
std::size_t BasicSwitchCac<Num>::cell_index(std::size_t in_port,
                                            std::size_t out_port,
                                            Priority priority) const {
  return (in_port * config_.out_ports + out_port) * config_.priorities +
         priority;
}

template <typename Num>
std::size_t BasicSwitchCac<Num>::queue_index(std::size_t out_port,
                                             Priority priority) const {
  return out_port * config_.priorities + priority;
}

template <typename Num>
void BasicSwitchCac<Num>::check_ports(std::size_t in_port,
                                      std::size_t out_port,
                                      Priority priority) const {
  RTCAC_REQUIRE(in_port < config_.in_ports && out_port < config_.out_ports &&
                    priority < config_.priorities,
                "SwitchCac: port or priority out of range");
}

template <typename Num>
Num BasicSwitchCac<Num>::advertised(std::size_t out_port,
                                    Priority priority) const {
  check_ports(0, out_port, priority);
  return advertised_[queue_index(out_port, priority)];
}

template <typename Num>
void BasicSwitchCac<Num>::set_advertised(std::size_t out_port,
                                         Priority priority, Num bound) {
  check_ports(0, out_port, priority);
  RTCAC_REQUIRE(bound > Num(0), "SwitchCac: advertised bound must be > 0");
  advertised_[queue_index(out_port, priority)] = bound;
}

template <typename Num>
typename BasicSwitchCac<Num>::Stream BasicSwitchCac<Num>::rebuild_cell(
    std::size_t in_port, std::size_t out_port, Priority priority) const {
  const std::size_t idx = cell_index(in_port, out_port, priority);
  const std::vector<ConnectionId>& members = cell_members_[idx];
  std::vector<const Stream*> parts;
  parts.reserve(members.size());
  for (const ConnectionId id : members) {
    const auto it = records_.find(id);
    RTCAC_ASSERT(it != records_.end(),
                 "SwitchCac: membership index references unknown id " +
                     std::to_string(id));
    parts.push_back(&cell_trees_[idx].leaf(it->second.slot));
  }
  // Members are kept in insertion order, so this k-way mux reproduces the
  // pre-merge-tree incremental adds bitwise: the exact fold the scratch
  // oracle and the audits compare against, independent of the (possibly
  // coalesced) cached aggregate.
  return multiplex_all(parts);
}

template <typename Num>
void BasicSwitchCac<Num>::invalidate_cell(std::size_t in_port,
                                          std::size_t out_port,
                                          Priority priority) {
  // The cell feeds its own filtered stream, the offered aggregate and
  // bound of its queue, and — being higher-priority traffic for every
  // level below — the hp union of cells (in_port, out_port, q > priority)
  // plus the hp aggregates and bounds of those queues.  Nothing else.
  filtered_cell_dirty_[cell_index(in_port, out_port, priority)] = 1;
  offered_dirty_[queue_index(out_port, priority)] = 1;
  bound_dirty_[queue_index(out_port, priority)] = 1;
  for (Priority q = priority + 1; q < config_.priorities; ++q) {
    hp_cell_dirty_[cell_index(in_port, out_port, q)] = 1;
    hp_filtered_dirty_[queue_index(out_port, q)] = 1;
    bound_dirty_[queue_index(out_port, q)] = 1;
  }
}

template <typename Num>
const typename BasicSwitchCac<Num>::Stream&
BasicSwitchCac<Num>::ensure_filtered_cell(std::size_t in_port,
                                          std::size_t out_port,
                                          Priority priority) const {
  const std::size_t c = cell_index(in_port, out_port, priority);
  if (filtered_cell_dirty_[c] != 0) {
    filtered_cell_[c] = filter(arrival_aggr_[c]);
    filtered_cell_dirty_[c] = 0;
  }
  return filtered_cell_[c];
}

template <typename Num>
const typename BasicSwitchCac<Num>::Stream&
BasicSwitchCac<Num>::ensure_hp_cell(std::size_t in_port, std::size_t out_port,
                                    Priority priority) const {
  const std::size_t c = cell_index(in_port, out_port, priority);
  if (hp_cell_dirty_[c] != 0) {
    if (priority == 0) {
      hp_cell_filtered_[c] = Stream{};
    } else {
      std::vector<const Stream*> parts;
      parts.reserve(priority);
      for (Priority q = 0; q < priority; ++q) {
        parts.push_back(&arrival_aggr_[cell_index(in_port, out_port, q)]);
      }
      hp_cell_filtered_[c] = filter(multiplex_all(parts));
    }
    hp_cell_dirty_[c] = 0;
  }
  return hp_cell_filtered_[c];
}

template <typename Num>
const typename BasicSwitchCac<Num>::Stream&
BasicSwitchCac<Num>::ensure_offered(std::size_t out_port,
                                    Priority priority) const {
  const std::size_t q = queue_index(out_port, priority);
  if (offered_dirty_[q] != 0) {
    std::vector<const Stream*> parts;
    parts.reserve(config_.in_ports);
    for (std::size_t i = 0; i < config_.in_ports; ++i) {
      parts.push_back(&ensure_filtered_cell(i, out_port, priority));
    }
    offered_cache_[q] = multiplex_all(parts);
    offered_dirty_[q] = 0;
  }
  return offered_cache_[q];
}

template <typename Num>
const typename BasicSwitchCac<Num>::Stream&
BasicSwitchCac<Num>::ensure_hp_filtered(std::size_t out_port,
                                        Priority priority) const {
  const std::size_t q = queue_index(out_port, priority);
  if (hp_filtered_dirty_[q] != 0) {
    std::vector<const Stream*> parts;
    parts.reserve(config_.in_ports);
    for (std::size_t i = 0; i < config_.in_ports; ++i) {
      parts.push_back(&ensure_hp_cell(i, out_port, priority));
    }
    // The higher-priority traffic leaves through the same unit-rate
    // out-link, so it can occupy at most rate 1 of it.
    hp_filtered_cache_[q] = filter(multiplex_all(parts));
    hp_filtered_dirty_[q] = 0;
  }
  return hp_filtered_cache_[q];
}

template <typename Num>
const std::optional<Num>& BasicSwitchCac<Num>::ensure_bound(
    std::size_t out_port, Priority priority) const {
  const std::size_t q = queue_index(out_port, priority);
  if (bound_dirty_[q] != 0) {
    const Stream& offered = ensure_offered(out_port, priority);
    if (offered.is_zero()) {
      bound_cache_[q] = Num(0);
    } else {
      bound_cache_[q] =
          delay_bound(offered, ensure_hp_filtered(out_port, priority));
    }
    bound_dirty_[q] = 0;
  }
  return bound_cache_[q];
}

/// Live-cache view for check_point_view (core/point_snapshot.h): every
/// accessor forwards to the dirty-tracked caches of one out-port.  The
/// caches fill lazily on first use, so a check on an unprimed switch
/// still works — and on a *primed* switch (the concurrency layer's
/// invariant) every accessor is a pure read.
template <typename Num>
struct BasicSwitchCac<Num>::CheckView {
  const BasicSwitchCac& cac;
  std::size_t out_port;

  [[nodiscard]] const Stream& cell(std::size_t in, Priority q) const {
    return cac.arrival_aggr_[cac.cell_index(in, out_port, q)];
  }
  [[nodiscard]] const Stream& filtered(std::size_t in, Priority q) const {
    return cac.ensure_filtered_cell(in, out_port, q);
  }
  [[nodiscard]] const Stream& hp_cell(std::size_t in, Priority q) const {
    return cac.ensure_hp_cell(in, out_port, q);
  }
  [[nodiscard]] const Stream& offered(Priority q) const {
    return cac.ensure_offered(out_port, q);
  }
  [[nodiscard]] const Stream& hp_filtered(Priority q) const {
    return cac.ensure_hp_filtered(out_port, q);
  }
  [[nodiscard]] const std::optional<Num>& bound(Priority q) const {
    return cac.ensure_bound(out_port, q);
  }
  [[nodiscard]] Num advertised(Priority q) const {
    return cac.advertised_[cac.queue_index(out_port, q)];
  }
};

template <typename Num>
typename BasicSwitchCac<Num>::Stream
BasicSwitchCac<Num>::offered_aggregate_scratch(std::size_t out_port,
                                               Priority priority,
                                               const Stream* extra,
                                               std::size_t extra_in,
                                               Priority extra_prio) const {
  Stream offered;
  for (std::size_t i = 0; i < config_.in_ports; ++i) {
    // Exact fold from the records — never the cached aggregate, which in
    // coalescing mode only dominates the true cell stream.
    Stream cell = rebuild_cell(i, out_port, priority);
    if (extra != nullptr && i == extra_in && priority == extra_prio) {
      cell = multiplex(cell, *extra);
    }
    if (cell.is_zero()) continue;
    offered = multiplex(offered, filter(cell));
  }
  return offered;
}

template <typename Num>
typename BasicSwitchCac<Num>::Stream
BasicSwitchCac<Num>::higher_priority_filtered_scratch(
    std::size_t out_port, Priority priority, const Stream* extra,
    std::size_t extra_in, Priority extra_prio) const {
  Stream out_aggr;
  for (std::size_t i = 0; i < config_.in_ports; ++i) {
    // Aggregate all strictly-higher priorities on this incoming link: they
    // share the link, so one filter pass applies to their union.  Cells
    // are re-folded from the records (see offered_aggregate_scratch).
    Stream hp;
    for (Priority q = 0; q < priority; ++q) {
      Stream cell = rebuild_cell(i, out_port, q);
      if (extra != nullptr && i == extra_in && q == extra_prio) {
        cell = multiplex(cell, *extra);
      }
      if (cell.is_zero()) continue;
      hp = multiplex(hp, cell);
    }
    if (hp.is_zero()) continue;
    out_aggr = multiplex(out_aggr, filter(hp));
  }
  // The higher-priority traffic leaves through the same unit-rate out-link,
  // so it can occupy at most rate 1 of it.
  return filter(out_aggr);
}

template <typename Num>
typename BasicSwitchCac<Num>::CheckResult BasicSwitchCac<Num>::check(
    std::size_t in_port, std::size_t out_port, Priority priority,
    const Stream& arrival) const {
  check_ports(in_port, out_port, priority);
  // The shared per-point algorithm (core/point_snapshot.h) over the
  // live caches: every stream the candidate does not touch comes from
  // the dirty-tracked caches; only the candidate's own cell is
  // re-filtered.  The exported-snapshot path runs the same template
  // over BasicPointSections, so the two stay decision- and
  // string-identical by construction.
  return check_point_view<Num>(CheckView{*this, out_port}, config_.in_ports,
                               config_.priorities, out_port, in_port,
                               priority, arrival);
}

template <typename Num>
typename BasicSwitchCac<Num>::CheckResult
BasicSwitchCac<Num>::check_from_scratch(std::size_t in_port,
                                        std::size_t out_port,
                                        Priority priority,
                                        const Stream& arrival) const {
  check_ports(in_port, out_port, priority);
  CheckResult result;
  result.bounds.assign(config_.priorities, std::nullopt);

  // Frozen pre-optimization path: every aggregate re-folded with two-way
  // multiplex, every bound from the reference candidate scan, no caches.
  for (Priority q = 0; q < config_.priorities; ++q) {
    std::optional<Num> bound;
    if (q < priority) {
      const Stream offered =
          offered_aggregate_scratch(out_port, q, nullptr, 0, 0);
      if (offered.is_zero()) {
        bound = Num(0);
      } else {
        const Stream hp =
            higher_priority_filtered_scratch(out_port, q, nullptr, 0, 0);
        bound = delay_bound_reference(offered, hp);
      }
    } else {
      const Stream offered =
          offered_aggregate_scratch(out_port, q, &arrival, in_port, priority);
      const Stream hp = higher_priority_filtered_scratch(
          out_port, q, &arrival, in_port, priority);
      bound = delay_bound_reference(offered, hp);
    }
    result.bounds[q] = bound;
    if (q == priority) {
      result.bound_at_priority = bound;
    }
    if (q >= priority) {
      const Num dmax = advertised_[queue_index(out_port, q)];
      if (!bound.has_value() || *bound > dmax) {
        std::ostringstream os;
        os << "delay bound at out-port " << out_port << " priority " << q
           << " would be ";
        if (bound.has_value()) {
          os << *bound;
        } else {
          os << "unbounded";
        }
        os << " > advertised " << dmax;
        result.admitted = false;
        result.reason = os.str();
        return result;
      }
    }
  }
  result.admitted = true;
  return result;
}

template <typename Num>
void BasicSwitchCac<Num>::add(ConnectionId id, std::size_t in_port,
                              std::size_t out_port, Priority priority,
                              const Stream& arrival, double lease_expiry) {
  check_ports(in_port, out_port, priority);
  RTCAC_REQUIRE(!records_.contains(id),
                "SwitchCac: duplicate connection id " + std::to_string(id));
  const std::size_t idx = cell_index(in_port, out_port, priority);
  const std::size_t slot = cell_trees_[idx].insert(stream_arena_, arrival);
  records_.emplace(id,
                   Record{in_port, out_port, priority, slot, lease_expiry});
  if (lease_expiry != kPermanentLease) lease_index_.emplace(lease_expiry, id);
  arrival_aggr_[idx] = cell_trees_[idx].aggregate(stream_arena_);
  ++cell_counts_[idx];
  cell_members_[idx].push_back(id);
  invalidate_cell(in_port, out_port, priority);
  audit_invariants();
}

template <typename Num>
bool BasicSwitchCac<Num>::renew_lease(ConnectionId id, double lease_expiry) {
  const auto it = records_.find(id);
  if (it == records_.end()) return false;
  drop_lease_index_entry(it->second.lease_expiry, id);
  it->second.lease_expiry = lease_expiry;
  if (lease_expiry != kPermanentLease) lease_index_.emplace(lease_expiry, id);
  return true;
}

template <typename Num>
void BasicSwitchCac<Num>::drop_lease_index_entry(double expiry,
                                                 ConnectionId id) {
  if (expiry == kPermanentLease) return;
  const auto [first, last] = lease_index_.equal_range(expiry);
  for (auto it = first; it != last; ++it) {
    if (it->second == id) {
      lease_index_.erase(it);
      return;
    }
  }
  RTCAC_ASSERT(false, "SwitchCac: finite lease missing from the lease index");
}

template <typename Num>
bool BasicSwitchCac<Num>::make_permanent(ConnectionId id) {
  return renew_lease(id, kPermanentLease);
}

template <typename Num>
double BasicSwitchCac<Num>::lease_expiry(ConnectionId id) const {
  const auto it = records_.find(id);
  RTCAC_REQUIRE(it != records_.end(),
                "SwitchCac: lease_expiry of unknown id " + std::to_string(id));
  return it->second.lease_expiry;
}

template <typename Num>
std::size_t BasicSwitchCac<Num>::remove_record_bookkeeping(
    typename std::map<ConnectionId, Record>::iterator it) {
  const Record& rec = it->second;
  const std::size_t idx = cell_index(rec.in_port, rec.out_port, rec.priority);
  cell_trees_[idx].erase(rec.slot);
  drop_lease_index_entry(rec.lease_expiry, it->first);
  std::erase(cell_members_[idx], it->first);
  --cell_counts_[idx];
  records_.erase(it);
  return idx;
}

template <typename Num>
std::vector<ConnectionId> BasicSwitchCac<Num>::reclaim(double now) {
  // Walk the expired prefix of the lease index — O(expired log n), never
  // a scan of the full record map.
  std::vector<ConnectionId> expired;
  for (auto it = lease_index_.begin();
       it != lease_index_.end() && it->first <= now; ++it) {
    expired.push_back(it->second);
  }
  if (expired.empty()) return expired;
  std::sort(expired.begin(), expired.end());  // contract: ascending ids
  // Batch: strip every expired record first, then rebuild each touched
  // cell exactly once — a cell losing k orphans pays one rebuild, not k.
  std::vector<std::size_t> touched;
  touched.reserve(expired.size());
  for (const ConnectionId id : expired) {
    touched.push_back(remove_record_bookkeeping(records_.find(id)));
  }
  rebuild_cells(touched);
  audit_invariants();
  return expired;
}

template <typename Num>
std::size_t BasicSwitchCac<Num>::remove_many(
    std::span<const ConnectionId> ids) {
  std::vector<std::size_t> touched;
  touched.reserve(ids.size());
  for (const ConnectionId id : ids) {
    const auto it = records_.find(id);
    if (it == records_.end()) continue;
    touched.push_back(remove_record_bookkeeping(it));
  }
  if (touched.empty()) return 0;
  const std::size_t removed = touched.size();
  rebuild_cells(touched);
  audit_invariants();
  return removed;
}

template <typename Num>
void BasicSwitchCac<Num>::rebuild_cells(std::vector<std::size_t>& touched) {
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  const std::size_t per_in = config_.out_ports * config_.priorities;
  for (const std::size_t idx : touched) {
    const std::size_t in_port = idx / per_in;
    const std::size_t out_port = (idx % per_in) / config_.priorities;
    const auto priority = static_cast<Priority>(idx % config_.priorities);
    // One flush per touched cell: a cell losing k members re-merges each
    // dirty tree node once, the same incremental path remove() takes —
    // not k times, and never a full refold.
    arrival_aggr_[idx] = cell_trees_[idx].aggregate(stream_arena_);
    invalidate_cell(in_port, out_port, priority);
  }
}

template <typename Num>
std::vector<ConnectionId> BasicSwitchCac<Num>::connection_ids() const {
  std::vector<ConnectionId> ids;
  ids.reserve(records_.size());
  for (const auto& [id, rec] : records_) ids.push_back(id);
  return ids;
}

template <typename Num>
std::vector<ConnectionId> BasicSwitchCac<Num>::connection_ids(
    std::size_t out_port, Priority priority) const {
  check_ports(0, out_port, priority);
  std::vector<ConnectionId> ids;
  for (std::size_t i = 0; i < config_.in_ports; ++i) {
    const auto& members = cell_members_[cell_index(i, out_port, priority)];
    ids.insert(ids.end(), members.begin(), members.end());
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

template <typename Num>
bool BasicSwitchCac<Num>::remove(ConnectionId id) {
  const auto it = records_.find(id);
  if (it == records_.end()) return false;
  const std::size_t in_port = it->second.in_port;
  const std::size_t out_port = it->second.out_port;
  const Priority priority = it->second.priority;
  const std::size_t idx = remove_record_bookkeeping(it);
  // Re-merge the erased leaf's root path rather than demultiplex: the
  // remaining leaves are recombined from their exact streams, so repeated
  // setup/teardown cannot accumulate floating-point drift — at O(log n)
  // node merges instead of the old full refold.
  arrival_aggr_[idx] = cell_trees_[idx].aggregate(stream_arena_);
  invalidate_cell(in_port, out_port, priority);
  audit_invariants();
  return true;
}

template <typename Num>
std::optional<Num> BasicSwitchCac<Num>::computed_bound(
    std::size_t out_port, Priority priority) const {
  check_ports(0, out_port, priority);
  return ensure_bound(out_port, priority);
}

template <typename Num>
std::optional<Num> BasicSwitchCac<Num>::buffer_requirement(
    std::size_t out_port, Priority priority) const {
  check_ports(0, out_port, priority);
  const Stream& offered = ensure_offered(out_port, priority);
  if (offered.is_zero()) return Num(0);
  return max_backlog(offered, ensure_hp_filtered(out_port, priority));
}

template <typename Num>
std::size_t BasicSwitchCac<Num>::connection_count(std::size_t out_port,
                                                  Priority priority) const {
  check_ports(0, out_port, priority);
  std::size_t count = 0;
  for (std::size_t i = 0; i < config_.in_ports; ++i) {
    count += cell_counts_[cell_index(i, out_port, priority)];
  }
  return count;
}

template <typename Num>
Num BasicSwitchCac<Num>::sustained_load(std::size_t out_port,
                                        Priority priority) const {
  check_ports(0, out_port, priority);
  Num load{0};
  for (std::size_t i = 0; i < config_.in_ports; ++i) {
    load += arrival_aggr_[cell_index(i, out_port, priority)].final_rate();
  }
  return load;
}

template <typename Num>
const typename BasicSwitchCac<Num>::Stream&
BasicSwitchCac<Num>::arrival_aggregate(std::size_t in_port,
                                       std::size_t out_port,
                                       Priority priority) const {
  check_ports(in_port, out_port, priority);
  return arrival_aggr_[cell_index(in_port, out_port, priority)];
}

template <typename Num>
bool BasicSwitchCac<Num>::state_consistent() const {
  for (std::size_t i = 0; i < config_.in_ports; ++i) {
    for (std::size_t j = 0; j < config_.out_ports; ++j) {
      for (Priority p = 0; p < config_.priorities; ++p) {
        const std::size_t idx = cell_index(i, j, p);
        if (cell_members_[idx].size() != cell_counts_[idx]) return false;
        const auto& tree = cell_trees_[idx];
        // Tree bookkeeping: one live leaf per member, internal nodes
        // re-derivable from the leaves (coherent() is also false when a
        // flush is pending, which a completed mutation never leaves).
        if (tree.size() != cell_counts_[idx]) return false;
        if (!tree.coherent()) return false;
        for (const ConnectionId id : cell_members_[idx]) {
          const auto rit = records_.find(id);
          if (rit == records_.end() || !tree.leaf_live(rit->second.slot)) {
            return false;
          }
        }
        // The cached aggregate must be exactly what the tree's root
        // materializes to (deterministic, so bitwise comparable).
        if (!(arrival_aggr_[idx] == tree.materialized())) return false;
        const Stream expect = rebuild_cell(i, j, p);
        if (config_.coalesce_budget == 0) {
          if (!expect.nearly_equal(arrival_aggr_[idx])) return false;
        } else {
          // Conservative contract: the coalesced aggregate dominates the
          // exact fold pointwise and preserves its sustained (tail) rate.
          if (!arrival_aggr_[idx].dominates(expect)) return false;
          if (!NumTraits<Num>::nearly_equal(arrival_aggr_[idx].final_rate(),
                                            expect.final_rate())) {
            return false;
          }
        }
      }
    }
  }
  // Membership index and record map must describe the same connection set.
  std::size_t indexed = 0;
  for (const auto& members : cell_members_) indexed += members.size();
  if (indexed != records_.size()) return false;
  // Every finite-lease record appears in the lease index exactly once and
  // nothing else does.
  std::size_t finite = 0;
  for (const auto& [id, rec] : records_) {
    if (rec.lease_expiry == kPermanentLease) continue;
    ++finite;
    const auto [first, last] = lease_index_.equal_range(rec.lease_expiry);
    bool found = false;
    for (auto it = first; it != last; ++it) {
      if (it->second == id) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return finite == lease_index_.size();
}

template <typename Num>
bool BasicSwitchCac<Num>::bandwidth_conserved() const {
  // The tail (sustained) rate of a multiplexed aggregate is the exact sum
  // of its components' tail rates, so per-cell sums must match the cached
  // aggregates — up to numeric tolerance for the double instantiation.
  std::vector<Num> expected(arrival_aggr_.size(), Num(0));
  for (const auto& [id, rec] : records_) {
    const std::size_t idx =
        cell_index(rec.in_port, rec.out_port, rec.priority);
    expected[idx] += cell_trees_[idx].leaf(rec.slot).final_rate();
  }
  for (std::size_t k = 0; k < arrival_aggr_.size(); ++k) {
    if (!NumTraits<Num>::nearly_equal(arrival_aggr_[k].final_rate(),
                                      expected[k])) {
      return false;
    }
  }
  return true;
}

template <typename Num>
bool BasicSwitchCac<Num>::cache_coherent() const {
  const auto bounds_match = [](const std::optional<Num>& a,
                               const std::optional<Num>& b) {
    if (a.has_value() != b.has_value()) return false;
    return !a.has_value() || NumTraits<Num>::nearly_equal(*a, *b);
  };
  for (std::size_t i = 0; i < config_.in_ports; ++i) {
    for (std::size_t j = 0; j < config_.out_ports; ++j) {
      for (Priority p = 0; p < config_.priorities; ++p) {
        const std::size_t c = cell_index(i, j, p);
        if (filtered_cell_dirty_[c] == 0 &&
            !filtered_cell_[c].nearly_equal(filter(arrival_aggr_[c]))) {
          return false;
        }
        if (hp_cell_dirty_[c] == 0) {
          Stream expect;
          if (p > 0) {
            std::vector<const Stream*> parts;
            parts.reserve(p);
            for (Priority q = 0; q < p; ++q) {
              parts.push_back(&arrival_aggr_[cell_index(i, j, q)]);
            }
            expect = filter(multiplex_all(parts));
          }
          if (!hp_cell_filtered_[c].nearly_equal(expect)) return false;
        }
      }
    }
  }
  for (std::size_t j = 0; j < config_.out_ports; ++j) {
    for (Priority p = 0; p < config_.priorities; ++p) {
      const std::size_t q = queue_index(j, p);
      // Recompute each clean entry from the raw cells only — deliberately
      // not via the ensure_* accessors, so a corrupted upstream cache
      // cannot vouch for a downstream one.
      std::optional<Stream> offered;
      if (offered_dirty_[q] == 0 || bound_dirty_[q] == 0) {
        std::vector<Stream> fresh;
        fresh.reserve(config_.in_ports);
        for (std::size_t i = 0; i < config_.in_ports; ++i) {
          fresh.push_back(filter(arrival_aggr_[cell_index(i, j, p)]));
        }
        offered = multiplex_all(std::span<const Stream>(fresh));
      }
      if (offered_dirty_[q] == 0 && !offered_cache_[q].nearly_equal(*offered)) {
        return false;
      }
      std::optional<Stream> hp;
      if (hp_filtered_dirty_[q] == 0 || bound_dirty_[q] == 0) {
        std::vector<Stream> fresh;
        fresh.reserve(config_.in_ports);
        for (std::size_t i = 0; i < config_.in_ports; ++i) {
          if (p == 0) {
            fresh.emplace_back();
            continue;
          }
          std::vector<const Stream*> parts;
          parts.reserve(p);
          for (Priority r = 0; r < p; ++r) {
            parts.push_back(&arrival_aggr_[cell_index(i, j, r)]);
          }
          fresh.push_back(filter(multiplex_all(parts)));
        }
        hp = filter(multiplex_all(std::span<const Stream>(fresh)));
      }
      if (hp_filtered_dirty_[q] == 0 &&
          !hp_filtered_cache_[q].nearly_equal(*hp)) {
        return false;
      }
      if (bound_dirty_[q] == 0) {
        const std::optional<Num> expect =
            offered->is_zero() ? std::optional<Num>(Num(0))
                               : delay_bound(*offered, *hp);
        if (!bounds_match(bound_cache_[q], expect)) return false;
      }
    }
  }
  return true;
}

template <typename Num>
void BasicSwitchCac<Num>::prime_caches() const {
  for (std::size_t j = 0; j < config_.out_ports; ++j) {
    for (Priority p = 0; p < config_.priorities; ++p) {
      // ensure_offered fills every filtered cell of queue (j, p) and
      // ensure_hp_filtered every higher-priority union, so after this
      // sweep no dirty flag is left set anywhere.  ensure_bound alone is
      // not enough: it skips the hp aggregate when the queue is idle.
      (void)ensure_offered(j, p);
      (void)ensure_hp_filtered(j, p);
      (void)ensure_bound(j, p);
    }
  }
}

template <typename Num>
std::shared_ptr<const BasicPointSections<Num>>
BasicSwitchCac<Num>::export_point_sections(
    std::size_t out_port, const BasicPointSections<Num>* previous,
    std::span<const std::size_t> stale_priorities) const {
  check_ports(0, out_port, 0);
  RTCAC_ASSERT(previous == nullptr ||
                   (previous->out_port == out_port &&
                    previous->sections.size() == config_.priorities),
               "SwitchCac: snapshot export given a foreign previous export");
  std::vector<char> stale(config_.priorities, previous == nullptr ? 1 : 0);
  for (const std::size_t p : stale_priorities) {
    if (p < config_.priorities) stale[p] = 1;
  }
  auto sections = std::make_shared<BasicPointSections<Num>>();
  sections->out_port = out_port;
  sections->in_ports = config_.in_ports;
  sections->sections.resize(config_.priorities);
  for (Priority p = 0; p < config_.priorities; ++p) {
    if (stale[p] == 0) {
      // Untouched priority: re-link the previous generation's section.
      sections->sections[p] = previous->sections[p];
      continue;
    }
    auto section = std::make_shared<BasicQueueSection<Num>>();
    section->cells.reserve(config_.in_ports);
    section->filtered.reserve(config_.in_ports);
    section->hp_cells.reserve(config_.in_ports);
    for (std::size_t i = 0; i < config_.in_ports; ++i) {
      section->cells.push_back(arrival_aggregate(i, out_port, p));
      section->filtered.push_back(ensure_filtered_cell(i, out_port, p));
      section->hp_cells.push_back(ensure_hp_cell(i, out_port, p));
    }
    section->offered = ensure_offered(out_port, p);
    section->hp_filtered = ensure_hp_filtered(out_port, p);
    section->bound = ensure_bound(out_port, p);
    section->advertised = advertised_[queue_index(out_port, p)];
    sections->sections[p] = std::move(section);
  }
  return sections;
}

template <typename Num>
std::vector<std::size_t> BasicSwitchCac<Num>::dirty_queue_keys() const {
  // invalidate_cell() marks bound_dirty_ for the mutated queue and every
  // level below it at the same out-port, so the dirty bound set is
  // exactly the set of queueing points whose snapshot sections (and
  // versions) a mutation invalidated.
  std::vector<std::size_t> keys;
  for (std::size_t q = 0; q < bound_dirty_.size(); ++q) {
    if (bound_dirty_[q] != 0) keys.push_back(q);
  }
  return keys;
}

template <typename Num>
CacArenaStats BasicSwitchCac<Num>::arena_stats() const {
  CacArenaStats st;
  st.pooled_bytes = stream_arena_.pooled_bytes();
  st.arena_acquires = stream_arena_.acquires();
  st.arena_reuses = stream_arena_.reuses();
  for (const auto& tree : cell_trees_) {
    st.held_bytes += tree.held_bytes();
    st.held_segments += tree.held_segments();
    st.peak_segments += tree.peak_segments();
  }
  return st;
}

template <typename Num>
void BasicSwitchCac<Num>::audit_invariants() const {
  RTCAC_INVARIANT_AUDIT(
      bandwidth_conserved(),
      "SwitchCac: sustained bandwidth not conserved across S_ia cells");
  RTCAC_INVARIANT_AUDIT(
      state_consistent(),
      "SwitchCac: cached aggregates diverged from connection records");
  RTCAC_INVARIANT_AUDIT(
      cache_coherent(),
      "SwitchCac: derived-stream cache diverged from its inputs");
}

template class BasicSwitchCac<double>;
template class BasicSwitchCac<Rational>;

}  // namespace rtcac
