#include "core/switch_cac.h"

#include <stdexcept>

namespace rtcac {

template <typename Num>
BasicSwitchCac<Num>::BasicSwitchCac(const Config& config) : config_(config) {
  RTCAC_REQUIRE(config_.in_ports > 0 && config_.out_ports > 0 &&
                    config_.priorities > 0,
                "SwitchCac: ports and priorities must be positive");
  RTCAC_REQUIRE(config_.advertised_bound > Num(0),
                "SwitchCac: advertised bound must be > 0");
  advertised_.assign(config_.out_ports * config_.priorities,
                     config_.advertised_bound);
  arrival_aggr_.assign(
      config_.in_ports * config_.out_ports * config_.priorities, Stream{});
  cell_counts_.assign(arrival_aggr_.size(), 0);
}

template <typename Num>
std::size_t BasicSwitchCac<Num>::cell_index(std::size_t in_port,
                                            std::size_t out_port,
                                            Priority priority) const {
  return (in_port * config_.out_ports + out_port) * config_.priorities +
         priority;
}

template <typename Num>
void BasicSwitchCac<Num>::check_ports(std::size_t in_port,
                                      std::size_t out_port,
                                      Priority priority) const {
  RTCAC_REQUIRE(in_port < config_.in_ports && out_port < config_.out_ports &&
                    priority < config_.priorities,
                "SwitchCac: port or priority out of range");
}

template <typename Num>
Num BasicSwitchCac<Num>::advertised(std::size_t out_port,
                                    Priority priority) const {
  check_ports(0, out_port, priority);
  return advertised_[out_port * config_.priorities + priority];
}

template <typename Num>
void BasicSwitchCac<Num>::set_advertised(std::size_t out_port,
                                         Priority priority, Num bound) {
  check_ports(0, out_port, priority);
  RTCAC_REQUIRE(bound > Num(0), "SwitchCac: advertised bound must be > 0");
  advertised_[out_port * config_.priorities + priority] = bound;
}

template <typename Num>
typename BasicSwitchCac<Num>::Stream BasicSwitchCac<Num>::rebuild_cell(
    std::size_t in_port, std::size_t out_port, Priority priority) const {
  Stream aggr;
  for (const auto& [id, rec] : records_) {
    if (rec.in_port == in_port && rec.out_port == out_port &&
        rec.priority == priority) {
      aggr = multiplex(aggr, rec.arrival);
    }
  }
  return aggr;
}

template <typename Num>
typename BasicSwitchCac<Num>::Stream BasicSwitchCac<Num>::offered_aggregate(
    std::size_t out_port, Priority priority, const Stream* extra,
    std::size_t extra_in, Priority extra_prio) const {
  Stream offered;
  for (std::size_t i = 0; i < config_.in_ports; ++i) {
    const Stream* cell = &arrival_aggr_[cell_index(i, out_port, priority)];
    Stream with_extra;
    if (extra != nullptr && i == extra_in && priority == extra_prio) {
      with_extra = multiplex(*cell, *extra);
      cell = &with_extra;
    }
    if (cell->is_zero()) continue;
    offered = multiplex(offered, filter(*cell));
  }
  return offered;
}

template <typename Num>
typename BasicSwitchCac<Num>::Stream
BasicSwitchCac<Num>::higher_priority_filtered(std::size_t out_port,
                                              Priority priority,
                                              const Stream* extra,
                                              std::size_t extra_in,
                                              Priority extra_prio) const {
  Stream out_aggr;
  for (std::size_t i = 0; i < config_.in_ports; ++i) {
    // Aggregate all strictly-higher priorities on this incoming link: they
    // share the link, so one filter pass applies to their union.
    Stream hp;
    for (Priority q = 0; q < priority; ++q) {
      const Stream* cell = &arrival_aggr_[cell_index(i, out_port, q)];
      Stream with_extra;
      if (extra != nullptr && i == extra_in && q == extra_prio) {
        with_extra = multiplex(*cell, *extra);
        cell = &with_extra;
      }
      if (cell->is_zero()) continue;
      hp = multiplex(hp, *cell);
    }
    if (hp.is_zero()) continue;
    out_aggr = multiplex(out_aggr, filter(hp));
  }
  // The higher-priority traffic leaves through the same unit-rate out-link,
  // so it can occupy at most rate 1 of it.
  return filter(out_aggr);
}

template <typename Num>
typename BasicSwitchCac<Num>::CheckResult BasicSwitchCac<Num>::check(
    std::size_t in_port, std::size_t out_port, Priority priority,
    const Stream& arrival) const {
  check_ports(in_port, out_port, priority);
  CheckResult result;
  result.bounds.assign(config_.priorities, std::nullopt);

  // Steps 1-4 of the paper's CAC check for the connection's own priority,
  // then Step 5 for every lower priority level (higher levels cannot be
  // affected by the newcomer and keep their previously verified bounds).
  for (Priority q = 0; q < config_.priorities; ++q) {
    std::optional<Num> bound;
    if (q < priority) {
      bound = computed_bound(out_port, q);
    } else {
      const Stream offered =
          offered_aggregate(out_port, q, &arrival, in_port, priority);
      const Stream hp = higher_priority_filtered(out_port, q, &arrival,
                                                 in_port, priority);
      bound = delay_bound(offered, hp);
    }
    result.bounds[q] = bound;
    if (q == priority) {
      result.bound_at_priority = bound;
    }
    if (q >= priority) {
      const Num dmax = advertised_[out_port * config_.priorities + q];
      if (!bound.has_value() || *bound > dmax) {
        std::ostringstream os;
        os << "delay bound at out-port " << out_port << " priority " << q
           << " would be ";
        if (bound.has_value()) {
          os << *bound;
        } else {
          os << "unbounded";
        }
        os << " > advertised " << dmax;
        result.admitted = false;
        result.reason = os.str();
        return result;
      }
    }
  }
  result.admitted = true;
  return result;
}

template <typename Num>
void BasicSwitchCac<Num>::add(ConnectionId id, std::size_t in_port,
                              std::size_t out_port, Priority priority,
                              const Stream& arrival, double lease_expiry) {
  check_ports(in_port, out_port, priority);
  RTCAC_REQUIRE(!records_.contains(id),
                "SwitchCac: duplicate connection id " + std::to_string(id));
  records_.emplace(id,
                   Record{in_port, out_port, priority, arrival, lease_expiry});
  const std::size_t idx = cell_index(in_port, out_port, priority);
  arrival_aggr_[idx] = multiplex(arrival_aggr_[idx], arrival);
  ++cell_counts_[idx];
  audit_invariants();
}

template <typename Num>
bool BasicSwitchCac<Num>::renew_lease(ConnectionId id, double lease_expiry) {
  const auto it = records_.find(id);
  if (it == records_.end()) return false;
  it->second.lease_expiry = lease_expiry;
  return true;
}

template <typename Num>
bool BasicSwitchCac<Num>::make_permanent(ConnectionId id) {
  return renew_lease(id, kPermanentLease);
}

template <typename Num>
double BasicSwitchCac<Num>::lease_expiry(ConnectionId id) const {
  const auto it = records_.find(id);
  RTCAC_REQUIRE(it != records_.end(),
                "SwitchCac: lease_expiry of unknown id " + std::to_string(id));
  return it->second.lease_expiry;
}

template <typename Num>
std::vector<ConnectionId> BasicSwitchCac<Num>::reclaim(double now) {
  std::vector<ConnectionId> expired;
  for (const auto& [id, rec] : records_) {
    if (rec.lease_expiry <= now) expired.push_back(id);
  }
  for (const ConnectionId id : expired) remove(id);
  return expired;
}

template <typename Num>
std::vector<ConnectionId> BasicSwitchCac<Num>::connection_ids() const {
  std::vector<ConnectionId> ids;
  ids.reserve(records_.size());
  for (const auto& [id, rec] : records_) ids.push_back(id);
  return ids;
}

template <typename Num>
bool BasicSwitchCac<Num>::remove(ConnectionId id) {
  const auto it = records_.find(id);
  if (it == records_.end()) return false;
  const Record rec = it->second;
  records_.erase(it);
  const std::size_t idx = cell_index(rec.in_port, rec.out_port, rec.priority);
  --cell_counts_[idx];
  // Rebuild rather than demultiplex: repeated setup/teardown must not
  // accumulate floating-point drift in the aggregates.
  arrival_aggr_[idx] = cell_counts_[idx] == 0
                           ? Stream{}
                           : rebuild_cell(rec.in_port, rec.out_port,
                                          rec.priority);
  audit_invariants();
  return true;
}

template <typename Num>
std::optional<Num> BasicSwitchCac<Num>::computed_bound(
    std::size_t out_port, Priority priority) const {
  check_ports(0, out_port, priority);
  const Stream offered = offered_aggregate(out_port, priority, nullptr, 0, 0);
  if (offered.is_zero()) return Num(0);
  const Stream hp =
      higher_priority_filtered(out_port, priority, nullptr, 0, 0);
  return delay_bound(offered, hp);
}

template <typename Num>
std::optional<Num> BasicSwitchCac<Num>::buffer_requirement(
    std::size_t out_port, Priority priority) const {
  check_ports(0, out_port, priority);
  const Stream offered = offered_aggregate(out_port, priority, nullptr, 0, 0);
  if (offered.is_zero()) return Num(0);
  const Stream hp =
      higher_priority_filtered(out_port, priority, nullptr, 0, 0);
  return max_backlog(offered, hp);
}

template <typename Num>
std::size_t BasicSwitchCac<Num>::connection_count(std::size_t out_port,
                                                  Priority priority) const {
  check_ports(0, out_port, priority);
  std::size_t count = 0;
  for (const auto& [id, rec] : records_) {
    if (rec.out_port == out_port && rec.priority == priority) ++count;
  }
  return count;
}

template <typename Num>
Num BasicSwitchCac<Num>::sustained_load(std::size_t out_port,
                                        Priority priority) const {
  check_ports(0, out_port, priority);
  Num load{0};
  for (std::size_t i = 0; i < config_.in_ports; ++i) {
    load += arrival_aggr_[cell_index(i, out_port, priority)].final_rate();
  }
  return load;
}

template <typename Num>
const typename BasicSwitchCac<Num>::Stream&
BasicSwitchCac<Num>::arrival_aggregate(std::size_t in_port,
                                       std::size_t out_port,
                                       Priority priority) const {
  check_ports(in_port, out_port, priority);
  return arrival_aggr_[cell_index(in_port, out_port, priority)];
}

template <typename Num>
bool BasicSwitchCac<Num>::state_consistent() const {
  for (std::size_t i = 0; i < config_.in_ports; ++i) {
    for (std::size_t j = 0; j < config_.out_ports; ++j) {
      for (Priority p = 0; p < config_.priorities; ++p) {
        const Stream expect = rebuild_cell(i, j, p);
        if (!expect.nearly_equal(arrival_aggr_[cell_index(i, j, p)])) {
          return false;
        }
      }
    }
  }
  return true;
}

template <typename Num>
bool BasicSwitchCac<Num>::bandwidth_conserved() const {
  // The tail (sustained) rate of a multiplexed aggregate is the exact sum
  // of its components' tail rates, so per-cell sums must match the cached
  // aggregates — up to numeric tolerance for the double instantiation.
  std::vector<Num> expected(arrival_aggr_.size(), Num(0));
  for (const auto& [id, rec] : records_) {
    expected[cell_index(rec.in_port, rec.out_port, rec.priority)] +=
        rec.arrival.final_rate();
  }
  for (std::size_t k = 0; k < arrival_aggr_.size(); ++k) {
    if (!NumTraits<Num>::nearly_equal(arrival_aggr_[k].final_rate(),
                                      expected[k])) {
      return false;
    }
  }
  return true;
}

template <typename Num>
void BasicSwitchCac<Num>::audit_invariants() const {
  RTCAC_INVARIANT_AUDIT(
      bandwidth_conserved(),
      "SwitchCac: sustained bandwidth not conserved across S_ia cells");
  RTCAC_INVARIANT_AUDIT(
      state_consistent(),
      "SwitchCac: cached aggregates diverged from connection records");
}

template class BasicSwitchCac<double>;
template class BasicSwitchCac<Rational>;

}  // namespace rtcac
