// rtcac/core/merge_tree.h
//
// Incrementally mergeable aggregates for the bit-stream algebra.
//
// The paper's CAC (Section 4) maintains, per queueing point, the
// multiplex of every admitted connection's arrival stream.  A flat fold
// makes connection removal O(n): the whole cell is re-multiplexed.  This
// structure makes add/remove O(log n) merges instead: an implicit binary
// merge tree whose leaves are the per-connection streams and whose every
// internal node caches the multiplex of its subtree.  Changing one leaf
// re-merges only the root path; the aggregate is read off the root.
//
// Two further mechanisms bound the cost per merge:
//
//   * Coalescing budget.  With budget B > 0 every internal node keeps at
//     most B segments by dropping interior breakpoints — never the first
//     or the last.  Dropping breakpoint k extends the previous (larger,
//     by monotonicity) rate over [t(k), t(k+1)), so the coalesced stream
//     dominates the exact one pointwise and the tail rate is preserved.
//     Admission decisions computed from it are therefore conservative:
//     the offered load is only ever over-estimated, delay bounds only
//     ever grow, rejects are a superset of the exact oracle's rejects
//     (property-tested in tests/core/test_coalesced_conservative.cpp).
//     Victims are chosen by smallest area error
//     (rate(k-1) - rate(k)) * (t(k+1) - t(k)), ties by index, so the
//     over-estimate stays small and selection is deterministic.
//
//   * Arena allocation.  Node buffers come from a BasicStreamArena
//     (stream_arena.h) passed into every mutating call; steady-state
//     churn recycles buffer capacity instead of hitting the heap.
//
// With budget 0 (exact mode) nodes are exact multiplexes and the root
// equals the fold of the leaves up to floating-point association; for
// exact scalars (Rational) and for doubles whose rate sums are exact
// (dyadic rates — what the property tests and benches use) it equals the
// fold bitwise, because every pairwise sum goes through the same
// detail::multiplex_union / canonicalize_segments pipeline the fold uses.
//
// The tree is a plain value type (copyable, no pointers into the arena
// or out of the structure); it owns the leaf streams.

#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "core/bitstream.h"
#include "core/stream_arena.h"
#include "core/stream_ops.h"
#include "util/contract.h"

namespace rtcac {

/// Drops interior breakpoints of a canonical segment list until at most
/// `budget` remain, keeping the first and last segments and the original
/// rates of the kept ones — the admit-side-conservative rounding used by
/// the merge tree's coalescing mode.  No-op when budget is 0 or already
/// satisfied.  Requires budget >= 2 when non-zero (first and last cannot
/// be dropped).
template <typename Num>
void coalesce_conservative(std::vector<BasicSegment<Num>>& segments,
                           std::size_t budget) {
  if (budget == 0 || segments.size() <= budget) return;
  RTCAC_REQUIRE(budget >= 2,
                "coalesce_conservative: non-zero budget must be >= 2");
  // Rank interior breakpoints by the area over-estimate their removal
  // introduces; drop the cheapest until the budget holds.
  using Ranked = std::pair<Num, std::size_t>;
  std::vector<Ranked> ranked;
  ranked.reserve(segments.size() - 2);
  for (std::size_t k = 1; k + 1 < segments.size(); ++k) {
    const Num err = (segments[k - 1].rate - segments[k].rate) *
                    (segments[k + 1].start - segments[k].start);
    ranked.emplace_back(err, k);
  }
  const std::size_t drop = segments.size() - budget;
  std::nth_element(ranked.begin(),
                   ranked.begin() + static_cast<std::ptrdiff_t>(drop - 1),
                   ranked.end());
  std::vector<char> dropped(segments.size(), 0);
  for (std::size_t d = 0; d < drop; ++d) {
    dropped[ranked[d].second] = 1;
  }
  std::size_t kept = 0;
  for (std::size_t k = 0; k < segments.size(); ++k) {
    if (dropped[k]) continue;
    segments[kept++] = segments[k];
  }
  segments.resize(kept);
}

/// Balanced mergeable aggregate of bit streams: insert/erase a leaf in
/// O(log n) node re-merges, read the multiplex of all live leaves off
/// the root.  See the header comment for the exact/coalesced semantics.
template <typename Num>
class BasicStreamMergeTree {
 public:
  using Stream = BasicBitStream<Num>;
  using Segment = BasicSegment<Num>;
  using Arena = BasicStreamArena<Num>;
  using Buffer = typename Arena::Buffer;

  /// `coalesce_budget` 0 = exact mode; otherwise the per-node segment
  /// cap (>= 2).
  explicit BasicStreamMergeTree(std::size_t coalesce_budget = 0)
      : budget_(coalesce_budget) {
    RTCAC_REQUIRE(budget_ == 0 || budget_ >= 2,
                  "StreamMergeTree: non-zero coalescing budget must be >= 2");
    reset_layout(1);
  }

  /// Adds a leaf stream; returns its slot (stable until erased, then
  /// recycled).  Grows the tree when full.  O(log n) merges amortized.
  [[nodiscard]] std::size_t insert(Arena& arena, Stream leaf) {
    if (free_.empty()) grow(arena);
    const std::size_t slot = free_.back();
    free_.pop_back();
    leaf_segments_ += leaf.size();
    leaves_[slot] = std::move(leaf);
    live_[slot] = 1;
    ++live_count_;
    mark_path_dirty(slot);
    note_peak();
    return slot;
  }

  /// Removes the leaf at `slot`; the slot becomes reusable.
  void erase(std::size_t slot) {
    RTCAC_REQUIRE(slot < capacity_ && live_[slot],
                  "StreamMergeTree: erase of a slot that is not live");
    leaf_segments_ -= leaves_[slot].size();
    leaves_[slot] = Stream{};
    live_[slot] = 0;
    --live_count_;
    free_.push_back(slot);
    mark_path_dirty(slot);
  }

  /// The multiplex of all live leaves.  Flushes pending re-merges
  /// (children before parents), then materializes the root.  The zero
  /// stream when the tree is empty.
  [[nodiscard]] Stream aggregate(Arena& arena) {
    flush(arena);
    return materialized();
  }

  /// The root aggregate without flushing — valid only when no re-merge
  /// is pending (i.e. after aggregate() ran for the latest mutation).
  /// Lets const audits re-derive what aggregate() returned.
  [[nodiscard]] Stream materialized() const {
    RTCAC_REQUIRE(!any_dirty_,
                  "StreamMergeTree: materialized() with a flush pending");
    std::vector<Segment> root(root_span().begin(), root_span().end());
    if (root.empty()) return Stream{};
    if (capacity_ == 1) {
      // Single-slot tree: the root is the raw leaf, which no internal
      // node has capped yet.
      coalesce_conservative(root, budget_);
    }
    return Stream::from_canonical(std::move(root));
  }

  [[nodiscard]] const Stream& leaf(std::size_t slot) const {
    RTCAC_REQUIRE(slot < capacity_ && live_[slot],
                  "StreamMergeTree: leaf() of a slot that is not live");
    return leaves_[slot];
  }
  [[nodiscard]] bool leaf_live(std::size_t slot) const noexcept {
    return slot < capacity_ && live_[slot] != 0;
  }

  [[nodiscard]] std::size_t size() const noexcept { return live_count_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t coalesce_budget() const noexcept {
    return budget_;
  }

  /// Segments currently stored (leaves + internal nodes), and the
  /// high-water mark of that total — the bench's memory columns.
  [[nodiscard]] std::size_t held_segments() const noexcept {
    return leaf_segments_ + node_segments_;
  }
  [[nodiscard]] std::size_t peak_segments() const noexcept {
    return peak_segments_;
  }
  /// Bytes of segment storage held by node buffers (capacity, not size).
  [[nodiscard]] std::size_t held_bytes() const noexcept {
    return node_bytes_;
  }

  /// Audit: re-derives every internal node from its children and
  /// compares bitwise; also re-checks the slot bookkeeping.  O(n).
  /// False if a flush is pending (mutators must aggregate() before the
  /// audit runs).
  [[nodiscard]] bool coherent() const {
    if (any_dirty_) return false;
    std::size_t live = 0;
    std::size_t leaf_segs = 0;
    for (std::size_t s = 0; s < capacity_; ++s) {
      if (live_[s]) {
        ++live;
        leaf_segs += leaves_[s].size();
      } else if (!leaves_[s].is_zero()) {
        return false;  // erased leaves must not retain traffic
      }
    }
    if (live != live_count_ || leaf_segs != leaf_segments_) return false;
    if (free_.size() != capacity_ - live_count_) return false;
    for (std::size_t i = capacity_; i-- > 1;) {
      std::vector<Segment> expect;
      merge_children(i, expect);
      if (!(expect == nodes_[i])) return false;
    }
    return true;
  }

 private:
  /// Heap layout: internal nodes are nodes_[1 .. capacity_-1]; the leaf
  /// at slot s sits at implicit index capacity_ + s.  A node's value is
  /// the canonical multiplex of its subtree's live leaves (capped at
  /// budget_), an empty buffer for an empty subtree.
  [[nodiscard]] std::span<const Segment> child_span(std::size_t idx) const {
    if (idx >= capacity_) {
      const std::size_t s = idx - capacity_;
      if (!live_[s]) return {};
      return leaves_[s].segments();
    }
    return nodes_[idx];
  }

  [[nodiscard]] std::span<const Segment> root_span() const {
    return capacity_ == 1 ? child_span(1) : std::span<const Segment>(nodes_[1]);
  }

  void mark_path_dirty(std::size_t slot) {
    any_dirty_ = true;
    for (std::size_t i = (capacity_ + slot) / 2; i >= 1; i /= 2) {
      dirty_[i] = 1;
    }
  }

  /// Computes node i's value from its children into `out` (assumed
  /// empty).  Shared by the hot path (flush) and the audit (coherent).
  void merge_children(std::size_t i, std::vector<Segment>& out) const {
    const auto left = child_span(2 * i);
    const auto right = child_span(2 * i + 1);
    if (left.empty() && right.empty()) return;
    if (left.empty() || right.empty()) {
      const auto& only = left.empty() ? right : left;
      out.assign(only.begin(), only.end());
    } else {
      detail::multiplex_union(left, right, out);
      Stream::canonicalize_segments(out);
    }
    coalesce_conservative(out, budget_);
  }

  void flush(Arena& arena) {
    if (!any_dirty_) return;
    for (std::size_t i = capacity_; i-- > 1;) {
      if (!dirty_[i]) continue;
      dirty_[i] = 0;
      Buffer next =
          arena.acquire(child_span(2 * i).size() + child_span(2 * i + 1).size());
      merge_children(i, next);
      node_segments_ += next.size() - nodes_[i].size();
      node_bytes_ += (next.capacity() - nodes_[i].capacity()) * sizeof(Segment);
      arena.release(std::move(nodes_[i]));
      nodes_[i] = std::move(next);
    }
    any_dirty_ = false;
    note_peak();
  }

  /// Doubles the slot count.  Leaf positions keep their slots; every
  /// internal node is rebuilt on the next flush (amortized O(1) per
  /// insert, as with any doubling scheme).
  void grow(Arena& arena) {
    const std::size_t old_capacity = capacity_;
    for (std::size_t i = 1; i < old_capacity; ++i) {
      node_segments_ -= nodes_[i].size();
      node_bytes_ -= nodes_[i].capacity() * sizeof(Segment);
      arena.release(std::move(nodes_[i]));
    }
    reset_layout(old_capacity * 2);
    // Old leaves (slots < old_capacity) keep their slots; dirty every
    // internal node so the next flush rebuilds the whole tree.
    dirty_.assign(capacity_, 1);
    any_dirty_ = true;
  }

  void reset_layout(std::size_t capacity) {
    capacity_ = capacity;
    leaves_.resize(capacity_);
    live_.resize(capacity_, 0);
    nodes_.resize(capacity_);
    dirty_.assign(capacity_, 0);
    free_.clear();
    for (std::size_t s = capacity_; s-- > 0;) {
      if (!live_[s]) free_.push_back(s);
    }
  }

  void note_peak() {
    peak_segments_ = std::max(peak_segments_, held_segments());
  }

  std::size_t budget_ = 0;
  std::size_t capacity_ = 0;
  std::size_t live_count_ = 0;
  std::vector<Stream> leaves_;
  std::vector<char> live_;
  std::vector<Buffer> nodes_;   // nodes_[0] unused
  std::vector<char> dirty_;     // dirty_[0] unused
  std::vector<std::size_t> free_;
  bool any_dirty_ = false;
  std::size_t leaf_segments_ = 0;
  std::size_t node_segments_ = 0;
  std::size_t node_bytes_ = 0;
  std::size_t peak_segments_ = 0;
};

using StreamMergeTree = BasicStreamMergeTree<double>;
using ExactStreamMergeTree = BasicStreamMergeTree<Rational>;

}  // namespace rtcac
