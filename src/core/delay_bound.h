// rtcac/core/delay_bound.h
//
// Worst-case queueing analysis at a static-priority FIFO queueing point
// (Section 4.2, Algorithm 4.1 of the paper).
//
// Inputs:
//   S  — the aggregated worst-case arrival stream of priority p;
//   S1 — the *filtered* aggregated arrival stream of all priorities higher
//        than p (filtered = the rate at which higher-priority traffic can
//        actually occupy the outgoing link, hence <= 1 everywhere).
//
// The service available to priority p at time u is 1 - r1(u).  A bit of S
// arriving at time t departs, in the worst case, at
//     g(t) = inf { u : G(u) > A(t) },   G(u) = ∫₀ᵘ (1 - r1),
// because all A(t) earlier-or-equal priority-p bits must be transmitted
// first (FIFO within the priority) and higher-priority traffic preempts
// the link.  The queueing delay bound is
//     D = sup_t max(0, g(t) - t),
// the horizontal deviation between the arrival curve A and the service
// curve G.  A is concave and G convex (r non-increasing, r1 non-increasing
// so 1 - r1 non-decreasing), so D(t) is piecewise linear with breakpoints
// only at breakpoints of S and at preimages of breakpoints of S1 —
// evaluating those finitely many candidates is exact; no maximization over
// a continuum is needed (the paper's "easier delay bound calculation"
// claim).
//
// The strict inequality in g(t) (upper inverse of G) matters: when
// higher-priority traffic saturates the link over an interval, G is flat
// there and a priority-p bit arriving while the backlog is exactly served
// can still be stuck behind the saturation until the interval *ends*.  The
// lower inverse would under-report the bound by the width of the flat
// segment.  When G saturates permanently at exactly A(t) (zero tail
// capacity), the last bit departs when G first reaches A(t), so the lower
// inverse applies in that boundary case.
//
// The buffer requirement is the vertical deviation sup_t (A(t) - G(t)),
// provided by max_backlog().
//
// Both return nullopt when the bound is infinite, i.e. tail arrivals
// outpace tail service — an admission controller must reject such a
// configuration.

#pragma once

#include <algorithm>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/bitstream.h"
#include "util/contract.h"

namespace rtcac {

namespace detail {

/// Piecewise-linear, non-decreasing, convex service curve
/// G(u) = ∫₀ᵘ (1 - r1) for a filtered higher-priority stream r1 (<= 1).
template <typename Num>
class ServiceCurve {
 public:
  explicit ServiceCurve(const BasicBitStream<Num>& higher_priority_filtered) {
    starts_.reserve(higher_priority_filtered.size());
    capacities_.reserve(higher_priority_filtered.size());
    for (const auto& seg : higher_priority_filtered.segments()) {
      Num capacity = NumTraits<Num>::snap_nonnegative(Num(1) - seg.rate);
      RTCAC_REQUIRE(!(capacity < Num(0)),
                    "ServiceCurve: higher-priority stream must be filtered "
                    "(rate <= 1)");
      starts_.push_back(seg.start);
      capacities_.push_back(capacity);
    }
    values_.resize(starts_.size());
    values_[0] = Num(0);
    for (std::size_t k = 1; k < starts_.size(); ++k) {
      values_[k] =
          values_[k - 1] + capacities_[k - 1] * (starts_[k] - starts_[k - 1]);
    }
  }

  /// Service available in [0, u].
  [[nodiscard]] Num operator()(const Num& u) const {
    if (u <= Num(0)) return Num(0);
    std::size_t k = 0;
    while (k + 1 < starts_.size() && starts_[k + 1] <= u) ++k;
    return values_[k] + capacities_[k] * (u - starts_[k]);
  }

  /// Tail service rate (capacity after the last breakpoint).
  [[nodiscard]] Num tail_capacity() const { return capacities_.back(); }

  [[nodiscard]] std::span<const Num> breakpoints() const { return starts_; }

  /// G evaluated at each breakpoint (values()[k] == G(breakpoints()[k])).
  [[nodiscard]] std::span<const Num> values() const { return values_; }

  /// Service rate in force on segment k.
  [[nodiscard]] const Num& capacity(std::size_t k) const {
    return capacities_[k];
  }

  /// Worst-case departure time for cumulative demand `a`:
  /// inf{u : G(u) > a}, falling back to the lower inverse when G saturates
  /// at exactly a.  nullopt if G never reaches a (demand never served).
  [[nodiscard]] std::optional<Num> departure(const Num& a) const {
    if (a < Num(0)) return Num(0);
    // Find the first segment k whose *end value* exceeds a; departure lies
    // inside it.  Flat (zero-capacity) segments are skipped, which is
    // exactly the upper-inverse semantics.
    for (std::size_t k = 0; k + 1 < starts_.size(); ++k) {
      if (values_[k + 1] > a) {
        // capacities_[k] > 0, otherwise values_ would not have grown.
        return starts_[k] + (a - values_[k]) / capacities_[k];
      }
    }
    const std::size_t last = starts_.size() - 1;
    if (capacities_[last] > Num(0)) {
      const Num excess = a - values_[last];
      return starts_[last] + (excess > Num(0) ? excess / capacities_[last]
                                              : Num(0));
    }
    // Service saturates at values_[last].  Served only if demand does not
    // exceed it; the final bit departs when G first reached a.
    const bool served = NumTraits<Num>::kExact
                            ? (values_[last] >= a)
                            : NumTraits<Num>::nearly_leq(a, values_[last]);
    if (!served) return std::nullopt;
    return lower_inverse(a);
  }

 private:
  /// Earliest u with G(u) >= a; requires G to reach a.
  [[nodiscard]] Num lower_inverse(const Num& a) const {
    if (a <= Num(0)) return Num(0);
    for (std::size_t k = 0; k < starts_.size(); ++k) {
      const bool last = (k + 1 == starts_.size());
      const Num end_value = last ? values_[k] : values_[k + 1];
      if (!last && end_value >= a && capacities_[k] > Num(0)) {
        return starts_[k] + (a - values_[k]) / capacities_[k];
      }
      if (last) {
        if (capacities_[k] > Num(0)) {
          const Num excess = a - values_[k];
          return starts_[k] +
                 (excess > Num(0) ? excess / capacities_[k] : Num(0));
        }
        return starts_[k];
      }
    }
    return starts_.back();  // unreachable
  }

  std::vector<Num> starts_;
  std::vector<Num> capacities_;
  std::vector<Num> values_;  // G at each breakpoint
};

}  // namespace detail

/// Worst-case queueing delay bound for priority-p arrivals S given the
/// filtered higher-priority arrivals S1 (Algorithm 4.1).  For the highest
/// priority pass the zero stream as S1.  Returns nullopt when unbounded.
///
/// Evaluated as a single merge sweep: the candidate maximizers (breakpoints
/// of S plus the preimages under A of the service-curve breakpoints) are
/// visited in time order while cursors over S and G advance monotonically,
/// so the whole supremum costs O(|S| + |G|) instead of the
/// O((|S| + |G|)²) of re-evaluating A and G⁻¹ from the origin per
/// candidate (delay_bound_reference below, the pre-optimization form kept
/// as the oracle).  Every candidate's value is computed by the same
/// arithmetic in the same order as the reference, so the two agree exactly
/// — not merely within tolerance — for both scalar instantiations.
template <typename Num>
std::optional<Num> delay_bound(const BasicBitStream<Num>& s,
                               const BasicBitStream<Num>& s1_filtered) {
  if (s.is_zero()) return Num(0);  // no arrivals, no delay
  const detail::ServiceCurve<Num> g(s1_filtered);

  // Unbounded iff arrivals outpace service forever.
  const bool tail_stable =
      NumTraits<Num>::kExact
          ? (s.final_rate() <= g.tail_capacity())
          : NumTraits<Num>::nearly_leq(s.final_rate(), g.tail_capacity());
  if (!tail_stable) return std::nullopt;

  const auto segs = s.segments();
  const auto gb = g.breakpoints();
  const auto gv = g.values();

  // Preimage times t with A(t) = G(u_k) for each service breakpoint u_k.
  // The G(u_k) are non-decreasing, so one forward cursor over S computes
  // them all (time_of_bits semantics, incrementalized).
  std::vector<Num> pre;
  pre.reserve(gb.size());
  {
    std::size_t k = 0;
    Num area{0};
    for (const Num& bits : gv) {
      if (bits <= Num(0)) {
        pre.push_back(Num(0));
        continue;
      }
      while (k + 1 < segs.size()) {
        const Num gained =
            segs[k].rate * (segs[k + 1].start - segs[k].start);
        if (area + gained >= bits) break;
        area += gained;
        ++k;
      }
      if (k + 1 < segs.size()) {
        // rate > 0 here, or an earlier segment would already have
        // accumulated `bits`.
        pre.push_back(segs[k].start + (bits - area) / segs[k].rate);
      } else if (segs[k].rate == Num(0)) {
        const bool reached = NumTraits<Num>::kExact
                                 ? (area >= bits)
                                 : NumTraits<Num>::nearly_leq(bits, area);
        if (reached) pre.push_back(segs[k].start);
        // else: the stream never produces that much demand — no candidate.
      } else {
        pre.push_back(segs[k].start + (bits - area) / segs[k].rate);
      }
    }
  }

  // Sweep the merged candidate list in time order.  `ak`/`aarea` form the
  // arrival cursor (A(t)), `dk` the departure cursor over G; both only
  // ever move forward because candidate times — and therefore demands —
  // are non-decreasing.
  std::size_t ak = 0;
  Num aarea{0};
  std::size_t dk = 0;
  const std::size_t glast = gb.size() - 1;
  Num best{0};
  std::size_t si = 0;
  std::size_t pi = 0;
  while (si < segs.size() || pi < pre.size()) {
    Num t{};
    if (pi >= pre.size() ||
        (si < segs.size() && !(pre[pi] < segs[si].start))) {
      t = segs[si++].start;
    } else {
      t = pre[pi++];
    }
    // A(t), incrementally.
    while (ak + 1 < segs.size() && segs[ak + 1].start <= t) {
      aarea += segs[ak].rate * (segs[ak + 1].start - segs[ak].start);
      ++ak;
    }
    const Num a =
        t <= Num(0) ? Num(0) : aarea + segs[ak].rate * (t - segs[ak].start);
    // Departure time inf{u : G(u) > a}, incrementally (upper inverse;
    // flat segments are skipped by the cursor advance).
    while (dk + 1 < gb.size() && !(gv[dk + 1] > a)) ++dk;
    Num depart{};
    if (dk < glast) {
      depart = gb[dk] + (a - gv[dk]) / g.capacity(dk);
    } else if (g.capacity(glast) > Num(0)) {
      const Num excess = a - gv[glast];
      depart = gb[glast] +
               (excess > Num(0) ? excess / g.capacity(glast) : Num(0));
    } else {
      // Saturated tail: rare, delegate to the reference scan (which ends
      // in the lower inverse when the demand is exactly served).
      const auto served = g.departure(a);
      if (!served.has_value()) return std::nullopt;  // demand never served
      depart = *served;
    }
    if (depart - t > best) best = depart - t;
  }
  return best;
}

/// Pre-optimization evaluation of the same bound: materialize every
/// candidate, then re-evaluate A (bits_before) and the departure map from
/// the origin for each one.  O((|S| + |G|)²).  Kept verbatim as the
/// reference the sweep is property-tested against and as the baseline the
/// admission benchmark measures (docs/PERFORMANCE.md).
template <typename Num>
std::optional<Num> delay_bound_reference(
    const BasicBitStream<Num>& s, const BasicBitStream<Num>& s1_filtered) {
  if (s.is_zero()) return Num(0);  // no arrivals, no delay
  const detail::ServiceCurve<Num> g(s1_filtered);

  // Unbounded iff arrivals outpace service forever.
  const bool tail_stable =
      NumTraits<Num>::kExact
          ? (s.final_rate() <= g.tail_capacity())
          : NumTraits<Num>::nearly_leq(s.final_rate(), g.tail_capacity());
  if (!tail_stable) return std::nullopt;

  // Candidate maximizers: breakpoints of S, plus the (earliest) arrival
  // times whose cumulative demand matches the service level at a
  // breakpoint of G — where the departure-time map changes slope.
  std::vector<Num> candidates;
  candidates.reserve(s.size() + g.breakpoints().size());
  for (const auto& seg : s.segments()) candidates.push_back(seg.start);
  for (const auto& u : g.breakpoints()) {
    if (const auto t = s.time_of_bits(g(u)); t.has_value()) {
      candidates.push_back(*t);
    }
  }

  Num best{0};
  for (const Num& t : candidates) {
    const auto depart = g.departure(s.bits_before(t));
    if (!depart.has_value()) return std::nullopt;  // demand never served
    if (*depart - t > best) best = *depart - t;
  }
  return best;
}

/// Worst-case backlog (buffer requirement, in cell times' worth of bits =
/// cells) of the priority-p queue: the vertical deviation
/// sup_t (A(t) - G(t)).  Returns nullopt when unbounded.
template <typename Num>
std::optional<Num> max_backlog(const BasicBitStream<Num>& s,
                               const BasicBitStream<Num>& s1_filtered) {
  if (s.is_zero()) return Num(0);
  const detail::ServiceCurve<Num> g(s1_filtered);

  const bool tail_stable =
      NumTraits<Num>::kExact
          ? (s.final_rate() <= g.tail_capacity())
          : NumTraits<Num>::nearly_leq(s.final_rate(), g.tail_capacity());
  if (!tail_stable) return std::nullopt;

  // A - G is piecewise linear with breakpoints at the union of both
  // breakpoint sets; its maximum is attained at one of them (the tail
  // slope is non-positive by the stability check).
  Num best{0};
  for (const auto& seg : s.segments()) {
    const Num v = s.bits_before(seg.start) - g(seg.start);
    if (v > best) best = v;
  }
  for (const auto& u : g.breakpoints()) {
    const Num v = s.bits_before(u) - g(u);
    if (v > best) best = v;
  }
  const Num last =
      std::max(s.segments().back().start, g.breakpoints().back());
  const Num v = s.bits_before(last) - g(last);
  if (v > best) best = v;
  return best;
}

}  // namespace rtcac
