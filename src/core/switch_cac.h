// rtcac/core/switch_cac.h
//
// Per-switch connection admission control state and check — the heart of
// Section 4.3 of the paper.
//
// A switch with static-priority FIFO output queues keeps, for every
// (incoming port i, outgoing port j, priority p), the worst-case arrival
// streams of the connections routed (i -> j) at priority p.  From these it
// derives, per the paper's bookkeeping:
//
//   S_ia(i,j,p)   aggregate of the (i,j,p) connection arrival streams
//   S_if(i,j,p)   = filter(S_ia(i,j,p))      — smoothed by the in-link
//   S_oa(j,p)     = mux_i S_if(i,j,p)        — offered to out-queue (j,p)
//   S_hp_ia(i,j,p) aggregate over priorities *higher* than p
//   S_of(j,p)     = filter(mux_i filter(S_hp_ia(i,j,p)))
//                                            — hp traffic on out-link j
//   D'(j,p)       = delay_bound(S_oa(j,p), S_of(j,p))
//
// The switch advertises a fixed bound Dmax(j,p) per outgoing queue (its
// FIFO depth in cells); a new connection is admissible iff, with its
// stream added, D'(j,p) and D'(j,q) for every lower priority q stay within
// the advertised bounds (higher priorities cannot be affected).  Because
// the advertised bounds are fixed, upstream CDV accumulation never needs
// to be re-iterated when load changes — the paper's key simplification.
//
// check() is a pure trial; add()/remove() mutate state.  remove() restores
// the exact state (aggregates are rebuilt from the per-connection records,
// so floating-point drift cannot accumulate across setup/teardown cycles).
//
// Admission hot path (docs/PERFORMANCE.md): every derived stream the check
// needs — the filtered per-cell streams S_if, the higher-priority unions,
// the per-(out, priority) offered aggregates S_oa / filtered aggregates
// S_of and the computed bounds D' — is cached with dirty-tracking.  A
// mutation at cell (i, j, p) invalidates only the entries that cell feeds
// (its own filtered stream, S_oa(j, p), and the higher-priority caches of
// every level below p at out-port j); everything else survives, so check()
// composes cached streams with the candidate via the k-way multiplex_all
// instead of re-folding the whole switch.  check_from_scratch() keeps the
// pre-optimization fold exactly as it was: it is the oracle the
// cache-coherence property tests compare against and the baseline the
// admission benchmark measures.  Under RTCAC_CONTRACT_AUDIT every mutation
// re-verifies cache coherence (cache_coherent()) alongside the existing
// state-consistency and bandwidth-conservation audits.
//
// Scaling (docs/PERFORMANCE.md, "Mergeable aggregates"): each S_ia cell is
// backed by a BasicStreamMergeTree (core/merge_tree.h) owning the member
// arrival streams as leaves, so add()/remove() re-merge only an O(log n)
// root path instead of refolding the cell, with node buffers pooled in a
// per-switch BasicStreamArena (core/stream_arena.h).  With
// Config::coalesce_budget == 0 (the default) aggregates are exact and the
// behavior is unchanged; a non-zero budget caps every tree node at that
// many segments by conservative breakpoint dropping — the aggregate then
// *dominates* the exact multiplex pointwise (offered load only ever
// over-estimated, delay bounds only ever larger), so check() may reject
// connections the exact oracle admits but can never admit one it rejects.
// check_from_scratch() stays exact in both modes: it folds straight from
// the per-connection records and never reads the (possibly coalesced)
// aggregates.
//
// Fault tolerance: a commit may carry a *lease* — an expiry instant on the
// caller's clock.  A hop reserved by a distributed SETUP holds its
// bandwidth only until the lease runs out; CONNECTED (via
// ConnectionManager::adopt) makes it permanent, retransmitted SETUPs renew
// it, and reclaim(now) sweeps whatever expired so a lost message can never
// leak reserved bandwidth forever (docs/FAULT_TOLERANCE.md).
//
// Like the stream algebra, the engine is generic over its scalar:
// `SwitchCac` (double) is the production instantiation; `ExactSwitchCac`
// (Rational) decides exactly at the boundary — a computed bound equal to
// the advertised bound admits, bit for bit, independent of evaluation
// order.  Both are explicitly instantiated in switch_cac.cpp.

#pragma once

#include <cstddef>
#include <limits>
#include <map>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "core/bitstream.h"
#include "core/connection.h"
#include "core/delay_bound.h"
#include "core/merge_tree.h"
#include "core/point_snapshot.h"
#include "core/stream_arena.h"
#include "core/stream_ops.h"
#include "util/contract.h"

namespace rtcac {

struct SwitchCacTestAccess;  // white-box corruption hook for audit tests

/// Allocation/footprint counters of one switch's mergeable-aggregate
/// storage (merge trees + segment arena); reported by the admission bench
/// as the memory columns of BENCH_admission.json.
struct CacArenaStats {
  /// Bytes of segment storage parked in the arena pool (reusable).
  std::size_t pooled_bytes = 0;
  /// Bytes of segment storage held by live merge-tree node buffers.
  std::size_t held_bytes = 0;
  /// Segments currently stored across all trees (leaves + nodes).
  std::size_t held_segments = 0;
  /// Sum of each tree's high-water segment count over its lifetime.
  std::size_t peak_segments = 0;
  /// Buffer acquisitions, and how many the arena served from its pool
  /// instead of the heap.
  std::size_t arena_acquires = 0;
  std::size_t arena_reuses = 0;
};

/// CAC state of one static-priority FIFO switch.
template <typename Num>
class BasicSwitchCac {
 public:
  using Stream = BasicBitStream<Num>;
  using CheckResult = BasicSwitchCheckResult<Num>;

  struct Config {
    std::size_t in_ports = 0;
    std::size_t out_ports = 0;
    std::size_t priorities = 1;
    /// Default advertised per-queue delay bound Dmax (cell times); equal
    /// to the FIFO queue depth in cells, per the paper's RTnet setup.
    Num advertised_bound = Num(32);
    /// Per-node segment cap of the mergeable aggregates.  0 (default)
    /// means exact aggregates; a value >= 2 bounds every aggregate's
    /// size, making per-admission cost independent of population at the
    /// price of admit-side-conservative (never optimistic) decisions —
    /// see the header comment.
    std::size_t coalesce_budget = 0;
  };

  /// Throws std::invalid_argument on a degenerate config.
  explicit BasicSwitchCac(const Config& config);

  [[nodiscard]] std::size_t in_ports() const noexcept {
    return config_.in_ports;
  }
  [[nodiscard]] std::size_t out_ports() const noexcept {
    return config_.out_ports;
  }
  [[nodiscard]] std::size_t priorities() const noexcept {
    return config_.priorities;
  }

  /// Advertised (fixed) bound for outgoing queue (j, p).
  [[nodiscard]] Num advertised(std::size_t out_port, Priority priority) const;
  void set_advertised(std::size_t out_port, Priority priority, Num bound);

  /// Trial admission of a connection with worst-case arrival stream
  /// `arrival` (already CDV-distorted for this hop) routed in->out at
  /// `priority`.  Does not mutate state.
  [[nodiscard]] CheckResult check(std::size_t in_port, std::size_t out_port,
                                  Priority priority,
                                  const Stream& arrival) const;

  /// Same trial decision computed the pre-optimization way: every S_ia
  /// cell re-folded straight from the per-connection records with two-way
  /// multiplex, every bound evaluated by the reference candidate scan, no
  /// caches (and no coalesced aggregates) touched.  Kept as the exact
  /// oracle for the cache-coherence and conservative-dominance property
  /// suites and as the baseline bench/cac_admission_bench measures the
  /// fast path against.
  [[nodiscard]] CheckResult check_from_scratch(std::size_t in_port,
                                               std::size_t out_port,
                                               Priority priority,
                                               const Stream& arrival) const;

  /// Lease expiry marking a permanent (non-expiring) commitment.
  static constexpr double kPermanentLease =
      std::numeric_limits<double>::infinity();

  /// Commits a connection.  Call after a successful check(); add() itself
  /// does not re-verify bounds.  Throws std::invalid_argument on duplicate
  /// id or out-of-range ports.  `lease_expiry` is the instant (caller's
  /// clock) the reservation may be reclaimed as an orphan; the default
  /// commits permanently.
  void add(ConnectionId id, std::size_t in_port, std::size_t out_port,
           Priority priority, const Stream& arrival,
           double lease_expiry = kPermanentLease);

  /// Removes a connection; returns false if the id is unknown.
  bool remove(ConnectionId id);

  /// Removes every (known) id in `ids` in one batch — each touched S_ia
  /// cell is rebuilt once and the invariant audit runs once, the same
  /// amortization reclaim() uses.  Unknown ids are skipped.  Returns the
  /// number of connections actually removed.
  std::size_t remove_many(std::span<const ConnectionId> ids);

  /// True iff `id` currently holds a reservation here.
  [[nodiscard]] bool contains(ConnectionId id) const noexcept {
    return records_.contains(id);
  }

  /// Extends (or shortens) the lease of a committed connection; returns
  /// false if the id is unknown.
  bool renew_lease(ConnectionId id, double lease_expiry);

  /// Converts a leased reservation into a permanent one (CONNECTED
  /// confirmed end to end); returns false if the id is unknown.
  bool make_permanent(ConnectionId id);

  /// Lease expiry of a committed connection.  Throws for an unknown id.
  [[nodiscard]] double lease_expiry(ConnectionId id) const;

  /// Removes every reservation whose lease expired at or before `now` and
  /// returns the reclaimed connection ids (ascending).  Permanent
  /// commitments are never reclaimed.
  std::vector<ConnectionId> reclaim(double now);

  /// Ids of all committed connections, ascending.
  [[nodiscard]] std::vector<ConnectionId> connection_ids() const;

  /// Ids of the connections queued at (out_port, priority), ascending —
  /// served from the per-cell membership index, not a record scan.
  [[nodiscard]] std::vector<ConnectionId> connection_ids(
      std::size_t out_port, Priority priority) const;

  /// Computed worst-case delay bound D'(j,p) with the current connection
  /// set; nullopt when unbounded.  Zero traffic yields 0.
  [[nodiscard]] std::optional<Num> computed_bound(std::size_t out_port,
                                                  Priority priority) const;

  /// Worst-case backlog (buffer requirement, cells) of queue (j, p);
  /// nullopt when unbounded.
  [[nodiscard]] std::optional<Num> buffer_requirement(
      std::size_t out_port, Priority priority) const;

  [[nodiscard]] std::size_t connection_count() const noexcept {
    return records_.size();
  }

  /// Connections queued at (out_port, priority).
  [[nodiscard]] std::size_t connection_count(std::size_t out_port,
                                             Priority priority) const;

  /// Long-run (sustained) load offered to queue (out_port, priority):
  /// the tail rate of the offered aggregate, normalized to the link.
  [[nodiscard]] Num sustained_load(std::size_t out_port,
                                   Priority priority) const;

  /// Aggregated arrival stream S_ia(i,j,p) (mostly for tests/diagnostics).
  [[nodiscard]] const Stream& arrival_aggregate(std::size_t in_port,
                                                std::size_t out_port,
                                                Priority priority) const;

  /// Verifies the aggregate state against the per-connection records:
  /// merge-tree node coherence, slot bookkeeping, and — in exact mode —
  /// that every cached aggregate equals the mux of its component streams
  /// (within tolerance).  In coalescing mode the aggregate must instead
  /// dominate the exact mux pointwise with the tail rate preserved (the
  /// conservative contract).  Test/diagnostic hook; O(n).
  [[nodiscard]] bool state_consistent() const;

  /// Verifies sustained-bandwidth conservation: for every S_ia cell, the
  /// aggregate's tail rate equals the sum of its component connections'
  /// tail rates (the multiplex algebra is rate-additive, so any drift
  /// means the bookkeeping corrupted an aggregate).  Test/diagnostic
  /// hook; O(n).
  [[nodiscard]] bool bandwidth_conserved() const;

  /// Verifies that every *clean* (non-dirty) derived-stream/bound cache
  /// entry equals its from-scratch recomputation.  Dirty entries are
  /// skipped: they are recomputed on next use by construction.
  /// Test/diagnostic hook; O(n).
  [[nodiscard]] bool cache_coherent() const;

  /// Fills every lazy derived-stream/bound cache so no entry is left
  /// dirty.  The concurrency layer (core/concurrent_cac.h) calls this
  /// after every mutation, before releasing the shard's exclusive lock:
  /// a fully primed switch makes check() and the bound queries genuinely
  /// read-only, so any number of readers may run them concurrently under
  /// a shared lock without racing on the mutable cache members.
  void prime_caches() const;

  /// Allocation counters of the merge-tree/arena storage (bench hook).
  [[nodiscard]] CacArenaStats arena_stats() const;

  /// Immutable export of out-port `out_port`'s derived streams for the
  /// optimistic snapshot read path (core/point_snapshot.h).  Sections
  /// whose priority appears in `stale_priorities` are rebuilt from the
  /// caches; every other section is re-linked (shared) from `previous`,
  /// which must be a prior export of the same out-port — or nullptr to
  /// rebuild everything.  Requires primed caches (prime_caches()), which
  /// makes the export a pure read: safe under the concurrency layer's
  /// shared lock.
  [[nodiscard]] std::shared_ptr<const BasicPointSections<Num>>
  export_point_sections(std::size_t out_port,
                        const BasicPointSections<Num>* previous,
                        std::span<const std::size_t> stale_priorities) const;

  /// Queue keys (out_port * priorities + priority) whose computed bound
  /// is currently dirty — exactly the queueing points the mutations
  /// since the last priming invalidated, i.e. the snapshot versions the
  /// concurrency layer must advance.  Read it *before* prime_caches():
  /// priming clears the flags.
  [[nodiscard]] std::vector<std::size_t> dirty_queue_keys() const;

  /// The configured per-node segment cap (0 = exact mode).
  [[nodiscard]] std::size_t coalesce_budget() const noexcept {
    return config_.coalesce_budget;
  }

 private:
  struct Record {
    std::size_t in_port;
    std::size_t out_port;
    Priority priority;
    /// Leaf slot of this connection's arrival stream in its cell's merge
    /// tree — the tree owns the stream; read it via cell_trees_[...].leaf.
    std::size_t slot;
    double lease_expiry = kPermanentLease;
  };

  [[nodiscard]] std::size_t cell_index(std::size_t in_port,
                                       std::size_t out_port,
                                       Priority priority) const;
  [[nodiscard]] std::size_t queue_index(std::size_t out_port,
                                        Priority priority) const;
  void check_ports(std::size_t in_port, std::size_t out_port,
                   Priority priority) const;

  /// Rebuilds S_ia(i,j,p) from the cell's membership index (k-way mux of
  /// the member connections' arrival streams).
  [[nodiscard]] Stream rebuild_cell(std::size_t in_port,
                                    std::size_t out_port,
                                    Priority priority) const;

  /// Marks every derived cache fed by cell (i,j,p) dirty.  The only place
  /// invalidation happens; called from each mutator.
  void invalidate_cell(std::size_t in_port, std::size_t out_port,
                       Priority priority);

  /// Erases one record plus its index/aggregate bookkeeping — tree leaf,
  /// membership, lease index — WITHOUT re-merging the touched cell;
  /// returns its cell index.  Shared by remove(), remove_many() and the
  /// batched reclaim().
  std::size_t remove_record_bookkeeping(
      typename std::map<ConnectionId, Record>::iterator it);

  /// Removes (expiry, id) from the finite-lease index; no-op for a
  /// permanent lease.
  void drop_lease_index_entry(double expiry, ConnectionId id);

  /// Rebuilds (and invalidates the derived caches of) every cell index
  /// in `touched` exactly once — `touched` is sorted/deduplicated in
  /// place.  The shared tail of the batched mutators (reclaim,
  /// remove_many).
  void rebuild_cells(std::vector<std::size_t>& touched);

  // --- lazily rebuilt derived-stream caches (cache_coherent() audits) ---

  /// S_if(i,j,p) = filter(S_ia(i,j,p)).
  [[nodiscard]] const Stream& ensure_filtered_cell(std::size_t in_port,
                                                   std::size_t out_port,
                                                   Priority priority) const;
  /// filter of the strictly-higher-priority union on in-link i toward j:
  /// filter(mux_{q < p} S_ia(i,j,q)).
  [[nodiscard]] const Stream& ensure_hp_cell(std::size_t in_port,
                                             std::size_t out_port,
                                             Priority priority) const;
  /// S_oa(j,p) = mux_i S_if(i,j,p).
  [[nodiscard]] const Stream& ensure_offered(std::size_t out_port,
                                             Priority priority) const;
  /// S_of(j,p) = filter(mux_i ensure_hp_cell(i,j,p)).
  [[nodiscard]] const Stream& ensure_hp_filtered(std::size_t out_port,
                                                 Priority priority) const;
  /// D'(j,p) over the committed set (no trial stream).
  [[nodiscard]] const std::optional<Num>& ensure_bound(std::size_t out_port,
                                                       Priority priority) const;

  /// View over the live caches satisfying check_point_view's concept
  /// (core/point_snapshot.h) — check() runs the shared per-point
  /// algorithm through it, so the live path and the exported snapshot
  /// path are one algorithm by construction.  Defined in switch_cac.cpp.
  struct CheckView;

  // --- pre-optimization reference path (frozen; see check_from_scratch) --

  [[nodiscard]] Stream offered_aggregate_scratch(std::size_t out_port,
                                                 Priority priority,
                                                 const Stream* extra,
                                                 std::size_t extra_in,
                                                 Priority extra_prio) const;
  [[nodiscard]] Stream higher_priority_filtered_scratch(
      std::size_t out_port, Priority priority, const Stream* extra,
      std::size_t extra_in, Priority extra_prio) const;

  /// Re-audits the full CAC state (aggregate/record consistency,
  /// bandwidth conservation and cache coherence) via
  /// RTCAC_INVARIANT_AUDIT; compiles to nothing outside audit builds.
  /// Called after every mutation.
  void audit_invariants() const;

  Config config_;
  std::vector<Num> advertised_;        // [out * priorities + prio]
  std::vector<Stream> arrival_aggr_;   // S_ia per (in, out, prio)
  std::vector<std::size_t> cell_counts_;  // #connections per (in, out, prio)
  // Membership index: ids per S_ia cell in insertion order, so rebuilds
  // and per-queue queries never scan the full record map.
  std::vector<std::vector<ConnectionId>> cell_members_;
  std::map<ConnectionId, Record> records_;
  // Mergeable aggregate state: one merge tree per S_ia cell owning the
  // member arrival streams (Record::slot indexes its leaves), node
  // buffers pooled in the arena.  arrival_aggr_[c] is always the
  // materialized root of cell_trees_[c].  Mutated only by the mutators
  // (add/remove*/reclaim paths) — check() and the bound queries never
  // touch either, which is what keeps shared-lock readers in
  // ConcurrentCac race-free.
  std::vector<BasicStreamMergeTree<Num>> cell_trees_;
  BasicStreamArena<Num> stream_arena_;
  // Finite-lease expiries, ordered: reclaim(now) walks the <= now prefix
  // instead of scanning every record.  Permanent commitments are absent.
  std::multimap<double, ConnectionId> lease_index_;

  // Derived-stream caches (indexes mirror arrival_aggr_ / advertised_),
  // rebuilt lazily by the ensure_* accessors; `..._dirty_` set by
  // invalidate_cell().  Mutable: check() and the bound queries are
  // logically const.
  mutable std::vector<Stream> filtered_cell_;        // per cell
  mutable std::vector<Stream> hp_cell_filtered_;     // per cell
  mutable std::vector<Stream> offered_cache_;        // per (out, prio)
  mutable std::vector<Stream> hp_filtered_cache_;    // per (out, prio)
  mutable std::vector<std::optional<Num>> bound_cache_;  // per (out, prio)
  mutable std::vector<char> filtered_cell_dirty_;
  mutable std::vector<char> hp_cell_dirty_;
  mutable std::vector<char> offered_dirty_;
  mutable std::vector<char> hp_filtered_dirty_;
  mutable std::vector<char> bound_dirty_;

  // Lets the invariant-audit tests corrupt internal state in place.
  friend struct SwitchCacTestAccess;
};

/// Production instantiation.
using SwitchCac = BasicSwitchCac<double>;
using SwitchCheckResult = BasicSwitchCheckResult<double>;

/// Exact instantiation: boundary-exact admission decisions.
using ExactSwitchCac = BasicSwitchCac<Rational>;
using ExactSwitchCheckResult = BasicSwitchCheckResult<Rational>;

extern template class BasicSwitchCac<double>;
extern template class BasicSwitchCac<Rational>;

}  // namespace rtcac
