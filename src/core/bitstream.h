// rtcac/core/bitstream.h
//
// The bit-stream traffic model of Zheng et al. (MERL TR-96-21 / ICDCS'97),
// Section 2.
//
// A bit stream S = {(r(k), t(k)), k = 0..m} is a step-wise, non-increasing
// rate function of time: the stream has rate r(k) during [t(k), t(k+1)),
// with t(0) = 0 and t(m+1) = infinity.  Time is measured in cell times
// (the time to transmit one 53-byte cell at full link rate) and rate is
// normalized to the link bandwidth, so a single connection has rates in
// [0, 1] while an aggregate of n simultaneously-arriving streams can reach
// rate n.
//
// The monotonicity (worst-case traffic is front-loaded) is a class
// invariant: every operation in the paper's algebra — delay distortion,
// multiplexing, demultiplexing, link filtering (stream_ops.h) and the
// worst-case queueing analysis (delay_bound.h) — both requires and
// preserves it.
//
// The class is templated on the scalar type.  `BitStream` (double) is the
// production instantiation; `ExactBitStream` (Rational) provides exact
// admission decisions and is used by the tests to cross-validate the
// floating-point code.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <initializer_list>
#include <limits>
#include <optional>
#include <ostream>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/contract.h"
#include "util/rational.h"

namespace rtcac {

struct BitStreamTestAccess;  // white-box corruption hook for audit tests

/// Scalar-type policy for the stream algebra.  The primary template serves
/// exact types (Rational): comparisons are exact and no coalescing slack is
/// applied.
template <typename Num>
struct NumTraits {
  static constexpr bool kExact = true;

  static bool nearly_equal(const Num& a, const Num& b) { return a == b; }
  static bool nearly_leq(const Num& a, const Num& b) { return a <= b; }
  /// Snaps values that are negative only through rounding noise to zero.
  /// For exact types a negative value is a genuine contract violation, so
  /// it is returned unchanged and the caller's validation rejects it.
  static Num snap_nonnegative(const Num& a) { return a; }
};

template <>
struct NumTraits<double> {
  static constexpr bool kExact = false;
  /// Absolute-ish tolerance; rates in this library are O(1)..O(256) and
  /// times O(1e4), so a scaled epsilon keeps comparisons meaningful at
  /// both magnitudes.
  static constexpr double kEps = 1e-9;

  static double scale(double a, double b) {
    return std::max({1.0, std::abs(a), std::abs(b)});
  }
  static bool nearly_equal(double a, double b) {
    return std::abs(a - b) <= kEps * scale(a, b);
  }
  static bool nearly_leq(double a, double b) {
    return a <= b + kEps * scale(a, b);
  }
  static double snap_nonnegative(double a) {
    return (a < 0 && a >= -kEps) ? 0.0 : a;
  }
};

/// One step of a bit stream: the stream runs at `rate` from `start` until
/// the next segment's start (or forever, for the last segment).
template <typename Num>
struct BasicSegment {
  Num rate{};
  Num start{};

  friend bool operator==(const BasicSegment&, const BasicSegment&) = default;
};

/// A worst-case traffic envelope: step-wise non-increasing rate function.
///
/// Invariants (checked at construction):
///   * at least one segment, the first starting at time 0;
///   * segment start times strictly increasing;
///   * rates non-negative and non-increasing;
///   * adjacent segments with (nearly) equal rates are coalesced, so the
///     representation is canonical.
template <typename Num>
class BasicBitStream {
 public:
  using Segment = BasicSegment<Num>;
  using Traits = NumTraits<Num>;

  /// The zero stream (no traffic).
  BasicBitStream()
      : segments_{Segment{Num(0), Num(0)}}, cum_bits_{Num(0)} {}

  /// Constant-rate stream from time 0.  Throws on negative rate.
  static BasicBitStream constant(const Num& rate) {
    return BasicBitStream(std::vector<Segment>{Segment{rate, Num(0)}});
  }

  /// Builds a stream from segments, validating and canonicalizing.
  /// Throws std::invalid_argument on any invariant violation.
  explicit BasicBitStream(std::vector<Segment> segments)
      : segments_(std::move(segments)) {
    canonicalize_segments(segments_);
    rebuild_prefix_areas();
  }

  BasicBitStream(std::initializer_list<Segment> segments)
      : segments_(segments) {
    canonicalize_segments(segments_);
    rebuild_prefix_areas();
  }

  /// Builds a stream from segments that are already canonical (validated,
  /// non-increasing, no coalescable adjacents) — the merge-tree hot path
  /// (core/merge_tree.h) produces exactly such output, so re-running the
  /// full canonicalize pass per aggregate materialization would be pure
  /// overhead.  Audit builds re-verify the claim; a non-canonical input
  /// is a caller bug.
  static BasicBitStream from_canonical(std::vector<Segment> segments) {
    BasicBitStream s(CanonicalTag{}, std::move(segments));
    RTCAC_INVARIANT_AUDIT(
        s.is_canonical_form(),
        "BitStream::from_canonical: input was not canonical");
    return s;
  }

  /// The in-place validation/normalization pass the constructor applies:
  /// snaps rounding noise, enforces the step-wise non-increasing
  /// invariant and coalesces (nearly) equal adjacent rates.  Exposed so
  /// stream composition that assembles segment buffers outside a
  /// BitStream (core/merge_tree.h) shares the one canonical definition
  /// instead of re-implementing it.
  static void canonicalize_segments(std::vector<Segment>& segments) {
    RTCAC_REQUIRE(!segments.empty(), "BitStream: needs at least one segment");
    RTCAC_REQUIRE(segments.front().start == Num(0),
                  "BitStream: first segment must start at 0");
    for (auto& seg : segments) {
      seg.rate = Traits::snap_nonnegative(seg.rate);
      RTCAC_REQUIRE(!(seg.rate < Num(0)), "BitStream: negative rate");
    }
    for (std::size_t k = 1; k < segments.size(); ++k) {
      RTCAC_REQUIRE(segments[k - 1].start < segments[k].start,
                    "BitStream: segment starts must be strictly increasing");
      if (segments[k].rate > segments[k - 1].rate) {
        RTCAC_REQUIRE(
            Traits::nearly_leq(segments[k].rate, segments[k - 1].rate),
            "BitStream: rates must be non-increasing");
        segments[k].rate = segments[k - 1].rate;  // snap rounding noise
      }
    }
    // Coalesce adjacent segments with (nearly) equal rates so equivalent
    // streams have identical representations and repeated algebra does not
    // grow the segment list without bound.
    std::size_t kept = 1;
    for (std::size_t k = 1; k < segments.size(); ++k) {
      if (Traits::nearly_equal(segments[k].rate, segments[kept - 1].rate)) {
        continue;
      }
      segments[kept++] = segments[k];
    }
    segments.resize(kept);
  }

  [[nodiscard]] std::span<const Segment> segments() const noexcept {
    return segments_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return segments_.size(); }

  /// Rate of the stream at time t (t < 0 is treated as 0).  Segment
  /// starts are strictly increasing (class invariant), so the active
  /// segment is found by binary search — O(log m), not a linear scan.
  [[nodiscard]] Num rate_at(const Num& t) const {
    const auto it = first_segment_after(t);
    return it == segments_.begin() ? segments_.front().rate
                                   : std::prev(it)->rate;
  }

  /// Rate of the final (infinite) segment.
  [[nodiscard]] Num final_rate() const noexcept {
    return segments_.back().rate;
  }

  /// Peak (initial) rate.
  [[nodiscard]] Num peak_rate() const noexcept {
    return segments_.front().rate;
  }

  /// True iff the stream carries no traffic at all.
  [[nodiscard]] bool is_zero() const noexcept {
    return segments_.size() == 1 && segments_.front().rate == Num(0);
  }

  /// Re-verifies the class invariant on the current representation:
  /// non-empty, first segment at time 0, strictly increasing starts,
  /// non-negative and non-increasing rates.  The constructor establishes
  /// this; RTCAC_INVARIANT_AUDIT call sites (stream_ops.h, switch_cac.cpp)
  /// re-check it in audit builds to catch corruption after construction.
  [[nodiscard]] bool invariants_hold() const noexcept {
    if (segments_.empty()) return false;
    if (!(segments_.front().start == Num(0))) return false;
    for (std::size_t k = 0; k < segments_.size(); ++k) {
      if (segments_[k].rate < Num(0)) return false;
      if (k > 0) {
        if (!(segments_[k - 1].start < segments_[k].start)) return false;
        if (segments_[k].rate > segments_[k - 1].rate) return false;
      }
    }
    return true;
  }

  /// invariants_hold() plus the canonical-representation guarantee: no
  /// adjacent segments with (nearly) equal rates survive canonicalization,
  /// so a stream claiming to be canonical (from_canonical) must have none.
  [[nodiscard]] bool is_canonical_form() const noexcept {
    if (!invariants_hold()) return false;
    for (std::size_t k = 1; k < segments_.size(); ++k) {
      if (Traits::nearly_equal(segments_[k].rate, segments_[k - 1].rate)) {
        return false;
      }
    }
    return true;
  }

  /// Cumulative bits A(t) = integral of the rate over [0, t].
  /// t < 0 yields 0.  Served from the prefix areas precomputed at
  /// construction (`cum_bits_`, accumulated left-to-right in exactly the
  /// order the former linear scan summed), so the lookup is O(log m) and
  /// bitwise-identical to the scan it replaced.
  [[nodiscard]] Num bits_before(const Num& t) const {
    if (t <= Num(0)) return Num(0);
    // Last segment with start < t: t > 0 and the first segment starts at
    // 0, so the cut is never before begin().
    const auto it = std::prev(first_segment_after(t));
    const auto k = static_cast<std::size_t>(it - segments_.begin());
    return cum_bits_[k] + it->rate * (t - it->start);
  }

  /// Earliest time t with A(t) >= bits; nullopt if the stream never
  /// accumulates that many bits (possible only when the tail rate is 0).
  [[nodiscard]] std::optional<Num> time_of_bits(const Num& bits) const {
    if (bits <= Num(0)) return Num(0);
    Num area{0};
    for (std::size_t k = 0; k < segments_.size(); ++k) {
      const Num seg_start = segments_[k].start;
      const Num rate = segments_[k].rate;
      const bool last = (k + 1 == segments_.size());
      if (!last) {
        const Num seg_len = segments_[k + 1].start - seg_start;
        const Num gained = rate * seg_len;
        if (area + gained >= bits) {
          return seg_start + (bits - area) / rate;  // rate > 0 here
        }
        area += gained;
      } else {
        if (rate == Num(0)) {
          if constexpr (Traits::kExact) {
            if (area >= bits) return seg_start;
          } else {
            if (Traits::nearly_leq(bits, area)) return seg_start;
          }
          return std::nullopt;
        }
        return seg_start + (bits - area) / rate;
      }
    }
    return std::nullopt;  // unreachable; keeps -Wreturn-type quiet
  }

  /// Total bits ever produced; nullopt when infinite (tail rate > 0).
  [[nodiscard]] std::optional<Num> total_bits() const {
    if (final_rate() > Num(0)) return std::nullopt;
    return bits_before(segments_.back().start);
  }

  /// Pointwise comparison: true iff this stream's cumulative function
  /// dominates (is >= at every t) the other's.  Used by tests to verify
  /// that distortion operators only ever make a stream "worse".
  [[nodiscard]] bool dominates(const BasicBitStream& other) const {
    // A_this and A_other are piecewise linear and concave; comparing at
    // every breakpoint of both suffices, plus the tail slopes.
    for (const Segment& s : segments_) {
      if (!Traits::nearly_leq(other.bits_before(s.start),
                              bits_before(s.start))) {
        return false;
      }
    }
    for (const Segment& s : other.segments_) {
      if (!Traits::nearly_leq(other.bits_before(s.start),
                              bits_before(s.start))) {
        return false;
      }
    }
    const Num last =
        std::max(segments_.back().start, other.segments_.back().start);
    if (!Traits::nearly_leq(other.bits_before(last), bits_before(last))) {
      return false;
    }
    return Traits::nearly_leq(other.final_rate(), final_rate());
  }

  /// Structural equality up to the numeric tolerance of Num.
  [[nodiscard]] bool nearly_equal(const BasicBitStream& other) const {
    if (segments_.size() != other.segments_.size()) return false;
    for (std::size_t k = 0; k < segments_.size(); ++k) {
      if (!Traits::nearly_equal(segments_[k].rate, other.segments_[k].rate) ||
          !Traits::nearly_equal(segments_[k].start,
                                other.segments_[k].start)) {
        return false;
      }
    }
    return true;
  }

  friend bool operator==(const BasicBitStream& a,
                         const BasicBitStream& b) = default;

  [[nodiscard]] std::string to_string() const {
    std::ostringstream os;
    os << "{";
    for (std::size_t k = 0; k < segments_.size(); ++k) {
      if (k > 0) os << ", ";
      os << "(" << as_printable(segments_[k].rate) << " @ "
         << as_printable(segments_[k].start) << ")";
    }
    os << "}";
    return os.str();
  }

  friend std::ostream& operator<<(std::ostream& os, const BasicBitStream& s) {
    return os << s.to_string();
  }

 private:
  template <typename T>
  static const T& as_printable(const T& v) {
    return v;
  }

  /// First segment whose start is strictly after t (end() if none);
  /// std::upper_bound over the strictly-increasing segment starts.
  [[nodiscard]] typename std::vector<Segment>::const_iterator
  first_segment_after(const Num& t) const {
    return std::upper_bound(
        segments_.begin(), segments_.end(), t,
        [](const Num& value, const Segment& s) { return value < s.start; });
  }

  struct CanonicalTag {};
  BasicBitStream(CanonicalTag, std::vector<Segment> segments)
      : segments_(std::move(segments)) {
    rebuild_prefix_areas();
  }

  /// Prefix areas for the O(log m) bits_before: cum_bits_[k] is A(t(k)),
  /// accumulated left-to-right exactly as the former linear scan did so
  /// lookups reproduce its partial sums bitwise.
  void rebuild_prefix_areas() {
    cum_bits_.clear();
    cum_bits_.reserve(segments_.size());
    Num area{0};
    for (std::size_t k = 0; k < segments_.size(); ++k) {
      cum_bits_.push_back(area);
      if (k + 1 < segments_.size()) {
        area += segments_[k].rate * (segments_[k + 1].start -
                                     segments_[k].start);
      }
    }
  }

  std::vector<Segment> segments_;
  /// cum_bits_[k] = bits accumulated before segment k starts (A(t(k))).
  std::vector<Num> cum_bits_;

  // Lets the invariant-audit tests corrupt a constructed stream in place
  // (the public API cannot, by design).
  friend struct BitStreamTestAccess;
};

/// Production instantiation: floating point, tolerant comparisons.
using Segment = BasicSegment<double>;
using BitStream = BasicBitStream<double>;

/// Exact instantiation for boundary-exact admission and test oracles.
using ExactSegment = BasicSegment<Rational>;
using ExactBitStream = BasicBitStream<Rational>;

}  // namespace rtcac
