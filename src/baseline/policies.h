// rtcac/baseline/policies.h
//
// The baseline admission schemes of src/baseline/ adapted to the
// pluggable CacPolicy contract of core/path_eval.h, so every engine
// (ConnectionManager, SignalingEngine, AdmissionEngine) can run them
// through the one shared PathEvaluator hop walk and be compared against
// the paper's bit-stream check on identical traces:
//
//   * `peak`     — peak bandwidth allocation (Section 1's strawman): a
//     queueing point admits iff the summed peak cell rates on the
//     outgoing port stay within the unit link bandwidth.  The policy
//     computes no delay bound (verdicts report bound 0); the advertised
//     bound of the PointConfig is still honored for CDV accumulation so
//     cross-engine decisions stay identical.
//
//   * `max_rate` — the maximum-rate-function baseline of [9]
//     (baseline/max_rate_cac.h): one BurstyEnvelope aggregate per
//     outgoing port, upper-bound CDV distortion, no link filtering; a
//     point admits iff the aggregate's delay bound stays within the
//     advertised bound.
//
// The legacy standalone classes (PeakAllocationCac, MaxRateNetworkCac)
// delegate to these same points through a PathEvaluator — the walk,
// rollback and reason formatting live in core/path_eval.*, exactly once.

#pragma once

#include <string_view>

#include "core/path_eval.h"

namespace rtcac {

/// Peak bandwidth allocation per queueing point (sum of PCRs <= 1).
class PeakCacPolicy final : public CacPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "peak";
  }
  [[nodiscard]] std::unique_ptr<PolicyCac> make_point(
      const PointConfig& config) const override;

  [[nodiscard]] static const PeakCacPolicy& instance() noexcept;
};

/// Maximum-rate-function admission ([9]) per queueing point.
class MaxRateCacPolicy final : public CacPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "max_rate";
  }
  [[nodiscard]] std::unique_ptr<PolicyCac> make_point(
      const PointConfig& config) const override;

  [[nodiscard]] static const MaxRateCacPolicy& instance() noexcept;
};

/// The built-in policy registry: "bitstream", "peak", "max_rate".
/// Returns nullptr for unknown names.
[[nodiscard]] const CacPolicy* find_policy(std::string_view name) noexcept;

}  // namespace rtcac
