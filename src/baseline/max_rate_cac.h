// rtcac/baseline/max_rate_cac.h
//
// A maximum-rate-function admission controller in the style of Raha,
// Kamat & Zhao (INFOCOM'96, reference [9] of the paper) — the framework
// the bit-stream CAC improves on.  Two deliberate simplifications relative
// to src/core, matching the paper's stated deltas:
//
//   1. *Upper-bound distortion*: after accumulating CDV, the arrival
//      envelope is A'(I) = A(I + CDV) — the whole early prefix becomes an
//      instantaneous burst, NOT clipped by the incoming link rate.  (The
//      bit-stream model's exact distortion caps the release at link rate.)
//   2. *No link filtering*: aggregates are summed across incoming links
//      without modeling the smoothing each physical link applies, so the
//      analyzed aggregate can exceed the total incoming capacity.
//
// Both make the computed worst-case bounds looser, so this baseline admits
// strictly less traffic — bench/ablation_filtering quantifies the gap on
// the RTnet workload.
//
// The envelope representation is a concave piecewise-linear cumulative
// function with an optional jump at the origin: burst + BitStream.

#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/bitstream.h"
#include "core/connection.h"
#include "core/path_eval.h"
#include "core/stream_ops.h"
#include "core/traffic.h"

namespace rtcac {

/// Arrival envelope with an instantaneous burst: A(I) = burst + S-bits in
/// [0, I].  The burst term is what distinguishes this model from the
/// bit-stream one (a physical link can never deliver a jump).
class BurstyEnvelope {
 public:
  BurstyEnvelope() = default;
  BurstyEnvelope(double burst, BitStream stream);

  /// Envelope of a source contract (no burst: sources are rate-limited).
  static BurstyEnvelope from_traffic(const TrafficDescriptor& traffic);

  [[nodiscard]] double burst() const noexcept { return burst_; }
  [[nodiscard]] const BitStream& stream() const noexcept { return stream_; }

  /// Cumulative bits in [0, t], including the origin jump.
  [[nodiscard]] double bits_before(double t) const;

  /// Upper-bound CDV distortion: A'(I) = A(I + cdv).
  [[nodiscard]] BurstyEnvelope delayed(double cdv) const;

  /// Worst-case aggregate of two envelopes (bursts and rates add).
  [[nodiscard]] BurstyEnvelope multiplexed(const BurstyEnvelope& other) const;

  /// Worst-case FIFO queueing delay of this aggregate over a unit-rate
  /// link (single priority level, as in [9]'s basic configuration);
  /// nullopt when unbounded.
  [[nodiscard]] std::optional<double> delay_bound() const;

  /// Worst-case backlog over a unit-rate link; nullopt when unbounded.
  [[nodiscard]] std::optional<double> max_backlog() const;

 private:
  double burst_ = 0;
  BitStream stream_;
};

/// Network-level admission using the max-rate baseline: each queueing
/// point keeps one aggregate envelope (no in-link structure), advertises a
/// fixed bound, and accumulates CDV as the sum of upstream advertised
/// bounds — the same deployment shape as ConnectionManager so results are
/// directly comparable.
///
/// Per-point state is the `max_rate` CacPolicy (baseline/policies.h) and
/// the route walk is the shared PathEvaluator of core/path_eval.h; this
/// class maps point indices to PolicyCac state and keeps the legacy
/// Result vocabulary.
class MaxRateNetworkCac {
 public:
  /// `queueing_points` abstract link/port slots; `advertised_bound` is the
  /// per-point Dmax in cell times.
  MaxRateNetworkCac(std::size_t queueing_points, double advertised_bound);

  struct Result {
    bool accepted = false;
    ConnectionId id = kInvalidConnection;
    std::string reason;  ///< equals reject.detail when rejected
    std::vector<double> hop_bounds;  ///< computed, at setup
    double e2e_bound_at_setup = 0;
    /// Canonical rejection (core/path_eval.h); reject.hop indexes into
    /// the route given to setup().
    RejectReason reject;
  };

  /// Admits iff every queueing point's recomputed bound stays within the
  /// advertised bound.  `route` lists queueing-point indices in order
  /// (each point at most once).
  Result setup(const TrafficDescriptor& traffic,
               const std::vector<std::size_t>& route);
  bool teardown(ConnectionId id);

  /// Computed bound at a queueing point under current load.
  [[nodiscard]] std::optional<double> computed_bound(std::size_t point) const;
  /// Recomputed end-to-end bound of a live connection; nullopt if unknown
  /// or unbounded.
  [[nodiscard]] std::optional<double> current_e2e_bound(ConnectionId id) const;

  [[nodiscard]] double advertised() const noexcept {
    return advertised_bound_;
  }
  [[nodiscard]] std::size_t connection_count() const noexcept {
    return records_.size();
  }

 private:
  struct Record {
    TrafficDescriptor traffic;
    std::vector<std::size_t> route;
  };

  double advertised_bound_;
  PathEvaluator evaluator_;
  /// One `max_rate` policy point per queueing point (out_port 0).
  std::vector<std::unique_ptr<PolicyCac>> points_;
  std::vector<std::string> point_names_;  ///< "point <i>", stable storage
  std::map<ConnectionId, Record> records_;
  ConnectionId next_id_ = 1;
};

}  // namespace rtcac
