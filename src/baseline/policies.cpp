// rtcac/baseline/policies.cpp — see policies.h for the design.

#include "baseline/policies.h"

#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "baseline/max_rate_cac.h"
#include "core/switch_cac.h"
#include "util/contract.h"

namespace rtcac {

namespace {

// Admission slack shared with baseline/peak_allocation.cpp: many
// equal-rate connections must fill a port to exactly 1.0 despite
// floating-point summation.
constexpr double kPeakSlack = 1e-9;

void check_port(std::size_t port, std::size_t limit, const char* what) {
  if (port >= limit) {
    throw std::invalid_argument(std::string(what) + ": port out of range");
  }
}

/// The one peak-allocation verdict, shared by the live PeakPoint::check
/// and its snapshot so the two paths cannot drift (same slack, same
/// detail string).
HopVerdict peak_verdict(double load, double pcr, double advertised) {
  HopVerdict verdict;
  verdict.advertised = advertised;
  verdict.bound = 0;  // peak allocation guarantees no delay bound
  const double total = load + pcr;
  if (total > 1.0 + kPeakSlack) {
    std::ostringstream os;
    os << "peak load " << total << " exceeds capacity";
    verdict.detail = os.str();
    return verdict;
  }
  verdict.admitted = true;
  return verdict;
}

/// Per-out dirty flags -> queue keys (out * priorities + priority), the
/// PolicyCac::dirty_queues vocabulary.  Both baselines decide
/// independently of priority, so a mutated out-port dirties every
/// priority level it carries.
std::optional<std::vector<std::size_t>> dirty_queue_keys(
    const std::vector<char>& dirty_outs, std::size_t priorities) {
  std::vector<std::size_t> keys;
  for (std::size_t out = 0; out < dirty_outs.size(); ++out) {
    if (dirty_outs[out] == 0) continue;
    for (std::size_t p = 0; p < priorities; ++p) {
      keys.push_back(out * priorities + p);
    }
  }
  return keys;
}

void clear_dirty(std::vector<char>& dirty_outs) {
  std::fill(dirty_outs.begin(), dirty_outs.end(), 0);
}

/// Frozen peak-allocation state of one out-port: the committed load sum.
class PeakPointSnapshot final : public PointSnapshot {
 public:
  PeakPointSnapshot(double load, double advertised, std::size_t priorities)
      : load_(load), advertised_(advertised), priorities_(priorities) {}

  [[nodiscard]] HopVerdict check(std::size_t /*in_port*/, Priority priority,
                                 const std::any& arrival) const override {
    check_port(priority, priorities_, "PeakPoint");
    return peak_verdict(load_, std::any_cast<double>(arrival), advertised_);
  }

 private:
  double load_;
  double advertised_;
  std::size_t priorities_;
};

/// The one max-rate verdict, shared by the live MaxRatePoint::check and
/// its snapshot: `combined` is the committed aggregate with the
/// candidate already multiplexed in (last, matching the live fold
/// order).
HopVerdict max_rate_verdict(const BurstyEnvelope& combined,
                            double advertised_bound) {
  HopVerdict verdict;
  verdict.advertised = advertised_bound;
  const std::optional<double> bound = combined.delay_bound();
  if (!bound.has_value() || *bound > advertised_bound) {
    std::ostringstream os;
    os << "bound would be "
       << (bound.has_value() ? std::to_string(*bound) : "unbounded")
       << " > advertised " << advertised_bound;
    verdict.detail = os.str();
    return verdict;
  }
  verdict.admitted = true;
  verdict.bound = *bound;
  return verdict;
}

/// Frozen max-rate state of one out-port: the committed aggregate
/// envelope, pre-folded in the live path's component order.
class MaxRatePointSnapshot final : public PointSnapshot {
 public:
  MaxRatePointSnapshot(BurstyEnvelope aggregate, double advertised,
                       std::size_t priorities)
      : aggregate_(std::move(aggregate)),
        advertised_(advertised),
        priorities_(priorities) {}

  [[nodiscard]] HopVerdict check(std::size_t /*in_port*/, Priority priority,
                                 const std::any& arrival) const override {
    check_port(priority, priorities_, "MaxRatePoint");
    const auto& envelope = std::any_cast<const BurstyEnvelope&>(arrival);
    return max_rate_verdict(aggregate_.multiplexed(envelope), advertised_);
  }

 private:
  BurstyEnvelope aggregate_;
  double advertised_;
  std::size_t priorities_;
};

/// One queueing point under peak bandwidth allocation: per-out-port sum
/// of peak cell rates, admitted iff the sum stays within the unit link.
class PeakPoint final : public PolicyCac {
 public:
  explicit PeakPoint(const PointConfig& config)
      : config_(config),
        load_(config.out_ports, 0.0),
        dirty_outs_(config.out_ports, 0) {
    RTCAC_REQUIRE(config.out_ports >= 1, "PeakPoint: need out ports");
  }

  [[nodiscard]] double advertised(std::size_t out_port,
                                  Priority priority) const override {
    check_port(out_port, config_.out_ports, "PeakPoint");
    check_port(priority, config_.priorities, "PeakPoint");
    return config_.advertised_bound;
  }

  [[nodiscard]] std::any prepare(const TrafficDescriptor& traffic,
                                 double /*cdv*/) const override {
    // Peak rates are jitter-invariant: CDV moves cells around but never
    // raises the contracted peak, so the prepared arrival is just PCR.
    return std::any(traffic.pcr);
  }

  [[nodiscard]] HopVerdict check(std::size_t /*in_port*/, std::size_t out_port,
                                 Priority priority,
                                 const std::any& arrival) const override {
    check_port(out_port, config_.out_ports, "PeakPoint");
    return peak_verdict(load_[out_port], std::any_cast<double>(arrival),
                        advertised(out_port, priority));
  }

  [[nodiscard]] std::shared_ptr<const PointSnapshot> export_point_snapshot(
      std::size_t out_port, const PointSnapshot* /*previous*/,
      std::span<const std::size_t> /*stale_priorities*/) const override {
    // The whole frozen state is one double; rebuilding beats sharing.
    check_port(out_port, config_.out_ports, "PeakPoint");
    return std::make_shared<PeakPointSnapshot>(
        load_[out_port], config_.advertised_bound, config_.priorities);
  }

  [[nodiscard]] std::optional<std::vector<std::size_t>> dirty_queues()
      const override {
    return dirty_queue_keys(dirty_outs_, config_.priorities);
  }

  void prime() const override { clear_dirty(dirty_outs_); }

  void add(ConnectionId id, std::size_t /*in_port*/, std::size_t out_port,
           Priority priority, const std::any& arrival,
           double lease_expiry) override {
    check_port(out_port, config_.out_ports, "PeakPoint");
    check_port(priority, config_.priorities, "PeakPoint");
    const double pcr = std::any_cast<double>(arrival);
    const auto [it, inserted] =
        records_.emplace(id, Reservation{out_port, pcr, lease_expiry});
    if (!inserted) {
      throw std::invalid_argument("PeakPoint: duplicate connection id");
    }
    load_[out_port] += pcr;
    dirty_outs_[out_port] = 1;
  }

  bool remove(ConnectionId id) override {
    const auto it = records_.find(id);
    if (it == records_.end()) return false;
    release(it->second);
    records_.erase(it);
    return true;
  }

  std::size_t remove_many(std::span<const ConnectionId> ids) override {
    std::size_t removed = 0;
    for (const ConnectionId id : ids) {
      if (remove(id)) ++removed;
    }
    return removed;
  }

  [[nodiscard]] bool contains(ConnectionId id) const override {
    return records_.find(id) != records_.end();
  }

  bool renew_lease(ConnectionId id, double lease_expiry) override {
    const auto it = records_.find(id);
    if (it == records_.end()) return false;
    it->second.lease_expiry = lease_expiry;
    return true;
  }

  bool make_permanent(ConnectionId id) override {
    return renew_lease(id, SwitchCac::kPermanentLease);
  }

  std::vector<ConnectionId> reclaim(double now) override {
    std::vector<ConnectionId> reclaimed;
    for (auto it = records_.begin(); it != records_.end();) {
      if (it->second.lease_expiry <= now) {
        release(it->second);
        reclaimed.push_back(it->first);
        it = records_.erase(it);
      } else {
        ++it;
      }
    }
    return reclaimed;
  }

  [[nodiscard]] std::optional<double> computed_bound(
      std::size_t out_port, Priority priority) const override {
    check_port(out_port, config_.out_ports, "PeakPoint");
    check_port(priority, config_.priorities, "PeakPoint");
    return 0.0;  // the scheme computes no delay bound at all
  }

  [[nodiscard]] std::size_t connection_count() const override {
    return records_.size();
  }

  [[nodiscard]] bool bandwidth_conserved() const override {
    for (const double load : load_) {
      if (load < -kPeakSlack || load > 1.0 + kPeakSlack) return false;
    }
    return true;
  }

  /// Allocated peak bandwidth on an out port (PeakAllocationCac's
  /// link_load diagnostic).
  [[nodiscard]] double load(std::size_t out_port) const {
    check_port(out_port, config_.out_ports, "PeakPoint");
    return load_[out_port];
  }

 private:
  struct Reservation {
    std::size_t out_port = 0;
    double pcr = 0;
    double lease_expiry = SwitchCac::kPermanentLease;
  };

  void release(const Reservation& r) {
    load_[r.out_port] -= r.pcr;
    if (load_[r.out_port] < 0) load_[r.out_port] = 0;  // absorb rounding
    dirty_outs_[r.out_port] = 1;
  }

  PointConfig config_;
  std::vector<double> load_;  ///< per out port
  /// Out-ports mutated since the last prime() (snapshot invalidation).
  mutable std::vector<char> dirty_outs_;
  std::map<ConnectionId, Reservation> records_;
};

/// One queueing point under the max-rate baseline: a BurstyEnvelope
/// aggregate per out port (single service class — priorities share the
/// aggregate, as in [9]'s basic configuration).
class MaxRatePoint final : public PolicyCac {
 public:
  explicit MaxRatePoint(const PointConfig& config)
      : config_(config),
        components_(config.out_ports),
        dirty_outs_(config.out_ports, 0) {
    RTCAC_REQUIRE(config.out_ports >= 1, "MaxRatePoint: need out ports");
    RTCAC_REQUIRE(config.advertised_bound > 0,
                  "MaxRatePoint: advertised bound must be > 0");
  }

  [[nodiscard]] double advertised(std::size_t out_port,
                                  Priority priority) const override {
    check_port(out_port, config_.out_ports, "MaxRatePoint");
    check_port(priority, config_.priorities, "MaxRatePoint");
    return config_.advertised_bound;
  }

  [[nodiscard]] std::any prepare(const TrafficDescriptor& traffic,
                                 double cdv) const override {
    // Upper-bound distortion: the whole early prefix becomes an
    // instantaneous burst, not clipped by the incoming link rate.
    return std::any(BurstyEnvelope::from_traffic(traffic).delayed(cdv));
  }

  [[nodiscard]] HopVerdict check(std::size_t /*in_port*/, std::size_t out_port,
                                 Priority priority,
                                 const std::any& arrival) const override {
    check_port(out_port, config_.out_ports, "MaxRatePoint");
    check_port(priority, config_.priorities, "MaxRatePoint");
    const auto& envelope = std::any_cast<const BurstyEnvelope&>(arrival);
    return max_rate_verdict(aggregate_with(out_port, &envelope),
                            config_.advertised_bound);
  }

  [[nodiscard]] std::shared_ptr<const PointSnapshot> export_point_snapshot(
      std::size_t out_port, const PointSnapshot* /*previous*/,
      std::span<const std::size_t> /*stale_priorities*/) const override {
    check_port(out_port, config_.out_ports, "MaxRatePoint");
    return std::make_shared<MaxRatePointSnapshot>(
        aggregate_with(out_port, nullptr), config_.advertised_bound,
        config_.priorities);
  }

  [[nodiscard]] std::optional<std::vector<std::size_t>> dirty_queues()
      const override {
    return dirty_queue_keys(dirty_outs_, config_.priorities);
  }

  void prime() const override { clear_dirty(dirty_outs_); }

  void add(ConnectionId id, std::size_t /*in_port*/, std::size_t out_port,
           Priority priority, const std::any& arrival,
           double lease_expiry) override {
    check_port(out_port, config_.out_ports, "MaxRatePoint");
    check_port(priority, config_.priorities, "MaxRatePoint");
    const auto& envelope = std::any_cast<const BurstyEnvelope&>(arrival);
    const auto [it, inserted] =
        records_.emplace(id, Reservation{out_port, lease_expiry});
    if (!inserted) {
      throw std::invalid_argument("MaxRatePoint: duplicate connection id");
    }
    components_[out_port].emplace(id, envelope);
    dirty_outs_[out_port] = 1;
  }

  bool remove(ConnectionId id) override {
    const auto it = records_.find(id);
    if (it == records_.end()) return false;
    components_[it->second.out_port].erase(id);
    dirty_outs_[it->second.out_port] = 1;
    records_.erase(it);
    return true;
  }

  std::size_t remove_many(std::span<const ConnectionId> ids) override {
    std::size_t removed = 0;
    for (const ConnectionId id : ids) {
      if (remove(id)) ++removed;
    }
    return removed;
  }

  [[nodiscard]] bool contains(ConnectionId id) const override {
    return records_.find(id) != records_.end();
  }

  bool renew_lease(ConnectionId id, double lease_expiry) override {
    const auto it = records_.find(id);
    if (it == records_.end()) return false;
    it->second.lease_expiry = lease_expiry;
    return true;
  }

  bool make_permanent(ConnectionId id) override {
    return renew_lease(id, SwitchCac::kPermanentLease);
  }

  std::vector<ConnectionId> reclaim(double now) override {
    std::vector<ConnectionId> reclaimed;
    for (auto it = records_.begin(); it != records_.end();) {
      if (it->second.lease_expiry <= now) {
        components_[it->second.out_port].erase(it->first);
        dirty_outs_[it->second.out_port] = 1;
        reclaimed.push_back(it->first);
        it = records_.erase(it);
      } else {
        ++it;
      }
    }
    return reclaimed;
  }

  [[nodiscard]] std::optional<double> computed_bound(
      std::size_t out_port, Priority priority) const override {
    check_port(out_port, config_.out_ports, "MaxRatePoint");
    check_port(priority, config_.priorities, "MaxRatePoint");
    if (components_[out_port].empty()) return 0.0;
    return aggregate_with(out_port, nullptr).delay_bound();
  }

  [[nodiscard]] std::size_t connection_count() const override {
    return records_.size();
  }

 private:
  struct Reservation {
    std::size_t out_port = 0;
    double lease_expiry = SwitchCac::kPermanentLease;
  };

  [[nodiscard]] BurstyEnvelope aggregate_with(
      std::size_t out_port, const BurstyEnvelope* extra) const {
    BurstyEnvelope aggregate;
    for (const auto& [id, env] : components_[out_port]) {
      aggregate = aggregate.multiplexed(env);
    }
    if (extra != nullptr) aggregate = aggregate.multiplexed(*extra);
    return aggregate;
  }

  PointConfig config_;
  /// Component envelopes per out port, keyed by connection.
  std::vector<std::map<ConnectionId, BurstyEnvelope>> components_;
  /// Out-ports mutated since the last prime() (snapshot invalidation).
  mutable std::vector<char> dirty_outs_;
  std::map<ConnectionId, Reservation> records_;
};

}  // namespace

std::unique_ptr<PolicyCac> PeakCacPolicy::make_point(
    const PointConfig& config) const {
  return std::make_unique<PeakPoint>(config);
}

const PeakCacPolicy& PeakCacPolicy::instance() noexcept {
  static const PeakCacPolicy policy;
  return policy;
}

std::unique_ptr<PolicyCac> MaxRateCacPolicy::make_point(
    const PointConfig& config) const {
  return std::make_unique<MaxRatePoint>(config);
}

const MaxRateCacPolicy& MaxRateCacPolicy::instance() noexcept {
  static const MaxRateCacPolicy policy;
  return policy;
}

const CacPolicy* find_policy(std::string_view name) noexcept {
  if (name == "bitstream") return &BitstreamCacPolicy::instance();
  if (name == "peak") return &PeakCacPolicy::instance();
  if (name == "max_rate") return &MaxRateCacPolicy::instance();
  return nullptr;
}

}  // namespace rtcac
