#include "baseline/peak_allocation.h"

#include "baseline/policies.h"
#include "core/switch_cac.h"

namespace rtcac {

PeakAllocationCac::PeakAllocationCac(const Topology& topology)
    : topology_(topology),
      evaluator_(PathEvaluator::Params{/*priorities=*/1, CdvPolicy::kHard,
                                       GuaranteeMode::kComputed}) {
  points_.reserve(topology.link_count());
  point_names_.reserve(topology.link_count());
  for (LinkId link = 0; link < topology.link_count(); ++link) {
    PointConfig cfg;
    cfg.in_ports = 1;
    cfg.out_ports = 1;
    cfg.priorities = 1;
    cfg.advertised_bound = 0;  // peak allocation promises no delay bound
    points_.push_back(PeakCacPolicy::instance().make_point(cfg));
    point_names_.push_back("link " + std::to_string(link));
  }
}

PeakAllocationCac::Result PeakAllocationCac::setup(
    const TrafficDescriptor& traffic, const Route& route) {
  traffic.validate();
  Result result;
  (void)topology_.route_nodes(route);  // validates connectivity
  std::vector<PathEvaluator::Hop> hops;
  hops.reserve(route.size());
  for (const LinkId link : route) {
    hops.push_back(PathEvaluator::Hop{points_[link].get(), 0, 0,
                                      point_names_[link]});
  }
  QosRequest request;  // deadline defaults to infinity: peak-only check
  request.traffic = traffic;
  const PathEvaluator::Decision decision = evaluator_.evaluate(hops, request);
  if (!decision.admitted) {
    result.reject = decision.reject;
    result.reason = result.reject.detail;
    if (result.reject.code == RejectCode::kAdmission &&
        result.reject.hop < route.size()) {
      result.rejecting_link = route[result.reject.hop];
    }
    return result;
  }
  evaluator_.commit(hops, next_id_, request, decision.arrivals,
                    SwitchCac::kPermanentLease);
  result.accepted = true;
  result.id = next_id_++;
  records_.emplace(result.id, std::make_pair(traffic.pcr, route));
  return result;
}

bool PeakAllocationCac::teardown(ConnectionId id) {
  const auto it = records_.find(id);
  if (it == records_.end()) return false;
  for (const LinkId link : it->second.second) {
    points_[link]->remove(id);
  }
  records_.erase(it);
  return true;
}

double PeakAllocationCac::link_load(LinkId link) const {
  if (link >= points_.size()) {
    throw std::invalid_argument("PeakAllocationCac: bad link id");
  }
  // Recomputed from the committed contracts; the policy point holds the
  // authoritative copy used for admission.
  double load = 0;
  for (const auto& [id, record] : records_) {
    for (const LinkId l : record.second) {
      if (l == link) load += record.first;
    }
  }
  return load;
}

}  // namespace rtcac
