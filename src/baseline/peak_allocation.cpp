#include "baseline/peak_allocation.h"

#include <sstream>

namespace rtcac {

namespace {
// Admission slack: many equal-rate connections must fill a link to exactly
// 1.0 despite floating-point summation.
constexpr double kSlack = 1e-9;
}  // namespace

PeakAllocationCac::PeakAllocationCac(const Topology& topology)
    : topology_(topology), load_(topology.link_count(), 0.0) {}

PeakAllocationCac::Result PeakAllocationCac::setup(
    const TrafficDescriptor& traffic, const Route& route) {
  traffic.validate();
  Result result;
  (void)topology_.route_nodes(route);  // validates connectivity
  for (const LinkId link : route) {
    if (load_[link] + traffic.pcr > 1.0 + kSlack) {
      std::ostringstream os;
      os << "link " << link << " peak load " << load_[link] + traffic.pcr
         << " exceeds capacity";
      result.reason = os.str();
      result.rejecting_link = link;
      return result;
    }
  }
  for (const LinkId link : route) {
    load_[link] += traffic.pcr;
  }
  result.accepted = true;
  result.id = next_id_++;
  records_.emplace(result.id, std::make_pair(traffic.pcr, route));
  return result;
}

bool PeakAllocationCac::teardown(ConnectionId id) {
  const auto it = records_.find(id);
  if (it == records_.end()) return false;
  for (const LinkId link : it->second.second) {
    load_[link] -= it->second.first;
    if (load_[link] < 0) load_[link] = 0;  // absorb rounding
  }
  records_.erase(it);
  return true;
}

double PeakAllocationCac::link_load(LinkId link) const {
  if (link >= load_.size()) {
    throw std::invalid_argument("PeakAllocationCac: bad link id");
  }
  return load_[link];
}

}  // namespace rtcac
