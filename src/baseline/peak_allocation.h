// rtcac/baseline/peak_allocation.h
//
// The strawman CAC of the paper's introduction: peak bandwidth allocation.
// A connection is admitted iff, on every link of its route, the sum of the
// admitted peak cell rates stays within the link bandwidth.
//
// This keeps links un-oversubscribed on average but — as Section 1 argues
// and bench/ablation_peak_alloc demonstrates — it cannot bound queueing
// delay: jitter introduced upstream lets cells of many connections clump
// and arrive simultaneously, overflowing any finite FIFO.  It is the
// baseline the bit-stream CAC is measured against.
//
// The admission state itself is the `peak` CacPolicy (baseline/policies.h)
// with one queueing point per link, and the route walk is the shared
// PathEvaluator of core/path_eval.h — this class only maps link ids to
// points and keeps the legacy Result vocabulary.

#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/connection.h"
#include "core/path_eval.h"
#include "net/topology.h"

namespace rtcac {

class PeakAllocationCac {
 public:
  struct Result {
    bool accepted = false;
    ConnectionId id = kInvalidConnection;
    std::string reason;  ///< equals reject.detail when rejected
    std::optional<LinkId> rejecting_link;
    /// Canonical rejection (core/path_eval.h); reject.hop indexes into
    /// the route given to setup().
    RejectReason reject;
  };

  explicit PeakAllocationCac(const Topology& topology);

  /// Admits iff sum(PCR) <= 1 on every route link.
  Result setup(const TrafficDescriptor& traffic, const Route& route);
  bool teardown(ConnectionId id);

  /// Allocated peak bandwidth on a link (normalized).
  [[nodiscard]] double link_load(LinkId link) const;
  [[nodiscard]] std::size_t connection_count() const noexcept {
    return records_.size();
  }

 private:
  const Topology& topology_;
  PathEvaluator evaluator_;
  /// One `peak` policy point per link (out_port 0 = the link itself).
  std::vector<std::unique_ptr<PolicyCac>> points_;
  std::vector<std::string> point_names_;  ///< "link <id>", stable storage
  std::map<ConnectionId, std::pair<double, Route>> records_;
  ConnectionId next_id_ = 1;
};

}  // namespace rtcac
