// rtcac/baseline/peak_allocation.h
//
// The strawman CAC of the paper's introduction: peak bandwidth allocation.
// A connection is admitted iff, on every link of its route, the sum of the
// admitted peak cell rates stays within the link bandwidth.
//
// This keeps links un-oversubscribed on average but — as Section 1 argues
// and bench/ablation_peak_alloc demonstrates — it cannot bound queueing
// delay: jitter introduced upstream lets cells of many connections clump
// and arrive simultaneously, overflowing any finite FIFO.  It is the
// baseline the bit-stream CAC is measured against.

#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/connection.h"
#include "net/topology.h"

namespace rtcac {

class PeakAllocationCac {
 public:
  struct Result {
    bool accepted = false;
    ConnectionId id = kInvalidConnection;
    std::string reason;
    std::optional<LinkId> rejecting_link;
  };

  explicit PeakAllocationCac(const Topology& topology);

  /// Admits iff sum(PCR) <= 1 on every route link.
  Result setup(const TrafficDescriptor& traffic, const Route& route);
  bool teardown(ConnectionId id);

  /// Allocated peak bandwidth on a link (normalized).
  [[nodiscard]] double link_load(LinkId link) const;
  [[nodiscard]] std::size_t connection_count() const noexcept {
    return records_.size();
  }

 private:
  const Topology& topology_;
  std::vector<double> load_;
  std::map<ConnectionId, std::pair<double, Route>> records_;
  ConnectionId next_id_ = 1;
};

}  // namespace rtcac
