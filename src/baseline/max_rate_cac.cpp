#include "baseline/max_rate_cac.h"

#include <set>
#include <stdexcept>

#include "baseline/policies.h"
#include "core/switch_cac.h"

namespace rtcac {

BurstyEnvelope::BurstyEnvelope(double burst, BitStream stream)
    : burst_(burst), stream_(std::move(stream)) {
  if (burst < 0) {
    throw std::invalid_argument("BurstyEnvelope: negative burst");
  }
}

BurstyEnvelope BurstyEnvelope::from_traffic(const TrafficDescriptor& traffic) {
  return BurstyEnvelope(0.0, traffic.to_bitstream());
}

double BurstyEnvelope::bits_before(double t) const {
  if (t < 0) return 0;
  return burst_ + stream_.bits_before(t);
}

BurstyEnvelope BurstyEnvelope::delayed(double cdv) const {
  if (cdv < 0) {
    throw std::invalid_argument("BurstyEnvelope: negative CDV");
  }
  if (cdv == 0) return *this;
  // Everything the source may emit in [0, cdv] is assumed to arrive as one
  // instantaneous burst — the upper bound of [9], with no link-rate cap.
  return BurstyEnvelope(burst_ + stream_.bits_before(cdv),
                        shift_left(stream_, cdv));
}

BurstyEnvelope BurstyEnvelope::multiplexed(const BurstyEnvelope& other) const {
  return BurstyEnvelope(burst_ + other.burst_,
                        multiplex(stream_, other.stream_));
}

std::optional<double> BurstyEnvelope::delay_bound() const {
  // Single priority over a unit link: service curve G(u) = u, so the
  // horizontal and vertical deviations coincide:
  //   D = sup_t (burst + A_s(t) - t),
  // attained at a breakpoint of the stream (concave minus linear).
  if (stream_.final_rate() > 1.0 + NumTraits<double>::kEps) {
    return std::nullopt;
  }
  double best = burst_;  // t = 0
  for (const auto& seg : stream_.segments()) {
    const double v = burst_ + stream_.bits_before(seg.start) - seg.start;
    if (v > best) best = v;
  }
  const double last = stream_.segments().back().start;
  const double v = burst_ + stream_.bits_before(last) - last;
  if (v > best) best = v;
  return best < 0 ? 0 : best;
}

std::optional<double> BurstyEnvelope::max_backlog() const {
  return delay_bound();  // identical for a unit-rate single-priority server
}

MaxRateNetworkCac::MaxRateNetworkCac(std::size_t queueing_points,
                                     double advertised_bound)
    : advertised_bound_(advertised_bound),
      // Hard CDV accumulation over the fixed advertised bounds, as in the
      // bit-stream scheme, so the two CACs differ only in envelope math.
      evaluator_(PathEvaluator::Params{/*priorities=*/1, CdvPolicy::kHard,
                                       GuaranteeMode::kComputed}) {
  if (queueing_points == 0) {
    throw std::invalid_argument("MaxRateNetworkCac: need queueing points");
  }
  if (!(advertised_bound > 0)) {
    throw std::invalid_argument("MaxRateNetworkCac: bound must be > 0");
  }
  points_.reserve(queueing_points);
  point_names_.reserve(queueing_points);
  for (std::size_t p = 0; p < queueing_points; ++p) {
    PointConfig cfg;
    cfg.in_ports = 1;
    cfg.out_ports = 1;
    cfg.priorities = 1;
    cfg.advertised_bound = advertised_bound;
    points_.push_back(MaxRateCacPolicy::instance().make_point(cfg));
    point_names_.push_back("point " + std::to_string(p));
  }
}

MaxRateNetworkCac::Result MaxRateNetworkCac::setup(
    const TrafficDescriptor& traffic, const std::vector<std::size_t>& route) {
  traffic.validate();
  Result result;
  std::set<std::size_t> seen;
  for (const std::size_t point : route) {
    if (point >= points_.size()) {
      throw std::invalid_argument("MaxRateNetworkCac: bad queueing point");
    }
    if (!seen.insert(point).second) {
      throw std::invalid_argument(
          "MaxRateNetworkCac: route revisits a queueing point");
    }
  }

  std::vector<PathEvaluator::Hop> hops;
  hops.reserve(route.size());
  for (const std::size_t point : route) {
    hops.push_back(
        PathEvaluator::Hop{points_[point].get(), 0, 0, point_names_[point]});
  }
  QosRequest request;  // deadline defaults to infinity: bounds-only check
  request.traffic = traffic;
  const PathEvaluator::Decision decision = evaluator_.evaluate(hops, request);
  if (!decision.admitted) {
    result.reject = decision.reject;
    result.reason = result.reject.detail;
    return result;
  }
  evaluator_.commit(hops, next_id_, request, decision.arrivals,
                    SwitchCac::kPermanentLease);
  result.hop_bounds = decision.hop_bounds;
  result.e2e_bound_at_setup = decision.e2e_bound;
  result.accepted = true;
  result.id = next_id_++;
  records_.emplace(result.id, Record{traffic, route});
  return result;
}

bool MaxRateNetworkCac::teardown(ConnectionId id) {
  const auto it = records_.find(id);
  if (it == records_.end()) return false;
  for (const std::size_t point : it->second.route) {
    points_[point]->remove(id);
  }
  records_.erase(it);
  return true;
}

std::optional<double> MaxRateNetworkCac::computed_bound(
    std::size_t point) const {
  if (point >= points_.size()) {
    throw std::invalid_argument("MaxRateNetworkCac: bad queueing point");
  }
  return points_[point]->computed_bound(0, 0);
}

std::optional<double> MaxRateNetworkCac::current_e2e_bound(
    ConnectionId id) const {
  const auto it = records_.find(id);
  if (it == records_.end()) return std::nullopt;
  double total = 0;
  for (const std::size_t point : it->second.route) {
    const auto bound = computed_bound(point);
    if (!bound.has_value()) return std::nullopt;
    total += *bound;
  }
  return total;
}

}  // namespace rtcac
