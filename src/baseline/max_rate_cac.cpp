#include "baseline/max_rate_cac.h"

#include <sstream>
#include <stdexcept>

namespace rtcac {

BurstyEnvelope::BurstyEnvelope(double burst, BitStream stream)
    : burst_(burst), stream_(std::move(stream)) {
  if (burst < 0) {
    throw std::invalid_argument("BurstyEnvelope: negative burst");
  }
}

BurstyEnvelope BurstyEnvelope::from_traffic(const TrafficDescriptor& traffic) {
  return BurstyEnvelope(0.0, traffic.to_bitstream());
}

double BurstyEnvelope::bits_before(double t) const {
  if (t < 0) return 0;
  return burst_ + stream_.bits_before(t);
}

BurstyEnvelope BurstyEnvelope::delayed(double cdv) const {
  if (cdv < 0) {
    throw std::invalid_argument("BurstyEnvelope: negative CDV");
  }
  if (cdv == 0) return *this;
  // Everything the source may emit in [0, cdv] is assumed to arrive as one
  // instantaneous burst — the upper bound of [9], with no link-rate cap.
  return BurstyEnvelope(burst_ + stream_.bits_before(cdv),
                        shift_left(stream_, cdv));
}

BurstyEnvelope BurstyEnvelope::multiplexed(const BurstyEnvelope& other) const {
  return BurstyEnvelope(burst_ + other.burst_,
                        multiplex(stream_, other.stream_));
}

std::optional<double> BurstyEnvelope::delay_bound() const {
  // Single priority over a unit link: service curve G(u) = u, so the
  // horizontal and vertical deviations coincide:
  //   D = sup_t (burst + A_s(t) - t),
  // attained at a breakpoint of the stream (concave minus linear).
  if (stream_.final_rate() > 1.0 + NumTraits<double>::kEps) {
    return std::nullopt;
  }
  double best = burst_;  // t = 0
  for (const auto& seg : stream_.segments()) {
    const double v = burst_ + stream_.bits_before(seg.start) - seg.start;
    if (v > best) best = v;
  }
  const double last = stream_.segments().back().start;
  const double v = burst_ + stream_.bits_before(last) - last;
  if (v > best) best = v;
  return best < 0 ? 0 : best;
}

std::optional<double> BurstyEnvelope::max_backlog() const {
  return delay_bound();  // identical for a unit-rate single-priority server
}

MaxRateNetworkCac::MaxRateNetworkCac(std::size_t queueing_points,
                                     double advertised_bound)
    : points_(queueing_points),
      advertised_bound_(advertised_bound),
      components_(queueing_points) {
  if (queueing_points == 0) {
    throw std::invalid_argument("MaxRateNetworkCac: need queueing points");
  }
  if (!(advertised_bound > 0)) {
    throw std::invalid_argument("MaxRateNetworkCac: bound must be > 0");
  }
}

BurstyEnvelope MaxRateNetworkCac::arrival_at(const TrafficDescriptor& traffic,
                                             std::size_t hop_index) const {
  // Hard CDV accumulation over the fixed advertised bounds, as in the
  // bit-stream scheme, so the two CACs differ only in envelope math.
  const double cdv = advertised_bound_ * static_cast<double>(hop_index);
  return BurstyEnvelope::from_traffic(traffic).delayed(cdv);
}

BurstyEnvelope MaxRateNetworkCac::aggregate_with(
    std::size_t point, const BurstyEnvelope* extra) const {
  BurstyEnvelope aggregate;
  for (const auto& [id, env] : components_[point]) {
    aggregate = aggregate.multiplexed(env);
  }
  if (extra != nullptr) {
    aggregate = aggregate.multiplexed(*extra);
  }
  return aggregate;
}

MaxRateNetworkCac::Result MaxRateNetworkCac::setup(
    const TrafficDescriptor& traffic, const std::vector<std::size_t>& route) {
  traffic.validate();
  Result result;
  for (const std::size_t point : route) {
    if (point >= points_) {
      throw std::invalid_argument("MaxRateNetworkCac: bad queueing point");
    }
  }

  const ConnectionId id = next_id_;
  std::size_t committed = 0;
  for (std::size_t h = 0; h < route.size(); ++h) {
    const BurstyEnvelope arrival = arrival_at(traffic, h);
    const auto bound =
        aggregate_with(route[h], &arrival).delay_bound();
    if (!bound.has_value() || *bound > advertised_bound_) {
      std::ostringstream os;
      os << "bound at point " << route[h] << " would be "
         << (bound.has_value() ? std::to_string(*bound) : "unbounded")
         << " > advertised " << advertised_bound_;
      result.reason = os.str();
      break;
    }
    components_[route[h]].emplace(id, arrival);
    ++committed;
    result.hop_bounds.push_back(*bound);
    result.e2e_bound_at_setup += *bound;
  }

  if (!result.reason.empty()) {
    for (std::size_t h = 0; h < committed; ++h) {
      components_[route[h]].erase(id);
    }
    result.hop_bounds.clear();
    result.e2e_bound_at_setup = 0;
    return result;
  }

  result.accepted = true;
  result.id = id;
  ++next_id_;
  records_.emplace(id, Record{traffic, route});
  return result;
}

bool MaxRateNetworkCac::teardown(ConnectionId id) {
  const auto it = records_.find(id);
  if (it == records_.end()) return false;
  for (const std::size_t point : it->second.route) {
    components_[point].erase(id);
  }
  records_.erase(it);
  return true;
}

std::optional<double> MaxRateNetworkCac::computed_bound(
    std::size_t point) const {
  if (point >= points_) {
    throw std::invalid_argument("MaxRateNetworkCac: bad queueing point");
  }
  if (components_[point].empty()) return 0.0;
  return aggregate_with(point, nullptr).delay_bound();
}

std::optional<double> MaxRateNetworkCac::current_e2e_bound(
    ConnectionId id) const {
  const auto it = records_.find(id);
  if (it == records_.end()) return std::nullopt;
  double total = 0;
  for (const std::size_t point : it->second.route) {
    const auto bound = computed_bound(point);
    if (!bound.has_value()) return std::nullopt;
    total += *bound;
  }
  return total;
}

}  // namespace rtcac
