#include "rtnet/shared_memory.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "atm/source_scheduler.h"

namespace rtcac {

namespace {

struct FramePlan {
  std::uint16_t cells = 0;  ///< cells per update frame
  Tick period = 0;
  Tick spacing = 0;  ///< pacing between the frame's cells
};

FramePlan plan_frames(const RegionSpec& region) {
  FramePlan plan;
  const double bytes = region.share * region.cyclic.memory_kb * 1024.0;
  plan.cells = static_cast<std::uint16_t>(
      std::max(1.0, std::ceil(bytes / kCellPayloadBytes)));
  plan.period = static_cast<Tick>(
      cell_times_from_seconds(region.cyclic.period_ms * 1e-3));
  plan.spacing = std::max<Tick>(1, plan.period / plan.cells);
  if (static_cast<Tick>(plan.cells) * plan.spacing > plan.period) {
    // The region is too large to fit its period even back to back.
    throw std::invalid_argument(
        "SharedMemoryService: region does not fit its update period");
  }
  return plan;
}

}  // namespace

SharedMemoryService::SharedMemoryService(const Rtnet& net,
                                         std::vector<RegionSpec> regions)
    : net_(net),
      regions_(std::move(regions)),
      manager_(net.topology(),
               [] {
                 ConnectionManager::Params params;
                 params.priorities = 1;
                 params.advertised_bound = 32;
                 params.guarantee = GuaranteeMode::kComputed;
                 return params;
               }()),
      sim_(net.topology(), SimNetwork::Options{1, 33}) {
  if (regions_.empty()) {
    throw std::invalid_argument("SharedMemoryService: no regions");
  }

  std::vector<FramePlan> plans;
  plans.reserve(regions_.size());
  for (const RegionSpec& region : regions_) {
    if (!(region.share > 0) || region.share > 1.0) {
      throw std::invalid_argument("SharedMemoryService: share out of (0,1]");
    }
    const FramePlan plan = plan_frames(region);
    plans.push_back(plan);

    QosRequest request;
    // The contract mirrors the actual pacing: one cell per `spacing`.
    request.traffic =
        TrafficDescriptor::cbr(1.0 / static_cast<double>(plan.spacing));
    request.deadline = region.cyclic.deadline_cell_times();
    const Route route = net_.broadcast_route(region.node, region.terminal);
    const auto result = manager_.setup(request, route);
    if (!result.accepted) {
      std::ostringstream os;
      os << "SharedMemoryService: region of (" << region.node << ","
         << region.terminal << ") not admissible: " << result.reason;
      throw std::invalid_argument(os.str());
    }
    connection_ids_.push_back(result.id);
  }

  // All regions admitted: install the traffic and the observers, and
  // freeze the per-region guarantees under the final load.
  for (std::size_t index = 0; index < regions_.size(); ++index) {
    const RegionSpec& region = regions_[index];
    const FramePlan& plan = plans[index];
    const Route route = net_.broadcast_route(region.node, region.terminal);
    sim_.install(connection_ids_[index], route, 0,
                 std::make_unique<FrameBurstSourceScheduler>(
                     plan.cells, plan.period, plan.spacing));
    observers_.push_back(std::make_unique<Observer>());
    observers_.back()->stats.guaranteed_latency =
        static_cast<double>(plan.cells - 1) * static_cast<double>(plan.spacing) +
        manager_.current_e2e_bound(connection_ids_[index]).value() +
        static_cast<double>(route.size());  // store-and-forward per link
    sim_.set_delivery_hook(
        connection_ids_[index],
        [this, index](const Cell& cell, Tick now) {
          on_delivery(index, cell, now);
        });
  }
}

void SharedMemoryService::on_delivery(std::size_t region_index,
                                      const Cell& cell, Tick now) {
  Observer& obs = *observers_[region_index];

  if (cell.frame != obs.expected_frame) {
    // A whole frame (or tail of one) went missing.
    if (obs.expected_cell > 0) {
      ++obs.stats.updates_damaged;  // the frame we were assembling
    }
    if (cell.frame > obs.expected_frame) {
      obs.stats.updates_damaged += cell.frame - obs.expected_frame -
                                   (obs.expected_cell > 0 ? 1 : 0);
    }
    obs.expected_frame = cell.frame;
    obs.expected_cell = 0;
    obs.frame_ok = true;
  }
  if (cell.cell_in_frame != obs.expected_cell) {
    obs.frame_ok = false;  // missing cells within the frame
  }
  if (cell.cell_in_frame == 0) {
    obs.frame_first_emission = cell.injected;
    obs.frame_ok = obs.frame_ok && true;
  }
  obs.expected_cell = static_cast<std::uint16_t>(cell.cell_in_frame + 1);

  if (!cell.end_of_frame) return;

  if (obs.frame_ok) {
    ++obs.stats.updates_completed;
    const Tick latency = now - obs.frame_first_emission;
    obs.stats.worst_update_latency =
        std::max(obs.stats.worst_update_latency, latency);
    if (obs.last_completion.has_value()) {
      obs.stats.worst_staleness = std::max(
          obs.stats.worst_staleness, now - *obs.last_completion);
    }
    obs.last_completion = now;
  } else {
    ++obs.stats.updates_damaged;
  }
  obs.expected_frame = cell.frame + 1;
  obs.expected_cell = 0;
  obs.frame_ok = true;
}

void SharedMemoryService::run_until(Tick horizon) {
  sim_.run_until(horizon);
}

double SharedMemoryService::queueing_bound(std::size_t index) const {
  return manager_.current_e2e_bound(connection_ids_.at(index)).value();
}

}  // namespace rtcac
