// rtcac/rtnet/shared_memory.h
//
// RTnet's cyclic transmission service as an application (Section 5): "a
// kind of real-time shared memory among terminals in a network.  Each
// terminal uses the cyclic transmission facility to periodically
// broadcast its portion of shared memory ... and receives updates of
// other portions from other terminals."
//
// This layer glues everything below it together: a region owner's updates
// become AAL5-sized frames (FrameBurstSourceScheduler emits the frame's
// cells paced to the class's CBR contract), the bit-stream CAC admits the
// broadcast connection, the cell simulator carries it, and a
// FrameObserver at the far end of the ring reassembles frames from cell
// metadata and keeps the service-level books:
//
//   * update latency — first cell emitted to last cell delivered — which
//     the CAC guarantees below (frame span + queueing bound);
//   * staleness — the longest gap between completed updates, which the
//     cyclic contract keeps below (period + latency);
//   * damaged/lost updates — AAL5 would flag them via length/CRC; the
//     observer detects them from sequence gaps.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/connection_manager.h"
#include "rtnet/cyclic.h"
#include "rtnet/rtnet.h"
#include "sim/simulator.h"

namespace rtcac {

/// One terminal's slice of the distributed shared memory.
struct RegionSpec {
  std::size_t node = 0;      ///< owning ring node
  std::size_t terminal = 0;  ///< owning terminal at that node
  CyclicClass cyclic;        ///< service class (period, deadline, size)
  /// Fraction of the class's full memory this region occupies, (0, 1].
  double share = 1.0;
};

/// Service-level statistics of one region, as observed at the last ring
/// node its broadcast reaches.
struct RegionStats {
  std::uint64_t updates_completed = 0;
  std::uint64_t updates_damaged = 0;  ///< cell loss / sequence gap
  /// Worst first-emission-to-last-delivery latency (cell times).
  Tick worst_update_latency = 0;
  /// Longest gap between consecutive completed updates (cell times).
  Tick worst_staleness = 0;
  /// What the admission guarantees: frame span (pacing) + queueing bound
  /// + per-hop store-and-forward latency.
  double guaranteed_latency = 0;
};

/// Builds and runs the cyclic shared-memory service on an RTnet ring.
class SharedMemoryService {
 public:
  /// Admits one broadcast connection per region through the bit-stream
  /// CAC (32-cell FIFOs, hard CDV).  Throws std::invalid_argument if the
  /// region set is not admissible — the service refuses to start without
  /// its guarantees, exactly like the real network would.
  SharedMemoryService(const Rtnet& net, std::vector<RegionSpec> regions);

  SharedMemoryService(const SharedMemoryService&) = delete;
  SharedMemoryService& operator=(const SharedMemoryService&) = delete;

  /// Advances the simulated plant to `horizon` (cell times).
  void run_until(Tick horizon);

  [[nodiscard]] std::size_t region_count() const noexcept {
    return regions_.size();
  }
  [[nodiscard]] const RegionSpec& region(std::size_t index) const {
    return regions_.at(index);
  }
  [[nodiscard]] const RegionStats& stats(std::size_t index) const {
    return observers_.at(index)->stats;
  }
  /// Analytic end-to-end queueing bound of region `index`'s connection
  /// under the admitted load.
  [[nodiscard]] double queueing_bound(std::size_t index) const;

  [[nodiscard]] const ConnectionManager& admission() const noexcept {
    return manager_;
  }
  [[nodiscard]] const SimNetwork& network() const noexcept { return sim_; }

 private:
  struct Observer {
    RegionStats stats;
    std::uint32_t expected_frame = 0;
    std::uint16_t expected_cell = 0;
    Tick frame_first_emission = 0;
    std::optional<Tick> last_completion;
    bool frame_ok = true;
  };

  void on_delivery(std::size_t region_index, const Cell& cell, Tick now);

  const Rtnet& net_;
  std::vector<RegionSpec> regions_;
  ConnectionManager manager_;
  SimNetwork sim_;
  std::vector<ConnectionId> connection_ids_;
  std::vector<std::unique_ptr<Observer>> observers_;
};

}  // namespace rtcac
