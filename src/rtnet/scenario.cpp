#include "rtnet/scenario.h"

#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>

#include "net/connection_manager.h"

namespace rtcac {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

TrafficPattern TrafficPattern::symmetric(std::size_t ring_nodes,
                                         std::size_t terminals_per_node) {
  TrafficPattern pattern;
  const std::size_t total = ring_nodes * terminals_per_node;
  pattern.shares.assign(total, 1.0 / static_cast<double>(total));
  return pattern;
}

TrafficPattern TrafficPattern::asymmetric(std::size_t ring_nodes,
                                          std::size_t terminals_per_node,
                                          double p) {
  if (p < 0 || p > 1) {
    throw std::invalid_argument("TrafficPattern: p must be in [0, 1]");
  }
  TrafficPattern pattern;
  const std::size_t total = ring_nodes * terminals_per_node;
  if (total == 1) {
    pattern.shares.assign(1, 1.0);
    return pattern;
  }
  pattern.shares.assign(total,
                        (1.0 - p) / static_cast<double>(total - 1));
  pattern.shares[0] = p;
  return pattern;
}

PriorityAssigner assign_uniform(Priority priority) {
  return [priority](std::size_t, std::size_t, double) { return priority; };
}

PriorityAssigner assign_heavy_low(std::size_t priorities) {
  if (priorities < 2) {
    throw std::invalid_argument("assign_heavy_low: needs >= 2 priorities");
  }
  const Priority low = static_cast<Priority>(priorities - 1);
  return [low](std::size_t node, std::size_t t, double) -> Priority {
    return (node == 0 && t == 0) ? low : 0;
  };
}

PriorityAssigner assign_heavy_high(std::size_t priorities) {
  if (priorities < 2) {
    throw std::invalid_argument("assign_heavy_high: needs >= 2 priorities");
  }
  const Priority low = static_cast<Priority>(priorities - 1);
  return [low](std::size_t node, std::size_t t, double) -> Priority {
    return (node == 0 && t == 0) ? 0 : low;
  };
}

PriorityAssigner assign_split(std::size_t priorities) {
  if (priorities < 2) {
    throw std::invalid_argument("assign_split: needs >= 2 priorities");
  }
  return [priorities](std::size_t node, std::size_t t, double) -> Priority {
    return static_cast<Priority>((node + t) % priorities);
  };
}

ScenarioResult evaluate_cyclic_scenario(const ScenarioOptions& options,
                                        const TrafficPattern& pattern,
                                        double total_load,
                                        const PriorityAssigner& assign) {
  const std::size_t n = options.ring_nodes;
  const std::size_t t_per = options.terminals_per_node;
  if (pattern.shares.size() != n * t_per) {
    throw std::invalid_argument(
        "evaluate_cyclic_scenario: pattern size does not match topology");
  }
  if (!(total_load > 0)) {
    throw std::invalid_argument(
        "evaluate_cyclic_scenario: total load must be > 0");
  }

  RtnetConfig net_cfg;
  net_cfg.ring_nodes = n;
  net_cfg.terminals_per_node = t_per;
  net_cfg.dual_ring = false;  // the scenarios use the primary ring only
  net_cfg.delivery_links = options.include_delivery_hop;
  const Rtnet net(net_cfg);

  if (!options.queue_cells_by_priority.empty() &&
      options.queue_cells_by_priority.size() != options.priorities) {
    throw std::invalid_argument(
        "evaluate_cyclic_scenario: queue_cells_by_priority size mismatch");
  }

  ConnectionManager::Params params;
  params.priorities = options.priorities;
  params.advertised_bound = options.queue_cells;
  params.cdv_policy = options.cdv_policy;
  params.guarantee = GuaranteeMode::kComputed;
  ConnectionManager manager(net.topology(), params);

  if (!options.queue_cells_by_priority.empty()) {
    for (const NodeInfo& node : net.topology().nodes()) {
      if (node.kind != NodeKind::kSwitch) continue;
      SwitchCac& cac = manager.switch_cac(node.id);
      for (std::size_t port = 0; port < cac.out_ports(); ++port) {
        for (Priority q = 0; q < options.priorities; ++q) {
          cac.set_advertised(port, q, options.queue_cells_by_priority[q]);
        }
      }
    }
  }

  ScenarioResult result;
  struct Admitted {
    ConnectionId id;
    std::size_t node;
    Priority priority;
  };
  std::vector<Admitted> admitted;

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t t = 0; t < t_per; ++t) {
      const double share = pattern.shares[i * t_per + t];
      if (share <= 0) continue;
      ++result.requested;
      const double pcr = total_load * share;
      if (pcr > 1.0) {
        std::ostringstream os;
        os << "terminal (" << i << "," << t << ") peak rate " << pcr
           << " exceeds link rate";
        result.first_rejection = os.str();
        return result;
      }
      QosRequest request;
      request.traffic = TrafficDescriptor::cbr(pcr);
      request.deadline = kInf;  // bounds are evaluated post hoc
      request.priority = assign(i, t, share);
      Route route = net.broadcast_route(i, t);
      if (options.include_delivery_hop) {
        // Deliver at terminal 0 of the final ring node: the node ->
        // terminal hop becomes one more queueing point.
        route.push_back(net.delivery_link((i + n - 1) % n, 0));
      }
      const auto setup = manager.setup(request, route);
      if (!setup.accepted) {
        result.first_rejection = setup.reason;
        return result;
      }
      admitted.push_back(Admitted{setup.id, i, request.priority});
      ++result.admitted;
    }
  }
  result.all_admitted = true;

  // End-to-end bound per connection under the *final* load.  Every
  // broadcast crosses the same 15 ring output ports starting at its node,
  // so cache the per-(node, priority) ring-port bound.
  std::map<std::pair<std::size_t, Priority>, double> port_bound;
  const auto ring_port_bound = [&](std::size_t node,
                                   Priority priority) -> double {
    const auto key = std::make_pair(node, priority);
    if (const auto it = port_bound.find(key); it != port_bound.end()) {
      return it->second;
    }
    const std::size_t port = net.topology().out_port(net.cw_link(node));
    const auto bound =
        manager.switch_cac(net.ring_node(node)).computed_bound(port, priority);
    const double value = bound.value_or(kInf);
    port_bound.emplace(key, value);
    return value;
  };

  result.max_e2e_by_priority.assign(options.priorities, 0);
  for (const Admitted& conn : admitted) {
    double e2e = 0;
    for (std::size_t k = 0; k + 1 < n; ++k) {
      e2e += ring_port_bound((conn.node + k) % n, conn.priority);
    }
    if (options.include_delivery_hop) {
      const std::size_t last = (conn.node + n - 1) % n;
      const std::size_t port =
          net.topology().out_port(net.delivery_link(last, 0));
      e2e += manager.switch_cac(net.ring_node(last))
                 .computed_bound(port, conn.priority)
                 .value_or(kInf);
    }
    if (e2e > result.max_e2e_bound) result.max_e2e_bound = e2e;
    if (e2e > result.max_e2e_by_priority[conn.priority]) {
      result.max_e2e_by_priority[conn.priority] = e2e;
    }
  }
  return result;
}

namespace {

double search_max_load(const std::function<bool(double)>& feasible,
                       double tolerance) {
  if (!(tolerance > 0)) {
    throw std::invalid_argument("max_supportable_load: bad tolerance");
  }
  double lo = 0;
  double hi = 1.0;
  if (feasible(hi)) return hi;
  if (!feasible(tolerance)) return 0;
  lo = tolerance;
  while (hi - lo > tolerance) {
    const double mid = (lo + hi) / 2;
    if (feasible(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

double max_supportable_load(const ScenarioOptions& options,
                            const TrafficPattern& pattern, double deadline,
                            const PriorityAssigner& assign,
                            double tolerance) {
  const auto feasible = [&](double load) {
    const ScenarioResult r =
        evaluate_cyclic_scenario(options, pattern, load, assign);
    return r.all_admitted && r.max_e2e_bound <= deadline;
  };
  return search_max_load(feasible, tolerance);
}

double max_supportable_load_per_priority(const ScenarioOptions& options,
                                         const TrafficPattern& pattern,
                                         std::span<const double> deadlines,
                                         const PriorityAssigner& assign,
                                         double tolerance) {
  if (deadlines.size() != options.priorities) {
    throw std::invalid_argument(
        "max_supportable_load_per_priority: one deadline per level");
  }
  const auto feasible = [&](double load) {
    const ScenarioResult r =
        evaluate_cyclic_scenario(options, pattern, load, assign);
    if (!r.all_admitted) return false;
    for (std::size_t q = 0; q < deadlines.size(); ++q) {
      if (r.max_e2e_by_priority[q] > deadlines[q]) return false;
    }
    return true;
  };
  return search_max_load(feasible, tolerance);
}

}  // namespace rtcac
