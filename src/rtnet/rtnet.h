// rtcac/rtnet/rtnet.h
//
// The RTnet plant-control network of Section 5: a star-ring of up to 16
// ring nodes connected by dual 155 Mbps links, with up to 16 terminals
// attached to each ring node.  Cyclic (shared-memory) traffic is broadcast
// around the ring; the dual counter-rotating ring provides FDDI-style
// wrap-around tolerance of any single link failure.
//
// Modeling choices (DESIGN.md decision 3): the primary direction is the
// clockwise ring.  A broadcast from a terminal is one connection whose
// route is its access link followed by the 15 clockwise ring links — every
// ring node on the way sees (and would locally deliver) the cells; the
// originating node strips them, so the last transit link ends at the
// node "before" the source.  Each ring hop is one queueing point with a
// 32-cell highest-priority FIFO (87 us of CDV per node at OC-3).

#pragma once

#include <cstddef>
#include <vector>

#include "net/topology.h"

namespace rtcac {

struct RtnetConfig {
  std::size_t ring_nodes = 16;
  std::size_t terminals_per_node = 1;
  /// Build the counter-clockwise ring too (failover capacity).
  bool dual_ring = true;
  /// Build node->terminal delivery links (needed when simulating delivery
  /// to end systems; the Fig. 10-13 analyses measure to the last ring
  /// node, as DESIGN.md records).
  bool delivery_links = false;
};

class Rtnet {
 public:
  /// Throws std::invalid_argument for fewer than 2 ring nodes, zero
  /// terminals, or more than the RTnet maximum of 16 of either.
  explicit Rtnet(const RtnetConfig& config);

  [[nodiscard]] const Topology& topology() const noexcept {
    return topology_;
  }
  [[nodiscard]] const RtnetConfig& config() const noexcept { return config_; }

  [[nodiscard]] NodeId ring_node(std::size_t i) const;
  [[nodiscard]] NodeId terminal(std::size_t node, std::size_t t) const;

  /// Clockwise ring link out of ring node i (toward i+1 mod n).
  [[nodiscard]] LinkId cw_link(std::size_t i) const;
  /// Counter-clockwise ring link out of ring node i (toward i-1 mod n);
  /// throws std::logic_error when the network was built single-ring.
  [[nodiscard]] LinkId ccw_link(std::size_t i) const;
  /// Access link of terminal (node, t) into its ring node.
  [[nodiscard]] LinkId access_link(std::size_t node, std::size_t t) const;
  /// Delivery link ring node -> terminal; requires delivery_links.
  [[nodiscard]] LinkId delivery_link(std::size_t node, std::size_t t) const;

  /// Broadcast route of terminal (node, t): access link + the
  /// ring_nodes-1 clockwise ring links (cells reach every other node).
  [[nodiscard]] Route broadcast_route(std::size_t node, std::size_t t) const;

  /// Unicast route terminal (from_node, from_t) -> ring node `to_node`,
  /// clockwise.  to_node == from_node yields just the access link.
  [[nodiscard]] Route unicast_route(std::size_t from_node, std::size_t from_t,
                                    std::size_t to_node) const;

  /// Same route re-planned counter-clockwise, as the ring wrap-around
  /// would use when clockwise link `failed` is down.
  [[nodiscard]] Route unicast_route_ccw(std::size_t from_node,
                                        std::size_t from_t,
                                        std::size_t to_node) const;

  [[nodiscard]] std::size_t ring_size() const noexcept {
    return config_.ring_nodes;
  }
  [[nodiscard]] std::size_t terminals_per_node() const noexcept {
    return config_.terminals_per_node;
  }

 private:
  RtnetConfig config_;
  Topology topology_;
  std::vector<NodeId> ring_nodes_;
  std::vector<NodeId> terminals_;       // [node * T + t]
  std::vector<LinkId> cw_links_;        // [i]: i -> i+1
  std::vector<LinkId> ccw_links_;       // [i]: i -> i-1
  std::vector<LinkId> access_links_;    // [node * T + t]
  std::vector<LinkId> delivery_links_;  // [node * T + t]
};

}  // namespace rtcac
