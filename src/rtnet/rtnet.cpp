#include "rtnet/rtnet.h"

#include <stdexcept>
#include <string>

namespace rtcac {

Rtnet::Rtnet(const RtnetConfig& config) : config_(config) {
  if (config_.ring_nodes < 2 || config_.ring_nodes > 16) {
    throw std::invalid_argument("Rtnet: ring_nodes must be in [2, 16]");
  }
  if (config_.terminals_per_node < 1 || config_.terminals_per_node > 16) {
    throw std::invalid_argument(
        "Rtnet: terminals_per_node must be in [1, 16]");
  }

  const std::size_t n = config_.ring_nodes;
  const std::size_t t_per = config_.terminals_per_node;

  for (std::size_t i = 0; i < n; ++i) {
    ring_nodes_.push_back(topology_.add_switch("ring" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t t = 0; t < t_per; ++t) {
      terminals_.push_back(topology_.add_terminal(
          "term" + std::to_string(i) + "." + std::to_string(t)));
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    cw_links_.push_back(
        topology_.add_link(ring_nodes_[i], ring_nodes_[(i + 1) % n]));
  }
  if (config_.dual_ring) {
    for (std::size_t i = 0; i < n; ++i) {
      ccw_links_.push_back(
          topology_.add_link(ring_nodes_[i], ring_nodes_[(i + n - 1) % n]));
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t t = 0; t < t_per; ++t) {
      access_links_.push_back(
          topology_.add_link(terminals_[i * t_per + t], ring_nodes_[i]));
    }
  }
  if (config_.delivery_links) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t t = 0; t < t_per; ++t) {
        delivery_links_.push_back(
            topology_.add_link(ring_nodes_[i], terminals_[i * t_per + t]));
      }
    }
  }
}

NodeId Rtnet::ring_node(std::size_t i) const {
  return ring_nodes_.at(i);
}

NodeId Rtnet::terminal(std::size_t node, std::size_t t) const {
  if (node >= config_.ring_nodes || t >= config_.terminals_per_node) {
    throw std::invalid_argument("Rtnet: bad terminal index");
  }
  return terminals_[node * config_.terminals_per_node + t];
}

LinkId Rtnet::cw_link(std::size_t i) const { return cw_links_.at(i); }

LinkId Rtnet::ccw_link(std::size_t i) const {
  if (!config_.dual_ring) {
    throw std::logic_error("Rtnet: single-ring network has no ccw links");
  }
  return ccw_links_.at(i);
}

LinkId Rtnet::access_link(std::size_t node, std::size_t t) const {
  if (node >= config_.ring_nodes || t >= config_.terminals_per_node) {
    throw std::invalid_argument("Rtnet: bad terminal index");
  }
  return access_links_[node * config_.terminals_per_node + t];
}

LinkId Rtnet::delivery_link(std::size_t node, std::size_t t) const {
  if (!config_.delivery_links) {
    throw std::logic_error("Rtnet: built without delivery links");
  }
  if (node >= config_.ring_nodes || t >= config_.terminals_per_node) {
    throw std::invalid_argument("Rtnet: bad terminal index");
  }
  return delivery_links_[node * config_.terminals_per_node + t];
}

Route Rtnet::broadcast_route(std::size_t node, std::size_t t) const {
  Route route;
  route.push_back(access_link(node, t));
  const std::size_t n = config_.ring_nodes;
  for (std::size_t k = 0; k + 1 < n; ++k) {
    route.push_back(cw_links_[(node + k) % n]);
  }
  return route;
}

Route Rtnet::unicast_route(std::size_t from_node, std::size_t from_t,
                           std::size_t to_node) const {
  if (to_node >= config_.ring_nodes) {
    throw std::invalid_argument("Rtnet: bad destination node");
  }
  Route route;
  route.push_back(access_link(from_node, from_t));
  const std::size_t n = config_.ring_nodes;
  for (std::size_t k = from_node; k != to_node; k = (k + 1) % n) {
    route.push_back(cw_links_[k]);
  }
  return route;
}

Route Rtnet::unicast_route_ccw(std::size_t from_node, std::size_t from_t,
                               std::size_t to_node) const {
  if (to_node >= config_.ring_nodes) {
    throw std::invalid_argument("Rtnet: bad destination node");
  }
  if (!config_.dual_ring) {
    throw std::logic_error("Rtnet: single-ring network has no ccw route");
  }
  Route route;
  route.push_back(access_link(from_node, from_t));
  const std::size_t n = config_.ring_nodes;
  for (std::size_t k = from_node; k != to_node; k = (k + n - 1) % n) {
    route.push_back(ccw_links_[k]);
  }
  return route;
}

}  // namespace rtcac
