// rtcac/rtnet/scenario.h
//
// The evaluation scenarios of Section 5 (Figures 10-13): cyclic-traffic
// load patterns over a 16-node RTnet ring, admitted through the bit-stream
// CAC, with the resulting worst-case end-to-end queueing delay bounds.
//
// A pattern assigns each terminal a share of the total normalized load B;
// terminal (i, t)'s broadcast CBR connection then has PCR = B * share.
// Figure 10 uses the symmetric pattern (share = 1/(16N)); Figures 11-13
// give one "heavy" terminal the fraction p and split the rest evenly.

#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/cdv.h"
#include "core/connection.h"
#include "rtnet/rtnet.h"

namespace rtcac {

struct ScenarioOptions {
  std::size_t ring_nodes = 16;
  std::size_t terminals_per_node = 1;  ///< N
  std::size_t priorities = 1;
  /// FIFO depth per priority queue == advertised per-hop bound Dmax
  /// (cell times).  RTnet uses 32 cells (~87 us at OC-3).
  double queue_cells = 32;
  /// Optional per-priority queue depths (index = level).  When set (size
  /// must equal `priorities`), overrides queue_cells — the knob Fig. 12
  /// turns: a low-priority class with a loose deadline can be given a
  /// deeper FIFO, which the CAC check then sizes traffic against.
  std::vector<double> queue_cells_by_priority;
  CdvPolicy cdv_policy = CdvPolicy::kHard;
  /// Extend every broadcast to the delivery link of one terminal on the
  /// final ring node, adding the node->terminal hop as a 16th queueing
  /// point.  The paper's figures measure to the last ring node (DESIGN.md
  /// decision 3); this knob verifies that choice is harmless: the
  /// delivery port is fed by a single in-link, so per-in-link filtering
  /// bounds its queue at zero and the e2e bound is unchanged.
  bool include_delivery_hop = false;
};

/// Per-terminal load shares (sum to 1); index = node * N + t.
struct TrafficPattern {
  std::vector<double> shares;

  static TrafficPattern symmetric(std::size_t ring_nodes,
                                  std::size_t terminals_per_node);
  /// Terminal (0, 0) generates fraction `p` of the total load; the rest is
  /// split evenly over the remaining terminals.  p in [0, 1].
  static TrafficPattern asymmetric(std::size_t ring_nodes,
                                   std::size_t terminals_per_node, double p);
};

/// Chooses a connection's priority from its position and load share.
using PriorityAssigner =
    std::function<Priority(std::size_t node, std::size_t t, double share)>;

/// Everyone at the given priority (default: the single level 0).
[[nodiscard]] PriorityAssigner assign_uniform(Priority priority = 0);
/// Heavy terminal (0,0) at the *lowest* level, everyone else at the
/// highest — DESIGN.md decision 4 for Figure 12.
[[nodiscard]] PriorityAssigner assign_heavy_low(std::size_t priorities);
/// The reverse assignment (heavy terminal highest), for comparison.
[[nodiscard]] PriorityAssigner assign_heavy_high(std::size_t priorities);
/// Round-robin split of terminals across the levels: each level's FIFO
/// queue then only buffers its own share of the worst-case clumps, which
/// is where the Fig. 12 capacity gain comes from.
[[nodiscard]] PriorityAssigner assign_split(std::size_t priorities);

struct ScenarioResult {
  /// Whether the whole pattern was admitted at total load B.
  bool all_admitted = false;
  std::size_t admitted = 0;
  std::size_t requested = 0;
  /// Max over admitted connections of the end-to-end worst-case bound
  /// under the final load (cell times); infinity when any hop unbounded.
  double max_e2e_bound = 0;
  /// Same maximum, split by the connection's priority level (0 for levels
  /// with no connections).
  std::vector<double> max_e2e_by_priority;
  std::string first_rejection;
};

/// Builds the ring, admits every terminal's broadcast CBR connection at
/// total load `total_load`, and reports the worst end-to-end bound.
[[nodiscard]] ScenarioResult evaluate_cyclic_scenario(
    const ScenarioOptions& options, const TrafficPattern& pattern,
    double total_load, const PriorityAssigner& assign = assign_uniform());

/// Largest total load B (within `tolerance`) whose pattern is fully
/// admitted with every end-to-end bound <= `deadline` cell times.
/// Returns 0 when even a vanishing load fails.
[[nodiscard]] double max_supportable_load(
    const ScenarioOptions& options, const TrafficPattern& pattern,
    double deadline, const PriorityAssigner& assign = assign_uniform(),
    double tolerance = 1.0 / 256.0);

/// Variant with one deadline per priority level (size must equal
/// options.priorities): level q's worst end-to-end bound must stay within
/// deadlines[q].  This is how heterogeneous cyclic classes (Table 1) are
/// mapped onto levels in the Fig. 12 experiment.
[[nodiscard]] double max_supportable_load_per_priority(
    const ScenarioOptions& options, const TrafficPattern& pattern,
    std::span<const double> deadlines,
    const PriorityAssigner& assign = assign_uniform(),
    double tolerance = 1.0 / 256.0);

}  // namespace rtcac
