#include "rtnet/cyclic.h"

#include <cmath>
#include <stdexcept>

namespace rtcac {

std::size_t CyclicClass::cells_per_update() const {
  return static_cast<std::size_t>(
      std::ceil(memory_kb * 1024.0 / kCellPayloadBytes));
}

double CyclicClass::payload_bandwidth_mbps() const {
  return memory_kb * 1024.0 * 8.0 / (period_ms * 1e-3) / 1e6;
}

double CyclicClass::wire_bandwidth_mbps() const {
  return static_cast<double>(cells_per_update()) * kCellBytes * 8.0 /
         (period_ms * 1e-3) / 1e6;
}

double CyclicClass::normalized_load() const {
  return wire_bandwidth_mbps() / kLinkMbps;
}

double CyclicClass::deadline_cell_times() const {
  return cell_times_from_seconds(delay_ms * 1e-3);
}

TrafficDescriptor CyclicClass::cbr_contract(double share) const {
  if (!(share > 0) || share > 1.0) {
    throw std::invalid_argument("CyclicClass: share must be in (0, 1]");
  }
  const double rate = normalized_load() * share;
  if (!(rate > 0) || rate > 1.0) {
    throw std::invalid_argument("CyclicClass: contract rate out of range");
  }
  return TrafficDescriptor::cbr(rate);
}

const std::array<CyclicClass, 3>& standard_cyclic_classes() {
  static const std::array<CyclicClass, 3> kClasses = {
      CyclicClass{"high speed", 1.0, 1.0, 4.0},
      CyclicClass{"medium speed", 30.0, 30.0, 64.0},
      CyclicClass{"low speed", 150.0, 150.0, 128.0},
  };
  return kClasses;
}

}  // namespace rtcac
