// rtcac/rtnet/cyclic.h
//
// RTnet's cyclic transmission service (Section 5, Table 1): a distributed
// real-time shared memory.  Each terminal periodically broadcasts its
// slice of the shared memory; the table's three service classes fix the
// update period, the allowable update delay (== the period) and the
// maximum shared-memory size, from which the required bandwidth follows.

#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "atm/cell.h"
#include "core/traffic.h"

namespace rtcac {

struct CyclicClass {
  std::string name;
  double period_ms = 0;   ///< memory update period
  double delay_ms = 0;    ///< maximum allowable update delay
  double memory_kb = 0;   ///< maximum shared-memory size (KiB)

  /// Cells needed to carry one full memory update (48-byte payloads).
  [[nodiscard]] std::size_t cells_per_update() const;
  /// Payload bandwidth, Mbps: memory bits / period (what Table 1 lists).
  [[nodiscard]] double payload_bandwidth_mbps() const;
  /// On-the-wire bandwidth including the 5-byte cell headers, Mbps.
  [[nodiscard]] double wire_bandwidth_mbps() const;
  /// Normalized sustained link load of one full-size update stream.
  [[nodiscard]] double normalized_load() const;
  /// Allowable delay in cell times (the QoS deadline a broadcast
  /// connection of this class requests).
  [[nodiscard]] double deadline_cell_times() const;

  /// CBR contract for a terminal owning `share` (in (0, 1]) of this
  /// class's shared memory: PCR sized so the update fits in the period.
  [[nodiscard]] TrafficDescriptor cbr_contract(double share = 1.0) const;
};

/// The three classes of Table 1: high / medium / low speed.
[[nodiscard]] const std::array<CyclicClass, 3>& standard_cyclic_classes();

}  // namespace rtcac
