#include "atm/gcra.h"

#include <algorithm>
#include <stdexcept>

namespace rtcac {

namespace {
// Slack for the conformance comparison: emission times come out of
// floating-point division (1/PCR etc.) and a cell that is late by rounding
// noise only must still conform.
constexpr double kSlack = 1e-9;
}  // namespace

Gcra::Gcra(double increment, double limit)
    : increment_(increment), limit_(limit) {
  if (!(increment > 0)) {
    throw std::invalid_argument("Gcra: increment must be > 0");
  }
  if (limit < 0) {
    throw std::invalid_argument("Gcra: limit must be >= 0");
  }
}

bool Gcra::conforms(double t) const noexcept {
  return t >= tat_ - limit_ - kSlack;
}

void Gcra::commit(double t) {
  if (!conforms(t)) {
    throw std::logic_error("Gcra: committing a non-conforming cell");
  }
  tat_ = std::max(t, tat_) + increment_;
}

double Gcra::earliest_conforming(double t) const noexcept {
  return std::max(t, tat_ - limit_);
}

DualGcra::DualGcra(const TrafficDescriptor& td)
    : descriptor_(td),
      peak_((td.validate(), 1.0 / td.pcr), 0.0),
      sustain_(1.0 / td.scr,
               static_cast<double>(td.mbs - 1) * (1.0 / td.scr - 1.0 / td.pcr)) {
}

bool DualGcra::conforms(double t) const noexcept {
  return peak_.conforms(t) && sustain_.conforms(t);
}

void DualGcra::commit(double t) {
  if (!conforms(t)) {
    throw std::logic_error("DualGcra: committing a non-conforming cell");
  }
  peak_.commit(t);
  sustain_.commit(t);
}

double DualGcra::earliest_conforming(double t) const noexcept {
  // The two buckets only ever push the time later; two passes reach the
  // joint fixed point because earliest_conforming is monotone and a later
  // time never breaks the other bucket's conformance.
  double e = std::max(peak_.earliest_conforming(t),
                      sustain_.earliest_conforming(t));
  e = std::max(peak_.earliest_conforming(e), sustain_.earliest_conforming(e));
  return e;
}

void DualGcra::reset() noexcept {
  peak_.reset();
  sustain_.reset();
}

}  // namespace rtcac
