// rtcac/atm/aal5.h
//
// ATM Adaptation Layer 5 — the standard way variable-length messages
// (RTnet's cyclic shared-memory updates, alarm records, ...) ride on
// fixed 48-byte cell payloads:
//
//   * the frame is padded so that payload + 8-byte trailer fills a whole
//     number of cells;
//   * the trailer (last 8 bytes of the last cell) carries UU/CPI octets,
//     the 16-bit payload length and a CRC-32 over the entire CPCS-PDU;
//   * the "last cell of frame" is signaled out of band (the AUU bit of
//     the cell header's PTI field), which segment()/Reassembler model
//     with an explicit flag.
//
// The codec is bit-faithful (real padding, real CRC-32, length check) so
// corruption and cell loss are *detected*, as AAL5 promises: a dropped
// cell shows up as a length/CRC mismatch at reassembly, never as silent
// garbage.

#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "atm/cell.h"

namespace rtcac {

/// IEEE 802.3 / AAL5 CRC-32 (polynomial 0x04C11DB7, reflected,
/// init/final 0xFFFFFFFF).
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

/// One 48-byte cell payload.
using CellPayload = std::array<std::uint8_t, kCellPayloadBytes>;

/// A segmented frame: payloads.back() carries the AAL5 trailer and is the
/// cell transmitted with the end-of-frame indication.
struct Aal5Segments {
  std::vector<CellPayload> payloads;
};

/// Largest frame AAL5 can carry (16-bit length field).
inline constexpr std::size_t kMaxAal5Frame = 65535;

/// Segments `frame` into cell payloads.  Throws std::invalid_argument for
/// frames over kMaxAal5Frame bytes.  Empty frames are legal (one cell of
/// padding + trailer).
[[nodiscard]] Aal5Segments aal5_segment(std::span<const std::uint8_t> frame);

/// Why a frame failed reassembly.
enum class Aal5Error {
  kLengthMismatch,  ///< cells lost/inserted: trailer length disagrees
  kBadCrc,          ///< payload corrupted in flight
  kOversized,       ///< more cells than any legal frame before last-cell
};

/// Reassembles one frame at a time from in-order cell payloads (ATM
/// guarantees per-VC ordering; loss shows up as missing cells).
class Aal5Reassembler {
 public:
  struct Result {
    /// Set when a frame completed successfully.
    std::optional<std::vector<std::uint8_t>> frame;
    /// Set when the end-of-frame cell arrived but the frame is bad.
    std::optional<Aal5Error> error;
  };

  /// Feeds the next cell payload; `last_cell` is the AUU end-of-frame
  /// indication.  Returns a completed frame, an error (state resets
  /// either way), or neither while mid-frame.
  Result push(const CellPayload& payload, bool last_cell);

  /// Cells buffered for the frame in progress.
  [[nodiscard]] std::size_t pending_cells() const noexcept {
    return buffer_.size() / kCellPayloadBytes;
  }

  /// Drops any partial frame (e.g. on connection reset).
  void reset() noexcept { buffer_.clear(); }

  [[nodiscard]] std::uint64_t frames_ok() const noexcept { return ok_; }
  [[nodiscard]] std::uint64_t frames_bad() const noexcept { return bad_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::uint64_t ok_ = 0;
  std::uint64_t bad_ = 0;
};

/// Cells needed to carry a frame of `frame_bytes` (payload + trailer +
/// padding).
[[nodiscard]] constexpr std::size_t aal5_cells_for(std::size_t frame_bytes) {
  return (frame_bytes + 8 + kCellPayloadBytes - 1) / kCellPayloadBytes;
}

}  // namespace rtcac
