// rtcac/atm/gcra.h
//
// The Generic Cell Rate Algorithm (ATM Forum TM 4.0 "virtual scheduling"
// form) — the usage parameter control the paper assumes at sources: a
// connection may not inject more traffic than its (PCR, SCR, MBS)
// contract, which is enforced / produced by a dual GCRA:
//
//   * GCRA(T=1/PCR, tau=0)                 — peak-rate spacing;
//   * GCRA(T=1/SCR, tau=(MBS-1)(1/SCR-1/PCR)) — sustainable rate with
//     burst tolerance.
//
// Times are in cell times (double; the simulator rounds up to ticks —
// delaying a cell never breaks GCRA conformance).

#pragma once

#include <cstdint>

#include "core/traffic.h"

namespace rtcac {

/// Single-bucket GCRA(T, tau), virtual-scheduling formulation.
///
/// A cell at time t conforms iff t >= TAT - tau, where TAT is the
/// theoretical arrival time; on a conforming cell TAT advances to
/// max(t, TAT) + T.
class Gcra {
 public:
  /// Throws std::invalid_argument unless increment > 0 and limit >= 0.
  Gcra(double increment, double limit);

  /// Emission interval T.
  [[nodiscard]] double increment() const noexcept { return increment_; }
  /// Burst tolerance tau.
  [[nodiscard]] double limit() const noexcept { return limit_; }

  /// Would a cell at time t conform?  Pure.
  [[nodiscard]] bool conforms(double t) const noexcept;

  /// Records a conforming cell at time t, advancing the TAT.
  /// Precondition: conforms(t) (checked; throws std::logic_error).
  void commit(double t);

  /// Earliest time >= t at which a cell would conform (shaper use).
  [[nodiscard]] double earliest_conforming(double t) const noexcept;

  void reset() noexcept { tat_ = 0; }

 private:
  double increment_;
  double limit_;
  double tat_ = 0;  ///< theoretical arrival time of the next cell
};

/// Dual GCRA enforcing a full VBR contract (PCR, SCR, MBS); CBR contracts
/// degenerate to the peak bucket alone.
class DualGcra {
 public:
  /// Throws std::invalid_argument on an invalid descriptor.
  explicit DualGcra(const TrafficDescriptor& td);

  [[nodiscard]] bool conforms(double t) const noexcept;

  /// Records a conforming cell.  Throws std::logic_error if !conforms(t).
  void commit(double t);

  /// Earliest time >= t at which a cell conforms to both buckets.
  [[nodiscard]] double earliest_conforming(double t) const noexcept;

  void reset() noexcept;

  [[nodiscard]] const TrafficDescriptor& descriptor() const noexcept {
    return descriptor_;
  }

 private:
  TrafficDescriptor descriptor_;
  Gcra peak_;
  Gcra sustain_;
};

}  // namespace rtcac
