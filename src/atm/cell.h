// rtcac/atm/cell.h
//
// The unit of transmission.  A real ATM cell is 53 bytes (48 payload + 5
// header); at the 155.52 Mbps (OC-3) rate the paper assumes, one cell time
// is ~2.7 us.  The simulator works on an integer grid of cell times
// ("ticks"): every link transmits exactly one cell per tick.

#pragma once

#include <cstdint>

#include "atm/vpi_vci.h"
#include "core/connection.h"

namespace rtcac {

/// Simulator time, in cell times.
using Tick = std::int64_t;

/// Bytes per ATM cell and payload, and the OC-3 cell time the paper uses.
inline constexpr int kCellBytes = 53;
inline constexpr int kCellPayloadBytes = 48;
inline constexpr double kLinkMbps = 155.52;
/// Seconds to transmit one cell at 155.52 Mbps (~2.73 us).
inline constexpr double kCellTimeSeconds =
    kCellBytes * 8 / (kLinkMbps * 1e6);

/// Converts between wall-clock and cell-time units.
[[nodiscard]] constexpr double cell_times_from_seconds(double seconds) {
  return seconds / kCellTimeSeconds;
}
[[nodiscard]] constexpr double seconds_from_cell_times(double cell_times) {
  return cell_times * kCellTimeSeconds;
}

/// One cell in flight.  The ConnectionId is simulator bookkeeping (stats
/// attribution); when a connection is installed with a LabelPath the data
/// path forwards on `label` with per-switch translation, exactly like
/// real ATM hardware, and label/connection consistency is checked at
/// every hop.
///
/// The frame fields model the AAL boundary: `end_of_frame` is the AUU bit
/// of the PTI field (last cell of an AAL5 CPCS-PDU), and frame /
/// cell_in_frame let receivers reassemble and detect damaged updates
/// without carrying the 48 payload bytes through the simulator.
struct Cell {
  ConnectionId connection = kInvalidConnection;
  std::uint64_t sequence = 0;   ///< per-connection cell counter
  Tick injected = 0;            ///< tick the source emitted the cell
  Tick queue_wait = 0;          ///< accumulated queueing delay so far
  std::uint32_t frame = 0;          ///< AAL frame number
  std::uint16_t cell_in_frame = 0;  ///< position within the frame
  bool end_of_frame = true;         ///< AUU: last cell of the frame
  VcLabel label;                    ///< VPI/VCI on the current link
};

}  // namespace rtcac
