#include "atm/source_scheduler.h"

#include <cmath>
#include <stdexcept>

namespace rtcac {

namespace {

/// Smallest integer tick >= t, forgiving rounding noise just below an
/// integer.
Tick ceil_tick(double t) {
  return static_cast<Tick>(std::ceil(t - 1e-9));
}

}  // namespace

GreedySourceScheduler::GreedySourceScheduler(
    const TrafficDescriptor& td, Tick start,
    std::optional<std::uint64_t> max_cells)
    : gcra_(td), start_(start), remaining_(max_cells) {}

std::optional<Tick> GreedySourceScheduler::next() {
  if (remaining_.has_value()) {
    if (*remaining_ == 0) return std::nullopt;
    --*remaining_;
  }
  const double want =
      first_ ? static_cast<double>(start_) : static_cast<double>(last_ + 1);
  const Tick t = ceil_tick(gcra_.earliest_conforming(want));
  gcra_.commit(static_cast<double>(t));
  first_ = false;
  last_ = t;
  return t;
}

PeriodicSourceScheduler::PeriodicSourceScheduler(
    Tick period, Tick phase, std::optional<std::uint64_t> max_cells)
    : period_(period), next_tick_(phase), remaining_(max_cells) {
  if (period < 1) {
    throw std::invalid_argument("PeriodicSourceScheduler: period must be >= 1");
  }
  if (phase < 0) {
    throw std::invalid_argument("PeriodicSourceScheduler: phase must be >= 0");
  }
}

std::optional<Tick> PeriodicSourceScheduler::next() {
  if (remaining_.has_value()) {
    if (*remaining_ == 0) return std::nullopt;
    --*remaining_;
  }
  const Tick t = next_tick_;
  next_tick_ += period_;
  return t;
}

FrameBurstSourceScheduler::FrameBurstSourceScheduler(
    std::uint16_t frame_cells, Tick period, Tick spacing, Tick phase,
    std::optional<std::uint32_t> max_frames)
    : frame_cells_(frame_cells),
      period_(period),
      spacing_(spacing),
      phase_(phase),
      remaining_frames_(max_frames) {
  if (frame_cells < 1) {
    throw std::invalid_argument(
        "FrameBurstSourceScheduler: frame_cells must be >= 1");
  }
  if (spacing < 1) {
    throw std::invalid_argument(
        "FrameBurstSourceScheduler: spacing must be >= 1");
  }
  if (phase < 0) {
    throw std::invalid_argument(
        "FrameBurstSourceScheduler: phase must be >= 0");
  }
  if (static_cast<Tick>(frame_cells) * spacing > period) {
    throw std::invalid_argument(
        "FrameBurstSourceScheduler: frame does not fit its period");
  }
}

std::optional<Tick> FrameBurstSourceScheduler::next() {
  if (remaining_frames_.has_value() && *remaining_frames_ == 0) {
    return std::nullopt;
  }
  // Remember which (frame, cell) this emission is — annotate() stamps it —
  // then advance, so callers that never annotate still progress.
  emitted_frame_ = frame_;
  emitted_cell_ = cell_;
  const Tick t = phase_ + static_cast<Tick>(frame_) * period_ +
                 static_cast<Tick>(cell_) * spacing_;
  if (++cell_ == frame_cells_) {
    cell_ = 0;
    ++frame_;
    if (remaining_frames_.has_value()) --*remaining_frames_;
  }
  return t;
}

void FrameBurstSourceScheduler::annotate(Cell& cell) {
  cell.frame = emitted_frame_;
  cell.cell_in_frame = emitted_cell_;
  cell.end_of_frame = (emitted_cell_ + 1 == frame_cells_);
}

RandomOnOffSourceScheduler::RandomOnOffSourceScheduler(
    const TrafficDescriptor& td, std::uint64_t seed, Options options)
    : gcra_(td), rng_(seed), options_(options) {
  if (options_.mean_burst_cells == 0) {
    throw std::invalid_argument(
        "RandomOnOffSourceScheduler: mean_burst_cells must be >= 1");
  }
  if (options_.mean_gap < 1) {
    throw std::invalid_argument(
        "RandomOnOffSourceScheduler: mean_gap must be >= 1");
  }
}

std::optional<Tick> RandomOnOffSourceScheduler::next() {
  if (burst_remaining_ == 0) {
    // Draw the next burst: geometric length, exponential-ish gap.
    burst_remaining_ = 1;
    const double p = 1.0 / static_cast<double>(options_.mean_burst_cells);
    while (burst_remaining_ < 4 * options_.mean_burst_cells &&
           !rng_.chance(p)) {
      ++burst_remaining_;
    }
    const double gap = -std::log(1.0 - rng_.uniform()) *
                       static_cast<double>(options_.mean_gap);
    clock_ += 1 + static_cast<Tick>(gap);
  }
  --burst_remaining_;
  // Demand cells back-to-back within the burst; the shaper stretches the
  // spacing whenever the contract requires it.
  const double want = static_cast<double>(
      std::max(clock_, last_emitted_ + 1));
  const Tick t = ceil_tick(gcra_.earliest_conforming(want));
  gcra_.commit(static_cast<double>(t));
  clock_ = t;
  last_emitted_ = t;
  return t;
}

}  // namespace rtcac
