// rtcac/atm/source_scheduler.h
//
// Cell-emission schedules for simulated sources.  Every scheduler emits a
// monotonically increasing sequence of ticks (>= 1 apart — the access link
// carries one cell per cell time) that conforms to the connection's
// (PCR, SCR, MBS) contract; the flavours differ in *which* conforming
// pattern they produce:
//
//   * GreedySourceScheduler — the adversarial worst case: every cell at
//     the earliest conforming tick (the discrete pattern of Fig. 1 whose
//     envelope Algorithm 2.1 bounds).  Used to stress analytic bounds.
//   * PeriodicSourceScheduler — a well-behaved CBR source: fixed spacing
//     with a phase offset (RTnet cyclic transmission).
//   * RandomOnOffSourceScheduler — bursty but conforming: random bursts
//     shaped through a dual GCRA.  Used for soft-CAC and average-case
//     experiments.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "atm/cell.h"
#include "atm/gcra.h"
#include "util/xorshift.h"

namespace rtcac {

/// Produces the tick of each successive cell emission.
class SourceScheduler {
 public:
  virtual ~SourceScheduler() = default;

  /// Tick of the next cell; nullopt when the source is exhausted.
  /// Successive values are strictly increasing.
  virtual std::optional<Tick> next() = 0;

  /// Stamps application metadata (AAL frame fields) onto the cell whose
  /// emission next() just returned.  Default: single-cell frames.
  virtual void annotate(Cell& cell) { cell.frame = static_cast<std::uint32_t>(cell.sequence); }
};

/// Adversarial source: earliest conforming tick for every cell.
class GreedySourceScheduler final : public SourceScheduler {
 public:
  /// Emits `max_cells` cells (no limit if nullopt) starting at `start`.
  explicit GreedySourceScheduler(
      const TrafficDescriptor& td, Tick start = 0,
      std::optional<std::uint64_t> max_cells = std::nullopt);

  std::optional<Tick> next() override;

 private:
  DualGcra gcra_;
  Tick start_;
  std::optional<std::uint64_t> remaining_;
  bool first_ = true;
  Tick last_ = 0;
};

/// Fixed-period CBR source.
class PeriodicSourceScheduler final : public SourceScheduler {
 public:
  /// Throws std::invalid_argument unless period >= 1 and phase >= 0.
  PeriodicSourceScheduler(Tick period, Tick phase = 0,
                          std::optional<std::uint64_t> max_cells = std::nullopt);

  std::optional<Tick> next() override;

 private:
  Tick period_;
  Tick next_tick_;
  std::optional<std::uint64_t> remaining_;
};

/// Cyclic-transmission source: every `period` ticks it emits one frame of
/// `frame_cells` cells paced `spacing` ticks apart — the shape of an
/// RTnet shared-memory update (an AAL5 PDU worth of cells, rate-shaped to
/// the class's CBR contract).  Cells carry frame/cell_in_frame metadata
/// and the end-of-frame indication.
class FrameBurstSourceScheduler final : public SourceScheduler {
 public:
  /// Throws std::invalid_argument unless frame_cells >= 1, spacing >= 1
  /// and the frame fits its period (frame_cells * spacing <= period).
  FrameBurstSourceScheduler(
      std::uint16_t frame_cells, Tick period, Tick spacing, Tick phase = 0,
      std::optional<std::uint32_t> max_frames = std::nullopt);

  std::optional<Tick> next() override;
  void annotate(Cell& cell) override;

 private:
  std::uint16_t frame_cells_;
  Tick period_;
  Tick spacing_;
  Tick phase_;
  std::optional<std::uint32_t> remaining_frames_;
  std::uint32_t frame_ = 0;
  std::uint16_t cell_ = 0;
  std::uint32_t emitted_frame_ = 0;
  std::uint16_t emitted_cell_ = 0;
};

/// Knobs for RandomOnOffSourceScheduler (namespace scope so the
/// constructor can default it).
struct RandomOnOffOptions {
  std::uint32_t mean_burst_cells = 4;  ///< geometric mean burst length
  Tick mean_gap = 50;                  ///< mean idle gap between bursts
};

/// Conforming random on/off source: alternates bursts of back-to-back
/// demand (shaped by the contract's dual GCRA) with idle gaps.
class RandomOnOffSourceScheduler final : public SourceScheduler {
 public:
  using Options = RandomOnOffOptions;

  RandomOnOffSourceScheduler(const TrafficDescriptor& td, std::uint64_t seed,
                             Options options = RandomOnOffOptions{});

  std::optional<Tick> next() override;

 private:
  DualGcra gcra_;
  Xorshift rng_;
  Options options_;
  Tick clock_ = 0;       ///< demand time of the next wanted cell
  std::uint32_t burst_remaining_ = 0;
  Tick last_emitted_ = -1;
};

}  // namespace rtcac
