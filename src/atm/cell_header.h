// rtcac/atm/cell_header.h
//
// The 5-byte ATM cell header (UNI format, ITU-T I.361) and its Header
// Error Control byte (I.432): a CRC-8 over the first four octets,
// polynomial x^8+x^2+x+1, XORed with 0x55 ("coset") before transmission.
// HEC corrects any single-bit header error and detects multi-bit ones —
// the mechanism that keeps a corrupted VPI/VCI from misdelivering a cell
// into some other connection's hard real-time stream.
//
//   bits  39-36  GFC   (generic flow control, UNI only)
//   bits  35-28  VPI   (8 bits at the UNI)
//   bits  27-12  VCI
//   bits  11-9   PTI   (payload type; bit 9 is the AAL5 AUU "last cell")
//   bit   8      CLP   (cell loss priority)
//   bits  7-0    HEC

#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>

#include "atm/vpi_vci.h"

namespace rtcac {

/// Decoded header fields.
struct CellHeader {
  std::uint8_t gfc = 0;   ///< 4 bits
  VcLabel label;          ///< VPI (8 bits at UNI) + VCI (16 bits)
  std::uint8_t pti = 0;   ///< 3 bits; LSB = AUU (end of AAL5 frame)
  bool clp = false;       ///< cell loss priority (1 = discard-eligible)

  [[nodiscard]] bool end_of_frame() const noexcept { return (pti & 1) != 0; }

  friend bool operator==(const CellHeader&, const CellHeader&) = default;
};

using EncodedHeader = std::array<std::uint8_t, 5>;

/// CRC-8 over `bytes` with the HEC polynomial x^8 + x^2 + x + 1 (0x07).
[[nodiscard]] std::uint8_t hec_crc8(std::span<const std::uint8_t> bytes);

/// Encodes the header, computing the HEC (including the 0x55 coset).
/// Throws std::invalid_argument if a field exceeds its width.
[[nodiscard]] EncodedHeader encode_header(const CellHeader& header);

/// Outcome of decoding a received header.
struct DecodeResult {
  std::optional<CellHeader> header;  ///< set when valid or corrected
  bool corrected = false;            ///< a single-bit error was repaired
};

/// Decodes and HEC-checks 5 received octets.  A single-bit error anywhere
/// in the 40 header bits is corrected; anything worse yields no header
/// (the cell must be discarded).
[[nodiscard]] DecodeResult decode_header(const EncodedHeader& octets);

}  // namespace rtcac
