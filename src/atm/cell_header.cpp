#include "atm/cell_header.h"

#include <stdexcept>

namespace rtcac {

namespace {

constexpr std::uint8_t kHecCoset = 0x55;

std::array<std::uint8_t, 256> make_crc8_table() {
  std::array<std::uint8_t, 256> table{};
  for (int n = 0; n < 256; ++n) {
    std::uint8_t c = static_cast<std::uint8_t>(n);
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 0x80) ? static_cast<std::uint8_t>((c << 1) ^ 0x07)
                     : static_cast<std::uint8_t>(c << 1);
    }
    table[static_cast<std::size_t>(n)] = c;
  }
  return table;
}

const std::array<std::uint8_t, 256>& crc8_table() {
  static const auto table = make_crc8_table();
  return table;
}

// Syndrome of a received 5-octet header: 0 iff consistent.
std::uint8_t syndrome(const EncodedHeader& octets) {
  const std::uint8_t expect = static_cast<std::uint8_t>(
      hec_crc8(std::span<const std::uint8_t>(octets.data(), 4)) ^ kHecCoset);
  return static_cast<std::uint8_t>(expect ^ octets[4]);
}

// Precomputed syndrome of every single-bit error position (bit i of the
// 40-bit header): flipping bit i changes the syndrome by a fixed pattern,
// so a lookup identifies which bit to repair.
std::array<std::uint8_t, 40> make_single_bit_syndromes() {
  std::array<std::uint8_t, 40> table{};
  const EncodedHeader zero{};
  const std::uint8_t base = syndrome(zero);
  for (int bit = 0; bit < 40; ++bit) {
    EncodedHeader flipped{};
    flipped[static_cast<std::size_t>(bit / 8)] ^=
        static_cast<std::uint8_t>(0x80u >> (bit % 8));
    table[static_cast<std::size_t>(bit)] =
        static_cast<std::uint8_t>(syndrome(flipped) ^ base);
  }
  return table;
}

const std::array<std::uint8_t, 40>& single_bit_syndromes() {
  static const auto table = make_single_bit_syndromes();
  return table;
}

}  // namespace

std::uint8_t hec_crc8(std::span<const std::uint8_t> bytes) {
  std::uint8_t c = 0;
  for (const std::uint8_t byte : bytes) {
    c = crc8_table()[static_cast<std::size_t>(c ^ byte)];
  }
  return c;
}

EncodedHeader encode_header(const CellHeader& header) {
  if (header.gfc > 0x0F) {
    throw std::invalid_argument("encode_header: GFC exceeds 4 bits");
  }
  if (header.label.vpi > 0xFF) {
    throw std::invalid_argument("encode_header: UNI VPI exceeds 8 bits");
  }
  if (header.pti > 0x07) {
    throw std::invalid_argument("encode_header: PTI exceeds 3 bits");
  }
  EncodedHeader octets{};
  octets[0] = static_cast<std::uint8_t>((header.gfc << 4) |
                                        (header.label.vpi >> 4));
  octets[1] = static_cast<std::uint8_t>(((header.label.vpi & 0x0F) << 4) |
                                        (header.label.vci >> 12));
  octets[2] = static_cast<std::uint8_t>((header.label.vci >> 4) & 0xFF);
  octets[3] = static_cast<std::uint8_t>(((header.label.vci & 0x0F) << 4) |
                                        (header.pti << 1) |
                                        (header.clp ? 1 : 0));
  octets[4] = static_cast<std::uint8_t>(
      hec_crc8(std::span<const std::uint8_t>(octets.data(), 4)) ^ kHecCoset);
  return octets;
}

DecodeResult decode_header(const EncodedHeader& octets) {
  DecodeResult result;
  EncodedHeader repaired = octets;
  const std::uint8_t s = syndrome(octets);
  if (s != 0) {
    // Single-bit errors have unique syndromes (the code's minimum
    // distance is 4 over the 40 protected bits); look the bit up.
    int bit = -1;
    const auto& table = single_bit_syndromes();
    for (int i = 0; i < 40; ++i) {
      if (table[static_cast<std::size_t>(i)] == s) {
        bit = i;
        break;
      }
    }
    if (bit < 0) {
      return result;  // multi-bit damage: discard
    }
    repaired[static_cast<std::size_t>(bit / 8)] ^=
        static_cast<std::uint8_t>(0x80u >> (bit % 8));
    result.corrected = true;
  }

  CellHeader header;
  header.gfc = static_cast<std::uint8_t>(repaired[0] >> 4);
  header.label.vpi = static_cast<std::uint16_t>(
      ((repaired[0] & 0x0F) << 4) | (repaired[1] >> 4));
  header.label.vci = static_cast<std::uint16_t>(
      ((repaired[1] & 0x0F) << 12) | (repaired[2] << 4) |
      (repaired[3] >> 4));
  header.pti = static_cast<std::uint8_t>((repaired[3] >> 1) & 0x07);
  header.clp = (repaired[3] & 1) != 0;
  result.header = header;
  return result;
}

}  // namespace rtcac
