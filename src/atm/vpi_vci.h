// rtcac/atm/vpi_vci.h
//
// ATM cell labels.  A cell is forwarded on its (VPI, VCI) pair, which is
// meaningful only per link: every switch translates the incoming label to
// the label the next hop expects.  VCIs 0-31 are reserved for signaling
// and OAM (ITU-T I.361), so user connections allocate from 32 upward.

#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace rtcac {

struct VcLabel {
  std::uint16_t vpi = 0;
  std::uint16_t vci = 0;

  friend bool operator==(const VcLabel&, const VcLabel&) = default;
  friend auto operator<=>(const VcLabel&, const VcLabel&) = default;

  [[nodiscard]] std::string to_string() const {
    return std::to_string(vpi) + "/" + std::to_string(vci);
  }
};

/// First VCI available to user connections.
inline constexpr std::uint16_t kFirstUserVci = 32;
/// NNI VPI space is 12 bits.
inline constexpr std::uint16_t kMaxVpi = 4095;

}  // namespace rtcac

template <>
struct std::hash<rtcac::VcLabel> {
  std::size_t operator()(const rtcac::VcLabel& label) const noexcept {
    return (static_cast<std::size_t>(label.vpi) << 16) | label.vci;
  }
};
