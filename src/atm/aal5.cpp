#include "atm/aal5.h"

#include <array>
#include <stdexcept>

namespace rtcac {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const auto table = make_crc_table();
  return table;
}

// Trailer layout (last 8 bytes of the CPCS-PDU):
//   [0] CPCS-UU  [1] CPI  [2..3] length (big endian)  [4..7] CRC-32.
constexpr std::size_t kTrailerBytes = 8;

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t byte : data) {
    c = crc_table()[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

Aal5Segments aal5_segment(std::span<const std::uint8_t> frame) {
  if (frame.size() > kMaxAal5Frame) {
    throw std::invalid_argument("aal5_segment: frame exceeds 65535 bytes");
  }
  const std::size_t cells = aal5_cells_for(frame.size());
  const std::size_t total = cells * kCellPayloadBytes;

  std::vector<std::uint8_t> pdu(total, 0);
  std::copy(frame.begin(), frame.end(), pdu.begin());
  // Trailer occupies the final 8 bytes; padding (zeros) sits between.
  std::uint8_t* trailer = pdu.data() + total - kTrailerBytes;
  trailer[0] = 0;  // CPCS-UU
  trailer[1] = 0;  // CPI
  trailer[2] = static_cast<std::uint8_t>(frame.size() >> 8);
  trailer[3] = static_cast<std::uint8_t>(frame.size() & 0xFF);
  // CRC covers everything up to and including the length field.
  const std::uint32_t crc =
      crc32(std::span<const std::uint8_t>(pdu.data(), total - 4));
  trailer[4] = static_cast<std::uint8_t>(crc >> 24);
  trailer[5] = static_cast<std::uint8_t>(crc >> 16);
  trailer[6] = static_cast<std::uint8_t>(crc >> 8);
  trailer[7] = static_cast<std::uint8_t>(crc & 0xFF);

  Aal5Segments segments;
  segments.payloads.resize(cells);
  for (std::size_t k = 0; k < cells; ++k) {
    std::copy_n(pdu.begin() + static_cast<std::ptrdiff_t>(
                                  k * kCellPayloadBytes),
                kCellPayloadBytes, segments.payloads[k].begin());
  }
  return segments;
}

Aal5Reassembler::Result Aal5Reassembler::push(const CellPayload& payload,
                                              bool last_cell) {
  Result result;
  // An impossible frame length means cells of the end-of-frame indication
  // were lost; give up on the partial frame before buffering forever.
  if (buffer_.size() >= kMaxAal5Frame + kCellPayloadBytes) {
    buffer_.clear();
    ++bad_;
    result.error = Aal5Error::kOversized;
    // The current payload starts (or continues) a fresh attempt.
  }
  buffer_.insert(buffer_.end(), payload.begin(), payload.end());
  if (!last_cell) return result;

  // End of frame: validate the trailer.
  const std::size_t total = buffer_.size();
  const std::uint8_t* trailer = buffer_.data() + total - 8;
  const std::size_t length =
      (static_cast<std::size_t>(trailer[2]) << 8) | trailer[3];
  const std::uint32_t wire_crc = (static_cast<std::uint32_t>(trailer[4]) << 24) |
                                 (static_cast<std::uint32_t>(trailer[5]) << 16) |
                                 (static_cast<std::uint32_t>(trailer[6]) << 8) |
                                 static_cast<std::uint32_t>(trailer[7]);
  const bool length_ok = aal5_cells_for(length) * kCellPayloadBytes == total;
  if (!length_ok) {
    buffer_.clear();
    ++bad_;
    result.error = Aal5Error::kLengthMismatch;
    return result;
  }
  const std::uint32_t computed =
      crc32(std::span<const std::uint8_t>(buffer_.data(), total - 4));
  if (computed != wire_crc) {
    buffer_.clear();
    ++bad_;
    result.error = Aal5Error::kBadCrc;
    return result;
  }
  result.frame.emplace(buffer_.begin(),
                       buffer_.begin() + static_cast<std::ptrdiff_t>(length));
  buffer_.clear();
  ++ok_;
  return result;
}

}  // namespace rtcac
