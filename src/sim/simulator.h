// rtcac/sim/simulator.h
//
// Cell-level simulation of an ATM network with static-priority FIFO
// switches — the substrate on which the paper's analytic bounds are
// validated: run adversarial (greedy, phase-aligned) sources through the
// exact switch model the analysis assumes and check that no measured
// queueing delay ever exceeds the computed worst-case bound, and no
// admitted cell is ever dropped from a FIFO sized to the advertised bound.
//
// Model (matching Section 4.1):
//   * slotted time; every link carries one cell per tick;
//   * store-and-forward: a cell fully received at tick t may start
//     transmission at t; it lands at the next node at t + 1 + propagation;
//   * each switch output port serves its priority FIFO queues highest
//     level first, FIFO within a level;
//   * terminals serialize their connections' cells onto their access link
//     (that wait is accounted separately — the network queueing delay a
//     QoS contract covers starts at the first switch).

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "atm/gcra.h"
#include "net/label_manager.h"
#include "net/topology.h"
#include "sim/event_queue.h"
#include "sim/sim_sink.h"
#include "sim/sim_source.h"
#include "sim/sim_switch.h"

namespace rtcac {

/// Bare event-driven clock: schedule/run.  SimNetwork composes it; tests
/// can also drive it directly.
class Simulator {
 public:
  [[nodiscard]] Tick now() const noexcept { return now_; }

  /// Schedules an action; time must be >= now().
  void schedule(Tick time, EventPhase phase, EventQueue::Action action);

  /// Runs all events with time <= horizon; returns events processed.
  std::size_t run_until(Tick horizon);

  [[nodiscard]] bool idle() const noexcept { return events_.empty(); }

 private:
  EventQueue events_;
  Tick now_ = 0;
};

/// A simulated network instance: topology + installed connections.
class SimNetwork {
 public:
  struct Options {
    std::size_t priorities = 1;
    /// Per-priority FIFO depth at switch ports, in cells (0 = unbounded).
    std::size_t queue_capacity = 0;
  };

  SimNetwork(const Topology& topology, const Options& options);

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  /// Installs a connection: cells follow `route` at `priority`, generated
  /// by `scheduler`.  The route's first node is the source (terminal or
  /// switch); cells are consumed at the route's last node.  Throws
  /// std::invalid_argument on malformed input or duplicate id.
  void install(ConnectionId id, const Route& route, Priority priority,
               std::unique_ptr<SourceScheduler> scheduler);

  /// Same, with usage parameter control: a dual GCRA for `contract` runs
  /// at the connection's UNI (the source node, ahead of the access link)
  /// and discards non-conforming cells before they reach any queue — the
  /// mechanism that keeps one misbehaving source from invalidating other
  /// connections' guarantees (the paper assumes conforming sources; UPC
  /// is what makes the assumption enforceable).  A conforming emission
  /// schedule is never policed.
  void install_policed(ConnectionId id, const Route& route,
                       Priority priority,
                       std::unique_ptr<SourceScheduler> scheduler,
                       const TrafficDescriptor& contract);

  /// Cells discarded by ingress UPC for this connection.
  [[nodiscard]] std::uint64_t policed_cells(ConnectionId id) const;

  /// Application hook invoked for every cell delivered at the
  /// connection's destination (after the SimSink records it) — how an
  /// AAL reassembler or the cyclic shared-memory service taps the wire.
  using DeliveryHook = std::function<void(const Cell&, Tick)>;
  void set_delivery_hook(ConnectionId id, DeliveryHook hook);

  /// Runs the connection's data path on VPI/VCI labels: the source stamps
  /// `labels.initial`, every switch on the route translates per the
  /// bindings (as its LabelSwitchingTable would), and the destination
  /// verifies the egress label.  Any mismatch — wrong label, wrong input
  /// port — discards the cell and counts a misroute, like real hardware
  /// dropping an unknown VPI/VCI.  Call after install()/install_policed().
  void attach_labels(ConnectionId id, const LabelPath& labels);

  /// Cells discarded because their label did not match the switching
  /// tables (0 for a consistent control plane).
  [[nodiscard]] std::uint64_t label_misroutes() const noexcept {
    return label_misroutes_;
  }

  /// Advances the simulation to `horizon` ticks.
  void run_until(Tick horizon);

  [[nodiscard]] const SimSink& sink(ConnectionId id) const;
  /// Access-link serialization wait of a source's cells (ticks).
  [[nodiscard]] const SummaryStats& access_wait(ConnectionId id) const;

  /// Total cells dropped anywhere (queue overflow).  Zero for any
  /// correctly admitted workload with FIFO depth >= advertised bound.
  [[nodiscard]] std::uint64_t total_drops() const noexcept;

  /// Peak occupancy of queue (node, out_port, priority), in cells.
  [[nodiscard]] std::size_t max_backlog(NodeId node, std::size_t out_port,
                                        Priority priority) const;
  /// Largest single-visit wait at queue (node, out_port, priority).
  [[nodiscard]] Tick max_port_wait(NodeId node, std::size_t out_port,
                                   Priority priority) const;

  [[nodiscard]] const Topology& topology() const noexcept {
    return topology_;
  }

 private:
  struct RouteEntry {
    std::size_t out_port;
    Priority priority;
  };
  struct ConnectionState {
    Route route;
    Priority priority;
    NodeId source;
    NodeId destination;
    NodeId ingress;  ///< UPC point: the source node (UNI)
    std::unique_ptr<SimSource> source_gen;
    SimSink sink;
    SummaryStats access_wait;
    std::optional<DualGcra> policer;
    std::uint64_t policed = 0;
    DeliveryHook delivery_hook;
    /// Label plane, when attached: initial/egress labels plus the
    /// per-switch translation, keyed by node (routes visit a node once).
    std::optional<VcLabel> initial_label;
    std::optional<VcLabel> egress_label;
    std::map<NodeId, LabelBinding> label_bindings;
  };
  struct NodeState {
    std::vector<OutputPort> ports;  // one per out-link
    std::map<ConnectionId, RouteEntry> routes;
    bool is_terminal = false;
  };

  void pump_source(ConnectionId id);
  void arrive(ConnectionId id, Cell cell, NodeId node,
              std::optional<std::size_t> in_port);
  void ensure_transmit_scheduled(NodeId node, std::size_t port);
  void transmit(NodeId node, std::size_t port);

  const Topology& topology_;
  Options options_;
  Simulator sim_;
  std::vector<NodeState> nodes_;
  std::map<ConnectionId, ConnectionState> connections_;
  std::uint64_t label_misroutes_ = 0;
  Tick horizon_ = 0;
};

}  // namespace rtcac
