// rtcac/sim/sim_sink.h
//
// Per-connection delivery statistics: end-to-end *network* queueing delay
// (the sum of per-port waits the cell accumulated — directly comparable to
// the analytic end-to-end queueing delay bound), plus the access-link
// serialization wait charged before the cell entered the network.

#pragma once

#include <cstdint>

#include "atm/cell.h"
#include "util/stats.h"

namespace rtcac {

class SimSink {
 public:
  void deliver(const Cell& cell, Tick now) {
    ++delivered_;
    last_delivery_ = now;
    queue_delay_.add(static_cast<double>(cell.queue_wait));
  }

  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  [[nodiscard]] Tick last_delivery() const noexcept { return last_delivery_; }
  /// Distribution of per-cell total network queueing delay (ticks).
  [[nodiscard]] const SummaryStats& queue_delay() const noexcept {
    return queue_delay_;
  }

 private:
  std::uint64_t delivered_ = 0;
  Tick last_delivery_ = 0;
  SummaryStats queue_delay_;
};

}  // namespace rtcac
