#include "sim/event_queue.h"

#include <stdexcept>
#include <utility>

namespace rtcac {

void EventQueue::schedule(Tick time, EventPhase phase, Action action) {
  if (time < 0) {
    throw std::invalid_argument("EventQueue: negative event time");
  }
  heap_.push(Event{time, phase, next_seq_++, std::move(action)});
}

Tick EventQueue::run_next() {
  if (heap_.empty()) {
    throw std::logic_error("EventQueue: run_next on empty queue");
  }
  // priority_queue::top is const; move out via const_cast is UB-adjacent,
  // so copy the action handle (shared_ptr-backed std::function copy is
  // cheap relative to simulation work).
  Event ev = heap_.top();
  heap_.pop();
  ev.action();
  return ev.time;
}

}  // namespace rtcac
