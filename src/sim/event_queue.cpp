#include "sim/event_queue.h"

#include <utility>

#include "util/contract.h"

namespace rtcac {

void EventQueue::schedule(Tick time, EventPhase phase, Action action) {
  RTCAC_REQUIRE(time >= 0, "EventQueue: negative event time");
  heap_.push(Event{time, phase, next_seq_++, std::move(action)});
}

Tick EventQueue::run_next() {
  RTCAC_REQUIRE(!heap_.empty(), "EventQueue: run_next on empty queue");
  // priority_queue::top is const; move out via const_cast is UB-adjacent,
  // so copy the action handle (shared_ptr-backed std::function copy is
  // cheap relative to simulation work).
  Event ev = heap_.top();
  heap_.pop();
  RTCAC_INVARIANT_AUDIT(
      ev.time >= last_popped_,
      "EventQueue: event timestamps popped out of order");
  last_popped_ = ev.time;
  ev.action();
  return ev.time;
}

}  // namespace rtcac
