// rtcac/sim/sim_source.h
//
// A connection's traffic generator inside the simulation: wraps a
// SourceScheduler (atm/source_scheduler.h) and lazily pumps one emission
// event at a time into the event queue, so even infinite schedules cost
// O(pending) memory.

#pragma once

#include <cstdint>
#include <memory>

#include "atm/source_scheduler.h"
#include "core/connection.h"

namespace rtcac {

class SimSource {
 public:
  SimSource(ConnectionId connection, std::unique_ptr<SourceScheduler> scheduler)
      : connection_(connection), scheduler_(std::move(scheduler)) {}

  [[nodiscard]] ConnectionId connection() const noexcept {
    return connection_;
  }

  /// Emission tick of the next cell, building it; nullopt when exhausted.
  std::optional<std::pair<Tick, Cell>> next_emission() {
    const auto t = scheduler_->next();
    if (!t.has_value()) return std::nullopt;
    Cell cell;
    cell.connection = connection_;
    cell.sequence = next_seq_++;
    cell.injected = *t;
    cell.queue_wait = 0;
    scheduler_->annotate(cell);
    return std::make_pair(*t, cell);
  }

  [[nodiscard]] std::uint64_t emitted() const noexcept { return next_seq_; }

 private:
  ConnectionId connection_;
  std::unique_ptr<SourceScheduler> scheduler_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace rtcac
