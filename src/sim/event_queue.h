// rtcac/sim/event_queue.h
//
// Deterministic discrete-event core for the cell-level simulator.
//
// ATM is slotted: every link moves at most one cell per cell time, so all
// interesting instants are integer ticks.  Within a tick, events run in
// three phases — arrivals (phase 0: cells delivered to a node, sources
// emitting) strictly before transmissions (phase 1: an output port picking
// its next cell), strictly before timers (phase 2: protocol timeouts such
// as the signaling engine's SETUP retransmission timers).  This guarantees
// a port's scheduling decision at tick t sees every cell that has arrived
// by t, and a timer firing at t sees the tick's complete message activity
// — a SETUP answered exactly at its deadline is not retransmitted.  Ties
// within a phase break by insertion order, so runs are bit-for-bit
// reproducible.

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "atm/cell.h"

namespace rtcac {

enum class EventPhase : std::uint8_t { kArrival = 0, kTransmit = 1, kTimer = 2 };

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at `time` (>= the last popped time).
  void schedule(Tick time, EventPhase phase, Action action);

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Time of the earliest pending event; valid only when !empty().
  [[nodiscard]] Tick next_time() const { return heap_.top().time; }

  /// Pops and runs the earliest event; returns its time.  Audit builds
  /// verify dispatch-time monotonicity (each popped timestamp >= the
  /// previous one) — the property the static-priority FIFO analysis
  /// assumes of the simulated timeline.
  Tick run_next();

  /// Time of the most recently popped event (0 before any pop).
  [[nodiscard]] Tick last_popped() const noexcept { return last_popped_; }

 private:
  struct Event {
    Tick time;
    EventPhase phase;
    std::uint64_t seq;
    // Ordered as a max-heap inverted: "greater" pops first-in-time.
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      if (a.phase != b.phase) return a.phase > b.phase;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  Tick last_popped_ = 0;
};

}  // namespace rtcac
