#include "sim/sim_switch.h"

#include <algorithm>
#include <stdexcept>

#include "util/contract.h"

namespace rtcac {

OutputPort::OutputPort(std::size_t priorities, std::size_t capacity)
    : capacity_(capacity),
      queues_(priorities),
      max_backlog_(priorities, 0),
      max_wait_(priorities, 0) {
  RTCAC_REQUIRE(priorities >= 1, "OutputPort: priorities must be >= 1");
}

bool OutputPort::enqueue(const Cell& cell, Priority p, Tick now) {
  RTCAC_REQUIRE(p < queues_.size(), "OutputPort: priority out of range");
  auto& q = queues_[p];
  if (capacity_ != 0 && q.size() >= capacity_) {
    ++dropped_;
    return false;
  }
  q.push_back(Queued{cell, now});
  ++backlog_;
  max_backlog_[p] = std::max(max_backlog_[p], q.size());
  return true;
}

std::optional<OutputPort::Departure> OutputPort::dequeue(Tick now) {
  for (std::size_t p = 0; p < queues_.size(); ++p) {
    auto& q = queues_[p];
    if (q.empty()) continue;
    Queued item = std::move(q.front());
    q.pop_front();
    --backlog_;
    ++transmitted_;
    const Tick wait = now - item.enqueued;
    max_wait_[p] = std::max(max_wait_[p], wait);
    return Departure{item.cell, static_cast<Priority>(p), wait};
  }
  return std::nullopt;
}

std::size_t OutputPort::max_backlog(Priority p) const {
  RTCAC_REQUIRE(p < max_backlog_.size(), "OutputPort: priority out of range");
  return max_backlog_[p];
}

Tick OutputPort::max_wait(Priority p) const {
  RTCAC_REQUIRE(p < max_wait_.size(), "OutputPort: priority out of range");
  return max_wait_[p];
}

}  // namespace rtcac
