#include "sim/simulator.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "util/contract.h"

namespace rtcac {

void Simulator::schedule(Tick time, EventPhase phase,
                         EventQueue::Action action) {
  RTCAC_REQUIRE(time >= now_, "Simulator: scheduling into the past");
  events_.schedule(time, phase, std::move(action));
}

std::size_t Simulator::run_until(Tick horizon) {
  std::size_t processed = 0;
  while (!events_.empty() && events_.next_time() <= horizon) {
    // Advance the clock before dispatching so the action reads the event's
    // own time from now().
    now_ = events_.next_time();
    events_.run_next();
    ++processed;
  }
  now_ = std::max(now_, horizon);
  return processed;
}

SimNetwork::SimNetwork(const Topology& topology, const Options& options)
    : topology_(topology), options_(options) {
  RTCAC_REQUIRE(options_.priorities >= 1,
                "SimNetwork: priorities must be >= 1");
  nodes_.reserve(topology_.node_count());
  for (const NodeInfo& n : topology_.nodes()) {
    NodeState state;
    state.is_terminal = (n.kind == NodeKind::kTerminal);
    const std::size_t ports = topology_.out_links(n.id).size();
    state.ports.reserve(ports);
    for (std::size_t p = 0; p < ports; ++p) {
      // Terminal serializers are source-side buffers: unbounded.  Switch
      // queues use the configured FIFO depth.
      state.ports.emplace_back(options_.priorities,
                               state.is_terminal ? 0 : options_.queue_capacity);
    }
    nodes_.push_back(std::move(state));
  }
}

void SimNetwork::install(ConnectionId id, const Route& route,
                         Priority priority,
                         std::unique_ptr<SourceScheduler> scheduler) {
  RTCAC_REQUIRE(priority < options_.priorities,
                "SimNetwork: priority out of range");
  RTCAC_REQUIRE(!connections_.contains(id),
                "SimNetwork: duplicate connection id");
  const std::vector<NodeId> path = topology_.route_nodes(route);
  RTCAC_REQUIRE(
      std::set<NodeId>(path.begin(), path.end()).size() == path.size(),
      "SimNetwork: routes revisiting a node are not supported");

  ConnectionState state;
  state.route = route;
  state.priority = priority;
  state.source = path.front();
  state.destination = path.back();
  // UPC runs at the UNI — the source node, before the access link — so a
  // conforming emission schedule is judged free of the serialization
  // jitter a shared access link adds (jitter compresses gaps and would
  // fail GCRA even for honest sources; CDV handling is the network
  // analysis's job, not the policer's).
  state.ingress = path.front();
  state.source_gen =
      std::make_unique<SimSource>(id, std::move(scheduler));
  for (std::size_t k = 0; k < route.size(); ++k) {
    nodes_[path[k]].routes.emplace(
        id, RouteEntry{topology_.out_port(route[k]), priority});
  }
  connections_.emplace(id, std::move(state));
  pump_source(id);
}

void SimNetwork::install_policed(ConnectionId id, const Route& route,
                                 Priority priority,
                                 std::unique_ptr<SourceScheduler> scheduler,
                                 const TrafficDescriptor& contract) {
  install(id, route, priority, std::move(scheduler));
  connections_.at(id).policer.emplace(contract);
}

std::uint64_t SimNetwork::policed_cells(ConnectionId id) const {
  return connections_.at(id).policed;
}

void SimNetwork::set_delivery_hook(ConnectionId id, DeliveryHook hook) {
  connections_.at(id).delivery_hook = std::move(hook);
}

void SimNetwork::attach_labels(ConnectionId id, const LabelPath& labels) {
  ConnectionState& conn = connections_.at(id);
  conn.initial_label = labels.initial;
  conn.egress_label = labels.egress;
  conn.label_bindings.clear();
  for (const LabelBinding& binding : labels.bindings) {
    RTCAC_REQUIRE(conn.label_bindings.emplace(binding.node, binding).second,
                  "SimNetwork: label path visits a node twice");
  }
}

void SimNetwork::pump_source(ConnectionId id) {
  ConnectionState& conn = connections_.at(id);
  auto emission = conn.source_gen->next_emission();
  if (!emission.has_value()) return;
  const auto [tick, cell] = *emission;
  RTCAC_ASSERT(tick >= sim_.now(),
               "SimNetwork: source emitted into the past");
  sim_.schedule(tick, EventPhase::kArrival, [this, id, cell = cell]() {
    arrive(id, cell, connections_.at(id).source, std::nullopt);
    pump_source(id);
  });
}

void SimNetwork::arrive(ConnectionId id, Cell cell, NodeId node,
                        std::optional<std::size_t> in_port) {
  ConnectionState& conn = connections_.at(id);
  if (conn.initial_label.has_value()) {
    if (node == conn.source) {
      cell.label = *conn.initial_label;  // stamped at birth, at the UNI
    } else if (const auto binding = conn.label_bindings.find(node);
               binding != conn.label_bindings.end()) {
      // A real switch forwards on (in port, label) alone; anything that
      // does not match the installed translation is discarded.
      if (cell.label != binding->second.in_label || !in_port.has_value() ||
          *in_port != binding->second.in_port) {
        ++label_misroutes_;
        return;
      }
      cell.label = binding->second.out_label;
    }
  }
  if (node == conn.destination) {
    if (conn.egress_label.has_value() && cell.label != *conn.egress_label) {
      ++label_misroutes_;
      return;
    }
    conn.sink.deliver(cell, sim_.now());
    if (conn.delivery_hook) conn.delivery_hook(cell, sim_.now());
    return;
  }
  if (conn.policer.has_value() && node == conn.ingress) {
    const double t = static_cast<double>(sim_.now());
    if (!conn.policer->conforms(t)) {
      ++conn.policed;  // UPC discard: the contract violator pays, alone
      return;
    }
    conn.policer->commit(t);
  }
  NodeState& ns = nodes_[node];
  const auto it = ns.routes.find(id);
  RTCAC_ASSERT(it != ns.routes.end(),
               "SimNetwork: cell arrived off its route");
  const RouteEntry entry = it->second;
  ns.ports[entry.out_port].enqueue(cell, entry.priority, sim_.now());
  ensure_transmit_scheduled(node, entry.out_port);
}

void SimNetwork::ensure_transmit_scheduled(NodeId node, std::size_t port_idx) {
  OutputPort& port = nodes_[node].ports[port_idx];
  if (!port.has_backlog() || port.transmit_scheduled) return;
  const Tick when = std::max(sim_.now(), port.next_free);
  port.transmit_scheduled = true;
  sim_.schedule(when, EventPhase::kTransmit,
                [this, node, port_idx]() { transmit(node, port_idx); });
}

void SimNetwork::transmit(NodeId node, std::size_t port_idx) {
  NodeState& ns = nodes_[node];
  OutputPort& port = ns.ports[port_idx];
  port.transmit_scheduled = false;
  auto departure = port.dequeue(sim_.now());
  if (!departure.has_value()) return;

  Cell cell = departure->cell;
  ConnectionState& conn = connections_.at(cell.connection);
  if (ns.is_terminal) {
    conn.access_wait.add(static_cast<double>(departure->wait));
  } else {
    cell.queue_wait += departure->wait;
  }

  port.next_free = sim_.now() + 1;
  const LinkId link_id = topology_.out_links(node)[port_idx];
  const LinkInfo& link = topology_.link(link_id);
  const Tick lands = sim_.now() + 1 + link.propagation;
  const ConnectionId id = cell.connection;
  const NodeId to = link.to;
  const std::size_t to_port = topology_.in_port(link_id);
  sim_.schedule(lands, EventPhase::kArrival, [this, id, cell, to, to_port]() {
    arrive(id, cell, to, to_port);
  });
  ensure_transmit_scheduled(node, port_idx);
}

void SimNetwork::run_until(Tick horizon) {
  if (horizon < horizon_) return;
  horizon_ = horizon;
  sim_.run_until(horizon);
}

const SimSink& SimNetwork::sink(ConnectionId id) const {
  return connections_.at(id).sink;
}

const SummaryStats& SimNetwork::access_wait(ConnectionId id) const {
  return connections_.at(id).access_wait;
}

std::uint64_t SimNetwork::total_drops() const noexcept {
  std::uint64_t drops = 0;
  for (const NodeState& ns : nodes_) {
    for (const OutputPort& port : ns.ports) {
      drops += port.dropped();
    }
  }
  return drops;
}

std::size_t SimNetwork::max_backlog(NodeId node, std::size_t out_port,
                                    Priority priority) const {
  return nodes_.at(node).ports.at(out_port).max_backlog(priority);
}

Tick SimNetwork::max_port_wait(NodeId node, std::size_t out_port,
                               Priority priority) const {
  return nodes_.at(node).ports.at(out_port).max_wait(priority);
}

}  // namespace rtcac
