// rtcac/sim/sim_switch.h
//
// The queueing element of the simulator: an output port with one FIFO
// queue per static priority level, served at one cell per tick, highest
// priority first — exactly the switch model the paper's analysis assumes
// (Section 4.1).  Terminals reuse the same element with a single queue as
// their access-link serializer.

#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "atm/cell.h"
#include "core/connection.h"

namespace rtcac {

/// Static-priority FIFO output port.
class OutputPort {
 public:
  /// `capacity` is the per-priority queue depth in cells; 0 = unbounded.
  OutputPort(std::size_t priorities, std::size_t capacity);

  /// Enqueues a cell at priority `p`; returns false (and counts a drop)
  /// when that priority's queue is full.
  bool enqueue(const Cell& cell, Priority p, Tick now);

  [[nodiscard]] bool has_backlog() const noexcept { return backlog_ > 0; }
  [[nodiscard]] std::size_t backlog() const noexcept { return backlog_; }

  struct Departure {
    Cell cell;
    Priority priority;
    Tick wait;  ///< ticks the cell sat in this queue
  };

  /// Pops the head of the highest-priority non-empty queue.  The caller
  /// decides where the wait is charged (network queueing delay at a
  /// switch, access serialization at a terminal).  nullopt when empty.
  std::optional<Departure> dequeue(Tick now);

  [[nodiscard]] std::uint64_t transmitted() const noexcept {
    return transmitted_;
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  /// Largest backlog ever seen in priority-p's queue (cells) — the
  /// empirical counterpart of max_backlog() in the analysis.
  [[nodiscard]] std::size_t max_backlog(Priority p) const;
  /// Largest queueing wait (ticks) ever charged at priority p.
  [[nodiscard]] Tick max_wait(Priority p) const;

  [[nodiscard]] std::size_t priorities() const noexcept {
    return queues_.size();
  }

  /// Port bookkeeping used by the engine: earliest tick the link is free.
  Tick next_free = 0;
  bool transmit_scheduled = false;

 private:
  struct Queued {
    Cell cell;
    Tick enqueued;
  };

  std::size_t capacity_;
  std::vector<std::deque<Queued>> queues_;
  std::vector<std::size_t> max_backlog_;
  std::vector<Tick> max_wait_;
  std::size_t backlog_ = 0;
  std::uint64_t transmitted_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace rtcac
