// Unit tests for the parallel network-level admission engine
// (admission_engine.h): decision parity with ConnectionManager, pipeline
// checks, deferred-teardown batching, lease reclamation, and the
// deterministic parallel trace replay against a serial oracle.  The
// suite carries the "concurrency" ctest label so the tsan CI job
// re-runs it under ThreadSanitizer.

#include "net/admission_engine.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/traffic.h"
#include "util/xorshift.h"

namespace rtcac {
namespace {

using TraceOp = AdmissionEngine::TraceOp;
using OpOutcome = AdmissionEngine::OpOutcome;

constexpr std::size_t kSwitches = 4;
constexpr std::size_t kTermsPerSwitch = 2;
constexpr Priority kPriorities = 2;

struct Net {
  Topology topology;
  std::vector<Route> routes;  // 1..3 queueing points each
};

// Small version of the bench topology: a switch chain where every switch
// carries source and sink terminals, so routes span 1-3 shards and
// neighboring routes contend on shared switches.
Net make_net() {
  Net net;
  std::vector<NodeId> switches;
  for (std::size_t s = 0; s < kSwitches; ++s) {
    switches.push_back(net.topology.add_switch("sw" + std::to_string(s)));
  }
  std::vector<LinkId> chain;
  for (std::size_t s = 0; s + 1 < kSwitches; ++s) {
    chain.push_back(net.topology.add_link(switches[s], switches[s + 1]));
  }
  std::vector<std::vector<LinkId>> access(kSwitches);
  std::vector<std::vector<LinkId>> egress(kSwitches);
  for (std::size_t s = 0; s < kSwitches; ++s) {
    for (std::size_t t = 0; t < kTermsPerSwitch; ++t) {
      const NodeId src = net.topology.add_terminal();
      access[s].push_back(net.topology.add_link(src, switches[s]));
      const NodeId dst = net.topology.add_terminal();
      egress[s].push_back(net.topology.add_link(switches[s], dst));
    }
  }
  for (std::size_t s = 0; s < kSwitches; ++s) {
    for (std::size_t hops = 1; hops <= 3; ++hops) {
      const std::size_t last = s + hops - 1;
      if (last >= kSwitches) continue;
      for (std::size_t ti = 0; ti < kTermsPerSwitch; ++ti) {
        Route route;
        route.push_back(access[s][ti]);
        for (std::size_t h = s; h < last; ++h) route.push_back(chain[h]);
        route.push_back(egress[last][ti]);
        net.routes.push_back(std::move(route));
      }
    }
  }
  return net;
}

ConnectionManager::Params make_params() {
  ConnectionManager::Params params;
  params.priorities = kPriorities;
  params.advertised_bound = 256.0;
  return params;
}

QosRequest random_request(Xorshift& rng) {
  QosRequest request;
  const double scr = static_cast<double>(1 + rng.below(6)) / 1024.0;
  const double pcr = scr * static_cast<double>(2 + rng.below(4));
  request.traffic = TrafficDescriptor::vbr(
      pcr, scr, static_cast<std::uint32_t>(2 + rng.below(16)));
  request.priority = static_cast<Priority>(rng.below(kPriorities));
  // One in six deadlines tight enough to trip the end-to-end check once
  // the computed bounds have grown under load.
  request.deadline = rng.below(6) == 0 ? 500.0 : 1e7;
  return request;
}

void expect_same_result(const AdmissionEngine::SetupResult& got,
                        const ConnectionManager::SetupResult& want,
                        std::size_t step) {
  EXPECT_EQ(got.accepted, want.accepted) << "step " << step;
  EXPECT_EQ(got.reason, want.reason) << "step " << step;
  EXPECT_EQ(got.rejecting_node, want.rejecting_node) << "step " << step;
  ASSERT_EQ(got.hop_bounds.size(), want.hop_bounds.size()) << "step " << step;
  for (std::size_t h = 0; h < got.hop_bounds.size(); ++h) {
    EXPECT_DOUBLE_EQ(got.hop_bounds[h], want.hop_bounds[h]);
  }
  EXPECT_DOUBLE_EQ(got.e2e_bound_at_setup, want.e2e_bound_at_setup);
  EXPECT_DOUBLE_EQ(got.e2e_advertised, want.e2e_advertised);
}

TEST(AdmissionEngine, SetupMatchesConnectionManager) {
  const Net net = make_net();
  const auto params = make_params();
  AdmissionEngine engine(net.topology, params);
  ConnectionManager cm(net.topology, params);
  // Phase 1: hammer one route with heavy bursts until both sides reject,
  // so hop-rejection parity (reason string, rejecting node) is exercised
  // deterministically.
  QosRequest hog;
  hog.traffic = TrafficDescriptor::vbr(0.4, 0.1, 16);
  hog.deadline = 1e7;
  // routes[2] and routes[3] enter sw0 on different access links but share
  // its chain-link queue; per-input filtering means only such multi-input
  // contention can ever fill a queue.
  std::size_t rejections = 0;
  for (std::size_t step = 0; step < 64 && rejections == 0; ++step) {
    const Route& route = net.routes[2 + step % 2];
    const auto got = engine.setup(hog, route);
    const auto want = cm.setup(hog, route);
    expect_same_result(got, want, step);
    if (!want.accepted) ++rejections;
  }
  EXPECT_GT(rejections, 0u);
  // Phase 2: a random mix over every route for broader parity coverage.
  Xorshift rng(11);
  for (std::size_t step = 0; step < 96; ++step) {
    const QosRequest request = random_request(rng);
    const Route& route = net.routes[rng.below(net.routes.size())];
    expect_same_result(engine.setup(request, route),
                       cm.setup(request, route), 100 + step);
  }
  EXPECT_EQ(engine.connection_count(), cm.connection_count());
  EXPECT_TRUE(engine.state_consistent());
  EXPECT_TRUE(engine.bandwidth_conserved());
  EXPECT_TRUE(engine.cache_coherent());
}

TEST(AdmissionEngine, QueueingPointsAndArrivalsMatchConnectionManager) {
  const Net net = make_net();
  const auto params = make_params();
  AdmissionEngine engine(net.topology, params);
  ConnectionManager cm(net.topology, params);
  const auto traffic = TrafficDescriptor::vbr(0.01, 0.002, 8);
  for (const Route& route : net.routes) {
    const auto got = engine.queueing_points(route);
    const auto want = cm.queueing_points(route);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t h = 0; h < got.size(); ++h) {
      EXPECT_EQ(got[h].node, want[h].node);
      EXPECT_EQ(got[h].in_port, want[h].in_port);
      EXPECT_EQ(got[h].out_port, want[h].out_port);
      EXPECT_EQ(engine.arrival_at_hop(traffic, got, h, 1),
                cm.arrival_at_hop(traffic, want, h, 1));
    }
  }
}

TEST(AdmissionEngine, CheckIsCommitFree) {
  const Net net = make_net();
  AdmissionEngine engine(net.topology, make_params());
  Xorshift rng(12);
  const QosRequest request = random_request(rng);
  const Route& route = net.routes.front();
  const auto checked = engine.check(request, route);
  EXPECT_TRUE(checked.accepted) << checked.reason;
  EXPECT_EQ(engine.connection_count(), 0u);
  EXPECT_EQ(engine.core().connection_count(), 0u);
  // The commit then lands on exactly the state the check evaluated.
  const auto committed = engine.setup(request, route);
  EXPECT_TRUE(committed.accepted);
  ASSERT_EQ(committed.hop_bounds.size(), checked.hop_bounds.size());
  for (std::size_t h = 0; h < checked.hop_bounds.size(); ++h) {
    EXPECT_DOUBLE_EQ(committed.hop_bounds[h], checked.hop_bounds[h]);
  }
}

TEST(AdmissionEngine, PipelinedChecksMatchSerial) {
  const Net net = make_net();
  const auto params = make_params();
  AdmissionEngine serial(net.topology, params);
  AdmissionEngine pipelined(net.topology, params, /*pipeline_threads=*/2);
  Xorshift rng(13);
  for (std::size_t step = 0; step < 48; ++step) {
    const QosRequest request = random_request(rng);
    const Route& route = net.routes[rng.below(net.routes.size())];
    if (step % 3 == 0) {
      const auto a = serial.setup(request, route);
      const auto b = pipelined.setup(request, route);
      EXPECT_EQ(a.accepted, b.accepted) << "step " << step;
      EXPECT_EQ(a.reason, b.reason);
    } else {
      const auto a = serial.check(request, route);
      const auto b = pipelined.check(request, route);
      EXPECT_EQ(a.accepted, b.accepted) << "step " << step;
      EXPECT_EQ(a.reason, b.reason);
      EXPECT_DOUBLE_EQ(a.e2e_bound_at_setup, b.e2e_bound_at_setup);
    }
  }
  EXPECT_TRUE(pipelined.cache_coherent());
}

TEST(AdmissionEngine, TeardownRestoresCapacity) {
  const Net net = make_net();
  ConnectionManager::Params params = make_params();
  params.advertised_bound = 16.0;  // small enough for one hog to fill
  AdmissionEngine engine(net.topology, params);
  QosRequest hog;
  hog.traffic = TrafficDescriptor::vbr(0.4, 0.1, 16);
  hog.deadline = 1e7;
  // Alternate two routes contending on sw0's chain-link queue from
  // different access links until the shared queue fills (per-input
  // filtering: a single input can never backlog a queue by itself).
  std::vector<ConnectionId> admitted;
  AdmissionEngine::SetupResult rejected;
  for (std::size_t i = 0; i < 64; ++i) {
    const auto r = engine.setup(hog, net.routes[2 + i % 2]);
    if (!r.accepted) {
      rejected = r;
      break;
    }
    admitted.push_back(r.id);
  }
  ASSERT_FALSE(admitted.empty());
  ASSERT_FALSE(rejected.reason.empty()) << "route never filled";
  // Releasing the last admission restores exactly the state that
  // admitted it, so that route's request fits again.
  const Route& last_route = net.routes[2 + (admitted.size() - 1) % 2];
  EXPECT_TRUE(engine.teardown(admitted.back()));
  EXPECT_FALSE(engine.teardown(admitted.back()));  // already gone
  EXPECT_TRUE(engine.setup(hog, last_route).accepted);
}

TEST(AdmissionEngine, DeferredTeardownHoldsCapacityUntilDrain) {
  const Net net = make_net();
  ConnectionManager::Params params = make_params();
  params.advertised_bound = 16.0;
  AdmissionEngine engine(net.topology, params);
  QosRequest hog;
  hog.traffic = TrafficDescriptor::vbr(0.4, 0.1, 16);
  hog.deadline = 1e7;
  std::vector<ConnectionId> admitted;
  bool filled = false;
  for (std::size_t i = 0; i < 64; ++i) {
    const auto r = engine.setup(hog, net.routes[2 + i % 2]);
    if (!r.accepted) {
      filled = true;
      break;
    }
    admitted.push_back(r.id);
  }
  ASSERT_FALSE(admitted.empty());
  ASSERT_TRUE(filled) << "route never filled";
  // The attempt that hit the full queue vs. the last one that fit.
  const Route& rejected_route = net.routes[2 + admitted.size() % 2];
  const Route& last_route = net.routes[2 + (admitted.size() - 1) % 2];
  const std::size_t hops = engine.queueing_points(last_route).size();

  ASSERT_TRUE(engine.teardown_deferred(admitted.back()));
  EXPECT_FALSE(engine.teardown_deferred(admitted.back()));  // record retired
  EXPECT_EQ(engine.connection_count(), admitted.size() - 1);
  EXPECT_EQ(engine.pending_removals(), hops);
  // The reservations are still committed until the drain, so the queue
  // still looks full to new admissions — deferral trades capacity-return
  // latency for batched rebuild cost, never correctness.
  EXPECT_FALSE(engine.setup(hog, rejected_route).accepted);

  EXPECT_EQ(engine.drain(), hops);
  EXPECT_EQ(engine.pending_removals(), 0u);
  EXPECT_TRUE(engine.setup(hog, last_route).accepted);
  EXPECT_TRUE(engine.state_consistent());
  EXPECT_TRUE(engine.bandwidth_conserved());
  EXPECT_TRUE(engine.cache_coherent());
}

TEST(AdmissionEngine, ReclaimSweepsExpiredLeases) {
  const Net net = make_net();
  AdmissionEngine engine(net.topology, make_params());
  Xorshift rng(14);
  const Route& route = net.routes.back();  // 3 queueing points
  const auto leased =
      engine.setup(random_request(rng), route, /*lease_expiry=*/50.0);
  ASSERT_TRUE(leased.accepted) << leased.reason;
  const auto permanent = engine.setup(random_request(rng), route);
  ASSERT_TRUE(permanent.accepted) << permanent.reason;

  EXPECT_TRUE(engine.reclaim(49.0).orphans.empty());
  const auto swept = engine.reclaim(50.0);
  ASSERT_EQ(swept.orphans.size(), 1u);
  EXPECT_EQ(swept.orphans.front(), leased.id);
  EXPECT_EQ(swept.reservations_reclaimed,
            engine.queueing_points(route).size());
  EXPECT_EQ(engine.connection_count(), 1u);
  EXPECT_FALSE(engine.teardown(leased.id));  // record reclaimed with it
  EXPECT_TRUE(engine.reclaim(1e18).orphans.empty());  // permanent survives
  EXPECT_TRUE(engine.state_consistent());
}

TEST(AdmissionEngine, PublishWindowDoesNotChangeDecisions) {
  // A deferred snapshot-publication window batches export work behind a
  // setup burst; it must be invisible in the decision stream, because
  // stale stamps only ever force the locked fallback / revalidation.
  const Net net = make_net();
  const auto params = make_params();
  AdmissionEngine eager(net.topology, params);
  AdmissionEngine batched(net.topology, params,
                          BitstreamCacPolicy::instance(),
                          AdmissionEngine::Options{.pipeline_threads = 0,
                                                   .publish_window = 6});
  Xorshift rng(14);
  for (std::size_t step = 0; step < 64; ++step) {
    const QosRequest request = random_request(rng);
    const Route& route = net.routes[rng.below(net.routes.size())];
    if (step % 4 == 0) {
      const auto a = eager.check(request, route);
      const auto b = batched.check(request, route);
      EXPECT_EQ(a.accepted, b.accepted) << "step " << step;
      EXPECT_EQ(a.reason, b.reason) << "step " << step;
    } else {
      expect_same_result(batched.setup(request, route),
                         eager.setup(request, route), step);
    }
  }
  EXPECT_EQ(batched.connection_count(), eager.connection_count());
  // The burst left deferred publications behind; the eager engine has
  // none.  Flushing is idempotent.
  EXPECT_EQ(eager.publish_snapshots(), 0u);
  EXPECT_GT(batched.publish_snapshots(), 0u);
  EXPECT_EQ(batched.publish_snapshots(), 0u);
  EXPECT_TRUE(batched.state_consistent());
  EXPECT_TRUE(batched.bandwidth_conserved());
  EXPECT_TRUE(batched.cache_coherent());
}

TEST(AdmissionEngine, ShardOfRejectsTerminals) {
  const Net net = make_net();
  AdmissionEngine engine(net.topology, make_params());
  EXPECT_EQ(engine.core().shard_count(), kSwitches);
  NodeId terminal = 0;
  for (const NodeInfo& node : net.topology.nodes()) {
    if (node.kind == NodeKind::kSwitch) {
      EXPECT_LT(engine.shard_of(node.id), kSwitches);
    } else {
      terminal = node.id;
    }
  }
  EXPECT_THROW(static_cast<void>(engine.shard_of(terminal)),
               std::invalid_argument);
}

// --- deterministic parallel replay vs the serial oracle -----------------
// A plain ConnectionManager walks the trace in order; its decisions,
// reason strings and RejectReason records define correctness for every
// thread count.  ConnectionManager::check() is the commit-free oracle
// for kCheck ops — the same walk the bench gate uses.

std::vector<OpOutcome> oracle_replay(const std::vector<TraceOp>& trace,
                                     const Topology& topology,
                                     const ConnectionManager::Params& params,
                                     std::size_t* connections_left) {
  ConnectionManager cm(topology, params);
  std::vector<OpOutcome> outcomes(trace.size());
  std::vector<ConnectionId> ids_by_op(trace.size(), kInvalidConnection);
  std::vector<ConnectionId> deferred;
  std::set<ConnectionId> retired;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const TraceOp& op = trace[i];
    const ConnectionId id = op.target != TraceOp::kNoTarget
                                ? ids_by_op[op.target]
                                : op.id;
    switch (op.kind) {
      case TraceOp::Kind::kCheck: {
        const auto r = cm.check(op.request, op.route);
        outcomes[i] = OpOutcome{r.accepted, r.reason, r.reject};
        break;
      }
      case TraceOp::Kind::kSetup: {
        const auto r = cm.setup(op.request, op.route);
        ids_by_op[i] = r.accepted ? r.id : kInvalidConnection;
        outcomes[i] = OpOutcome{r.accepted, r.reason, r.reject};
        break;
      }
      case TraceOp::Kind::kTeardown:
        outcomes[i].accepted = id != kInvalidConnection &&
                               !retired.contains(id) && cm.teardown(id);
        break;
      case TraceOp::Kind::kTeardownDeferred: {
        const bool live = id != kInvalidConnection &&
                          cm.connections().contains(id) &&
                          !retired.contains(id);
        if (live) {
          retired.insert(id);
          deferred.push_back(id);
        }
        outcomes[i].accepted = live;
        break;
      }
      case TraceOp::Kind::kModify: {
        const bool live = id != kInvalidConnection &&
                          cm.connections().contains(id) &&
                          !retired.contains(id);
        if (!live) {
          // Mirror the engine's unknown-id rejection so a MODIFY racing
          // a teardown still compares bit-identically.
          if (id != kInvalidConnection) {
            outcomes[i].reject.code = RejectCode::kNoRoute;
            outcomes[i].reject.detail = "renegotiate: unknown connection id";
            outcomes[i].reason = outcomes[i].reject.detail;
          }
          break;
        }
        const auto r = cm.renegotiate(id, op.request);
        outcomes[i] = OpOutcome{r.accepted, r.reason, r.reject};
        break;
      }
      case TraceOp::Kind::kDrain:
        for (const ConnectionId d : deferred) {
          (void)cm.teardown(d);
          retired.erase(d);
        }
        deferred.clear();
        outcomes[i].accepted = true;
        break;
    }
  }
  *connections_left = cm.connection_count();
  return outcomes;
}

// Mixed trace with every op kind: setups, checks, immediate and deferred
// teardowns (including repeats on the same target), periodic drains and
// a final drain so end-state connection counts are comparable.
std::vector<TraceOp> make_trace(std::uint64_t seed, std::size_t ops,
                                const Net& net) {
  Xorshift rng(seed);
  std::vector<TraceOp> trace;
  std::vector<std::size_t> setups;
  const auto push_setup = [&] {
    TraceOp op;
    op.kind = TraceOp::Kind::kSetup;
    op.request = random_request(rng);
    op.route = net.routes[rng.below(net.routes.size())];
    setups.push_back(trace.size());
    trace.push_back(std::move(op));
  };
  for (std::size_t i = 0; i < ops / 4; ++i) push_setup();
  for (std::size_t i = 0; i < ops; ++i) {
    const auto dice = rng.below(10);
    if (dice < 5) {
      TraceOp op;
      op.kind = TraceOp::Kind::kCheck;
      op.request = random_request(rng);
      op.route = net.routes[rng.below(net.routes.size())];
      trace.push_back(std::move(op));
    } else if (dice < 8) {
      push_setup();
    } else {
      TraceOp op;
      op.kind = dice == 8 ? TraceOp::Kind::kTeardown
                          : TraceOp::Kind::kTeardownDeferred;
      op.target = setups[rng.below(setups.size())];
      trace.push_back(std::move(op));
    }
    if (i % 24 == 23) {
      TraceOp drain;
      drain.kind = TraceOp::Kind::kDrain;
      trace.push_back(std::move(drain));
    }
  }
  TraceOp drain;
  drain.kind = TraceOp::Kind::kDrain;
  trace.push_back(std::move(drain));
  return trace;
}

TEST(AdmissionEngine, ReplayMatchesSerialOracleOnEveryThreadCount) {
  const Net net = make_net();
  const auto params = make_params();
  for (const std::uint64_t seed : {21u, 22u}) {
    const std::vector<TraceOp> trace = make_trace(seed, 120, net);
    std::size_t oracle_connections = 0;
    const std::vector<OpOutcome> oracle =
        oracle_replay(trace, net.topology, params, &oracle_connections);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{4}}) {
      AdmissionEngine engine(net.topology, params);
      const std::vector<OpOutcome> outcomes = engine.replay(trace, threads);
      ASSERT_EQ(outcomes.size(), oracle.size());
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        EXPECT_EQ(outcomes[i].accepted, oracle[i].accepted)
            << "seed " << seed << " threads " << threads << " op " << i;
        EXPECT_EQ(outcomes[i].reason, oracle[i].reason)
            << "seed " << seed << " threads " << threads << " op " << i;
        EXPECT_EQ(outcomes[i].reject.code, oracle[i].reject.code)
            << "seed " << seed << " threads " << threads << " op " << i;
        EXPECT_EQ(outcomes[i].reject.hop, oracle[i].reject.hop)
            << "seed " << seed << " threads " << threads << " op " << i;
      }
      // The trace ends with a drain, so record counts line up too.
      EXPECT_EQ(engine.connection_count(), oracle_connections);
      EXPECT_EQ(engine.pending_removals(), 0u);
      EXPECT_TRUE(engine.state_consistent());
      EXPECT_TRUE(engine.bandwidth_conserved());
      EXPECT_TRUE(engine.cache_coherent());
    }
  }
}

TEST(AdmissionEngine, ReplayOnEmptyTraceIsANoOp) {
  const Net net = make_net();
  AdmissionEngine engine(net.topology, make_params());
  EXPECT_TRUE(engine.replay({}, 4).empty());
  EXPECT_EQ(engine.connection_count(), 0u);
}

}  // namespace
}  // namespace rtcac
