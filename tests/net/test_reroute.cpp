// Unit tests for the survivability layer (net/reroute.h): make-before-break
// failover, priority-ordered requeueing, bounded retry, degradation.

#include "net/reroute.h"

#include <gtest/gtest.h>

#include <limits>

#include "net/report.h"
#include "net/routing.h"

namespace rtcac {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

QosRequest cbr_request(double pcr, Priority priority = 0) {
  QosRequest r;
  r.traffic = TrafficDescriptor::cbr(pcr);
  r.deadline = kInf;
  r.priority = priority;
  return r;
}

// term -> sw_in, two parallel transit paths to sw_out.
struct TwoPaths {
  Topology topo;
  NodeId term, sw_in, up, dn, sw_out;
  LinkId acc, in_up, up_out, in_dn, dn_out;

  TwoPaths() {
    term = topo.add_terminal("t");
    sw_in = topo.add_switch("in");
    up = topo.add_switch("up");
    dn = topo.add_switch("dn");
    sw_out = topo.add_switch("out");
    acc = topo.add_link(term, sw_in);
    in_up = topo.add_link(sw_in, up);
    up_out = topo.add_link(up, sw_out);
    in_dn = topo.add_link(sw_in, dn);
    dn_out = topo.add_link(dn, sw_out);
  }

  [[nodiscard]] Route via_up() const { return {acc, in_up, up_out}; }
  [[nodiscard]] Route via_dn() const { return {acc, in_dn, dn_out}; }

  [[nodiscard]] ConnectionManager::Params params(std::size_t priorities = 1,
                                                 double bound = 32) const {
    ConnectionManager::Params p;
    p.priorities = priorities;
    p.advertised_bound = bound;
    return p;
  }
};

// term -> sw0 -> sw1 with no alternate path at all.
struct Chain {
  Topology topo;
  NodeId term, sw0, sw1;
  LinkId acc, l01;

  Chain() {
    term = topo.add_terminal("t");
    sw0 = topo.add_switch("sw0");
    sw1 = topo.add_switch("sw1");
    acc = topo.add_link(term, sw0);
    l01 = topo.add_link(sw0, sw1);
  }

  [[nodiscard]] Route route() const { return {acc, l01}; }

  [[nodiscard]] ConnectionManager::Params params() const {
    ConnectionManager::Params p;
    p.priorities = 1;
    p.advertised_bound = 32;
    return p;
  }
};

TEST(RerouteCoordinator, LinkFailureRehomesMakeBeforeBreak) {
  TwoPaths g;
  ConnectionManager mgr(g.topo, g.params());
  FaultInjector faults(1);
  RerouteCoordinator coordinator(mgr, faults);

  const auto setup = mgr.setup(cbr_request(0.5), g.via_up());
  ASSERT_TRUE(setup.accepted);

  faults.fail_link(g.up_out);  // manual failures are handled synchronously

  EXPECT_EQ(coordinator.stats().failure_events, 1u);
  EXPECT_EQ(coordinator.stats().episodes, 1u);
  EXPECT_EQ(coordinator.stats().rehomed, 1u);
  EXPECT_EQ(coordinator.pending_reroutes(), 0u);
  EXPECT_EQ(mgr.connections().at(setup.id).route, g.via_dn());
  EXPECT_EQ(mgr.teardowns(TeardownReason::kRerouted), 1u);
  EXPECT_EQ(mgr.teardowns(TeardownReason::kFailure), 0u);
  EXPECT_TRUE(mgr.policy_point(g.dn).contains(setup.id));
  EXPECT_FALSE(mgr.policy_point(g.up).contains(setup.id));

  ASSERT_EQ(coordinator.decisions().size(), 1u);
  const RerouteDecision& d = coordinator.decisions().front();
  EXPECT_EQ(d.id, setup.id);
  EXPECT_EQ(d.outcome, RerouteDecision::Outcome::kRehomed);
  EXPECT_EQ(d.route, g.via_dn());
  EXPECT_EQ(d.at, 0);
}

TEST(RerouteCoordinator, NodeFailureStrandsEveryTransitingConnection) {
  TwoPaths g;
  ConnectionManager mgr(g.topo, g.params());
  FaultInjector faults(1);
  RerouteCoordinator coordinator(mgr, faults);

  const auto a = mgr.setup(cbr_request(0.2), g.via_up());
  const auto b = mgr.setup(cbr_request(0.2), g.via_up());
  const auto c = mgr.setup(cbr_request(0.2), g.via_dn());  // unaffected
  ASSERT_TRUE(a.accepted && b.accepted && c.accepted);

  faults.fail_node(g.up);

  EXPECT_EQ(coordinator.stats().episodes, 2u);
  EXPECT_EQ(coordinator.stats().rehomed, 2u);
  EXPECT_EQ(mgr.connections().at(a.id).route, g.via_dn());
  EXPECT_EQ(mgr.connections().at(b.id).route, g.via_dn());
  EXPECT_EQ(mgr.connections().at(c.id).route, g.via_dn());
  EXPECT_EQ(mgr.connection_count(), 3u);
}

TEST(RerouteCoordinator, HighestPriorityIsRequeuedFirst) {
  TwoPaths g;
  ConnectionManager mgr(g.topo, g.params(/*priorities=*/2));
  FaultInjector faults(1);
  RerouteCoordinator coordinator(mgr, faults);

  // Lower-priority connection set up first (smaller id): the requeue
  // order must still put the priority-0 one ahead of it.
  const auto low = mgr.setup(cbr_request(0.2, /*priority=*/1), g.via_up());
  const auto high = mgr.setup(cbr_request(0.2, /*priority=*/0), g.via_up());
  ASSERT_TRUE(low.accepted && high.accepted);
  ASSERT_LT(low.id, high.id);

  faults.fail_link(g.in_up);

  ASSERT_EQ(coordinator.decisions().size(), 2u);
  EXPECT_EQ(coordinator.decisions()[0].id, high.id);
  EXPECT_EQ(coordinator.decisions()[1].id, low.id);
  EXPECT_EQ(coordinator.stats().rehomed, 2u);
}

TEST(RerouteCoordinator, OriginalPathKeptWhenOutageEndsBeforeRetry) {
  Chain g;
  ConnectionManager mgr(g.topo, g.params());
  FaultInjector faults(1);
  RerouteCoordinator::Params params;
  params.retry_backoff = 16;
  RerouteCoordinator coordinator(mgr, faults, params);

  const auto setup = mgr.setup(cbr_request(0.5), g.route());
  ASSERT_TRUE(setup.accepted);

  faults.schedule_link_outage(g.l01, 10, 20);
  coordinator.advance_to(100);

  // Attempt at 10 finds no alternate (retry backed off to 26); the
  // recovery at 20 re-arms it immediately and the original reservations,
  // never released, simply remain in force.
  ASSERT_EQ(coordinator.decisions().size(), 2u);
  EXPECT_EQ(coordinator.decisions()[0].outcome,
            RerouteDecision::Outcome::kRetryScheduled);
  EXPECT_EQ(coordinator.decisions()[0].at, 10);
  EXPECT_EQ(coordinator.decisions()[0].reason.code, RejectCode::kNoRoute);
  EXPECT_EQ(coordinator.decisions()[1].outcome,
            RerouteDecision::Outcome::kKeptOriginal);
  EXPECT_EQ(coordinator.decisions()[1].at, 20);
  EXPECT_EQ(coordinator.stats().kept_original, 1u);
  EXPECT_EQ(coordinator.stats().max_rescue_latency, 10);
  EXPECT_EQ(mgr.connection_count(), 1u);
  EXPECT_TRUE(mgr.policy_point(g.sw0).contains(setup.id));
  EXPECT_TRUE(coordinator.degradation().empty());
}

TEST(RerouteCoordinator, ExhaustedRetryBudgetDegradesWithReport) {
  Chain g;
  ConnectionManager mgr(g.topo, g.params());
  FaultInjector faults(1);
  RerouteCoordinator::Params params;
  params.max_attempts = 3;
  params.retry_backoff = 4;
  params.backoff_multiplier = 2;
  RerouteCoordinator coordinator(mgr, faults, params);

  const auto setup = mgr.setup(cbr_request(0.5), g.route());
  ASSERT_TRUE(setup.accepted);

  faults.fail_link(g.l01);  // never recovered
  EXPECT_EQ(coordinator.pending_reroutes(), 1u);
  EXPECT_EQ(coordinator.next_wakeup(), std::optional<Tick>{4});
  coordinator.quiesce();

  // Attempts at 0, 4 and 12 (exponential backoff), then the budget is
  // gone: the connection is torn down as a failure and reported.
  EXPECT_EQ(coordinator.stats().attempts, 3u);
  EXPECT_EQ(coordinator.stats().degraded, 1u);
  EXPECT_EQ(coordinator.pending_reroutes(), 0u);
  EXPECT_EQ(mgr.connection_count(), 0u);
  EXPECT_EQ(mgr.teardowns(TeardownReason::kFailure), 1u);
  EXPECT_EQ(mgr.teardowns(TeardownReason::kRerouted), 0u);

  ASSERT_EQ(coordinator.degradation().entries.size(), 1u);
  const DegradationEntry& entry = coordinator.degradation().entries.front();
  EXPECT_EQ(entry.id, setup.id);
  EXPECT_EQ(entry.reason.code, RejectCode::kNoRoute);
  EXPECT_EQ(entry.attempts, 3u);
  EXPECT_EQ(entry.failed_at, 0);
  EXPECT_EQ(entry.gave_up_at, 12);
  EXPECT_NE(coordinator.degradation().to_string().find("no-route"),
            std::string::npos);

  ASSERT_EQ(coordinator.decisions().size(), 3u);
  EXPECT_EQ(coordinator.decisions().back().outcome,
            RerouteDecision::Outcome::kDegraded);
  EXPECT_EQ(coordinator.decisions().back().at, 12);
}

TEST(RerouteCoordinator, AdmissionRejectionIsRetriedThenReported) {
  TwoPaths g;
  ConnectionManager mgr(g.topo, g.params());
  FaultInjector faults(1);
  RerouteCoordinator::Params params;
  params.max_attempts = 2;
  params.retry_backoff = 8;
  RerouteCoordinator coordinator(mgr, faults, params);

  const auto victim = mgr.setup(cbr_request(0.5), g.via_up());
  ASSERT_TRUE(victim.accepted);
  // Saturate the alternate transit path: an alternate route exists, but
  // the combined old+new admission check must reject it (the saturators'
  // local-port aggregate plus the victim's access-port load exceeds the
  // output link rate).
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(mgr.setup(cbr_request(0.9), Route{g.in_dn, g.dn_out}).accepted);
  }

  faults.fail_link(g.up_out);
  coordinator.quiesce();

  EXPECT_EQ(coordinator.stats().degraded, 1u);
  ASSERT_EQ(coordinator.degradation().entries.size(), 1u);
  EXPECT_EQ(coordinator.degradation().entries.front().reason.code,
            RejectCode::kAdmission);
  // The victim is gone, but the saturating connections are untouched and
  // every switch's books balance.
  EXPECT_FALSE(mgr.policy_point(g.up).contains(victim.id));
  EXPECT_FALSE(mgr.policy_point(g.sw_in).contains(victim.id));
  for (const NodeId node : {g.sw_in, g.up, g.dn}) {
    EXPECT_TRUE(mgr.switch_cac(node).state_consistent());
  }
}

TEST(RerouteCoordinator, ExternallyTornDownConnectionLeavesQueueQuietly) {
  Chain g;
  ConnectionManager mgr(g.topo, g.params());
  FaultInjector faults(1);
  RerouteCoordinator coordinator(mgr, faults);

  const auto setup = mgr.setup(cbr_request(0.5), g.route());
  ASSERT_TRUE(setup.accepted);
  faults.fail_link(g.l01);
  ASSERT_EQ(coordinator.pending_reroutes(), 1u);

  mgr.teardown(setup.id);  // the user gave up first
  coordinator.quiesce();

  EXPECT_EQ(coordinator.pending_reroutes(), 0u);
  EXPECT_EQ(coordinator.stats().degraded, 0u);
  EXPECT_TRUE(coordinator.degradation().empty());
}

TEST(RerouteCoordinator, LabelsFollowTheRehomedRoute) {
  TwoPaths g;
  ConnectionManager mgr(g.topo, g.params());
  FaultInjector faults(1);
  LabelManager labels(g.topo);
  RerouteCoordinator coordinator(mgr, faults, {}, &labels);

  const auto setup = mgr.setup(cbr_request(0.5), g.via_up());
  ASSERT_TRUE(setup.accepted);
  labels.establish(setup.id, g.via_up());

  faults.fail_node(g.up);
  ASSERT_EQ(coordinator.stats().rehomed, 1u);
  ASSERT_TRUE(labels.contains(setup.id));
  const LabelPath& path = labels.path(setup.id);
  ASSERT_EQ(path.bindings.size(), 2u);  // sw_in and dn translate
  EXPECT_EQ(path.bindings[0].node, g.sw_in);
  EXPECT_EQ(path.bindings[1].node, g.dn);
}

TEST(RerouteCoordinator, LabelsReleasedWhenDegraded) {
  Chain g;
  ConnectionManager mgr(g.topo, g.params());
  FaultInjector faults(1);
  LabelManager labels(g.topo);
  RerouteCoordinator::Params params;
  params.max_attempts = 1;
  RerouteCoordinator coordinator(mgr, faults, params, &labels);

  const auto setup = mgr.setup(cbr_request(0.5), g.route());
  ASSERT_TRUE(setup.accepted);
  labels.establish(setup.id, g.route());

  faults.fail_link(g.l01);  // max_attempts=1: degrades on the spot
  EXPECT_EQ(coordinator.stats().degraded, 1u);
  EXPECT_FALSE(labels.contains(setup.id));
  EXPECT_EQ(labels.connection_count(), 0u);
}

TEST(RerouteCoordinator, RerouteReportSummarizesTheRun) {
  TwoPaths g;
  ConnectionManager mgr(g.topo, g.params());
  FaultInjector faults(1);
  RerouteCoordinator coordinator(mgr, faults);

  const auto setup = mgr.setup(cbr_request(0.5), g.via_up());
  ASSERT_TRUE(setup.accepted);
  faults.fail_link(g.up_out);

  const RerouteReport report = summarize_reroute(coordinator);
  EXPECT_EQ(report.failure_events, 1u);
  EXPECT_EQ(report.episodes, 1u);
  EXPECT_EQ(report.rehomed, 1u);
  EXPECT_EQ(report.degraded, 0u);
  EXPECT_DOUBLE_EQ(report.mean_rescue_latency, 0.0);
  EXPECT_NE(report.to_string().find("rehomed 1"), std::string::npos);

  // The signaling-report teardown table now carries the rerouted count
  // too (kRerouted reaches it via ConnectionManager::teardowns).
  EXPECT_EQ(mgr.teardowns(TeardownReason::kRerouted), 1u);
  EXPECT_STREQ(to_string(RerouteDecision::Outcome::kRehomed), "rehomed");
  EXPECT_STREQ(to_string(RerouteDecision::Outcome::kKeptOriginal),
               "kept-original");
  EXPECT_STREQ(to_string(RerouteDecision::Outcome::kRetryScheduled),
               "retry-scheduled");
  EXPECT_STREQ(to_string(RerouteDecision::Outcome::kDegraded), "degraded");
}

TEST(RerouteCoordinator, RejectsDegenerateParams) {
  Chain g;
  ConnectionManager mgr(g.topo, g.params());
  FaultInjector faults(1);
  RerouteCoordinator::Params params;
  params.retry_backoff = 0;
  EXPECT_THROW(RerouteCoordinator(mgr, faults, params),
               std::invalid_argument);
  params = {};
  params.max_attempts = 0;
  EXPECT_THROW(RerouteCoordinator(mgr, faults, params),
               std::invalid_argument);
}

}  // namespace
}  // namespace rtcac