// Unit tests for the network CAC report (buffer sizing, Section 5).

#include "net/report.h"

#include <gtest/gtest.h>

namespace rtcac {
namespace {

struct Bed {
  Topology topo;
  NodeId t0, t1, sw0, sw1;
  LinkId a0, a1, mid, out;

  Bed() {
    t0 = topo.add_terminal();
    t1 = topo.add_terminal();
    sw0 = topo.add_switch("edge");
    sw1 = topo.add_switch("core");
    const NodeId dst = topo.add_terminal();
    a0 = topo.add_link(t0, sw0);
    a1 = topo.add_link(t1, sw0);
    mid = topo.add_link(sw0, sw1);
    out = topo.add_link(sw1, dst);
  }
};

TEST(NetworkReport, EmptyNetworkHasNoQueues) {
  Bed bed;
  ConnectionManager manager(bed.topo, {});
  const NetworkReport report = summarize(manager);
  EXPECT_TRUE(report.queues.empty());
  EXPECT_EQ(report.connections, 0u);
  EXPECT_DOUBLE_EQ(report.worst_bound(), 0.0);
  EXPECT_EQ(report.total_recommended_slots(), 0u);
  EXPECT_TRUE(report.all_within_advertised());
}

TEST(NetworkReport, TracksAdmittedQueues) {
  Bed bed;
  ConnectionManager::Params params;
  params.advertised_bound = 32;
  ConnectionManager manager(bed.topo, params);
  QosRequest request;
  request.traffic = TrafficDescriptor::cbr(0.25);
  ASSERT_TRUE(manager.setup(request, Route{bed.a0, bed.mid, bed.out}).accepted);
  ASSERT_TRUE(manager.setup(request, Route{bed.a1, bed.mid, bed.out}).accepted);

  const NetworkReport report = summarize(manager);
  EXPECT_EQ(report.connections, 2u);
  // Two active queues: sw0's mid-port and sw1's out-port, both priority 0.
  ASSERT_EQ(report.queues.size(), 2u);
  const QueueReport& edge = report.queues[0];
  EXPECT_EQ(edge.node_name, "edge");
  EXPECT_EQ(edge.connections, 2u);
  EXPECT_NEAR(edge.sustained_load, 0.5, 1e-9);
  EXPECT_GT(edge.computed_bound, 0.0);  // two aligned first cells
  EXPECT_DOUBLE_EQ(edge.advertised_bound, 32.0);
  EXPECT_GE(edge.recommended_slots, 2u);  // backlog >= 1 cell, +register
  EXPECT_TRUE(report.all_within_advertised());
  EXPECT_GE(report.worst_bound(), edge.computed_bound);
  EXPECT_GE(report.total_recommended_slots(),
            edge.recommended_slots + report.queues[1].recommended_slots);
}

TEST(NetworkReport, SeparatesPriorities) {
  Bed bed;
  ConnectionManager::Params params;
  params.priorities = 2;
  params.advertised_bound = 64;
  ConnectionManager manager(bed.topo, params);
  QosRequest high;
  high.traffic = TrafficDescriptor::cbr(0.2);
  high.priority = 0;
  QosRequest low;
  low.traffic = TrafficDescriptor::vbr(0.5, 0.1, 4);
  low.priority = 1;
  ASSERT_TRUE(manager.setup(high, Route{bed.a0, bed.mid, bed.out}).accepted);
  ASSERT_TRUE(manager.setup(low, Route{bed.a1, bed.mid, bed.out}).accepted);

  const NetworkReport report = summarize(manager);
  ASSERT_EQ(report.queues.size(), 4u);  // 2 switches x 2 priorities
  std::size_t at_prio0 = 0;
  std::size_t at_prio1 = 0;
  for (const QueueReport& q : report.queues) {
    (q.priority == 0 ? at_prio0 : at_prio1) += q.connections;
  }
  EXPECT_EQ(at_prio0, 2u);  // the high connection crosses two switches
  EXPECT_EQ(at_prio1, 2u);
}

TEST(NetworkReport, ToStringContainsNodeNamesAndCounts) {
  Bed bed;
  ConnectionManager manager(bed.topo, {});
  QosRequest request;
  request.traffic = TrafficDescriptor::cbr(0.1);
  ASSERT_TRUE(manager.setup(request, Route{bed.a0, bed.mid, bed.out}).accepted);
  const std::string text = summarize(manager).to_string();
  EXPECT_NE(text.find("edge"), std::string::npos);
  EXPECT_NE(text.find("core"), std::string::npos);
  EXPECT_NE(text.find("1 connections"), std::string::npos);
}

TEST(NetworkReport, TeardownShrinksReport) {
  Bed bed;
  ConnectionManager manager(bed.topo, {});
  QosRequest request;
  request.traffic = TrafficDescriptor::cbr(0.1);
  const auto setup = manager.setup(request, Route{bed.a0, bed.mid, bed.out});
  ASSERT_TRUE(setup.accepted);
  EXPECT_EQ(summarize(manager).queues.size(), 2u);
  manager.teardown(setup.id);
  EXPECT_TRUE(summarize(manager).queues.empty());
}

TEST(SignalingReport, IdleEngineReportsCleanSlate) {
  Bed bed;
  ConnectionManager manager(bed.topo, {});
  SignalingEngine engine(manager);
  const SignalingReport report = summarize_signaling(engine);
  EXPECT_EQ(report.attempts, 0u);
  EXPECT_EQ(report.connected, 0u);
  EXPECT_DOUBLE_EQ(report.connect_ratio(), 1.0);
  EXPECT_EQ(report.lost_to_faults, 0u);
  EXPECT_NE(report.to_string().find("signaling report"), std::string::npos);
}

TEST(SignalingReport, AggregatesEngineAndManagerCounters) {
  Bed bed;
  ConnectionManager manager(bed.topo, {});
  FaultInjector faults(3);
  faults.drop_nth(SignalingMessageType::kConnected, 1);
  SignalingEngine engine(manager, SignalingEngine::Timers{}, &faults);
  QosRequest request;
  request.traffic = TrafficDescriptor::cbr(0.25);
  const ConnectionId id =
      engine.initiate(request, Route{bed.a0, bed.mid, bed.out});
  engine.run();
  ASSERT_TRUE(engine.outcome(id)->connected);
  ASSERT_TRUE(engine.release(id));
  engine.run();

  const SignalingReport report = summarize_signaling(engine);
  EXPECT_EQ(report.attempts, 1u);
  EXPECT_EQ(report.connected, 1u);
  EXPECT_DOUBLE_EQ(report.connect_ratio(), 1.0);
  EXPECT_EQ(report.retransmits, 1u);      // the dropped CONNECTED cost one
  EXPECT_EQ(report.lost_to_faults, 1u);
  EXPECT_EQ(report.releases_sent, 1u);
  EXPECT_EQ(report.teardowns.at(TeardownReason::kRelease), 1u);
  EXPECT_EQ(report.orphans_reclaimed, manager.orphans_reclaimed());
  const std::string text = report.to_string();
  EXPECT_NE(text.find("retransmits 1"), std::string::npos);
  EXPECT_NE(text.find("torn down (release): 1"), std::string::npos);
}

}  // namespace
}  // namespace rtcac
