// Unit tests for network-level admission control (Section 4.3 end to end).

#include "net/connection_manager.h"

#include <gtest/gtest.h>

#include <limits>

namespace rtcac {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// term0, term1 -> sw0 -> sw1 -> sw2 (three queueing points per route).
struct Chain {
  Topology topo;
  NodeId term0, term1, sw0, sw1, sw2;
  LinkId acc0, acc1, l01, l12;

  Chain() {
    term0 = topo.add_terminal();
    term1 = topo.add_terminal();
    sw0 = topo.add_switch();
    sw1 = topo.add_switch();
    sw2 = topo.add_switch();
    acc0 = topo.add_link(term0, sw0);
    acc1 = topo.add_link(term1, sw0);
    l01 = topo.add_link(sw0, sw1);
    l12 = topo.add_link(sw1, sw2);
  }

  [[nodiscard]] Route route0() const { return {acc0, l01, l12}; }
  [[nodiscard]] Route route1() const { return {acc1, l01, l12}; }

  [[nodiscard]] ConnectionManager::Params params(double bound = 32) const {
    ConnectionManager::Params p;
    p.priorities = 1;
    p.advertised_bound = bound;
    return p;
  }
};

QosRequest cbr_request(double pcr, double deadline = kInf) {
  QosRequest r;
  r.traffic = TrafficDescriptor::cbr(pcr);
  r.deadline = deadline;
  return r;
}

TEST(ConnectionManager, QueueingPointsSkipTerminals) {
  Chain c;
  ConnectionManager mgr(c.topo, c.params());
  const auto hops = mgr.queueing_points(c.route0());
  ASSERT_EQ(hops.size(), 2u);  // sw0 and sw1 transmit; terminal does not
  EXPECT_EQ(hops[0].node, c.sw0);
  EXPECT_EQ(hops[0].in_port, c.topo.in_port(c.acc0));
  EXPECT_EQ(hops[1].node, c.sw1);
  EXPECT_EQ(hops[1].in_port, c.topo.in_port(c.l01));
}

TEST(ConnectionManager, RouteStartingAtSwitchUsesLocalPort) {
  Chain c;
  ConnectionManager mgr(c.topo, c.params());
  const auto hops = mgr.queueing_points(Route{c.l01, c.l12});
  ASSERT_EQ(hops.size(), 2u);
  EXPECT_EQ(hops[0].in_port, c.topo.local_in_port(c.sw0));
}

TEST(ConnectionManager, AdmitsFeasibleConnection) {
  Chain c;
  ConnectionManager mgr(c.topo, c.params());
  const auto result = mgr.setup(cbr_request(0.5), c.route0());
  EXPECT_TRUE(result.accepted) << result.reason;
  EXPECT_NE(result.id, kInvalidConnection);
  EXPECT_EQ(result.hop_bounds.size(), 2u);
  EXPECT_DOUBLE_EQ(result.e2e_advertised, 64.0);
  EXPECT_EQ(mgr.connection_count(), 1u);
}

TEST(ConnectionManager, ArrivalStreamsAccumulateCdvAlongRoute) {
  Chain c;
  ConnectionManager mgr(c.topo, c.params());
  const auto traffic = TrafficDescriptor::cbr(0.25);
  const auto hops = mgr.queueing_points(c.route0());
  const BitStream at0 = mgr.arrival_at_hop(traffic, hops, 0, 0);
  const BitStream at1 = mgr.arrival_at_hop(traffic, hops, 1, 0);
  EXPECT_EQ(at0, traffic.to_bitstream());  // no upstream queueing yet
  EXPECT_TRUE(at1.dominates(at0));
  EXPECT_GT(at1.bits_before(10.0), at0.bits_before(10.0));
}

TEST(ConnectionManager, RejectsOverload) {
  Chain c;
  ConnectionManager mgr(c.topo, c.params());
  ASSERT_TRUE(mgr.setup(cbr_request(0.7), c.route0()).accepted);
  const auto result = mgr.setup(cbr_request(0.6), c.route1());
  EXPECT_FALSE(result.accepted);
  EXPECT_TRUE(result.rejecting_node.has_value());
  EXPECT_EQ(*result.rejecting_node, c.sw0);
  EXPECT_EQ(mgr.connection_count(), 1u);
}

TEST(ConnectionManager, RollbackLeavesNoResidue) {
  // Advertised-mode deadline failure is only detected after every hop has
  // committed, so it exercises the full rollback path.
  Chain c;
  auto params = c.params();
  params.guarantee = GuaranteeMode::kAdvertised;
  ConnectionManager mgr(c.topo, params);
  const auto reject = mgr.setup(cbr_request(0.5, /*deadline=*/10.0),
                                c.route0());
  ASSERT_FALSE(reject.accepted);  // advertised 64 > deadline 10
  EXPECT_TRUE(reject.hop_bounds.empty());
  for (const NodeId sw : {c.sw0, c.sw1}) {
    EXPECT_EQ(mgr.switch_cac(sw).connection_count(), 0u);
    EXPECT_TRUE(mgr.switch_cac(sw).state_consistent());
  }
  EXPECT_EQ(mgr.connection_count(), 0u);
}

TEST(ConnectionManager, DeadlineCheckedUnderComputedMode) {
  Chain c;
  auto params = c.params();
  params.guarantee = GuaranteeMode::kComputed;
  ConnectionManager mgr(c.topo, params);
  // Lone CBR connection: computed bounds are ~0, so even a tight deadline
  // passes.
  EXPECT_TRUE(mgr.setup(cbr_request(0.5, 1.0), c.route0()).accepted);
}

TEST(ConnectionManager, DeadlineCheckedUnderAdvertisedMode) {
  Chain c;
  auto params = c.params();
  params.guarantee = GuaranteeMode::kAdvertised;
  ConnectionManager mgr(c.topo, params);
  // Advertised sum is 64 regardless of load: deadline 1.0 must fail...
  EXPECT_FALSE(mgr.setup(cbr_request(0.5, 1.0), c.route0()).accepted);
  // ...and deadline 64 passes.
  EXPECT_TRUE(mgr.setup(cbr_request(0.5, 64.0), c.route0()).accepted);
}

TEST(ConnectionManager, TeardownRestoresCapacity) {
  Chain c;
  ConnectionManager mgr(c.topo, c.params());
  const auto first = mgr.setup(cbr_request(0.7), c.route0());
  ASSERT_TRUE(first.accepted);
  ASSERT_FALSE(mgr.setup(cbr_request(0.6), c.route1()).accepted);
  EXPECT_TRUE(mgr.teardown(first.id));
  EXPECT_TRUE(mgr.setup(cbr_request(0.6), c.route1()).accepted);
  EXPECT_FALSE(mgr.teardown(first.id));  // already gone
}

TEST(ConnectionManager, CurrentE2eBoundTracksLoad) {
  Chain c;
  ConnectionManager mgr(c.topo, c.params());
  const auto first = mgr.setup(cbr_request(0.5), c.route0());
  ASSERT_TRUE(first.accepted);
  const double alone = mgr.current_e2e_bound(first.id).value();
  const auto second = mgr.setup(cbr_request(0.4), c.route1());
  ASSERT_TRUE(second.accepted);
  const double contended = mgr.current_e2e_bound(first.id).value();
  EXPECT_GE(contended, alone);
  EXPECT_GT(contended, 0.0);
  EXPECT_FALSE(mgr.current_e2e_bound(9999).has_value());
}

TEST(ConnectionManager, SetupBoundsNeverExceedAdvertised) {
  Chain c;
  ConnectionManager mgr(c.topo, c.params(8.0));
  for (int i = 0; i < 8; ++i) {
    const auto result = mgr.setup(cbr_request(0.1), c.route0());
    if (!result.accepted) break;
    for (const double b : result.hop_bounds) {
      EXPECT_LE(b, 8.0 + 1e-9);
    }
  }
}

TEST(ConnectionManager, SoftCdvAdmitsMoreThanHard) {
  // With soft CDV accumulation the distorted streams at hop 2 are milder,
  // so the computed bound there is no larger.
  Chain c;
  auto hard_params = c.params();
  auto soft_params = c.params();
  soft_params.cdv_policy = CdvPolicy::kSoft;
  ConnectionManager hard(c.topo, hard_params);
  ConnectionManager soft(c.topo, soft_params);
  for (auto* mgr : {&hard, &soft}) {
    ASSERT_TRUE(mgr->setup(cbr_request(0.45), c.route0()).accepted);
    ASSERT_TRUE(mgr->setup(cbr_request(0.45), c.route1()).accepted);
  }
  const auto port = c.topo.out_port(c.l12);
  const double hard_bound =
      hard.switch_cac(c.sw1).computed_bound(port, 0).value();
  const double soft_bound =
      soft.switch_cac(c.sw1).computed_bound(port, 0).value();
  EXPECT_LE(soft_bound, hard_bound);
}

TEST(ConnectionManager, InvalidRequests) {
  Chain c;
  ConnectionManager mgr(c.topo, c.params());
  QosRequest bad = cbr_request(0.5);
  bad.priority = 5;
  const auto result = mgr.setup(bad, c.route0());
  EXPECT_FALSE(result.accepted);
  EXPECT_NE(result.reason.find("priority"), std::string::npos);
  EXPECT_THROW(mgr.setup(cbr_request(2.0), c.route0()),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(mgr.switch_cac(c.term0)),
               std::invalid_argument);
}

TEST(ConnectionManager, AdoptAndAllocateSupportSignaling) {
  Chain c;
  ConnectionManager mgr(c.topo, c.params());
  const ConnectionId id = mgr.allocate_id();
  ConnectionManager::ConnectionRecord rec;
  rec.request = cbr_request(0.1);
  rec.route = c.route0();
  rec.hops = mgr.queueing_points(c.route0());
  // Commit the per-hop state externally, as SignalingEngine would, under
  // setup leases; adopt() verifies the chain and makes it permanent.
  for (std::size_t h = 0; h < rec.hops.size(); ++h) {
    const HopRef& hop = rec.hops[h];
    mgr.switch_cac(hop.node).add(
        id, hop.in_port, hop.out_port, rec.request.priority,
        mgr.arrival_at_hop(rec.request.traffic, rec.hops, h,
                           rec.request.priority),
        /*lease_expiry=*/100.0);
  }
  mgr.adopt(id, rec);
  EXPECT_EQ(mgr.connection_count(), 1u);
  for (const HopRef& hop : rec.hops) {
    EXPECT_EQ(mgr.switch_cac(hop.node).lease_expiry(id),
              SwitchCac::kPermanentLease);
  }
  EXPECT_THROW(mgr.adopt(id, rec), std::invalid_argument);
  // Nothing expires: the adopted reservations are permanent now.
  const auto swept = mgr.reclaim(1e9);
  EXPECT_TRUE(swept.orphans.empty());
  EXPECT_EQ(mgr.connection_count(), 1u);
}

TEST(ConnectionManager, AdoptWithoutReservationsIsACaughtBug) {
  Chain c;
  ConnectionManager mgr(c.topo, c.params());
  const ConnectionId id = mgr.allocate_id();
  ConnectionManager::ConnectionRecord rec;
  rec.request = cbr_request(0.1);
  rec.route = c.route0();
  rec.hops = mgr.queueing_points(c.route0());
  // No per-hop commitments were made: the hop/record consistency check
  // must refuse the adoption (RTCAC_ASSERT -> throws in this build).
  EXPECT_THROW(mgr.adopt(id, rec), std::invalid_argument);
  EXPECT_EQ(mgr.connection_count(), 0u);
}

TEST(ConnectionManager, ReasonTaggedTeardownCountsPerReason) {
  Chain c;
  ConnectionManager mgr(c.topo, c.params());
  const auto a = mgr.setup(cbr_request(0.2), c.route0());
  const auto b = mgr.setup(cbr_request(0.2), c.route1());
  ASSERT_TRUE(a.accepted);
  ASSERT_TRUE(b.accepted);
  EXPECT_TRUE(mgr.teardown(a.id));  // plain form counts as kLocal
  EXPECT_TRUE(mgr.teardown(b.id, TeardownReason::kRelease));
  EXPECT_FALSE(mgr.teardown(b.id, TeardownReason::kRelease));
  EXPECT_EQ(mgr.teardowns(TeardownReason::kLocal), 1u);
  EXPECT_EQ(mgr.teardowns(TeardownReason::kRelease), 1u);
  EXPECT_EQ(mgr.teardowns(TeardownReason::kFailure), 0u);
  EXPECT_STREQ(to_string(TeardownReason::kRelease), "release");
}

TEST(ConnectionManager, ReclaimSweepsExpiredLeasesAcrossSwitches) {
  Chain c;
  ConnectionManager mgr(c.topo, c.params());
  const ConnectionId orphan = mgr.allocate_id();
  const auto hops = mgr.queueing_points(c.route0());
  const QosRequest req = cbr_request(0.3);
  for (std::size_t h = 0; h < hops.size(); ++h) {
    mgr.switch_cac(hops[h].node).add(
        orphan, hops[h].in_port, hops[h].out_port, req.priority,
        mgr.arrival_at_hop(req.traffic, hops, h, req.priority),
        /*lease_expiry=*/50.0);
  }
  // Too early: leases still run.
  EXPECT_TRUE(mgr.reclaim(49.0).orphans.empty());
  const auto swept = mgr.reclaim(50.0);
  ASSERT_EQ(swept.orphans.size(), 1u);
  EXPECT_EQ(swept.orphans.front(), orphan);
  EXPECT_EQ(swept.reservations_reclaimed, hops.size());
  EXPECT_EQ(mgr.orphans_reclaimed(), 1u);
  for (const HopRef& hop : hops) {
    EXPECT_EQ(mgr.switch_cac(hop.node).connection_count(), 0u);
    EXPECT_TRUE(mgr.switch_cac(hop.node).state_consistent());
  }
}

// term -> sw_in, then two parallel transit paths to sw_out:
// sw_in -> up -> sw_out and sw_in -> dn -> sw_out.
struct TwoPaths {
  Topology topo;
  NodeId term, sw_in, up, dn, sw_out;
  LinkId acc, in_up, up_out, in_dn, dn_out;

  TwoPaths() {
    term = topo.add_terminal("t");
    sw_in = topo.add_switch("in");
    up = topo.add_switch("up");
    dn = topo.add_switch("dn");
    sw_out = topo.add_switch("out");
    acc = topo.add_link(term, sw_in);
    in_up = topo.add_link(sw_in, up);
    up_out = topo.add_link(up, sw_out);
    in_dn = topo.add_link(sw_in, dn);
    dn_out = topo.add_link(dn, sw_out);
  }

  [[nodiscard]] Route via_up() const { return {acc, in_up, up_out}; }
  [[nodiscard]] Route via_dn() const { return {acc, in_dn, dn_out}; }

  [[nodiscard]] ConnectionManager::Params params(double bound = 32) const {
    ConnectionManager::Params p;
    p.priorities = 1;
    p.advertised_bound = bound;
    return p;
  }
};

TEST(ConnectionManager, RehomeKeepsIdAndSwingsRoute) {
  TwoPaths g;
  ConnectionManager mgr(g.topo, g.params());
  const auto setup = mgr.setup(cbr_request(0.5), g.via_up());
  ASSERT_TRUE(setup.accepted) << setup.reason;

  const auto rehomed = mgr.rehome(setup.id, g.via_dn());
  EXPECT_TRUE(rehomed.accepted) << rehomed.reason;
  EXPECT_EQ(rehomed.id, setup.id);  // stable id across the rehome
  EXPECT_EQ(mgr.connection_count(), 1u);
  EXPECT_EQ(mgr.connections().at(setup.id).route, g.via_dn());

  // Reservations moved: the old transit switch is empty, the new one and
  // the shared access switch carry exactly the stable id.
  EXPECT_FALSE(mgr.policy_point(g.up).contains(setup.id));
  EXPECT_EQ(mgr.policy_point(g.up).connection_count(), 0u);
  EXPECT_TRUE(mgr.policy_point(g.dn).contains(setup.id));
  EXPECT_TRUE(mgr.policy_point(g.sw_in).contains(setup.id));
  EXPECT_EQ(mgr.policy_point(g.sw_in).connection_count(), 1u);

  // A rehomed connection is rerouted, not failed.
  EXPECT_EQ(mgr.teardowns(TeardownReason::kRerouted), 1u);
  EXPECT_EQ(mgr.teardowns(TeardownReason::kFailure), 0u);
  EXPECT_TRUE(mgr.current_e2e_bound(setup.id).has_value());
  EXPECT_TRUE(mgr.teardown(setup.id));  // still torn down normally
}

TEST(ConnectionManager, RehomeRejectionLeavesOldPathReserved) {
  TwoPaths g;
  ConnectionManager mgr(g.topo, g.params());
  const auto victim = mgr.setup(cbr_request(0.5), g.via_up());
  ASSERT_TRUE(victim.accepted);
  // Saturate the alternate transit path so the combined check must say
  // no.  The saturators enter at sw_in's local port (their aggregate is
  // capped at that input link's rate); the victim arrives via the access
  // link, so rehoming it would push the output past the link rate.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(mgr.setup(cbr_request(0.9), Route{g.in_dn, g.dn_out}).accepted);
  }

  const auto rehomed = mgr.rehome(victim.id, g.via_dn());
  EXPECT_FALSE(rehomed.accepted);
  EXPECT_EQ(rehomed.reject.code, RejectCode::kAdmission);
  // Nothing changed: the old path is still fully reserved and the record
  // still points at it.
  EXPECT_TRUE(mgr.policy_point(g.up).contains(victim.id));
  EXPECT_TRUE(mgr.policy_point(g.sw_in).contains(victim.id));
  EXPECT_EQ(mgr.connections().at(victim.id).route, g.via_up());
  EXPECT_EQ(mgr.teardowns(TeardownReason::kRerouted), 0u);
  // No provisional residue anywhere.
  for (const NodeId node : {g.sw_in, g.up, g.dn}) {
    EXPECT_TRUE(mgr.switch_cac(node).state_consistent());
  }
}

TEST(ConnectionManager, CheckRerouteCommitsNothing) {
  TwoPaths g;
  ConnectionManager mgr(g.topo, g.params());
  const auto setup = mgr.setup(cbr_request(0.5), g.via_up());
  ASSERT_TRUE(setup.accepted);

  const auto check = mgr.check_reroute(setup.id, g.via_dn());
  EXPECT_TRUE(check.accepted) << check.reason;
  EXPECT_EQ(check.id, kInvalidConnection);
  EXPECT_EQ(mgr.policy_point(g.dn).connection_count(), 0u);
  EXPECT_EQ(mgr.connections().at(setup.id).route, g.via_up());

  EXPECT_THROW((void)mgr.check_reroute(999, g.via_dn()),
               std::invalid_argument);
  EXPECT_THROW((void)mgr.rehome(999, g.via_dn()), std::invalid_argument);
}

TEST(ConnectionManager, TeardownReasonNamesCoverAllReasons) {
  EXPECT_STREQ(to_string(TeardownReason::kLocal), "local");
  EXPECT_STREQ(to_string(TeardownReason::kRelease), "release");
  EXPECT_STREQ(to_string(TeardownReason::kFailure), "failure");
  EXPECT_STREQ(to_string(TeardownReason::kRerouted), "rerouted");
}

}  // namespace
}  // namespace rtcac
