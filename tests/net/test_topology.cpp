// Unit tests for the network graph model.

#include "net/topology.h"

#include <gtest/gtest.h>

namespace rtcac {
namespace {

TEST(Topology, NodesAndKinds) {
  Topology topo;
  const NodeId sw = topo.add_switch("core");
  const NodeId term = topo.add_terminal();
  EXPECT_EQ(topo.node_count(), 2u);
  EXPECT_EQ(topo.node(sw).kind, NodeKind::kSwitch);
  EXPECT_EQ(topo.node(sw).name, "core");
  EXPECT_EQ(topo.node(term).kind, NodeKind::kTerminal);
  EXPECT_FALSE(topo.node(term).name.empty());  // auto-named
  EXPECT_THROW(static_cast<void>(topo.node(99)), std::invalid_argument);
}

TEST(Topology, LinksAndPorts) {
  Topology topo;
  const NodeId a = topo.add_switch();
  const NodeId b = topo.add_switch();
  const NodeId c = topo.add_switch();
  const LinkId ab = topo.add_link(a, b);
  const LinkId ac = topo.add_link(a, c);
  const LinkId cb = topo.add_link(c, b);

  EXPECT_EQ(topo.link_count(), 3u);
  EXPECT_EQ(topo.link(ab).from, a);
  EXPECT_EQ(topo.link(ab).to, b);
  EXPECT_EQ(topo.out_links(a).size(), 2u);
  EXPECT_EQ(topo.in_links(b).size(), 2u);
  EXPECT_EQ(topo.out_port(ab), 0u);
  EXPECT_EQ(topo.out_port(ac), 1u);
  EXPECT_EQ(topo.in_port(ab), 0u);
  EXPECT_EQ(topo.in_port(cb), 1u);
  EXPECT_EQ(topo.local_in_port(b), 2u);
}

TEST(Topology, FindLink) {
  Topology topo;
  const NodeId a = topo.add_switch();
  const NodeId b = topo.add_switch();
  const LinkId ab = topo.add_link(a, b);
  EXPECT_EQ(topo.find_link(a, b).value(), ab);
  EXPECT_FALSE(topo.find_link(b, a).has_value());
}

TEST(Topology, LinkValidation) {
  Topology topo;
  const NodeId a = topo.add_switch();
  const NodeId t = topo.add_terminal();
  EXPECT_THROW(topo.add_link(a, a), std::invalid_argument);
  EXPECT_THROW(topo.add_link(a, 99), std::invalid_argument);
  EXPECT_THROW(topo.add_link(a, t, -1), std::invalid_argument);
  topo.add_link(t, a);
  // A terminal has exactly one access link.
  EXPECT_THROW(topo.add_link(t, a), std::invalid_argument);
}

TEST(Topology, RouteNodesValidatesConnectivity) {
  Topology topo;
  const NodeId a = topo.add_switch();
  const NodeId b = topo.add_switch();
  const NodeId c = topo.add_switch();
  const LinkId ab = topo.add_link(a, b);
  const LinkId bc = topo.add_link(b, c);
  const LinkId ac = topo.add_link(a, c);

  const auto nodes = topo.route_nodes(Route{ab, bc});
  EXPECT_EQ(nodes, (std::vector<NodeId>{a, b, c}));
  EXPECT_THROW(topo.route_nodes(Route{}), std::invalid_argument);
  EXPECT_THROW(topo.route_nodes(Route{ab, ac}), std::invalid_argument);
}

}  // namespace
}  // namespace rtcac
