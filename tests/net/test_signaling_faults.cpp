// Regression tests for the fault-tolerant signaling engine: lost and
// duplicated control messages, component outages, retransmission with
// attempt epochs, RELEASE teardown and lease-based orphan reclamation
// (docs/FAULT_TOLERANCE.md).  Every scenario must end with zero leaked
// reservations.

#include <gtest/gtest.h>

#include <limits>

#include "net/fault_injector.h"
#include "net/signaling.h"

namespace rtcac {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Chain {
  Topology topo;
  NodeId term0, term1, sw0, sw1, sw2;
  LinkId acc0, acc1, l01, l12;

  Chain() {
    term0 = topo.add_terminal();
    term1 = topo.add_terminal();
    sw0 = topo.add_switch();
    sw1 = topo.add_switch();
    sw2 = topo.add_switch();
    acc0 = topo.add_link(term0, sw0);
    acc1 = topo.add_link(term1, sw0);
    l01 = topo.add_link(sw0, sw1);
    l12 = topo.add_link(sw1, sw2);
  }

  [[nodiscard]] ConnectionManager::Params params() const {
    ConnectionManager::Params p;
    p.priorities = 1;
    p.advertised_bound = 32;
    return p;
  }
};

QosRequest cbr_request(double pcr, double deadline = kInf) {
  QosRequest r;
  r.traffic = TrafficDescriptor::cbr(pcr);
  r.deadline = deadline;
  return r;
}

void expect_no_reservations(ConnectionManager& mgr, const Chain& c) {
  for (const NodeId sw : {c.sw0, c.sw1}) {
    EXPECT_EQ(mgr.switch_cac(sw).connection_count(), 0u);
    EXPECT_TRUE(mgr.switch_cac(sw).state_consistent());
    EXPECT_TRUE(mgr.switch_cac(sw).bandwidth_conserved());
  }
}

TEST(SignalingFaults, LostConnectedIsRecoveredByRetransmission) {
  Chain c;
  ConnectionManager mgr(c.topo, c.params());
  FaultInjector faults(1);
  faults.drop_nth(SignalingMessageType::kConnected, 1);
  SignalingEngine engine(mgr, SignalingEngine::Timers{}, &faults);

  const ConnectionId id =
      engine.initiate(cbr_request(0.5), Route{c.acc0, c.l01, c.l12});
  engine.run();

  const auto outcome = engine.outcome(id);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->connected);
  EXPECT_EQ(engine.counters().retransmits, 1u);
  EXPECT_EQ(engine.counters().lost_to_faults, 1u);
  EXPECT_EQ(mgr.connection_count(), 1u);
  // Adoption made the recovered reservation chain permanent.
  for (const NodeId sw : {c.sw0, c.sw1}) {
    EXPECT_EQ(mgr.switch_cac(sw).lease_expiry(id),
              SwitchCac::kPermanentLease);
  }
  EXPECT_TRUE(mgr.reclaim(1e18).orphans.empty());
}

TEST(SignalingFaults, LostUpstreamRejectIsRetriedAndFullyReleased) {
  // Deadline rejections originate at the destination and release hop by
  // hop on the way back.  Dropping the REJECT mid-walk strands the
  // upstream reservation; the retransmitted SETUP re-walks (renewing the
  // surviving lease, recommitting the released hop) and the second
  // rejection cascade completes.
  Chain c;
  auto params = c.params();
  params.guarantee = GuaranteeMode::kAdvertised;
  ConnectionManager mgr(c.topo, params);
  FaultInjector faults(1);
  faults.drop_nth(SignalingMessageType::kReject, 2);
  SignalingEngine engine(mgr, SignalingEngine::Timers{}, &faults);

  const ConnectionId id = engine.initiate(cbr_request(0.5, /*deadline=*/10.0),
                                          Route{c.acc0, c.l01, c.l12});
  engine.run();

  const auto outcome = engine.outcome(id);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->connected);
  EXPECT_NE(outcome->reason.find("deadline"), std::string::npos);
  EXPECT_EQ(engine.counters().retransmits, 1u);
  EXPECT_EQ(engine.counters().rejects_by_reason.at(RejectCode::kDeadline),
            1u);
  EXPECT_EQ(mgr.connection_count(), 0u);
  expect_no_reservations(mgr, c);
}

TEST(SignalingFaults, DuplicateSetupAfterRejectLeaksNothing) {
  Chain c;
  ConnectionManager mgr(c.topo, c.params());
  FaultInjector faults(1);
  // SETUPs 1-3 walk the first (admitted) connection; the 4th is the
  // second connection's initial SETUP, which sw0 will reject.
  faults.duplicate_nth(SignalingMessageType::kSetup, 4);
  SignalingEngine engine(mgr, SignalingEngine::Timers{}, &faults);

  const ConnectionId first =
      engine.initiate(cbr_request(0.7), Route{c.acc0, c.l01, c.l12});
  engine.run();
  ASSERT_TRUE(engine.outcome(first)->connected);

  const ConnectionId second =
      engine.initiate(cbr_request(0.6), Route{c.acc1, c.l01, c.l12});
  engine.run();

  const auto outcome = engine.outcome(second);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->connected);
  // The duplicate either re-ran the (idempotent) check while the attempt
  // was live or arrived after the outcome and was dropped as stale; both
  // paths commit nothing.
  EXPECT_GE(engine.counters().stale_dropped, 1u);
  EXPECT_EQ(mgr.connection_count(), 1u);
  EXPECT_EQ(mgr.switch_cac(c.sw0).connection_ids(),
            (std::vector<ConnectionId>{first}));
  EXPECT_EQ(mgr.switch_cac(c.sw1).connection_ids(),
            (std::vector<ConnectionId>{first}));
  EXPECT_TRUE(mgr.switch_cac(c.sw0).state_consistent());
}

TEST(SignalingFaults, LostRejectAndReleaseFallBackToLeaseReclaim) {
  // Every REJECT and RELEASE is destroyed: the retry budget runs out, the
  // attempt times out, and the committed hop reservations survive only as
  // leases — reclaim() is the backstop that returns the bandwidth.
  Chain c;
  auto params = c.params();
  params.guarantee = GuaranteeMode::kAdvertised;
  ConnectionManager mgr(c.topo, params);
  FaultInjector faults(1);
  for (std::size_t n = 1; n <= 20; ++n) {
    faults.drop_nth(SignalingMessageType::kReject, n);
    faults.drop_nth(SignalingMessageType::kRelease, n);
  }
  SignalingEngine::Timers timers;
  timers.setup_rto = 8;
  timers.max_retries = 1;
  timers.lease = 64;
  SignalingEngine engine(mgr, timers, &faults);

  const ConnectionId id = engine.initiate(cbr_request(0.5, /*deadline=*/10.0),
                                          Route{c.acc0, c.l01, c.l12});
  engine.run();

  const auto outcome = engine.outcome(id);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->connected);
  EXPECT_NE(outcome->reason.find("timed out"), std::string::npos);
  EXPECT_EQ(engine.counters().timeouts, 1u);
  EXPECT_EQ(engine.counters().releases_sent, 1u);
  EXPECT_EQ(engine.pending_messages(), 0u);
  // The orphaned reservations are still committed, under finite leases.
  EXPECT_TRUE(mgr.switch_cac(c.sw0).contains(id));
  EXPECT_TRUE(mgr.switch_cac(c.sw1).contains(id));

  const auto swept =
      mgr.reclaim(static_cast<double>(engine.now() + timers.lease) + 1.0);
  EXPECT_EQ(swept.orphans, (std::vector<ConnectionId>{id}));
  EXPECT_EQ(swept.reservations_reclaimed, 2u);
  EXPECT_EQ(mgr.orphans_reclaimed(), 1u);
  expect_no_reservations(mgr, c);
}

TEST(SignalingFaults, SwitchOutageTimesOutAndReleasesUpstream) {
  Chain c;
  ConnectionManager mgr(c.topo, c.params());
  FaultInjector faults(1);
  faults.schedule_node_outage(c.sw1, 0, 100000);
  SignalingEngine::Timers timers;
  timers.setup_rto = 4;
  timers.max_retries = 2;
  SignalingEngine engine(mgr, timers, &faults);

  const ConnectionId id =
      engine.initiate(cbr_request(0.5), Route{c.acc0, c.l01, c.l12});
  engine.run();

  const auto outcome = engine.outcome(id);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->connected);
  EXPECT_EQ(engine.counters().retransmits, 2u);
  EXPECT_EQ(engine.counters().timeouts, 1u);
  EXPECT_EQ(engine.counters().rejects_by_reason.at(RejectCode::kTimeout),
            1u);
  // Every walk committed sw0 and died at the downed sw1; the RELEASE walk
  // freed sw0 before itself dying there.
  EXPECT_EQ(engine.counters().released_hops, 1u);
  EXPECT_EQ(faults.counters().failed_component_losses, 4u);
  EXPECT_EQ(mgr.connection_count(), 0u);
  expect_no_reservations(mgr, c);
}

TEST(SignalingFaults, ReleaseTearsDownEstablishedConnection) {
  Chain c;
  ConnectionManager mgr(c.topo, c.params());
  SignalingEngine engine(mgr);
  const ConnectionId id =
      engine.initiate(cbr_request(0.5), Route{c.acc0, c.l01, c.l12});
  engine.run();
  ASSERT_TRUE(engine.outcome(id)->connected);
  ASSERT_EQ(mgr.connection_count(), 1u);

  EXPECT_TRUE(engine.release(id));
  EXPECT_FALSE(engine.release(id));  // already releasing
  engine.run();

  EXPECT_EQ(mgr.connection_count(), 0u);
  EXPECT_EQ(mgr.teardowns(TeardownReason::kRelease), 1u);
  EXPECT_EQ(engine.counters().released_hops, 2u);
  EXPECT_FALSE(engine.release(id));  // gone
  expect_no_reservations(mgr, c);
}

TEST(SignalingFaults, ValidationFailuresBurnNoIdAndLeaveNoResidue) {
  Chain c;
  ConnectionManager mgr(c.topo, c.params());
  SignalingEngine engine(mgr);

  EXPECT_THROW(engine.initiate(cbr_request(0.5), Route{c.l12, c.l01}),
               std::invalid_argument);
  QosRequest bad_priority = cbr_request(0.5);
  bad_priority.priority = 7;  // params().priorities == 1
  EXPECT_THROW(engine.initiate(bad_priority, Route{c.acc0, c.l01, c.l12}),
               std::invalid_argument);

  // No message was queued, no timer armed, no trace entry produced...
  EXPECT_FALSE(engine.step());
  EXPECT_EQ(engine.pending_messages(), 0u);
  EXPECT_TRUE(engine.trace().empty());
  // ...and the next valid setup gets the very first id.
  const ConnectionId id =
      engine.initiate(cbr_request(0.5), Route{c.acc0, c.l01, c.l12});
  EXPECT_EQ(id, 1u);
  engine.run();
  EXPECT_TRUE(engine.outcome(id)->connected);
}

TEST(SignalingFaults, SameSeedReplaysIdenticalProtocolTrace) {
  FaultProfile profile;
  profile.drop_probability = 0.25;
  profile.duplicate_probability = 0.2;
  profile.delay_probability = 0.2;
  profile.reorder_probability = 0.2;
  SignalingEngine::Timers timers;
  timers.setup_rto = 8;
  timers.max_retries = 2;
  timers.lease = 64;

  auto storm = [&](std::uint64_t seed, std::vector<SignalingMessage>& trace,
                   std::size_t& connected) {
    Chain c;
    ConnectionManager mgr(c.topo, c.params());
    FaultInjector faults(seed, profile);
    SignalingEngine engine(mgr, timers, &faults);
    for (const double rate : {0.3, 0.4, 0.2}) {
      engine.initiate(cbr_request(rate), Route{c.acc0, c.l01, c.l12});
      engine.step();
    }
    engine.run();
    trace = engine.trace();
    connected = mgr.connection_count();
  };

  std::vector<SignalingMessage> trace_a;
  std::vector<SignalingMessage> trace_b;
  std::size_t connected_a = 0;
  std::size_t connected_b = 0;
  storm(99, trace_a, connected_a);
  storm(99, trace_b, connected_b);

  EXPECT_EQ(connected_a, connected_b);
  ASSERT_EQ(trace_a.size(), trace_b.size());
  for (std::size_t i = 0; i < trace_a.size(); ++i) {
    EXPECT_EQ(trace_a[i].type, trace_b[i].type) << i;
    EXPECT_EQ(trace_a[i].id, trace_b[i].id) << i;
    EXPECT_EQ(trace_a[i].hop_index, trace_b[i].hop_index) << i;
    EXPECT_EQ(trace_a[i].attempt, trace_b[i].attempt) << i;
  }
}

}  // namespace
}  // namespace rtcac
