// Unit tests for the deterministic signaling-plane fault model.

#include "net/fault_injector.h"

#include <gtest/gtest.h>

namespace rtcac {
namespace {

SignalingMessage setup_msg(ConnectionId id = 1) {
  SignalingMessage m;
  m.type = SignalingMessageType::kSetup;
  m.id = id;
  return m;
}

TEST(FaultInjector, RejectsInvalidProfiles) {
  FaultProfile p;
  p.drop_probability = 1.5;
  EXPECT_THROW(FaultInjector(1, p), std::invalid_argument);
  p = FaultProfile{};
  p.reorder_probability = -0.1;
  EXPECT_THROW(FaultInjector(1, p), std::invalid_argument);
  p = FaultProfile{};
  p.max_delay = 0;
  EXPECT_THROW(FaultInjector(1, p), std::invalid_argument);
}

TEST(FaultInjector, QuietProfilePassesEverything) {
  FaultInjector faults(42);
  for (int i = 0; i < 100; ++i) {
    const FaultVerdict v = faults.verdict(setup_msg());
    EXPECT_FALSE(v.drop);
    EXPECT_FALSE(v.duplicate);
    EXPECT_EQ(v.extra_delay, 0);
  }
  EXPECT_EQ(faults.counters().messages_seen, 100u);
  EXPECT_EQ(faults.counters().dropped, 0u);
}

TEST(FaultInjector, SameSeedReplaysIdenticalVerdicts) {
  FaultProfile p;
  p.drop_probability = 0.3;
  p.duplicate_probability = 0.3;
  p.delay_probability = 0.3;
  p.reorder_probability = 0.3;
  FaultInjector a(7, p);
  FaultInjector b(7, p);
  for (int i = 0; i < 500; ++i) {
    const FaultVerdict va = a.verdict(setup_msg());
    const FaultVerdict vb = b.verdict(setup_msg());
    ASSERT_EQ(va.drop, vb.drop);
    ASSERT_EQ(va.duplicate, vb.duplicate);
    ASSERT_EQ(va.extra_delay, vb.extra_delay);
    ASSERT_EQ(va.duplicate_delay, vb.duplicate_delay);
  }
  EXPECT_EQ(a.counters().dropped, b.counters().dropped);
  EXPECT_GT(a.counters().dropped, 0u);
  EXPECT_GT(a.counters().duplicated, 0u);
  EXPECT_GT(a.counters().delayed, 0u);
}

TEST(FaultInjector, ScriptedFaultsHitExactOrdinalsPerType) {
  FaultInjector faults(1);
  faults.drop_nth(SignalingMessageType::kSetup, 2);
  faults.duplicate_nth(SignalingMessageType::kSetup, 3);
  faults.drop_nth(SignalingMessageType::kReject, 1);
  EXPECT_THROW(faults.drop_nth(SignalingMessageType::kSetup, 0),
               std::invalid_argument);

  EXPECT_FALSE(faults.verdict(setup_msg()).drop);  // 1st SETUP passes
  EXPECT_TRUE(faults.verdict(setup_msg()).drop);   // 2nd dropped
  const FaultVerdict third = faults.verdict(setup_msg());
  EXPECT_TRUE(third.duplicate);
  EXPECT_GE(third.duplicate_delay, 1);
  SignalingMessage reject;
  reject.type = SignalingMessageType::kReject;
  EXPECT_TRUE(faults.verdict(reject).drop);  // ordinals count per type
  EXPECT_FALSE(faults.verdict(setup_msg()).drop);
}

TEST(FaultInjector, DelayedMessagesGetBoundedExtraTransit) {
  FaultProfile p;
  p.delay_probability = 1.0;
  p.max_delay = 5;
  FaultInjector faults(11, p);
  for (int i = 0; i < 200; ++i) {
    const FaultVerdict v = faults.verdict(setup_msg());
    EXPECT_GE(v.extra_delay, 1);
    EXPECT_LE(v.extra_delay, 5);
  }
  EXPECT_EQ(faults.counters().delayed, 200u);
}

TEST(FaultInjector, ManualComponentFailuresLoseMessages) {
  FaultInjector faults(1);
  EXPECT_TRUE(faults.node_up(3, 0));
  faults.fail_node(3);
  EXPECT_FALSE(faults.node_up(3, 0));
  faults.fail_link(5);
  EXPECT_FALSE(faults.link_up(5, 7));

  SignalingMessage at_down_node = setup_msg();
  at_down_node.at = 3;
  EXPECT_FALSE(faults.deliverable(at_down_node, 0));
  SignalingMessage via_down_link = setup_msg();
  via_down_link.at = 9;
  via_down_link.via = 5;
  EXPECT_FALSE(faults.deliverable(via_down_link, 0));
  EXPECT_EQ(faults.counters().failed_component_losses, 2u);

  faults.recover_node(3);
  faults.recover_link(5);
  EXPECT_TRUE(faults.deliverable(at_down_node, 0));
  EXPECT_TRUE(faults.deliverable(via_down_link, 0));
}

TEST(FaultInjector, ScheduledOutageWindowsAreHalfOpen) {
  FaultInjector faults(1);
  faults.schedule_node_outage(2, 10, 20);
  faults.schedule_link_outage(4, 15, 16);
  EXPECT_THROW(faults.schedule_node_outage(2, 5, 5), std::invalid_argument);

  EXPECT_TRUE(faults.node_up(2, 9));
  EXPECT_FALSE(faults.node_up(2, 10));
  EXPECT_FALSE(faults.node_up(2, 19));
  EXPECT_TRUE(faults.node_up(2, 20));  // [from, to)
  EXPECT_TRUE(faults.link_up(4, 14));
  EXPECT_FALSE(faults.link_up(4, 15));
  EXPECT_TRUE(faults.link_up(4, 16));
  // Other components are unaffected.
  EXPECT_TRUE(faults.node_up(3, 12));
  EXPECT_TRUE(faults.link_up(5, 15));
}

}  // namespace
}  // namespace rtcac
