// Unit tests for the deterministic signaling-plane fault model.

#include "net/fault_injector.h"

#include <gtest/gtest.h>

#include <vector>

namespace rtcac {
namespace {

SignalingMessage setup_msg(ConnectionId id = 1) {
  SignalingMessage m;
  m.type = SignalingMessageType::kSetup;
  m.id = id;
  return m;
}

TEST(FaultInjector, RejectsInvalidProfiles) {
  FaultProfile p;
  p.drop_probability = 1.5;
  EXPECT_THROW(FaultInjector(1, p), std::invalid_argument);
  p = FaultProfile{};
  p.reorder_probability = -0.1;
  EXPECT_THROW(FaultInjector(1, p), std::invalid_argument);
  p = FaultProfile{};
  p.max_delay = 0;
  EXPECT_THROW(FaultInjector(1, p), std::invalid_argument);
}

TEST(FaultInjector, QuietProfilePassesEverything) {
  FaultInjector faults(42);
  for (int i = 0; i < 100; ++i) {
    const FaultVerdict v = faults.verdict(setup_msg());
    EXPECT_FALSE(v.drop);
    EXPECT_FALSE(v.duplicate);
    EXPECT_EQ(v.extra_delay, 0);
  }
  EXPECT_EQ(faults.counters().messages_seen, 100u);
  EXPECT_EQ(faults.counters().dropped, 0u);
}

TEST(FaultInjector, SameSeedReplaysIdenticalVerdicts) {
  FaultProfile p;
  p.drop_probability = 0.3;
  p.duplicate_probability = 0.3;
  p.delay_probability = 0.3;
  p.reorder_probability = 0.3;
  FaultInjector a(7, p);
  FaultInjector b(7, p);
  for (int i = 0; i < 500; ++i) {
    const FaultVerdict va = a.verdict(setup_msg());
    const FaultVerdict vb = b.verdict(setup_msg());
    ASSERT_EQ(va.drop, vb.drop);
    ASSERT_EQ(va.duplicate, vb.duplicate);
    ASSERT_EQ(va.extra_delay, vb.extra_delay);
    ASSERT_EQ(va.duplicate_delay, vb.duplicate_delay);
  }
  EXPECT_EQ(a.counters().dropped, b.counters().dropped);
  EXPECT_GT(a.counters().dropped, 0u);
  EXPECT_GT(a.counters().duplicated, 0u);
  EXPECT_GT(a.counters().delayed, 0u);
}

TEST(FaultInjector, ScriptedFaultsHitExactOrdinalsPerType) {
  FaultInjector faults(1);
  faults.drop_nth(SignalingMessageType::kSetup, 2);
  faults.duplicate_nth(SignalingMessageType::kSetup, 3);
  faults.drop_nth(SignalingMessageType::kReject, 1);
  EXPECT_THROW(faults.drop_nth(SignalingMessageType::kSetup, 0),
               std::invalid_argument);

  EXPECT_FALSE(faults.verdict(setup_msg()).drop);  // 1st SETUP passes
  EXPECT_TRUE(faults.verdict(setup_msg()).drop);   // 2nd dropped
  const FaultVerdict third = faults.verdict(setup_msg());
  EXPECT_TRUE(third.duplicate);
  EXPECT_GE(third.duplicate_delay, 1);
  SignalingMessage reject;
  reject.type = SignalingMessageType::kReject;
  EXPECT_TRUE(faults.verdict(reject).drop);  // ordinals count per type
  EXPECT_FALSE(faults.verdict(setup_msg()).drop);
}

TEST(FaultInjector, DelayedMessagesGetBoundedExtraTransit) {
  FaultProfile p;
  p.delay_probability = 1.0;
  p.max_delay = 5;
  FaultInjector faults(11, p);
  for (int i = 0; i < 200; ++i) {
    const FaultVerdict v = faults.verdict(setup_msg());
    EXPECT_GE(v.extra_delay, 1);
    EXPECT_LE(v.extra_delay, 5);
  }
  EXPECT_EQ(faults.counters().delayed, 200u);
}

TEST(FaultInjector, ManualComponentFailuresLoseMessages) {
  FaultInjector faults(1);
  EXPECT_TRUE(faults.node_up(3, 0));
  faults.fail_node(3);
  EXPECT_FALSE(faults.node_up(3, 0));
  faults.fail_link(5);
  EXPECT_FALSE(faults.link_up(5, 7));

  SignalingMessage at_down_node = setup_msg();
  at_down_node.at = 3;
  EXPECT_FALSE(faults.deliverable(at_down_node, 0));
  SignalingMessage via_down_link = setup_msg();
  via_down_link.at = 9;
  via_down_link.via = 5;
  EXPECT_FALSE(faults.deliverable(via_down_link, 0));
  EXPECT_EQ(faults.counters().failed_component_losses, 2u);

  faults.recover_node(3);
  faults.recover_link(5);
  EXPECT_TRUE(faults.deliverable(at_down_node, 0));
  EXPECT_TRUE(faults.deliverable(via_down_link, 0));
}

TEST(FaultInjector, ScheduledOutageWindowsAreHalfOpen) {
  FaultInjector faults(1);
  faults.schedule_node_outage(2, 10, 20);
  faults.schedule_link_outage(4, 15, 16);
  EXPECT_THROW(faults.schedule_node_outage(2, 5, 5), std::invalid_argument);

  EXPECT_TRUE(faults.node_up(2, 9));
  EXPECT_FALSE(faults.node_up(2, 10));
  EXPECT_FALSE(faults.node_up(2, 19));
  EXPECT_TRUE(faults.node_up(2, 20));  // [from, to)
  EXPECT_TRUE(faults.link_up(4, 14));
  EXPECT_FALSE(faults.link_up(4, 15));
  EXPECT_TRUE(faults.link_up(4, 16));
  // Other components are unaffected.
  EXPECT_TRUE(faults.node_up(3, 12));
  EXPECT_TRUE(faults.link_up(5, 15));
}

TEST(FaultInjector, ComponentKindToString) {
  EXPECT_STREQ(to_string(ComponentKind::kNode), "node");
  EXPECT_STREQ(to_string(ComponentKind::kLink), "link");
}

TEST(FaultInjector, ObserversSeeManualTransitionsOnce) {
  FaultInjector faults(1);
  std::vector<ComponentEvent> events;
  const std::size_t token = faults.subscribe(
      [&](const ComponentEvent& e) { events.push_back(e); });
  EXPECT_THROW(faults.subscribe(nullptr), std::invalid_argument);

  faults.fail_node(3);
  faults.fail_node(3);  // already down: effective state unchanged
  faults.fail_link(5);
  faults.recover_node(3);
  faults.recover_node(3);  // already up

  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, ComponentKind::kNode);
  EXPECT_EQ(events[0].component, 3u);
  EXPECT_FALSE(events[0].up);
  EXPECT_EQ(events[1].kind, ComponentKind::kLink);
  EXPECT_EQ(events[1].component, 5u);
  EXPECT_FALSE(events[1].up);
  EXPECT_TRUE(events[2].up);

  faults.unsubscribe(token);
  faults.recover_link(5);
  EXPECT_EQ(events.size(), 3u);  // unsubscribed: no further delivery
}

TEST(FaultInjector, ObserversSeeHalfOpenOutageBoundaries) {
  FaultInjector faults(1);
  faults.schedule_node_outage(2, 10, 20);
  faults.schedule_link_outage(4, 15, 16);
  std::vector<ComponentEvent> events;
  faults.subscribe([&](const ComponentEvent& e) { events.push_back(e); });

  ASSERT_TRUE(faults.next_scheduled_change().has_value());
  EXPECT_EQ(*faults.next_scheduled_change(), 10);

  faults.advance_to(9);  // strictly before the window: nothing fires
  EXPECT_TRUE(events.empty());
  EXPECT_EQ(faults.cursor(), 9);

  faults.advance_to(10);  // the down boundary is inclusive...
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, ComponentKind::kNode);
  EXPECT_EQ(events[0].component, 2u);
  EXPECT_FALSE(events[0].up);
  EXPECT_EQ(events[0].at, 10);

  faults.advance_to(19);  // ...the whole [15,16) link outage fits here...
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].kind, ComponentKind::kLink);
  EXPECT_FALSE(events[1].up);
  EXPECT_EQ(events[1].at, 15);
  EXPECT_TRUE(events[2].up);
  EXPECT_EQ(events[2].at, 16);

  faults.advance_to(20);  // ...and the up boundary is exclusive of the window
  ASSERT_EQ(events.size(), 4u);
  EXPECT_TRUE(events[3].up);
  EXPECT_EQ(events[3].at, 20);
  EXPECT_FALSE(faults.next_scheduled_change().has_value());

  EXPECT_THROW(faults.advance_to(19), std::invalid_argument);  // monotone
}

TEST(FaultInjector, OverlappingWindowsCoalesceIntoOneOutage) {
  FaultInjector faults(1);
  faults.schedule_node_outage(2, 10, 20);
  faults.schedule_node_outage(2, 15, 25);
  std::vector<ComponentEvent> events;
  faults.subscribe([&](const ComponentEvent& e) { events.push_back(e); });

  faults.advance_to(100);
  // Effective state changed exactly twice: down at 10, up at 25.  The
  // boundaries at 15 and 20 are swallowed (still covered by a window).
  ASSERT_EQ(events.size(), 2u);
  EXPECT_FALSE(events[0].up);
  EXPECT_EQ(events[0].at, 10);
  EXPECT_TRUE(events[1].up);
  EXPECT_EQ(events[1].at, 25);
}

TEST(FaultInjector, BoundaryBehindCursorTakesEffectAtCursor) {
  FaultInjector faults(1);
  std::vector<ComponentEvent> events;
  faults.subscribe([&](const ComponentEvent& e) { events.push_back(e); });
  faults.advance_to(12);
  faults.schedule_node_outage(7, 10, 30);  // scheduled late: started "already"
  EXPECT_EQ(*faults.next_scheduled_change(), 12);  // clamped, never in the past
  faults.advance_to(12);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_FALSE(events[0].up);
  EXPECT_EQ(events[0].at, 12);  // clamped to the cursor, not retroactive
  faults.advance_to(30);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE(events[1].up);
  EXPECT_EQ(events[1].at, 30);
}

TEST(FaultInjector, ObserversFireInSubscriptionOrder) {
  FaultInjector faults(1);
  std::vector<int> order;
  faults.subscribe([&](const ComponentEvent&) { order.push_back(1); });
  faults.subscribe([&](const ComponentEvent&) { order.push_back(2); });
  faults.fail_node(1);
  ASSERT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace rtcac
