// Unit tests for the VPI/VCI label plane: allocator, switching table,
// network-wide label management, and the labeled data path in the
// simulator.

#include "net/label_manager.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "sim/simulator.h"

namespace rtcac {
namespace {

TEST(VcLabel, OrderingHashingPrinting) {
  const VcLabel a{0, 32};
  const VcLabel b{0, 33};
  const VcLabel c{1, 32};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (VcLabel{0, 32}));
  EXPECT_NE(std::hash<VcLabel>{}(a), std::hash<VcLabel>{}(b));
  EXPECT_EQ(a.to_string(), "0/32");
}

TEST(LabelAllocator, HandsOutDistinctLabelsPerPort) {
  LabelAllocator alloc(2);
  std::set<VcLabel> seen;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(seen.insert(alloc.allocate(0)).second);
  }
  EXPECT_EQ(alloc.allocated(0), 100u);
  // Port 1 is an independent space: the same labels reappear there.
  EXPECT_EQ(alloc.allocate(1), (VcLabel{0, kFirstUserVci}));
}

TEST(LabelAllocator, SkipsReservedVcis) {
  LabelAllocator alloc(1);
  EXPECT_GE(alloc.allocate(0).vci, kFirstUserVci);
}

TEST(LabelAllocator, ReleaseEnablesReuse) {
  LabelAllocator alloc(1);
  const VcLabel first = alloc.allocate(0);
  (void)alloc.allocate(0);
  EXPECT_TRUE(alloc.release(0, first));
  EXPECT_EQ(alloc.allocate(0), first);
  EXPECT_EQ(alloc.allocated(0), 2u);
}

TEST(LabelAllocator, VciWrapAdvancesVpi) {
  LabelAllocator alloc(1);
  VcLabel label{};
  for (int i = 0; i < 0x10000 - kFirstUserVci + 5; ++i) {
    label = alloc.allocate(0);
  }
  EXPECT_EQ(label.vpi, 1);
}

TEST(LabelAllocator, Validation) {
  EXPECT_THROW(LabelAllocator(0), std::invalid_argument);
  LabelAllocator alloc(1);
  EXPECT_THROW(alloc.allocate(1), std::invalid_argument);
  EXPECT_FALSE(alloc.release(0, VcLabel{0, 99}));  // nothing live
}

TEST(LabelSwitchingTable, InstallLookupRemove) {
  LabelSwitchingTable table;
  LabelSwitchingTable::Entry entry;
  entry.out_port = 2;
  entry.out_label = VcLabel{0, 77};
  entry.connection = 9;
  EXPECT_TRUE(table.install(1, VcLabel{0, 40}, entry));
  EXPECT_FALSE(table.install(1, VcLabel{0, 40}, entry));  // collision
  const auto hit = table.lookup(1, VcLabel{0, 40});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->out_port, 2u);
  EXPECT_EQ(hit->out_label, (VcLabel{0, 77}));
  EXPECT_EQ(hit->connection, 9u);
  // Same label on a different port is a different key.
  EXPECT_FALSE(table.lookup(0, VcLabel{0, 40}).has_value());
  EXPECT_TRUE(table.remove(1, VcLabel{0, 40}));
  EXPECT_FALSE(table.remove(1, VcLabel{0, 40}));
  EXPECT_EQ(table.size(), 0u);
}

struct Chain {
  Topology topo;
  NodeId term, sw0, sw1, dst;
  LinkId access, mid, out;

  Chain() {
    term = topo.add_terminal();
    sw0 = topo.add_switch();
    sw1 = topo.add_switch();
    dst = topo.add_terminal();
    access = topo.add_link(term, sw0);
    mid = topo.add_link(sw0, sw1);
    out = topo.add_link(sw1, dst);
  }

  [[nodiscard]] Route route() const { return {access, mid, out}; }
};

TEST(LabelManager, EstablishesPerHopTranslations) {
  Chain c;
  LabelManager manager(c.topo);
  const LabelPath path = manager.establish(1, c.route());
  // Two switches translate (sw0 and sw1); the source stamps the label
  // sw0 allocated on the access link.
  ASSERT_EQ(path.bindings.size(), 2u);
  EXPECT_EQ(path.bindings[0].node, c.sw0);
  EXPECT_EQ(path.bindings[0].in_label, path.initial);
  EXPECT_EQ(path.bindings[1].node, c.sw1);
  EXPECT_EQ(path.bindings[0].out_label, path.bindings[1].in_label);
  EXPECT_EQ(path.bindings[1].out_label, path.egress);
  // The tables now answer data-path lookups.
  const auto hop0 =
      manager.table(c.sw0).lookup(path.bindings[0].in_port, path.initial);
  ASSERT_TRUE(hop0.has_value());
  EXPECT_EQ(hop0->out_label, path.bindings[0].out_label);
  EXPECT_EQ(manager.connection_count(), 1u);
  EXPECT_EQ(manager.path(1).initial, path.initial);
}

TEST(LabelManager, ConnectionsOnSameLinkGetDistinctLabels) {
  Chain c;
  LabelManager manager(c.topo);
  const LabelPath a = manager.establish(1, Route{c.mid, c.out});
  const LabelPath b = manager.establish(2, Route{c.mid, c.out});
  EXPECT_NE(a.initial, b.initial);
  EXPECT_NE(a.egress, b.egress);
}

TEST(LabelManager, ReleaseFreesLabelsAndTables) {
  Chain c;
  LabelManager manager(c.topo);
  const LabelPath path = manager.establish(1, c.route());
  EXPECT_TRUE(manager.release(1));
  EXPECT_FALSE(manager.release(1));
  EXPECT_FALSE(manager.table(c.sw0)
                   .lookup(path.bindings[0].in_port, path.initial)
                   .has_value());
  // Labels are reusable: a new connection gets the released ones back.
  const LabelPath again = manager.establish(2, c.route());
  EXPECT_EQ(again.initial, path.initial);
}

TEST(LabelManager, DuplicateIdThrows) {
  Chain c;
  LabelManager manager(c.topo);
  (void)manager.establish(1, c.route());
  EXPECT_THROW(manager.establish(1, c.route()), std::invalid_argument);
}

// --- labeled data path in the simulator -------------------------------------

TEST(LabelManager, LabeledDataPathDeliversAndTranslates) {
  Chain c;
  LabelManager manager(c.topo);
  const LabelPath path = manager.establish(1, c.route());

  SimNetwork sim(c.topo, SimNetwork::Options{1, 0});
  sim.install(1, c.route(), 0,
              std::make_unique<PeriodicSourceScheduler>(5, 0, 20));
  sim.attach_labels(1, path);

  std::vector<VcLabel> seen;
  sim.set_delivery_hook(1, [&](const Cell& cell, Tick) {
    seen.push_back(cell.label);
  });
  sim.run_until(400);

  EXPECT_EQ(sim.sink(1).delivered(), 20u);
  EXPECT_EQ(sim.label_misroutes(), 0u);
  ASSERT_FALSE(seen.empty());
  for (const VcLabel& label : seen) {
    EXPECT_EQ(label, path.egress);  // every cell was rewritten twice
  }
}

TEST(LabelManager, CorruptedLabelPathDropsCells) {
  Chain c;
  LabelManager manager(c.topo);
  LabelPath path = manager.establish(1, c.route());
  path.bindings[1].in_label = VcLabel{7, 700};  // sabotage sw1's entry

  SimNetwork sim(c.topo, SimNetwork::Options{1, 0});
  sim.install(1, c.route(), 0,
              std::make_unique<PeriodicSourceScheduler>(5, 0, 10));
  sim.attach_labels(1, path);
  sim.run_until(200);

  EXPECT_EQ(sim.sink(1).delivered(), 0u);  // all dropped at sw1
  EXPECT_EQ(sim.label_misroutes(), 10u);
}

TEST(LabelManager, ManyConnectionsKeepLabelsSeparated) {
  // Several connections share every link; each must see only its own
  // egress label and all cells must arrive (no cross-talk, no drops).
  Topology topo;
  const NodeId sw0 = topo.add_switch();
  const NodeId sw1 = topo.add_switch();
  const LinkId mid = topo.add_link(sw0, sw1);
  std::vector<LinkId> access;
  std::vector<LinkId> delivery;
  for (int i = 0; i < 6; ++i) {
    access.push_back(topo.add_link(topo.add_terminal(), sw0));
    delivery.push_back(topo.add_link(sw1, topo.add_terminal()));
  }
  LabelManager manager(topo);
  SimNetwork sim(topo, SimNetwork::Options{1, 0});
  std::vector<LabelPath> paths;
  for (std::size_t i = 0; i < 6; ++i) {
    const Route route{access[i], mid, delivery[i]};
    paths.push_back(manager.establish(1 + i, route));
    sim.install(1 + i, route, 0,
                std::make_unique<PeriodicSourceScheduler>(
                    7, static_cast<Tick>(i), 30));
    sim.attach_labels(1 + i, paths.back());
  }
  sim.run_until(600);
  EXPECT_EQ(sim.label_misroutes(), 0u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(sim.sink(1 + i).delivered(), 30u) << i;
  }
}

}  // namespace
}  // namespace rtcac
