// Unit tests for the distributed SETUP/REJECT/CONNECTED procedure
// (Section 4.1), including its equivalence with central admission.

#include "net/signaling.h"

#include <gtest/gtest.h>

#include <limits>

namespace rtcac {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Chain {
  Topology topo;
  NodeId term0, term1, sw0, sw1, sw2;
  LinkId acc0, acc1, l01, l12;

  Chain() {
    term0 = topo.add_terminal();
    term1 = topo.add_terminal();
    sw0 = topo.add_switch();
    sw1 = topo.add_switch();
    sw2 = topo.add_switch();
    acc0 = topo.add_link(term0, sw0);
    acc1 = topo.add_link(term1, sw0);
    l01 = topo.add_link(sw0, sw1);
    l12 = topo.add_link(sw1, sw2);
  }

  [[nodiscard]] ConnectionManager::Params params() const {
    ConnectionManager::Params p;
    p.priorities = 1;
    p.advertised_bound = 32;
    return p;
  }
};

QosRequest cbr_request(double pcr, double deadline = kInf) {
  QosRequest r;
  r.traffic = TrafficDescriptor::cbr(pcr);
  r.deadline = deadline;
  return r;
}

TEST(Signaling, SuccessfulSetupConnects) {
  Chain c;
  ConnectionManager mgr(c.topo, c.params());
  SignalingEngine engine(mgr);
  const ConnectionId id =
      engine.initiate(cbr_request(0.5), Route{c.acc0, c.l01, c.l12});
  EXPECT_FALSE(engine.outcome(id).has_value());  // still in flight
  engine.run();
  const auto outcome = engine.outcome(id);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->connected);
  EXPECT_DOUBLE_EQ(outcome->e2e_advertised, 64.0);
  EXPECT_EQ(mgr.connection_count(), 1u);  // adopted into the manager
  EXPECT_TRUE(mgr.teardown(id));
}

TEST(Signaling, MessageSequenceOfSuccessfulSetup) {
  Chain c;
  ConnectionManager mgr(c.topo, c.params());
  SignalingEngine engine(mgr);
  engine.initiate(cbr_request(0.25), Route{c.acc0, c.l01, c.l12});
  engine.run();
  const auto& trace = engine.trace();
  // SETUP at hop 0, hop 1, destination check, CONNECTED back.
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace[0].type, SignalingMessageType::kSetup);
  EXPECT_EQ(trace[1].type, SignalingMessageType::kSetup);
  EXPECT_EQ(trace[2].type, SignalingMessageType::kSetup);
  EXPECT_EQ(trace[3].type, SignalingMessageType::kConnected);
  EXPECT_FALSE(to_string(trace[0]).empty());
}

TEST(Signaling, RejectionReleasesUpstreamReservations) {
  Chain c;
  ConnectionManager mgr(c.topo, c.params());
  SignalingEngine engine(mgr);
  // Fill the shared links.
  const ConnectionId first =
      engine.initiate(cbr_request(0.7), Route{c.acc0, c.l01, c.l12});
  engine.run();
  ASSERT_TRUE(engine.outcome(first)->connected);

  const ConnectionId second =
      engine.initiate(cbr_request(0.6), Route{c.acc1, c.l01, c.l12});
  engine.run();
  const auto outcome = engine.outcome(second);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->connected);
  EXPECT_FALSE(outcome->reason.empty());
  // No residue at either switch.
  EXPECT_TRUE(mgr.switch_cac(c.sw0).state_consistent());
  EXPECT_EQ(mgr.switch_cac(c.sw0).connection_count(), 1u);
  EXPECT_EQ(mgr.switch_cac(c.sw1).connection_count(), 1u);
  EXPECT_EQ(mgr.connection_count(), 1u);
}

TEST(Signaling, DeadlineRejectionAtDestination) {
  Chain c;
  auto params = c.params();
  params.guarantee = GuaranteeMode::kAdvertised;
  ConnectionManager mgr(c.topo, params);
  SignalingEngine engine(mgr);
  const ConnectionId id =
      engine.initiate(cbr_request(0.5, 10.0), Route{c.acc0, c.l01, c.l12});
  engine.run();
  const auto outcome = engine.outcome(id);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->connected);
  EXPECT_NE(outcome->reason.find("deadline"), std::string::npos);
  EXPECT_EQ(mgr.switch_cac(c.sw0).connection_count(), 0u);
  EXPECT_EQ(mgr.switch_cac(c.sw1).connection_count(), 0u);
}

TEST(Signaling, StepProcessesOneMessageAtATime) {
  Chain c;
  ConnectionManager mgr(c.topo, c.params());
  SignalingEngine engine(mgr);
  engine.initiate(cbr_request(0.5), Route{c.acc0, c.l01, c.l12});
  std::size_t steps = 0;
  while (engine.step()) ++steps;
  EXPECT_EQ(steps, 4u);
  EXPECT_FALSE(engine.step());  // idle
  EXPECT_EQ(engine.pending_messages(), 0u);
}

TEST(Signaling, InterleavedSetupsAreSerializedConsistently) {
  Chain c;
  ConnectionManager mgr(c.topo, c.params());
  SignalingEngine engine(mgr);
  const ConnectionId a =
      engine.initiate(cbr_request(0.7), Route{c.acc0, c.l01, c.l12});
  const ConnectionId b =
      engine.initiate(cbr_request(0.6), Route{c.acc1, c.l01, c.l12});
  engine.run();
  const bool a_ok = engine.outcome(a)->connected;
  const bool b_ok = engine.outcome(b)->connected;
  // Exactly one of the two can fit on the shared links.
  EXPECT_NE(a_ok, b_ok);
  EXPECT_TRUE(mgr.switch_cac(c.sw0).state_consistent());
}

TEST(Signaling, MatchesCentralAdmissionDecisions) {
  // The distributed procedure admits exactly the same sequence as the
  // central manager, connection for connection.
  const double rates[] = {0.3, 0.3, 0.3, 0.2, 0.2};
  Chain c1;
  ConnectionManager central(c1.topo, c1.params());
  Chain c2;
  ConnectionManager managed(c2.topo, c2.params());
  SignalingEngine engine(managed);

  for (const double r : rates) {
    const auto central_result =
        central.setup(cbr_request(r), Route{c1.acc0, c1.l01, c1.l12});
    const ConnectionId id =
        engine.initiate(cbr_request(r), Route{c2.acc0, c2.l01, c2.l12});
    engine.run();
    EXPECT_EQ(central_result.accepted, engine.outcome(id)->connected)
        << "rate " << r;
    if (central_result.accepted) {
      EXPECT_NEAR(central_result.e2e_bound_at_setup,
                  engine.outcome(id)->e2e_bound_at_setup, 1e-9);
    }
  }
  EXPECT_EQ(central.connection_count(), managed.connection_count());
}

TEST(Signaling, RejectsMalformedRoute) {
  Chain c;
  ConnectionManager mgr(c.topo, c.params());
  SignalingEngine engine(mgr);
  EXPECT_THROW(engine.initiate(cbr_request(0.5), Route{c.l12, c.l01}),
               std::invalid_argument);
}

}  // namespace
}  // namespace rtcac
