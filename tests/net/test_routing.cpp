// Unit tests for route selection.

#include "net/routing.h"

#include <gtest/gtest.h>

namespace rtcac {
namespace {

struct Diamond {
  Topology topo;
  NodeId a, b, c, d;
  LinkId ab, ac, bd, cd, ad;

  Diamond() {
    a = topo.add_switch("a");
    b = topo.add_switch("b");
    c = topo.add_switch("c");
    d = topo.add_switch("d");
    ab = topo.add_link(a, b);
    ac = topo.add_link(a, c, 10);
    bd = topo.add_link(b, d);
    cd = topo.add_link(c, d);
    ad = topo.add_link(a, d, 50);  // direct but slow
  }
};

TEST(Routing, PrefersFewestHops) {
  Diamond g;
  const auto route = shortest_route(g.topo, g.a, g.d);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(*route, Route{g.ad});  // 1 hop beats 2 hops despite propagation
}

TEST(Routing, BreaksHopTiesByPropagation) {
  Diamond g;
  const auto route = shortest_route(g.topo, g.a, g.c);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(*route, Route{g.ac});
  // a->d has routes ab+bd (prop 0) and ac+cd (prop 10) at 2 hops; with the
  // 1-hop ad removed, the zero-propagation one wins.
  const LinkId banned[] = {g.ad};
  const auto two_hop = shortest_route_avoiding(g.topo, g.a, g.d, banned);
  ASSERT_TRUE(two_hop.has_value());
  EXPECT_EQ(*two_hop, (Route{g.ab, g.bd}));
}

TEST(Routing, AvoidsExcludedLinks) {
  Diamond g;
  const LinkId banned[] = {g.ad, g.ab};
  const auto route = shortest_route_avoiding(g.topo, g.a, g.d, banned);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(*route, (Route{g.ac, g.cd}));
}

TEST(Routing, UnreachableIsNullopt) {
  Topology topo;
  const NodeId a = topo.add_switch();
  const NodeId b = topo.add_switch();
  EXPECT_FALSE(shortest_route(topo, a, b).has_value());
  const NodeId c = topo.add_switch();
  topo.add_link(a, c);
  const LinkId only = topo.find_link(a, c).value();
  const LinkId banned[] = {only};
  EXPECT_FALSE(shortest_route_avoiding(topo, a, c, banned).has_value());
}

TEST(Routing, SelfRouteIsEmpty) {
  Topology topo;
  const NodeId a = topo.add_switch();
  EXPECT_EQ(shortest_route(topo, a, a).value(), Route{});
}

TEST(Routing, BadNodesAreNullopt) {
  Topology topo;
  EXPECT_FALSE(shortest_route(topo, 0, 1).has_value());
}

TEST(Routing, TerminalsDoNotTransit) {
  // a -> t -> b exists structurally, but terminals cannot forward.
  Topology topo;
  const NodeId a = topo.add_switch();
  const NodeId t = topo.add_terminal();
  const NodeId b = topo.add_switch();
  topo.add_link(a, t);
  topo.add_link(t, b);
  EXPECT_FALSE(shortest_route(topo, a, b).has_value());
  // But a route *starting* at the terminal uses its access link.
  const auto from_term = shortest_route(topo, t, b);
  ASSERT_TRUE(from_term.has_value());
  EXPECT_EQ(from_term->size(), 1u);
}

TEST(Routing, FindsRingPath) {
  Topology topo;
  std::vector<NodeId> nodes;
  std::vector<LinkId> links;
  for (int i = 0; i < 6; ++i) nodes.push_back(topo.add_switch());
  for (int i = 0; i < 6; ++i) {
    links.push_back(topo.add_link(nodes[i], nodes[(i + 1) % 6]));
  }
  const auto route = shortest_route(topo, nodes[1], nodes[5]);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->size(), 4u);  // 1 -> 2 -> 3 -> 4 -> 5
  EXPECT_EQ(topo.route_nodes(*route).back(), nodes[5]);
}

}  // namespace
}  // namespace rtcac
