// Unit tests for route selection.

#include "net/routing.h"

#include <gtest/gtest.h>

namespace rtcac {
namespace {

struct Diamond {
  Topology topo;
  NodeId a, b, c, d;
  LinkId ab, ac, bd, cd, ad;

  Diamond() {
    a = topo.add_switch("a");
    b = topo.add_switch("b");
    c = topo.add_switch("c");
    d = topo.add_switch("d");
    ab = topo.add_link(a, b);
    ac = topo.add_link(a, c, 10);
    bd = topo.add_link(b, d);
    cd = topo.add_link(c, d);
    ad = topo.add_link(a, d, 50);  // direct but slow
  }
};

TEST(Routing, PrefersFewestHops) {
  Diamond g;
  const auto route = shortest_route(g.topo, g.a, g.d);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(*route, Route{g.ad});  // 1 hop beats 2 hops despite propagation
}

TEST(Routing, BreaksHopTiesByPropagation) {
  Diamond g;
  const auto route = shortest_route(g.topo, g.a, g.c);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(*route, Route{g.ac});
  // a->d has routes ab+bd (prop 0) and ac+cd (prop 10) at 2 hops; with the
  // 1-hop ad removed, the zero-propagation one wins.
  const LinkId banned[] = {g.ad};
  const auto two_hop = shortest_route_avoiding(g.topo, g.a, g.d, banned);
  ASSERT_TRUE(two_hop.has_value());
  EXPECT_EQ(*two_hop, (Route{g.ab, g.bd}));
}

TEST(Routing, AvoidsExcludedLinks) {
  Diamond g;
  const LinkId banned[] = {g.ad, g.ab};
  const auto route = shortest_route_avoiding(g.topo, g.a, g.d, banned);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(*route, (Route{g.ac, g.cd}));
}

TEST(Routing, UnreachableIsNullopt) {
  Topology topo;
  const NodeId a = topo.add_switch();
  const NodeId b = topo.add_switch();
  EXPECT_FALSE(shortest_route(topo, a, b).has_value());
  const NodeId c = topo.add_switch();
  topo.add_link(a, c);
  const LinkId only = topo.find_link(a, c).value();
  const LinkId banned[] = {only};
  EXPECT_FALSE(shortest_route_avoiding(topo, a, c, banned).has_value());
}

TEST(Routing, SelfRouteIsEmpty) {
  Topology topo;
  const NodeId a = topo.add_switch();
  EXPECT_EQ(shortest_route(topo, a, a).value(), Route{});
}

TEST(Routing, BadNodesAreNullopt) {
  Topology topo;
  EXPECT_FALSE(shortest_route(topo, 0, 1).has_value());
}

TEST(Routing, TerminalsDoNotTransit) {
  // a -> t -> b exists structurally, but terminals cannot forward.
  Topology topo;
  const NodeId a = topo.add_switch();
  const NodeId t = topo.add_terminal();
  const NodeId b = topo.add_switch();
  topo.add_link(a, t);
  topo.add_link(t, b);
  EXPECT_FALSE(shortest_route(topo, a, b).has_value());
  // But a route *starting* at the terminal uses its access link.
  const auto from_term = shortest_route(topo, t, b);
  ASSERT_TRUE(from_term.has_value());
  EXPECT_EQ(from_term->size(), 1u);
}

TEST(Routing, FindsRingPath) {
  Topology topo;
  std::vector<NodeId> nodes;
  std::vector<LinkId> links;
  for (int i = 0; i < 6; ++i) nodes.push_back(topo.add_switch());
  for (int i = 0; i < 6; ++i) {
    links.push_back(topo.add_link(nodes[i], nodes[(i + 1) % 6]));
  }
  const auto route = shortest_route(topo, nodes[1], nodes[5]);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->size(), 4u);  // 1 -> 2 -> 3 -> 4 -> 5
  EXPECT_EQ(topo.route_nodes(*route).back(), nodes[5]);
}

TEST(Routing, AvoidanceSetBansNodesAndLinksInOneQuery) {
  Diamond g;
  // Node b and the direct link both down: only a -> c -> d remains.
  const NodeId down_nodes[] = {g.b};
  const LinkId down_links[] = {g.ad};
  const auto route = shortest_route_avoiding(
      g.topo, g.a, g.d, RouteAvoidance{down_nodes, down_links});
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(*route, (Route{g.ac, g.cd}));
}

TEST(Routing, EmptyAvoidanceMatchesPlainShortestRoute) {
  Diamond g;
  EXPECT_EQ(shortest_route_avoiding(g.topo, g.a, g.d, RouteAvoidance{}),
            shortest_route(g.topo, g.a, g.d));
}

TEST(Routing, NoAlternatePathAroundFailedSetIsNullopt) {
  Diamond g;
  // Both transit switches and the direct link down: d is cut off.
  const NodeId down_nodes[] = {g.b, g.c};
  const LinkId down_links[] = {g.ad};
  EXPECT_FALSE(shortest_route_avoiding(g.topo, g.a, g.d,
                                       RouteAvoidance{down_nodes, down_links})
                   .has_value());
}

TEST(Routing, DownEndpointIsNullopt) {
  Diamond g;
  const NodeId source_down[] = {g.a};
  EXPECT_FALSE(shortest_route_avoiding(g.topo, g.a, g.d,
                                       RouteAvoidance{source_down, {}})
                   .has_value());
  const NodeId dest_down[] = {g.d};
  EXPECT_FALSE(shortest_route_avoiding(g.topo, g.a, g.d,
                                       RouteAvoidance{dest_down, {}})
                   .has_value());
  // Even the trivial self-route needs its (single) endpoint to be up.
  EXPECT_FALSE(shortest_route_avoiding(g.topo, g.a, g.a,
                                       RouteAvoidance{source_down, {}})
                   .has_value());
}

TEST(Routing, CandidateRouteNeverReentersAvoidedSet) {
  // a -> x -> d is shortest, but x is down; the detour a -> p -> q -> d
  // must win, and no link touching x may appear in it.
  Topology topo;
  const NodeId a = topo.add_switch("a");
  const NodeId x = topo.add_switch("x");
  const NodeId d = topo.add_switch("d");
  const NodeId p = topo.add_switch("p");
  const NodeId q = topo.add_switch("q");
  topo.add_link(a, x);
  const LinkId xd = topo.add_link(x, d);
  const LinkId ap = topo.add_link(a, p);
  const LinkId pq = topo.add_link(p, q);
  const LinkId qd = topo.add_link(q, d);
  topo.add_link(p, x);  // tempting shortcut back into the failed set

  const NodeId down[] = {x};
  const auto route =
      shortest_route_avoiding(topo, a, d, RouteAvoidance{down, {}});
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(*route, (Route{ap, pq, qd}));
  for (const NodeId node : topo.route_nodes(*route)) {
    EXPECT_NE(node, x);
  }
  // A banned node also bans its links even when queried as link-only
  // avoidance of something else.
  const LinkId other[] = {xd};
  const auto via_x = shortest_route_avoiding(topo, a, d, RouteAvoidance{down, other});
  ASSERT_TRUE(via_x.has_value());
  EXPECT_EQ(*via_x, (Route{ap, pq, qd}));
}

}  // namespace
}  // namespace rtcac
