// Contract framework, trap mode (RTCAC_CONTRACT_MODE == 2): a failing
// check prints the violation to stderr and aborts the process via
// __builtin_trap().  Verified with gtest death tests.

#undef RTCAC_CONTRACT_MODE
#define RTCAC_CONTRACT_MODE 2
#ifndef RTCAC_CONTRACT_AUDIT
#define RTCAC_CONTRACT_AUDIT 1
#endif
#include "util/contract.h"

#include <gtest/gtest.h>

namespace rtcac {
namespace {

void require_positive(int x) { RTCAC_REQUIRE(x > 0, "x must be positive"); }
void audit_small(int x) {
  RTCAC_INVARIANT_AUDIT(x < 100, "x exceeded the audited bound");
}

TEST(ContractTrapDeathTest, PassingChecksDoNotDie) {
  require_positive(7);
  audit_small(7);
  SUCCEED();
}

TEST(ContractTrapDeathTest, FailingRequireTrapsWithDiagnostic) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(require_positive(-1),
               "x must be positive.*precondition `x > 0` violated at");
}

TEST(ContractTrapDeathTest, FailingAuditTraps) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(audit_small(500), "invariant `x < 100` violated at");
}

TEST(ContractTrapDeathTest, TrapIsUsableInNoexceptContext) {
  // contract_trap never unwinds, so a failing check inside a noexcept
  // function must not turn into std::terminate-with-active-exception —
  // it dies via the trap with the diagnostic already flushed.
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  auto noexcept_fn = [](int x) noexcept {
    RTCAC_REQUIRE(x > 0, "noexcept precondition");
  };
  EXPECT_DEATH(noexcept_fn(0), "noexcept precondition");
}

}  // namespace
}  // namespace rtcac
