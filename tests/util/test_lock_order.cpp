// Unit tests for util/lock_order.h: the runtime half of the shard
// lock-order discipline (the static half is the clang thread-safety
// annotations plus the `lock-order` lint rule).
//
// The audit is armed only under RTCAC_CONTRACT_AUDIT (Debug presets),
// so every expectation is split on RTCAC_AUDIT_ENABLED: armed builds
// must throw ContractViolation on a discipline violation *before* the
// would-be deadlock, release builds must compile the whole audit to
// nothing.

#include "util/lock_order.h"

#include <cstddef>
#include <thread>

#include <gtest/gtest.h>

#include "util/contract.h"

namespace rtcac {
namespace {

#if RTCAC_AUDIT_ENABLED

TEST(LockOrderAudit, AscendingAcquisitionIsAccepted) {
  EXPECT_EQ(LockOrderAudit::depth(), 0u);
  LockOrderAudit::push(0);
  LockOrderAudit::push(3);
  LockOrderAudit::push(7);
  EXPECT_EQ(LockOrderAudit::depth(), 3u);
  LockOrderAudit::pop(7);
  LockOrderAudit::pop(3);
  LockOrderAudit::pop(0);
  EXPECT_EQ(LockOrderAudit::depth(), 0u);
}

TEST(LockOrderAudit, DescendingAcquisitionThrowsBeforeRecording) {
  LockOrderAudit::push(5);
  EXPECT_THROW(LockOrderAudit::push(2), ContractViolation);
  // The failed push must not have been recorded.
  EXPECT_EQ(LockOrderAudit::depth(), 1u);
  LockOrderAudit::pop(5);
}

TEST(LockOrderAudit, RecursiveAcquisitionThrows) {
  LockOrderAudit::push(4);
  EXPECT_THROW(LockOrderAudit::push(4), ContractViolation);
  LockOrderAudit::pop(4);
}

TEST(LockOrderAudit, OutOfLifoReleaseThrows) {
  LockOrderAudit::push(1);
  LockOrderAudit::push(2);
  EXPECT_THROW(LockOrderAudit::pop(1), ContractViolation);
  LockOrderAudit::pop(2);
  LockOrderAudit::pop(1);
}

TEST(LockOrderAudit, PopOnEmptyStackThrows) {
  EXPECT_EQ(LockOrderAudit::depth(), 0u);
  EXPECT_THROW(LockOrderAudit::pop(0), ContractViolation);
}

TEST(LockOrderAudit, ScopeRecordsAndReleases) {
  {
    const LockOrderAudit::Scope outer(2);
    EXPECT_EQ(LockOrderAudit::depth(), 1u);
    {
      const LockOrderAudit::Scope inner(6);
      EXPECT_EQ(LockOrderAudit::depth(), 2u);
    }
    EXPECT_EQ(LockOrderAudit::depth(), 1u);
  }
  EXPECT_EQ(LockOrderAudit::depth(), 0u);
}

TEST(LockOrderAudit, StacksArePerThread) {
  // A thread holding shard 9 must not constrain another thread that
  // starts its own ascent from shard 0.
  LockOrderAudit::push(9);
  std::thread other([] {
    EXPECT_EQ(LockOrderAudit::depth(), 0u);
    LockOrderAudit::push(0);
    LockOrderAudit::push(1);
    LockOrderAudit::pop(1);
    LockOrderAudit::pop(0);
  });
  other.join();
  EXPECT_EQ(LockOrderAudit::depth(), 1u);
  LockOrderAudit::pop(9);
}

#else  // !RTCAC_AUDIT_ENABLED

TEST(LockOrderAudit, DisarmedShellIsInert) {
  // Out-of-order and unbalanced sequences are all no-ops: the release
  // shell records nothing and never throws.
  LockOrderAudit::push(5);
  LockOrderAudit::push(2);
  LockOrderAudit::pop(5);
  EXPECT_EQ(LockOrderAudit::depth(), 0u);
  const LockOrderAudit::Scope scope(3);
  EXPECT_EQ(LockOrderAudit::depth(), 0u);
}

#endif  // RTCAC_AUDIT_ENABLED

}  // namespace
}  // namespace rtcac
