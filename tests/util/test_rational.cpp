// Unit tests for exact rational arithmetic.

#include "util/rational.h"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

namespace rtcac {
namespace {

TEST(Rational, DefaultIsZero) {
  const Rational r;
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
  EXPECT_TRUE(r.is_integer());
}

TEST(Rational, ReducesOnConstruction) {
  const Rational r(6, 8);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 4);
}

TEST(Rational, NormalizesSign) {
  const Rational r(3, -6);
  EXPECT_EQ(r.num(), -1);
  EXPECT_EQ(r.den(), 2);
  EXPECT_EQ(Rational(-3, -6), Rational(1, 2));
}

TEST(Rational, ZeroIsCanonical) {
  EXPECT_EQ(Rational(0, 17), Rational(0));
  EXPECT_EQ(Rational(0, -5).den(), 1);
}

TEST(Rational, RejectsZeroDenominator) {
  EXPECT_THROW(Rational(1, 0), std::invalid_argument);
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(2, 3) / Rational(4, 9), Rational(3, 2));
  EXPECT_EQ(-Rational(1, 2), Rational(-1, 2));
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW(Rational(1) / Rational(0), std::domain_error);
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GE(Rational(1, 2), Rational(2, 4));
  EXPECT_NE(Rational(1, 3), Rational(1, 4));
}

TEST(Rational, ComparisonsDoNotOverflowInt64) {
  const std::int64_t big = std::numeric_limits<std::int64_t>::max() / 2;
  EXPECT_LT(Rational(big - 1, big), Rational(big, big - 1));
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 4).to_double(), 0.25);
  EXPECT_DOUBLE_EQ(Rational(-3, 2).to_double(), -1.5);
}

TEST(Rational, ToStringAndStreaming) {
  EXPECT_EQ(Rational(7).to_string(), "7");
  EXPECT_EQ(Rational(22, 7).to_string(), "22/7");
  std::ostringstream os;
  os << Rational(-1, 3);
  EXPECT_EQ(os.str(), "-1/3");
}

TEST(Rational, Abs) {
  EXPECT_EQ(abs(Rational(-5, 3)), Rational(5, 3));
  EXPECT_EQ(abs(Rational(5, 3)), Rational(5, 3));
}

TEST(Rational, OverflowDetected) {
  const std::int64_t big = std::numeric_limits<std::int64_t>::max();
  const Rational huge(big, 1);
  EXPECT_THROW(huge + huge, RationalOverflow);
  EXPECT_THROW(huge * Rational(2), RationalOverflow);
}

TEST(Rational, IntermediateProductsUse128Bits) {
  // num*den products exceed int64 but the reduced result fits.
  const std::int64_t big = 3'037'000'499;  // ~sqrt(2^63)
  const Rational a(big, big + 1);
  const Rational b(big + 1, big);
  EXPECT_EQ(a * b, Rational(1));
}

TEST(Rational, SumOfManyTermsStaysExact) {
  Rational sum;
  for (int i = 1; i <= 30; ++i) {
    sum += Rational(1, i * (i + 1));  // telescopes to 1 - 1/(n+1)
  }
  EXPECT_EQ(sum, Rational(30, 31));
}

}  // namespace
}  // namespace rtcac
