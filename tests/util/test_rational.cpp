// Unit tests for exact rational arithmetic.

#include "util/rational.h"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

namespace rtcac {
namespace {

TEST(Rational, DefaultIsZero) {
  const Rational r;
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
  EXPECT_TRUE(r.is_integer());
}

TEST(Rational, ReducesOnConstruction) {
  const Rational r(6, 8);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 4);
}

TEST(Rational, NormalizesSign) {
  const Rational r(3, -6);
  EXPECT_EQ(r.num(), -1);
  EXPECT_EQ(r.den(), 2);
  EXPECT_EQ(Rational(-3, -6), Rational(1, 2));
}

TEST(Rational, ZeroIsCanonical) {
  EXPECT_EQ(Rational(0, 17), Rational(0));
  EXPECT_EQ(Rational(0, -5).den(), 1);
}

TEST(Rational, RejectsZeroDenominator) {
  EXPECT_THROW(Rational(1, 0), std::invalid_argument);
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(2, 3) / Rational(4, 9), Rational(3, 2));
  EXPECT_EQ(-Rational(1, 2), Rational(-1, 2));
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW(Rational(1) / Rational(0), std::domain_error);
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GE(Rational(1, 2), Rational(2, 4));
  EXPECT_NE(Rational(1, 3), Rational(1, 4));
}

TEST(Rational, ComparisonsDoNotOverflowInt64) {
  const std::int64_t big = std::numeric_limits<std::int64_t>::max() / 2;
  EXPECT_LT(Rational(big - 1, big), Rational(big, big - 1));
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 4).to_double(), 0.25);
  EXPECT_DOUBLE_EQ(Rational(-3, 2).to_double(), -1.5);
}

TEST(Rational, ToStringAndStreaming) {
  EXPECT_EQ(Rational(7).to_string(), "7");
  EXPECT_EQ(Rational(22, 7).to_string(), "22/7");
  std::ostringstream os;
  os << Rational(-1, 3);
  EXPECT_EQ(os.str(), "-1/3");
}

TEST(Rational, Abs) {
  EXPECT_EQ(abs(Rational(-5, 3)), Rational(5, 3));
  EXPECT_EQ(abs(Rational(5, 3)), Rational(5, 3));
}

TEST(Rational, OverflowDetected) {
  const std::int64_t big = std::numeric_limits<std::int64_t>::max();
  const Rational huge(big, 1);
  EXPECT_THROW(huge + huge, RationalOverflow);
  EXPECT_THROW(huge * Rational(2), RationalOverflow);
}

TEST(Rational, IntermediateProductsUse128Bits) {
  // num*den products exceed int64 but the reduced result fits.
  const std::int64_t big = 3'037'000'499;  // ~sqrt(2^63)
  const Rational a(big, big + 1);
  const Rational b(big + 1, big);
  EXPECT_EQ(a * b, Rational(1));
}

TEST(Rational, SumOfManyTermsStaysExact) {
  Rational sum;
  for (int i = 1; i <= 30; ++i) {
    sum += Rational(1, i * (i + 1));  // telescopes to 1 - 1/(n+1)
  }
  EXPECT_EQ(sum, Rational(30, 31));
}

// Extreme-input regressions: every operation routes intermediates through
// 128-bit arithmetic, so nothing below may overflow an int64 silently (a
// signed-overflow UB report under UBSan) — each either yields the exact
// value or throws RationalOverflow.

TEST(Rational, Int64MinInputsDoNotOverflowSilently) {
  const std::int64_t min64 = std::numeric_limits<std::int64_t>::min();
  // -min64 does not exist in int64; negation and min/-1 must throw, not
  // wrap.
  EXPECT_THROW(-Rational(min64), RationalOverflow);
  EXPECT_THROW(Rational(min64, -1), RationalOverflow);
  // min64 itself and min64/positive-denominator are representable.
  EXPECT_EQ(Rational(min64).to_string(),
            std::to_string(min64));
  EXPECT_EQ(Rational(min64, 2), Rational(min64 / 2));
  EXPECT_THROW(static_cast<void>(abs(Rational(min64))), RationalOverflow);
}

TEST(Rational, ExtremeArithmeticEitherExactOrThrows) {
  const std::int64_t max64 = std::numeric_limits<std::int64_t>::max();
  const std::int64_t min64 = std::numeric_limits<std::int64_t>::min();
  const Rational hi(max64);
  const Rational lo(min64);
  // max - min == 2^64 - 1 > int64: overflow, detected.
  EXPECT_THROW(hi - lo, RationalOverflow);
  EXPECT_THROW(lo * Rational(2), RationalOverflow);
  EXPECT_THROW(lo * lo, RationalOverflow);
  // Exactly representable extreme results pass through.
  EXPECT_EQ(hi + lo, Rational(-1));
  EXPECT_EQ(lo / lo, Rational(1));
  EXPECT_EQ(hi / hi, Rational(1));
  EXPECT_EQ(lo / Rational(2), Rational(min64 / 2));
  // 1/max64 * max64 exercises the largest cross products that still
  // reduce into range.
  EXPECT_EQ(Rational(1, max64) * Rational(max64), Rational(1));
}

TEST(Rational, ExtremeDenominatorsCompareCorrectly) {
  const std::int64_t max64 = std::numeric_limits<std::int64_t>::max();
  const Rational tiny(1, max64);
  const Rational tinier(1, max64 - 1);
  // Cross-multiplied comparison uses 128-bit intermediates; it must not
  // wrap into a reversed ordering.
  EXPECT_LT(tiny, tinier);
  EXPECT_GT(Rational(max64), Rational(max64 - 1));
  EXPECT_LT(Rational(std::numeric_limits<std::int64_t>::min()),
            Rational(1, max64));
}

}  // namespace
}  // namespace rtcac
