// Unit tests for the deterministic PRNG.

#include "util/xorshift.h"

#include <gtest/gtest.h>

#include <set>

namespace rtcac {
namespace {

TEST(Xorshift, DeterministicForSameSeed) {
  Xorshift a(123);
  Xorshift b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Xorshift, DifferentSeedsDiverge) {
  Xorshift a(1);
  Xorshift b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Xorshift, UniformInUnitInterval) {
  Xorshift rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Xorshift, UniformRange) {
  Xorshift rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    ASSERT_GE(u, -2.0);
    ASSERT_LT(u, 3.0);
  }
}

TEST(Xorshift, BelowCoversRange) {
  Xorshift rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Xorshift, ChanceExtremes) {
  Xorshift rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Xorshift, ChanceFrequency) {
  Xorshift rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

}  // namespace
}  // namespace rtcac
