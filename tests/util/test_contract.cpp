// Contract framework, throw mode (RTCAC_CONTRACT_MODE == 1).
//
// Per the ODR note in util/contract.h, each per-mode test binary pins its
// own mode before including the header and exercises self-contained
// helpers rather than re-instantiating library templates under a mode the
// library was not built with.

#undef RTCAC_CONTRACT_MODE
#define RTCAC_CONTRACT_MODE 1
#ifndef RTCAC_CONTRACT_AUDIT
#define RTCAC_CONTRACT_AUDIT 1
#endif
#include "util/contract.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace rtcac {
namespace {

// Self-contained helpers using the macros under this TU's mode.
void require_positive(int x) { RTCAC_REQUIRE(x > 0, "x must be positive"); }
void assert_even(int x) { RTCAC_ASSERT(x % 2 == 0, "x must be even"); }
void audit_small(int x) {
  RTCAC_INVARIANT_AUDIT(x < 100, "x exceeded the audited bound");
}

TEST(ContractThrow, PassingChecksAreSilent) {
  EXPECT_NO_THROW(require_positive(1));
  EXPECT_NO_THROW(assert_even(2));
  EXPECT_NO_THROW(audit_small(3));
}

TEST(ContractThrow, RequireThrowsContractViolation) {
  EXPECT_THROW(require_positive(0), ContractViolation);
}

TEST(ContractThrow, ViolationIsAnInvalidArgumentAndLogicError) {
  // Compatibility guarantee: pre-framework callers caught
  // std::invalid_argument (and hence std::logic_error).
  EXPECT_THROW(require_positive(-5), std::invalid_argument);
  EXPECT_THROW(require_positive(-5), std::logic_error);
}

TEST(ContractThrow, ViolationCarriesKindExpressionAndLocation) {
  try {
    require_positive(-1);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_STREQ(e.kind(), "precondition");
    EXPECT_STREQ(e.expression(), "x > 0");
    EXPECT_NE(std::string(e.file()).find("test_contract.cpp"),
              std::string::npos);
    EXPECT_GT(e.line(), 0);
    const std::string what = e.what();
    EXPECT_NE(what.find("x must be positive"), std::string::npos);
    EXPECT_NE(what.find("precondition `x > 0` violated at"),
              std::string::npos);
  }
}

TEST(ContractThrow, AssertReportsAssertionKind) {
  try {
    assert_even(3);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_STREQ(e.kind(), "assertion");
  }
}

TEST(ContractThrow, AuditReportsInvariantKind) {
  static_assert(RTCAC_AUDIT_ENABLED == 1,
                "this TU defines RTCAC_CONTRACT_AUDIT");
  try {
    audit_small(1000);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_STREQ(e.kind(), "invariant");
  }
}

TEST(ContractThrow, MessageIsEvaluatedLazily) {
  int evaluations = 0;
  auto expensive_message = [&evaluations] {
    ++evaluations;
    return std::string("expensive");
  };
  RTCAC_REQUIRE(true, expensive_message());
  EXPECT_EQ(evaluations, 0);
  EXPECT_THROW(RTCAC_REQUIRE(false, expensive_message()), ContractViolation);
  EXPECT_EQ(evaluations, 1);
}

TEST(ContractThrow, MessageAcceptsStringExpressions) {
  const int id = 42;
  try {
    RTCAC_REQUIRE(id < 0, "bad id " + std::to_string(id));
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("bad id 42"), std::string::npos);
  }
}

TEST(ContractThrow, LibraryModeIntrospectionIsConsistent) {
  // The linked rtcac_util reports the build-wide mode; whatever it is,
  // it must be one of the three valid settings, and audits_enabled()
  // must agree with its definition.
  const int mode = library_contract_mode();
  EXPECT_TRUE(mode == 0 || mode == 1 || mode == 2);
  if (mode == 0) {
    EXPECT_FALSE(audits_enabled());
  }
}

}  // namespace
}  // namespace rtcac
