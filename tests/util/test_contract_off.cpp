// Contract framework, off mode (RTCAC_CONTRACT_MODE == 0): every check in
// this translation unit must compile to nothing — neither the condition
// nor the message expression is evaluated.

#undef RTCAC_CONTRACT_MODE
#define RTCAC_CONTRACT_MODE 0
#ifndef RTCAC_CONTRACT_AUDIT
#define RTCAC_CONTRACT_AUDIT 1
#endif
#include "util/contract.h"

#include <gtest/gtest.h>

#include <string>

namespace rtcac {
namespace {

TEST(ContractOff, FailingChecksAreNoOps) {
  EXPECT_NO_THROW(RTCAC_REQUIRE(false, "ignored"));
  EXPECT_NO_THROW(RTCAC_ASSERT(false, "ignored"));
  EXPECT_NO_THROW(RTCAC_INVARIANT_AUDIT(false, "ignored"));
}

TEST(ContractOff, ConditionIsNotEvaluated) {
  int evaluations = 0;
  // [[maybe_unused]]: in off mode the macro discards its arguments, so
  // the lambda is never referenced at all.
  [[maybe_unused]] auto failing_condition = [&evaluations] {
    ++evaluations;
    return false;
  };
  RTCAC_REQUIRE(failing_condition(), "ignored");
  RTCAC_ASSERT(failing_condition(), "ignored");
  EXPECT_EQ(evaluations, 0);
}

TEST(ContractOff, MessageIsNotEvaluated) {
  int evaluations = 0;
  [[maybe_unused]] auto expensive_message = [&evaluations] {
    ++evaluations;
    return std::string("expensive");
  };
  RTCAC_REQUIRE(false, expensive_message());
  EXPECT_EQ(evaluations, 0);
}

TEST(ContractOff, AuditsCompileOutEvenWhenAuditMacroDefined) {
  // RTCAC_CONTRACT_AUDIT is defined in this TU, but off mode wins: the
  // audit gate requires a live contract mode.
  static_assert(RTCAC_AUDIT_ENABLED == 0,
                "audits must be dead in off mode");
  int evaluations = 0;
  [[maybe_unused]] auto counting_condition = [&evaluations] {
    ++evaluations;
    return false;
  };
  RTCAC_INVARIANT_AUDIT(counting_condition(), "ignored");
  EXPECT_EQ(evaluations, 0);
}

}  // namespace
}  // namespace rtcac
