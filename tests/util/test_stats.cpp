// Unit tests for the statistics helpers.

#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace rtcac {
namespace {

TEST(SummaryStats, Empty) {
  const SummaryStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(SummaryStats, SingleSample) {
  SummaryStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(SummaryStats, KnownMoments) {
  SummaryStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(SummaryStats, NegativeValues) {
  SummaryStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
}

TEST(SummaryStats, MergeMatchesSequential) {
  SummaryStats a;
  SummaryStats b;
  SummaryStats all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SummaryStats, MergeWithEmpty) {
  SummaryStats a;
  a.add(1.0);
  SummaryStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(SummaryStats, ToStringMentionsCount) {
  SummaryStats s;
  s.add(1);
  EXPECT_NE(s.to_string().find("n=1"), std::string::npos);
}

TEST(Histogram, RejectsBadConfig) {
  EXPECT_THROW(Histogram(0.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 0), std::invalid_argument);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(1.0, 4);
  for (const double x : {0.5, 1.5, 1.9, 3.0, 10.0}) h.add(x);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, NegativeSamplesClampToFirstBucket) {
  Histogram h(1.0, 2);
  h.add(-5.0);
  EXPECT_EQ(h.bucket(0), 1u);
}

TEST(Histogram, QuantileUpperBound) {
  Histogram h(1.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10) + 0.5);
  EXPECT_DOUBLE_EQ(h.quantile_upper_bound(0.1), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile_upper_bound(0.95), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile_upper_bound(1.0), 10.0);
}

TEST(Histogram, QuantileInOverflowIsInfinite) {
  Histogram h(1.0, 2);
  h.add(100.0);
  EXPECT_TRUE(std::isinf(h.quantile_upper_bound(1.0)));
}

TEST(Histogram, EmptyQuantileIsZero) {
  const Histogram h(1.0, 2);
  EXPECT_DOUBLE_EQ(h.quantile_upper_bound(0.5), 0.0);
}

}  // namespace
}  // namespace rtcac
