// Unit tests for the cell-level network simulator: output-port semantics,
// priority service, drops, and end-to-end delay accounting on small
// hand-analyzable topologies.

#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/traffic.h"

namespace rtcac {
namespace {

// Terminal -> switch -> switch -> terminal line.
struct Line {
  Topology topo;
  NodeId term_a, sw1, sw2, term_b;
  LinkId access, middle, delivery;

  Line() {
    term_a = topo.add_terminal("a");
    sw1 = topo.add_switch("s1");
    sw2 = topo.add_switch("s2");
    term_b = topo.add_terminal("b");
    access = topo.add_link(term_a, sw1);
    middle = topo.add_link(sw1, sw2);
    delivery = topo.add_link(sw2, term_b);
  }

  [[nodiscard]] Route route() const { return {access, middle, delivery}; }
};

TEST(OutputPort, PriorityOrderAndFifoWithinLevel) {
  OutputPort port(2, 0);
  Cell c1;
  c1.connection = 1;
  Cell c2;
  c2.connection = 2;
  Cell c3;
  c3.connection = 3;
  port.enqueue(c1, 1, 0);  // low priority first in
  port.enqueue(c2, 0, 0);  // high priority
  port.enqueue(c3, 1, 0);
  EXPECT_EQ(port.backlog(), 3u);
  EXPECT_EQ(port.dequeue(1)->cell.connection, 2u);  // high priority wins
  EXPECT_EQ(port.dequeue(2)->cell.connection, 1u);  // then FIFO at level 1
  EXPECT_EQ(port.dequeue(3)->cell.connection, 3u);
  EXPECT_FALSE(port.dequeue(4).has_value());
}

TEST(OutputPort, WaitAccounting) {
  OutputPort port(1, 0);
  Cell cell;
  cell.connection = 1;
  port.enqueue(cell, 0, 10);
  const auto dep = port.dequeue(17);
  EXPECT_EQ(dep->wait, 7);
  EXPECT_EQ(port.max_wait(0), 7);
}

TEST(OutputPort, CapacityDrops) {
  OutputPort port(1, 2);
  EXPECT_TRUE(port.enqueue(Cell{}, 0, 0));
  EXPECT_TRUE(port.enqueue(Cell{}, 0, 0));
  EXPECT_FALSE(port.enqueue(Cell{}, 0, 0));
  EXPECT_EQ(port.dropped(), 1u);
  EXPECT_EQ(port.max_backlog(0), 2u);
}

TEST(OutputPort, RejectsBadPriority) {
  OutputPort port(1, 0);
  EXPECT_THROW(port.enqueue(Cell{}, 1, 0), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(port.max_backlog(1)),
               std::invalid_argument);
  EXPECT_THROW(OutputPort(0, 0), std::invalid_argument);
}

TEST(SimNetwork, UncontendedCbrHasZeroQueueing) {
  Line line;
  SimNetwork net(line.topo, SimNetwork::Options{1, 0});
  net.install(1, line.route(), 0,
              std::make_unique<GreedySourceScheduler>(
                  TrafficDescriptor::cbr(0.25), 0, 32));
  net.run_until(200);
  const SimSink& sink = net.sink(1);
  EXPECT_EQ(sink.delivered(), 32u);
  EXPECT_DOUBLE_EQ(sink.queue_delay().max(), 0.0);
  EXPECT_EQ(net.total_drops(), 0u);
}

TEST(SimNetwork, DeliveryLatencyIsHopCount) {
  // 3 links, zero propagation: a cell emitted at t lands at t + 3 when
  // nothing queues.
  Line line;
  SimNetwork net(line.topo, SimNetwork::Options{1, 0});
  net.install(1, line.route(), 0,
              std::make_unique<PeriodicSourceScheduler>(10, 0, 1));
  net.run_until(50);
  EXPECT_EQ(net.sink(1).delivered(), 1u);
  EXPECT_EQ(net.sink(1).last_delivery(), 3);
}

TEST(SimNetwork, PropagationDelayAdds) {
  Topology topo;
  const NodeId a = topo.add_terminal();
  const NodeId s = topo.add_switch();
  const NodeId b = topo.add_terminal();
  const LinkId l1 = topo.add_link(a, s, 5);
  const LinkId l2 = topo.add_link(s, b, 7);
  SimNetwork net(topo, SimNetwork::Options{1, 0});
  net.install(1, Route{l1, l2}, 0,
              std::make_unique<PeriodicSourceScheduler>(10, 0, 1));
  net.run_until(100);
  EXPECT_EQ(net.sink(1).last_delivery(), 2 + 5 + 7);
}

TEST(SimNetwork, TwoSourcesContendOneQueues) {
  // Both terminals emit a cell at t = 0 toward the same output link: one
  // cell waits exactly one tick.
  Topology topo;
  const NodeId t1 = topo.add_terminal();
  const NodeId t2 = topo.add_terminal();
  const NodeId sw = topo.add_switch();
  const NodeId dst = topo.add_terminal();
  const LinkId a1 = topo.add_link(t1, sw);
  const LinkId a2 = topo.add_link(t2, sw);
  const LinkId out = topo.add_link(sw, dst);
  SimNetwork net(topo, SimNetwork::Options{1, 0});
  net.install(1, Route{a1, out}, 0,
              std::make_unique<PeriodicSourceScheduler>(100, 0, 1));
  net.install(2, Route{a2, out}, 0,
              std::make_unique<PeriodicSourceScheduler>(100, 0, 1));
  net.run_until(300);
  const double w1 = net.sink(1).queue_delay().max();
  const double w2 = net.sink(2).queue_delay().max();
  EXPECT_DOUBLE_EQ(std::min(w1, w2), 0.0);
  EXPECT_DOUBLE_EQ(std::max(w1, w2), 1.0);
  EXPECT_EQ(net.max_backlog(sw, topo.out_port(out), 0), 2u);
}

TEST(SimNetwork, HighPriorityPreemptsLowInServiceOrder) {
  Topology topo;
  const NodeId t1 = topo.add_terminal();
  const NodeId t2 = topo.add_terminal();
  const NodeId sw = topo.add_switch();
  const NodeId dst = topo.add_terminal();
  const LinkId a1 = topo.add_link(t1, sw);
  const LinkId a2 = topo.add_link(t2, sw);
  const LinkId out = topo.add_link(sw, dst);
  SimNetwork net(topo, SimNetwork::Options{2, 0});
  // Low-priority source floods; high-priority source sends sparse cells.
  net.install(1, Route{a1, out}, 1,
              std::make_unique<GreedySourceScheduler>(
                  TrafficDescriptor::cbr(1.0), 0, 200));
  net.install(2, Route{a2, out}, 0,
              std::make_unique<PeriodicSourceScheduler>(50, 10, 3));
  net.run_until(400);
  // The high-priority cells wait at most one cell time (a low cell already
  // in transmission cannot be preempted mid-cell... in this slotted model,
  // service decisions happen per tick, so the wait is bounded by 1).
  EXPECT_LE(net.sink(2).queue_delay().max(), 1.0);
  // The flooding low-priority stream must have queued substantially.
  EXPECT_GT(net.sink(1).queue_delay().max(), 1.0);
}

TEST(SimNetwork, FifoQueueOverflowDropsCells) {
  Topology topo;
  const NodeId t1 = topo.add_terminal();
  const NodeId t2 = topo.add_terminal();
  const NodeId sw = topo.add_switch();
  const NodeId dst = topo.add_terminal();
  const LinkId a1 = topo.add_link(t1, sw);
  const LinkId a2 = topo.add_link(t2, sw);
  const LinkId out = topo.add_link(sw, dst);
  SimNetwork net(topo, SimNetwork::Options{1, 4});
  // Two full-rate sources into one link: overload, queue capacity 4.
  net.install(1, Route{a1, out}, 0,
              std::make_unique<GreedySourceScheduler>(
                  TrafficDescriptor::cbr(1.0), 0, 64));
  net.install(2, Route{a2, out}, 0,
              std::make_unique<GreedySourceScheduler>(
                  TrafficDescriptor::cbr(1.0), 0, 64));
  net.run_until(400);
  EXPECT_GT(net.total_drops(), 0u);
  EXPECT_LE(net.max_backlog(sw, topo.out_port(out), 0), 4u);
}

TEST(SimNetwork, AccessSerializationChargedSeparately) {
  // Two connections from the SAME terminal emitting at the same tick: the
  // access link serializes them; the wait shows up as access wait, not as
  // network queueing delay.
  Topology topo;
  const NodeId term = topo.add_terminal();
  const NodeId sw = topo.add_switch();
  const NodeId dst = topo.add_terminal();
  const LinkId access = topo.add_link(term, sw);
  const LinkId out = topo.add_link(sw, dst);
  SimNetwork net(topo, SimNetwork::Options{1, 0});
  net.install(1, Route{access, out}, 0,
              std::make_unique<PeriodicSourceScheduler>(100, 0, 2));
  net.install(2, Route{access, out}, 0,
              std::make_unique<PeriodicSourceScheduler>(100, 0, 2));
  net.run_until(400);
  const double access_wait = net.access_wait(1).max() +
                             net.access_wait(2).max();
  EXPECT_DOUBLE_EQ(access_wait, 1.0);  // one of them waited one tick
  EXPECT_DOUBLE_EQ(net.sink(1).queue_delay().max(), 0.0);
  EXPECT_DOUBLE_EQ(net.sink(2).queue_delay().max(), 0.0);
}

TEST(SimNetwork, InstallValidation) {
  Line line;
  SimNetwork net(line.topo, SimNetwork::Options{1, 0});
  EXPECT_THROW(net.install(1, line.route(), 5,
                           std::make_unique<PeriodicSourceScheduler>(10)),
               std::invalid_argument);
  net.install(1, line.route(), 0,
              std::make_unique<PeriodicSourceScheduler>(10));
  EXPECT_THROW(net.install(1, line.route(), 0,
                           std::make_unique<PeriodicSourceScheduler>(10)),
               std::invalid_argument);
  EXPECT_THROW(net.install(2, Route{line.middle, line.access}, 0,
                           std::make_unique<PeriodicSourceScheduler>(10)),
               std::invalid_argument);
}

TEST(SimNetwork, DeterministicAcrossRuns) {
  const auto run_once = [] {
    Line line;
    SimNetwork net(line.topo, SimNetwork::Options{1, 0});
    net.install(1, line.route(), 0,
                std::make_unique<RandomOnOffSourceScheduler>(
                    TrafficDescriptor::vbr(0.5, 0.1, 4), 99));
    net.run_until(2000);
    return std::make_pair(net.sink(1).delivered(),
                          net.sink(1).queue_delay().mean());
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace rtcac
