// Unit tests for the deterministic discrete-event core.

#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace rtcac {
namespace {

TEST(EventQueue, EmptyBehaviour) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_THROW(q.run_next(), std::logic_error);
}

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(5, EventPhase::kArrival, [&] { order.push_back(5); });
  q.schedule(1, EventPhase::kArrival, [&] { order.push_back(1); });
  q.schedule(3, EventPhase::kArrival, [&] { order.push_back(3); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5}));
}

TEST(EventQueue, ArrivalsBeforeTransmitsWithinTick) {
  EventQueue q;
  std::vector<std::string> order;
  q.schedule(2, EventPhase::kTransmit, [&] { order.push_back("tx"); });
  q.schedule(2, EventPhase::kArrival, [&] { order.push_back("arr"); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<std::string>{"arr", "tx"}));
}

TEST(EventQueue, TimersRunAfterMessagesWithinTick) {
  // Phase 2 (kTimer) fires only after every arrival and transmission of
  // the same tick: a retransmission timer must not beat the confirmation
  // it is guarding against losing.
  EventQueue q;
  std::vector<std::string> order;
  q.schedule(2, EventPhase::kTimer, [&] { order.push_back("timer"); });
  q.schedule(2, EventPhase::kTransmit, [&] { order.push_back("tx"); });
  q.schedule(2, EventPhase::kArrival, [&] { order.push_back("arr"); });
  q.schedule(1, EventPhase::kTimer, [&] { order.push_back("early"); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order,
            (std::vector<std::string>{"early", "arr", "tx", "timer"}));
}

TEST(EventQueue, InsertionOrderBreaksTies) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(7, EventPhase::kArrival, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunNextReturnsEventTime) {
  EventQueue q;
  q.schedule(9, EventPhase::kArrival, [] {});
  EXPECT_EQ(q.next_time(), 9);
  EXPECT_EQ(q.run_next(), 9);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  std::vector<Tick> fired;
  std::function<void(Tick)> chain = [&](Tick t) {
    fired.push_back(t);
    if (t < 5) {
      q.schedule(t + 1, EventPhase::kArrival, [&, t] { chain(t + 1); });
    }
  };
  q.schedule(0, EventPhase::kArrival, [&] { chain(0); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(fired, (std::vector<Tick>{0, 1, 2, 3, 4, 5}));
}

TEST(EventQueue, NegativeTimeRejected) {
  EventQueue q;
  EXPECT_THROW(q.schedule(-1, EventPhase::kArrival, [] {}),
               std::invalid_argument);
}

TEST(Simulator, RunUntilProcessesInclusive) {
  Simulator sim;
  int hits = 0;
  sim.schedule(3, EventPhase::kArrival, [&] { ++hits; });
  sim.schedule(4, EventPhase::kArrival, [&] { ++hits; });
  EXPECT_EQ(sim.run_until(3), 1u);
  EXPECT_EQ(sim.now(), 3);
  EXPECT_EQ(hits, 1);
  sim.run_until(10);
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(sim.now(), 10);
}

TEST(Simulator, SchedulingIntoPastThrows) {
  Simulator sim;
  sim.schedule(5, EventPhase::kArrival, [] {});
  sim.run_until(5);
  EXPECT_THROW(sim.schedule(4, EventPhase::kArrival, [] {}),
               std::logic_error);
}

}  // namespace
}  // namespace rtcac
