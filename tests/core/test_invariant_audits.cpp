// Invariant-audit coverage: corrupt library state through the test-access
// friends and verify RTCAC_INVARIANT_AUDIT catches it on the next
// mutation.  These tests exercise the library as built, so they only run
// when the library compiled its audits in (Debug / RTCAC_AUDIT=ON builds)
// and responds to violations by throwing; elsewhere they skip.

#include <gtest/gtest.h>

#include "core/bitstream.h"
#include "core/stream_ops.h"
#include "core/switch_cac.h"
#include "core/traffic.h"
#include "sim/event_queue.h"
#include "util/contract.h"

namespace rtcac {

// Friends of the library classes (declared in their headers); defined
// here so only the audit tests can reach internal state.
struct BitStreamTestAccess {
  template <typename Num>
  static std::vector<BasicSegment<Num>>& segments(BasicBitStream<Num>& s) {
    return s.segments_;
  }
};

struct SwitchCacTestAccess {
  template <typename Num>
  static std::vector<BasicBitStream<Num>>& arrival_aggregates(
      BasicSwitchCac<Num>& cac) {
    return cac.arrival_aggr_;
  }
  template <typename Num>
  static std::vector<BasicBitStream<Num>>& offered_cache(
      BasicSwitchCac<Num>& cac) {
    return cac.offered_cache_;
  }
  template <typename Num>
  static std::size_t queue_index(const BasicSwitchCac<Num>& cac,
                                 std::size_t out_port, Priority priority) {
    return cac.queue_index(out_port, priority);
  }
};

namespace {

#define RTCAC_SKIP_UNLESS_THROWING_AUDITS()                              \
  do {                                                                   \
    if (!audits_enabled() || library_contract_mode() != 1) {             \
      GTEST_SKIP() << "library built without throwing invariant audits"; \
    }                                                                    \
  } while (false)

TEST(InvariantAudit, CorruptedBitStreamIsCaughtByTransforms) {
  RTCAC_SKIP_UNLESS_THROWING_AUDITS();
  BitStream s = TrafficDescriptor::cbr(0.5).to_bitstream();
  ASSERT_TRUE(s.invariants_hold());
  // Break monotonicity behind the constructor's back: append a segment
  // with a *higher* rate than its predecessor.
  auto& segs = BitStreamTestAccess::segments(s);
  segs.push_back(Segment{segs.back().rate + 10.0, segs.back().start + 5.0});
  ASSERT_FALSE(s.invariants_hold());
  EXPECT_THROW(static_cast<void>(multiplex(s, s)), ContractViolation);
}

TEST(InvariantAudit, SwitchCacBandwidthConservationIsAudited) {
  RTCAC_SKIP_UNLESS_THROWING_AUDITS();
  SwitchCac::Config cfg;
  cfg.in_ports = 2;
  cfg.out_ports = 2;
  cfg.priorities = 1;
  SwitchCac cac(cfg);
  const BitStream s = TrafficDescriptor::cbr(0.3).to_bitstream();
  cac.add(1, 0, 0, 0, s);
  ASSERT_TRUE(cac.bandwidth_conserved());

  // Inject phantom bandwidth into one S_ia cell without a matching
  // connection record; the next mutation's audit must notice.
  auto& cells = SwitchCacTestAccess::arrival_aggregates(cac);
  cells[0] = multiplex(cells[0], TrafficDescriptor::cbr(0.2).to_bitstream());
  ASSERT_FALSE(cac.bandwidth_conserved());
  EXPECT_THROW(cac.add(2, 1, 1, 0, s), ContractViolation);
}

TEST(InvariantAudit, SwitchCacStateConsistencyIsAudited) {
  RTCAC_SKIP_UNLESS_THROWING_AUDITS();
  SwitchCac::Config cfg;
  cfg.in_ports = 2;
  cfg.out_ports = 1;
  cfg.priorities = 1;
  SwitchCac cac(cfg);
  const BitStream s = TrafficDescriptor::cbr(0.25).to_bitstream();
  cac.add(7, 0, 0, 0, s);
  cac.add(8, 1, 0, 0, s);
  // Zero out connection 8's cached aggregate while its record remains.
  // remove(7) repairs only connection 7's cell (it rebuilds from the
  // records), so the post-mutation audit must flag the other cell.
  auto& cells = SwitchCacTestAccess::arrival_aggregates(cac);
  for (auto& cell : cells) {
    if (!cell.is_zero()) cell = BitStream{};
  }
  ASSERT_FALSE(cac.state_consistent());
  EXPECT_THROW(static_cast<void>(cac.remove(7)), ContractViolation);
}

TEST(InvariantAudit, SwitchCacCacheCoherenceIsAudited) {
  RTCAC_SKIP_UNLESS_THROWING_AUDITS();
  SwitchCac::Config cfg;
  cfg.in_ports = 2;
  cfg.out_ports = 2;
  cfg.priorities = 2;
  SwitchCac cac(cfg);
  const BitStream s = TrafficDescriptor::cbr(0.3).to_bitstream();
  cac.add(1, 0, 0, 0, s);
  cac.add(2, 0, 1, 0, s);
  // Warm the out-port-1 caches, then corrupt the cached offered
  // aggregate there.  A mutation at out-port 0 invalidates only its own
  // port's entries, so the corrupted entry stays marked clean and the
  // post-mutation coherence audit must flag it.
  ASSERT_TRUE(cac.computed_bound(1, 0).has_value());
  ASSERT_TRUE(cac.cache_coherent());
  auto& offered = SwitchCacTestAccess::offered_cache(cac);
  const std::size_t q = SwitchCacTestAccess::queue_index(cac, 1, 0);
  offered[q] =
      multiplex(offered[q], TrafficDescriptor::cbr(0.2).to_bitstream());
  ASSERT_FALSE(cac.cache_coherent());
  EXPECT_THROW(cac.add(3, 1, 0, 0, s), ContractViolation);
}

TEST(InvariantAudit, EventQueuePopMonotonicityIsAudited) {
  RTCAC_SKIP_UNLESS_THROWING_AUDITS();
  EventQueue q;
  q.schedule(10, EventPhase::kArrival, [] {});
  EXPECT_EQ(q.run_next(), 10);
  EXPECT_EQ(q.last_popped(), 10);
  // Scheduling into the simulated past is a harness bug (Simulator
  // guards it); the queue's own audit is the last line of defense.
  q.schedule(5, EventPhase::kArrival, [] {});
  EXPECT_THROW(static_cast<void>(q.run_next()), ContractViolation);
}

TEST(InvariantAudit, HealthyWorkloadsPassAudits) {
  // A mixed add/remove workload runs clean under full auditing — the
  // audits reject corruption, not legitimate state.
  SwitchCac::Config cfg;
  cfg.in_ports = 3;
  cfg.out_ports = 2;
  cfg.priorities = 2;
  SwitchCac cac(cfg);
  const BitStream a = TrafficDescriptor::cbr(0.2).to_bitstream();
  const BitStream b = TrafficDescriptor::cbr(0.1).to_bitstream();
  cac.add(1, 0, 0, 0, a);
  cac.add(2, 1, 0, 1, b);
  cac.add(3, 2, 1, 0, a);
  EXPECT_TRUE(cac.remove(2));
  cac.add(4, 1, 1, 1, b);
  EXPECT_TRUE(cac.remove(1));
  EXPECT_TRUE(cac.bandwidth_conserved());
  EXPECT_TRUE(cac.state_consistent());
  EXPECT_TRUE(cac.cache_coherent());
}

}  // namespace
}  // namespace rtcac
