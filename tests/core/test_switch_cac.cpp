// Unit tests for the per-switch CAC state machine (Section 4.3).

#include "core/switch_cac.h"

#include <gtest/gtest.h>

#include "core/stream_ops.h"
#include "core/traffic.h"

namespace rtcac {
namespace {

SwitchCac::Config small_config(std::size_t priorities = 1,
                               double bound = 32) {
  SwitchCac::Config cfg;
  cfg.in_ports = 3;
  cfg.out_ports = 2;
  cfg.priorities = priorities;
  cfg.advertised_bound = bound;
  return cfg;
}

TEST(SwitchCac, RejectsDegenerateConfig) {
  SwitchCac::Config cfg;
  EXPECT_THROW(SwitchCac{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.advertised_bound = 0;
  EXPECT_THROW(SwitchCac{cfg}, std::invalid_argument);
}

TEST(SwitchCac, AdvertisedBoundsAreConfigurable) {
  SwitchCac cac(small_config(2, 32));
  EXPECT_DOUBLE_EQ(cac.advertised(0, 0), 32);
  cac.set_advertised(0, 1, 64);
  EXPECT_DOUBLE_EQ(cac.advertised(0, 1), 64);
  EXPECT_DOUBLE_EQ(cac.advertised(1, 1), 32);
  EXPECT_THROW(cac.set_advertised(0, 0, 0), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(cac.advertised(5, 0)),
               std::invalid_argument);
}

TEST(SwitchCac, EmptySwitchHasZeroBounds) {
  const SwitchCac cac(small_config());
  EXPECT_DOUBLE_EQ(cac.computed_bound(0, 0).value(), 0.0);
  EXPECT_DOUBLE_EQ(cac.buffer_requirement(0, 0).value(), 0.0);
}

TEST(SwitchCac, SingleFeasibleConnectionAdmitsWithZeroBound) {
  SwitchCac cac(small_config());
  const BitStream s = TrafficDescriptor::cbr(0.5).to_bitstream();
  const auto check = cac.check(0, 0, 0, s);
  EXPECT_TRUE(check.admitted) << check.reason;
  EXPECT_DOUBLE_EQ(check.bound_at_priority.value(), 0.0);
  cac.add(1, 0, 0, 0, s);
  EXPECT_DOUBLE_EQ(cac.computed_bound(0, 0).value(), 0.0);
}

TEST(SwitchCac, TwoInputsContendAtOutput) {
  // Two CBR 0.5 streams from different in-ports: both start with a
  // full-rate cell, so the aggregate hits rate 2 briefly -> 1 cell of
  // backlog, 1 cell time of delay.
  SwitchCac cac(small_config());
  const BitStream s = TrafficDescriptor::cbr(0.5).to_bitstream();
  cac.add(1, 0, 0, 0, s);
  const auto check = cac.check(1, 0, 0, s);
  EXPECT_TRUE(check.admitted);
  EXPECT_GT(check.bound_at_priority.value(), 0.0);
  cac.add(2, 1, 0, 0, s);
  EXPECT_NEAR(cac.computed_bound(0, 0).value(), 1.0, 1e-9);
}

TEST(SwitchCac, SameInLinkTrafficIsFilteredBeforeContention) {
  // Two connections sharing ONE in-link cannot arrive simultaneously —
  // the link serializes them, so the bound stays smaller than the
  // two-in-link case.
  SwitchCac shared(small_config());
  SwitchCac split(small_config());
  const BitStream s = TrafficDescriptor::cbr(0.4).to_bitstream();
  shared.add(1, 0, 0, 0, s);
  shared.add(2, 0, 0, 0, s);
  split.add(1, 0, 0, 0, s);
  split.add(2, 1, 0, 0, s);
  EXPECT_LT(shared.computed_bound(0, 0).value(),
            split.computed_bound(0, 0).value());
}

TEST(SwitchCac, RejectsWhenBoundWouldExceedAdvertised) {
  // Tiny advertised bound: the second simultaneous-burst stream pushes
  // the worst case past it.
  SwitchCac cac(small_config(1, 0.5));
  const BitStream s = TrafficDescriptor::cbr(0.5).to_bitstream();
  EXPECT_TRUE(cac.check(0, 0, 0, s).admitted);
  cac.add(1, 0, 0, 0, s);
  const auto check = cac.check(1, 0, 0, s);
  EXPECT_FALSE(check.admitted);
  EXPECT_NE(check.reason.find("delay bound"), std::string::npos);
}

TEST(SwitchCac, RejectsOverloadedOutput) {
  SwitchCac cac(small_config());
  cac.add(1, 0, 0, 0, TrafficDescriptor::cbr(0.7).to_bitstream());
  const auto check =
      cac.check(1, 0, 0, TrafficDescriptor::cbr(0.6).to_bitstream());
  EXPECT_FALSE(check.admitted);  // 1.3 sustained load: unbounded
  EXPECT_NE(check.reason.find("unbounded"), std::string::npos);
}

TEST(SwitchCac, OutputsAreIndependent) {
  SwitchCac cac(small_config());
  cac.add(1, 0, 0, 0, TrafficDescriptor::cbr(0.9).to_bitstream());
  const auto check =
      cac.check(1, 1, 0, TrafficDescriptor::cbr(0.9).to_bitstream());
  EXPECT_TRUE(check.admitted);
}

TEST(SwitchCac, CheckDoesNotMutate) {
  SwitchCac cac(small_config());
  const BitStream s = TrafficDescriptor::cbr(0.5).to_bitstream();
  (void)cac.check(0, 0, 0, s);
  EXPECT_EQ(cac.connection_count(), 0u);
  EXPECT_DOUBLE_EQ(cac.computed_bound(0, 0).value(), 0.0);
  EXPECT_TRUE(cac.arrival_aggregate(0, 0, 0).is_zero());
}

TEST(SwitchCac, AddRemoveRestoresState) {
  SwitchCac cac(small_config());
  const BitStream a = TrafficDescriptor::cbr(0.3).to_bitstream();
  const BitStream b = TrafficDescriptor::vbr(0.5, 0.1, 4).to_bitstream();
  cac.add(1, 0, 0, 0, a);
  const double bound_before = cac.computed_bound(0, 0).value();
  cac.add(2, 1, 0, 0, b);
  EXPECT_GT(cac.computed_bound(0, 0).value(), bound_before);
  EXPECT_TRUE(cac.remove(2));
  EXPECT_DOUBLE_EQ(cac.computed_bound(0, 0).value(), bound_before);
  EXPECT_TRUE(cac.state_consistent());
  EXPECT_FALSE(cac.remove(2));  // already gone
}

TEST(SwitchCac, ManySetupTeardownCyclesDoNotDrift) {
  SwitchCac cac(small_config());
  const BitStream keep = TrafficDescriptor::cbr(0.25).to_bitstream();
  cac.add(1, 0, 0, 0, keep);
  const double baseline = cac.computed_bound(0, 0).value();
  const BitStream churn = TrafficDescriptor::vbr(0.7, 0.05, 9).to_bitstream();
  for (int i = 0; i < 100; ++i) {
    cac.add(1000 + i, 1, 0, 0, churn);
    cac.remove(1000 + i);
  }
  EXPECT_DOUBLE_EQ(cac.computed_bound(0, 0).value(), baseline);
  EXPECT_TRUE(cac.state_consistent());
}

TEST(SwitchCac, DuplicateIdThrows) {
  SwitchCac cac(small_config());
  const BitStream s = TrafficDescriptor::cbr(0.1).to_bitstream();
  cac.add(7, 0, 0, 0, s);
  EXPECT_THROW(cac.add(7, 1, 0, 0, s), std::invalid_argument);
}

TEST(SwitchCac, PortRangeChecks) {
  SwitchCac cac(small_config());
  const BitStream s = TrafficDescriptor::cbr(0.1).to_bitstream();
  EXPECT_THROW(cac.check(3, 0, 0, s), std::invalid_argument);
  EXPECT_THROW(cac.check(0, 2, 0, s), std::invalid_argument);
  EXPECT_THROW(cac.check(0, 0, 1, s), std::invalid_argument);
}

// --- multi-priority behaviour ------------------------------------------------

TEST(SwitchCac, HigherPriorityTrafficInflatesLowerPriorityBound) {
  SwitchCac cac(small_config(2, 64));
  const BitStream lp = TrafficDescriptor::cbr(0.3).to_bitstream();
  cac.add(1, 0, 0, 1, lp);
  const double lp_alone = cac.computed_bound(0, 1).value();
  cac.add(2, 1, 0, 0, TrafficDescriptor::vbr(0.6, 0.2, 8).to_bitstream());
  EXPECT_GT(cac.computed_bound(0, 1).value(), lp_alone);
}

TEST(SwitchCac, LowerPriorityTrafficDoesNotAffectHigher) {
  SwitchCac cac(small_config(2, 64));
  cac.add(1, 0, 0, 0, TrafficDescriptor::cbr(0.3).to_bitstream());
  const double hp_before = cac.computed_bound(0, 0).value();
  cac.add(2, 1, 0, 1, TrafficDescriptor::vbr(0.6, 0.2, 8).to_bitstream());
  EXPECT_DOUBLE_EQ(cac.computed_bound(0, 0).value(), hp_before);
}

TEST(SwitchCac, NewHighPriorityConnectionCheckedAgainstLowerLevels) {
  // A newcomer at priority 0 must not wreck an existing priority-1
  // connection's bound: with a tight advertised bound at level 1, the
  // check fails even though level 0 itself would be fine.
  SwitchCac cac(small_config(2, 32));
  cac.set_advertised(0, 1, 1.0);
  cac.add(1, 0, 0, 1, TrafficDescriptor::cbr(0.4).to_bitstream());
  ASSERT_LE(cac.computed_bound(0, 1).value(), 1.0);
  const auto check =
      cac.check(1, 0, 0, TrafficDescriptor::vbr(0.5, 0.2, 16).to_bitstream());
  EXPECT_FALSE(check.admitted);
  EXPECT_NE(check.reason.find("priority 1"), std::string::npos);
}

TEST(SwitchCac, SplittingPrioritiesHelpsUrgentTraffic) {
  // The paper's motivation for multi-level support: the urgent stream's
  // bound with a priority of its own is no worse than FIFO-sharing with
  // the bursty stream.
  const BitStream urgent = TrafficDescriptor::cbr(0.2).to_bitstream();
  const BitStream bursty = TrafficDescriptor::vbr(0.7, 0.1, 12).to_bitstream();

  SwitchCac fifo(small_config(1, 256));
  fifo.add(1, 0, 0, 0, urgent);
  fifo.add(2, 1, 0, 0, bursty);
  const double shared = fifo.computed_bound(0, 0).value();

  SwitchCac prio(small_config(2, 256));
  prio.add(1, 0, 0, 0, urgent);
  prio.add(2, 1, 0, 1, bursty);
  const double own_level = prio.computed_bound(0, 0).value();

  EXPECT_LE(own_level, shared + 1e-9);
}

TEST(SwitchCac, CheckReportsBoundsForAllPriorities) {
  SwitchCac cac(small_config(3, 64));
  cac.add(1, 0, 0, 0, TrafficDescriptor::cbr(0.2).to_bitstream());
  cac.add(2, 1, 0, 2, TrafficDescriptor::cbr(0.2).to_bitstream());
  const auto check =
      cac.check(2, 0, 1, TrafficDescriptor::cbr(0.2).to_bitstream());
  ASSERT_TRUE(check.admitted);
  ASSERT_EQ(check.bounds.size(), 3u);
  EXPECT_DOUBLE_EQ(check.bounds[1].value(), check.bound_at_priority.value());
}

TEST(SwitchCac, AddDefaultsToPermanentLease) {
  SwitchCac cac(small_config());
  cac.add(1, 0, 0, 0, TrafficDescriptor::cbr(0.2).to_bitstream());
  EXPECT_TRUE(cac.contains(1));
  EXPECT_EQ(cac.lease_expiry(1), SwitchCac::kPermanentLease);
  EXPECT_TRUE(cac.reclaim(1e18).empty());
  EXPECT_EQ(cac.connection_count(), 1u);
}

TEST(SwitchCac, ReclaimSweepsOnlyExpiredLeases) {
  SwitchCac cac(small_config());
  const BitStream s = TrafficDescriptor::cbr(0.1).to_bitstream();
  cac.add(1, 0, 0, 0, s, /*lease_expiry=*/10.0);
  cac.add(2, 1, 0, 0, s, /*lease_expiry=*/20.0);
  cac.add(3, 2, 0, 0, s);  // permanent
  EXPECT_TRUE(cac.reclaim(9.9).empty());
  // Expiry is inclusive: a lease ending exactly now is reclaimable.
  EXPECT_EQ(cac.reclaim(10.0), (std::vector<ConnectionId>{1}));
  EXPECT_FALSE(cac.contains(1));
  EXPECT_EQ(cac.reclaim(1e9), (std::vector<ConnectionId>{2}));
  EXPECT_EQ(cac.connection_ids(), (std::vector<ConnectionId>{3}));
  EXPECT_TRUE(cac.state_consistent());
  EXPECT_TRUE(cac.bandwidth_conserved());
}

TEST(SwitchCac, RenewAndPermanentExtendLeases) {
  SwitchCac cac(small_config());
  const BitStream s = TrafficDescriptor::cbr(0.1).to_bitstream();
  cac.add(1, 0, 0, 0, s, /*lease_expiry=*/10.0);
  cac.add(2, 1, 0, 0, s, /*lease_expiry=*/10.0);
  EXPECT_TRUE(cac.renew_lease(1, 100.0));
  EXPECT_DOUBLE_EQ(cac.lease_expiry(1), 100.0);
  EXPECT_TRUE(cac.make_permanent(2));
  EXPECT_EQ(cac.lease_expiry(2), SwitchCac::kPermanentLease);
  EXPECT_EQ(cac.reclaim(50.0), (std::vector<ConnectionId>{}));
  EXPECT_EQ(cac.reclaim(100.0), (std::vector<ConnectionId>{1}));
  // Unknown ids: renew/make_permanent report false, lease_expiry throws.
  EXPECT_FALSE(cac.renew_lease(99, 1.0));
  EXPECT_FALSE(cac.make_permanent(99));
  EXPECT_THROW(static_cast<void>(cac.lease_expiry(99)),
               std::invalid_argument);
  EXPECT_FALSE(cac.contains(99));
}

}  // namespace
}  // namespace rtcac
