// Unit tests for the bit-stream traffic model (paper Section 2).

#include "core/bitstream.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace rtcac {
namespace {

TEST(BitStream, DefaultIsZeroStream) {
  const BitStream s;
  EXPECT_TRUE(s.is_zero());
  EXPECT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.rate_at(0), 0.0);
  EXPECT_DOUBLE_EQ(s.bits_before(100), 0.0);
}

TEST(BitStream, ConstantStream) {
  const auto s = BitStream::constant(0.5);
  EXPECT_FALSE(s.is_zero());
  EXPECT_DOUBLE_EQ(s.rate_at(0), 0.5);
  EXPECT_DOUBLE_EQ(s.rate_at(1e9), 0.5);
  EXPECT_DOUBLE_EQ(s.bits_before(10), 5.0);
}

TEST(BitStream, SegmentsAndRates) {
  const BitStream s{{1.0, 0.0}, {0.5, 2.0}, {0.1, 6.0}};
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.rate_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.rate_at(1.999), 1.0);
  EXPECT_DOUBLE_EQ(s.rate_at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(s.rate_at(5.0), 0.5);
  EXPECT_DOUBLE_EQ(s.rate_at(6.0), 0.1);
  EXPECT_DOUBLE_EQ(s.rate_at(1e6), 0.1);
  EXPECT_DOUBLE_EQ(s.peak_rate(), 1.0);
  EXPECT_DOUBLE_EQ(s.final_rate(), 0.1);
}

TEST(BitStream, NegativeTimeHasZeroRateIntegral) {
  const BitStream s{{1.0, 0.0}};
  EXPECT_DOUBLE_EQ(s.bits_before(-5.0), 0.0);
}

TEST(BitStream, CumulativeBits) {
  const BitStream s{{1.0, 0.0}, {0.5, 2.0}, {0.0, 6.0}};
  EXPECT_DOUBLE_EQ(s.bits_before(0), 0.0);
  EXPECT_DOUBLE_EQ(s.bits_before(1), 1.0);
  EXPECT_DOUBLE_EQ(s.bits_before(2), 2.0);
  EXPECT_DOUBLE_EQ(s.bits_before(4), 3.0);
  EXPECT_DOUBLE_EQ(s.bits_before(6), 4.0);
  EXPECT_DOUBLE_EQ(s.bits_before(100), 4.0);  // zero tail
}

TEST(BitStream, TimeOfBitsInvertsCumulative) {
  const BitStream s{{1.0, 0.0}, {0.5, 2.0}, {0.0, 6.0}};
  EXPECT_DOUBLE_EQ(s.time_of_bits(0.0).value(), 0.0);
  EXPECT_DOUBLE_EQ(s.time_of_bits(1.0).value(), 1.0);
  EXPECT_DOUBLE_EQ(s.time_of_bits(2.0).value(), 2.0);
  EXPECT_DOUBLE_EQ(s.time_of_bits(3.0).value(), 4.0);
  EXPECT_DOUBLE_EQ(s.time_of_bits(4.0).value(), 6.0);
  EXPECT_FALSE(s.time_of_bits(4.5).has_value());  // never produced
}

TEST(BitStream, TimeOfBitsOnInfiniteTail) {
  const BitStream s{{0.25, 0.0}};
  EXPECT_DOUBLE_EQ(s.time_of_bits(1.0).value(), 4.0);
  EXPECT_DOUBLE_EQ(s.time_of_bits(100.0).value(), 400.0);
}

TEST(BitStream, TotalBits) {
  const BitStream finite{{1.0, 0.0}, {0.0, 3.0}};
  EXPECT_DOUBLE_EQ(finite.total_bits().value(), 3.0);
  const BitStream infinite{{1.0, 0.0}, {0.5, 3.0}};
  EXPECT_FALSE(infinite.total_bits().has_value());
}

TEST(BitStream, RejectsFirstSegmentNotAtZero) {
  EXPECT_THROW((BitStream{{1.0, 1.0}}), std::invalid_argument);
}

TEST(BitStream, RejectsEmptySegments) {
  EXPECT_THROW(BitStream(std::vector<Segment>{}), std::invalid_argument);
}

TEST(BitStream, RejectsIncreasingRates) {
  EXPECT_THROW((BitStream{{0.5, 0.0}, {0.9, 1.0}}), std::invalid_argument);
}

TEST(BitStream, RejectsNegativeRate) {
  EXPECT_THROW((BitStream{{-0.5, 0.0}}), std::invalid_argument);
}

TEST(BitStream, RejectsNonIncreasingTimes) {
  EXPECT_THROW((BitStream{{1.0, 0.0}, {0.5, 2.0}, {0.25, 2.0}}),
               std::invalid_argument);
}

TEST(BitStream, SnapsRoundingNoiseInRates) {
  // A rate higher than its predecessor by only rounding noise is clamped,
  // not rejected.
  const BitStream s{{0.5, 0.0}, {0.5 + 1e-12, 1.0}, {0.1, 2.0}};
  EXPECT_DOUBLE_EQ(s.rate_at(1.5), 0.5);
}

TEST(BitStream, SnapsTinyNegativeRates) {
  const BitStream s{{0.5, 0.0}, {-1e-12, 1.0}};
  EXPECT_DOUBLE_EQ(s.final_rate(), 0.0);
}

TEST(BitStream, CoalescesEqualRates) {
  const BitStream s{{1.0, 0.0}, {0.5, 1.0}, {0.5, 2.0}, {0.25, 3.0}};
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.bits_before(3.0), 2.0);
}

TEST(BitStream, CanonicalFormMakesEquivalentStreamsEqual) {
  const BitStream a{{1.0, 0.0}, {0.5, 1.0}};
  const BitStream b{{1.0, 0.0}, {0.5, 1.0}, {0.5, 7.0}};
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a.nearly_equal(b));
}

TEST(BitStream, DominatesReflexive) {
  const BitStream s{{1.0, 0.0}, {0.5, 2.0}};
  EXPECT_TRUE(s.dominates(s));
}

TEST(BitStream, DominatesDetectsLargerStream) {
  const BitStream big{{1.0, 0.0}, {0.5, 3.0}};
  const BitStream small{{1.0, 0.0}, {0.5, 2.0}};
  EXPECT_TRUE(big.dominates(small));
  EXPECT_FALSE(small.dominates(big));
}

TEST(BitStream, DominanceConsidersTailRate) {
  // Equal everywhere early, but `fat` has a larger tail rate and so
  // eventually overtakes: `thin` must not dominate it.
  const BitStream fat{{0.5, 0.0}};
  const BitStream thin{{0.5, 0.0}, {0.1, 10.0}};
  EXPECT_TRUE(fat.dominates(thin));
  EXPECT_FALSE(thin.dominates(fat));
}

TEST(BitStream, ZeroStreamIsDominatedByEverything) {
  const BitStream s{{0.25, 0.0}};
  EXPECT_TRUE(s.dominates(BitStream{}));
  EXPECT_FALSE(BitStream{}.dominates(s));
}

TEST(BitStream, ToStringListsSegments) {
  const BitStream s{{1.0, 0.0}, {0.5, 2.0}};
  const std::string text = s.to_string();
  EXPECT_NE(text.find("1"), std::string::npos);
  EXPECT_NE(text.find("0.5"), std::string::npos);
  std::ostringstream os;
  os << s;
  EXPECT_EQ(os.str(), text);
}

// --- Exact (Rational) instantiation ---------------------------------------

TEST(ExactBitStream, BasicAlgebraIsExact) {
  const ExactBitStream s{{Rational(1), Rational(0)},
                         {Rational(1, 3), Rational(1)},
                         {Rational(1, 7), Rational(10)}};
  EXPECT_EQ(s.bits_before(Rational(10)), Rational(1) + Rational(9, 3));
  EXPECT_EQ(s.rate_at(Rational(5)), Rational(1, 3));
  EXPECT_EQ(s.time_of_bits(Rational(4)).value(), Rational(10));
}

TEST(ExactBitStream, RejectsExactRateIncrease) {
  EXPECT_THROW((ExactBitStream{{Rational(1, 3), Rational(0)},
                               {Rational(1, 2), Rational(1)}}),
               std::invalid_argument);
}

TEST(ExactBitStream, IdenticalRationalsCoalesce) {
  const ExactBitStream a{{Rational(1, 3), Rational(0)},
                         {Rational(2, 6), Rational(5)}};
  EXPECT_EQ(a.size(), 1u);
}

}  // namespace
}  // namespace rtcac
