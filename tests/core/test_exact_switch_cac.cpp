// Unit tests for the exact (Rational) CAC instantiation: admission
// decisions at the boundary are deterministic and bit-exact, and agree
// with the double engine away from the boundary.

#include <gtest/gtest.h>

#include "core/switch_cac.h"
#include "core/traffic.h"

namespace rtcac {
namespace {

ExactSwitchCac::Config exact_config(Rational bound) {
  ExactSwitchCac::Config cfg;
  cfg.in_ports = 4;
  cfg.out_ports = 1;
  cfg.priorities = 1;
  cfg.advertised_bound = bound;
  return cfg;
}

// CBR(1/3) worst-case envelope, exactly.
ExactBitStream third_cbr() {
  return TrafficDescriptor::cbr(1.0 / 3.0).to_exact_bitstream(3);
}

TEST(ExactSwitchCac, AdmitsAndComputesExactBounds) {
  ExactSwitchCac cac(exact_config(Rational(32)));
  cac.add(1, 0, 0, 0, third_cbr());
  cac.add(2, 1, 0, 0, third_cbr());
  cac.add(3, 2, 0, 0, third_cbr());
  // Three aligned full-rate first cells on a saturated link: aggregate is
  // rate 3 for one cell time, then exactly 1 forever; the queue holds 2
  // cells indefinitely, so the bound is exactly 2 — no epsilon anywhere.
  EXPECT_EQ(cac.computed_bound(0, 0).value(), Rational(2));
  EXPECT_EQ(cac.buffer_requirement(0, 0).value(), Rational(2));
  EXPECT_EQ(cac.sustained_load(0, 0), Rational(1));
  EXPECT_TRUE(cac.state_consistent());
}

TEST(ExactSwitchCac, BoundaryEqualityAdmits) {
  // Advertised bound exactly equal to the resulting worst case: the
  // paper's admission rule is <=, and the exact engine can honor the
  // equality bit for bit.
  ExactSwitchCac cac(exact_config(Rational(2)));
  cac.add(1, 0, 0, 0, third_cbr());
  cac.add(2, 1, 0, 0, third_cbr());
  const auto check = cac.check(2, 0, 0, third_cbr());
  EXPECT_TRUE(check.admitted) << check.reason;
  EXPECT_EQ(check.bound_at_priority.value(), Rational(2));
}

TEST(ExactSwitchCac, JustBelowBoundaryRejects) {
  ExactSwitchCac cac(exact_config(Rational(2) - Rational(1, 1000000)));
  cac.add(1, 0, 0, 0, third_cbr());
  cac.add(2, 1, 0, 0, third_cbr());
  const auto check = cac.check(2, 0, 0, third_cbr());
  EXPECT_FALSE(check.admitted);
  EXPECT_NE(check.reason.find("delay bound"), std::string::npos);
}

TEST(ExactSwitchCac, OverloadIsExactlyUnbounded) {
  // Sustained load of exactly 1 is stable; one more bit of rate is not.
  ExactSwitchCac at_capacity(exact_config(Rational(32)));
  for (int i = 0; i < 3; ++i) {
    at_capacity.add(1 + i, static_cast<std::size_t>(i), 0, 0, third_cbr());
  }
  EXPECT_TRUE(at_capacity.computed_bound(0, 0).has_value());

  ExactSwitchCac cac(exact_config(Rational(32)));
  for (int i = 0; i < 3; ++i) {
    cac.add(1 + i, static_cast<std::size_t>(i), 0, 0, third_cbr());
  }
  const ExactBitStream extra{{Rational(1), Rational(0)},
                             {Rational(1, 1000000), Rational(1)}};
  const auto check = cac.check(3, 0, 0, extra);
  EXPECT_FALSE(check.admitted);
  EXPECT_FALSE(check.bound_at_priority.has_value());
}

TEST(ExactSwitchCac, RemoveRestoresExactState) {
  ExactSwitchCac cac(exact_config(Rational(32)));
  cac.add(1, 0, 0, 0, third_cbr());
  const Rational before = cac.computed_bound(0, 0).value();
  for (int i = 0; i < 20; ++i) {
    cac.add(100 + i, 1, 0, 0,
            TrafficDescriptor::vbr(0.5, 0.125, 4).to_exact_bitstream(8));
    cac.remove(100 + i);
  }
  EXPECT_EQ(cac.computed_bound(0, 0).value(), before);  // ==, not NEAR
  EXPECT_TRUE(cac.state_consistent());
}

TEST(ExactSwitchCac, AgreesWithDoubleEngineOnDyadicWorkload) {
  // Rates that are exact in binary floating point: both engines must make
  // identical decisions and (converted) identical bounds.
  SwitchCac::Config dcfg;
  dcfg.in_ports = 4;
  dcfg.out_ports = 1;
  dcfg.priorities = 2;
  dcfg.advertised_bound = 24;
  SwitchCac dbl(dcfg);
  ExactSwitchCac exact(
      [] {
        ExactSwitchCac::Config cfg;
        cfg.in_ports = 4;
        cfg.out_ports = 1;
        cfg.priorities = 2;
        cfg.advertised_bound = Rational(24);
        return cfg;
      }());

  const TrafficDescriptor contracts[] = {
      TrafficDescriptor::cbr(0.25),
      TrafficDescriptor::vbr(0.5, 0.125, 4),
      TrafficDescriptor::vbr(0.25, 0.0625, 8),
      TrafficDescriptor::cbr(0.125),
  };
  for (std::size_t k = 0; k < 4; ++k) {
    const Priority prio = static_cast<Priority>(k % 2);
    const auto d_check =
        dbl.check(k, 0, prio, contracts[k].to_bitstream());
    const auto e_check =
        exact.check(k, 0, prio, contracts[k].to_exact_bitstream(16));
    ASSERT_EQ(d_check.admitted, e_check.admitted) << "connection " << k;
    if (d_check.admitted) {
      EXPECT_NEAR(d_check.bound_at_priority.value(),
                  e_check.bound_at_priority.value().to_double(), 1e-9);
      dbl.add(k, k, 0, prio, contracts[k].to_bitstream());
      exact.add(k, k, 0, prio, contracts[k].to_exact_bitstream(16));
    }
  }
  EXPECT_EQ(dbl.connection_count(), exact.connection_count());
}

}  // namespace
}  // namespace rtcac
