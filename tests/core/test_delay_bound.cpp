// Unit tests for the worst-case queueing analysis (paper Section 4.2,
// Algorithm 4.1), including a brute-force numeric oracle.

#include "core/delay_bound.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/stream_ops.h"
#include "core/traffic.h"

namespace rtcac {
namespace {

// Brute-force oracle: D = sup_t (g(t) - t) with g(t) = inf{u : G(u) > A(t)},
// evaluated on a dense grid with a fine inverse search.  Slow but
// independent of the production code path.
double brute_force_delay_bound(const BitStream& s, const BitStream& hp,
                               double t_max, double dt) {
  double worst = 0;
  for (double t = 0; t <= t_max; t += dt) {
    const double arrived = s.bits_before(t);
    // march u forward until service first exceeds arrived
    double u = t > worst ? 0 : 0;  // always from 0: G is cheap enough here
    double g = 0;
    while (g + 1e-12 < arrived && u < 8 * t_max) {
      u += dt / 4;
      g += (1.0 - hp.rate_at(u - dt / 4)) * (dt / 4);
    }
    // skip trailing zero-capacity plateau
    while (u < 8 * t_max && 1.0 - hp.rate_at(u) <= 1e-12) {
      u += dt / 4;
    }
    worst = std::max(worst, u - t);
  }
  return worst;
}

TEST(DelayBound, ZeroTrafficHasZeroDelay) {
  EXPECT_DOUBLE_EQ(delay_bound(BitStream{}, BitStream{}).value(), 0.0);
}

TEST(DelayBound, FeasibleStreamAloneHasZeroDelay) {
  // Arrival never exceeds the link rate: no queueing.
  const BitStream s{{1.0, 0.0}, {0.25, 1.0}};
  EXPECT_DOUBLE_EQ(delay_bound(s, BitStream{}).value(), 0.0);
}

TEST(DelayBound, HighestPriorityBoundIsMaxQueueBuildup) {
  // Rate 2 for 4 units: backlog peaks at 4 bits == 4 cell times of delay
  // at unit service.
  const BitStream s{{2.0, 0.0}, {0.5, 4.0}};
  EXPECT_DOUBLE_EQ(delay_bound(s, BitStream{}).value(), 4.0);
  EXPECT_DOUBLE_EQ(max_backlog(s, BitStream{}).value(), 4.0);
}

TEST(DelayBound, UnstableAggregateIsUnbounded) {
  EXPECT_FALSE(delay_bound(BitStream::constant(1.2), BitStream{}).has_value());
  EXPECT_FALSE(max_backlog(BitStream::constant(1.2), BitStream{}).has_value());
}

TEST(DelayBound, ExactlyCriticalLoadIsBounded) {
  // Tail rate exactly 1 with a finite early excess: the backlog never
  // grows past its initial hump.
  const BitStream s{{2.0, 0.0}, {1.0, 3.0}};
  EXPECT_DOUBLE_EQ(delay_bound(s, BitStream{}).value(), 3.0);
}

TEST(DelayBound, HigherPriorityTrafficInflatesBound) {
  const BitStream s{{2.0, 0.0}, {0.25, 2.0}};
  const BitStream hp_none;
  const auto hp_half = BitStream::constant(0.5);
  const double d0 = delay_bound(s, hp_none).value();
  const double d1 = delay_bound(s, hp_half).value();
  EXPECT_GT(d1, d0);
  // Service halves, so the 2-bit excess (rate 2 vs capacity ...) grows:
  // A(t) = 2t on [0,2]; G(u) = u/2.  g(2) = 8, D = 6.  After t = 2,
  // arrivals at 0.25 < 0.5 capacity: D shrinks.
  EXPECT_DOUBLE_EQ(d1, 6.0);
}

TEST(DelayBound, SaturatedHigherPriorityWindowBlocksService) {
  // hp occupies the whole link for [0, 10): even a lone cell of lower
  // priority arriving at t = 0 waits the full window.
  const BitStream hp{{1.0, 0.0}, {0.0, 10.0}};
  const BitStream s{{1.0, 0.0}, {0.0, 1.0}};  // one cell at t = 0
  EXPECT_DOUBLE_EQ(delay_bound(s, hp).value(), 10.0);
}

TEST(DelayBound, SaturationWindowAppliesToLateArrivalsToo) {
  // The regression the upper inverse exists for: hp saturates [0, 10) and
  // p-bits trickle in at 0.4 afterward-capacity 0.5.  A bit arriving just
  // after t = 0 departs just after u = 10.
  const BitStream hp{{1.0, 0.0}, {0.5, 10.0}};
  const BitStream s = BitStream::constant(0.4);
  const double d = delay_bound(s, hp).value();
  EXPECT_DOUBLE_EQ(d, 10.0);
}

TEST(DelayBound, FullySaturatedLinkIsUnboundedForAnyTraffic) {
  // A filtered hp stream is non-increasing, so "capacity appears later"
  // cannot happen; the only permanent-saturation case is hp == 1 forever,
  // where any nonzero lower-priority demand starves.
  const auto hp = BitStream::constant(1.0);
  const BitStream one_cell{{1.0, 0.0}, {0.0, 1.0}};
  EXPECT_FALSE(delay_bound(one_cell, hp).has_value());
  EXPECT_DOUBLE_EQ(delay_bound(BitStream{}, hp).value(), 0.0);
}

TEST(DelayBound, MatchesBruteForceOnVbrAggregates) {
  const BitStream a = TrafficDescriptor::vbr(0.5, 0.1, 4).to_bitstream();
  const BitStream b = TrafficDescriptor::vbr(0.4, 0.05, 6).to_bitstream();
  const BitStream c = TrafficDescriptor::cbr(0.2).to_bitstream();
  const BitStream s = multiplex(multiplex(a, b), c);
  const BitStream hp = filter(multiplex(
      TrafficDescriptor::cbr(0.15).to_bitstream(),
      TrafficDescriptor::vbr(0.3, 0.05, 3).to_bitstream()));
  const double exact = delay_bound(s, hp).value();
  const double brute = brute_force_delay_bound(s, hp, 60.0, 0.05);
  EXPECT_NEAR(exact, brute, 0.15) << "analytic vs brute-force drifted";
  EXPECT_GE(exact, brute - 0.15);
}

TEST(DelayBound, MatchesBruteForceWithDistortedArrivals) {
  const BitStream base = TrafficDescriptor::cbr(0.3).to_bitstream();
  const BitStream s = multiplex(delay(base, 12.0), delay(base, 24.0));
  const BitStream hp = filter(delay(
      TrafficDescriptor::vbr(0.6, 0.1, 8).to_bitstream(), 16.0));
  const double exact = delay_bound(s, hp).value();
  const double brute = brute_force_delay_bound(s, hp, 120.0, 0.05);
  EXPECT_NEAR(exact, brute, 0.2);
}

TEST(DelayBound, RejectsUnfilteredHigherPriorityStream) {
  // S1 must be filtered (rate <= 1); feeding a raw aggregate is a caller
  // bug and must be loud.
  const BitStream one_cell{{1.0, 0.0}, {0.0, 1.0}};
  EXPECT_THROW(delay_bound(one_cell, BitStream::constant(1.5)),
               std::invalid_argument);
  EXPECT_THROW(max_backlog(one_cell, BitStream::constant(1.5)),
               std::invalid_argument);
}

TEST(MaxBacklog, VerticalDeviationSimpleCase) {
  // Rate 3 for 2 units against unit service: peak backlog (3-1)*2 = 4.
  const BitStream s{{3.0, 0.0}, {0.2, 2.0}};
  EXPECT_DOUBLE_EQ(max_backlog(s, BitStream{}).value(), 4.0);
}

TEST(MaxBacklog, WithHigherPriorityService) {
  // capacity 0.5; arrivals 2 for 2 units: backlog (2-0.5)*2 = 3.
  const BitStream s{{2.0, 0.0}, {0.2, 2.0}};
  const auto hp = BitStream::constant(0.5);
  EXPECT_DOUBLE_EQ(max_backlog(s, hp).value(), 3.0);
}

TEST(MaxBacklog, NeverExceedsDelayBoundTimesUnitRate) {
  // With unit total service, backlog <= delay bound (service rate <= 1).
  const BitStream s = multiplex(
      TrafficDescriptor::vbr(0.5, 0.1, 6).to_bitstream(),
      delay(TrafficDescriptor::vbr(0.5, 0.2, 4).to_bitstream(), 10.0));
  const auto hp = filter(TrafficDescriptor::vbr(0.4, 0.1, 8).to_bitstream());
  const double backlog = max_backlog(s, hp).value();
  const double bound = delay_bound(s, hp).value();
  EXPECT_LE(backlog, bound + 1e-9);
}

// --- exact instantiation ----------------------------------------------------

TEST(DelayBoundExact, RationalBoundIsExact) {
  // Aggregate of three CBR-like streams at rate 1/3 each arriving as unit
  // bursts: rate 3 for 1 time unit, then 1.  Tail rate exactly 1 ->
  // bounded; queue grows to 2 during [0,1) and then holds: D = 2.
  const ExactBitStream s{{Rational(3), Rational(0)},
                         {Rational(1), Rational(1)}};
  const auto d = delay_bound(s, ExactBitStream{});
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, Rational(2));
}

TEST(DelayBoundExact, UnboundedAtStrictOverload) {
  const ExactBitStream s{{Rational(3), Rational(0)},
                         {Rational(101, 100), Rational(1)}};
  EXPECT_FALSE(delay_bound(s, ExactBitStream{}).has_value());
}

}  // namespace
}  // namespace rtcac
