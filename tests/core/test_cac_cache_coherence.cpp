// Cache-coherence property suite for the SwitchCac admission hot path:
// randomized seeded add/remove/reclaim interleavings must keep the cached
// check() in agreement with check_from_scratch() (the frozen
// pre-optimization fold), keep every derived-stream cache coherent with
// its inputs, and keep the batched reclaim() equivalent to removing the
// expired ids one at a time.  The Rational instantiation pins the
// equivalences exactly; the double one within NumTraits tolerance.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/stream_ops.h"
#include "core/switch_cac.h"
#include "core/traffic.h"
#include "util/xorshift.h"

namespace rtcac {
namespace {

BitStream random_arrival(Xorshift& rng) {
  // Rates quantized to 1/64 keep the double algebra exact enough that
  // fold and k-way aggregates agree bitwise (see test_multiplex_all).
  const double pcr =
      static_cast<double>(1 + rng.below(16)) / 64.0;          // <= 0.25
  const double scr = pcr * static_cast<double>(1 + rng.below(4)) / 4.0;
  const auto mbs = static_cast<std::uint32_t>(1 + rng.below(8));
  return TrafficDescriptor::vbr(pcr, scr, mbs).to_bitstream();
}

template <typename Num>
void expect_same_decision(
    const BasicSwitchCheckResult<Num>& fast,
    const BasicSwitchCheckResult<Num>& slow) {
  ASSERT_EQ(fast.admitted, slow.admitted)
      << "cached: " << fast.reason << " / scratch: " << slow.reason;
  ASSERT_EQ(fast.bounds.size(), slow.bounds.size());
  for (std::size_t q = 0; q < fast.bounds.size(); ++q) {
    ASSERT_EQ(fast.bounds[q].has_value(), slow.bounds[q].has_value());
    if (fast.bounds[q].has_value()) {
      EXPECT_TRUE(
          NumTraits<Num>::nearly_equal(*fast.bounds[q], *slow.bounds[q]))
          << "priority " << q;
    }
  }
}

class CacheCoherenceTest : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, CacheCoherenceTest,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST_P(CacheCoherenceTest, CheckMatchesFromScratchUnderChurn) {
  Xorshift rng(GetParam() * 1000003 + 1);
  SwitchCac::Config cfg;
  cfg.in_ports = 3;
  cfg.out_ports = 2;
  cfg.priorities = 3;
  cfg.advertised_bound = 256.0;
  SwitchCac cac(cfg);

  std::vector<ConnectionId> live;
  ConnectionId next_id = 1;
  double now = 0.0;
  for (int step = 0; step < 60; ++step) {
    const std::size_t in = rng.below(cfg.in_ports);
    const std::size_t out = rng.below(cfg.out_ports);
    const auto prio = static_cast<Priority>(rng.below(cfg.priorities));
    const BitStream arrival = random_arrival(rng);

    // Every step: the cached trial must agree with the from-scratch one.
    expect_same_decision(cac.check(in, out, prio, arrival),
                         cac.check_from_scratch(in, out, prio, arrival));

    const std::uint64_t action = rng.below(10);
    if (action < 6 || live.empty()) {
      const double lease = rng.chance(0.3)
                               ? now + static_cast<double>(rng.below(20))
                               : SwitchCac::kPermanentLease;
      cac.add(next_id, in, out, prio, arrival, lease);
      live.push_back(next_id++);
    } else if (action < 8) {
      const std::size_t victim = rng.below(live.size());
      EXPECT_TRUE(cac.remove(live[victim]));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    } else {
      now += static_cast<double>(rng.below(15));
      const std::vector<ConnectionId> gone = cac.reclaim(now);
      EXPECT_TRUE(std::is_sorted(gone.begin(), gone.end()));
      for (const ConnectionId id : gone) {
        live.erase(std::find(live.begin(), live.end(), id));
      }
    }
    ASSERT_TRUE(cac.state_consistent());
    ASSERT_TRUE(cac.cache_coherent());
  }
}

TEST_P(CacheCoherenceTest, CachedBoundsMatchFreshTwin) {
  Xorshift rng(GetParam() * 7919 + 5);
  SwitchCac::Config cfg;
  cfg.in_ports = 2;
  cfg.out_ports = 2;
  cfg.priorities = 2;
  cfg.advertised_bound = 256.0;
  SwitchCac cac(cfg);

  struct Route {
    ConnectionId id;
    std::size_t in, out;
    Priority prio;
    BitStream arrival;
  };
  std::vector<Route> log;  // shadow of the live set, in insertion order
  ConnectionId next_id = 1;
  for (int step = 0; step < 40; ++step) {
    if (rng.below(3) != 0 || log.empty()) {
      Route r{next_id++, rng.below(cfg.in_ports), rng.below(cfg.out_ports),
              static_cast<Priority>(rng.below(cfg.priorities)),
              random_arrival(rng)};
      cac.add(r.id, r.in, r.out, r.prio, r.arrival);
      log.push_back(std::move(r));
    } else {
      const std::size_t victim = rng.below(log.size());
      EXPECT_TRUE(cac.remove(log[victim].id));
      log.erase(log.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    // A twin rebuilt cold from the shadow log shares no cache history
    // with the churned original, so agreement here means the warm caches
    // carry no stale state.  The log preserves relative insertion order
    // (erasures keep it), matching the original's membership index, so
    // the bounds must in fact agree bitwise — asserted within tolerance
    // to keep the test about coherence, not fp association trivia.
    SwitchCac twin(cfg);
    for (const Route& r : log) {
      twin.add(r.id, r.in, r.out, r.prio, r.arrival);
    }
    for (std::size_t j = 0; j < cfg.out_ports; ++j) {
      for (Priority p = 0; p < cfg.priorities; ++p) {
        const auto warm = cac.computed_bound(j, p);
        const auto cold = twin.computed_bound(j, p);
        ASSERT_EQ(warm.has_value(), cold.has_value());
        if (warm.has_value()) {
          EXPECT_TRUE(NumTraits<double>::nearly_equal(*warm, *cold))
              << "out " << j << " prio " << p << ": warm " << *warm
              << " vs cold " << *cold;
        }
        const auto wb = cac.buffer_requirement(j, p);
        const auto cb = twin.buffer_requirement(j, p);
        ASSERT_EQ(wb.has_value(), cb.has_value());
        if (wb.has_value()) {
          EXPECT_TRUE(NumTraits<double>::nearly_equal(*wb, *cb));
        }
      }
    }
  }
}

TEST_P(CacheCoherenceTest, BatchedReclaimEqualsPerIdRemoves) {
  Xorshift rng(GetParam() * 104729 + 9);
  SwitchCac::Config cfg;
  cfg.in_ports = 2;
  cfg.out_ports = 2;
  cfg.priorities = 2;
  cfg.advertised_bound = 256.0;
  SwitchCac batched(cfg);
  SwitchCac serial(cfg);

  for (ConnectionId id = 1; id <= 24; ++id) {
    const std::size_t in = rng.below(cfg.in_ports);
    const std::size_t out = rng.below(cfg.out_ports);
    const auto prio = static_cast<Priority>(rng.below(cfg.priorities));
    const BitStream arrival = random_arrival(rng);
    const double lease = rng.chance(0.6)
                             ? static_cast<double>(rng.below(50))
                             : SwitchCac::kPermanentLease;
    batched.add(id, in, out, prio, arrival, lease);
    serial.add(id, in, out, prio, arrival, lease);
  }

  const double now = 25.0;
  std::vector<ConnectionId> expect_expired;
  for (const ConnectionId id : serial.connection_ids()) {
    if (serial.lease_expiry(id) <= now) expect_expired.push_back(id);
  }
  const std::vector<ConnectionId> reclaimed = batched.reclaim(now);
  EXPECT_EQ(reclaimed, expect_expired);  // ascending, inclusive expiry
  for (const ConnectionId id : expect_expired) {
    EXPECT_TRUE(serial.remove(id));
  }

  EXPECT_EQ(batched.connection_ids(), serial.connection_ids());
  for (std::size_t j = 0; j < cfg.out_ports; ++j) {
    for (Priority p = 0; p < cfg.priorities; ++p) {
      EXPECT_EQ(batched.connection_ids(j, p), serial.connection_ids(j, p));
      EXPECT_EQ(batched.connection_count(j, p),
                serial.connection_count(j, p));
      const auto b1 = batched.computed_bound(j, p);
      const auto b2 = serial.computed_bound(j, p);
      ASSERT_EQ(b1.has_value(), b2.has_value());
      if (b1.has_value()) {
        EXPECT_TRUE(NumTraits<double>::nearly_equal(*b1, *b2));
      }
    }
  }
  EXPECT_TRUE(batched.state_consistent());
  EXPECT_TRUE(batched.cache_coherent());
}

TEST_P(CacheCoherenceTest, ExactInstantiationAgreesExactly) {
  Xorshift rng(GetParam() * 65537 + 13);
  ExactSwitchCac::Config cfg;
  cfg.in_ports = 2;
  cfg.out_ports = 2;
  cfg.priorities = 2;
  cfg.advertised_bound = Rational(256);
  ExactSwitchCac cac(cfg);

  std::vector<ConnectionId> live;
  ConnectionId next_id = 1;
  for (int step = 0; step < 25; ++step) {
    const std::size_t in = rng.below(cfg.in_ports);
    const std::size_t out = rng.below(cfg.out_ports);
    const auto prio = static_cast<Priority>(rng.below(cfg.priorities));
    std::vector<ExactSegment> segs;
    const auto peak = Rational(static_cast<std::int64_t>(1 + rng.below(16)),
                               64);
    const auto sustained =
        peak * Rational(static_cast<std::int64_t>(1 + rng.below(4)), 4);
    segs.push_back(ExactSegment{peak, Rational(0)});
    segs.push_back(
        ExactSegment{sustained,
                     Rational(static_cast<std::int64_t>(1 + rng.below(64)))});
    const ExactBitStream arrival(std::move(segs));

    const auto fast = cac.check(in, out, prio, arrival);
    const auto slow = cac.check_from_scratch(in, out, prio, arrival);
    ASSERT_EQ(fast.admitted, slow.admitted);
    ASSERT_EQ(fast.bounds.size(), slow.bounds.size());
    for (std::size_t q = 0; q < fast.bounds.size(); ++q) {
      // Exact scalar: cached composition must equal the fold bit for bit.
      ASSERT_EQ(fast.bounds[q], slow.bounds[q]) << "priority " << q;
    }

    if (rng.below(3) != 0 || live.empty()) {
      cac.add(next_id, in, out, prio, arrival);
      live.push_back(next_id++);
    } else {
      const std::size_t victim = rng.below(live.size());
      EXPECT_TRUE(cac.remove(live[victim]));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    ASSERT_TRUE(cac.state_consistent());
    ASSERT_TRUE(cac.cache_coherent());
  }
}

TEST(CacheCoherence, QueueIndexedQueriesMatchRecordScan) {
  SwitchCac::Config cfg;
  cfg.in_ports = 2;
  cfg.out_ports = 2;
  cfg.priorities = 2;
  SwitchCac cac(cfg);
  const BitStream s = TrafficDescriptor::cbr(0.125).to_bitstream();
  cac.add(5, 0, 1, 1, s);
  cac.add(2, 1, 1, 1, s);
  cac.add(9, 0, 0, 0, s);
  cac.add(4, 1, 1, 0, s);
  EXPECT_EQ(cac.connection_ids(1, 1), (std::vector<ConnectionId>{2, 5}));
  EXPECT_EQ(cac.connection_ids(0, 0), (std::vector<ConnectionId>{9}));
  EXPECT_EQ(cac.connection_ids(0, 1), std::vector<ConnectionId>{});
  EXPECT_EQ(cac.connection_count(1, 1), 2u);
  EXPECT_EQ(cac.connection_count(1, 0), 1u);
  EXPECT_TRUE(cac.remove(2));
  EXPECT_EQ(cac.connection_ids(1, 1), (std::vector<ConnectionId>{5}));
}

}  // namespace
}  // namespace rtcac
