// Unit tests for CDV accumulation policies (Section 4.3, discussion 1).

#include "core/cdv.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace rtcac {
namespace {

TEST(Cdv, FirstHopHasNoCdv) {
  EXPECT_DOUBLE_EQ(accumulate_cdv(CdvPolicy::kHard, {}), 0.0);
  EXPECT_DOUBLE_EQ(accumulate_cdv(CdvPolicy::kSoft, {}), 0.0);
}

TEST(Cdv, HardIsLinearSum) {
  const std::vector<double> bounds{32, 32, 32};
  EXPECT_DOUBLE_EQ(accumulate_cdv(CdvPolicy::kHard, bounds), 96.0);
}

TEST(Cdv, SoftIsRootSumSquare) {
  const std::vector<double> bounds{3, 4};
  EXPECT_DOUBLE_EQ(accumulate_cdv(CdvPolicy::kSoft, bounds), 5.0);
}

TEST(Cdv, SingleHopPoliciesAgree) {
  const std::vector<double> bounds{17.5};
  EXPECT_DOUBLE_EQ(accumulate_cdv(CdvPolicy::kHard, bounds),
                   accumulate_cdv(CdvPolicy::kSoft, bounds));
}

TEST(Cdv, SoftNeverExceedsHard) {
  const std::vector<double> bounds{32, 32, 32, 32, 32, 32, 32, 32};
  const double hard = accumulate_cdv(CdvPolicy::kHard, bounds);
  const double soft = accumulate_cdv(CdvPolicy::kSoft, bounds);
  EXPECT_LT(soft, hard);
  // sqrt(8 * 32^2) = 32 * sqrt(8)
  EXPECT_DOUBLE_EQ(soft, 32.0 * std::sqrt(8.0));
}

TEST(Cdv, SoftGainGrowsWithHopCount) {
  // The relative saving of soft accumulation improves as routes lengthen —
  // the effect Figure 13 banks on.
  std::vector<double> bounds;
  double prev_ratio = 1.0;
  for (int hops = 1; hops <= 15; ++hops) {
    bounds.push_back(32);
    const double ratio = accumulate_cdv(CdvPolicy::kSoft, bounds) /
                         accumulate_cdv(CdvPolicy::kHard, bounds);
    EXPECT_LE(ratio, prev_ratio + 1e-12);
    prev_ratio = ratio;
  }
  EXPECT_NEAR(prev_ratio, 1.0 / std::sqrt(15.0), 1e-12);
}

TEST(Cdv, RejectsNegativeBounds) {
  const std::vector<double> bounds{32, -1};
  EXPECT_THROW(static_cast<void>(accumulate_cdv(CdvPolicy::kHard, bounds)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(accumulate_cdv(CdvPolicy::kSoft, bounds)),
               std::invalid_argument);
}

TEST(Cdv, ToStringNamesPolicies) {
  EXPECT_EQ(to_string(CdvPolicy::kHard), "hard");
  EXPECT_EQ(to_string(CdvPolicy::kSoft), "soft");
}

}  // namespace
}  // namespace rtcac
