// Closed-form checks: configurations whose worst-case bounds can be
// derived by hand, swept parametrically, in both scalar types.  These
// catch constant-factor and off-by-one-segment errors that randomized
// dominance properties cannot.

#include <gtest/gtest.h>

#include "core/delay_bound.h"
#include "core/stream_ops.h"
#include "core/traffic.h"

namespace rtcac {
namespace {

// --- N aligned CBR streams through one queue --------------------------------
//
// Each stream contributes (1, 0), (R, 1); the aggregate is rate N for one
// cell time, then N*R.  With unit service and N*R <= 1, the queue peaks
// at t = 1 with N - 1 cells, so the delay bound is exactly N - 1.

class AlignedCbr : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(N, AlignedCbr, ::testing::Values(2, 3, 5, 8, 16));

TEST_P(AlignedCbr, BoundIsExactlyNMinusOne) {
  const int n = GetParam();
  const double rate = 0.9 / n;  // N*R = 0.9 < 1
  BitStream aggregate;
  for (int i = 0; i < n; ++i) {
    aggregate =
        multiplex(aggregate, TrafficDescriptor::cbr(rate).to_bitstream());
  }
  EXPECT_NEAR(delay_bound(aggregate, BitStream{}).value(),
              static_cast<double>(n - 1), 1e-9);
  EXPECT_NEAR(max_backlog(aggregate, BitStream{}).value(),
              static_cast<double>(n - 1), 1e-9);
}

TEST_P(AlignedCbr, ExactArithmeticAgrees) {
  const int n = GetParam();
  ExactBitStream aggregate;
  for (int i = 0; i < n; ++i) {
    // R = 9/(10n): N*R = 9/10 exactly.
    aggregate = multiplex(
        aggregate, ExactBitStream{{Rational(1), Rational(0)},
                                  {Rational(9, 10 * n), Rational(1)}});
  }
  EXPECT_EQ(delay_bound(aggregate, ExactBitStream{}).value(),
            Rational(n - 1));
}

// --- N aligned VBR bursts ----------------------------------------------------
//
// N aligned VBR(PCR, SCR, MBS) envelopes: each ramps one cell at rate 1,
// then PCR until its burst of MBS cells is out (t2 = 1 + (MBS-1)/PCR),
// then SCR.  For N*PCR > 1 > N*SCR the aggregate queue peaks at t2 with
// N*MBS - t2 cells.

struct VbrCase {
  int n;
  double pcr;
  double scr;
  std::uint32_t mbs;
};

class AlignedVbr : public ::testing::TestWithParam<VbrCase> {};

INSTANTIATE_TEST_SUITE_P(
    Cases, AlignedVbr,
    ::testing::Values(VbrCase{3, 0.5, 0.05, 4}, VbrCase{4, 0.4, 0.02, 6},
                      VbrCase{8, 0.25, 0.01, 3}, VbrCase{2, 0.9, 0.1, 10}));

TEST_P(AlignedVbr, PeakBacklogMatchesHandDerivation) {
  const VbrCase c = GetParam();
  ASSERT_GT(c.n * c.pcr, 1.0);
  ASSERT_LT(c.n * c.scr, 1.0);
  BitStream aggregate;
  for (int i = 0; i < c.n; ++i) {
    aggregate = multiplex(
        aggregate,
        TrafficDescriptor::vbr(c.pcr, c.scr, c.mbs).to_bitstream());
  }
  const double t2 = 1.0 + static_cast<double>(c.mbs - 1) / c.pcr;
  const double expected = c.n * c.mbs - t2;  // bits in minus bits served
  EXPECT_NEAR(max_backlog(aggregate, BitStream{}).value(), expected, 1e-9);
  // With unit service the delay bound equals the peak backlog here (the
  // maximum is attained while the queue drains at full rate).
  EXPECT_NEAR(delay_bound(aggregate, BitStream{}).value(), expected, 1e-9);
}

TEST_P(AlignedCbr, MatchesThePapersVbrEquivalenceNote) {
  // Paper, Section 5: "the worst-case aggregated traffic from N CBR
  // connections with a peak cell rate R is the same as that of a VBR
  // connection with PCR = N, SCR = N*R, MBS = N" — as a stream identity:
  // the multiplexed envelope is exactly {(N, 0), (N*R, 1)}.
  const int n = GetParam();
  const double rate = 0.9 / n;
  BitStream aggregate;
  for (int i = 0; i < n; ++i) {
    aggregate =
        multiplex(aggregate, TrafficDescriptor::cbr(rate).to_bitstream());
  }
  const BitStream vbr_like{{static_cast<double>(n), 0.0}, {n * rate, 1.0}};
  EXPECT_TRUE(aggregate.nearly_equal(vbr_like))
      << aggregate << " vs " << vbr_like;
}

// --- one low-priority cell behind a high-priority clump ----------------------
//
// The filtered hp stream saturates the link on [0, L) and then goes
// silent; a lone lp cell arriving at t = 0 sits out exactly the clump:
// its last bit (arriving at t = 1) departs at L + 1, having waited L.
// If hp keeps a residual rate r after the clump, the tail contention
// adds r/(1-r): the closed form is L + r/(1-r) - hand-derived both ways.

class ClumpBlocking : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(L, ClumpBlocking,
                         ::testing::Values(1.0, 4.0, 32.0, 480.0));

TEST_P(ClumpBlocking, LowPriorityWaitsOutTheClump) {
  const double clump = GetParam();
  const BitStream lone_cell{{1.0, 0.0}, {0.0, 1.0}};
  const BitStream hp_silent{{1.0, 0.0}, {0.0, clump}};
  EXPECT_NEAR(delay_bound(lone_cell, hp_silent).value(), clump, 1e-9);

  const double residual = 0.25;
  const BitStream hp_residual{{1.0, 0.0}, {residual, clump}};
  EXPECT_NEAR(delay_bound(lone_cell, hp_residual).value(),
              clump + residual / (1.0 - residual), 1e-9);
}

// --- CDV distortion of a CBR stream ------------------------------------------
//
// delay(CBR(R), cdv) runs at rate 1 until the clumped prefix drains: the
// shifted stream is plain rate R (for cdv >= 1 the full-rate head lies
// inside the prefix) with initial backlog A(cdv) = 1 + (cdv-1) R, so the
// queue A(cdv) + R t - t empties at T = A(cdv) / (1 - R) and the output
// is exactly {(1, 0), (R, T)}.

class CbrDistortion
    : public ::testing::TestWithParam<std::pair<double, double>> {};

INSTANTIATE_TEST_SUITE_P(
    Cases, CbrDistortion,
    ::testing::Values(std::make_pair(0.25, 8.0), std::make_pair(0.5, 32.0),
                      std::make_pair(0.1, 480.0),
                      std::make_pair(0.8, 96.0)));

TEST_P(CbrDistortion, FullRatePeriodMatchesClosedForm) {
  const auto [rate, cdv] = GetParam();
  const BitStream out =
      delay(TrafficDescriptor::cbr(rate).to_bitstream(), cdv);
  const double accumulated = 1.0 + (cdv - 1.0) * rate;  // A(cdv)
  const double t_drain = accumulated / (1.0 - rate);
  ASSERT_EQ(out.size(), 2u) << out;
  EXPECT_DOUBLE_EQ(out.segments()[0].rate, 1.0);
  EXPECT_NEAR(out.segments()[1].start, t_drain, 1e-9) << out;
  EXPECT_DOUBLE_EQ(out.segments()[1].rate, rate);
}

// --- filter against a fluid-integration oracle --------------------------------

double fluid_filter_output(const BitStream& input, double horizon,
                           double dt, double t_query) {
  // Integrates the queue dQ = r - 1 (clamped at 0) and accumulates the
  // transmitted bits; independent of the analytic drain-point logic.
  double queue = 0;
  double sent = 0;
  for (double t = 0; t < std::min(horizon, t_query); t += dt) {
    const double in = input.rate_at(t) * dt;
    const double capacity = dt;
    if (queue + in <= capacity) {
      sent += queue + in;
      queue = 0;
    } else {
      sent += capacity;
      queue = queue + in - capacity;
    }
  }
  return sent;
}

TEST(FilterOracle, AnalyticFilterMatchesFluidIntegration) {
  const BitStream cases[] = {
      multiplex(TrafficDescriptor::vbr(0.5, 0.1, 4).to_bitstream(),
                TrafficDescriptor::vbr(0.8, 0.05, 6).to_bitstream()),
      multiplex(multiplex(TrafficDescriptor::cbr(0.5).to_bitstream(),
                          TrafficDescriptor::cbr(0.4).to_bitstream()),
                TrafficDescriptor::vbr(0.3, 0.02, 12).to_bitstream()),
  };
  for (const BitStream& input : cases) {
    const BitStream output = filter(input);
    for (const double t : {0.5, 1.0, 3.0, 7.5, 20.0, 60.0}) {
      EXPECT_NEAR(output.bits_before(t),
                  fluid_filter_output(input, 100.0, 1e-3, t), 2e-2)
          << "t=" << t << " input=" << input;
    }
  }
}

}  // namespace
}  // namespace rtcac
