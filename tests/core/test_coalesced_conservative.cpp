// Admit-side-conservatism property suite for the coalescing merge-tree
// aggregates (core/merge_tree.h, docs/PERFORMANCE.md "Mergeable
// aggregates"): with a non-zero coalescing budget the cached aggregates
// may only OVER-estimate offered load, so for random stream populations
// under churn every connection the coalesced check() admits must also be
// admitted by the exact check_from_scratch() oracle, and every computed
// delay bound must be at least the oracle's — never below, and never
// present where the oracle has none.  Also pins the building blocks:
// coalesce_conservative keeps endpoints, preserves the tail rate and
// yields a pointwise-dominating stream; a budgeted merge tree's root
// dominates the exact fold of its live leaves through arbitrary
// insert/erase interleavings.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/merge_tree.h"
#include "core/stream_arena.h"
#include "core/stream_ops.h"
#include "core/switch_cac.h"
#include "util/xorshift.h"

namespace rtcac {
namespace {

// Segment-rich arrival: a strictly decreasing rate ladder of 18-25 steps
// (rates i/2048, times multiples of 4 — dyadic, so double sums stay
// exact).  Far above any useful coalescing budget, so the conservative
// rounding actually fires; the VBR descriptors the cache-coherence suite
// uses have too few breakpoints to exercise it.
BitStream random_arrival(Xorshift& rng) {
  const std::size_t steps = 18 + rng.below(8);
  std::vector<Segment> segs;
  double t = 0.0;
  for (std::size_t i = 0; i < steps; ++i) {
    segs.push_back(
        Segment{static_cast<double>(steps - i) / 2048.0, t});
    t += 4.0 * static_cast<double>(1 + rng.below(64));
  }
  return BitStream(std::move(segs));
}

std::vector<Segment> random_canonical_segments(Xorshift& rng) {
  const BitStream stream = random_arrival(rng);
  return {stream.segments().begin(), stream.segments().end()};
}

TEST(CoalesceConservative, KeepsEndpointsDominatesAndPreservesTail) {
  Xorshift rng(1234);
  for (const std::size_t budget : {std::size_t{2}, std::size_t{3},
                                   std::size_t{8}, std::size_t{17}}) {
    for (int trial = 0; trial < 32; ++trial) {
      const std::vector<Segment> original = random_canonical_segments(rng);
      std::vector<Segment> coalesced = original;
      coalesce_conservative(coalesced, budget);

      ASSERT_FALSE(coalesced.empty());
      EXPECT_LE(coalesced.size(), budget);
      // First and last breakpoints survive with their original rates: the
      // initial burst and the sustained (tail) rate are never distorted.
      EXPECT_EQ(coalesced.front().start, original.front().start);
      EXPECT_EQ(coalesced.front().rate, original.front().rate);
      EXPECT_EQ(coalesced.back().start, original.back().start);
      EXPECT_EQ(coalesced.back().rate, original.back().rate);

      const BitStream before{std::vector<Segment>(original)};
      const BitStream after(std::move(coalesced));
      EXPECT_TRUE(after.dominates(before))
          << "budget " << budget << ": coalesced stream must over-estimate";
      EXPECT_EQ(after.final_rate(), before.final_rate());

      // Victim selection is deterministic: same input, same output.
      std::vector<Segment> again = original;
      coalesce_conservative(again, budget);
      EXPECT_TRUE(BitStream(std::move(again)) == after);
    }
  }
}

TEST(CoalesceConservative, BudgetZeroAndSatisfiedBudgetAreNoOps) {
  Xorshift rng(99);
  const std::vector<Segment> original = random_canonical_segments(rng);
  std::vector<Segment> untouched = original;
  coalesce_conservative(untouched, 0);
  EXPECT_EQ(untouched.size(), original.size());
  coalesce_conservative(untouched, original.size() + 5);
  EXPECT_EQ(untouched.size(), original.size());
}

TEST(CoalesceConservative, MergeTreeRootDominatesExactFoldUnderChurn) {
  Xorshift rng(777);
  StreamArena arena;
  BasicStreamMergeTree<double> tree(/*coalesce_budget=*/8);
  std::vector<std::pair<std::size_t, BitStream>> live;  // slot, stream

  for (int step = 0; step < 120; ++step) {
    if (live.empty() || rng.below(3) != 0) {
      BitStream s = random_arrival(rng);
      const std::size_t slot = tree.insert(arena, s);
      live.emplace_back(slot, std::move(s));
    } else {
      const std::size_t victim = rng.below(live.size());
      tree.erase(live[victim].first);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    const BitStream aggregate = tree.aggregate(arena);
    ASSERT_TRUE(tree.coherent());
    ASSERT_EQ(tree.size(), live.size());

    BitStream fold;
    double tail = 0.0;
    for (const auto& [slot, s] : live) {
      fold = multiplex(fold, s);
      tail += s.final_rate();
    }
    ASSERT_TRUE(aggregate.dominates(fold))
        << "step " << step << ": budgeted root must dominate the fold";
    // Conservatism never inflates the sustained rate: coalescing drops
    // interior breakpoints only, so the tail sum is preserved exactly.
    EXPECT_EQ(aggregate.final_rate(), tail);
  }
}

// The oracle gate, shared by the churn suites below.  `exact_mode` picks
// between bit-identity (budget 0) and admit-side dominance (budget > 0).
void expect_conservative(const SwitchCac& cac, Xorshift& rng,
                         std::size_t trials, bool exact_mode) {
  for (std::size_t t = 0; t < trials; ++t) {
    const std::size_t in = rng.below(3);
    const std::size_t out = rng.below(2);
    const auto prio = static_cast<Priority>(rng.below(3));
    const BitStream arrival = random_arrival(rng);
    const SwitchCheckResult fast = cac.check(in, out, prio, arrival);
    const SwitchCheckResult slow =
        cac.check_from_scratch(in, out, prio, arrival);

    if (exact_mode) {
      ASSERT_EQ(fast.admitted, slow.admitted)
          << "cached: " << fast.reason << " / scratch: " << slow.reason;
    } else if (fast.admitted) {
      ASSERT_TRUE(slow.admitted)
          << "coalesced admits a connection the exact oracle rejects ("
          << slow.reason << ")";
    }
    ASSERT_EQ(fast.bounds.size(), slow.bounds.size());
    for (std::size_t q = 0; q < fast.bounds.size(); ++q) {
      const auto& a = fast.bounds[q];
      const auto& b = slow.bounds[q];
      if (exact_mode) {
        ASSERT_EQ(a.has_value(), b.has_value()) << "priority " << q;
        if (a) {
          EXPECT_TRUE(NumTraits<double>::nearly_equal(*a, *b))
              << "priority " << q;
        }
        continue;
      }
      // Conservative: losing a bound is allowed (more load, no bound),
      // gaining one is optimism; a present bound must never decrease.
      if (a.has_value()) {
        ASSERT_TRUE(b.has_value())
            << "coalesced bounds priority " << q
            << " where the exact oracle cannot";
        EXPECT_FALSE(*a < *b && !NumTraits<double>::nearly_equal(*a, *b))
            << "coalesced bound " << *a << " below oracle bound " << *b
            << " at priority " << q;
      }
    }
  }
}

class CoalescedChurnTest : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, CoalescedChurnTest,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST_P(CoalescedChurnTest, AdmitsOnlyWhatTheOracleAdmits) {
  Xorshift rng(GetParam() * 2000003 + 17);
  SwitchCac::Config cfg;
  cfg.in_ports = 3;
  cfg.out_ports = 2;
  cfg.priorities = 3;
  cfg.advertised_bound = 512.0;
  cfg.coalesce_budget = 8;  // far below the ~20-segment arrivals
  SwitchCac cac(cfg);

  ConnectionId next_id = 1;
  std::vector<ConnectionId> admitted;
  double now = 0.0;
  for (int step = 0; step < 60; ++step) {
    now += 1.0;
    const std::size_t op = rng.below(admitted.size() < 8 ? 2 : 4);
    if (op < 2) {  // admit (half of them leased, reclaimable)
      const std::size_t in = rng.below(cfg.in_ports);
      const std::size_t out = rng.below(cfg.out_ports);
      const auto prio = static_cast<Priority>(rng.below(cfg.priorities));
      BitStream arrival = random_arrival(rng);
      if (cac.check(in, out, prio, arrival).admitted) {
        const double lease = rng.below(2) == 0
                                 ? now + 5.0
                                 : SwitchCac::kPermanentLease;
        cac.add(next_id, in, out, prio, arrival, lease);
        admitted.push_back(next_id);
        ++next_id;
      }
    } else if (op == 2) {  // teardown
      const std::size_t victim = rng.below(admitted.size());
      if (cac.remove(admitted[victim])) {
        admitted.erase(admitted.begin() +
                       static_cast<std::ptrdiff_t>(victim));
      }
    } else {  // orphan sweep
      for (const ConnectionId id : cac.reclaim(now)) {
        std::erase(admitted, id);
      }
    }
    if (step % 10 == 0 || step == 59) {
      ASSERT_TRUE(cac.state_consistent()) << "step " << step;
      ASSERT_TRUE(cac.cache_coherent()) << "step " << step;
      expect_conservative(cac, rng, 6, /*exact_mode=*/false);
    }
  }
  // Steady-state churn must be recycling arena buffers, not allocating.
  const CacArenaStats stats = cac.arena_stats();
  EXPECT_GT(stats.arena_reuses, 0u);
  EXPECT_LE(stats.arena_reuses, stats.arena_acquires);
}

TEST(CoalescedConservative, ExactModeStaysDecisionIdenticalOnRichStreams) {
  // Budget 0: the merge-tree backend must be invisible — decisions
  // bit-identical to the from-scratch oracle even on the segment-rich
  // ladders the coherence suite's VBR descriptors never produce.
  Xorshift rng(4242);
  SwitchCac::Config cfg;
  cfg.in_ports = 3;
  cfg.out_ports = 2;
  cfg.priorities = 3;
  cfg.advertised_bound = 512.0;
  SwitchCac cac(cfg);
  for (ConnectionId id = 1; id <= 24; ++id) {
    const std::size_t in = rng.below(cfg.in_ports);
    const std::size_t out = rng.below(cfg.out_ports);
    const auto prio = static_cast<Priority>(rng.below(cfg.priorities));
    BitStream arrival = random_arrival(rng);
    if (cac.check(in, out, prio, arrival).admitted) {
      cac.add(id, in, out, prio, arrival);
    }
    if (id % 3 == 0) cac.remove(id - 2);
  }
  ASSERT_TRUE(cac.state_consistent());
  expect_conservative(cac, rng, 24, /*exact_mode=*/true);
}

TEST(CoalescedConservative, RationalDominanceIsBoundaryExact) {
  // The exact scalar pins the conservative contract without tolerance:
  // a budget-2 aggregate of two-step Rational streams dominates the fold
  // with exact arithmetic at every breakpoint.
  ExactStreamArena arena;
  BasicStreamMergeTree<Rational> tree(/*coalesce_budget=*/2);
  using RSeg = BasicSegment<Rational>;
  using RStream = BasicBitStream<Rational>;
  std::vector<RStream> leaves;
  for (int i = 1; i <= 5; ++i) {
    leaves.push_back(RStream{RSeg{Rational(3 + i, 8), Rational(0)},
                             RSeg{Rational(2, 8), Rational(4 * i)},
                             RSeg{Rational(1, 8), Rational(8 * i)}});
    (void)tree.insert(arena, leaves.back());
  }
  const RStream aggregate = tree.aggregate(arena);
  ASSERT_TRUE(tree.coherent());
  EXPECT_LE(aggregate.size(), 2u);

  RStream fold;
  for (const RStream& s : leaves) fold = multiplex(fold, s);
  EXPECT_TRUE(aggregate.dominates(fold));
  EXPECT_EQ(aggregate.final_rate(), fold.final_rate());
}

}  // namespace
}  // namespace rtcac
