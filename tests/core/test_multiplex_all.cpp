// Property tests for the k-way multiplex: multiplex_all must agree with
// the left-fold of two-way multiplex it replaces on the CAC hot path —
// bitwise for rational-friendly doubles (no tolerance coalescing fires)
// and exactly for the Rational instantiation — plus the
// demultiplex(multiplex(a, b), b) == a round-trip the remove path's
// algebra depends on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/stream_ops.h"
#include "util/xorshift.h"

namespace rtcac {
namespace {

// Random non-increasing step stream with rational-friendly values: rates
// are multiples of 1/64 in [0, max_rate], times multiples of 1/4.  Sums
// of such rates are exact in double, so fold and k-way results must be
// bit-identical, not merely within tolerance.
BitStream random_stream(Xorshift& rng, double max_rate = 1.0,
                        std::size_t max_segments = 6) {
  const std::size_t n = 1 + rng.below(max_segments);
  std::vector<double> rates;
  for (std::size_t i = 0; i < n; ++i) {
    rates.push_back(static_cast<double>(rng.below(
                        static_cast<std::uint64_t>(max_rate * 64) + 1)) /
                    64.0);
  }
  std::sort(rates.rbegin(), rates.rend());
  std::vector<Segment> segs;
  double t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    segs.push_back(Segment{rates[i], t});
    t += 0.25 * static_cast<double>(1 + rng.below(40));
  }
  return BitStream(std::move(segs));
}

ExactBitStream to_exact(const BitStream& s) {
  std::vector<ExactSegment> segs;
  for (const auto& seg : s.segments()) {
    segs.push_back(ExactSegment{
        Rational(static_cast<std::int64_t>(std::lround(seg.rate * 64)), 64),
        Rational(static_cast<std::int64_t>(std::lround(seg.start * 4)), 4)});
  }
  return ExactBitStream(std::move(segs));
}

template <typename Num>
BasicBitStream<Num> fold_multiplex(
    const std::vector<BasicBitStream<Num>>& streams) {
  BasicBitStream<Num> aggr;
  for (const auto& s : streams) aggr = multiplex(aggr, s);
  return aggr;
}

class MultiplexAllTest : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, MultiplexAllTest,
                         ::testing::Range<std::uint64_t>(0, 50));

TEST_P(MultiplexAllTest, MatchesLeftFoldBitwise) {
  Xorshift rng(GetParam() * 2654435761 + 17);
  const std::size_t k = 2 + rng.below(7);
  std::vector<BitStream> streams;
  for (std::size_t i = 0; i < k; ++i) streams.push_back(random_stream(rng));
  EXPECT_EQ(multiplex_all(std::span<const BitStream>(streams)),
            fold_multiplex(streams));
}

TEST_P(MultiplexAllTest, MatchesLeftFoldExactly) {
  Xorshift rng(GetParam() * 6364136223846793005 + 29);
  const std::size_t k = 2 + rng.below(7);
  std::vector<ExactBitStream> streams;
  for (std::size_t i = 0; i < k; ++i) {
    streams.push_back(to_exact(random_stream(rng)));
  }
  EXPECT_EQ(multiplex_all(std::span<const ExactBitStream>(streams)),
            fold_multiplex(streams));
}

TEST_P(MultiplexAllTest, ZeroStreamsContributeNothing) {
  Xorshift rng(GetParam() * 40503 + 3);
  const BitStream a = random_stream(rng);
  const BitStream b = random_stream(rng);
  const std::vector<BitStream> padded{BitStream{}, a, BitStream{}, b,
                                      BitStream{}};
  EXPECT_EQ(multiplex_all(std::span<const BitStream>(padded)),
            multiplex(a, b));
}

TEST_P(MultiplexAllTest, DemultiplexRoundTrip) {
  Xorshift rng(GetParam() * 94906249 + 11);
  const BitStream a = random_stream(rng);
  const BitStream b = random_stream(rng);
  EXPECT_EQ(demultiplex(multiplex(a, b), b), a);
  const ExactBitStream ea = to_exact(a);
  const ExactBitStream eb = to_exact(b);
  EXPECT_EQ(demultiplex(multiplex(ea, eb), eb), ea);
}

TEST_P(MultiplexAllTest, DemultiplexUnwindsKWayAggregate) {
  Xorshift rng(GetParam() * 15485863 + 7);
  const std::size_t k = 2 + rng.below(5);
  std::vector<BitStream> streams;
  for (std::size_t i = 0; i < k; ++i) streams.push_back(random_stream(rng));
  // Peel components off the k-way aggregate back-to-front; each step must
  // land exactly on the aggregate of the remaining prefix.
  BitStream aggr = multiplex_all(std::span<const BitStream>(streams));
  for (std::size_t i = k; i-- > 1;) {
    aggr = demultiplex(aggr, streams[i]);
    const std::vector<BitStream> prefix(streams.begin(),
                                        streams.begin() + i);
    EXPECT_EQ(aggr, multiplex_all(std::span<const BitStream>(prefix)));
  }
  EXPECT_EQ(aggr, streams.front());
}

TEST(MultiplexAll, EmptySetIsZero) {
  EXPECT_TRUE(
      multiplex_all(std::span<const BitStream>{}).is_zero());
  const std::vector<const BitStream*> nulls{nullptr, nullptr};
  EXPECT_TRUE(multiplex_all(nulls).is_zero());
}

TEST(MultiplexAll, SingleStreamPassesThrough) {
  const BitStream s{Segment{0.5, 0.0}, Segment{0.25, 4.0}};
  const std::vector<const BitStream*> one{nullptr, &s};
  EXPECT_EQ(multiplex_all(one), s);
}

TEST(MultiplexAll, KnownAggregate) {
  const BitStream a{Segment{0.5, 0.0}, Segment{0.25, 4.0}};
  const BitStream b{Segment{0.25, 0.0}, Segment{0.125, 2.0}};
  const BitStream c{Segment{1.0, 0.0}, Segment{0.0, 8.0}};
  const std::vector<BitStream> all{a, b, c};
  const BitStream expect{Segment{1.75, 0.0}, Segment{1.625, 2.0},
                         Segment{1.375, 4.0}, Segment{0.375, 8.0}};
  EXPECT_EQ(multiplex_all(std::span<const BitStream>(all)), expect);
}

}  // namespace
}  // namespace rtcac
