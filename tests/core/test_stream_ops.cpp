// Unit tests for the stream-manipulation algebra (paper Section 3,
// Algorithms 3.1-3.4), against hand-computed worst cases.

#include "core/stream_ops.h"

#include <gtest/gtest.h>

#include "core/traffic.h"

namespace rtcac {
namespace {

// --- multiplex (Algorithm 3.2) ---------------------------------------------

TEST(Multiplex, RatesAddPointwise) {
  const BitStream a{{0.5, 0.0}, {0.25, 4.0}};
  const BitStream b{{0.4, 0.0}, {0.1, 2.0}};
  const BitStream sum = multiplex(a, b);
  EXPECT_DOUBLE_EQ(sum.rate_at(0.0), 0.9);
  EXPECT_DOUBLE_EQ(sum.rate_at(2.0), 0.6);
  EXPECT_DOUBLE_EQ(sum.rate_at(4.0), 0.35);
  EXPECT_DOUBLE_EQ(sum.bits_before(6.0), a.bits_before(6.0) + b.bits_before(6.0));
}

TEST(Multiplex, AggregateRateCanExceedLinkRate) {
  const auto a = BitStream::constant(0.8);
  const auto b = BitStream::constant(0.7);
  EXPECT_DOUBLE_EQ(multiplex(a, b).rate_at(0.0), 1.5);
}

TEST(Multiplex, ZeroIsIdentity) {
  const BitStream s{{1.0, 0.0}, {0.25, 3.0}};
  EXPECT_EQ(multiplex(s, BitStream{}), s);
  EXPECT_EQ(multiplex(BitStream{}, s), s);
}

TEST(Multiplex, SharedBreakpointsMergeOnce) {
  const BitStream a{{1.0, 0.0}, {0.5, 2.0}};
  const BitStream b{{0.5, 0.0}, {0.25, 2.0}};
  const BitStream sum = multiplex(a, b);
  EXPECT_EQ(sum.size(), 2u);
  EXPECT_DOUBLE_EQ(sum.rate_at(2.0), 0.75);
}

// --- demultiplex (Algorithm 3.3) --------------------------------------------

TEST(Demultiplex, UndoesMultiplex) {
  const BitStream a{{1.0, 0.0}, {0.5, 2.0}, {0.1, 5.0}};
  const BitStream b{{0.7, 0.0}, {0.2, 3.0}};
  const BitStream sum = multiplex(a, b);
  EXPECT_TRUE(demultiplex(sum, b).nearly_equal(a));
  EXPECT_TRUE(demultiplex(sum, a).nearly_equal(b));
}

TEST(Demultiplex, RemovingEverythingLeavesZero) {
  const BitStream a{{0.5, 0.0}, {0.25, 2.0}};
  EXPECT_TRUE(demultiplex(a, a).is_zero());
}

TEST(Demultiplex, RejectsNonComponent) {
  const auto small = BitStream::constant(0.3);
  const auto big = BitStream::constant(0.5);
  EXPECT_THROW(demultiplex(small, big), StreamContainmentError);
}

TEST(Demultiplex, RejectsStructurallyForeignStream) {
  // Same total rate early on, but the subtrahend's tail exceeds the
  // aggregate's, producing a negative rate later.
  const BitStream aggregate{{0.8, 0.0}, {0.2, 4.0}};
  const BitStream foreign{{0.5, 0.0}, {0.4, 4.0}};
  EXPECT_THROW(demultiplex(aggregate, foreign), StreamContainmentError);
}

// --- filter (Algorithm 3.4) --------------------------------------------------

TEST(Filter, LinkFeasibleStreamPassesUnchanged) {
  const BitStream s{{1.0, 0.0}, {0.5, 2.0}};
  EXPECT_EQ(filter(s), s);
}

TEST(Filter, SmoothsOverloadAtUnitRate) {
  // Rate 2 for 4 time units = 8 bits offered, 4 transmitted, 4 queued.
  // Tail rate 0.5 drains the 4-bit backlog at slope 0.5: drained at
  // t = 4 + 4/0.5 = 12.
  const BitStream s{{2.0, 0.0}, {0.5, 4.0}};
  const BitStream out = filter(s);
  EXPECT_DOUBLE_EQ(out.rate_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(out.rate_at(11.9), 1.0);
  EXPECT_DOUBLE_EQ(out.rate_at(12.0), 0.5);
  // Bit conservation once drained.
  EXPECT_DOUBLE_EQ(out.bits_before(12.0), s.bits_before(12.0));
  EXPECT_DOUBLE_EQ(out.bits_before(20.0), s.bits_before(20.0));
}

TEST(Filter, OutputNeverExceedsLinkRate) {
  const BitStream s{{3.0, 0.0}, {2.0, 1.0}, {0.25, 3.0}};
  const BitStream out = filter(s);
  EXPECT_LE(out.peak_rate(), 1.0);
}

TEST(Filter, PermanentOverloadSaturatesForever) {
  const BitStream out = filter(BitStream::constant(1.5));
  EXPECT_EQ(out, BitStream::constant(1.0));
}

TEST(Filter, ExactlyUnitTailAfterBurstStaysSaturated) {
  const BitStream s{{2.0, 0.0}, {1.0, 1.0}};
  EXPECT_EQ(filter(s), BitStream::constant(1.0));
}

TEST(Filter, InitialBacklogDelaysFeasibleStream) {
  // 3 queued bits ahead of a 0.25-rate stream: drain slope 0.75,
  // drained at t = 4; before that, full rate.
  const BitStream s = BitStream::constant(0.25);
  const BitStream out = filter(s, 3.0);
  EXPECT_DOUBLE_EQ(out.rate_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(out.rate_at(3.9), 1.0);
  EXPECT_DOUBLE_EQ(out.rate_at(4.0), 0.25);
  EXPECT_DOUBLE_EQ(out.bits_before(4.0), 3.0 + s.bits_before(4.0));
}

TEST(Filter, ZeroBacklogZeroRateIsZero) {
  EXPECT_TRUE(filter(BitStream{}).is_zero());
}

TEST(Filter, BacklogWithZeroStreamDrainsAtFullRate) {
  const BitStream out = filter(BitStream{}, 2.0);
  EXPECT_DOUBLE_EQ(out.rate_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(out.rate_at(1.9), 1.0);
  EXPECT_DOUBLE_EQ(out.rate_at(2.0), 0.0);
  EXPECT_DOUBLE_EQ(out.total_bits().value(), 2.0);
}

TEST(Filter, RejectsNegativeBacklog) {
  EXPECT_THROW(filter(BitStream{}, -1.0), std::invalid_argument);
}

TEST(Filter, IsIdempotent) {
  const BitStream s{{2.5, 0.0}, {0.7, 2.0}, {0.2, 9.0}};
  const BitStream once = filter(s);
  EXPECT_EQ(filter(once), once);
}

// --- shift_left ---------------------------------------------------------------

TEST(ShiftLeft, DropsPrefixAndRebasesTime) {
  const BitStream s{{1.0, 0.0}, {0.5, 2.0}, {0.1, 6.0}};
  const BitStream out = shift_left(s, 3.0);
  EXPECT_DOUBLE_EQ(out.rate_at(0.0), 0.5);  // was the rate at t = 3
  EXPECT_DOUBLE_EQ(out.rate_at(3.0), 0.1);  // breakpoint 6 -> 3
  EXPECT_DOUBLE_EQ(out.bits_before(10.0), s.bits_before(13.0) - s.bits_before(3.0));
}

TEST(ShiftLeft, ZeroShiftIsIdentity) {
  const BitStream s{{1.0, 0.0}, {0.5, 2.0}};
  EXPECT_EQ(shift_left(s, 0.0), s);
}

TEST(ShiftLeft, ShiftLandingExactlyOnBreakpoint) {
  const BitStream s{{1.0, 0.0}, {0.5, 2.0}, {0.25, 4.0}};
  const BitStream out = shift_left(s, 2.0);
  EXPECT_DOUBLE_EQ(out.rate_at(0.0), 0.5);
  EXPECT_DOUBLE_EQ(out.rate_at(2.0), 0.25);
}

TEST(ShiftLeft, RejectsNegativeShift) {
  EXPECT_THROW(shift_left(BitStream{}, -0.5), std::invalid_argument);
}

// --- delay (Algorithm 3.1) -----------------------------------------------------

TEST(Delay, ZeroCdvIsIdentity) {
  const BitStream s{{1.0, 0.0}, {0.25, 1.0}};
  EXPECT_EQ(delay(s, 0.0), s);
}

TEST(Delay, ClumpsPrefixIntoFullRateBurst) {
  // CBR at rate 0.25 (one cell at rate 1, then 0.25) delayed by CDV = 8:
  // bits in [0, 8] = 1 + 7*0.25 = 2.75 arrive back-to-back, so the delayed
  // stream runs at rate 1 until its cumulative curve meets A(t + 8).
  const TrafficDescriptor td = TrafficDescriptor::cbr(0.25);
  const BitStream s = td.to_bitstream();
  const double cdv = 8.0;
  const BitStream out = delay(s, cdv);
  EXPECT_DOUBLE_EQ(out.rate_at(0.0), 1.0);
  // A'(t) = min(t, A(t + cdv)), checked densely.
  for (double t = 0; t <= 30.0; t += 0.5) {
    const double expect = std::min(t, s.bits_before(t + cdv));
    EXPECT_NEAR(out.bits_before(t), expect, 1e-9) << "t=" << t;
  }
}

TEST(Delay, MatchesMinFormulaForVbr) {
  const TrafficDescriptor td = TrafficDescriptor::vbr(0.5, 0.1, 4);
  const BitStream s = td.to_bitstream();
  for (const double cdv : {0.5, 1.0, 3.7, 12.0, 64.0}) {
    const BitStream out = delay(s, cdv);
    for (double t = 0; t <= 80.0; t += 0.25) {
      const double expect = std::min(t, s.bits_before(t + cdv));
      EXPECT_NEAR(out.bits_before(t), expect, 1e-9)
          << "cdv=" << cdv << " t=" << t;
    }
  }
}

TEST(Delay, ComposesAdditively) {
  // delay(delay(S, a), b) == delay(S, a + b): jitter accumulates across
  // queueing points exactly.
  const BitStream s = TrafficDescriptor::vbr(0.5, 0.125, 3).to_bitstream();
  const BitStream twice = delay(delay(s, 5.0), 7.0);
  const BitStream once = delay(s, 12.0);
  EXPECT_TRUE(twice.nearly_equal(once))
      << "twice=" << twice << " once=" << once;
}

TEST(Delay, DominatesOriginalStream) {
  const BitStream s = TrafficDescriptor::cbr(0.2).to_bitstream();
  EXPECT_TRUE(delay(s, 16.0).dominates(s));
}

TEST(Delay, MonotoneInCdv) {
  const BitStream s = TrafficDescriptor::vbr(0.8, 0.05, 10).to_bitstream();
  EXPECT_TRUE(delay(s, 20.0).dominates(delay(s, 10.0)));
  EXPECT_TRUE(delay(s, 10.0).dominates(delay(s, 1.0)));
}

TEST(Delay, RejectsNegativeCdv) {
  EXPECT_THROW(delay(BitStream{}, -1.0), std::invalid_argument);
}

TEST(Delay, ZeroStreamStaysZero) {
  EXPECT_TRUE(delay(BitStream{}, 50.0).is_zero());
}

// --- exact arithmetic cross-check ----------------------------------------------

TEST(ExactOps, MultiplexAndFilterAreExact) {
  const ExactBitStream a{{Rational(1), Rational(0)},
                         {Rational(1, 4), Rational(1)}};
  const ExactBitStream b{{Rational(1), Rational(0)},
                         {Rational(1, 2), Rational(3)}};
  const ExactBitStream sum = multiplex(a, b);
  EXPECT_EQ(sum.rate_at(Rational(0)), Rational(2));
  EXPECT_EQ(sum.rate_at(Rational(2)), Rational(5, 4));
  EXPECT_EQ(sum.rate_at(Rational(3)), Rational(3, 4));

  // Overload 2 for [0,1): queue 1; then 5/4 for [1,3): queue 1 + 2*(1/4)
  // = 3/2; then rate 3/4 drains at slope 1/4: drained at 3 + (3/2)/(1/4) = 9.
  const ExactBitStream out = filter(sum);
  EXPECT_EQ(out.rate_at(Rational(0)), Rational(1));
  EXPECT_EQ(out.rate_at(Rational(8)), Rational(1));
  EXPECT_EQ(out.rate_at(Rational(9)), Rational(3, 4));
}

TEST(ExactOps, DelayMatchesMinFormulaExactly) {
  const ExactBitStream s{{Rational(1), Rational(0)},
                         {Rational(1, 3), Rational(1)}};
  const Rational cdv(5);
  const ExactBitStream out = delay(s, cdv);
  for (std::int64_t n = 0; n <= 40; ++n) {
    const Rational t(n, 2);
    const Rational expect =
        std::min(t, s.bits_before(t + cdv));
    EXPECT_EQ(out.bits_before(t), expect) << "t=" << t;
  }
}

}  // namespace
}  // namespace rtcac
