// Unit tests for the sharded thread-safe CAC core (concurrent_cac.h):
// decision parity with the serial SwitchCac, two-phase commit safety
// under racing admits, all-or-nothing multi-hop commits, batched
// teardown equivalence, and a multi-threaded mixed-operation stress.
// The suite carries the "concurrency" ctest label so the tsan CI job
// re-runs it under ThreadSanitizer.

#include "core/concurrent_cac.h"

#include <gtest/gtest.h>

#include <any>
#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include "core/traffic.h"
#include "util/thread_annotations.h"
#include "util/xorshift.h"

namespace rtcac {
namespace {

SwitchCac::Config shard_config(double bound = 64.0) {
  SwitchCac::Config cfg;
  cfg.in_ports = 4;
  cfg.out_ports = 2;
  cfg.priorities = 2;
  cfg.advertised_bound = bound;
  return cfg;
}

// Bursty VBR stream: nonzero backlog, so computed bounds actually move.
BitStream random_stream(Xorshift& rng) {
  const double scr = static_cast<double>(1 + rng.below(4)) / 256.0;
  const double pcr = scr * static_cast<double>(2 + rng.below(4));
  return TrafficDescriptor::vbr(pcr, scr,
                                static_cast<std::uint32_t>(2 + rng.below(14)))
      .to_bitstream();
}

struct Candidate {
  std::size_t in_port;
  std::size_t out_port;
  Priority priority;
  BitStream stream;
};

Candidate random_candidate(Xorshift& rng, const SwitchCac::Config& cfg) {
  return Candidate{rng.below(cfg.in_ports), rng.below(cfg.out_ports),
                   static_cast<Priority>(rng.below(cfg.priorities)),
                   random_stream(rng)};
}

TEST(ConcurrentCac, AdmitMatchesSerialCheckThenAdd) {
  const auto cfg = shard_config();
  ConcurrentCac cac({cfg});
  SwitchCac serial(cfg);
  Xorshift rng(1);
  for (ConnectionId id = 1; id <= 24; ++id) {
    const Candidate c = random_candidate(rng, cfg);
    const auto got =
        cac.admit(0, id, c.in_port, c.out_port, c.priority, c.stream);
    const auto want = serial.check(c.in_port, c.out_port, c.priority, c.stream);
    ASSERT_EQ(got.admitted, want.admitted) << "id " << id;
    EXPECT_EQ(got.reason, want.reason);
    if (want.admitted) {
      serial.add(id, c.in_port, c.out_port, c.priority, c.stream);
      EXPECT_TRUE(cac.contains(0, id));
    } else {
      EXPECT_FALSE(cac.contains(0, id));
    }
  }
  EXPECT_EQ(cac.connection_count(), serial.connection_count());
  for (std::size_t j = 0; j < cfg.out_ports; ++j) {
    for (Priority p = 0; p < cfg.priorities; ++p) {
      EXPECT_EQ(cac.computed_bound(0, j, p), serial.computed_bound(j, p));
      EXPECT_DOUBLE_EQ(cac.advertised(0, j, p), serial.advertised(j, p));
    }
  }
}

TEST(ConcurrentCac, ConcurrentSharedChecksMatchSerial) {
  const auto cfg = shard_config();
  ConcurrentCac cac({cfg});
  SwitchCac serial(cfg);
  Xorshift rng(2);
  for (ConnectionId id = 1; id <= 16; ++id) {
    const Candidate c = random_candidate(rng, cfg);
    if (cac.admit(0, id, c.in_port, c.out_port, c.priority, c.stream)
            .admitted) {
      serial.add(id, c.in_port, c.out_port, c.priority, c.stream);
    }
  }
  std::vector<Candidate> candidates;
  std::vector<SwitchCheckResult> expected;
  for (int i = 0; i < 16; ++i) {
    candidates.push_back(random_candidate(rng, cfg));
    const Candidate& c = candidates.back();
    expected.push_back(
        serial.check(c.in_port, c.out_port, c.priority, c.stream));
  }
  // Readers race each other on the shard's shared lock; the priming
  // invariant makes every check a pure read of clean caches, so all of
  // them must reproduce the serial verdicts and bounds exactly.
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 8; ++round) {
        for (std::size_t i = 0; i < candidates.size(); ++i) {
          const Candidate& c = candidates[i];
          const auto got =
              cac.check(0, c.in_port, c.out_port, c.priority, c.stream);
          if (got.admitted != expected[i].admitted ||
              got.bound_at_priority != expected[i].bound_at_priority) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_TRUE(cac.cache_coherent());
}

TEST(ConcurrentCac, RacingAdmitsNeverOverAdmit) {
  SwitchCac::Config cfg;
  cfg.in_ports = 4;
  cfg.out_ports = 1;
  cfg.priorities = 1;
  cfg.advertised_bound = 24.0;
  ConcurrentCac cac({cfg});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 24;
  std::atomic<std::size_t> admitted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xorshift rng(100 + static_cast<std::uint64_t>(t));
      for (int k = 0; k < kPerThread; ++k) {
        const ConnectionId id =
            static_cast<ConnectionId>(t * kPerThread + k + 1);
        const Candidate c = random_candidate(rng, cfg);
        // Two-phase: speculative check under the shared lock, then
        // admit() re-validates under the exclusive lock.  The
        // speculative verdict may be stale; the commit may not be.
        if (!cac.check(0, c.in_port, c.out_port, c.priority, c.stream)
                 .admitted) {
          continue;
        }
        if (cac.admit(0, id, c.in_port, c.out_port, c.priority, c.stream)
                .admitted) {
          admitted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Enough offered load to guarantee contention actually rejected some.
  EXPECT_GT(admitted.load(), 0u);
  EXPECT_LT(admitted.load(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(cac.connection_count(), admitted.load());
  EXPECT_TRUE(cac.state_consistent());
  EXPECT_TRUE(cac.bandwidth_conserved());
  EXPECT_TRUE(cac.cache_coherent());
  // The committed set must honor the advertised cap: no interleaving of
  // stale checks can have slipped an over-admission through.
  const auto bound = cac.computed_bound(0, 0, 0);
  ASSERT_TRUE(bound.has_value());
  EXPECT_LE(*bound, cfg.advertised_bound + 1e-9);
}

TEST(ConcurrentCac, AdmitPathCommitsAllOrNothing) {
  // Fill shard 1's queue until it rejects the hog stream, then drive a
  // path whose first hop (on the empty shard 0) would admit: the shard-1
  // rejection must leave shard 0 untouched.
  ConcurrentCac cac({shard_config(24.0), shard_config(24.0)});
  const BitStream hog =
      TrafficDescriptor::vbr(0.4, 0.1, 16).to_bitstream();
  // Alternate in_ports: per-input filtering caps any single input link
  // at the link rate, so a queue only backlogs when several inputs feed
  // it at once.
  std::size_t prefilled = 0;
  for (ConnectionId id = 100; id < 164; ++id) {
    if (!cac.admit(1, id, id % 2, 1, 0, hog).admitted) break;
    ++prefilled;
  }
  ASSERT_GT(prefilled, 0u);
  ASSERT_LT(prefilled, 64u) << "shard 1 never filled";
  const std::vector<ConcurrentCac::HopSpec> hops = {
      {.shard = 0, .in_port = 0, .out_port = 0, .priority = 0,
       .arrival = hog},
      {.shard = 1, .in_port = 1, .out_port = 1, .priority = 0,
       .arrival = hog},
  };
  const auto rejected = cac.admit_path(hops, 1);
  EXPECT_FALSE(rejected.admitted);
  EXPECT_EQ(rejected.rejecting_hop, 1u);
  ASSERT_EQ(rejected.hops.size(), 2u);
  EXPECT_TRUE(rejected.hops[0].admitted);
  EXPECT_FALSE(rejected.hops[1].admitted);
  EXPECT_FALSE(cac.contains(0, 1));
  EXPECT_FALSE(cac.contains(1, 1));
  EXPECT_EQ(cac.connection_count(), prefilled);

  // Same path against a generous second shard commits on every hop.
  ConcurrentCac open(
      {shard_config(64.0), shard_config(64.0), shard_config(64.0)});
  std::vector<ConcurrentCac::HopSpec> wide = hops;
  wide.push_back({.shard = 2, .in_port = 2, .out_port = 0, .priority = 1,
                  .arrival = hog});
  const auto accepted = open.admit_path(wide, 7);
  EXPECT_TRUE(accepted.admitted);
  EXPECT_EQ(accepted.rejecting_hop, ConcurrentCac::PathResult::npos);
  EXPECT_EQ(accepted.hops.size(), 3u);
  for (std::size_t s = 0; s < 3; ++s) EXPECT_TRUE(open.contains(s, 7));
  EXPECT_EQ(open.connection_count(), 3u);  // hop reservations
  EXPECT_TRUE(open.state_consistent());
}

TEST(ConcurrentCac, AcceptancePredicateVetoesWithoutCommit) {
  ConcurrentCac cac({shard_config(), shard_config()});
  Xorshift rng(4);
  const BitStream stream = random_stream(rng);
  const std::vector<ConcurrentCac::HopSpec> hops = {
      {.shard = 0, .in_port = 0, .out_port = 0, .priority = 0,
       .arrival = stream},
      {.shard = 1, .in_port = 0, .out_port = 1, .priority = 0,
       .arrival = stream},
  };
  // Every hop admits, but the caller's end-to-end predicate (e.g. the
  // deadline test) says no: nothing may be committed, and the hop
  // results are still reported so the caller can explain the rejection.
  int calls = 0;
  const auto veto = +[](const std::vector<HopVerdict>& checked, void* ctx) {
    ++*static_cast<int*>(ctx);
    return checked.empty();  // always false here
  };
  const auto result = cac.admit_path(hops, 1, SwitchCac::kPermanentLease,
                                     veto, &calls);
  EXPECT_FALSE(result.admitted);
  EXPECT_EQ(result.rejecting_hop, ConcurrentCac::PathResult::npos);
  EXPECT_EQ(result.hops.size(), 2u);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(cac.connection_count(), 0u);

  const auto pass = +[](const std::vector<HopVerdict>&, void*) {
    return true;
  };
  EXPECT_TRUE(
      cac.admit_path(hops, 1, SwitchCac::kPermanentLease, pass, nullptr)
          .admitted);
  EXPECT_EQ(cac.connection_count(), 2u);
}

TEST(ConcurrentCac, ConcurrentOverlappingPathsNoDeadlock) {
  // Paths cross overlapping shard pairs in every order; the canonical
  // ascending-shard lock order inside admit_path must keep the racing
  // commits deadlock-free, and every committed path must be all-hops.
  ConcurrentCac cac({shard_config(96.0), shard_config(96.0),
                     shard_config(96.0)});
  const std::vector<std::vector<std::size_t>> pair_sets = {
      {0, 1}, {1, 2}, {2, 0}, {0, 2}};
  std::atomic<std::size_t> committed_hops{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xorshift rng(200 + static_cast<std::uint64_t>(t));
      for (int k = 0; k < 32; ++k) {
        const ConnectionId id = static_cast<ConnectionId>(t * 1000 + k + 1);
        const auto& shards =
            pair_sets[static_cast<std::size_t>(t + k) % pair_sets.size()];
        std::vector<ConcurrentCac::HopSpec> hops;
        for (const std::size_t shard : shards) {
          hops.push_back({.shard = shard, .in_port = rng.below(4),
                          .out_port = rng.below(2),
                          .priority = static_cast<Priority>(rng.below(2)),
                          .arrival = random_stream(rng)});
        }
        if (cac.admit_path(hops, id).admitted) {
          committed_hops.fetch_add(hops.size(), std::memory_order_relaxed);
          if (k % 4 == 3) {  // churn: release some paths again
            for (const std::size_t shard : shards) {
              ASSERT_TRUE(cac.remove(shard, id));
              committed_hops.fetch_sub(1, std::memory_order_relaxed);
            }
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(cac.connection_count(), committed_hops.load());
  EXPECT_TRUE(cac.state_consistent());
  EXPECT_TRUE(cac.bandwidth_conserved());
  EXPECT_TRUE(cac.cache_coherent());
}

TEST(ConcurrentCac, BatchedDrainMatchesImmediateRemoval) {
  const auto cfg = shard_config();
  ConcurrentCac immediate({cfg, cfg});
  ConcurrentCac batched({cfg, cfg});
  Xorshift rng_a(5);
  Xorshift rng_b(5);
  std::vector<ConnectionId> admitted;
  for (ConnectionId id = 1; id <= 20; ++id) {
    const std::size_t shard = id % 2;
    const Candidate a = random_candidate(rng_a, cfg);
    const Candidate b = random_candidate(rng_b, cfg);
    const bool in_a =
        immediate.admit(shard, id, a.in_port, a.out_port, a.priority, a.stream)
            .admitted;
    const bool in_b =
        batched.admit(shard, id, b.in_port, b.out_port, b.priority, b.stream)
            .admitted;
    ASSERT_EQ(in_a, in_b);
    if (in_a) admitted.push_back(id);
  }
  std::size_t queued = 0;
  for (const ConnectionId id : admitted) {
    if (id % 3 != 0) continue;  // tear down a third of the population
    ASSERT_TRUE(immediate.remove(id % 2, id));
    batched.queue_remove(id % 2, id);
    ++queued;
  }
  batched.queue_remove(0, 999'999);  // unknown ids are skipped, not fatal
  EXPECT_EQ(batched.pending_removals(), queued + 1);
  EXPECT_EQ(batched.drain_removals(), queued);
  EXPECT_EQ(batched.pending_removals(), 0u);
  EXPECT_EQ(batched.drain_removals(), 0u);  // idempotent when empty

  // One batched remove_many per shard must land on the same state as
  // one-at-a-time removal: same population, same rebuilt bounds.
  EXPECT_EQ(batched.connection_count(), immediate.connection_count());
  for (std::size_t shard = 0; shard < 2; ++shard) {
    for (std::size_t j = 0; j < cfg.out_ports; ++j) {
      for (Priority p = 0; p < cfg.priorities; ++p) {
        EXPECT_EQ(batched.computed_bound(shard, j, p),
                  immediate.computed_bound(shard, j, p));
      }
    }
  }
  EXPECT_TRUE(batched.state_consistent());
  EXPECT_TRUE(batched.bandwidth_conserved());
  EXPECT_TRUE(batched.cache_coherent());
}

TEST(ConcurrentCac, LeaseLifecycleAcrossShards) {
  const auto cfg = shard_config();
  ConcurrentCac cac({cfg, cfg});
  Xorshift rng(6);
  for (ConnectionId id = 1; id <= 3; ++id) {
    const Candidate c = random_candidate(rng, cfg);
    ASSERT_TRUE(cac.admit(id % 2, id, c.in_port, c.out_port, c.priority,
                          c.stream, /*lease_expiry=*/50.0)
                    .admitted);
  }
  EXPECT_TRUE(cac.renew_lease(0, 2, 200.0));
  EXPECT_TRUE(cac.make_permanent(1, 3));
  EXPECT_FALSE(cac.renew_lease(0, 77, 200.0));  // unknown id
  EXPECT_TRUE(cac.reclaim_all(49.0).empty());   // nothing expired yet
  const auto swept = cac.reclaim_all(100.0);
  ASSERT_EQ(swept.size(), 1u);  // id 1 expired; 2 renewed, 3 permanent
  EXPECT_EQ(swept.front(), 1u);
  EXPECT_FALSE(cac.contains(1, 1));
  EXPECT_TRUE(cac.contains(0, 2));
  EXPECT_TRUE(cac.contains(1, 3));
  // The renewed lease runs out eventually; the permanent one never does.
  EXPECT_EQ(cac.reclaim(0, 250.0).size(), 1u);
  EXPECT_TRUE(cac.reclaim_all(1e18).empty());
  EXPECT_TRUE(cac.state_consistent());
}

// The ThreadSanitizer target: every public operation racing on a
// multi-shard core.  Correctness here is "no data race, no torn state":
// after quiescing, all three audits must hold on every shard.
TEST(ConcurrentCac, StressMixedOperationsLeaveCoherentState) {
  const auto cfg = shard_config(128.0);
  ConcurrentCac cac({cfg, cfg, cfg});
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xorshift rng(300 + static_cast<std::uint64_t>(t));
      std::vector<std::pair<std::size_t, ConnectionId>> mine;  // shard, id
      for (int k = 0; k < 160; ++k) {
        const auto dice = rng.below(10);
        const std::size_t shard = rng.below(3);
        if (dice < 5) {
          const Candidate c = random_candidate(rng, cfg);
          (void)cac.check(shard, c.in_port, c.out_port, c.priority, c.stream);
        } else if (dice < 8) {
          const ConnectionId id =
              static_cast<ConnectionId>(t * 10000 + k + 1);
          const Candidate c = random_candidate(rng, cfg);
          const double lease = rng.below(4) == 0 ? 1e6 : SwitchCac::kPermanentLease;
          if (cac.admit(shard, id, c.in_port, c.out_port, c.priority, c.stream,
                        lease)
                  .admitted) {
            mine.emplace_back(shard, id);
          }
        } else if (dice == 8 && !mine.empty()) {
          const auto [s, id] = mine.back();
          mine.pop_back();
          // Ids are thread-local, so exactly one of remove/drain wins.
          if (rng.below(2) == 0) {
            (void)cac.remove(s, id);
          } else {
            cac.queue_remove(s, id);
          }
        } else {
          if (rng.below(4) == 0) {
            (void)cac.reclaim_all(2e6);
          } else {
            (void)cac.drain_removals();
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  (void)cac.drain_removals();  // quiesced: apply any leftover backlog
  EXPECT_EQ(cac.pending_removals(), 0u);
  EXPECT_TRUE(cac.state_consistent());
  EXPECT_TRUE(cac.bandwidth_conserved());
  EXPECT_TRUE(cac.cache_coherent());
}

// --- optimistic snapshot read path --------------------------------------

ConcurrentCac::HopSpec hop_spec(std::size_t shard, const Candidate& c) {
  ConcurrentCac::HopSpec hop;
  hop.shard = shard;
  hop.in_port = c.in_port;
  hop.out_port = c.out_port;
  hop.priority = c.priority;
  hop.arrival = std::any(c.stream);
  return hop;
}

TEST(ConcurrentCacSnapshot, SnapshotChecksMatchSerialVerdicts) {
  const auto cfg = shard_config();
  ConcurrentCac cac({cfg});
  SwitchCac serial(cfg);
  Xorshift rng(7);
  for (ConnectionId id = 1; id <= 20; ++id) {
    const Candidate c = random_candidate(rng, cfg);
    if (cac.admit(0, id, c.in_port, c.out_port, c.priority, c.stream)
            .admitted) {
      serial.add(id, c.in_port, c.out_port, c.priority, c.stream);
    }
  }
  ASSERT_TRUE(cac.snapshots_enabled(0));
  for (int i = 0; i < 32; ++i) {
    const Candidate c = random_candidate(rng, cfg);
    ConcurrentCac::CheckStamp stamp;
    const HopVerdict got = cac.check_hop(hop_spec(0, c), &stamp);
    const auto want = serial.check(c.in_port, c.out_port, c.priority, c.stream);
    ASSERT_EQ(got.admitted, want.admitted) << "candidate " << i;
    EXPECT_EQ(got.detail, want.reason) << "candidate " << i;
    if (want.admitted) {
      EXPECT_DOUBLE_EQ(got.bound, want.bound_at_priority.value());
    }
    // The stamp witnesses every queue of the checked point.
    EXPECT_EQ(stamp.shard, 0u);
    EXPECT_EQ(stamp.out_port, c.out_port);
    EXPECT_EQ(stamp.priority, c.priority);
    ASSERT_EQ(stamp.versions.size(), cfg.priorities);
  }
}

TEST(ConcurrentCacSnapshot, CheckPathTakesNoSharedLocksInAuditBuilds) {
  if (!LockStats::enabled()) {
    GTEST_SKIP() << "LockStats counts SharedMutex traffic only in audit "
                    "builds (RTCAC_AUDIT_ENABLED)";
  }
  const auto cfg = shard_config();
  ConcurrentCac cac({cfg});
  Xorshift rng(8);
  for (ConnectionId id = 1; id <= 16; ++id) {
    const Candidate c = random_candidate(rng, cfg);
    (void)cac.admit(0, id, c.in_port, c.out_port, c.priority, c.stream);
  }
  std::vector<ConcurrentCac::HopSpec> probes;
  for (int i = 0; i < 64; ++i) {
    probes.push_back(hop_spec(0, random_candidate(rng, cfg)));
  }
  // Quiesced and eagerly published (default publish_window == 1): every
  // probe must ride the snapshot with zero shared_mutex acquisitions —
  // the tentpole promise of the optimistic read path.
  const std::uint64_t shared_before = LockStats::shared_acquisitions();
  const std::uint64_t exclusive_before = LockStats::exclusive_acquisitions();
  std::size_t admitted = 0;
  for (const auto& probe : probes) {
    if (cac.check_hop(probe).admitted) ++admitted;
  }
  EXPECT_EQ(LockStats::shared_acquisitions() - shared_before, 0u);
  EXPECT_EQ(LockStats::exclusive_acquisitions() - exclusive_before, 0u);
  EXPECT_LE(admitted, probes.size());
}

TEST(ConcurrentCacSnapshot, PointVersionsCoverTheDependencyCone) {
  auto cfg = shard_config(1e6);  // generous: every candidate admits
  ConcurrentCac cac({cfg});
  const BitStream stream = TrafficDescriptor::vbr(0.02, 0.01, 4).to_bitstream();
  const auto version = [&](std::size_t out, Priority p) {
    return cac.point_version(0, out, p);
  };
  const std::uint64_t v00 = version(0, 0), v01 = version(0, 1);
  const std::uint64_t v10 = version(1, 0), v11 = version(1, 1);
  // A commit at priority 1 invalidates only queue (0, 1): lower
  // priorities never depend on lower-priority traffic.
  ASSERT_TRUE(cac.admit(0, 1, 0, 0, 1, stream).admitted);
  EXPECT_EQ(version(0, 0), v00);
  EXPECT_GT(version(0, 1), v01);
  // A commit at priority 0 dirties the whole cone [0, P) of its out-port.
  ASSERT_TRUE(cac.admit(0, 2, 1, 0, 0, stream).admitted);
  EXPECT_GT(version(0, 0), v00);
  // The other out-port never moved.
  EXPECT_EQ(version(1, 0), v10);
  EXPECT_EQ(version(1, 1), v11);
  // Removal is a mutation like any other.
  const std::uint64_t v01_mid = version(0, 1);
  ASSERT_TRUE(cac.remove(0, 1));
  EXPECT_GT(version(0, 1), v01_mid);
}

TEST(ConcurrentCacSnapshot, StaleStampNeverOverAdmits) {
  SwitchCac::Config cfg;
  cfg.in_ports = 4;
  cfg.out_ports = 1;
  cfg.priorities = 1;
  cfg.advertised_bound = 24.0;
  ConcurrentCac cac({cfg});
  const BitStream hog = TrafficDescriptor::vbr(0.4, 0.1, 16).to_bitstream();
  // Speculative verdicts against the empty point, one per candidate
  // input: both admitted.
  std::vector<ConcurrentCac::SpeculativeHop> specs(2);
  for (std::size_t in = 0; in < 2; ++in) {
    const Candidate probe{in, 0, 0, hog};
    specs[in].verdict = cac.check_hop(hop_spec(0, probe), &specs[in].stamp);
    ASSERT_TRUE(specs[in].verdict.admitted);
  }
  // Interleaved commits fill the queue until it rejects the hog.
  std::size_t prefilled = 0;
  for (ConnectionId id = 100; id < 164; ++id) {
    if (!cac.admit(0, id, id % 2, 0, 0, hog).admitted) break;
    ++prefilled;
  }
  ASSERT_GT(prefilled, 0u);
  ASSERT_LT(prefilled, 64u) << "queue never filled";
  // The input the fill loop broke on is the one the live check now
  // rejects; drive the stale speculative verdict for exactly that hop.
  const Candidate cand{(100 + prefilled) % 2, 0, 0, hog};
  ASSERT_FALSE(
      cac.check(0, cand.in_port, cand.out_port, cand.priority, cand.stream)
          .admitted);
  const HopVerdict early = specs[cand.in_port].verdict;
  const ConcurrentCac::CheckStamp stamp = specs[cand.in_port].stamp;
  // The stale admitted verdict must NOT be reused: its stamp no longer
  // matches the live version counters, so admit_path re-checks the hop
  // against the committed state and rejects.
  const std::vector<ConcurrentCac::HopSpec> hops = {hop_spec(0, cand)};
  const std::vector<ConcurrentCac::SpeculativeHop> stale = {{early, stamp}};
  const auto rejected = cac.admit_path(hops, 999, SwitchCac::kPermanentLease,
                                       nullptr, nullptr, stale);
  EXPECT_FALSE(rejected.admitted);
  EXPECT_EQ(rejected.rejecting_hop, 0u);
  EXPECT_EQ(rejected.hops_reused, 0u);
  EXPECT_EQ(rejected.hops_revalidated, 1u);
  EXPECT_FALSE(cac.contains(0, 999));
  EXPECT_EQ(cac.connection_count(), prefilled);
  const auto bound = cac.computed_bound(0, 0, 0);
  ASSERT_TRUE(bound.has_value());
  EXPECT_LE(*bound, cfg.advertised_bound + 1e-9);
}

TEST(ConcurrentCacSnapshot, CurrentStampReusesSpeculativeVerdict) {
  ConcurrentCac cac({shard_config()});
  Xorshift rng(9);
  const Candidate cand = random_candidate(rng, shard_config());
  ConcurrentCac::CheckStamp stamp;
  const HopVerdict verdict = cac.check_hop(hop_spec(0, cand), &stamp);
  ASSERT_TRUE(verdict.admitted);
  // Nothing committed in between: the stamp still matches under the
  // exclusive lock, so admit_path trusts the speculative verdict.
  const std::vector<ConcurrentCac::HopSpec> hops = {hop_spec(0, cand)};
  const std::vector<ConcurrentCac::SpeculativeHop> fresh = {{verdict, stamp}};
  const auto result = cac.admit_path(hops, 1, SwitchCac::kPermanentLease,
                                     nullptr, nullptr, fresh);
  EXPECT_TRUE(result.admitted);
  EXPECT_EQ(result.hops_reused, 1u);
  EXPECT_EQ(result.hops_revalidated, 0u);
  EXPECT_TRUE(cac.contains(0, 1));
  // A null stamp (empty versions) never validates — the conservative
  // fallback for locked checks of non-snapshot policies.
  ConcurrentCac::CheckStamp null_stamp;
  null_stamp.out_port = cand.out_port;
  null_stamp.priority = cand.priority;
  const std::vector<ConcurrentCac::SpeculativeHop> null_spec = {
      {verdict, null_stamp}};
  const auto revalidated = cac.admit_path(hops, 2, SwitchCac::kPermanentLease,
                                          nullptr, nullptr, null_spec);
  EXPECT_EQ(revalidated.hops_reused, 0u);
  EXPECT_EQ(revalidated.hops_revalidated, 1u);
}

TEST(ConcurrentCacSnapshot, PublishWindowDefersExportsUntilFlush) {
  const auto cfg = shard_config(1e6);
  const BitStream stream = TrafficDescriptor::vbr(0.02, 0.01, 4).to_bitstream();
  // Eager window: every commit republishes, so there is nothing to flush.
  ConcurrentCac eager({cfg});
  ASSERT_TRUE(eager.admit(0, 1, 0, 0, 0, stream).admitted);
  EXPECT_EQ(eager.publish_snapshots(), 0u);
  // Window of 4: three commits stay inside the window, publication is
  // deferred and the flush republishes the touched out-port once.
  ConcurrentCac batched({cfg}, ConcurrentCac::Options{.publish_window = 4});
  for (ConnectionId id = 1; id <= 3; ++id) {
    ASSERT_TRUE(batched.admit(0, id, 0, 0, 0, stream).admitted);
  }
  EXPECT_EQ(batched.publish_snapshots(), 1u);
  EXPECT_EQ(batched.publish_snapshots(), 0u);  // idempotent once flushed
}

TEST(ConcurrentCacSnapshot, DeferredPublicationNeverServesStaleVerdicts) {
  // With publication deferred far beyond the trace, every check_hop
  // must still match the serial oracle: the version stamps go stale and
  // the reader self-refreshes (or falls back to the shared lock).
  const auto cfg = shard_config();
  ConcurrentCac cac({cfg}, ConcurrentCac::Options{.publish_window = 100});
  SwitchCac serial(cfg);
  Xorshift rng(10);
  for (ConnectionId id = 1; id <= 24; ++id) {
    const Candidate c = random_candidate(rng, cfg);
    const auto got =
        cac.admit(0, id, c.in_port, c.out_port, c.priority, c.stream);
    ASSERT_EQ(got.admitted,
              serial.check(c.in_port, c.out_port, c.priority, c.stream)
                  .admitted);
    if (got.admitted) serial.add(id, c.in_port, c.out_port, c.priority,
                                 c.stream);
    const Candidate probe = random_candidate(rng, cfg);
    const HopVerdict hop = cac.check_hop(hop_spec(0, probe));
    const auto want =
        serial.check(probe.in_port, probe.out_port, probe.priority,
                     probe.stream);
    ASSERT_EQ(hop.admitted, want.admitted) << "after id " << id;
    EXPECT_EQ(hop.detail, want.reason);
  }
  EXPECT_TRUE(cac.cache_coherent());
}

// The snapshot-reclamation TSan target: readers pin publications via
// shared_ptr while writers churn state, republish, and reclaim leases.
// Seeded; correctness here is "no data race, no torn snapshot" plus
// post-quiesce agreement with the live state.
TEST(ConcurrentCacSnapshot, ReadersPinSnapshotsAcrossConcurrentChurn) {
  const auto cfg = shard_config(96.0);
  ConcurrentCac cac({cfg, cfg}, ConcurrentCac::Options{.publish_window = 3});
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      Xorshift rng(400 + static_cast<std::uint64_t>(t));
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t shard = rng.below(2);
        const Candidate c = random_candidate(rng, cfg);
        ConcurrentCac::CheckStamp stamp;
        const HopVerdict v = cac.check_hop(hop_spec(shard, c), &stamp);
        // Any verdict is acceptable mid-race; the stamp must always
        // cover the full point (snapshots are enabled for bitstream).
        if (stamp.versions.size() != cfg.priorities) std::abort();
        reads.fetch_add(1 + static_cast<std::size_t>(v.admitted),
                        std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&, t] {
      Xorshift rng(500 + static_cast<std::uint64_t>(t));
      std::vector<std::pair<std::size_t, ConnectionId>> mine;
      for (int k = 0; k < 240; ++k) {
        const std::size_t shard = rng.below(2);
        const auto dice = rng.below(8);
        if (dice < 4) {
          const ConnectionId id =
              static_cast<ConnectionId>(t * 10000 + k + 1);
          const Candidate c = random_candidate(rng, cfg);
          const double lease = rng.below(4) == 0 ? 1e6 : SwitchCac::kPermanentLease;
          if (cac.admit(shard, id, c.in_port, c.out_port, c.priority,
                        c.stream, lease)
                  .admitted) {
            mine.emplace_back(shard, id);
          }
        } else if (dice < 6 && !mine.empty()) {
          const auto [s, id] = mine.back();
          mine.pop_back();
          if (rng.below(2) == 0) {
            (void)cac.remove(s, id);
          } else {
            cac.queue_remove(s, id);
          }
        } else if (dice == 6) {
          (void)cac.drain_removals();
        } else {
          if (rng.below(2) == 0) {
            (void)cac.reclaim_all(2e6);
          } else {
            (void)cac.publish_snapshots();
          }
        }
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& r : readers) r.join();
  EXPECT_GT(reads.load(), 0u);
  (void)cac.drain_removals();
  (void)cac.publish_snapshots();
  EXPECT_TRUE(cac.state_consistent());
  EXPECT_TRUE(cac.bandwidth_conserved());
  EXPECT_TRUE(cac.cache_coherent());
  // Quiesced and flushed: the snapshot verdict agrees with the live
  // locked check again.
  Xorshift rng(600);
  for (int i = 0; i < 16; ++i) {
    const std::size_t shard = rng.below(2);
    const Candidate c = random_candidate(rng, cfg);
    const HopVerdict snap = cac.check_hop(hop_spec(shard, c));
    const auto live =
        cac.check(shard, c.in_port, c.out_port, c.priority, c.stream);
    ASSERT_EQ(snap.admitted, live.admitted) << "probe " << i;
    EXPECT_EQ(snap.detail, live.reason);
  }
}

TEST(ConcurrentCac, ShardRangeIsChecked) {
  ConcurrentCac cac({shard_config()});
  EXPECT_EQ(cac.shard_count(), 1u);
  EXPECT_THROW(static_cast<void>(cac.contains(1, 1)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(cac.advertised(5, 0, 0)), std::out_of_range);
}

}  // namespace
}  // namespace rtcac
