// Unit tests for traffic descriptors and Algorithm 2.1 (Section 2).

#include "core/traffic.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace rtcac {
namespace {

TEST(TrafficDescriptor, CbrFactory) {
  const auto td = TrafficDescriptor::cbr(0.25);
  EXPECT_TRUE(td.is_cbr());
  EXPECT_DOUBLE_EQ(td.pcr, 0.25);
  EXPECT_DOUBLE_EQ(td.scr, 0.25);
  EXPECT_EQ(td.mbs, 1u);
  EXPECT_NO_THROW(td.validate());
}

TEST(TrafficDescriptor, VbrFactory) {
  const auto td = TrafficDescriptor::vbr(0.5, 0.1, 8);
  EXPECT_FALSE(td.is_cbr());
  EXPECT_DOUBLE_EQ(td.average_rate(), 0.1);
  EXPECT_NO_THROW(td.validate());
}

TEST(TrafficDescriptor, ValidationRejectsBadParameters) {
  EXPECT_THROW(TrafficDescriptor::cbr(0.0).validate(), std::invalid_argument);
  EXPECT_THROW(TrafficDescriptor::cbr(-0.5).validate(), std::invalid_argument);
  EXPECT_THROW(TrafficDescriptor::cbr(1.5).validate(), std::invalid_argument);
  EXPECT_THROW(TrafficDescriptor::vbr(0.5, 0.6, 4).validate(),
               std::invalid_argument);  // SCR > PCR
  EXPECT_THROW(TrafficDescriptor::vbr(0.5, 0.0, 4).validate(),
               std::invalid_argument);
  EXPECT_THROW((TrafficDescriptor{0.5, 0.1, 0}.validate()),
               std::invalid_argument);
}

TEST(TrafficDescriptor, CbrBitStreamHasTwoSegments) {
  // One cell at link rate, then PCR forever.
  const BitStream s = TrafficDescriptor::cbr(0.25).to_bitstream();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.rate_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.rate_at(1.0), 0.25);
}

TEST(TrafficDescriptor, FullRateCbrIsJustTheLink) {
  const BitStream s = TrafficDescriptor::cbr(1.0).to_bitstream();
  EXPECT_EQ(s, BitStream::constant(1.0));
}

TEST(TrafficDescriptor, VbrBitStreamMatchesAlgorithm21) {
  // S = {(1, 0), (PCR, 1), (SCR, 1 + (MBS-1)/PCR)}.
  const auto td = TrafficDescriptor::vbr(0.5, 0.1, 4);
  const BitStream s = td.to_bitstream();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.segments()[0].rate, 1.0);
  EXPECT_DOUBLE_EQ(s.segments()[0].start, 0.0);
  EXPECT_DOUBLE_EQ(s.segments()[1].rate, 0.5);
  EXPECT_DOUBLE_EQ(s.segments()[1].start, 1.0);
  EXPECT_DOUBLE_EQ(s.segments()[2].rate, 0.1);
  EXPECT_DOUBLE_EQ(s.segments()[2].start, 1.0 + 3.0 / 0.5);
}

TEST(TrafficDescriptor, VbrAtFullPeakRateBurstsAtLinkRate) {
  // PCR == 1: the whole MBS burst rides the first full-rate segment.
  const auto td = TrafficDescriptor::vbr(1.0, 0.25, 5);
  const BitStream s = td.to_bitstream();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.segments()[1].start, 5.0);
  EXPECT_DOUBLE_EQ(s.segments()[1].rate, 0.25);
}

TEST(TrafficDescriptor, VbrWithScrEqualPcrCollapses) {
  const auto td = TrafficDescriptor::vbr(0.5, 0.5, 7);
  const BitStream s = td.to_bitstream();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.segments()[1].rate, 0.5);
}

TEST(TrafficDescriptor, ExactBitStreamAgreesWithDouble) {
  const auto td = TrafficDescriptor::vbr(0.5, 0.125, 6);
  const BitStream d = td.to_bitstream();
  const ExactBitStream e = td.to_exact_bitstream(64);
  ASSERT_EQ(d.size(), e.size());
  for (std::size_t k = 0; k < d.size(); ++k) {
    EXPECT_DOUBLE_EQ(d.segments()[k].rate, e.segments()[k].rate.to_double());
    EXPECT_DOUBLE_EQ(d.segments()[k].start,
                     e.segments()[k].start.to_double());
  }
}

TEST(TrafficDescriptor, ExactBitStreamRejectsInexactRates) {
  const auto td = TrafficDescriptor::cbr(1.0 / 3.0);
  EXPECT_THROW(td.to_exact_bitstream(64), std::invalid_argument);
  EXPECT_NO_THROW(td.to_exact_bitstream(3));
}

TEST(TrafficDescriptor, ToStringNamesTheService) {
  EXPECT_NE(TrafficDescriptor::cbr(0.5).to_string().find("CBR"),
            std::string::npos);
  EXPECT_NE(TrafficDescriptor::vbr(0.5, 0.1, 2).to_string().find("VBR"),
            std::string::npos);
}

// --- greedy cell generation (the discrete side of Fig. 1) ------------------

TEST(GreedyCellTimes, CbrIsPeriodic) {
  const auto times = greedy_cell_times(TrafficDescriptor::cbr(0.25), 5);
  ASSERT_EQ(times.size(), 5u);
  for (std::size_t k = 0; k < times.size(); ++k) {
    EXPECT_DOUBLE_EQ(times[k], 4.0 * static_cast<double>(k));
  }
}

TEST(GreedyCellTimes, VbrBurstThenSustained) {
  // MBS=3 at PCR=0.5 (spacing 2), then 1/SCR spacing (Eq. 1 literal).
  const auto td = TrafficDescriptor::vbr(0.5, 0.1, 3);
  const auto times = greedy_cell_times(td, 5);
  ASSERT_EQ(times.size(), 5u);
  EXPECT_DOUBLE_EQ(times[0], 0.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
  EXPECT_DOUBLE_EQ(times[2], 4.0);
  EXPECT_DOUBLE_EQ(times[3], 14.0);  // 4 + 1/SCR
  EXPECT_DOUBLE_EQ(times[4], 24.0);
}

TEST(GreedyCellTimes, ZeroCountIsEmpty) {
  EXPECT_TRUE(greedy_cell_times(TrafficDescriptor::cbr(0.5), 0).empty());
}

TEST(GreedyCellTimes, GreedyScheduleConforms) {
  for (const auto td :
       {TrafficDescriptor::cbr(0.2), TrafficDescriptor::vbr(0.5, 0.1, 3),
        TrafficDescriptor::vbr(1.0, 0.05, 10),
        TrafficDescriptor::vbr(0.8, 0.7, 2)}) {
    EXPECT_TRUE(conforms(td, greedy_cell_times(td, 64))) << td.to_string();
  }
}

TEST(GreedyCellTimes, EnvelopeDominatesDiscreteCells) {
  // Every cell, transmitted at link rate over [t_k, t_k + 1), must fit
  // under the Algorithm 2.1 envelope: sum of per-cell contributions up to
  // t never exceeds A(t).
  for (const auto td :
       {TrafficDescriptor::cbr(0.3), TrafficDescriptor::vbr(0.5, 0.1, 3),
        TrafficDescriptor::vbr(0.25, 0.2, 6),
        TrafficDescriptor::vbr(1.0, 0.1, 4)}) {
    const BitStream envelope = td.to_bitstream();
    const auto times = greedy_cell_times(td, 48);
    const double horizon = times.back() + 2;
    for (double t = 0; t <= horizon; t += 0.125) {
      double discrete = 0;
      for (const double tk : times) {
        discrete += std::clamp(t - tk, 0.0, 1.0);
      }
      EXPECT_LE(discrete, envelope.bits_before(t) + 1e-9)
          << td.to_string() << " t=" << t;
    }
  }
}

TEST(Conforms, DetectsPeakViolation) {
  const auto td = TrafficDescriptor::cbr(0.5);
  EXPECT_TRUE(conforms(td, {0.0, 2.0, 4.0}));
  EXPECT_FALSE(conforms(td, {0.0, 1.0}));  // spacing < 1/PCR
}

TEST(Conforms, DetectsSustainedViolation) {
  // MBS=2 at PCR=0.5: two cells 2 apart are fine, a third at peak spacing
  // is not (tokens exhausted; must wait 1/SCR).
  const auto td = TrafficDescriptor::vbr(0.5, 0.1, 2);
  EXPECT_TRUE(conforms(td, {0.0, 2.0}));
  EXPECT_FALSE(conforms(td, {0.0, 2.0, 4.0}));
  EXPECT_TRUE(conforms(td, {0.0, 2.0, 12.0}));
}

TEST(Conforms, EmptyAndUnsortedInputs) {
  const auto td = TrafficDescriptor::cbr(0.5);
  EXPECT_TRUE(conforms(td, {}));
  EXPECT_FALSE(conforms(td, {2.0, 0.0}));
}

}  // namespace
}  // namespace rtcac
