// Property-based tests of the stream algebra: randomized streams, checked
// against algebraic invariants and against the exact Rational
// instantiation.  These are the tests that would catch a subtly wrong
// drain-point or breakpoint-merge computation that unit cases miss.

#include <gtest/gtest.h>

#include <vector>

#include "core/delay_bound.h"
#include "core/stream_ops.h"
#include "util/xorshift.h"

namespace rtcac {
namespace {

// Random non-increasing step stream with rational-friendly values: rates
// are multiples of 1/64 in [0, max_rate], times multiples of 1/4.
BitStream random_stream(Xorshift& rng, double max_rate = 1.0,
                        std::size_t max_segments = 5) {
  const std::size_t n = 1 + rng.below(max_segments);
  std::vector<double> rates;
  for (std::size_t i = 0; i < n; ++i) {
    rates.push_back(static_cast<double>(rng.below(
                        static_cast<std::uint64_t>(max_rate * 64) + 1)) /
                    64.0);
  }
  std::sort(rates.rbegin(), rates.rend());
  std::vector<Segment> segs;
  double t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    segs.push_back(Segment{rates[i], t});
    t += 0.25 * static_cast<double>(1 + rng.below(40));
  }
  return BitStream(std::move(segs));
}

ExactBitStream to_exact(const BitStream& s) {
  std::vector<ExactSegment> segs;
  for (const auto& seg : s.segments()) {
    segs.push_back(ExactSegment{
        Rational(static_cast<std::int64_t>(std::lround(seg.rate * 64)), 64),
        Rational(static_cast<std::int64_t>(std::lround(seg.start * 4)), 4)});
  }
  return ExactBitStream(std::move(segs));
}

class StreamPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, StreamPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 50));

TEST_P(StreamPropertyTest, MultiplexCommutes) {
  Xorshift rng(GetParam());
  const BitStream a = random_stream(rng);
  const BitStream b = random_stream(rng);
  EXPECT_TRUE(multiplex(a, b).nearly_equal(multiplex(b, a)));
}

TEST_P(StreamPropertyTest, MultiplexAssociates) {
  Xorshift rng(GetParam() * 7919 + 1);
  const BitStream a = random_stream(rng);
  const BitStream b = random_stream(rng);
  const BitStream c = random_stream(rng);
  EXPECT_TRUE(multiplex(multiplex(a, b), c)
                  .nearly_equal(multiplex(a, multiplex(b, c))));
}

TEST_P(StreamPropertyTest, DemultiplexInvertsMultiplex) {
  Xorshift rng(GetParam() * 104729 + 3);
  const BitStream a = random_stream(rng);
  const BitStream b = random_stream(rng);
  EXPECT_TRUE(demultiplex(multiplex(a, b), b).nearly_equal(a));
}

TEST_P(StreamPropertyTest, FilterConservesBitsAfterDrain) {
  Xorshift rng(GetParam() * 65537 + 5);
  const BitStream s = multiplex(random_stream(rng, 1.0),
                                random_stream(rng, 1.0));
  const BitStream out = filter(s);
  // The filtered stream never carries more than the link allows and never
  // more bits than were offered; once both are in steady state the counts
  // agree (if the queue drained at all).
  EXPECT_LE(out.peak_rate(), 1.0 + 1e-9);
  const double horizon = 400.0;
  EXPECT_LE(out.bits_before(horizon), s.bits_before(horizon) + 1e-9);
  if (s.final_rate() < 1.0) {
    const double late = 4000.0;
    EXPECT_NEAR(out.bits_before(late), s.bits_before(late), 1e-6);
  }
}

TEST_P(StreamPropertyTest, FilterIsIdempotent) {
  Xorshift rng(GetParam() * 31 + 7);
  const BitStream s = multiplex(random_stream(rng, 1.0),
                                random_stream(rng, 1.0));
  const BitStream once = filter(s);
  EXPECT_TRUE(filter(once).nearly_equal(once));
}

TEST_P(StreamPropertyTest, DelayDominatesAndComposes) {
  Xorshift rng(GetParam() * 193 + 11);
  const BitStream s = random_stream(rng, 1.0);
  const double c1 = 0.25 * static_cast<double>(1 + rng.below(100));
  const double c2 = 0.25 * static_cast<double>(1 + rng.below(100));
  const BitStream d1 = delay(s, c1);
  EXPECT_TRUE(d1.dominates(s)) << "s=" << s << " c1=" << c1;
  EXPECT_TRUE(delay(d1, c2).nearly_equal(delay(s, c1 + c2)))
      << "s=" << s << " c1=" << c1 << " c2=" << c2;
}

TEST_P(StreamPropertyTest, DelayBoundMonotoneInTraffic) {
  Xorshift rng(GetParam() * 389 + 13);
  const BitStream a = random_stream(rng, 0.5);
  const BitStream b = random_stream(rng, 0.4);
  const BitStream both = multiplex(a, b);
  const auto d_a = delay_bound(a, BitStream{});
  const auto d_both = delay_bound(both, BitStream{});
  ASSERT_TRUE(d_a.has_value());
  if (d_both.has_value()) {
    EXPECT_GE(*d_both, *d_a - 1e-9);
  }
}

TEST_P(StreamPropertyTest, DelayBoundMonotoneInHigherPriorityLoad) {
  Xorshift rng(GetParam() * 769 + 17);
  const BitStream s = random_stream(rng, 0.4);
  const BitStream hp_small = filter(random_stream(rng, 0.3));
  const BitStream hp_big = filter(multiplex(hp_small, random_stream(rng, 0.2)));
  const auto d_small = delay_bound(s, hp_small);
  const auto d_big = delay_bound(s, hp_big);
  ASSERT_TRUE(d_small.has_value());
  if (d_big.has_value()) {
    EXPECT_GE(*d_big, *d_small - 1e-9);
  }
}

TEST_P(StreamPropertyTest, BacklogNeverExceedsDelayBound) {
  // Unit-rate server: vertical deviation <= horizontal deviation.
  Xorshift rng(GetParam() * 1543 + 19);
  const BitStream s =
      multiplex(random_stream(rng, 1.0), random_stream(rng, 0.5));
  const BitStream hp = filter(random_stream(rng, 0.4));
  const auto backlog = max_backlog(s, hp);
  const auto bound = delay_bound(s, hp);
  ASSERT_EQ(backlog.has_value(), bound.has_value());
  if (bound.has_value()) {
    EXPECT_LE(*backlog, *bound + 1e-9);
  }
}

// --- double vs exact cross-validation --------------------------------------

TEST_P(StreamPropertyTest, DoubleMatchesExactMultiplexFilter) {
  Xorshift rng(GetParam() * 6151 + 23);
  const BitStream a = random_stream(rng, 1.0);
  const BitStream b = random_stream(rng, 1.0);
  const BitStream approx = filter(multiplex(a, b));
  const ExactBitStream exact = filter(multiplex(to_exact(a), to_exact(b)));
  ASSERT_EQ(approx.size(), exact.size())
      << "approx=" << approx << " exact=" << exact;
  for (std::size_t k = 0; k < approx.size(); ++k) {
    EXPECT_NEAR(approx.segments()[k].rate,
                exact.segments()[k].rate.to_double(), 1e-9);
    EXPECT_NEAR(approx.segments()[k].start,
                exact.segments()[k].start.to_double(), 1e-6);
  }
}

TEST_P(StreamPropertyTest, DoubleMatchesExactDelayBound) {
  Xorshift rng(GetParam() * 12289 + 29);
  const BitStream a = random_stream(rng, 1.0);
  const BitStream b = random_stream(rng, 0.5);
  const BitStream s = multiplex(a, b);
  const BitStream hp_raw = random_stream(rng, 0.5);
  const auto approx = delay_bound(s, filter(hp_raw));
  const auto exact = delay_bound(multiplex(to_exact(a), to_exact(b)),
                                 filter(to_exact(hp_raw)));
  ASSERT_EQ(approx.has_value(), exact.has_value());
  if (approx.has_value()) {
    EXPECT_NEAR(*approx, exact->to_double(), 1e-6);
  }
}

}  // namespace
}  // namespace rtcac
