// lint-fixture-dest: src/sim/timer_wheel.cpp
//
// concurrency-state positive fixture: ad-hoc std:: threading outside
// the dedicated concurrency modules.

#include <mutex>
#include <thread>

namespace rtcac {

struct TimerWheel {
  std::mutex mutex;  // expect: concurrency-state
  std::thread ticker;  // expect: concurrency-state
};

void spin(TimerWheel& wheel) {
  const std::scoped_lock lock(wheel.mutex);  // expect: concurrency-state
}

}  // namespace rtcac
