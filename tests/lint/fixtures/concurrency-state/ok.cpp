// lint-fixture-dest: src/core/concurrent_cac.cpp
//
// concurrency-state negative fixture: the same vocabulary is fine
// inside a dedicated concurrency module (this fixture pretends to be
// core/concurrent_cac.cpp, one of the allowed files).

#include <atomic>

#include "core/concurrent_cac.h"

namespace rtcac {

std::atomic<unsigned> g_admissions{0};

void count_admission() {
  g_admissions.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace rtcac
