// lint-fixture-dest: src/core/shard_maintenance.cpp
//
// lock-order negative fixture: one shard guard per function is fine,
// as are raw lock transitions inside ConcurrentCac::ShardLockSet
// members — the scoped capability that implements the canonical
// ascending acquisition order is the rule's one sanctioned home.

#include "core/concurrent_cac.h"
#include "util/thread_annotations.h"

namespace rtcac {

double read_side(SharedMutex& mutex, const double& bound) {
  const SharedLock lock(mutex);
  return bound;
}

void write_side(SharedMutex& mutex, double& bound) {
  const ExclusiveLock lock(mutex);
  bound = 0;
}

// Snapshot self-refresh of one queueing-point slot: the slot's leaf
// refresh mutex (a Mutex, not shard state) nests outside the shard's
// shared lock.  MutexLock guards do not count as shard-state guards, so
// this is one shard guard per function, which the rule allows.
void refresh_point_slot(Mutex& refresh_mutex, SharedMutex& shard,
                        double& slot) {
  const MutexLock refresh(refresh_mutex);
  const SharedLock pin(shard);
  slot = 0;
}

ConcurrentCac::ShardLockSet::ShardLockSet(ConcurrentCac& owner,
                                          std::span<const HopSpec> hops) {
  for (const HopSpec& hop : hops) {
    owner.shard_at(hop.shard).mutex.lock();
  }
}

ConcurrentCac::ShardLockSet::~ShardLockSet() {
  for (const std::size_t shard : shards_) {
    owner_.shard_at(shard).mutex.unlock();
  }
}

}  // namespace rtcac
