// lint-fixture-dest: src/core/shard_maintenance.cpp
//
// lock-order positive fixture: every way of sidestepping the annotated
// guard layer — raw mutex method calls, std:: lock vocabulary, and a
// second shard guard in one function.

#include "util/thread_annotations.h"

namespace rtcac {

void manual_transition(Mutex& mutex) {
  mutex.lock();  // expect: lock-order
  mutex.unlock();  // expect: lock-order
}

void tag_dance(std::mutex& mutex) {
  std::unique_lock lock(mutex, std::defer_lock);  // expect: lock-order
  lock.try_lock();  // expect: lock-order
}

void hand_rolled_pair(SharedMutex& first, SharedMutex& second) {
  const ExclusiveLock lock_first(first);
  const SharedLock lock_second(second);  // expect: lock-order
}

// A snapshot self-refresh must pin ONE point's shard; rebuilding two
// points' publications under hand-rolled shared locks is exactly the
// multi-shard acquisition ShardLockSet exists for.
void refresh_two_points(SharedMutex& shard_a, SharedMutex& shard_b) {
  const SharedLock pin_a(shard_a);
  const SharedLock pin_b(shard_b);  // expect: lock-order
}

}  // namespace rtcac
