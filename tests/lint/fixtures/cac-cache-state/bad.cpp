// lint-fixture-dest: src/core/switch_cac.cpp
//
// cac-cache-state positive fixture: cache/dirty state touched from a
// query accessor instead of the cache-management members.

#include "core/switch_cac.h"

namespace rtcac {

template <typename Num>
double BasicSwitchCac<Num>::peek_bound() const {
  return bound_cache_;  // expect: cac-cache-state
}

template <typename Num>
void BasicSwitchCac<Num>::touch(std::size_t cell) {
  cell_counts_[cell] += 1;  // expect: cac-cache-state
}

}  // namespace rtcac
