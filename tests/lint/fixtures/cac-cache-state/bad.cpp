// lint-fixture-dest: src/core/switch_cac.cpp
//
// cac-cache-state positive fixture: cache/dirty state — and the
// mergeable-aggregate storage (merge trees, segment arena, lease
// index) — touched from a query accessor instead of the
// cache-management members.

#include "core/switch_cac.h"

namespace rtcac {

template <typename Num>
double BasicSwitchCac<Num>::peek_bound() const {
  return bound_cache_;  // expect: cac-cache-state
}

template <typename Num>
void BasicSwitchCac<Num>::touch(std::size_t cell) {
  cell_counts_[cell] += 1;  // expect: cac-cache-state
}

template <typename Num>
double BasicSwitchCac<Num>::peek_tree(std::size_t cell) {
  // A query accessor flushing a merge tree bypasses the mutation
  // contract (every mutator leaves its root path clean before return).
  return cell_trees_[cell].aggregate(stream_arena_).final_rate();  // expect: cac-cache-state
}

template <typename Num>
std::size_t BasicSwitchCac<Num>::lease_count() const {
  return lease_index_.size();  // expect: cac-cache-state
}

}  // namespace rtcac
