// lint-fixture-dest: src/core/switch_cac.cpp
//
// cac-cache-state negative fixture: the cache-management members
// (ensure_* / invalidate_* / rebuild_cell* / lease bookkeeping /
// arena_stats / audits) own that state, merge trees and arena included.

#include "core/switch_cac.h"

namespace rtcac {

template <typename Num>
void BasicSwitchCac<Num>::ensure_bound() const {
  if (bound_dirty_) {
    bound_cache_ = 0;
    bound_dirty_ = false;
  }
}

template <typename Num>
void BasicSwitchCac<Num>::invalidate_bound() {
  bound_dirty_ = true;
}

template <typename Num>
void BasicSwitchCac<Num>::rebuild_cell(std::size_t cell) {
  cell_counts_[cell] = 0;
  arrival_aggr_[cell] = cell_trees_[cell].aggregate(stream_arena_);
}

template <typename Num>
void BasicSwitchCac<Num>::drop_lease_index_entry(double expiry) {
  lease_index_.erase(expiry);
}

template <typename Num>
CacArenaStats BasicSwitchCac<Num>::arena_stats() const {
  CacArenaStats st;
  st.pooled_bytes = stream_arena_.pooled_bytes();
  return st;
}

template <typename Num>
bool BasicSwitchCac<Num>::cache_coherent() const {
  return !bound_dirty_ || cell_counts_.empty();
}

}  // namespace rtcac
