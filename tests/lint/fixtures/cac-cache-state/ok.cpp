// lint-fixture-dest: src/core/switch_cac.cpp
//
// cac-cache-state negative fixture: the cache-management members
// (ensure_* / invalidate_* / rebuild_cell / audits) own that state.

#include "core/switch_cac.h"

namespace rtcac {

template <typename Num>
void BasicSwitchCac<Num>::ensure_bound() const {
  if (bound_dirty_) {
    bound_cache_ = 0;
    bound_dirty_ = false;
  }
}

template <typename Num>
void BasicSwitchCac<Num>::invalidate_bound() {
  bound_dirty_ = true;
}

template <typename Num>
void BasicSwitchCac<Num>::rebuild_cell(std::size_t cell) {
  cell_counts_[cell] = 0;
}

template <typename Num>
bool BasicSwitchCac<Num>::cache_coherent() const {
  return !bound_dirty_ || cell_counts_.empty();
}

}  // namespace rtcac
