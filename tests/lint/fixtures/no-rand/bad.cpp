// lint-fixture-dest: src/sim/jitter_source.cpp
//
// no-rand positive fixture: rand()/srand() anywhere in src/ must be
// reported — simulations must be reproducible from a seed.

#include <cstdlib>

namespace rtcac {

void seed_jitter(unsigned seed) {
  srand(seed);  // expect: no-rand
}

int next_jitter_cells() {
  return std::rand() % 7;  // expect: no-rand
}

}  // namespace rtcac
