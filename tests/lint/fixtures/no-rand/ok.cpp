// lint-fixture-dest: src/sim/jitter_source.cpp
//
// no-rand negative fixture: the seeded xorshift generator is the
// sanctioned randomness source, and identifiers merely *containing*
// "rand" are not findings.

#include "util/xorshift.h"

namespace rtcac {

int next_jitter_cells(Xorshift& rng) {
  return static_cast<int>(rng.next() % 7);
}

double operand_spread(double operand) { return operand * 2.0; }

}  // namespace rtcac
