// lint-fixture-dest: src/core/bound_margin.cpp
//
// float-compare positive fixture: raw relational comparison against a
// floating-point literal inside src/core must be reported.

#include "core/switch_cac.h"

namespace rtcac {

bool margin_is_half(double margin) {
  return margin == 0.5;  // expect: float-compare
}

bool within_epsilon(double residual) {
  if (residual <= 1e-9) {  // expect: float-compare
    return true;
  }
  return 2.0f >= residual;  // expect: float-compare
}

}  // namespace rtcac
