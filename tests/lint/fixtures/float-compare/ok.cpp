// lint-fixture-dest: src/core/bound_margin.cpp
//
// float-compare negative fixture: tolerant comparisons through
// NumTraits, integer-literal comparisons, and float literals in plain
// arithmetic are all fine.

#include "core/numeric.h"

namespace rtcac {

bool margin_is_half(double margin) {
  return NumTraits<double>::nearly_equal(margin, 0.5);
}

bool within_bound(double value, double bound) {
  if (value < bound * 0.5) {  // scaling, not comparison against literal
    return true;
  }
  return NumTraits<double>::nearly_leq(value, bound);
}

bool empty_cells(int count) { return count == 0; }

}  // namespace rtcac
