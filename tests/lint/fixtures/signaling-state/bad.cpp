// lint-fixture-dest: src/net/signaling.cpp
//
// signaling-state positive fixture: protocol-state mutation from a
// SignalingEngine member that is not a message/timer handler.

#include "net/signaling.h"

namespace rtcac {

void SignalingEngine::force_outcome(ConnectionId id) {
  outcomes_[id] = SetupOutcome{};  // expect: signaling-state
}

bool SignalingEngine::tidy(ConnectionId id) {
  return in_flight_.erase(id) != 0;  // expect: signaling-state
}

void SignalingEngine::scrub(ConnectionId id) {
  modifying_.erase(id);  // expect: signaling-state
  modify_outcomes_.insert_or_assign(id, SignalingOutcome{});  // expect: signaling-state
}

}  // namespace rtcac
