// lint-fixture-dest: src/net/signaling.cpp
//
// signaling-state negative fixture: the same mutations are fine on
// handler paths (initiate / release / process_* / on_*), and reads of
// protocol state are fine anywhere.

#include "net/signaling.h"

namespace rtcac {

void SignalingEngine::initiate(ConnectionId id) {
  in_flight_.emplace(id, PendingSetup{});
}

void SignalingEngine::process_response(ConnectionId id) {
  outcomes_[id] = SetupOutcome{};
}

void SignalingEngine::on_timer(ConnectionId id) {
  releasing_.erase(id);
}

bool SignalingEngine::is_pending(ConnectionId id) const {
  return in_flight_.count(id) != 0;
}

}  // namespace rtcac
