// lint-fixture-dest: src/net/signaling.cpp
//
// signaling-state negative fixture: the same mutations are fine on
// handler paths (initiate / release / modify* / process_* / on_*), and
// reads of protocol state are fine anywhere.

#include "net/signaling.h"

namespace rtcac {

void SignalingEngine::initiate(ConnectionId id) {
  in_flight_.emplace(id, PendingSetup{});
}

void SignalingEngine::process_response(ConnectionId id) {
  outcomes_[id] = SetupOutcome{};
}

void SignalingEngine::on_timer(ConnectionId id) {
  releasing_.erase(id);
}

bool SignalingEngine::modify(ConnectionId id) {
  modifying_.emplace(id, ModifyFlight{});
  return true;
}

void SignalingEngine::process_modified(ConnectionId id) {
  modify_outcomes_.insert_or_assign(id, SignalingOutcome{});
  modifying_.erase(id);
}

bool SignalingEngine::is_pending(ConnectionId id) const {
  return in_flight_.count(id) != 0 && !modifying_.contains(id);
}

}  // namespace rtcac
