// lint-fixture-dest: src/net/route_glue.h
//
// include-hygiene negative fixture: #pragma once present, quoted
// includes all src/-relative, system headers in angle brackets.

#pragma once

#include <cstddef>
#include <vector>

#include "core/switch_cac.h"
#include "net/topology.h"
#include "util/contract.h"

namespace rtcac {
struct RouteGlue {
  std::vector<std::size_t> hops;
};
}  // namespace rtcac
