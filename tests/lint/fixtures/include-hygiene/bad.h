// lint-fixture-dest: src/net/route_glue.h
//
// include-hygiene positive fixture: parent-relative includes and quoted
// includes that are not src/-relative must be reported.

#pragma once

#include "../core/switch_cac.h"  // expect: include-hygiene
#include "route_glue_detail.h"  // expect: include-hygiene
#include "core/switch_cac.h"

#include <vector>

namespace rtcac {
struct RouteGlue {
  std::vector<int> hops;
};
}  // namespace rtcac
