// lint-fixture-dest: src/net/reroute_planner.cpp
//
// admission-walk positive fixture: all three ingredients of the
// per-hop walk (CDV accumulation, deadline comparison, GuaranteeMode
// branch) re-implemented outside PathEvaluator, plus a hand-rolled
// reservation delta (release paired with acquire in one function)
// outside the DeltaTransaction core.

#include "core/path_eval.h"

namespace rtcac {

bool hop_fits(double delay, double limit, double cdv, GuaranteeMode mode) {
  const double total_cdv = accumulate_cdv(cdv, delay);  // expect: admission-walk
  if (mode == GuaranteeMode::kDeterministic) {  // expect: admission-walk
    return delay + total_cdv <= request_deadline();  // expect: admission-walk
  }
  return delay < limit;
}

void swap_descriptor(SwitchCac& cac, ConnectionId id, ConnectionId fresh,
                     const BitStream& next) {
  cac.add(fresh, 0, 0, 0, next);
  (void)cac.remove(id);  // expect: admission-walk
  (void)cac.remove(fresh);
  cac.add(id, 0, 0, 0, next);
}

}  // namespace rtcac
