// lint-fixture-dest: src/net/reroute_planner.cpp
//
// admission-walk negative fixture: engines consume PathEvaluator's
// Decision instead of re-deriving the walk arithmetic.

#include "core/path_eval.h"

namespace rtcac {

bool hop_fits(const PathEvaluator::Decision& decision) {
  if (decision.reason == RejectReason::kDeadline) {
    return false;
  }
  return decision.admitted;
}

double slack_report(const PathEvaluator::Decision& decision) {
  return decision.slack;
}

}  // namespace rtcac
