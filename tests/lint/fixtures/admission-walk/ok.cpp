// lint-fixture-dest: src/net/reroute_planner.cpp
//
// admission-walk negative fixture: engines consume PathEvaluator's
// Decision instead of re-deriving the walk arithmetic, and a function
// may release OR acquire reservations alone (setup/teardown) — only
// the pair is a delta, and deltas go through the DeltaTransaction
// core (PathEvaluator::commit_delta_hops).

#include "core/path_eval.h"

namespace rtcac {

bool hop_fits(const PathEvaluator::Decision& decision) {
  if (decision.reason == RejectReason::kDeadline) {
    return false;
  }
  return decision.admitted;
}

double slack_report(const PathEvaluator::Decision& decision) {
  return decision.slack;
}

void teardown_only(SwitchCac& cac, ConnectionId id) {
  (void)cac.remove(id);
}

void setup_only(SwitchCac& cac, ConnectionId id, const BitStream& arrival) {
  cac.add(id, 0, 0, 0, arrival);
}

bool renegotiate_via_core(std::span<const PathEvaluator::Hop> hops,
                          ConnectionId id, ConnectionId provisional,
                          std::span<std::any> arrivals) {
  return PathEvaluator::commit_delta_hops(hops, hops, id, provisional, 0,
                                          arrivals, 0.0);
}

}  // namespace rtcac
