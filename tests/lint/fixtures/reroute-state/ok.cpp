// lint-fixture-dest: src/net/reroute.cpp
//
// reroute-state negative fixture: the same mutations are fine on the
// handler paths (on_* / attempt_* / advance_to / quiesce), and reads of
// the survivability state are fine anywhere.

#include "net/reroute.h"

namespace rtcac {

void RerouteCoordinator::on_component_event(const ComponentEvent& event) {
  down_nodes_.insert(event.component);
  ++stats_.failure_events;
}

void RerouteCoordinator::attempt_due(Tick now) {
  pending_.erase(pending_.begin());
  decisions_.push_back({now, 0, RerouteDecision::Outcome::kDegraded, {}, {}});
  degraded_.entries.push_back({});
  stats_.total_rescue_latency += now;
}

void RerouteCoordinator::advance_to(Tick now) {
  if (!pending_.empty()) attempt_due(now);
}

void RerouteCoordinator::quiesce() {
  down_links_.clear();
}

std::size_t RerouteCoordinator::pending_count() const {
  return pending_.size();
}

bool RerouteCoordinator::is_down(LinkId link) const {
  return down_links_.contains(link) && !decisions_.empty();
}

}  // namespace rtcac
