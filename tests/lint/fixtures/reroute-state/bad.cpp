// lint-fixture-dest: src/net/reroute.cpp
//
// reroute-state positive fixture: survivability state mutated from
// RerouteCoordinator members that are not event/retry handlers.

#include "net/reroute.h"

namespace rtcac {

void RerouteCoordinator::mark_down(LinkId link) {
  down_links_.insert(link);  // expect: reroute-state
}

std::size_t RerouteCoordinator::drop(ConnectionId id) {
  return pending_.erase(id);  // expect: reroute-state
}

void RerouteCoordinator::journal(const RerouteDecision& decision) {
  decisions_.push_back(decision);  // expect: reroute-state
  degraded_.entries.push_back({});  // expect: reroute-state
}

void RerouteCoordinator::bump() {
  ++stats_.episodes;  // expect: reroute-state
  stats_.max_rescue_latency = 0;  // expect: reroute-state
}

}  // namespace rtcac
