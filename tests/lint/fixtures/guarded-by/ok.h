// lint-fixture-dest: src/util/metrics_hub.h
//
// guarded-by negative fixture: every member of the mutex-owning class
// is annotated, exempt by type (the lock itself, condition variables,
// atomics), exempt by kind (static constants, nested types, function
// declarations), or carries a justified allow.  A mutex-free class
// owes nothing.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <vector>

#include "util/thread_annotations.h"

namespace rtcac {

class MetricsHub {
 public:
  void record(double rate);

  struct Snapshot {
    long hits = 0;
    double peak_rate = 0.0;
  };

 private:
  static constexpr std::size_t kWindow = 64;

  mutable Mutex mutex_;
  std::condition_variable_any flushed_;
  std::atomic<bool> armed_{false};
  long hits_ RTCAC_GUARDED_BY(mutex_) = 0;
  std::vector<double> window_
      RTCAC_GUARDED_BY(mutex_);
  // Written once by the constructor, read-only afterwards.
  double ceiling_ = 0.0;  // rtcac-lint: allow(guarded-by)
};

struct PlainConfig {
  long hits = 0;
  double peak_rate = 0.0;
};

}  // namespace rtcac
