// lint-fixture-dest: src/util/metrics_hub.h
//
// guarded-by positive fixture: a mutex-owning class with unannotated
// data members.  hits_ is declared *before* the mutex on purpose — the
// rule must judge the class as a whole, not line by line.

#pragma once

#include "util/thread_annotations.h"

namespace rtcac {

class MetricsHub {
 public:
  void record(double rate);

 private:
  long hits_ = 0;  // expect: guarded-by
  mutable Mutex mutex_;
  double peak_rate_ = 0.0;  // expect: guarded-by
};

}  // namespace rtcac
