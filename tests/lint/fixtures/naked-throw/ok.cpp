// lint-fixture-dest: src/core/rate_check.cpp
//
// naked-throw negative fixture: precondition failures go through
// RTCAC_REQUIRE; other exception types (and out_of_range plumbing) are
// outside this rule's scope.

#include <stdexcept>

#include "util/contract.h"

namespace rtcac {

void require_rate(double rate) {
  RTCAC_REQUIRE(rate >= 0, "rate must be non-negative");
}

int checked_index(int index, int size) {
  if (index >= size) {
    throw std::out_of_range("index");
  }
  return index;
}

}  // namespace rtcac
