// lint-fixture-dest: src/core/rate_check.cpp
//
// naked-throw positive fixture: a direct `throw std::invalid_argument`
// in src/core bypasses the configurable contract failure mode.

#include <stdexcept>

namespace rtcac {

void require_rate(double rate) {
  if (rate < 0) {
    throw std::invalid_argument("rate must be non-negative");  // expect: naked-throw
  }
}

}  // namespace rtcac
