// Unit tests for the RTnet star-ring topology builder.

#include "rtnet/rtnet.h"

#include <gtest/gtest.h>

#include <set>

namespace rtcac {
namespace {

RtnetConfig config(std::size_t nodes, std::size_t terms, bool dual = true,
                   bool delivery = false) {
  RtnetConfig cfg;
  cfg.ring_nodes = nodes;
  cfg.terminals_per_node = terms;
  cfg.dual_ring = dual;
  cfg.delivery_links = delivery;
  return cfg;
}

TEST(Rtnet, ValidatesConfig) {
  EXPECT_THROW(Rtnet(config(1, 1)), std::invalid_argument);
  EXPECT_THROW(Rtnet(config(17, 1)), std::invalid_argument);
  EXPECT_THROW(Rtnet(config(4, 0)), std::invalid_argument);
  EXPECT_THROW(Rtnet(config(4, 17)), std::invalid_argument);
}

TEST(Rtnet, TopologyCounts) {
  const Rtnet net(config(16, 16, true, true));
  // 16 switches + 256 terminals.
  EXPECT_EQ(net.topology().node_count(), 16u + 256u);
  // 16 cw + 16 ccw + 256 access + 256 delivery.
  EXPECT_EQ(net.topology().link_count(), 16u + 16u + 256u + 256u);
}

TEST(Rtnet, SingleRingOmitsCcw) {
  const Rtnet net(config(4, 1, false));
  EXPECT_EQ(net.topology().link_count(), 4u + 4u);
  EXPECT_THROW(static_cast<void>(net.ccw_link(0)), std::logic_error);
  EXPECT_THROW(net.unicast_route_ccw(0, 0, 2), std::logic_error);
}

TEST(Rtnet, RingLinksFormOneCycle) {
  const Rtnet net(config(5, 1, false));
  std::set<NodeId> visited;
  NodeId at = net.ring_node(0);
  for (int i = 0; i < 5; ++i) {
    visited.insert(at);
    const LinkInfo& l = net.topology().link(net.cw_link(i));
    EXPECT_EQ(l.from, net.ring_node(static_cast<std::size_t>(i)));
    at = l.to;
  }
  EXPECT_EQ(visited.size(), 5u);
  EXPECT_EQ(at, net.ring_node(0));
}

TEST(Rtnet, CcwRingRunsBackwards) {
  const Rtnet net(config(4, 1, true));
  const LinkInfo& l = net.topology().link(net.ccw_link(0));
  EXPECT_EQ(l.from, net.ring_node(0));
  EXPECT_EQ(l.to, net.ring_node(3));
}

TEST(Rtnet, AccessLinksConnectTerminals) {
  const Rtnet net(config(3, 2, false));
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t t = 0; t < 2; ++t) {
      const LinkInfo& l = net.topology().link(net.access_link(i, t));
      EXPECT_EQ(l.from, net.terminal(i, t));
      EXPECT_EQ(l.to, net.ring_node(i));
      EXPECT_EQ(net.topology().node(l.from).kind, NodeKind::kTerminal);
    }
  }
  EXPECT_THROW(static_cast<void>(net.terminal(3, 0)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(net.access_link(0, 2)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(net.delivery_link(0, 0)),
               std::logic_error);
}

TEST(Rtnet, BroadcastRouteVisitsEveryNodeOnce) {
  const Rtnet net(config(6, 2, false));
  const Route route = net.broadcast_route(2, 1);
  ASSERT_EQ(route.size(), 6u);  // access + 5 ring links
  const auto nodes = net.topology().route_nodes(route);
  EXPECT_EQ(nodes.front(), net.terminal(2, 1));
  EXPECT_EQ(nodes.back(), net.ring_node(1));  // node "before" the source
  const std::set<NodeId> unique(nodes.begin(), nodes.end());
  EXPECT_EQ(unique.size(), nodes.size());
}

TEST(Rtnet, UnicastRouteClockwise) {
  const Rtnet net(config(8, 1, false));
  const Route route = net.unicast_route(6, 0, 1);
  // access + links 6->7->0->1.
  ASSERT_EQ(route.size(), 4u);
  EXPECT_EQ(net.topology().route_nodes(route).back(), net.ring_node(1));
  // Degenerate: destination is the local ring node.
  EXPECT_EQ(net.unicast_route(3, 0, 3).size(), 1u);
  EXPECT_THROW(net.unicast_route(0, 0, 9), std::invalid_argument);
}

TEST(Rtnet, CcwRouteAvoidsClockwiseLinks) {
  const Rtnet net(config(8, 1, true));
  const Route cw = net.unicast_route(0, 0, 3);
  const Route ccw = net.unicast_route_ccw(0, 0, 3);
  EXPECT_EQ(net.topology().route_nodes(ccw).back(), net.ring_node(3));
  for (std::size_t k = 1; k < ccw.size(); ++k) {  // skip shared access link
    for (std::size_t j = 1; j < cw.size(); ++j) {
      EXPECT_NE(ccw[k], cw[j]);
    }
  }
  // Going "backwards" 0 -> 7 -> ... -> 3 is 5 ring hops.
  EXPECT_EQ(ccw.size(), 1u + 5u);
}

}  // namespace
}  // namespace rtcac
