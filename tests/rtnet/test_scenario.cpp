// Unit tests for the Section 5 evaluation scenarios, checking the
// qualitative shapes the paper's Figures 10-13 report (small rings keep
// the suite fast; the bench binaries run the full 16-node sweeps).

#include "rtnet/scenario.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rtcac {
namespace {

ScenarioOptions small_options(std::size_t terminals, std::size_t nodes = 4) {
  ScenarioOptions opt;
  opt.ring_nodes = nodes;
  opt.terminals_per_node = terminals;
  return opt;
}

TEST(TrafficPattern, SymmetricSumsToOne) {
  const auto p = TrafficPattern::symmetric(4, 3);
  ASSERT_EQ(p.shares.size(), 12u);
  double total = 0;
  for (const double s : p.shares) {
    EXPECT_DOUBLE_EQ(s, 1.0 / 12.0);
    total += s;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(TrafficPattern, AsymmetricGivesHeavyTerminalP) {
  const auto p = TrafficPattern::asymmetric(4, 2, 0.5);
  EXPECT_DOUBLE_EQ(p.shares[0], 0.5);
  for (std::size_t i = 1; i < p.shares.size(); ++i) {
    EXPECT_DOUBLE_EQ(p.shares[i], 0.5 / 7.0);
  }
  EXPECT_THROW(TrafficPattern::asymmetric(4, 2, 1.5), std::invalid_argument);
}

TEST(TrafficPattern, AsymmetricAtZeroPMatchesNearSymmetric) {
  const auto p = TrafficPattern::asymmetric(4, 1, 0.0);
  EXPECT_DOUBLE_EQ(p.shares[0], 0.0);
  EXPECT_DOUBLE_EQ(p.shares[1], 1.0 / 3.0);
}

TEST(Scenario, LightLoadFullyAdmittedWithSmallBounds) {
  const auto result = evaluate_cyclic_scenario(
      small_options(1), TrafficPattern::symmetric(4, 1), 0.1);
  EXPECT_TRUE(result.all_admitted) << result.first_rejection;
  EXPECT_EQ(result.admitted, 4u);
  EXPECT_GE(result.max_e2e_bound, 0.0);
  EXPECT_LT(result.max_e2e_bound, 3 * 32.0);
}

TEST(Scenario, BoundGrowsWithLoad) {
  double prev = -1;
  for (const double load : {0.1, 0.3, 0.5}) {
    const auto r = evaluate_cyclic_scenario(
        small_options(2), TrafficPattern::symmetric(4, 2), load);
    ASSERT_TRUE(r.all_admitted) << "load=" << load;
    EXPECT_GE(r.max_e2e_bound, prev);
    prev = r.max_e2e_bound;
  }
}

TEST(Scenario, BoundGrowsWithTerminalsPerNode) {
  // More terminals per node = burstier per-node aggregate = larger bound,
  // the Fig. 10 trend across the N curves.
  const double load = 0.4;
  const auto r1 = evaluate_cyclic_scenario(
      small_options(1), TrafficPattern::symmetric(4, 1), load);
  const auto r4 = evaluate_cyclic_scenario(
      small_options(4), TrafficPattern::symmetric(4, 4), load);
  ASSERT_TRUE(r1.all_admitted);
  ASSERT_TRUE(r4.all_admitted);
  EXPECT_GT(r4.max_e2e_bound, r1.max_e2e_bound);
}

TEST(Scenario, OverloadReportsRejection) {
  // A 0.9-share heavy terminal at full load on an 8-node ring: by the
  // seventh hop its CDV-distorted worst case saturates the link for
  // ~1700 cell times, and the other terminals' cells pile past the
  // 32-cell queue behind it; the pattern must be rejected.
  auto pattern = TrafficPattern::asymmetric(8, 1, 0.9);
  const auto r = evaluate_cyclic_scenario(small_options(1, 8), pattern,
                                          /*load=*/1.0);
  EXPECT_FALSE(r.all_admitted);
  EXPECT_FALSE(r.first_rejection.empty());
}

TEST(Scenario, PatternSizeMismatchThrows) {
  EXPECT_THROW(evaluate_cyclic_scenario(small_options(2),
                                        TrafficPattern::symmetric(4, 1), 0.1),
               std::invalid_argument);
  EXPECT_THROW(evaluate_cyclic_scenario(small_options(1),
                                        TrafficPattern::symmetric(4, 1), 0.0),
               std::invalid_argument);
}

TEST(Scenario, MaxSupportableLoadIsMonotoneInDeadline) {
  const auto opt = small_options(1);
  const auto pattern = TrafficPattern::symmetric(4, 1);
  const double tight = max_supportable_load(opt, pattern, 8.0);
  const double loose = max_supportable_load(opt, pattern, 96.0);
  EXPECT_LE(tight, loose);
  EXPECT_GT(loose, 0.0);
}

TEST(Scenario, MaxSupportableLoadDecreasesWithAsymmetry) {
  // The Fig. 11 trend: larger p (more asymmetric) supports less load.
  const auto opt = small_options(2);
  const double deadline = 3 * 32.0;
  const double p_low = max_supportable_load(
      opt, TrafficPattern::asymmetric(4, 2, 0.2), deadline);
  const double p_high = max_supportable_load(
      opt, TrafficPattern::asymmetric(4, 2, 0.8), deadline);
  EXPECT_GE(p_low, p_high - 1e-9);
}

TEST(Scenario, TwoPrioritiesWithBestAssignmentNeverWorse) {
  // The Fig. 12 trend on a small ring.  With equal per-queue caps a naive
  // assignment can lose (the low level is starved during high-level
  // clumps), but the *best* two-level assignment — which includes "all at
  // level 0" — is never worse than single-priority FIFO, and splitting
  // the clumps across two FIFO queues is where the gain appears.
  auto one = small_options(2);
  auto two = small_options(2);
  two.priorities = 2;
  const auto pattern = TrafficPattern::asymmetric(4, 2, 0.6);
  const double deadline = 3 * 32.0;
  const double cap1 =
      max_supportable_load(one, pattern, deadline, assign_uniform());
  double cap2 = max_supportable_load(two, pattern, deadline,
                                     assign_uniform(0));
  for (const auto& assigner :
       {assign_split(2), assign_heavy_low(2), assign_heavy_high(2)}) {
    cap2 = std::max(cap2,
                    max_supportable_load(two, pattern, deadline, assigner));
  }
  EXPECT_GE(cap2, cap1 - 1.0 / 128.0);
}

TEST(Scenario, SoftCacSupportsAtLeastAsMuchAsHard) {
  // The Fig. 13 trend.
  auto hard = small_options(2);
  auto soft = small_options(2);
  soft.cdv_policy = CdvPolicy::kSoft;
  const auto pattern = TrafficPattern::asymmetric(4, 2, 0.5);
  const double deadline = 3 * 32.0;
  const double cap_hard = max_supportable_load(hard, pattern, deadline);
  const double cap_soft = max_supportable_load(soft, pattern, deadline);
  EXPECT_GE(cap_soft, cap_hard - 1.0 / 128.0);
}

TEST(Scenario, DeliveryHopCostsNothingUnderLinkFiltering) {
  // Including the node->terminal delivery link adds a 16th queueing
  // point — but that port is fed from a single ring in-link, whose
  // filtered aggregate can never exceed the link rate, so its computed
  // bound is 0 and the e2e bound is unchanged.  This is exactly why the
  // paper can afford to measure to the last ring node (DESIGN.md
  // decision 3): the delivery hop is free under per-in-link filtering.
  auto base = small_options(2);
  auto with_delivery = base;
  with_delivery.include_delivery_hop = true;
  const auto pattern = TrafficPattern::symmetric(4, 2);
  const auto plain = evaluate_cyclic_scenario(base, pattern, 0.3);
  const auto delivered =
      evaluate_cyclic_scenario(with_delivery, pattern, 0.3);
  ASSERT_TRUE(plain.all_admitted);
  ASSERT_TRUE(delivered.all_admitted) << delivered.first_rejection;
  EXPECT_DOUBLE_EQ(delivered.max_e2e_bound, plain.max_e2e_bound);
}

TEST(Scenario, Figure10HeadlineNumbersPinned) {
  // Regression pin for the paper's headline reproduction (EXPERIMENTS.md):
  // on the full 16-node ring the hard CAC admits the symmetric pattern at
  // the Figure 10 operating points and crosses the 1 ms (370 cell-time)
  // deadline where the paper says it does.
  ScenarioOptions n1;
  n1.ring_nodes = 16;
  n1.terminals_per_node = 1;
  ScenarioOptions n16 = n1;
  n16.terminals_per_node = 16;

  // N = 1: "up to 75% of cyclic traffic can be supported with end-to-end
  // queueing delays smaller than 370 cell times".
  const auto n1_at_075 = evaluate_cyclic_scenario(
      n1, TrafficPattern::symmetric(16, 1), 0.75);
  ASSERT_TRUE(n1_at_075.all_admitted);
  EXPECT_LT(n1_at_075.max_e2e_bound, 370.0);
  const auto n1_at_0825 = evaluate_cyclic_scenario(
      n1, TrafficPattern::symmetric(16, 1), 0.825);
  EXPECT_FALSE(n1_at_0825.all_admitted);  // hard CAC curve ends by ~0.8

  // N = 16: "about 35% of cyclic traffic can be supported" within 370.
  const auto n16_at_0325 = evaluate_cyclic_scenario(
      n16, TrafficPattern::symmetric(16, 16), 0.325);
  ASSERT_TRUE(n16_at_0325.all_admitted);
  EXPECT_LT(n16_at_0325.max_e2e_bound, 370.0);
  const auto n16_at_0375 = evaluate_cyclic_scenario(
      n16, TrafficPattern::symmetric(16, 16), 0.375);
  ASSERT_TRUE(n16_at_0375.all_admitted);
  EXPECT_GT(n16_at_0375.max_e2e_bound, 370.0);  // past the 1 ms deadline
  const auto n16_at_050 = evaluate_cyclic_scenario(
      n16, TrafficPattern::symmetric(16, 16), 0.50);
  EXPECT_FALSE(n16_at_050.all_admitted);  // 32-cell cap ends the curve
}

TEST(Scenario, PriorityAssignerHelpers) {
  const auto uniform = assign_uniform(1);
  EXPECT_EQ(uniform(0, 0, 0.5), 1u);
  const auto heavy_low = assign_heavy_low(2);
  EXPECT_EQ(heavy_low(0, 0, 0.5), 1u);
  EXPECT_EQ(heavy_low(1, 0, 0.1), 0u);
  const auto heavy_high = assign_heavy_high(2);
  EXPECT_EQ(heavy_high(0, 0, 0.5), 0u);
  EXPECT_EQ(heavy_high(2, 1, 0.1), 1u);
  EXPECT_THROW(assign_heavy_low(1), std::invalid_argument);
  EXPECT_THROW(assign_heavy_high(1), std::invalid_argument);
}

}  // namespace
}  // namespace rtcac
