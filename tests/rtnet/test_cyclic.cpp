// Unit tests for the cyclic-transmission service classes (Table 1).

#include "rtnet/cyclic.h"

#include <gtest/gtest.h>

namespace rtcac {
namespace {

TEST(Cyclic, TableOneHasThreeClasses) {
  const auto& classes = standard_cyclic_classes();
  ASSERT_EQ(classes.size(), 3u);
  EXPECT_EQ(classes[0].name, "high speed");
  EXPECT_EQ(classes[1].name, "medium speed");
  EXPECT_EQ(classes[2].name, "low speed");
}

TEST(Cyclic, PeriodsAndSizesMatchTableOne) {
  const auto& c = standard_cyclic_classes();
  EXPECT_DOUBLE_EQ(c[0].period_ms, 1.0);
  EXPECT_DOUBLE_EQ(c[0].memory_kb, 4.0);
  EXPECT_DOUBLE_EQ(c[1].period_ms, 30.0);
  EXPECT_DOUBLE_EQ(c[1].memory_kb, 64.0);
  EXPECT_DOUBLE_EQ(c[2].period_ms, 150.0);
  EXPECT_DOUBLE_EQ(c[2].memory_kb, 128.0);
  for (const auto& cls : c) {
    EXPECT_DOUBLE_EQ(cls.delay_ms, cls.period_ms);
  }
}

TEST(Cyclic, PayloadBandwidthsApproximateTableOne) {
  // The paper lists 32 / 17.5 / 6.8 Mbps; the derivation (memory * 8 /
  // period) reproduces them within the paper's own rounding (~10%).
  const auto& c = standard_cyclic_classes();
  EXPECT_NEAR(c[0].payload_bandwidth_mbps(), 32.0, 3.0);
  EXPECT_NEAR(c[1].payload_bandwidth_mbps(), 17.5, 1.0);
  EXPECT_NEAR(c[2].payload_bandwidth_mbps(), 6.8, 0.4);
}

TEST(Cyclic, WireBandwidthIncludesCellOverhead) {
  for (const auto& cls : standard_cyclic_classes()) {
    EXPECT_GT(cls.wire_bandwidth_mbps(), cls.payload_bandwidth_mbps());
    // 53/48 overhead, plus at most one padding cell.
    EXPECT_LT(cls.wire_bandwidth_mbps(),
              cls.payload_bandwidth_mbps() * 53.0 / 48.0 * 1.01);
  }
}

TEST(Cyclic, CellsPerUpdate) {
  // 4 KiB / 48-byte payloads = ceil(4096/48) = 86 cells.
  EXPECT_EQ(standard_cyclic_classes()[0].cells_per_update(), 86u);
}

TEST(Cyclic, NormalizedLoadsFitOneLink) {
  double total = 0;
  for (const auto& cls : standard_cyclic_classes()) {
    EXPECT_GT(cls.normalized_load(), 0.0);
    EXPECT_LT(cls.normalized_load(), 1.0);
    total += cls.normalized_load();
  }
  // All three classes together stay well under the 155 Mbps link.
  EXPECT_LT(total, 0.5);
}

TEST(Cyclic, DeadlinesInCellTimes) {
  // 1 ms at ~2.7 us per cell is ~370 cell times — the number the paper
  // quotes for the high-speed class.
  EXPECT_NEAR(standard_cyclic_classes()[0].deadline_cell_times(), 370.0, 5.0);
}

TEST(Cyclic, CbrContractScalesWithShare) {
  const auto& high = standard_cyclic_classes()[0];
  const auto full = high.cbr_contract();
  const auto half = high.cbr_contract(0.5);
  EXPECT_TRUE(full.is_cbr());
  EXPECT_NEAR(half.pcr, full.pcr / 2, 1e-12);
  EXPECT_THROW(static_cast<void>(high.cbr_contract(0.0)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(high.cbr_contract(1.5)),
               std::invalid_argument);
}

TEST(Cyclic, CellTimeConstantsAreConsistent) {
  EXPECT_NEAR(kCellTimeSeconds, 2.7e-6, 0.1e-6);
  EXPECT_NEAR(cell_times_from_seconds(seconds_from_cell_times(123.0)), 123.0,
              1e-9);
}

}  // namespace
}  // namespace rtcac
